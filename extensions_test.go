package locater_test

import (
	"testing"
	"time"

	"locater"
)

// TestAddRoomLabelSharpening: crowd-sourced labels (footnote 7 extension)
// must steer room predictions for a device whose metadata prior is wrong.
func TestAddRoomLabelSharpening(t *testing.T) {
	ds := buildDataset(t, 7)
	sys := newSystem(t, ds, locater.Config{})

	dev := ds.People[0].Device
	// Find a moment the device is truly inside.
	wins := ds.Truth.InsideWindows(dev, simStart.AddDate(0, 0, 5), simStart.AddDate(0, 0, 7))
	if len(wins) == 0 {
		t.Skip("no inside windows")
	}
	tq := wins[0].Start.Add(wins[0].End.Sub(wins[0].Start) / 2)

	before, err := sys.Locate(dev, tq)
	if err != nil {
		t.Fatal(err)
	}
	if before.Outside {
		t.Skip("coarse stage answered outside; label test needs an inside answer")
	}
	// Pick a different candidate room of the same region and label it
	// heavily: the posterior must follow the labels.
	var target locater.RoomID
	for _, r := range ds.Building.CandidateRooms(before.Region) {
		if r != before.Room {
			target = r
			break
		}
	}
	if target == "" {
		t.Skip("single-room region")
	}
	for i := 0; i < 25; i++ {
		if err := sys.AddRoomLabel(dev, target, tq.Add(-time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	after, err := sys.Locate(dev, tq)
	if err != nil {
		t.Fatal(err)
	}
	if after.Outside {
		t.Fatal("labels changed the coarse answer")
	}
	if after.Room != target {
		t.Errorf("after 25 labels room = %s, want %s", after.Room, target)
	}

	// Unknown room rejected.
	if err := sys.AddRoomLabel(dev, "no-such-room", tq); err == nil {
		t.Error("unknown room label should fail")
	}
}

// TestSetTimePreferredRooms: the time-dependent preferred-room extension
// must switch the prior's argmax by time of day.
func TestSetTimePreferredRooms(t *testing.T) {
	ds := buildDataset(t, 7)
	sys := newSystem(t, ds, locater.Config{})

	dev := ds.People[0].Device
	base := ds.People[0].BaseRoom
	// Pick a lunch room: any public candidate room of a region covering
	// the base room.
	regions := ds.Building.RegionsOfRoom(base)
	if len(regions) == 0 {
		t.Skip("base room uncovered")
	}
	var lunch locater.RoomID
	for _, r := range ds.Building.CandidateRooms(regions[0]) {
		if r != base && ds.Building.IsPublic(r) {
			lunch = r
			break
		}
	}
	if lunch == "" {
		t.Skip("no public room in the region")
	}
	err := sys.SetTimePreferredRooms(dev, []locater.TimePreference{
		{StartMinute: 12 * 60, EndMinute: 13 * 60, Rooms: []locater.RoomID{lunch}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Invalid window rejected.
	err = sys.SetTimePreferredRooms(dev, []locater.TimePreference{
		{StartMinute: -5, EndMinute: 60, Rooms: []locater.RoomID{lunch}},
	})
	if err == nil {
		t.Error("invalid window should fail")
	}
	// The building-level view reflects the registration.
	if got := ds.Building.PreferredRoomsAt(string(dev), simStart.Add(12*time.Hour+30*time.Minute)); len(got) != 1 || got[0] != lunch {
		t.Errorf("lunch prefs = %v, want [%s]", got, lunch)
	}
	if got := ds.Building.PreferredRoomsAt(string(dev), simStart.Add(9*time.Hour)); len(got) != 1 || got[0] != base {
		t.Errorf("morning prefs = %v, want [%s]", got, base)
	}
}
