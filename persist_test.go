package locater_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"locater"
	"locater/internal/sim"
)

// openSystem builds a durable system over dir with the shared test workload
// configuration.
func openSystem(t testing.TB, ds *sim.Dataset, dir string, popts locater.PersistOptions) *locater.System {
	t.Helper()
	cfg := locater.Config{
		Building:           ds.Building,
		HistoryDays:        14,
		PromotionsPerRound: 8,
		MaxTrainingGaps:    100,
	}
	sys, err := locater.Open(dir, cfg, popts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestKilledMidIngestRecoversAcknowledgedEvents is the headline durability
// guarantee: a process killed mid-ingest (simulated by abandoning the system
// without Close or Checkpoint) recovers every acknowledged event in fsync
// mode and serves identical Locate answers.
func TestKilledMidIngestRecoversAcknowledgedEvents(t *testing.T) {
	ds := buildDataset(t, 6)
	dir := t.TempDir()

	live := openSystem(t, ds, dir, locater.PersistOptions{Fsync: true})
	// Stream the workload in batches, as a controller would; every returned
	// Ingest is an acknowledgement.
	const batch = 256
	for i := 0; i < len(ds.Events); i += batch {
		end := i + batch
		if end > len(ds.Events) {
			end = len(ds.Events)
		}
		if err := live.Ingest(ds.Events[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := live.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute); err != nil {
		t.Fatal(err)
	}
	if p, ok := personWithBaseRoom(ds); ok {
		if err := live.AddRoomLabel(p.Device, p.BaseRoom, simStart.Add(10*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}

	queries := sampleQueries(ds, 40)
	liveResults := live.LocateBatch(queries, 4)

	// Crash: no Close, no Checkpoint — recovery must come from the WAL
	// tail alone.
	recovered := openSystem(t, ds, dir, locater.PersistOptions{Fsync: true})
	defer recovered.Close()

	if got, want := recovered.NumEvents(), live.NumEvents(); got != want {
		t.Fatalf("recovered %d events, want %d (zero acknowledged-event loss)", got, want)
	}
	if got, want := recovered.NumDevices(), live.NumDevices(); got != want {
		t.Fatalf("recovered %d devices, want %d", got, want)
	}
	recResults := recovered.LocateBatch(queries, 4)
	for i := range queries {
		if liveResults[i].Err != nil || recResults[i].Err != nil {
			t.Fatalf("query %d errored: live=%v recovered=%v", i, liveResults[i].Err, recResults[i].Err)
		}
		l, r := liveResults[i].Result, recResults[i].Result
		if l.Outside != r.Outside || l.Region != r.Region || l.Room != r.Room {
			t.Errorf("query %d (%s, %v): live=%+v recovered=%+v",
				i, queries[i].Device, queries[i].Time, l, r)
		}
	}
}

// TestSnapshotPlusTailEquivalence checkpoints mid-stream, keeps ingesting,
// crashes, and verifies the recovered store (snapshot + WAL tail) answers
// the store-level read paths identically to the live one.
func TestSnapshotPlusTailEquivalence(t *testing.T) {
	ds := buildDataset(t, 6)
	dir := t.TempDir()

	live := openSystem(t, ds, dir, locater.PersistOptions{Fsync: true})
	half := len(ds.Events) / 2
	if err := live.Ingest(ds.Events[:half]); err != nil {
		t.Fatal(err)
	}
	if err := live.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := live.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The tail lands after the snapshot.
	if err := live.Ingest(ds.Events[half:]); err != nil {
		t.Fatal(err)
	}
	if err := live.SetDelta(ds.People[1].Device, 7*time.Minute); err != nil {
		t.Fatal(err)
	}

	recovered := openSystem(t, ds, dir, locater.PersistOptions{Fsync: true})
	defer recovered.Close()

	if got, want := recovered.NumEvents(), live.NumEvents(); got != want {
		t.Fatalf("recovered %d events, want %d", got, want)
	}
	liveStore, recStore := live.StoreForTest(), recovered.StoreForTest()
	for _, p := range ds.People {
		d := p.Device
		if got, want := recStore.Delta(d), liveStore.Delta(d); got != want {
			t.Errorf("device %s: recovered δ %v, want %v", d, got, want)
		}
		ltl, lerr := liveStore.Timeline(d)
		rtl, rerr := recStore.Timeline(d)
		if (lerr == nil) != (rerr == nil) {
			t.Fatalf("device %s: timeline errors diverge: %v vs %v", d, lerr, rerr)
		}
		if lerr != nil {
			continue
		}
		if len(ltl.Events) != len(rtl.Events) {
			t.Fatalf("device %s: %d vs %d timeline events", d, len(ltl.Events), len(rtl.Events))
		}
		for i := range ltl.Events {
			le, re := ltl.Events[i], rtl.Events[i]
			if le.ID != re.ID || le.AP != re.AP || !le.Time.Equal(re.Time) {
				t.Fatalf("device %s event %d: %v vs %v", d, i, le, re)
			}
		}
		// At agrees on validity/gap classification across the day.
		for h := 0; h < 24; h += 3 {
			tq := simStart.Add(time.Duration(24+h) * time.Hour)
			lv, lg, _ := liveStore.At(d, tq)
			rv, rg, _ := recStore.At(d, tq)
			if (lv == nil) != (rv == nil) || (lg == nil) != (rg == nil) {
				t.Errorf("device %s at %v: live (v=%v g=%v) vs recovered (v=%v g=%v)",
					d, tq, lv != nil, lg != nil, rv != nil, rg != nil)
			}
		}
	}

	// EstimateDeltas over identical logs produces identical estimates.
	if err := live.EstimateDeltas(0.85, time.Minute, 20*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := recovered.EstimateDeltas(0.85, time.Minute, 20*time.Minute); err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.People {
		if got, want := recStore.Delta(p.Device), liveStore.Delta(p.Device); got != want {
			t.Errorf("device %s: re-estimated δ %v vs %v", p.Device, got, want)
		}
	}
}

// TestConcurrentIngestWhileCheckpoint hammers ingest, labels, and Locate
// while checkpoints run; meant for -race. Afterwards a recovery must see
// every acknowledged event exactly once.
func TestConcurrentIngestWhileCheckpoint(t *testing.T) {
	ds := buildDataset(t, 4)
	dir := t.TempDir()
	sys := openSystem(t, ds, dir, locater.PersistOptions{Fsync: true})

	seed := len(ds.Events) / 2
	if err := sys.Ingest(ds.Events[:seed]); err != nil {
		t.Fatal(err)
	}
	rest := ds.Events[seed:]

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	// Ingesters: stream the remaining events in small batches.
	const ingesters = 4
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(rest); i += ingesters {
				if err := sys.Ingest(rest[i : i+1]); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	// Checkpointer: snapshots race the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := sys.Checkpoint(); err != nil {
				errCh <- fmt.Errorf("checkpoint: %w", err)
				return
			}
		}
	}()
	// Readers: queries run against the moving store.
	wg.Add(1)
	go func() {
		defer wg.Done()
		queries := sampleQueries(ds, 10)
		for i := 0; i < 5; i++ {
			sys.LocateBatch(queries, 2)
		}
	}()
	// Labels: the third durable record type joins the race.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p, ok := personWithBaseRoom(ds)
		if !ok {
			return
		}
		for i := 0; i < 20; i++ {
			if err := sys.AddRoomLabel(p.Device, p.BaseRoom, simStart.Add(time.Duration(i)*time.Hour)); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	want := sys.NumEvents()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := openSystem(t, ds, dir, locater.PersistOptions{Fsync: true})
	defer recovered.Close()
	if got := recovered.NumEvents(); got != want {
		t.Fatalf("recovered %d events, want %d", got, want)
	}
}

// TestCloseCheckpointsAndReopens verifies the graceful path: Close writes a
// final snapshot, and a reopen that replays only the snapshot (no tail)
// matches the pre-shutdown state.
func TestCloseCheckpointsAndReopens(t *testing.T) {
	ds := buildDataset(t, 4)
	dir := t.TempDir()
	sys := openSystem(t, ds, dir, locater.PersistOptions{})
	if err := sys.Ingest(ds.Events); err != nil {
		t.Fatal(err)
	}
	want := sys.NumEvents()
	if _, _, _, ok := sys.PersistStats(); !ok {
		t.Error("PersistStats should report ok on a durable system")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent.
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := openSystem(t, ds, dir, locater.PersistOptions{})
	defer recovered.Close()
	if got := recovered.NumEvents(); got != want {
		t.Fatalf("recovered %d events, want %d", got, want)
	}
}

// TestNewSystemPersistAPIIsNoop: Checkpoint/Close on an in-memory system do
// nothing and report no error.
func TestNewSystemPersistAPIIsNoop(t *testing.T) {
	ds := buildDataset(t, 2)
	sys := newSystem(t, ds, locater.Config{})
	if err := sys.Checkpoint(); err != nil {
		t.Errorf("Checkpoint on in-memory system: %v", err)
	}
	if err := sys.Close(); err != nil {
		t.Errorf("Close on in-memory system: %v", err)
	}
	if _, _, _, ok := sys.PersistStats(); ok {
		t.Error("PersistStats should report !ok on an in-memory system")
	}
}

// personWithBaseRoom returns a simulated person that has a preferred room
// (some profiles, e.g. visitors, have none).
func personWithBaseRoom(ds *sim.Dataset) (sim.Person, bool) {
	for _, p := range ds.People {
		if p.BaseRoom != "" {
			return p, true
		}
	}
	return sim.Person{}, false
}

// sampleQueries picks deterministic daytime query points across devices.
func sampleQueries(ds *sim.Dataset, n int) []locater.Query {
	queries := make([]locater.Query, 0, n)
	for i := 0; len(queries) < n; i++ {
		p := ds.People[i%len(ds.People)]
		hour := 9 + (i*3)%9
		day := 1 + i%3
		queries = append(queries, locater.Query{
			Device: p.Device,
			Time:   simStart.Add(time.Duration(day*24+hour) * time.Hour),
		})
	}
	return queries
}
