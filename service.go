package locater

import (
	"context"
	"time"
)

// Locater is the service surface of a LOCATER deployment: everything the
// HTTP layer (internal/srv), the command-line tools, and the load harness
// need from an engine, independent of how that engine is assembled. Two
// local implementations exist — *System (one building, one store, one WAL)
// and internal/cluster.Cluster (N independent System shards behind a
// router) — plus internal/client.Client, which speaks the same interface to
// a remote locater-serve over the /v1 HTTP API. Code written against
// Locater is deployment-agnostic: in-process single-node, in-process
// sharded, and remote targets are interchangeable.
//
// Administrative operations that a particular implementation cannot perform
// (e.g. Checkpoint over HTTP) return errors.ErrUnsupported rather than
// silently succeeding.
type Locater interface {
	// Locate answers the query Q = (device, t) at all granularities.
	Locate(d DeviceID, t time.Time) (Result, error)
	// LocateContext is Locate under a context deadline; expired queries
	// fail with ErrDeadlineExceeded at pipeline stage boundaries.
	LocateContext(ctx context.Context, d DeviceID, t time.Time) (Result, error)
	// LocateBatch answers many queries on a bounded worker pool, results
	// in input order with per-query errors.
	LocateBatch(queries []Query, workers int) []BatchResult
	// LocateBatchContext is LocateBatch under a context deadline.
	LocateBatchContext(ctx context.Context, queries []Query, workers int) []BatchResult

	// Ingest adds a batch of connectivity events; on durable deployments
	// the batch is logged ahead of the acknowledgement.
	Ingest(events []Event) error
	// EstimateDeltas derives per-device validity intervals δ(d) from the
	// ingested logs (Appendix 9.1).
	EstimateDeltas(quantile float64, min, max time.Duration) error

	// Building returns the space metadata served. Sharded deployments
	// return their first shard's building; remote clients may return nil.
	Building() *Building
	// NumEvents, NumDevices, and NumQueries are whole-deployment counters
	// (summed across shards in a cluster).
	NumEvents() int
	NumDevices() int
	NumQueries() int
	// CacheStats reports the caching layer per tier, merged across shards.
	CacheStats() CacheStats
	// QueryStats reports the service-level latency picture, merged across
	// shards.
	QueryStats() QueryStats
	// PersistStats reports the durable store's shape; ok is false on
	// in-memory deployments. Clusters report per-shard sums.
	PersistStats() (segments int, lastLSN, durableLSN uint64, ok bool)

	// Checkpoint snapshots durable state and compacts the log(s); a no-op
	// on in-memory deployments.
	Checkpoint() error
	// Close releases the engine (final checkpoint on durable deployments).
	Close() error
}

// ShardInfo describes one shard of a sharded deployment, for topology
// introspection (the /v1/stats cluster block) and for reconciling merged
// counters against per-shard sums.
type ShardInfo struct {
	// Index is the shard's position in the router's table.
	Index int
	// Building is the shard's building name.
	Building string
	// Events, Devices, Queries are the shard's own counters; summing them
	// across shards reproduces the cluster-level figures.
	Events, Devices, Queries int
	// Segments, LastLSN, DurableLSN describe the shard's WAL; Durable is
	// false for in-memory shards (the LSN fields are then zero).
	Segments            int
	LastLSN, DurableLSN uint64
	Durable             bool
}

// Sharded is the optional topology interface a multi-shard Locater
// implements. The HTTP layer detects it to publish the cluster block under
// /v1/stats; a bare *System deliberately does not implement it.
type Sharded interface {
	// NumShards is the number of independent System shards.
	NumShards() int
	// ShardPolicy names the routing policy ("device" or "building").
	ShardPolicy() string
	// ShardInfos reports per-shard counters, index-ordered.
	ShardInfos() []ShardInfo
}

// Quarantiner is the optional service interface an engine implements when
// it can expose the ingest-time cleansing stage's quarantine. The HTTP
// layer detects it to serve GET /v1/quarantine; a cluster merges its
// shards' rings. A System always implements it — with cleansing disabled
// the quarantine is simply empty.
type Quarantiner interface {
	// Quarantine returns the newest cleansing-rejected events, newest
	// first, at most limit (limit ≤ 0 returns everything retained).
	Quarantine(limit int) []QuarantineEntry
	// CleanseStats reports the cleansing stage's per-rule counters.
	CleanseStats() CleanseStats
	// CleansingEnabled reports whether the ingest-time cleansing stage is
	// on (any shard, on a cluster).
	CleansingEnabled() bool
}

// Compile-time check: the single-building engine implements the full
// service interface and the quarantine surface.
var (
	_ Locater     = (*System)(nil)
	_ Quarantiner = (*System)(nil)
)
