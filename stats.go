package locater

import (
	"math"
	"sync/atomic"
	"time"
)

// latencyHist is a lock-free power-of-two-bucketed latency histogram:
// bucket i counts observations with latency < 2^i microseconds (the last
// bucket is open-ended). Observations are single atomic increments, so the
// query hot path pays a handful of nanoseconds for full latency visibility.
type latencyHist struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
	buckets [32]atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		old := h.maxNs.Load()
		if ns <= old || h.maxNs.CompareAndSwap(old, ns) {
			break
		}
	}
	us := ns / 1000
	b := 0
	for us >= 1<<b && b < len(h.buckets)-1 {
		b++
	}
	h.buckets[b].Add(1)
}

// quantile returns the upper bound (µs) of the bucket holding the q-th
// observation — an upper estimate within a factor of 2.
func (h *latencyHist) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	cum := int64(0)
	for b := range h.buckets {
		cum += h.buckets[b].Load()
		if cum >= target {
			return float64(int64(1) << b)
		}
	}
	return float64(int64(1) << (len(h.buckets) - 1))
}

func (h *latencyHist) snapshot() LatencyStats {
	n := h.count.Load()
	st := LatencyStats{Count: n}
	if n == 0 {
		return st
	}
	st.MeanMicros = float64(h.sumNs.Load()) / float64(n) / 1000
	st.P50Micros = h.quantile(0.50)
	st.P99Micros = h.quantile(0.99)
	st.MaxMicros = float64(h.maxNs.Load()) / 1000
	return st
}

// countHist is the same shape over small integer counts (neighbors
// processed per query): bucket i counts observations with value < 2^i.
type countHist struct {
	count   atomic.Int64
	buckets [24]atomic.Int64
}

func (h *countHist) observe(v int) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	b := 0
	for v >= 1<<b && b < len(h.buckets)-1 {
		b++
	}
	h.buckets[b].Add(1)
}

func (h *countHist) quantile(q float64) int {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	cum := int64(0)
	for b := range h.buckets {
		cum += h.buckets[b].Load()
		if cum >= target {
			return 1 << b
		}
	}
	return 1 << (len(h.buckets) - 1)
}

// LatencyStats summarizes one latency population. Quantiles are upper
// estimates from a power-of-two histogram (within 2× of the true value);
// Mean and Max are exact.
type LatencyStats struct {
	Count      int64
	MeanMicros float64
	P50Micros  float64
	P99Micros  float64
	MaxMicros  float64
}

// QueryStats reports the query engine's service-level picture: cold
// (computed) versus cached (result-cache hit) latency populations, and the
// distribution of neighbors Algorithm 2 processed on cold queries.
type QueryStats struct {
	Cold   LatencyStats
	Cached LatencyStats
	// NeighborsProcessedP50/P99 are upper-estimate quantiles of
	// ProcessedNeighbors across cold queries.
	NeighborsProcessedP50 int
	NeighborsProcessedP99 int
	// DeadlineExceeded counts queries that failed with ErrDeadlineExceeded:
	// their context deadline expired before (or between) the pipeline
	// stages. Neither latency population includes them.
	DeadlineExceeded int64
}

// queryMetrics is the System's recorder.
type queryMetrics struct {
	cold             latencyHist
	cached           latencyHist
	neighbors        countHist
	deadlineExceeded atomic.Int64
}

func (m *queryMetrics) snapshot() QueryStats {
	return QueryStats{
		Cold:                  m.cold.snapshot(),
		Cached:                m.cached.snapshot(),
		NeighborsProcessedP50: m.neighbors.quantile(0.50),
		NeighborsProcessedP99: m.neighbors.quantile(0.99),
		DeadlineExceeded:      m.deadlineExceeded.Load(),
	}
}

// QueryStats returns the cold/cached latency histograms' summaries and the
// neighbors-processed distribution. Served under GET /stats (query_stats).
func (s *System) QueryStats() QueryStats {
	return s.metrics.snapshot()
}

// mergeLatency folds per-shard latency summaries into one population:
// counts sum, means combine weighted by count, and the quantiles and
// maximum take the worst shard. Quantiles merged this way remain upper
// estimates — consistent with the power-of-two histograms they come from —
// because the true cluster-wide quantile can never exceed the worst
// per-shard one.
func mergeLatency(parts ...LatencyStats) LatencyStats {
	var out LatencyStats
	var weighted float64
	for _, p := range parts {
		out.Count += p.Count
		weighted += p.MeanMicros * float64(p.Count)
		out.P50Micros = math.Max(out.P50Micros, p.P50Micros)
		out.P99Micros = math.Max(out.P99Micros, p.P99Micros)
		out.MaxMicros = math.Max(out.MaxMicros, p.MaxMicros)
	}
	if out.Count > 0 {
		out.MeanMicros = weighted / float64(out.Count)
	}
	return out
}

// MergeQueryStats folds per-shard QueryStats into one cluster-level
// summary: counts and counters sum, latency populations merge per
// mergeLatency, and the neighbors-processed quantiles take the worst shard
// (upper estimates, like the per-shard figures themselves).
func MergeQueryStats(parts ...QueryStats) QueryStats {
	var out QueryStats
	cold := make([]LatencyStats, len(parts))
	cached := make([]LatencyStats, len(parts))
	for i, p := range parts {
		cold[i], cached[i] = p.Cold, p.Cached
		if p.NeighborsProcessedP50 > out.NeighborsProcessedP50 {
			out.NeighborsProcessedP50 = p.NeighborsProcessedP50
		}
		if p.NeighborsProcessedP99 > out.NeighborsProcessedP99 {
			out.NeighborsProcessedP99 = p.NeighborsProcessedP99
		}
		out.DeadlineExceeded += p.DeadlineExceeded
	}
	out.Cold = mergeLatency(cold...)
	out.Cached = mergeLatency(cached...)
	return out
}

// mergeTier sums two cache tiers' sizes, bounds, and counters.
func mergeTier(a, b CacheTierStats) CacheTierStats {
	return CacheTierStats{
		Size:          a.Size + b.Size,
		Capacity:      a.Capacity + b.Capacity,
		Hits:          a.Hits + b.Hits,
		Misses:        a.Misses + b.Misses,
		Evictions:     a.Evictions + b.Evictions,
		Invalidations: a.Invalidations + b.Invalidations,
	}
}

// MergeCacheStats folds per-shard cache statistics into the cluster-level
// picture: every tier's sizes, capacities, and counters sum (each shard
// owns independent caches, so the totals are exact), the occupancy index
// and segment tier sum their shapes and traffic, and Enabled reports
// whether any shard runs the caching engine. The occupancy bucket width
// and segment seal threshold are taken from the first shard with the
// feature enabled (shards share one configuration in practice); ColdTier
// reports whether any shard spills segments to disk.
func MergeCacheStats(parts ...CacheStats) CacheStats {
	var out CacheStats
	for _, p := range parts {
		out.Enabled = out.Enabled || p.Enabled
		out.GraphEdges += p.GraphEdges
		out.Affinity = mergeTier(out.Affinity, p.Affinity)
		out.CoarseModels = mergeTier(out.CoarseModels, p.CoarseModels)
		out.Results = mergeTier(out.Results, p.Results)
		occ := &out.Occupancy
		if p.Occupancy.Enabled && !occ.Enabled {
			occ.Enabled = true
			occ.Bucket = p.Occupancy.Bucket
		}
		occ.Buckets += p.Occupancy.Buckets
		occ.Entries += p.Occupancy.Entries
		occ.Lookups += p.Occupancy.Lookups
		occ.FallbackScans += p.Occupancy.FallbackScans
		seg := &out.Segments
		if p.Segments.Enabled && !seg.Enabled {
			seg.Enabled = true
			seg.MaxEvents = p.Segments.MaxEvents
			seg.BlockEvents = p.Segments.BlockEvents
		}
		seg.ColdTier = seg.ColdTier || p.Segments.ColdTier
		seg.Segments += p.Segments.Segments
		seg.SegmentEvents += p.Segments.SegmentEvents
		seg.HeadEvents += p.Segments.HeadEvents
		seg.EncodedBytes += p.Segments.EncodedBytes
		seg.Seals += p.Segments.Seals
		seg.SealFailures += p.Segments.SealFailures
		seg.PageIns += p.Segments.PageIns
		seg.DecodedBytes += p.Segments.DecodedBytes
		seg.CacheHits += p.Segments.CacheHits
		seg.CacheSize += p.Segments.CacheSize
		seg.CacheCapacity += p.Segments.CacheCapacity
		seg.CachedBytes += p.Segments.CachedBytes
		seg.DecodeFailures += p.Segments.DecodeFailures
		seg.PointLookups += p.Segments.PointLookups
		seg.LookupDecodedBytes += p.Segments.LookupDecodedBytes
		seg.BlockSkips += p.Segments.BlockSkips
		seg.IndexLoads += p.Segments.IndexLoads
		seg.Compactions += p.Segments.Compactions
		seg.CompactionFailures += p.Segments.CompactionFailures
		seg.Backend.MappedFiles += p.Segments.Backend.MappedFiles
		seg.Backend.MappedBytes += p.Segments.Backend.MappedBytes
		seg.Backend.Remaps += p.Segments.Backend.Remaps
		seg.Backend.Rewrites += p.Segments.Backend.Rewrites
		seg.Backend.RewriteFailures += p.Segments.Backend.RewriteFailures
		seg.Backend.ReclaimedBytes += p.Segments.Backend.ReclaimedBytes
		cl := &out.Cleanse
		cl.Ingested += p.Cleanse.Ingested
		cl.Kept += p.Cleanse.Kept
		cl.Duplicates += p.Cleanse.Duplicates
		cl.Reassociations += p.Cleanse.Reassociations
		cl.Oscillations += p.Cleanse.Oscillations
		cl.ImpossibleTransitions += p.Cleanse.ImpossibleTransitions
		cl.FlaggedDevices += p.Cleanse.FlaggedDevices
		cl.Quarantined += p.Cleanse.Quarantined
		cl.QuarantineEvicted += p.Cleanse.QuarantineEvicted
		mc := &out.Maintenance.Coarse
		mc.ObserveNanos += p.Maintenance.Coarse.ObserveNanos
		mc.TrainNanos += p.Maintenance.Coarse.TrainNanos
		mc.Trains += p.Maintenance.Coarse.Trains
		mc.Rebuilds += p.Maintenance.Coarse.Rebuilds
		mc.OutOfOrder += p.Maintenance.Coarse.OutOfOrder
		mc.StatsDevices += p.Maintenance.Coarse.StatsDevices
		ma := &out.Maintenance.Affinity
		ma.FallbackNanos += p.Maintenance.Affinity.FallbackNanos
		ma.ScopedKept += p.Maintenance.Affinity.ScopedKept
		ma.ScopedStale += p.Maintenance.Affinity.ScopedStale
		ma.TrackedDevices += p.Maintenance.Affinity.TrackedDevices
		ma.CoOccurPairs += p.Maintenance.Affinity.CoOccurPairs
		ma.CoOccurObservations += p.Maintenance.Affinity.CoOccurObservations
		ma.CoOccurDropped += p.Maintenance.Affinity.CoOccurDropped
	}
	return out
}
