package locater

import (
	"math"
	"sync/atomic"
	"time"
)

// latencyHist is a lock-free power-of-two-bucketed latency histogram:
// bucket i counts observations with latency < 2^i microseconds (the last
// bucket is open-ended). Observations are single atomic increments, so the
// query hot path pays a handful of nanoseconds for full latency visibility.
type latencyHist struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
	buckets [32]atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		old := h.maxNs.Load()
		if ns <= old || h.maxNs.CompareAndSwap(old, ns) {
			break
		}
	}
	us := ns / 1000
	b := 0
	for us >= 1<<b && b < len(h.buckets)-1 {
		b++
	}
	h.buckets[b].Add(1)
}

// quantile returns the upper bound (µs) of the bucket holding the q-th
// observation — an upper estimate within a factor of 2.
func (h *latencyHist) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	cum := int64(0)
	for b := range h.buckets {
		cum += h.buckets[b].Load()
		if cum >= target {
			return float64(int64(1) << b)
		}
	}
	return float64(int64(1) << (len(h.buckets) - 1))
}

func (h *latencyHist) snapshot() LatencyStats {
	n := h.count.Load()
	st := LatencyStats{Count: n}
	if n == 0 {
		return st
	}
	st.MeanMicros = float64(h.sumNs.Load()) / float64(n) / 1000
	st.P50Micros = h.quantile(0.50)
	st.P99Micros = h.quantile(0.99)
	st.MaxMicros = float64(h.maxNs.Load()) / 1000
	return st
}

// countHist is the same shape over small integer counts (neighbors
// processed per query): bucket i counts observations with value < 2^i.
type countHist struct {
	count   atomic.Int64
	buckets [24]atomic.Int64
}

func (h *countHist) observe(v int) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	b := 0
	for v >= 1<<b && b < len(h.buckets)-1 {
		b++
	}
	h.buckets[b].Add(1)
}

func (h *countHist) quantile(q float64) int {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	cum := int64(0)
	for b := range h.buckets {
		cum += h.buckets[b].Load()
		if cum >= target {
			return 1 << b
		}
	}
	return 1 << (len(h.buckets) - 1)
}

// LatencyStats summarizes one latency population. Quantiles are upper
// estimates from a power-of-two histogram (within 2× of the true value);
// Mean and Max are exact.
type LatencyStats struct {
	Count      int64
	MeanMicros float64
	P50Micros  float64
	P99Micros  float64
	MaxMicros  float64
}

// QueryStats reports the query engine's service-level picture: cold
// (computed) versus cached (result-cache hit) latency populations, and the
// distribution of neighbors Algorithm 2 processed on cold queries.
type QueryStats struct {
	Cold   LatencyStats
	Cached LatencyStats
	// NeighborsProcessedP50/P99 are upper-estimate quantiles of
	// ProcessedNeighbors across cold queries.
	NeighborsProcessedP50 int
	NeighborsProcessedP99 int
	// DeadlineExceeded counts queries that failed with ErrDeadlineExceeded:
	// their context deadline expired before (or between) the pipeline
	// stages. Neither latency population includes them.
	DeadlineExceeded int64
}

// queryMetrics is the System's recorder.
type queryMetrics struct {
	cold             latencyHist
	cached           latencyHist
	neighbors        countHist
	deadlineExceeded atomic.Int64
}

func (m *queryMetrics) snapshot() QueryStats {
	return QueryStats{
		Cold:                  m.cold.snapshot(),
		Cached:                m.cached.snapshot(),
		NeighborsProcessedP50: m.neighbors.quantile(0.50),
		NeighborsProcessedP99: m.neighbors.quantile(0.99),
		DeadlineExceeded:      m.deadlineExceeded.Load(),
	}
}

// QueryStats returns the cold/cached latency histograms' summaries and the
// neighbors-processed distribution. Served under GET /stats (query_stats).
func (s *System) QueryStats() QueryStats {
	return s.metrics.snapshot()
}
