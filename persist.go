package locater

import (
	"fmt"
	"log"
	"time"

	"locater/internal/store"
	"locater/internal/wal"
)

// PersistOptions configures durable operation for Open.
type PersistOptions struct {
	// Fsync makes every acknowledged write (Ingest, SetDelta,
	// AddRoomLabel, …) durable before the call returns: a process or
	// machine crash loses nothing that was acknowledged. Concurrent writers
	// share fsyncs (group commit), so batched ingest keeps its throughput.
	// Without Fsync, writes are flushed to the OS on every commit and to
	// disk on checkpoints; a machine crash can lose the tail.
	Fsync bool
	// SnapshotInterval is how often a background checkpoint runs
	// (snapshot + log compaction). Zero disables automatic checkpoints;
	// call Checkpoint explicitly.
	SnapshotInterval time.Duration
	// SegmentSize is the write-ahead log's segment rotation threshold in
	// bytes (default 64 MiB).
	SegmentSize int64
	// OnCheckpointError receives errors from the background snapshot loop
	// (they are retried at the next tick, but a persistent failure — e.g.
	// a full disk — means the log grows uncompacted). Nil logs them via
	// the standard logger.
	OnCheckpointError func(error)
}

// Open assembles a System like New and attaches a durable event store
// rooted at dir: an append-only write-ahead log plus periodic snapshots
// (see internal/wal). If dir holds a previous run's state, Open recovers it
// — the newest valid snapshot plus the log tail, truncating a torn final
// record — before serving, so a restarted system answers exactly as the one
// that was shut down or killed.
//
// The caller must Close the returned system to checkpoint and release the
// log; after Close the directory can be reopened.
func Open(dir string, cfg Config, popts PersistOptions) (*System, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	w, rec, err := wal.Open(dir, wal.Options{Fsync: popts.Fsync, SegmentSize: popts.SegmentSize})
	if err != nil {
		return nil, fmt.Errorf("locater: opening event store: %w", err)
	}
	// Restore the recovered state before attaching the backend, so replayed
	// mutations are not re-logged.
	for d, delta := range rec.Deltas {
		if err := s.store.SetDelta(d, delta); err != nil {
			w.Close()
			return nil, fmt.Errorf("locater: restoring deltas: %w", err)
		}
	}
	if len(rec.Events) > 0 {
		if _, err := s.store.Ingest(rec.Events); err != nil {
			w.Close()
			return nil, fmt.Errorf("locater: replaying events: %w", err)
		}
	}
	s.store.AdvanceNextID(rec.NextID)
	s.labels.Restore(rec.Labels)
	s.store.AttachBackend(w)
	s.wal = w

	if popts.SnapshotInterval > 0 {
		onErr := popts.OnCheckpointError
		if onErr == nil {
			onErr = func(err error) { log.Printf("locater: background checkpoint: %v", err) }
		}
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapshotLoop(popts.SnapshotInterval, onErr)
	}
	return s, nil
}

// snapshotLoop checkpoints on a timer until Close. Errors are reported to
// onErr and retried at the next tick; Close runs a final checkpoint whose
// error is surfaced to the caller directly.
func (s *System) snapshotLoop(interval time.Duration, onErr func(error)) {
	defer close(s.snapDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.Checkpoint(); err != nil {
				onErr(err)
			}
		case <-s.snapStop:
			return
		}
	}
}

// Checkpoint writes a snapshot of the full durable state — events,
// per-device δs, crowd-sourced labels, the event-ID counter — and compacts
// the write-ahead log (segments fully covered by the snapshot are deleted).
// Recovery then replays the snapshot plus the short log tail instead of the
// whole history. A no-op on systems built with New.
//
// Checkpoint briefly blocks writers while it captures state (one pass over
// the data); the snapshot file is written with no system-wide lock held.
func (s *System) Checkpoint() error {
	if s.wal == nil {
		return nil
	}
	// The write lock excludes every appender (Ingest, SetDelta,
	// AddRoomLabel, EstimateDeltas), so the captured state and the captured
	// log position agree exactly.
	s.persistMu.Lock()
	st := s.store.SnapshotState()
	labels := s.labels.Snapshot()
	lsn := s.wal.LastLSN()
	s.persistMu.Unlock()

	return s.wal.WriteSnapshot(lsn, &wal.SnapshotData{
		NextID: st.NextID,
		Deltas: st.Deltas,
		Events: st.Events,
		Labels: labels,
	})
}

// Close checkpoints and releases the durable event store: the snapshot
// loop is stopped, a final snapshot is written, and the log is flushed,
// synced, and closed. A no-op (nil) on systems built with New. The system
// must not be used after Close.
func (s *System) Close() error {
	if s.wal == nil {
		return nil
	}
	if s.snapStop != nil {
		close(s.snapStop)
		<-s.snapDone
		s.snapStop = nil
	}
	err := s.Checkpoint()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.store.AttachBackend(nil)
	s.wal = nil
	return err
}

// PersistStats reports the durable event store's shape: segment count, last
// appended log position, and highest position known durable. ok is false
// for systems built with New.
func (s *System) PersistStats() (segments int, lastLSN, durableLSN uint64, ok bool) {
	if s.wal == nil {
		return 0, 0, 0, false
	}
	segments, lastLSN, durableLSN = s.wal.Stats()
	return segments, lastLSN, durableLSN, true
}

// Compile-time check: the WAL satisfies the store's durability hook.
var _ store.Backend = (*wal.WAL)(nil)
