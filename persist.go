package locater

import (
	"fmt"
	"log"
	"path/filepath"
	"time"

	"locater/internal/store"
	"locater/internal/wal"
)

// PersistOptions configures durable operation for Open.
type PersistOptions struct {
	// Fsync makes every acknowledged write (Ingest, SetDelta,
	// AddRoomLabel, …) durable before the call returns: a process or
	// machine crash loses nothing that was acknowledged. Concurrent writers
	// share fsyncs (group commit), so batched ingest keeps its throughput.
	// Without Fsync, writes are flushed to the OS on every commit and to
	// disk on checkpoints; a machine crash can lose the tail.
	Fsync bool
	// SnapshotInterval is how often a background checkpoint runs
	// (snapshot + log compaction). Zero disables automatic checkpoints;
	// call Checkpoint explicitly.
	SnapshotInterval time.Duration
	// SegmentSize is the write-ahead log's segment rotation threshold in
	// bytes (default 64 MiB).
	SegmentSize int64
	// OnCheckpointError receives errors from the background snapshot loop
	// (they are retried at the next tick, but a persistent failure — e.g.
	// a full disk — means the log grows uncompacted). Nil logs them via
	// the standard logger.
	OnCheckpointError func(error)
}

// Open assembles a System like New and attaches a durable event store
// rooted at dir: an append-only write-ahead log plus periodic snapshots
// (see internal/wal), with sealed event segments spilled to a cold tier
// under "<dir>/segments" (Config.ColdTierDir overrides the location). If
// dir holds a previous run's state, Open recovers it — the newest valid
// snapshot plus the log tail, truncating a torn final record — before
// serving, so a restarted system answers exactly as the one that was shut
// down or killed. Recovery is incremental: sealed segments named by the
// snapshot manifest are registered by metadata alone and paged in lazily;
// only the mutable heads and the log tail are replayed event-by-event.
//
// The caller must Close the returned system to checkpoint and release the
// log; after Close the directory can be reopened.
func Open(dir string, cfg Config, popts PersistOptions) (*System, error) {
	if cfg.ColdTierDir == "" {
		cfg.ColdTierDir = filepath.Join(dir, "segments")
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	w, rec, err := wal.Open(dir, wal.Options{Fsync: popts.Fsync, SegmentSize: popts.SegmentSize})
	if err != nil {
		return nil, fmt.Errorf("locater: opening event store: %w", err)
	}
	// Restore the recovered state before attaching the backend, so replayed
	// mutations are not re-logged. Segment metadata goes first (it requires
	// an empty store), then deltas, then the head events and log tail, which
	// replay through Ingest and may re-seal past the restored segments.
	if err := s.store.RestoreSegments(rec.Segments); err != nil {
		w.Close()
		return nil, fmt.Errorf("locater: restoring segments: %w", err)
	}
	for d, delta := range rec.Deltas {
		if err := s.store.SetDelta(d, delta); err != nil {
			w.Close()
			return nil, fmt.Errorf("locater: restoring deltas: %w", err)
		}
	}
	if len(rec.Events) > 0 {
		if _, err := s.store.Ingest(rec.Events); err != nil {
			w.Close()
			return nil, fmt.Errorf("locater: replaying events: %w", err)
		}
	}
	s.store.AdvanceNextID(rec.NextID)
	s.labels.Restore(rec.Labels)
	s.store.AttachBackend(w)
	s.wal = w

	if popts.SnapshotInterval > 0 {
		onErr := popts.OnCheckpointError
		if onErr == nil {
			onErr = func(err error) { log.Printf("locater: background checkpoint: %v", err) }
		}
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapshotLoop(popts.SnapshotInterval, onErr)
	}
	return s, nil
}

// snapshotLoop checkpoints on a timer until Close. Errors are reported to
// onErr and retried at the next tick; Close runs a final checkpoint whose
// error is surfaced to the caller directly.
func (s *System) snapshotLoop(interval time.Duration, onErr func(error)) {
	defer close(s.snapDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.Checkpoint(); err != nil {
				onErr(err)
			}
		case <-s.snapStop:
			return
		}
	}
}

// Checkpoint writes an incremental snapshot of the durable state — the
// mutable per-device heads, the sealed-segment manifest, per-device δs,
// crowd-sourced labels, the event-ID counter — and compacts the write-ahead
// log (segments fully covered by the snapshot are deleted). Sealed event
// segments are not rewritten: their payloads are already durable in the
// cold tier, so checkpoint cost is proportional to the mutable heads, not
// total history. Recovery then registers the manifest (metadata only),
// replays the heads plus the short log tail, and never re-decodes sealed
// segments. A no-op on systems built with New.
//
// Checkpoint briefly blocks writers while it captures state (one pass over
// the heads); the segment fsync and snapshot file are written with no
// system-wide lock held.
func (s *System) Checkpoint() error {
	if s.wal == nil {
		return nil
	}
	// The write lock excludes every appender (Ingest, SetDelta,
	// AddRoomLabel, EstimateDeltas), so the captured state and the captured
	// log position agree exactly.
	s.persistMu.Lock()
	// Merge runt segments before capturing the manifest: the checkpoint
	// then publishes the compacted layout, and the orphaned pre-merge
	// payloads are never referenced again.
	s.store.CompactRuntSegments()
	st := s.store.CheckpointState()
	labels := s.labels.Snapshot()
	lsn := s.wal.LastLSN()
	s.persistMu.Unlock()

	// Segment payloads must be durable before a manifest referencing them
	// is published: the manifest write is the checkpoint's commit point. A
	// crash between the two recovers from the previous manifest plus the
	// log tail — re-sealing produces duplicate (device, seq) records the
	// cold tier resolves last-wins.
	if err := s.store.SyncSegments(); err != nil {
		return fmt.Errorf("locater: syncing segments: %w", err)
	}
	if err := s.wal.WriteSnapshotV2(lsn, &wal.SnapshotData{
		NextID:   st.NextID,
		Deltas:   st.Deltas,
		Events:   st.Heads,
		Segments: st.Segments,
		Labels:   labels,
	}); err != nil {
		return err
	}
	// With the new manifest published (and older snapshots pruned to the
	// fallback), cold-tier records referenced by no retained snapshot and no
	// live segment are dead forever: superseded by a re-seal or merged away
	// by compaction. Rewrite the worst per-device files to drop them —
	// strictly after the commit point, so a crash anywhere in Checkpoint
	// still recovers from a manifest whose payloads are all intact.
	// Reclamation is best-effort space maintenance: a failure is reported
	// (the checkpoint itself already succeeded) and retried next time.
	retained, err := s.wal.RetainedSegmentManifests()
	if err != nil {
		return fmt.Errorf("locater: listing retained snapshots: %w", err)
	}
	if _, err := s.store.ReclaimSegments(retained); err != nil {
		return fmt.Errorf("locater: reclaiming cold tier: %w", err)
	}
	return nil
}

// Close checkpoints and releases the durable event store: the snapshot
// loop is stopped, a final snapshot is written, and the log is flushed,
// synced, and closed. A no-op (nil) on systems built with New. The system
// must not be used after Close.
func (s *System) Close() error {
	if s.wal == nil {
		return nil
	}
	if s.snapStop != nil {
		close(s.snapStop)
		<-s.snapDone
		s.snapStop = nil
	}
	err := s.Checkpoint()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	if cerr := s.store.CloseSegments(); err == nil {
		err = cerr
	}
	s.store.AttachBackend(nil)
	s.wal = nil
	return err
}

// PersistStats reports the durable event store's shape: segment count, last
// appended log position, and highest position known durable. ok is false
// for systems built with New.
func (s *System) PersistStats() (segments int, lastLSN, durableLSN uint64, ok bool) {
	if s.wal == nil {
		return 0, 0, 0, false
	}
	segments, lastLSN, durableLSN = s.wal.Stats()
	return segments, lastLSN, durableLSN, true
}

// Compile-time check: the WAL satisfies the store's durability hook.
var _ store.Backend = (*wal.WAL)(nil)
