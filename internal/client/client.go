// Package client is the Go client for locater-serve's /v1 HTTP API. It
// implements the locater.Locater service interface, so a remote deployment
// is interchangeable with an in-process *locater.System or sharded cluster:
// cmd/locater-query's -target mode and cmd/locater-loadgen's remote driver
// both drive this one client instead of hand-rolling requests.
//
// Fidelity caveats of the wire format, documented per method: localization
// answers come back without the diagnostic counters (CoarseConfidence,
// ProcessedNeighbors, TotalNeighbors — the JSON surface omits them), the
// whole-deployment counters are fetched via /v1/stats on demand, and
// administrative operations the API does not expose (Checkpoint,
// EstimateDeltas) fail with errors.ErrUnsupported rather than silently
// succeeding.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"locater"
	"locater/internal/srv"
)

// Client speaks the /v1 API at one base URL. Safe for concurrent use (the
// underlying http.Client is).
type Client struct {
	base string
	hc   *http.Client
}

// Compile-time check: a remote deployment is a full Locater.
var _ locater.Locater = (*Client)(nil)

// Option customizes the client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (timeouts, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New builds a client for the locater-serve at base (e.g.
// "http://host:8080"). The default transport has no timeout; callers that
// need a backstop pass WithHTTPClient.
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response decoded from the server's uniform error
// envelope. Status is the HTTP code; Code is the machine-readable envelope
// code (bad_request, queue_full, deadline_exceeded, ...); RetryAfter is the
// server's retry hint, zero when none was given.
type APIError struct {
	Status     int
	Code       string
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("locater: server rejected request: %s (http %d, code %s)", e.Message, e.Status, e.Code)
	}
	return fmt.Sprintf("locater: server rejected request: http %d", e.Status)
}

// Do executes one request and returns the HTTP status plus the response
// body of failures (success bodies are drained, not kept — the load
// harness's dispatcher only classifies errors). Error bodies are capped at
// 4 KiB. Transport failures return err != nil with status 0.
func (c *Client) Do(method, path string, body []byte) (int, []byte, error) {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rdr)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		_, err := io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil, err
	}
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return resp.StatusCode, b, nil
}

// doJSON executes one request and decodes a 2xx body into out (out == nil
// drains it); non-2xx responses come back as *APIError decoded from the
// envelope.
func (c *Client) doJSON(method, path string, body []byte, out any) error {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rdr)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return apiErrorOf(resp)
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func apiErrorOf(resp *http.Response) *APIError {
	apiErr := &APIError{Status: resp.StatusCode}
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var env srv.ErrorEnvelope
	if json.Unmarshal(b, &env) == nil {
		apiErr.Code = env.Code
		apiErr.Message = env.Message
		if apiErr.Message == "" {
			apiErr.Message = env.LegacyError
		}
		apiErr.RetryAfter = time.Duration(env.RetryAfterMillis) * time.Millisecond
	}
	return apiErr
}

// deadlineParam renders a context deadline as the API's deadline_ms
// parameter ("" when the context has none).
func deadlineParam(ctx context.Context) string {
	dl, ok := ctx.Deadline()
	if !ok {
		return ""
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return fmt.Sprintf("deadline_ms=%d", ms)
}

func resultOf(lr srv.LocateResponse) locater.Result {
	return locater.Result{
		Outside:         lr.Outside,
		Region:          locater.RegionID(lr.Region),
		Room:            locater.RoomID(lr.Room),
		RoomProbability: lr.RoomProb,
		Repaired:        lr.Repaired,
	}
}

// Locate answers Q = (device, t) via GET /v1/locate. The wire format omits
// the diagnostic counters, so CoarseConfidence/ProcessedNeighbors/
// TotalNeighbors are zero in the returned Result.
func (c *Client) Locate(d locater.DeviceID, t time.Time) (locater.Result, error) {
	return c.LocateContext(context.Background(), d, t)
}

// LocateContext is Locate with the context deadline forwarded as
// deadline_ms; a server-side expiry surfaces as locater.ErrDeadlineExceeded.
func (c *Client) LocateContext(ctx context.Context, d locater.DeviceID, t time.Time) (locater.Result, error) {
	path := fmt.Sprintf("/v1/locate?device=%s&time=%s",
		url.QueryEscape(string(d)), url.QueryEscape(t.UTC().Format(time.RFC3339)))
	if dl := deadlineParam(ctx); dl != "" {
		path += "&" + dl
	}
	var lr srv.LocateResponse
	if err := c.doJSON(http.MethodGet, path, nil, &lr); err != nil {
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusGatewayTimeout {
			return locater.Result{}, locater.ErrDeadlineExceeded
		}
		return locater.Result{}, err
	}
	return resultOf(lr), nil
}

// LocateBatch answers many queries via POST /v1/locate/batch, results in
// input order with per-query errors. workers is forwarded as the advisory
// server-side pool bound.
func (c *Client) LocateBatch(queries []locater.Query, workers int) []locater.BatchResult {
	return c.LocateBatchContext(context.Background(), queries, workers)
}

// LocateBatchContext is LocateBatch with the context deadline forwarded as
// the whole-batch deadline_ms. A request-level failure (transport, 4xx/5xx)
// is fanned to every slot, mirroring the in-process contract that one
// result always comes back per query.
func (c *Client) LocateBatchContext(ctx context.Context, queries []locater.Query, workers int) []locater.BatchResult {
	out := make([]locater.BatchResult, len(queries))
	for i, q := range queries {
		out[i].Query = q
	}
	if len(queries) == 0 {
		return out
	}
	req := srv.BatchLocateRequest{Queries: make([]srv.BatchQuery, len(queries)), Workers: workers}
	for i, q := range queries {
		req.Queries[i] = srv.BatchQuery{
			Device: string(q.Device),
			Time:   q.Time.UTC().Format(time.RFC3339),
		}
	}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.DeadlineMillis = int(ms)
	}
	body, err := json.Marshal(req)
	if err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	var resp srv.BatchLocateResponse
	if err := c.doJSON(http.MethodPost, "/v1/locate/batch", body, &resp); err != nil {
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusGatewayTimeout {
			err = locater.ErrDeadlineExceeded
		}
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	if len(resp.Results) != len(queries) {
		err := fmt.Errorf("locater: batch answered %d of %d queries", len(resp.Results), len(queries))
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	for i, r := range resp.Results {
		if r.Error != "" {
			if strings.Contains(r.Error, "deadline exceeded") {
				out[i].Err = locater.ErrDeadlineExceeded
			} else {
				out[i].Err = errors.New(r.Error)
			}
			continue
		}
		out[i].Result = resultOf(r.LocateResponse)
	}
	return out
}

// Ingest streams a batch of connectivity events via POST /v1/ingest.
func (c *Client) Ingest(events []locater.Event) error {
	rows := make([]srv.IngestEvent, len(events))
	for i, e := range events {
		rows[i] = srv.IngestEvent{
			Device: string(e.Device),
			Time:   e.Time.UTC().Format(time.RFC3339Nano),
			AP:     string(e.AP),
		}
	}
	body, err := json.Marshal(rows)
	if err != nil {
		return err
	}
	return c.doJSON(http.MethodPost, "/v1/ingest", body, nil)
}

// EstimateDeltas is not exposed over the wire; it returns
// errors.ErrUnsupported (the server estimates deltas at startup).
func (c *Client) EstimateDeltas(quantile float64, min, max time.Duration) error {
	return fmt.Errorf("locater: remote EstimateDeltas: %w", errors.ErrUnsupported)
}

// Building returns nil: the wire format reports the building's name (see
// Stats), not its full metadata model.
func (c *Client) Building() *locater.Building { return nil }

// Stats fetches GET /v1/stats — the full-fidelity deployment picture,
// including the admission and cluster blocks the typed accessors below
// do not surface.
func (c *Client) Stats() (*srv.StatsResponse, error) {
	var st srv.StatsResponse
	if err := c.doJSON(http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// NumEvents fetches the deployment's event count via /v1/stats; it returns
// 0 when the server is unreachable (the interface carries no error slot —
// callers needing failure visibility use Stats).
func (c *Client) NumEvents() int {
	st, err := c.Stats()
	if err != nil {
		return 0
	}
	return st.Events
}

// NumDevices fetches the deployment's device count via /v1/stats (0 on
// transport failure, like NumEvents).
func (c *Client) NumDevices() int {
	st, err := c.Stats()
	if err != nil {
		return 0
	}
	return st.Devices
}

// NumQueries fetches the deployment's served-query count via /v1/stats (0
// on transport failure, like NumEvents).
func (c *Client) NumQueries() int {
	st, err := c.Stats()
	if err != nil {
		return 0
	}
	return st.Queries
}

// CacheStats fetches /v1/stats and maps the caches block back onto the
// engine's structure (zero value on transport failure).
func (c *Client) CacheStats() locater.CacheStats {
	st, err := c.Stats()
	if err != nil {
		return locater.CacheStats{}
	}
	cs := st.Caches
	return locater.CacheStats{
		Enabled:      cs.Enabled,
		GraphEdges:   cs.GraphEdges,
		Affinity:     tierOf(cs.Affinity),
		CoarseModels: tierOf(cs.CoarseModels),
		Results:      tierOf(cs.Results),
		Occupancy: locater.OccupancyIndexStats{
			Enabled:       cs.Occupancy.Enabled,
			Bucket:        time.Duration(cs.Occupancy.BucketSeconds * float64(time.Second)),
			Buckets:       cs.Occupancy.Buckets,
			Entries:       cs.Occupancy.Entries,
			Lookups:       cs.Occupancy.Lookups,
			FallbackScans: cs.Occupancy.FallbackScans,
		},
	}
}

func tierOf(t srv.CacheTierResponse) locater.CacheTierStats {
	return locater.CacheTierStats{
		Size:          t.Size,
		Capacity:      t.Capacity,
		Hits:          t.Hits,
		Misses:        t.Misses,
		Evictions:     t.Evictions,
		Invalidations: t.Invalidations,
	}
}

// QueryStats fetches /v1/stats and maps the query_stats block back onto
// the engine's structure (zero value on transport failure).
func (c *Client) QueryStats() locater.QueryStats {
	st, err := c.Stats()
	if err != nil {
		return locater.QueryStats{}
	}
	qs := st.QueryStats
	return locater.QueryStats{
		Cold:                  latencyOf(qs.Cold),
		Cached:                latencyOf(qs.Cached),
		NeighborsProcessedP50: qs.NeighborsProcessed.P50,
		NeighborsProcessedP99: qs.NeighborsProcessed.P99,
		DeadlineExceeded:      qs.DeadlineExceeded,
	}
}

func latencyOf(l srv.LatencyResponse) locater.LatencyStats {
	return locater.LatencyStats{
		Count:      l.Count,
		MeanMicros: l.MeanMicros,
		P50Micros:  l.P50Micros,
		P99Micros:  l.P99Micros,
		MaxMicros:  l.MaxMicros,
	}
}

// PersistStats fetches /v1/stats; ok is false when the deployment is
// in-memory or the server is unreachable.
func (c *Client) PersistStats() (segments int, lastLSN, durableLSN uint64, ok bool) {
	st, err := c.Stats()
	if err != nil || st.Persist == nil {
		return 0, 0, 0, false
	}
	return st.Persist.Segments, st.Persist.LastLSN, st.Persist.DurableLSN, true
}

// Checkpoint is not exposed over the wire; it returns errors.ErrUnsupported
// (the server checkpoints on its own snapshot schedule and on shutdown).
func (c *Client) Checkpoint() error {
	return fmt.Errorf("locater: remote Checkpoint: %w", errors.ErrUnsupported)
}

// Close releases idle connections. The remote engine itself stays up.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}
