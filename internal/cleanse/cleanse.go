// Package cleanse implements LOCATER's ingest-time data-cleansing stage.
//
// The paper's premise is that WiFi connectivity logs are dirty: controllers
// log re-associations while a device sits still, devices at a coverage
// boundary flap between two APs, and clock skew or buggy firmware produces
// transitions no person could physically make. Feeding those events into the
// gap/affinity models wastes model capacity on noise ("Data Cleansing for
// Indoor Positioning Wi-Fi Fingerprinting Datasets", PAPERS.md). The
// Cleanser filters an event batch BEFORE it reaches the WAL and the store,
// so the durable log holds only cleansed events and WAL replay needs no
// second pass.
//
// Rules, applied per device in arrival order:
//
//   - duplicate: an event identical to the device's previous one (same AP,
//     same timestamp) is dropped.
//   - reassociation: a same-AP re-association within ReassocWindow of the
//     previous event adds no location information and is dropped.
//   - oscillation: an A→B→A flap-back — the device returns to the AP it was
//     on two events ago within FlapWindow of first seeing it — is dropped
//     (the device never usefully left A's region).
//   - impossible: a transition between APs whose regions do not overlap in
//     less than MinTransit is physically impossible and is dropped.
//   - degenerate: a device logging more than DegenerateEventsPerMinute in a
//     one-minute span is flagged (counters + Flagged), but its events are
//     NOT dropped — degeneracy is a diagnosis, not a per-event verdict.
//
// Nothing is silently discarded: every dropped event lands in a bounded
// quarantine ring with the rule and a human-readable reason, inspectable
// over GET /v1/quarantine. Out-of-order arrivals (an event older than the
// device's newest) pass through unjudged — the rules are defined on the
// forward stream, and the store handles out-of-order inserts itself.
package cleanse

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// Rule names a cleansing rule in counters and quarantine entries.
type Rule string

const (
	RuleDuplicate     Rule = "duplicate"
	RuleReassociation Rule = "reassociation"
	RuleOscillation   Rule = "oscillation"
	RuleImpossible    Rule = "impossible_transition"
)

// Config tunes the cleansing rules. Zero values select the defaults.
type Config struct {
	// ReassocWindow drops same-AP re-associations closer than this to the
	// device's previous event. Default 10s.
	ReassocWindow time.Duration
	// FlapWindow drops A→B→A flap-backs completing within this span.
	// Default 30s.
	FlapWindow time.Duration
	// MinTransit drops transitions between non-overlapping regions faster
	// than this. Default 1s.
	MinTransit time.Duration
	// DegenerateEventsPerMinute flags (never drops) devices logging more
	// events than this within one minute. Default 120.
	DegenerateEventsPerMinute int
	// QuarantineCap bounds the quarantine ring. Default 1024.
	QuarantineCap int
}

func (c Config) withDefaults() Config {
	if c.ReassocWindow <= 0 {
		c.ReassocWindow = 10 * time.Second
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = 30 * time.Second
	}
	if c.MinTransit <= 0 {
		c.MinTransit = time.Second
	}
	if c.DegenerateEventsPerMinute <= 0 {
		c.DegenerateEventsPerMinute = 120
	}
	if c.QuarantineCap <= 0 {
		c.QuarantineCap = 1024
	}
	return c
}

// Entry is one quarantined (dropped) event with the rule that rejected it.
type Entry struct {
	Event  event.Event `json:"event"`
	Rule   Rule        `json:"rule"`
	Reason string      `json:"reason"`
	// At is the wall-clock observation time, for operators correlating the
	// quarantine with ingest traffic.
	At time.Time `json:"at"`
}

// Stats are the cleansing counters surfaced in /stats. All counters are
// cumulative since construction.
type Stats struct {
	Ingested              int64 `json:"ingested"`
	Kept                  int64 `json:"kept"`
	Duplicates            int64 `json:"duplicates"`
	Reassociations        int64 `json:"reassociations"`
	Oscillations          int64 `json:"oscillations"`
	ImpossibleTransitions int64 `json:"impossible_transitions"`
	FlaggedDevices        int64 `json:"flagged_devices"`
	Quarantined           int64 `json:"quarantined"`
	// QuarantineEvicted counts entries pushed out of the bounded ring.
	QuarantineEvicted int64 `json:"quarantine_evicted"`
}

// SeedFunc supplies a device's newest stored event so the per-device rule
// state can be rebuilt lazily after crash recovery (the WAL already holds
// only cleansed events, so replay does not pass through the Cleanser).
type SeedFunc func(d event.DeviceID) (event.Event, bool)

const cleanseStripes = 64

type deviceState struct {
	seeded bool
	// last is the device's newest accepted event; prev the one before it
	// (zero AP when unknown — e.g. right after a lazy recovery seed).
	lastAP    space.APID
	lastNanos int64
	hasLast   bool
	prevAP    space.APID
	prevNanos int64
	hasPrev   bool
	// minute-bucket event counting for the degenerate-device rule.
	minuteBucket int64
	minuteCount  int
	flagged      bool
}

type stripe struct {
	mu  sync.Mutex
	dev map[event.DeviceID]*deviceState
}

// Cleanser applies the rules. Safe for concurrent use; state is striped by
// device so parallel ingest batches touching disjoint devices do not
// contend.
type Cleanser struct {
	cfg      Config
	building *space.Building
	seed     SeedFunc

	stripes [cleanseStripes]stripe

	ingested     atomic.Int64
	kept         atomic.Int64
	dups         atomic.Int64
	reassocs     atomic.Int64
	oscillations atomic.Int64
	impossible   atomic.Int64
	flagged      atomic.Int64

	qmu       sync.Mutex
	quarant   []Entry // ring, capacity cfg.QuarantineCap
	qnext     int     // next write position once the ring is full
	qtotal    atomic.Int64
	qevicted  atomic.Int64
	qcap      int
	nowSource func() time.Time
}

// New builds a Cleanser over the building's region topology (used by the
// impossible-transition rule). building may be nil, which disables that
// rule.
func New(building *space.Building, cfg Config) *Cleanser {
	c := &Cleanser{cfg: cfg.withDefaults(), building: building, nowSource: time.Now}
	c.qcap = c.cfg.QuarantineCap
	for i := range c.stripes {
		c.stripes[i].dev = make(map[event.DeviceID]*deviceState)
	}
	return c
}

// SetSeed installs the lazy recovery seed. Must be called before the first
// Clean that should see recovered state; typically right after Open.
func (c *Cleanser) SetSeed(fn SeedFunc) { c.seed = fn }

func (c *Cleanser) stripeOf(d event.DeviceID) *stripe {
	// FNV-1a, matching the store's shard hashing idiom.
	h := uint32(2166136261)
	for i := 0; i < len(d); i++ {
		h ^= uint32(d[i])
		h *= 16777619
	}
	return &c.stripes[h%cleanseStripes]
}

// Clean filters events in arrival order and returns the kept prefix-stable
// subset. The returned slice aliases the input (events are compacted in
// place); callers that need the original batch must copy it first.
func (c *Cleanser) Clean(events []event.Event) []event.Event {
	if len(events) == 0 {
		return events
	}
	c.ingested.Add(int64(len(events)))
	kept := events[:0]
	for _, e := range events {
		if rule, reason := c.judge(e); rule != "" {
			c.quarantine(e, rule, reason)
			continue
		}
		kept = append(kept, e)
	}
	c.kept.Add(int64(len(kept)))
	return kept
}

// judge applies the rules to one event, updating the device state. It
// returns the rejecting rule ("" when the event is kept).
func (c *Cleanser) judge(e event.Event) (Rule, string) {
	st := c.stripeOf(e.Device)
	st.mu.Lock()
	defer st.mu.Unlock()
	ds := st.dev[e.Device]
	if ds == nil {
		ds = &deviceState{}
		st.dev[e.Device] = ds
	}
	if !ds.seeded {
		ds.seeded = true
		if c.seed != nil {
			if last, ok := c.seed(e.Device); ok {
				ds.lastAP, ds.lastNanos, ds.hasLast = last.AP, last.Time.UnixNano(), true
			}
		}
	}
	ts := e.Time.UnixNano()

	// Out-of-order arrival: the rules are defined on the forward stream.
	// Pass it through without judging or advancing state.
	if ds.hasLast && ts < ds.lastNanos {
		return "", ""
	}

	// Degenerate-device flagging is observational: count first, flag, and
	// still run the drop rules below.
	bucket := ts / int64(time.Minute)
	if bucket != ds.minuteBucket {
		ds.minuteBucket, ds.minuteCount = bucket, 0
	}
	ds.minuteCount++
	if !ds.flagged && ds.minuteCount > c.cfg.DegenerateEventsPerMinute {
		ds.flagged = true
		c.flagged.Add(1)
	}

	if ds.hasLast {
		dt := ts - ds.lastNanos
		if e.AP == ds.lastAP {
			if dt == 0 {
				c.dups.Add(1)
				return RuleDuplicate, fmt.Sprintf("identical to previous event at %s", e.Time.Format(time.RFC3339))
			}
			if dt <= int64(c.cfg.ReassocWindow) {
				c.reassocs.Add(1)
				return RuleReassociation, fmt.Sprintf("re-association with %s after %v (window %v)", e.AP, time.Duration(dt), c.cfg.ReassocWindow)
			}
		} else {
			if ds.hasPrev && e.AP == ds.prevAP && ts-ds.prevNanos <= int64(c.cfg.FlapWindow) {
				c.oscillations.Add(1)
				return RuleOscillation, fmt.Sprintf("flap-back %s→%s→%s within %v", ds.prevAP, ds.lastAP, e.AP, time.Duration(ts-ds.prevNanos))
			}
			if c.impossibleTransition(ds.lastAP, e.AP, dt) {
				c.impossible.Add(1)
				return RuleImpossible, fmt.Sprintf("%s→%s in %v < min transit %v between non-overlapping regions", ds.lastAP, e.AP, time.Duration(dt), c.cfg.MinTransit)
			}
		}
	}

	// Accepted: advance the per-device window.
	if ds.hasLast {
		ds.prevAP, ds.prevNanos, ds.hasPrev = ds.lastAP, ds.lastNanos, true
	}
	ds.lastAP, ds.lastNanos, ds.hasLast = e.AP, ts, true
	return "", ""
}

// impossibleTransition reports whether moving lastAP→nextAP in dt violates
// the minimum transit time between non-overlapping regions. Transitions
// between overlapping regions (or unknown APs) are never impossible — a
// device at a coverage boundary legitimately hops instantly.
func (c *Cleanser) impossibleTransition(lastAP, nextAP space.APID, dt int64) bool {
	if c.building == nil || dt >= int64(c.cfg.MinTransit) {
		return false
	}
	ga, ok := c.building.RegionOf(lastAP)
	if !ok {
		return false
	}
	gb, ok := c.building.RegionOf(nextAP)
	if !ok {
		return false
	}
	if ga == gb || c.building.OverlappingRegions(ga, gb) {
		return false
	}
	return true
}

func (c *Cleanser) quarantine(e event.Event, rule Rule, reason string) {
	c.qtotal.Add(1)
	ent := Entry{Event: e, Rule: rule, Reason: reason, At: c.nowSource()}
	c.qmu.Lock()
	if len(c.quarant) < c.qcap {
		c.quarant = append(c.quarant, ent)
	} else {
		c.quarant[c.qnext] = ent
		c.qnext = (c.qnext + 1) % c.qcap
		c.qevicted.Add(1)
	}
	c.qmu.Unlock()
}

// Quarantine returns up to limit quarantined entries, newest first.
// limit ≤ 0 returns everything retained.
func (c *Cleanser) Quarantine(limit int) []Entry {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	n := len(c.quarant)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Entry, 0, limit)
	// Newest entry is just before qnext once the ring wrapped, else at the
	// end of the slice.
	for i := 0; i < limit; i++ {
		idx := (c.qnext - 1 - i + 2*n) % n
		out = append(out, c.quarant[idx])
	}
	return out
}

// Flagged reports whether the device tripped the degenerate-log rule.
func (c *Cleanser) Flagged(d event.DeviceID) bool {
	st := c.stripeOf(d)
	st.mu.Lock()
	defer st.mu.Unlock()
	ds := st.dev[d]
	return ds != nil && ds.flagged
}

// Stats snapshots the cleansing counters.
func (c *Cleanser) Stats() Stats {
	return Stats{
		Ingested:              c.ingested.Load(),
		Kept:                  c.kept.Load(),
		Duplicates:            c.dups.Load(),
		Reassociations:        c.reassocs.Load(),
		Oscillations:          c.oscillations.Load(),
		ImpossibleTransitions: c.impossible.Load(),
		FlaggedDevices:        c.flagged.Load(),
		Quarantined:           c.qtotal.Load(),
		QuarantineEvicted:     c.qevicted.Load(),
	}
}
