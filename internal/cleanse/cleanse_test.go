package cleanse

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// testBuilding has two non-overlapping regions (ap1: r1,r2; ap2: r3,r4) and
// one region overlapping both (ap3: r2,r3) for boundary-hop cases.
func testBuilding(t *testing.T) *space.Building {
	t.Helper()
	b, err := space.NewBuilding(space.Config{
		Name: "test",
		Rooms: []space.Room{
			{ID: "r1", Kind: space.Private}, {ID: "r2", Kind: space.Public},
			{ID: "r3", Kind: space.Public}, {ID: "r4", Kind: space.Private},
		},
		AccessPoints: []space.AccessPoint{
			{ID: "ap1", Coverage: []space.RoomID{"r1", "r2"}},
			{ID: "ap2", Coverage: []space.RoomID{"r3", "r4"}},
			{ID: "ap3", Coverage: []space.RoomID{"r2", "r3"}},
		},
	})
	if err != nil {
		t.Fatalf("building: %v", err)
	}
	return b
}

var base = time.Date(2026, 4, 6, 9, 0, 0, 0, time.UTC)

func ev(d string, ap string, offset time.Duration) event.Event {
	return event.Event{Device: event.DeviceID(d), AP: space.APID(ap), Time: base.Add(offset)}
}

func TestDuplicateAndReassociation(t *testing.T) {
	c := New(testBuilding(t), Config{})
	in := []event.Event{
		ev("d1", "ap1", 0),
		ev("d1", "ap1", 0),                            // exact duplicate
		ev("d1", "ap1", 5*time.Second),                // re-association within 10s window
		ev("d1", "ap1", 30*time.Second),               // beyond window: kept
		ev("d1", "ap1", 20*time.Minute),               // kept
		ev("d1", "ap1", 20*time.Minute+9*time.Second), // re-association
	}
	out := c.Clean(in)
	if len(out) != 3 {
		t.Fatalf("kept %d events, want 3: %v", len(out), out)
	}
	s := c.Stats()
	if s.Duplicates != 1 || s.Reassociations != 2 {
		t.Fatalf("stats %+v, want 1 duplicate + 2 reassociations", s)
	}
	if s.Ingested != 6 || s.Kept != 3 || s.Quarantined != 3 {
		t.Fatalf("stats %+v, want ingested=6 kept=3 quarantined=3", s)
	}
}

func TestOscillationFlapBack(t *testing.T) {
	c := New(testBuilding(t), Config{})
	in := []event.Event{
		ev("d1", "ap1", 0),
		ev("d1", "ap3", 15*time.Second), // overlapping region: legitimate hop
		ev("d1", "ap1", 25*time.Second), // flap-back to ap1 within 30s
		ev("d1", "ap3", 20*time.Minute), // fresh hop much later: kept
		ev("d1", "ap1", 21*time.Minute), // prev (ap1@0) is ancient: kept
	}
	out := c.Clean(in)
	if len(out) != 4 {
		t.Fatalf("kept %d events, want 4: %v", len(out), out)
	}
	if s := c.Stats(); s.Oscillations != 1 {
		t.Fatalf("stats %+v, want 1 oscillation", s)
	}
}

func TestImpossibleTransition(t *testing.T) {
	c := New(testBuilding(t), Config{})
	in := []event.Event{
		ev("d1", "ap1", 0),
		ev("d1", "ap2", 200*time.Millisecond), // ap1/ap2 regions disjoint, <1s
		ev("d1", "ap3", 400*time.Millisecond), // ap1→ap3 overlap: legal hop
		ev("d1", "ap2", 600*time.Millisecond), // ap3→ap2 overlap: legal hop
		ev("d2", "ap1", 0),
		ev("d2", "ap2", 5*time.Second), // ≥ MinTransit: kept
	}
	out := c.Clean(in)
	if len(out) != 5 {
		t.Fatalf("kept %d events, want 5: %v", len(out), out)
	}
	if s := c.Stats(); s.ImpossibleTransitions != 1 {
		t.Fatalf("stats %+v, want 1 impossible transition", s)
	}
	// Without building topology the rule is disabled.
	c2 := New(nil, Config{})
	out2 := c2.Clean([]event.Event{ev("d1", "ap1", 0), ev("d1", "ap2", 100*time.Millisecond)})
	if len(out2) != 2 {
		t.Fatalf("nil-building cleanser dropped a transition: %v", out2)
	}
}

func TestDegenerateDeviceFlaggedNotDropped(t *testing.T) {
	c := New(testBuilding(t), Config{DegenerateEventsPerMinute: 5})
	var in []event.Event
	// 8 events within one minute, rotating three APs so no pair repeats
	// within the flap window and every consecutive hop is legal.
	aps := []string{"ap1", "ap3", "ap2"}
	for i := 0; i < 8; i++ {
		in = append(in, ev("noisy", aps[i%3], time.Duration(i)*7*time.Second))
	}
	out := c.Clean(in)
	if len(out) != len(in) {
		t.Fatalf("degenerate rule dropped events: kept %d of %d", len(out), len(in))
	}
	if !c.Flagged("noisy") {
		t.Fatal("device not flagged")
	}
	if c.Flagged("other") {
		t.Fatal("unknown device reported flagged")
	}
	if s := c.Stats(); s.FlaggedDevices != 1 {
		t.Fatalf("stats %+v, want 1 flagged device", s)
	}
	// A second noisy minute must not double-count the device.
	var more []event.Event
	for i := 0; i < 8; i++ {
		more = append(more, ev("noisy", aps[i%2], 5*time.Minute+time.Duration(i)*7*time.Second))
	}
	c.Clean(more)
	if s := c.Stats(); s.FlaggedDevices != 1 {
		t.Fatalf("stats %+v, want flagged count to stay 1", s)
	}
}

func TestOutOfOrderPassesThrough(t *testing.T) {
	c := New(testBuilding(t), Config{})
	out := c.Clean([]event.Event{
		ev("d1", "ap1", time.Hour),
		ev("d1", "ap2", 0),                       // older than newest: pass through unjudged
		ev("d1", "ap1", time.Hour+5*time.Second), // judged against ap1@1h: reassoc
	})
	if len(out) != 2 {
		t.Fatalf("kept %d events, want 2: %v", len(out), out)
	}
	if s := c.Stats(); s.Reassociations != 1 {
		t.Fatalf("stats %+v, want 1 reassociation", s)
	}
}

func TestQuarantineRing(t *testing.T) {
	c := New(testBuilding(t), Config{QuarantineCap: 3})
	// 5 duplicates → 5 quarantined, ring keeps the newest 3.
	in := []event.Event{ev("d1", "ap1", 0)}
	for i := 1; i <= 5; i++ {
		in = append(in, ev("d1", "ap1", 0))
	}
	c.Clean(in)
	got := c.Quarantine(0)
	if len(got) != 3 {
		t.Fatalf("quarantine holds %d entries, want 3", len(got))
	}
	for _, e := range got {
		if e.Rule != RuleDuplicate || e.Reason == "" || e.At.IsZero() {
			t.Fatalf("malformed entry %+v", e)
		}
	}
	if s := c.Stats(); s.Quarantined != 5 || s.QuarantineEvicted != 2 {
		t.Fatalf("stats %+v, want quarantined=5 evicted=2", s)
	}
	if got := c.Quarantine(2); len(got) != 2 {
		t.Fatalf("limited quarantine returned %d entries, want 2", len(got))
	}
	// Empty cleanser: no entries, no panic.
	if got := New(nil, Config{}).Quarantine(10); len(got) != 0 {
		t.Fatalf("empty quarantine returned %d entries", len(got))
	}
}

func TestQuarantineNewestFirst(t *testing.T) {
	c := New(testBuilding(t), Config{QuarantineCap: 4})
	in := []event.Event{ev("d1", "ap1", 0)}
	for i := 1; i <= 6; i++ {
		// Distinct IDs so order is observable.
		e := ev("d1", "ap1", 0)
		e.ID = int64(i)
		in = append(in, e)
	}
	c.Clean(in)
	got := c.Quarantine(0)
	if len(got) != 4 {
		t.Fatalf("quarantine holds %d entries, want 4", len(got))
	}
	for i, e := range got {
		want := int64(6 - i)
		if e.Event.ID != want {
			t.Fatalf("entry %d has ID %d, want %d (newest first)", i, e.Event.ID, want)
		}
	}
}

func TestLazySeedFromStore(t *testing.T) {
	c := New(testBuilding(t), Config{})
	seeded := 0
	c.SetSeed(func(d event.DeviceID) (event.Event, bool) {
		seeded++
		if d == "d1" {
			return ev("d1", "ap1", 0), true
		}
		return event.Event{}, false
	})
	// First post-recovery event: a same-AP re-association 5s after the
	// stored last event must be caught even though the cleanser never saw
	// the original.
	out := c.Clean([]event.Event{ev("d1", "ap1", 5*time.Second)})
	if len(out) != 0 {
		t.Fatalf("seeded reassociation not dropped: %v", out)
	}
	c.Clean([]event.Event{ev("d1", "ap1", time.Hour)})
	if seeded != 1 {
		t.Fatalf("seed called %d times for d1, want 1 (lazy, once)", seeded)
	}
	// Unknown device seeds empty state and keeps its first event.
	if out := c.Clean([]event.Event{ev("d2", "ap1", 0)}); len(out) != 1 {
		t.Fatalf("first event of unseeded device dropped: %v", out)
	}
}

func TestCleanEmptyBatch(t *testing.T) {
	c := New(testBuilding(t), Config{})
	if out := c.Clean(nil); len(out) != 0 {
		t.Fatalf("Clean(nil) = %v", out)
	}
}

func TestConcurrentClean(t *testing.T) {
	c := New(testBuilding(t), Config{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d := fmt.Sprintf("dev-%d-%d", w, i%10)
				c.Clean([]event.Event{
					ev(d, "ap1", time.Duration(i)*time.Minute),
					ev(d, "ap1", time.Duration(i)*time.Minute), // duplicate
				})
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.Ingested != 8*200*2 {
		t.Fatalf("ingested %d, want %d", s.Ingested, 8*200*2)
	}
	if s.Kept+s.Quarantined != s.Ingested {
		t.Fatalf("kept %d + quarantined %d != ingested %d", s.Kept, s.Quarantined, s.Ingested)
	}
}
