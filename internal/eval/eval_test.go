package eval

import (
	"fmt"
	"testing"
	"time"

	"locater/internal/sim"
	"locater/internal/space"
)

var simStart = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)

func smallDataset(t *testing.T) *sim.Dataset {
	t.Helper()
	b, err := sim.GridBuilding("e", 20, 4, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.Scenario{
		Name:     "eval",
		Building: b,
		Profiles: []sim.Profile{{
			Name: "p", Count: 4, HasOffice: true, BaseStay: 0.7,
			PresenceProb: 0.95,
			ArrivalMean:  9 * time.Hour, ArrivalStd: 20 * time.Minute,
			DepartureMean: 17 * time.Hour, DepartureStd: 20 * time.Minute,
			AttendProb: 0.5, MidDayExitProb: 0.3,
			EmitPeriod: 10 * time.Minute, EmitProb: 0.7,
		}},
	}
	ds, err := sim.Generate(sc.Config(simStart, 5, 3))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSampleQueriesBasics(t *testing.T) {
	ds := smallDataset(t)
	qs, err := SampleQueries(ds, WorkloadOptions{NumQueries: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	lo := ds.Config.Start
	hi := ds.Config.Start.AddDate(0, 0, ds.Config.Days)
	perDevice := map[string]int{}
	for _, q := range qs {
		if q.Time.Before(lo) || q.Time.After(hi) {
			t.Fatalf("query time %v outside dataset span", q.Time)
		}
		perDevice[string(q.Device)]++
	}
	// Approximately uniform across 4 devices: each gets 50/4 ± rounding.
	for d, n := range perDevice {
		if n < 10 || n > 15 {
			t.Errorf("device %s got %d queries, want ≈12", d, n)
		}
	}
}

func TestSampleQueriesOptions(t *testing.T) {
	ds := smallDataset(t)
	if _, err := SampleQueries(ds, WorkloadOptions{NumQueries: 0}); err == nil {
		t.Error("zero queries should fail")
	}
	from := simStart.AddDate(0, 0, 2)
	to := simStart.AddDate(0, 0, 3)
	qs, err := SampleQueries(ds, WorkloadOptions{NumQueries: 30, Seed: 2, From: from, To: to, DaytimeOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.Time.Before(from) || q.Time.After(to) {
			t.Fatalf("query outside window: %v", q.Time)
		}
		if h := q.Time.Hour(); h < 7 || h >= 21 {
			t.Fatalf("daytime-only violated: %v", q.Time)
		}
	}
	// Inverted window fails.
	if _, err := SampleQueries(ds, WorkloadOptions{NumQueries: 5, From: to, To: from}); err == nil {
		t.Error("inverted window should fail")
	}
}

func TestSampleQueriesInsideBias(t *testing.T) {
	ds := smallDataset(t)
	qs, err := SampleQueries(ds, WorkloadOptions{NumQueries: 100, Seed: 3, InsideBias: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	inside := 0
	for _, q := range qs {
		if !q.Truth.Outside {
			inside++
		}
	}
	if inside < 90 {
		t.Errorf("with full inside bias only %d/100 queries are inside", inside)
	}
}

func TestPrecisionMetrics(t *testing.T) {
	p := Precision{Queries: 10, CorrectOut: 2, CorrectRegion: 6, CorrectRoom: 3}
	if got := p.Pc(); got != 0.8 {
		t.Errorf("Pc = %v, want 0.8", got)
	}
	if got := p.Pf(); got != 0.5 {
		t.Errorf("Pf = %v, want 0.5", got)
	}
	if got := p.Po(); got != 0.5 {
		t.Errorf("Po = %v, want 0.5", got)
	}
	var zero Precision
	if zero.Pc() != 0 || zero.Pf() != 0 || zero.Po() != 0 {
		t.Error("zero precision should be all zeros")
	}
	if zero.String() == "" {
		t.Error("String should render")
	}
	zero.Add(p)
	if zero.Queries != 10 || zero.CorrectRoom != 3 {
		t.Error("Add did not merge")
	}
}

// oracleSystem answers straight from ground truth with a configurable room
// error rate, to validate the scorer.
type oracleSystem struct {
	b        *space.Building
	ds       *sim.Dataset
	roomFail bool
}

func (o *oracleSystem) Answer(q Query) (Answer, error) {
	seg, ok := o.ds.Truth.At(q.Device, q.Time)
	if !ok || seg.Outside {
		return Answer{Outside: true}, nil
	}
	regions := o.b.RegionsOfRoom(seg.Room)
	if len(regions) == 0 {
		return Answer{Outside: true}, nil
	}
	room := seg.Room
	if o.roomFail {
		// Deliberately answer a different room in the same region.
		for _, r := range o.b.CandidateRooms(regions[0]) {
			if r != seg.Room {
				room = r
				break
			}
		}
	}
	return Answer{Region: regions[0], Room: room}, nil
}

func TestScorePerfectOracle(t *testing.T) {
	ds := smallDataset(t)
	qs, err := SampleQueries(ds, WorkloadOptions{NumQueries: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := Score(ds.Building, &oracleSystem{b: ds.Building, ds: ds}, qs)
	if p.Pc() != 1 || p.Po() != 1 {
		t.Errorf("perfect oracle scored Pc=%v Po=%v", p.Pc(), p.Po())
	}
	if p.Errors != 0 {
		t.Errorf("oracle errors = %d", p.Errors)
	}
}

func TestScoreRoomErrors(t *testing.T) {
	ds := smallDataset(t)
	qs, err := SampleQueries(ds, WorkloadOptions{NumQueries: 80, Seed: 5, InsideBias: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := Score(ds.Building, &oracleSystem{b: ds.Building, ds: ds, roomFail: true}, qs)
	// Region still right, rooms all wrong → Pc high, Pf 0.
	if p.Pf() != 0 {
		t.Errorf("room-failing oracle Pf = %v, want 0", p.Pf())
	}
	if p.CorrectRegion == 0 {
		t.Error("region hits expected")
	}
}

func TestScoreErrorPath(t *testing.T) {
	ds := smallDataset(t)
	qs, _ := SampleQueries(ds, WorkloadOptions{NumQueries: 10, Seed: 7})
	sys := SystemFunc(func(q Query) (Answer, error) { return Answer{}, fmt.Errorf("boom") })
	p := Score(ds.Building, sys, qs)
	if p.Errors != 10 {
		t.Errorf("errors = %d, want 10", p.Errors)
	}
	if p.Po() != 0 {
		t.Errorf("Po = %v", p.Po())
	}
}

func TestGroupBy(t *testing.T) {
	ds := smallDataset(t)
	qs, _ := SampleQueries(ds, WorkloadOptions{NumQueries: 40, Seed: 9})
	groups := GroupBy(ds.Building, &oracleSystem{b: ds.Building, ds: ds}, qs, func(q Query) string {
		return string(q.Device)
	})
	total := 0
	for _, p := range groups {
		total += p.Queries
	}
	if total != 40 {
		t.Errorf("grouped query total = %d", total)
	}
}

func TestPredictabilityBands(t *testing.T) {
	cases := map[float64]string{
		0.2:  "<40",
		0.45: "[40,55)",
		0.55: "[55,70)",
		0.72: "[70,85)",
		0.9:  "[85,100)",
		1.0:  "[85,100)",
	}
	for frac, want := range cases {
		if got := PredictabilityBand(frac); got != want {
			t.Errorf("band(%v) = %s, want %s", frac, got, want)
		}
	}
	if len(Bands()) != 4 {
		t.Error("Bands() should list the paper's four groups")
	}
}

func TestTimedResult(t *testing.T) {
	r := TimedResult{
		PerQuery: []time.Duration{time.Millisecond, 3 * time.Millisecond, 5 * time.Millisecond},
		Total:    9 * time.Millisecond,
	}
	if got := r.Average(); got != 3*time.Millisecond {
		t.Errorf("Average = %v", got)
	}
	if got := r.AverageUpTo(2); got != 2*time.Millisecond {
		t.Errorf("AverageUpTo(2) = %v", got)
	}
	if got := r.AverageUpTo(100); got != 3*time.Millisecond {
		t.Errorf("AverageUpTo(100) = %v", got)
	}
	if got := r.AverageUpTo(0); got != 0 {
		t.Errorf("AverageUpTo(0) = %v", got)
	}
	wa := r.WindowAverages(2)
	if len(wa) != 2 || wa[0] != 2*time.Millisecond || wa[1] != 5*time.Millisecond {
		t.Errorf("WindowAverages = %v", wa)
	}
	if r.WindowAverages(0) != nil {
		t.Error("zero window should be nil")
	}
	var empty TimedResult
	if empty.Average() != 0 {
		t.Error("empty average should be 0")
	}
}

func TestTimeHarness(t *testing.T) {
	ds := smallDataset(t)
	qs, _ := SampleQueries(ds, WorkloadOptions{NumQueries: 20, Seed: 11})
	res, err := Time(&oracleSystem{b: ds.Building, ds: ds}, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerQuery) != 20 {
		t.Errorf("timed %d queries", len(res.PerQuery))
	}
	// Error propagation.
	sys := SystemFunc(func(q Query) (Answer, error) { return Answer{}, fmt.Errorf("x") })
	if _, err := Time(sys, qs); err == nil {
		t.Error("Time should propagate errors")
	}
}

func TestDeviceSelectors(t *testing.T) {
	ds := smallDataset(t)
	devs := DevicesByProfile(ds, "p")
	if len(devs) != 4 {
		t.Errorf("profile devices = %d", len(devs))
	}
	if got := DevicesByProfile(ds, "nope"); len(got) != 0 {
		t.Errorf("unknown profile devices = %v", got)
	}
	// Band selector covers all devices across bands.
	total := 0
	for _, b := range append(Bands(), "<40") {
		total += len(DevicesInBand(ds, b))
	}
	if total != len(ds.People) {
		t.Errorf("band partition covers %d of %d devices", total, len(ds.People))
	}
}
