// Package eval is LOCATER's evaluation harness: it samples query workloads
// from a simulated dataset's ground truth, scores any localization system
// with the paper's precision metrics (Section 6.1), and times query
// processing for the efficiency experiments.
//
// Metrics: for a query set Q, with Q_out the queries correctly answered
// "outside", Q_region the queries whose region was returned correctly, and
// Q_room the queries whose room was returned correctly,
//
//	Pc = (|Q_out| + |Q_region|) / |Q|     (coarse precision)
//	Pf = |Q_room| / |Q_region|            (fine precision)
//	Po = (|Q_room| + |Q_out|) / |Q|       (overall precision)
//
// Region correctness: the paper's oracle labels a person's region by the AP
// that covers their true room; because regions overlap, we count a predicted
// region as correct when its candidate-room set contains the true room.
package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"locater/internal/event"
	"locater/internal/sim"
	"locater/internal/space"
)

// Query asks for the location of Device at Time; Truth carries the oracle
// answer used for scoring.
type Query struct {
	Device event.DeviceID
	Time   time.Time
	Truth  sim.TruthSegment
}

// Answer is a system's response to a query, normalized across LOCATER and
// the baselines.
type Answer struct {
	Outside bool
	Region  space.RegionID
	Room    space.RoomID
}

// System is anything that can answer localization queries.
type System interface {
	Answer(q Query) (Answer, error)
}

// SystemFunc adapts a function to the System interface.
type SystemFunc func(q Query) (Answer, error)

// Answer implements System.
func (f SystemFunc) Answer(q Query) (Answer, error) { return f(q) }

// WorkloadOptions configures query sampling.
type WorkloadOptions struct {
	// NumQueries is the number of queries to draw.
	NumQueries int
	// Seed drives sampling.
	Seed int64
	// Devices restricts sampling to the given devices (nil = all with
	// ground truth).
	Devices []event.DeviceID
	// From/To bound the sampled times; zero values use the dataset span.
	From, To time.Time
	// DaytimeOnly restricts query times to [7:00, 21:00), where the
	// interesting inside/outside ambiguity lives.
	DaytimeOnly bool
	// InsideBias is the fraction of queries forced to times when the
	// device was truly inside (the paper's ground truth skews inside
	// because diaries/cameras record in-building activity). 0 disables.
	InsideBias float64
}

// SampleQueries draws a query workload against the dataset's ground truth.
// Queries are distributed approximately uniformly across the chosen devices,
// mirroring the paper's per-individual balance.
func SampleQueries(ds *sim.Dataset, opts WorkloadOptions) ([]Query, error) {
	if opts.NumQueries <= 0 {
		return nil, fmt.Errorf("eval: non-positive query count %d", opts.NumQueries)
	}
	devices := opts.Devices
	if len(devices) == 0 {
		devices = ds.Truth.Devices()
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("eval: dataset has no devices with ground truth")
	}
	from, to := opts.From, opts.To
	if from.IsZero() {
		from = ds.Config.Start
	}
	if to.IsZero() {
		to = ds.Config.Start.AddDate(0, 0, ds.Config.Days)
	}
	if !to.After(from) {
		return nil, fmt.Errorf("eval: empty sampling window [%v, %v]", from, to)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	span := to.Sub(from)
	queries := make([]Query, 0, opts.NumQueries)
	for len(queries) < opts.NumQueries {
		d := devices[len(queries)%len(devices)]
		var tq time.Time
		if opts.InsideBias > 0 && rng.Float64() < opts.InsideBias {
			segs := ds.Truth.InsideWindows(d, from, to)
			if len(segs) > 0 {
				s := segs[rng.Intn(len(segs))]
				dur := s.End.Sub(s.Start)
				tq = s.Start.Add(time.Duration(rng.Int63n(int64(dur))))
			}
		}
		if tq.IsZero() {
			for attempt := 0; attempt < 32; attempt++ {
				tq = from.Add(time.Duration(rng.Int63n(int64(span))))
				if !opts.DaytimeOnly {
					break
				}
				h := tq.Hour()
				if h >= 7 && h < 21 {
					break
				}
				tq = time.Time{}
			}
			if tq.IsZero() {
				continue
			}
		}
		truth, ok := ds.Truth.At(d, tq)
		if !ok {
			continue
		}
		queries = append(queries, Query{Device: d, Time: tq, Truth: truth})
	}
	return queries, nil
}

// Precision aggregates the paper's three metrics plus raw counters.
type Precision struct {
	Queries       int
	CorrectOut    int // |Q_out|
	CorrectRegion int // |Q_region|
	CorrectRoom   int // |Q_room|
	Errors        int
}

// Pc is the coarse precision (|Q_out|+|Q_region|)/|Q|.
func (p Precision) Pc() float64 {
	if p.Queries == 0 {
		return 0
	}
	return float64(p.CorrectOut+p.CorrectRegion) / float64(p.Queries)
}

// Pf is the fine precision |Q_room|/|Q_region|.
func (p Precision) Pf() float64 {
	if p.CorrectRegion == 0 {
		return 0
	}
	return float64(p.CorrectRoom) / float64(p.CorrectRegion)
}

// Po is the overall precision (|Q_room|+|Q_out|)/|Q|.
func (p Precision) Po() float64 {
	if p.Queries == 0 {
		return 0
	}
	return float64(p.CorrectRoom+p.CorrectOut) / float64(p.Queries)
}

// String renders the triple like the paper's tables: "Pc|Pf|Po" in percent.
func (p Precision) String() string {
	return fmt.Sprintf("%2.0f|%2.0f|%2.0f", p.Pc()*100, p.Pf()*100, p.Po()*100)
}

// Add merges another tally into p.
func (p *Precision) Add(q Precision) {
	p.Queries += q.Queries
	p.CorrectOut += q.CorrectOut
	p.CorrectRegion += q.CorrectRegion
	p.CorrectRoom += q.CorrectRoom
	p.Errors += q.Errors
}

// Score runs every query through the system and tallies precision.
func Score(b *space.Building, sys System, queries []Query) Precision {
	var p Precision
	for _, q := range queries {
		p.Add(scoreOne(b, sys, q))
	}
	return p
}

func scoreOne(b *space.Building, sys System, q Query) Precision {
	p := Precision{Queries: 1}
	ans, err := sys.Answer(q)
	if err != nil {
		p.Errors++
		return p
	}
	if q.Truth.Outside {
		if ans.Outside {
			p.CorrectOut++
		}
		return p
	}
	if ans.Outside {
		return p
	}
	// Region correct when the predicted region's coverage contains the
	// true room.
	regionOK := false
	for _, r := range b.CandidateRooms(ans.Region) {
		if r == q.Truth.Room {
			regionOK = true
			break
		}
	}
	if !regionOK {
		return p
	}
	p.CorrectRegion++
	if ans.Room == q.Truth.Room {
		p.CorrectRoom++
	}
	return p
}

// GroupBy partitions queries by a key function and scores each group.
func GroupBy(b *space.Building, sys System, queries []Query, key func(Query) string) map[string]Precision {
	groups := make(map[string][]Query)
	for _, q := range queries {
		k := key(q)
		groups[k] = append(groups[k], q)
	}
	out := make(map[string]Precision, len(groups))
	for k, qs := range groups {
		out[k] = Score(b, sys, qs)
	}
	return out
}

// PredictabilityBand labels a predictability fraction with the paper's
// bands: "[40,55)", "[55,70)", "[70,85)", "[85,100)"; fractions below 0.40
// map to "<40".
func PredictabilityBand(frac float64) string {
	pct := frac * 100
	switch {
	case pct < 40:
		return "<40"
	case pct < 55:
		return "[40,55)"
	case pct < 70:
		return "[55,70)"
	case pct < 85:
		return "[70,85)"
	default:
		return "[85,100)"
	}
}

// Bands lists the paper's four predictability bands in order.
func Bands() []string { return []string{"[40,55)", "[55,70)", "[70,85)", "[85,100)"} }

// TimedResult captures latency measurements for the efficiency experiments.
type TimedResult struct {
	// PerQuery holds each query's wall-clock processing time, in order.
	PerQuery []time.Duration
	Total    time.Duration
}

// Average returns the mean per-query latency.
func (t TimedResult) Average() time.Duration {
	if len(t.PerQuery) == 0 {
		return 0
	}
	return t.Total / time.Duration(len(t.PerQuery))
}

// AverageUpTo returns the running mean after the first n queries, the
// series Fig. 10 plots.
func (t TimedResult) AverageUpTo(n int) time.Duration {
	if n <= 0 || len(t.PerQuery) == 0 {
		return 0
	}
	if n > len(t.PerQuery) {
		n = len(t.PerQuery)
	}
	var sum time.Duration
	for _, d := range t.PerQuery[:n] {
		sum += d
	}
	return sum / time.Duration(n)
}

// WindowAverages returns the mean latency of consecutive windows of size w
// (the per-checkpoint series of the efficiency figures).
func (t TimedResult) WindowAverages(w int) []time.Duration {
	if w <= 0 {
		return nil
	}
	var out []time.Duration
	for i := 0; i < len(t.PerQuery); i += w {
		end := i + w
		if end > len(t.PerQuery) {
			end = len(t.PerQuery)
		}
		var sum time.Duration
		for _, d := range t.PerQuery[i:end] {
			sum += d
		}
		out = append(out, sum/time.Duration(end-i))
	}
	return out
}

// Time runs the queries through the system, recording per-query latency.
// Answers are discarded; errors abort.
func Time(sys System, queries []Query) (TimedResult, error) {
	res := TimedResult{PerQuery: make([]time.Duration, 0, len(queries))}
	for _, q := range queries {
		t0 := time.Now()
		if _, err := sys.Answer(q); err != nil {
			return res, fmt.Errorf("eval: timing query (%s, %v): %w", q.Device, q.Time, err)
		}
		d := time.Since(t0)
		res.PerQuery = append(res.PerQuery, d)
		res.Total += d
	}
	return res, nil
}

// DevicesInBand returns the dataset's devices whose measured predictability
// falls in the named band, sorted.
func DevicesInBand(ds *sim.Dataset, band string) []event.DeviceID {
	var out []event.DeviceID
	for d, frac := range ds.Predictability {
		if PredictabilityBand(frac) == band {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DevicesByProfile returns the dataset's devices for a profile, sorted.
func DevicesByProfile(ds *sim.Dataset, profile string) []event.DeviceID {
	var out []event.DeviceID
	for _, p := range ds.People {
		if p.Profile == profile {
			out = append(out, p.Device)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
