package affgraph

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"locater/internal/event"
)

var t0 = time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC)

func TestMergeAndWeight(t *testing.T) {
	g := New(Options{})
	g.Merge([]Edge{{From: "a", To: "b", Weight: 0.4}}, t0)
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// Same-time query returns the stored weight.
	if w := g.Weight("a", "b", t0); math.Abs(w-0.4) > 1e-9 {
		t.Errorf("weight = %v, want 0.4", w)
	}
	// Symmetric lookup.
	if w := g.Weight("b", "a", t0); math.Abs(w-0.4) > 1e-9 {
		t.Errorf("reverse weight = %v", w)
	}
	// Missing edge → 0.
	if w := g.Weight("a", "z", t0); w != 0 {
		t.Errorf("missing edge weight = %v", w)
	}
}

func TestSelfEdgeIgnored(t *testing.T) {
	g := New(Options{})
	g.Merge([]Edge{{From: "a", To: "a", Weight: 0.9}}, t0)
	if g.NumEdges() != 0 {
		t.Error("self edge should be ignored")
	}
}

func TestTimeWeightedCollapse(t *testing.T) {
	g := New(Options{Sigma: time.Hour})
	// Observation near the query dominates over a distant one.
	g.Merge([]Edge{{From: "a", To: "b", Weight: 1.0}}, t0)
	g.Merge([]Edge{{From: "a", To: "b", Weight: 0.0}}, t0.Add(10*time.Hour))
	wNear := g.Weight("a", "b", t0)
	if wNear < 0.9 {
		t.Errorf("near-time collapse = %v, want ≈1.0", wNear)
	}
	wFar := g.Weight("a", "b", t0.Add(10*time.Hour))
	if wFar > 0.1 {
		t.Errorf("far-time collapse = %v, want ≈0.0", wFar)
	}
	// Midpoint blends both.
	wMid := g.Weight("a", "b", t0.Add(5*time.Hour))
	if wMid < 0.2 || wMid > 0.8 {
		t.Errorf("mid collapse = %v, want blended", wMid)
	}
}

func TestStaleObservationsFallBackToAverage(t *testing.T) {
	g := New(Options{Sigma: time.Minute})
	g.Merge([]Edge{{From: "a", To: "b", Weight: 0.2}}, t0)
	g.Merge([]Edge{{From: "a", To: "b", Weight: 0.6}}, t0.Add(time.Minute))
	// Query a year away: kernel underflows; plain average 0.4 expected.
	w := g.Weight("a", "b", t0.AddDate(1, 0, 0))
	if math.Abs(w-0.4) > 1e-9 {
		t.Errorf("stale fallback = %v, want 0.4", w)
	}
}

func TestMaxObservationsBound(t *testing.T) {
	g := New(Options{MaxObservationsPerEdge: 3})
	for i := 0; i < 10; i++ {
		g.Merge([]Edge{{From: "a", To: "b", Weight: float64(i) / 10}}, t0.Add(time.Duration(i)*time.Minute))
	}
	obs := g.Observations("a", "b")
	if len(obs) != 3 {
		t.Fatalf("observations = %d, want 3 (bounded)", len(obs))
	}
	// Oldest dropped: remaining are the last three.
	if obs[0].Weight != 0.7 {
		t.Errorf("oldest remaining = %v, want 0.7", obs[0].Weight)
	}
}

func TestOrderNeighbors(t *testing.T) {
	g := New(Options{})
	g.Merge([]Edge{
		{From: "q", To: "low", Weight: 0.1},
		{From: "q", To: "high", Weight: 0.9},
		{From: "q", To: "mid", Weight: 0.5},
	}, t0)
	got := g.OrderNeighbors("q", []event.DeviceID{"low", "unknown1", "mid", "high", "unknown2"}, t0)
	want := []event.DeviceID{"high", "mid", "low", "unknown1", "unknown2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestNumDevices(t *testing.T) {
	g := New(Options{})
	g.Merge([]Edge{
		{From: "a", To: "b", Weight: 0.1},
		{From: "b", To: "c", Weight: 0.2},
	}, t0)
	if got := g.NumDevices(); got != 3 {
		t.Errorf("devices = %d, want 3", got)
	}
}

func TestConcurrentGraphAccess(t *testing.T) {
	g := New(Options{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a := event.DeviceID(fmt.Sprintf("d%d", w))
				b := event.DeviceID(fmt.Sprintf("d%d", (w+1)%4))
				g.Merge([]Edge{{From: a, To: b, Weight: 0.5}}, t0.Add(time.Duration(i)*time.Second))
				g.Weight(a, b, t0)
				g.OrderNeighbors(a, []event.DeviceID{b}, t0)
			}
		}(w)
	}
	wg.Wait()
	if g.NumEdges() == 0 {
		t.Error("no edges after concurrent merges")
	}
}

// fixedFallback counts fallback computations.
type fixedFallback struct {
	mu    sync.Mutex
	calls int
	value float64
}

func (f *fixedFallback) PairAffinity(a, b event.DeviceID, _ time.Time) float64 {
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	return f.value
}

func TestCachedAffinityGraphHit(t *testing.T) {
	g := New(Options{})
	g.Merge([]Edge{{From: "a", To: "b", Weight: 0.33}}, t0)
	fb := &fixedFallback{value: 0.9}
	c := NewCachedAffinity(g, fb, time.Hour, 0)

	if got := c.PairAffinity("a", "b", t0); math.Abs(got-0.33) > 1e-9 {
		t.Errorf("graph-backed affinity = %v", got)
	}
	if fb.calls != 0 {
		t.Errorf("fallback called %d times despite graph hit", fb.calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Errorf("stats = %d/%d", st.Hits, st.Misses)
	}
}

func TestCachedAffinityFallbackAndBucket(t *testing.T) {
	g := New(Options{})
	fb := &fixedFallback{value: 0.7}
	c := NewCachedAffinity(g, fb, time.Hour, 0)

	// Miss → fallback; repeat within the same bucket → cached.
	if got := c.PairAffinity("x", "y", t0); got != 0.7 {
		t.Errorf("fallback affinity = %v", got)
	}
	c.PairAffinity("x", "y", t0.Add(time.Minute))
	if fb.calls != 1 {
		t.Errorf("fallback called %d times, want 1 (bucketed)", fb.calls)
	}
	// Different bucket → recompute.
	c.PairAffinity("x", "y", t0.Add(2*time.Hour))
	if fb.calls != 2 {
		t.Errorf("fallback called %d times, want 2", fb.calls)
	}
}

// Property: collapsed weight is always within [min, max] of the stored
// observations (or their plain average when stale).
func TestCollapseBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(Options{Sigma: time.Duration(1+rng.Intn(120)) * time.Minute})
		n := 1 + rng.Intn(10)
		lo, hi := 1.0, 0.0
		for i := 0; i < n; i++ {
			w := rng.Float64()
			if w < lo {
				lo = w
			}
			if w > hi {
				hi = w
			}
			g.Merge([]Edge{{From: "a", To: "b", Weight: w}}, t0.Add(time.Duration(rng.Intn(86400))*time.Second))
		}
		tq := t0.Add(time.Duration(rng.Intn(86400)) * time.Second)
		w := g.Weight("a", "b", tq)
		return w >= lo-1e-9 && w <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: OrderNeighbors is a permutation of its input.
func TestOrderNeighborsPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(Options{})
		var devs []event.DeviceID
		for i := 0; i < 1+rng.Intn(12); i++ {
			d := event.DeviceID(fmt.Sprintf("d%d", i))
			devs = append(devs, d)
			if rng.Intn(2) == 0 {
				g.Merge([]Edge{{From: "q", To: d, Weight: rng.Float64()}}, t0)
			}
		}
		got := g.OrderNeighbors("q", devs, t0)
		if len(got) != len(devs) {
			return false
		}
		seen := map[event.DeviceID]int{}
		for _, d := range got {
			seen[d]++
		}
		for _, d := range devs {
			if seen[d] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// blockingFallback lets a test hold the singleflight leader inside the
// fallback while waiters pile up.
type blockingFallback struct {
	entered chan struct{} // receives one value per fallback entry
	release chan struct{} // each entry blocks until it can receive here
	mu      sync.Mutex
	calls   int
	doPanic bool
}

func (f *blockingFallback) PairAffinity(a, b event.DeviceID, _ time.Time) float64 {
	f.mu.Lock()
	f.calls++
	panicNow := f.doPanic
	f.doPanic = false // only the first computation panics
	f.mu.Unlock()
	f.entered <- struct{}{}
	<-f.release
	if panicNow {
		panic("fallback exploded")
	}
	return 0.42
}

// TestCachedAffinityWaitersShareMiss: singleflight waiters must count the
// miss they experienced, not a hit — the value was not cached when they
// looked.
func TestCachedAffinityWaitersShareMiss(t *testing.T) {
	g := New(Options{})
	fb := &blockingFallback{entered: make(chan struct{}, 8), release: make(chan struct{})}
	c := NewCachedAffinity(g, fb, time.Hour, 0)

	const waiters = 3
	var wg sync.WaitGroup
	results := make([]float64, waiters+1)
	for i := 0; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.PairAffinity("x", "y", t0)
		}(i)
	}
	<-fb.entered // leader is inside the fallback
	// Give the waiters a moment to join the in-flight call, then release.
	time.Sleep(20 * time.Millisecond)
	close(fb.release)
	wg.Wait()

	for i, r := range results {
		if r != 0.42 {
			t.Errorf("goroutine %d got %v", i, r)
		}
	}
	if fb.calls != 1 {
		t.Errorf("fallback ran %d times, want 1 (singleflight)", fb.calls)
	}
	st := c.Stats()
	if st.Hits != 0 {
		t.Errorf("hits = %d, want 0: nobody found a cached value", st.Hits)
	}
	if st.Misses != waiters+1 {
		t.Errorf("misses = %d, want %d (leader + waiters share the miss)", st.Misses, waiters+1)
	}
	// The value is cached now: one more lookup is a hit.
	if got := c.PairAffinity("x", "y", t0); got != 0.42 {
		t.Errorf("cached lookup = %v", got)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Errorf("hits after cached lookup = %d", st.Hits)
	}
}

// TestCachedAffinityLeaderPanicRetries: when the leader's fallback panics,
// waiters must not consume an uncomputed zero as if it were cached — they
// retry the computation themselves.
func TestCachedAffinityLeaderPanicRetries(t *testing.T) {
	g := New(Options{})
	fb := &blockingFallback{entered: make(chan struct{}, 8), release: make(chan struct{}), doPanic: true}
	c := NewCachedAffinity(g, fb, time.Hour, 0)

	leaderPanicked := make(chan struct{})
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("leader did not panic")
			}
			close(leaderPanicked)
		}()
		c.PairAffinity("x", "y", t0)
	}()
	<-fb.entered // leader inside the fallback

	var got float64
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		got = c.PairAffinity("x", "y", t0) // joins in-flight call, then retries
	}()
	time.Sleep(20 * time.Millisecond)
	close(fb.release) // leader panics; waiter retries and recomputes
	<-leaderPanicked
	<-fb.entered // the waiter's own (retry) computation
	<-waiterDone

	if got != 0.42 {
		t.Errorf("waiter got %v after leader panic, want recomputed 0.42", got)
	}
	if fb.calls != 2 {
		t.Errorf("fallback ran %d times, want 2 (panicked leader + retrying waiter)", fb.calls)
	}
}

// TestCachedAffinityInvalidate: an epoch bump must force the next lookup
// back to the fallback instead of serving the pre-invalidation answer.
func TestCachedAffinityInvalidate(t *testing.T) {
	g := New(Options{})
	fb := &fixedFallback{value: 0.7}
	c := NewCachedAffinity(g, fb, time.Hour, 0)

	c.PairAffinity("x", "y", t0)
	c.PairAffinity("x", "y", t0)
	if fb.calls != 1 {
		t.Fatalf("fallback ran %d times before invalidation", fb.calls)
	}
	c.Invalidate()
	c.PairAffinity("x", "y", t0)
	if fb.calls != 2 {
		t.Errorf("fallback ran %d times, want 2 (recompute after Invalidate)", fb.calls)
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Errorf("invalidations = %d", st.Invalidations)
	}
}

// TestCachedAffinityBounded: the fallback cache never exceeds its capacity
// no matter how many (pair, bucket) keys churn through it.
func TestCachedAffinityBounded(t *testing.T) {
	g := New(Options{})
	fb := &fixedFallback{value: 0.5}
	const capacity = 32
	c := NewCachedAffinity(g, fb, time.Hour, capacity)

	for i := 0; i < 10*capacity; i++ {
		a := event.DeviceID(fmt.Sprintf("dev-%d", i))
		c.PairAffinity(a, "hub", t0.Add(time.Duration(i)*2*time.Hour))
		if st := c.Stats(); st.Size > st.Capacity {
			t.Fatalf("size %d exceeds capacity %d", st.Size, st.Capacity)
		}
	}
	st := c.Stats()
	if st.Capacity != capacity {
		t.Errorf("capacity = %d, want %d", st.Capacity, capacity)
	}
	if st.Evictions == 0 {
		t.Error("no evictions under churn")
	}
}

// TestCachedAffinityWaiterAfterInvalidateRetries: a query that joins an
// in-flight fallback computation AFTER an invalidating write landed must
// not consume the pre-write value — it began after the write, so it retries
// and recomputes from post-write history.
func TestCachedAffinityWaiterAfterInvalidateRetries(t *testing.T) {
	g := New(Options{})
	fb := &blockingFallback{entered: make(chan struct{}, 8), release: make(chan struct{})}
	c := NewCachedAffinity(g, fb, time.Hour, 0)

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c.PairAffinity("x", "y", t0) // leader, computing under the old epoch
	}()
	<-fb.entered

	// The write: invalidate while the leader is still inside the fallback.
	c.Invalidate()

	// A post-write query joins the in-flight call.
	var got float64
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		got = c.PairAffinity("x", "y", t0)
	}()
	time.Sleep(20 * time.Millisecond) // let it join the inflight table
	close(fb.release)                 // leader finishes with the stale value
	<-leaderDone
	<-fb.entered // the waiter's own post-invalidate recomputation
	<-waiterDone

	if got != 0.42 {
		t.Errorf("post-invalidate waiter got %v", got)
	}
	if fb.calls != 2 {
		t.Errorf("fallback ran %d times, want 2 (stale leader + post-write recompute)", fb.calls)
	}
}

// batchCountingFallback implements both the per-pair and batch interfaces,
// counting how often each is consulted.
type batchCountingFallback struct {
	mu         sync.Mutex
	pairCalls  int
	batchCalls int
	batchPairs int
}

func (f *batchCountingFallback) val(a, b event.DeviceID) float64 {
	return float64(len(a)+len(b)) / 100
}

func (f *batchCountingFallback) PairAffinity(a, b event.DeviceID, _ time.Time) float64 {
	f.mu.Lock()
	f.pairCalls++
	f.mu.Unlock()
	return f.val(a, b)
}

func (f *batchCountingFallback) BatchPairAffinity(d event.DeviceID, cands []event.DeviceID, _ time.Time, out []float64) []float64 {
	f.mu.Lock()
	f.batchCalls++
	f.batchPairs += len(cands)
	f.mu.Unlock()
	if cap(out) < len(cands) {
		out = make([]float64, len(cands))
	}
	out = out[:len(cands)]
	for i, c := range cands {
		out[i] = f.val(d, c)
	}
	return out
}

// TestBatchPairAffinityMatchesSingle: the batch path must return exactly the
// per-pair answers, route all misses through ONE batched fallback sweep, and
// serve repeats from the cache without touching the fallback again.
func TestBatchPairAffinityMatchesSingle(t *testing.T) {
	g := New(Options{})
	fb := &batchCountingFallback{}
	c := NewCachedAffinity(g, fb, time.Hour, 0)
	ref := time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC)
	cands := []event.DeviceID{"bb", "ccc", "dddd", "eeeee"}

	got := c.BatchPairAffinity("a", cands, ref, nil)
	if fb.batchCalls != 1 || fb.batchPairs != len(cands) {
		t.Fatalf("fallback sweeps = %d (%d pairs), want 1 (%d)", fb.batchCalls, fb.batchPairs, len(cands))
	}
	for i, cand := range cands {
		if want := fb.val("a", cand); got[i] != want {
			t.Errorf("batch[%d] = %v, want %v", i, got[i], want)
		}
	}
	// Repeat: all cached, no new fallback traffic, same answers through the
	// single-pair entry point too.
	again := c.BatchPairAffinity("a", cands, ref, nil)
	for i := range cands {
		if again[i] != got[i] {
			t.Errorf("cached batch[%d] = %v, want %v", i, again[i], got[i])
		}
		if v := c.PairAffinity("a", cands[i], ref); v != got[i] {
			t.Errorf("single[%d] = %v, want %v", i, v, got[i])
		}
	}
	if fb.batchCalls != 1 || fb.pairCalls != 0 {
		t.Errorf("fallback after repeats: %d sweeps, %d pair calls", fb.batchCalls, fb.pairCalls)
	}

	// Graph edges pre-empt the fallback, exactly like the single path.
	g.Merge([]Edge{{From: "a", To: "bb", Weight: 0.75}}, ref)
	c.Invalidate()
	got = c.BatchPairAffinity("a", cands, ref, got)
	if got[0] != 0.75 {
		t.Errorf("graph-served batch[0] = %v, want 0.75", got[0])
	}
	if fb.batchCalls != 2 || fb.batchPairs != len(cands)+len(cands)-1 {
		t.Errorf("post-invalidate sweeps = %d (%d pairs)", fb.batchCalls, fb.batchPairs)
	}
}

// TestBatchPairAffinityConcurrent: concurrent batch sweeps over overlapping
// candidate sets must agree with the fallback values (singleflight keeps
// shared keys consistent) — run with -race this also proves the shared-done
// publication is sound.
func TestBatchPairAffinityConcurrent(t *testing.T) {
	g := New(Options{})
	fb := &batchCountingFallback{}
	c := NewCachedAffinity(g, fb, time.Hour, 0)
	ref := time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC)
	var cands []event.DeviceID
	for i := 0; i < 32; i++ {
		cands = append(cands, event.DeviceID(fmt.Sprintf("n%02d", i)))
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var out []float64
			for rep := 0; rep < 20; rep++ {
				sub := cands[(w+rep)%16 : (w+rep)%16+16]
				out = c.BatchPairAffinity("a", sub, ref, out)
				for i, cand := range sub {
					if want := fb.val("a", cand); out[i] != want {
						errs <- fmt.Sprintf("worker %d: %s = %v, want %v", w, cand, out[i], want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
