package affgraph

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"locater/internal/event"
)

var t0 = time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC)

func TestMergeAndWeight(t *testing.T) {
	g := New(Options{})
	g.Merge([]Edge{{From: "a", To: "b", Weight: 0.4}}, t0)
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// Same-time query returns the stored weight.
	if w := g.Weight("a", "b", t0); math.Abs(w-0.4) > 1e-9 {
		t.Errorf("weight = %v, want 0.4", w)
	}
	// Symmetric lookup.
	if w := g.Weight("b", "a", t0); math.Abs(w-0.4) > 1e-9 {
		t.Errorf("reverse weight = %v", w)
	}
	// Missing edge → 0.
	if w := g.Weight("a", "z", t0); w != 0 {
		t.Errorf("missing edge weight = %v", w)
	}
}

func TestSelfEdgeIgnored(t *testing.T) {
	g := New(Options{})
	g.Merge([]Edge{{From: "a", To: "a", Weight: 0.9}}, t0)
	if g.NumEdges() != 0 {
		t.Error("self edge should be ignored")
	}
}

func TestTimeWeightedCollapse(t *testing.T) {
	g := New(Options{Sigma: time.Hour})
	// Observation near the query dominates over a distant one.
	g.Merge([]Edge{{From: "a", To: "b", Weight: 1.0}}, t0)
	g.Merge([]Edge{{From: "a", To: "b", Weight: 0.0}}, t0.Add(10*time.Hour))
	wNear := g.Weight("a", "b", t0)
	if wNear < 0.9 {
		t.Errorf("near-time collapse = %v, want ≈1.0", wNear)
	}
	wFar := g.Weight("a", "b", t0.Add(10*time.Hour))
	if wFar > 0.1 {
		t.Errorf("far-time collapse = %v, want ≈0.0", wFar)
	}
	// Midpoint blends both.
	wMid := g.Weight("a", "b", t0.Add(5*time.Hour))
	if wMid < 0.2 || wMid > 0.8 {
		t.Errorf("mid collapse = %v, want blended", wMid)
	}
}

func TestStaleObservationsFallBackToAverage(t *testing.T) {
	g := New(Options{Sigma: time.Minute})
	g.Merge([]Edge{{From: "a", To: "b", Weight: 0.2}}, t0)
	g.Merge([]Edge{{From: "a", To: "b", Weight: 0.6}}, t0.Add(time.Minute))
	// Query a year away: kernel underflows; plain average 0.4 expected.
	w := g.Weight("a", "b", t0.AddDate(1, 0, 0))
	if math.Abs(w-0.4) > 1e-9 {
		t.Errorf("stale fallback = %v, want 0.4", w)
	}
}

func TestMaxObservationsBound(t *testing.T) {
	g := New(Options{MaxObservationsPerEdge: 3})
	for i := 0; i < 10; i++ {
		g.Merge([]Edge{{From: "a", To: "b", Weight: float64(i) / 10}}, t0.Add(time.Duration(i)*time.Minute))
	}
	obs := g.Observations("a", "b")
	if len(obs) != 3 {
		t.Fatalf("observations = %d, want 3 (bounded)", len(obs))
	}
	// Oldest dropped: remaining are the last three.
	if obs[0].Weight != 0.7 {
		t.Errorf("oldest remaining = %v, want 0.7", obs[0].Weight)
	}
}

func TestOrderNeighbors(t *testing.T) {
	g := New(Options{})
	g.Merge([]Edge{
		{From: "q", To: "low", Weight: 0.1},
		{From: "q", To: "high", Weight: 0.9},
		{From: "q", To: "mid", Weight: 0.5},
	}, t0)
	got := g.OrderNeighbors("q", []event.DeviceID{"low", "unknown1", "mid", "high", "unknown2"}, t0)
	want := []event.DeviceID{"high", "mid", "low", "unknown1", "unknown2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestNumDevices(t *testing.T) {
	g := New(Options{})
	g.Merge([]Edge{
		{From: "a", To: "b", Weight: 0.1},
		{From: "b", To: "c", Weight: 0.2},
	}, t0)
	if got := g.NumDevices(); got != 3 {
		t.Errorf("devices = %d, want 3", got)
	}
}

func TestConcurrentGraphAccess(t *testing.T) {
	g := New(Options{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a := event.DeviceID(fmt.Sprintf("d%d", w))
				b := event.DeviceID(fmt.Sprintf("d%d", (w+1)%4))
				g.Merge([]Edge{{From: a, To: b, Weight: 0.5}}, t0.Add(time.Duration(i)*time.Second))
				g.Weight(a, b, t0)
				g.OrderNeighbors(a, []event.DeviceID{b}, t0)
			}
		}(w)
	}
	wg.Wait()
	if g.NumEdges() == 0 {
		t.Error("no edges after concurrent merges")
	}
}

// fixedFallback counts fallback computations.
type fixedFallback struct {
	mu    sync.Mutex
	calls int
	value float64
}

func (f *fixedFallback) PairAffinity(a, b event.DeviceID, _ time.Time) float64 {
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	return f.value
}

func TestCachedAffinityGraphHit(t *testing.T) {
	g := New(Options{})
	g.Merge([]Edge{{From: "a", To: "b", Weight: 0.33}}, t0)
	fb := &fixedFallback{value: 0.9}
	c := NewCachedAffinity(g, fb, time.Hour)

	if got := c.PairAffinity("a", "b", t0); math.Abs(got-0.33) > 1e-9 {
		t.Errorf("graph-backed affinity = %v", got)
	}
	if fb.calls != 0 {
		t.Errorf("fallback called %d times despite graph hit", fb.calls)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 0 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestCachedAffinityFallbackAndBucket(t *testing.T) {
	g := New(Options{})
	fb := &fixedFallback{value: 0.7}
	c := NewCachedAffinity(g, fb, time.Hour)

	// Miss → fallback; repeat within the same bucket → cached.
	if got := c.PairAffinity("x", "y", t0); got != 0.7 {
		t.Errorf("fallback affinity = %v", got)
	}
	c.PairAffinity("x", "y", t0.Add(time.Minute))
	if fb.calls != 1 {
		t.Errorf("fallback called %d times, want 1 (bucketed)", fb.calls)
	}
	// Different bucket → recompute.
	c.PairAffinity("x", "y", t0.Add(2*time.Hour))
	if fb.calls != 2 {
		t.Errorf("fallback called %d times, want 2", fb.calls)
	}
}

// Property: collapsed weight is always within [min, max] of the stored
// observations (or their plain average when stale).
func TestCollapseBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(Options{Sigma: time.Duration(1+rng.Intn(120)) * time.Minute})
		n := 1 + rng.Intn(10)
		lo, hi := 1.0, 0.0
		for i := 0; i < n; i++ {
			w := rng.Float64()
			if w < lo {
				lo = w
			}
			if w > hi {
				hi = w
			}
			g.Merge([]Edge{{From: "a", To: "b", Weight: w}}, t0.Add(time.Duration(rng.Intn(86400))*time.Second))
		}
		tq := t0.Add(time.Duration(rng.Intn(86400)) * time.Second)
		w := g.Weight("a", "b", tq)
		return w >= lo-1e-9 && w <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: OrderNeighbors is a permutation of its input.
func TestOrderNeighborsPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(Options{})
		var devs []event.DeviceID
		for i := 0; i < 1+rng.Intn(12); i++ {
			d := event.DeviceID(fmt.Sprintf("d%d", i))
			devs = append(devs, d)
			if rng.Intn(2) == 0 {
				g.Merge([]Edge{{From: "q", To: d, Weight: rng.Float64()}}, t0)
			}
		}
		got := g.OrderNeighbors("q", devs, t0)
		if len(got) != len(devs) {
			return false
		}
		seen := map[event.DeviceID]int{}
		for _, d := range got {
			seen[d]++
		}
		for _, d := range devs {
			if seen[d] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
