// Ingest-time co-occurrence accumulation.
//
// The fallback affinity (fine.DeviceAffinity) measures interval overlap
// between two devices' timelines by scanning raw history at query time. The
// CoOccur accumulator maintains the same signal incrementally as events
// arrive: whenever two devices connect to the same access point within a
// small window, their pair edge receives a decayed bump. The resulting edge
// weights are OBSERVABILITY ONLY — they are reported through
// MaintenanceStats and never consulted when answering queries, because the
// query path must stay byte-identical to the batch recompute the `-incr`
// bench gates against.
//
// Like coarse.DeviceStats, decay is driven by event time, so replaying the
// same events in the same order reproduces the same weights exactly — that
// replay is the oracle the tests compare against.
package affgraph

import (
	"math"
	"sync"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// CoOccurConfig tunes the accumulator. Zero values take defaults.
type CoOccurConfig struct {
	// Window is how close in time two sightings at the same AP must be to
	// count as a co-occurrence. Default 5 minutes.
	Window time.Duration
	// HalfLife is the event-time decay half-life of edge weights.
	// Default 7 days.
	HalfLife time.Duration
	// MaxPairs bounds the pair map; bumps past the bound on NEW pairs are
	// counted as dropped instead of stored. Default 64Ki.
	MaxPairs int
	// RingSize is the per-AP ring of recent sightings scanned for
	// co-occurrences. Default 32.
	RingSize int
}

func (c CoOccurConfig) withDefaults() CoOccurConfig {
	if c.Window <= 0 {
		c.Window = 5 * time.Minute
	}
	if c.HalfLife <= 0 {
		c.HalfLife = 7 * 24 * time.Hour
	}
	if c.MaxPairs <= 0 {
		c.MaxPairs = 64 * 1024
	}
	if c.RingSize <= 0 {
		c.RingSize = 32
	}
	return c
}

type sighting struct {
	dev   event.DeviceID
	nanos int64
}

type apRing struct {
	ring []sighting
	next int
	used int
}

type coEdge struct {
	w         float64
	lastNanos int64
}

type coPair struct {
	a, b event.DeviceID
}

// CoOccurStats snapshots the accumulator's counters.
type CoOccurStats struct {
	// Pairs is the number of live pair edges.
	Pairs int64 `json:"pairs"`
	// Observations counts co-occurrence bumps applied.
	Observations int64 `json:"observations"`
	// Dropped counts bumps discarded because the pair map was full.
	Dropped int64 `json:"dropped"`
}

// CoOccur incrementally accumulates decayed co-occurrence edge weights from
// ingested events. Safe for concurrent use.
type CoOccur struct {
	cfg CoOccurConfig

	mu    sync.Mutex
	aps   map[space.APID]*apRing
	pairs map[coPair]*coEdge

	observations int64
	dropped      int64
}

// NewCoOccur creates an empty accumulator.
func NewCoOccur(cfg CoOccurConfig) *CoOccur {
	return &CoOccur{
		cfg:   cfg.withDefaults(),
		aps:   make(map[space.APID]*apRing),
		pairs: make(map[coPair]*coEdge),
	}
}

// Observe folds an ingested batch into the accumulator: each event is
// checked against the recent sightings at its AP, and every other device
// seen there within Window gets its pair edge bumped (with event-time
// decay), then the event joins the AP's ring.
func (co *CoOccur) Observe(events []event.Event) {
	if len(events) == 0 {
		return
	}
	window := int64(co.cfg.Window)
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, e := range events {
		ts := e.Time.UnixNano()
		r := co.aps[e.AP]
		if r == nil {
			r = &apRing{ring: make([]sighting, co.cfg.RingSize)}
			co.aps[e.AP] = r
		}
		for i := 0; i < r.used; i++ {
			s := r.ring[i]
			if s.dev == e.Device {
				continue
			}
			dt := ts - s.nanos
			if dt < 0 {
				dt = -dt
			}
			if dt <= window {
				co.bumpLocked(e.Device, s.dev, ts)
			}
		}
		r.ring[r.next] = sighting{dev: e.Device, nanos: ts}
		r.next = (r.next + 1) % len(r.ring)
		if r.used < len(r.ring) {
			r.used++
		}
	}
}

func (co *CoOccur) bumpLocked(a, b event.DeviceID, tsNanos int64) {
	x, y := orderPair(a, b)
	key := coPair{a: x, b: y}
	ed := co.pairs[key]
	if ed == nil {
		if len(co.pairs) >= co.cfg.MaxPairs {
			co.dropped++
			return
		}
		ed = &coEdge{}
		co.pairs[key] = ed
	}
	if dt := tsNanos - ed.lastNanos; ed.w > 0 && dt > 0 {
		ed.w *= math.Exp(-math.Ln2 * float64(dt) / float64(co.cfg.HalfLife))
	}
	if tsNanos > ed.lastNanos {
		ed.lastNanos = tsNanos
	}
	ed.w++
	co.observations++
}

// Weight returns the pair's current decayed edge weight (0 when the pair
// has never co-occurred) and the event time it was last bumped at.
func (co *CoOccur) Weight(a, b event.DeviceID) (float64, int64) {
	x, y := orderPair(a, b)
	co.mu.Lock()
	defer co.mu.Unlock()
	if ed := co.pairs[coPair{a: x, b: y}]; ed != nil {
		return ed.w, ed.lastNanos
	}
	return 0, 0
}

// Stats snapshots the accumulator's counters.
func (co *CoOccur) Stats() CoOccurStats {
	co.mu.Lock()
	defer co.mu.Unlock()
	return CoOccurStats{
		Pairs:        int64(len(co.pairs)),
		Observations: co.observations,
		Dropped:      co.dropped,
	}
}
