// Package affgraph implements LOCATER's caching engine (paper Section 5):
// the global affinity graph that accumulates, across queries, the local
// affinity graphs produced by the fine-grained localization algorithm, and
// uses them to (a) order neighbor devices by decreasing affinity so
// Algorithm 2 converges after processing fewer devices, and (b) cache
// pairwise device affinities so they are not recomputed from raw history on
// every query.
//
// Nodes are devices; an edge between two devices carries a vector of
// (weight, timestamp) pairs — one entry per local affinity graph that
// contained the edge. At query time the vector is collapsed into a single
// weight with a normalized Gaussian kernel centred at the query time, so
// affinities observed near t_q dominate.
package affgraph

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"locater/internal/cache"
	"locater/internal/event"
)

// WeightedEdge is one timestamped observation of an edge weight, taken from
// a local affinity graph.
type WeightedEdge struct {
	Weight float64
	Time   time.Time
}

// Graph is the global affinity graph. It is safe for concurrent use.
type Graph struct {
	mu sync.RWMutex

	// edges[a][b] = observations, stored symmetrically (a < b).
	edges map[event.DeviceID]map[event.DeviceID][]WeightedEdge

	// sigma of the Gaussian kernel used to collapse edge vectors.
	sigma time.Duration
	// maxObservations bounds the per-edge vector; oldest entries are
	// dropped first. 0 = unbounded.
	maxObservations int

	numEdges   int
	numUpdates int
}

type pairKey struct {
	a, b   event.DeviceID
	bucket int64
}

// Options configures the graph.
type Options struct {
	// Sigma is the standard deviation of the Gaussian time kernel.
	// Default 1 hour (the paper uses a normalized normal with µ = t_q).
	Sigma time.Duration
	// MaxObservationsPerEdge caps each edge's vector. Default 64.
	MaxObservationsPerEdge int
}

// New creates an empty global affinity graph.
func New(opts Options) *Graph {
	if opts.Sigma <= 0 {
		opts.Sigma = time.Hour
	}
	if opts.MaxObservationsPerEdge == 0 {
		opts.MaxObservationsPerEdge = 64
	}
	return &Graph{
		edges:           make(map[event.DeviceID]map[event.DeviceID][]WeightedEdge),
		sigma:           opts.Sigma,
		maxObservations: opts.MaxObservationsPerEdge,
	}
}

func orderPair(a, b event.DeviceID) (event.DeviceID, event.DeviceID) {
	if a <= b {
		return a, b
	}
	return b, a
}

// Merge folds a local affinity graph into the global one: V̂g = Vg ∪ Vl,
// Êg = Eg ∪ El, appending (weight, t_q) to each touched edge's vector.
func (g *Graph) Merge(edges []Edge, tq time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, e := range edges {
		a, b := orderPair(e.From, e.To)
		if a == b {
			continue
		}
		m, ok := g.edges[a]
		if !ok {
			m = make(map[event.DeviceID][]WeightedEdge)
			g.edges[a] = m
		}
		if _, existed := m[b]; !existed {
			g.numEdges++
		}
		v := append(m[b], WeightedEdge{Weight: e.Weight, Time: tq})
		if g.maxObservations > 0 && len(v) > g.maxObservations {
			v = v[len(v)-g.maxObservations:]
		}
		m[b] = v
		g.numUpdates++
	}
}

// Edge mirrors fine.LocalEdge without importing the package (avoiding an
// import cycle): a pairwise affinity observation from one query.
type Edge struct {
	From, To event.DeviceID
	Weight   float64
}

// Weight collapses the edge vector between a and b into a single affinity
// at query time tq: a Gaussian-kernel weighted average with µ = t_q,
// σ = Options.Sigma, normalized over the observations (paper Section 5).
// Returns 0 when the edge does not exist.
func (g *Graph) Weight(a, b event.DeviceID, tq time.Time) float64 {
	a, b = orderPair(a, b)
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.weightLocked(a, b, tq)
}

func (g *Graph) weightLocked(a, b event.DeviceID, tq time.Time) float64 {
	m, ok := g.edges[a]
	if !ok {
		return 0
	}
	obs, ok := m[b]
	if !ok || len(obs) == 0 {
		return 0
	}
	sigma := g.sigma.Seconds()
	num, den := 0.0, 0.0
	for _, o := range obs {
		dt := tq.Sub(o.Time).Seconds() / sigma
		l := math.Exp(-0.5 * dt * dt)
		num += l * o.Weight
		den += l
	}
	if den <= 1e-300 {
		// All observations are far from tq: fall back to plain average so
		// stale knowledge still orders neighbors.
		sum := 0.0
		for _, o := range obs {
			sum += o.Weight
		}
		return sum / float64(len(obs))
	}
	return num / den
}

// WeightsBatch collapses the edge vectors (d, cands[i]) at tq into
// out[:len(cands)] under a single shared lock — the batched form of Weight
// the fine stage's affinity sweep uses so a query with N neighbors takes the
// graph lock once, not N times. out is caller-owned scratch and is grown as
// needed.
func (g *Graph) WeightsBatch(d event.DeviceID, cands []event.DeviceID, tq time.Time, out []float64) []float64 {
	if cap(out) < len(cands) {
		out = make([]float64, len(cands))
	}
	out = out[:len(cands)]
	g.mu.RLock()
	defer g.mu.RUnlock()
	for i, n := range cands {
		a, b := orderPair(d, n)
		out[i] = g.weightLocked(a, b, tq)
	}
	return out
}

// OrderNeighbors sorts the neighbor candidates by decreasing collapsed edge
// weight w.r.t. the queried device, breaking ties by device ID. Devices
// with no edge sort after devices with edges (weight 0), preserving their
// relative input order. This implements fine.NeighborOrderer.
func (g *Graph) OrderNeighbors(d event.DeviceID, neighbors []event.DeviceID, tq time.Time) []event.DeviceID {
	type scored struct {
		dev    event.DeviceID
		weight float64
		pos    int
	}
	g.mu.RLock()
	ss := make([]scored, len(neighbors))
	for i, n := range neighbors {
		a, b := orderPair(d, n)
		ss[i] = scored{dev: n, weight: g.weightLocked(a, b, tq), pos: i}
	}
	g.mu.RUnlock()
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].weight != ss[j].weight {
			return ss[i].weight > ss[j].weight
		}
		return ss[i].pos < ss[j].pos
	})
	out := make([]event.DeviceID, len(ss))
	for i, s := range ss {
		out[i] = s.dev
	}
	return out
}

// NumEdges returns the number of distinct edges in the graph.
func (g *Graph) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.numEdges
}

// NumDevices returns the number of devices that appear in at least one edge.
func (g *Graph) NumDevices() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := make(map[event.DeviceID]bool)
	for a, m := range g.edges {
		if len(m) > 0 {
			seen[a] = true
		}
		for b := range m {
			seen[b] = true
		}
	}
	return len(seen)
}

// Observations returns a copy of the raw edge vector (diagnostics).
func (g *Graph) Observations(a, b event.DeviceID) []WeightedEdge {
	a, b = orderPair(a, b)
	g.mu.RLock()
	defer g.mu.RUnlock()
	m, ok := g.edges[a]
	if !ok {
		return nil
	}
	obs := m[b]
	out := make([]WeightedEdge, len(obs))
	copy(out, obs)
	return out
}

// CachedAffinity is a fine.PairAffinityProvider that first consults the
// global graph and falls back to the underlying provider on a miss, caching
// the fallback's answers in a bounded LRU keyed by (pair, time bucket) so
// repeated queries at nearby times hit the cache. The cache is epoch-based:
// Invalidate (called after every ingest or δ change) orphans all cached
// affinities in O(1), so post-write queries recompute from the new history
// instead of answering from pre-write co-locations forever.
type CachedAffinity struct {
	Graph *Graph
	// Fallback computes affinities when the graph has no edge. Must be
	// non-nil.
	Fallback interface {
		PairAffinity(a, b event.DeviceID, ref time.Time) float64
	}
	// BucketSize quantizes reference times for the fallback cache.
	// Default 1 hour.
	BucketSize time.Duration

	// fallbackCache bounds the memoized fallback answers; its shards
	// synchronize plain lookups, so the common hit path never touches mu.
	fallbackCache *cache.Cache[pairKey, float64]
	// mu guards inflight, which deduplicates concurrent misses for the
	// same key (singleflight): the fallback computation is the most
	// expensive step of the fine stage, so only one goroutine runs it
	// while the rest wait for its result.
	mu       sync.Mutex
	inflight map[pairKey]*inflightAffinity

	graphHits atomic.Int64
}

// inflightAffinity is one in-progress fallback computation. val and ok are
// written before done is closed, so waiters reading after <-done see them.
// ok is false when the leader's fallback panicked: no value was computed,
// and waiters must retry rather than consume a bogus zero. epoch is the
// cache epoch the leader captured before computing; a waiter that joined at
// a later epoch (an invalidating write landed in between) must also retry —
// its query began after the write, so it may not consume the pre-write
// value.
type inflightAffinity struct {
	done  chan struct{}
	epoch uint64
	val   float64
	ok    bool
}

// DefaultFallbackCacheSize bounds the fallback cache when NewCachedAffinity
// is given a non-positive capacity: 64Ki (pair, bucket) entries ≈ 3 MB.
const DefaultFallbackCacheSize = 64 * 1024

// NewCachedAffinity wires a graph in front of a fallback provider with a
// fallback cache of at most capacity entries (DefaultFallbackCacheSize when
// capacity ≤ 0).
func NewCachedAffinity(g *Graph, fallback interface {
	PairAffinity(a, b event.DeviceID, ref time.Time) float64
}, bucket time.Duration, capacity int) *CachedAffinity {
	if bucket <= 0 {
		bucket = time.Hour
	}
	if capacity <= 0 {
		capacity = DefaultFallbackCacheSize
	}
	return &CachedAffinity{
		Graph:         g,
		Fallback:      fallback,
		BucketSize:    bucket,
		fallbackCache: cache.New[pairKey, float64](capacity, hashPairKey),
		inflight:      make(map[pairKey]*inflightAffinity),
	}
}

// hashPairKey mixes both device IDs and the time bucket (FNV-1a with a
// separator byte so ("ab","c") and ("a","bc") shard independently).
func hashPairKey(k pairKey) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.a); i++ {
		h ^= uint64(k.a[i])
		h *= prime64
	}
	h ^= 0xff
	h *= prime64
	for i := 0; i < len(k.b); i++ {
		h ^= uint64(k.b[i])
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(k.bucket >> (8 * i)))
		h *= prime64
	}
	return h
}

// PairAffinity implements fine.PairAffinityProvider.
//
// Accounting: a lookup served by the global graph counts as a hit (tracked
// separately and folded into Stats), a cached fallback answer counts as a
// hit, and everything that reaches the fallback — the singleflight leader
// and every waiter that shares its computation — counts as a miss. Waiters
// also share the leader's error path: if the leader's fallback panicked,
// they retry instead of consuming an uncomputed zero.
func (c *CachedAffinity) PairAffinity(a, b event.DeviceID, ref time.Time) float64 {
	if w := c.Graph.Weight(a, b, ref); w > 0 {
		c.graphHits.Add(1)
		return w
	}
	x, y := orderPair(a, b)
	key := pairKey{a: x, b: y, bucket: ref.Unix() / int64(c.BucketSize.Seconds())}
	for {
		if v, ok := c.fallbackCache.Get(key); ok {
			return v
		}
		// Miss (already counted by Get): join an in-flight computation
		// for this key if one exists, otherwise claim it.
		c.mu.Lock()
		if v, ok := c.fallbackCache.Peek(key); ok {
			// Filled between Get and Lock; Peek keeps the counters
			// honest (the miss above stands, no phantom second lookup).
			c.mu.Unlock()
			return v
		}
		if call, ok := c.inflight[key]; ok {
			// If the epoch moved since the leader captured call.epoch,
			// the in-flight computation reads pre-write history this
			// query (which began after the write) must not see.
			joinEpoch := c.fallbackCache.Epoch()
			c.mu.Unlock()
			<-call.done
			if call.ok && call.epoch == joinEpoch {
				return call.val
			}
			// Leader panicked, or its computation predates a write that
			// happened before this query joined: retry, possibly
			// becoming leader (the leader deletes its inflight entry
			// before closing done, so the retry never re-joins it).
			continue
		}
		call := &inflightAffinity{done: make(chan struct{}), epoch: c.fallbackCache.Epoch()}
		c.inflight[key] = call
		c.mu.Unlock()
		return c.leadFallback(a, b, ref, key, call)
	}
}

// leadFallback runs the fallback as the singleflight leader and publishes
// the result. The publish happens in a defer so a panicking fallback
// (recovered by callers like net/http) can never leave waiters blocked on
// done forever; only a successful computation is cached, and only if no
// invalidation landed while it ran (call.epoch was captured before).
func (c *CachedAffinity) leadFallback(a, b event.DeviceID, ref time.Time, key pairKey, call *inflightAffinity) (v float64) {
	computed := false
	defer func() {
		c.mu.Lock()
		if computed {
			c.fallbackCache.PutAt(key, v, call.epoch)
		}
		delete(c.inflight, key)
		c.mu.Unlock()
		call.val, call.ok = v, computed
		close(call.done)
	}()
	v = c.Fallback.PairAffinity(a, b, ref)
	computed = true
	return v
}

// BatchPairAffinity answers α({d, c}) for every candidate c in one pass —
// the fine stage's batched sweep entry point (fine.BatchPairAffinityProvider).
// The graph is consulted once for all pairs under a single shared lock;
// cached fallback answers fill in next; the remaining misses are computed in
// ONE batched fallback sweep (when the fallback implements the batch
// interface) instead of a per-pair copy each, which is where a cold query
// with N neighbors used to pay 2N history copies.
//
// Accounting and invalidation semantics match PairAffinity exactly: graph
// answers count as hits, everything that reaches the fallback counts as a
// miss, concurrent misses for the same key share one computation
// (singleflight), and a computation that predates an epoch bump is returned
// to its own caller but never cached.
func (c *CachedAffinity) BatchPairAffinity(d event.DeviceID, cands []event.DeviceID, ref time.Time, out []float64) []float64 {
	out = c.Graph.WeightsBatch(d, cands, ref, out)
	bucket := ref.Unix() / int64(c.BucketSize.Seconds())

	// Resolve graph hits and cached fallback answers; collect the misses.
	var missIdx []int
	var missKeys []pairKey
	for i, cand := range cands {
		if out[i] > 0 {
			c.graphHits.Add(1)
			continue
		}
		x, y := orderPair(d, cand)
		key := pairKey{a: x, b: y, bucket: bucket}
		if v, ok := c.fallbackCache.Get(key); ok {
			out[i] = v
			continue
		}
		missIdx = append(missIdx, i)
		missKeys = append(missKeys, key)
	}
	if len(missIdx) == 0 {
		return out
	}

	// Claim or join an in-flight computation per missing key. Keys this call
	// claims are computed below in one batched fallback sweep; keys another
	// goroutine is already computing are joined after our own sweep
	// publishes (so their waiters are never blocked on us).
	c.mu.Lock()
	var leadIdx []int // positions into missIdx/missKeys this call leads
	var leadCalls []*inflightAffinity
	// Every key this call leads completes at the same moment (one batched
	// sweep publishes them together), so they share a single done channel.
	var leadDone chan struct{}
	type joined struct {
		pos   int // index into cands/out
		call  *inflightAffinity
		epoch uint64
	}
	var joins []joined
	for mi, key := range missKeys {
		if v, ok := c.fallbackCache.Peek(key); ok {
			out[missIdx[mi]] = v
			continue
		}
		if call, ok := c.inflight[key]; ok {
			joins = append(joins, joined{pos: missIdx[mi], call: call, epoch: c.fallbackCache.Epoch()})
			continue
		}
		if leadDone == nil {
			leadDone = make(chan struct{})
		}
		call := &inflightAffinity{done: leadDone, epoch: c.fallbackCache.Epoch()}
		c.inflight[key] = call
		leadIdx = append(leadIdx, mi)
		leadCalls = append(leadCalls, call)
	}
	c.mu.Unlock()

	if len(leadIdx) > 0 {
		leadDevs := make([]event.DeviceID, len(leadIdx))
		leadKeys := make([]pairKey, len(leadIdx))
		for k, mi := range leadIdx {
			leadDevs[k] = cands[missIdx[mi]]
			leadKeys[k] = missKeys[mi]
		}
		vals := c.leadBatchFallback(d, leadDevs, ref, leadKeys, leadCalls, leadDone)
		for k, mi := range leadIdx {
			out[missIdx[mi]] = vals[k]
		}
	}
	for _, j := range joins {
		<-j.call.done
		if j.call.ok && j.call.epoch == j.epoch {
			out[j.pos] = j.call.val
			continue
		}
		// The foreign leader panicked or its computation predates a write
		// observed before this query joined: re-resolve through the full
		// single-pair path (which retries until it leads or reads a fresh
		// value).
		out[j.pos] = c.PairAffinity(d, cands[j.pos], ref)
	}
	return out
}

// leadBatchFallback computes the claimed keys' affinities in one batched
// fallback sweep and publishes them. Publication happens in a defer, so a
// panicking fallback can never leave waiters blocked; as in leadFallback,
// only successful computations are cached, and only at the epoch captured
// when the key was claimed. done is the completion channel every claimed
// key's inflight entry shares — closed exactly once, after all values are
// written.
func (c *CachedAffinity) leadBatchFallback(d event.DeviceID, devs []event.DeviceID, ref time.Time, keys []pairKey, calls []*inflightAffinity, done chan struct{}) (vals []float64) {
	computed := false
	defer func() {
		c.mu.Lock()
		for i, key := range keys {
			if computed {
				c.fallbackCache.PutAt(key, vals[i], calls[i].epoch)
			}
			delete(c.inflight, key)
		}
		c.mu.Unlock()
		for i, call := range calls {
			if computed {
				call.val = vals[i]
			}
			call.ok = computed
		}
		close(done)
	}()
	if bf, ok := c.Fallback.(batchFallback); ok {
		vals = bf.BatchPairAffinity(d, devs, ref, make([]float64, 0, len(devs)))
	} else {
		vals = make([]float64, len(devs))
		for i, dev := range devs {
			vals[i] = c.Fallback.PairAffinity(d, dev, ref)
		}
	}
	computed = true
	return vals
}

// batchFallback mirrors fine.BatchPairAffinityProvider without importing the
// package (avoiding an import cycle, like Edge does for fine.LocalEdge).
type batchFallback interface {
	BatchPairAffinity(d event.DeviceID, cands []event.DeviceID, ref time.Time, out []float64) []float64
}

// Invalidate orphans every cached fallback affinity (O(1) epoch bump).
// Called after writes that change affinity inputs: new events or δ changes.
// The global graph is not cleared — its edges are query-derived knowledge
// the paper's caching engine intentionally accumulates.
func (c *CachedAffinity) Invalidate() { c.fallbackCache.Invalidate() }

// Stats reports the affinity tier's counters: the bounded fallback cache's
// size/capacity/evictions/invalidations, with lookups served straight from
// the global graph folded into Hits.
func (c *CachedAffinity) Stats() cache.Stats {
	st := c.fallbackCache.Stats()
	st.Hits += c.graphHits.Load()
	return st
}
