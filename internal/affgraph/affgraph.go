// Package affgraph implements LOCATER's caching engine (paper Section 5):
// the global affinity graph that accumulates, across queries, the local
// affinity graphs produced by the fine-grained localization algorithm, and
// uses them to (a) order neighbor devices by decreasing affinity so
// Algorithm 2 converges after processing fewer devices, and (b) cache
// pairwise device affinities so they are not recomputed from raw history on
// every query.
//
// Nodes are devices; an edge between two devices carries a vector of
// (weight, timestamp) pairs — one entry per local affinity graph that
// contained the edge. At query time the vector is collapsed into a single
// weight with a normalized Gaussian kernel centred at the query time, so
// affinities observed near t_q dominate.
package affgraph

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"locater/internal/cache"
	"locater/internal/event"
)

// WeightedEdge is one timestamped observation of an edge weight, taken from
// a local affinity graph.
type WeightedEdge struct {
	Weight float64
	Time   time.Time
}

// Graph is the global affinity graph. It is safe for concurrent use.
type Graph struct {
	mu sync.RWMutex

	// edges[a][b] = observations, stored symmetrically (a < b).
	edges map[event.DeviceID]map[event.DeviceID][]WeightedEdge

	// sigma of the Gaussian kernel used to collapse edge vectors.
	sigma time.Duration
	// maxObservations bounds the per-edge vector; oldest entries are
	// dropped first. 0 = unbounded.
	maxObservations int

	numEdges   int
	numUpdates int
}

type pairKey struct {
	a, b   event.DeviceID
	bucket int64
}

// Options configures the graph.
type Options struct {
	// Sigma is the standard deviation of the Gaussian time kernel.
	// Default 1 hour (the paper uses a normalized normal with µ = t_q).
	Sigma time.Duration
	// MaxObservationsPerEdge caps each edge's vector. Default 64.
	MaxObservationsPerEdge int
}

// New creates an empty global affinity graph.
func New(opts Options) *Graph {
	if opts.Sigma <= 0 {
		opts.Sigma = time.Hour
	}
	if opts.MaxObservationsPerEdge == 0 {
		opts.MaxObservationsPerEdge = 64
	}
	return &Graph{
		edges:           make(map[event.DeviceID]map[event.DeviceID][]WeightedEdge),
		sigma:           opts.Sigma,
		maxObservations: opts.MaxObservationsPerEdge,
	}
}

func orderPair(a, b event.DeviceID) (event.DeviceID, event.DeviceID) {
	if a <= b {
		return a, b
	}
	return b, a
}

// Merge folds a local affinity graph into the global one: V̂g = Vg ∪ Vl,
// Êg = Eg ∪ El, appending (weight, t_q) to each touched edge's vector.
func (g *Graph) Merge(edges []Edge, tq time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, e := range edges {
		a, b := orderPair(e.From, e.To)
		if a == b {
			continue
		}
		m, ok := g.edges[a]
		if !ok {
			m = make(map[event.DeviceID][]WeightedEdge)
			g.edges[a] = m
		}
		if _, existed := m[b]; !existed {
			g.numEdges++
		}
		v := append(m[b], WeightedEdge{Weight: e.Weight, Time: tq})
		if g.maxObservations > 0 && len(v) > g.maxObservations {
			v = v[len(v)-g.maxObservations:]
		}
		m[b] = v
		g.numUpdates++
	}
}

// Edge mirrors fine.LocalEdge without importing the package (avoiding an
// import cycle): a pairwise affinity observation from one query.
type Edge struct {
	From, To event.DeviceID
	Weight   float64
}

// Weight collapses the edge vector between a and b into a single affinity
// at query time tq: a Gaussian-kernel weighted average with µ = t_q,
// σ = Options.Sigma, normalized over the observations (paper Section 5).
// Returns 0 when the edge does not exist.
func (g *Graph) Weight(a, b event.DeviceID, tq time.Time) float64 {
	a, b = orderPair(a, b)
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.weightLocked(a, b, tq)
}

func (g *Graph) weightLocked(a, b event.DeviceID, tq time.Time) float64 {
	m, ok := g.edges[a]
	if !ok {
		return 0
	}
	obs, ok := m[b]
	if !ok || len(obs) == 0 {
		return 0
	}
	sigma := g.sigma.Seconds()
	num, den := 0.0, 0.0
	for _, o := range obs {
		dt := tq.Sub(o.Time).Seconds() / sigma
		l := math.Exp(-0.5 * dt * dt)
		num += l * o.Weight
		den += l
	}
	if den <= 1e-300 {
		// All observations are far from tq: fall back to plain average so
		// stale knowledge still orders neighbors.
		sum := 0.0
		for _, o := range obs {
			sum += o.Weight
		}
		return sum / float64(len(obs))
	}
	return num / den
}

// WeightsBatch collapses the edge vectors (d, cands[i]) at tq into
// out[:len(cands)] under a single shared lock — the batched form of Weight
// the fine stage's affinity sweep uses so a query with N neighbors takes the
// graph lock once, not N times. out is caller-owned scratch and is grown as
// needed.
func (g *Graph) WeightsBatch(d event.DeviceID, cands []event.DeviceID, tq time.Time, out []float64) []float64 {
	if cap(out) < len(cands) {
		out = make([]float64, len(cands))
	}
	out = out[:len(cands)]
	g.mu.RLock()
	defer g.mu.RUnlock()
	for i, n := range cands {
		a, b := orderPair(d, n)
		out[i] = g.weightLocked(a, b, tq)
	}
	return out
}

// OrderNeighbors sorts the neighbor candidates by decreasing collapsed edge
// weight w.r.t. the queried device, breaking ties by device ID. Devices
// with no edge sort after devices with edges (weight 0), preserving their
// relative input order. This implements fine.NeighborOrderer.
func (g *Graph) OrderNeighbors(d event.DeviceID, neighbors []event.DeviceID, tq time.Time) []event.DeviceID {
	type scored struct {
		dev    event.DeviceID
		weight float64
		pos    int
	}
	g.mu.RLock()
	ss := make([]scored, len(neighbors))
	for i, n := range neighbors {
		a, b := orderPair(d, n)
		ss[i] = scored{dev: n, weight: g.weightLocked(a, b, tq), pos: i}
	}
	g.mu.RUnlock()
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].weight != ss[j].weight {
			return ss[i].weight > ss[j].weight
		}
		return ss[i].pos < ss[j].pos
	})
	out := make([]event.DeviceID, len(ss))
	for i, s := range ss {
		out[i] = s.dev
	}
	return out
}

// NumEdges returns the number of distinct edges in the graph.
func (g *Graph) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.numEdges
}

// NumDevices returns the number of devices that appear in at least one edge.
func (g *Graph) NumDevices() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := make(map[event.DeviceID]bool)
	for a, m := range g.edges {
		if len(m) > 0 {
			seen[a] = true
		}
		for b := range m {
			seen[b] = true
		}
	}
	return len(seen)
}

// Observations returns a copy of the raw edge vector (diagnostics).
func (g *Graph) Observations(a, b event.DeviceID) []WeightedEdge {
	a, b = orderPair(a, b)
	g.mu.RLock()
	defer g.mu.RUnlock()
	m, ok := g.edges[a]
	if !ok {
		return nil
	}
	obs := m[b]
	out := make([]WeightedEdge, len(obs))
	copy(out, obs)
	return out
}

// CachedAffinity is a fine.PairAffinityProvider that first consults the
// global graph and falls back to the underlying provider on a miss, caching
// the fallback's answers in a bounded LRU keyed by (pair, time bucket).
//
// Staleness after writes is handled with SCOPED per-device validation
// instead of a whole-cache epoch bump. Every cached entry is stamped with
// the write sequence numbers of its two devices at computation time
// (affEntry); ObserveIngest records each device's writes together with the
// minimum event timestamp of the batch. A cached (pair, bucket) entry
// remains provably byte-identical to a fresh recompute as long as every
// write to either device since the entry was computed carries only events
// AFTER the bucket's end: the fallback affinity over (ref−window, ref]
// depends only on the two devices' events with time ≤ ref ≤ bucketEnd (see
// fine.DeviceAffinity) plus δ, and δ changes route through
// InvalidateDevice/Invalidate. So steady-state ingest of recent events —
// the fleet write pattern — invalidates nothing, where the old epoch bump
// recomputed every pair after every write.
//
// The global Invalidate (O(1) epoch bump) remains for writes scoped
// validation cannot express, e.g. EstimateDeltas changing every δ at once.
//
// One documented relaxation: a waiter that joins an in-flight computation
// re-validates the result against the write log before consuming it, but a
// write landing in the microseconds between that check and the caller's use
// is indistinguishable from the write landing just after the query — the
// same pre/post ordering ambiguity any concurrent read/write pair has.
type CachedAffinity struct {
	Graph *Graph
	// Fallback computes affinities when the graph has no edge. Must be
	// non-nil.
	Fallback interface {
		PairAffinity(a, b event.DeviceID, ref time.Time) float64
	}
	// BucketSize quantizes reference times for the fallback cache.
	// Default 1 hour.
	BucketSize time.Duration

	// fallbackCache bounds the memoized fallback answers; its shards
	// synchronize plain lookups, so the common hit path never touches mu.
	fallbackCache *cache.Cache[pairKey, affEntry]
	// mu guards inflight, which deduplicates concurrent misses for the
	// same key (singleflight): the fallback computation is the most
	// expensive step of the fine stage, so only one goroutine runs it
	// while the rest wait for its result.
	mu       sync.Mutex
	inflight map[pairKey]*inflightAffinity

	// wmu guards writes, the per-device write log scoped validation reads.
	// Lock order: mu before wmu; neither is held across a fallback compute.
	wmu    sync.RWMutex
	writes map[event.DeviceID]*devWrites

	// cooccur incrementally accumulates co-occurrence edge statistics from
	// ingested events (cooccur.go). Observability only — never consulted
	// when answering queries.
	cooccur *CoOccur

	graphHits     atomic.Int64
	fallbackNanos atomic.Int64
	scopedKept    atomic.Int64
	scopedStale   atomic.Int64
}

// affEntry is one cached fallback affinity, stamped with the write
// sequence numbers of the (ordered) pair's devices captured when its
// computation was claimed.
type affEntry struct {
	val  float64
	seqA uint64
	seqB uint64
}

// writeRingSize bounds the per-device write history scoped validation can
// prove against; entries older than the ring are conservatively stale.
const writeRingSize = 32

type writeRec struct {
	seq      uint64
	minNanos int64
}

// devWrites is one device's write log: a monotone sequence number plus a
// ring of the last writeRingSize (seq, min event time) records.
type devWrites struct {
	seq  uint64
	ring [writeRingSize]writeRec
}

// inflightAffinity is one in-progress fallback computation. val and ok are
// written before done is closed, so waiters reading after <-done see them.
// ok is false when the leader's fallback panicked: no value was computed,
// and waiters must retry rather than consume a bogus zero. epoch is the
// cache epoch the leader captured before computing; a waiter that joined at
// a later epoch (an invalidating write landed in between) must also retry —
// its query began after the write, so it may not consume the pre-write
// value.
type inflightAffinity struct {
	done  chan struct{}
	epoch uint64
	// seqA/seqB are the pair devices' write sequence numbers captured when
	// the computation was claimed; the cached entry is stamped with them.
	seqA uint64
	seqB uint64
	val  float64
	ok   bool
}

// DefaultFallbackCacheSize bounds the fallback cache when NewCachedAffinity
// is given a non-positive capacity: 64Ki (pair, bucket) entries ≈ 3 MB.
const DefaultFallbackCacheSize = 64 * 1024

// NewCachedAffinity wires a graph in front of a fallback provider with a
// fallback cache of at most capacity entries (DefaultFallbackCacheSize when
// capacity ≤ 0).
func NewCachedAffinity(g *Graph, fallback interface {
	PairAffinity(a, b event.DeviceID, ref time.Time) float64
}, bucket time.Duration, capacity int) *CachedAffinity {
	if bucket <= 0 {
		bucket = time.Hour
	}
	if capacity <= 0 {
		capacity = DefaultFallbackCacheSize
	}
	return &CachedAffinity{
		Graph:         g,
		Fallback:      fallback,
		BucketSize:    bucket,
		fallbackCache: cache.New[pairKey, affEntry](capacity, hashPairKey),
		inflight:      make(map[pairKey]*inflightAffinity),
		writes:        make(map[event.DeviceID]*devWrites),
		cooccur:       NewCoOccur(CoOccurConfig{}),
	}
}

// hashPairKey mixes both device IDs and the time bucket (FNV-1a with a
// separator byte so ("ab","c") and ("a","bc") shard independently).
func hashPairKey(k pairKey) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.a); i++ {
		h ^= uint64(k.a[i])
		h *= prime64
	}
	h ^= 0xff
	h *= prime64
	for i := 0; i < len(k.b); i++ {
		h ^= uint64(k.b[i])
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(k.bucket >> (8 * i)))
		h *= prime64
	}
	return h
}

// PairAffinity implements fine.PairAffinityProvider.
//
// Accounting: a lookup served by the global graph counts as a hit (tracked
// separately and folded into Stats), a cached fallback answer counts as a
// hit, and everything that reaches the fallback — the singleflight leader
// and every waiter that shares its computation — counts as a miss. Waiters
// also share the leader's error path: if the leader's fallback panicked,
// they retry instead of consuming an uncomputed zero.
func (c *CachedAffinity) PairAffinity(a, b event.DeviceID, ref time.Time) float64 {
	if w := c.Graph.Weight(a, b, ref); w > 0 {
		c.graphHits.Add(1)
		return w
	}
	x, y := orderPair(a, b)
	key := pairKey{a: x, b: y, bucket: ref.Unix() / int64(c.BucketSize.Seconds())}
	bucketEnd := c.bucketEndNanos(key.bucket)
	for {
		if e, ok := c.fallbackCache.Get(key); ok {
			if valid, survived := c.entryScopedValid(e, key, bucketEnd); valid {
				if survived {
					c.scopedKept.Add(1)
				}
				return e.val
			}
			// A write since the entry was computed may have changed the
			// pair's history inside this bucket: drop and recompute.
			c.scopedStale.Add(1)
			c.fallbackCache.Delete(key)
		}
		// Miss (already counted by Get): join an in-flight computation
		// for this key if one exists, otherwise claim it.
		c.mu.Lock()
		if e, ok := c.fallbackCache.Peek(key); ok {
			// Filled between Get and Lock; Peek keeps the counters
			// honest (the miss above stands, no phantom second lookup).
			if valid, survived := c.entryScopedValid(e, key, bucketEnd); valid {
				c.mu.Unlock()
				if survived {
					c.scopedKept.Add(1)
				}
				return e.val
			}
			c.scopedStale.Add(1)
			c.fallbackCache.Delete(key)
		}
		if call, ok := c.inflight[key]; ok {
			// If the epoch moved since the leader captured call.epoch,
			// the in-flight computation reads pre-write history this
			// query (which began after the write) must not see.
			joinEpoch := c.fallbackCache.Epoch()
			c.mu.Unlock()
			<-call.done
			if call.ok && call.epoch == joinEpoch &&
				c.seqsStillValid(call.seqA, call.seqB, key, bucketEnd) {
				return call.val
			}
			// Leader panicked, or its computation predates a write that
			// happened before this query joined: retry, possibly
			// becoming leader (the leader deletes its inflight entry
			// before closing done, so the retry never re-joins it).
			continue
		}
		sa, sb := c.seqsOf(x, y)
		call := &inflightAffinity{done: make(chan struct{}), epoch: c.fallbackCache.Epoch(), seqA: sa, seqB: sb}
		c.inflight[key] = call
		c.mu.Unlock()
		return c.leadFallback(a, b, ref, key, call)
	}
}

// bucketEndNanos returns the exclusive end of a cache bucket in Unix nanos.
func (c *CachedAffinity) bucketEndNanos(bucket int64) int64 {
	return (bucket + 1) * int64(c.BucketSize.Seconds()) * int64(time.Second)
}

// seqsOf reads the pair devices' current write sequence numbers.
func (c *CachedAffinity) seqsOf(a, b event.DeviceID) (sa, sb uint64) {
	c.wmu.RLock()
	if dw := c.writes[a]; dw != nil {
		sa = dw.seq
	}
	if dw := c.writes[b]; dw != nil {
		sb = dw.seq
	}
	c.wmu.RUnlock()
	return sa, sb
}

// entryScopedValid reports whether a cached entry is still provably
// byte-identical to a fresh recompute: every write to either device since
// the entry's sequence numbers must carry only events after the bucket's
// end. survived is true when the entry outlived at least one write — the
// lookups the old epoch bump would have recomputed.
func (c *CachedAffinity) entryScopedValid(e affEntry, key pairKey, bucketEnd int64) (valid, survived bool) {
	c.wmu.RLock()
	defer c.wmu.RUnlock()
	va, sa := devWritesValid(c.writes[key.a], e.seqA, bucketEnd)
	if !va {
		return false, false
	}
	vb, sb := devWritesValid(c.writes[key.b], e.seqB, bucketEnd)
	if !vb {
		return false, false
	}
	return true, sa || sb
}

// seqsStillValid is entryScopedValid for an in-flight result a waiter is
// about to consume.
func (c *CachedAffinity) seqsStillValid(seqA, seqB uint64, key pairKey, bucketEnd int64) bool {
	valid, _ := c.entryScopedValid(affEntry{seqA: seqA, seqB: seqB}, key, bucketEnd)
	return valid
}

// devWritesValid checks one device's write log: the cached sequence number
// must be within ring reach of the current one, and every write in between
// must carry only events after bucketEnd. survived reports that at least
// one such write was proven harmless.
func devWritesValid(dw *devWrites, seq uint64, bucketEnd int64) (valid, survived bool) {
	if dw == nil || dw.seq == seq {
		return true, false
	}
	if seq > dw.seq || dw.seq-seq > writeRingSize {
		return false, false
	}
	for s := seq + 1; s <= dw.seq; s++ {
		rec := dw.ring[s%writeRingSize]
		if rec.seq != s || rec.minNanos <= bucketEnd {
			return false, false
		}
	}
	return true, true
}

// ObserveIngest records a successfully-ingested batch in the per-device
// write log (one sequenced record per touched device, carrying the batch's
// minimum event time for that device) and feeds the co-occurrence
// accumulator. Call it AFTER the store applied the batch.
func (c *CachedAffinity) ObserveIngest(events []event.Event) {
	if len(events) == 0 {
		return
	}
	mins := make(map[event.DeviceID]int64, 8)
	for _, e := range events {
		ts := e.Time.UnixNano()
		if cur, ok := mins[e.Device]; !ok || ts < cur {
			mins[e.Device] = ts
		}
	}
	c.wmu.Lock()
	for d, mn := range mins {
		c.recordWriteLocked(d, mn)
	}
	c.wmu.Unlock()
	if c.cooccur != nil {
		c.cooccur.Observe(events)
	}
}

// InvalidateDevice invalidates every cached affinity involving the device
// (a write record carrying MinInt64 fails every bucket check). Used for δ
// changes, which alter the device's affinities at every reference time.
func (c *CachedAffinity) InvalidateDevice(d event.DeviceID) {
	c.wmu.Lock()
	c.recordWriteLocked(d, math.MinInt64)
	c.wmu.Unlock()
}

func (c *CachedAffinity) recordWriteLocked(d event.DeviceID, minNanos int64) {
	dw := c.writes[d]
	if dw == nil {
		dw = &devWrites{}
		c.writes[d] = dw
	}
	dw.seq++
	dw.ring[dw.seq%writeRingSize] = writeRec{seq: dw.seq, minNanos: minNanos}
}

// leadFallback runs the fallback as the singleflight leader and publishes
// the result. The publish happens in a defer so a panicking fallback
// (recovered by callers like net/http) can never leave waiters blocked on
// done forever; only a successful computation is cached, and only if no
// invalidation landed while it ran (call.epoch was captured before).
func (c *CachedAffinity) leadFallback(a, b event.DeviceID, ref time.Time, key pairKey, call *inflightAffinity) (v float64) {
	computed := false
	defer func() {
		c.mu.Lock()
		if computed {
			c.fallbackCache.PutAt(key, affEntry{val: v, seqA: call.seqA, seqB: call.seqB}, call.epoch)
		}
		delete(c.inflight, key)
		c.mu.Unlock()
		call.val, call.ok = v, computed
		close(call.done)
	}()
	start := time.Now()
	v = c.Fallback.PairAffinity(a, b, ref)
	c.fallbackNanos.Add(time.Since(start).Nanoseconds())
	computed = true
	return v
}

// BatchPairAffinity answers α({d, c}) for every candidate c in one pass —
// the fine stage's batched sweep entry point (fine.BatchPairAffinityProvider).
// The graph is consulted once for all pairs under a single shared lock;
// cached fallback answers fill in next; the remaining misses are computed in
// ONE batched fallback sweep (when the fallback implements the batch
// interface) instead of a per-pair copy each, which is where a cold query
// with N neighbors used to pay 2N history copies.
//
// Accounting and invalidation semantics match PairAffinity exactly: graph
// answers count as hits, everything that reaches the fallback counts as a
// miss, concurrent misses for the same key share one computation
// (singleflight), and a computation that predates an epoch bump is returned
// to its own caller but never cached.
func (c *CachedAffinity) BatchPairAffinity(d event.DeviceID, cands []event.DeviceID, ref time.Time, out []float64) []float64 {
	out = c.Graph.WeightsBatch(d, cands, ref, out)
	bucket := ref.Unix() / int64(c.BucketSize.Seconds())
	bucketEnd := c.bucketEndNanos(bucket)

	// Resolve graph hits and cached fallback answers; collect the misses.
	var missIdx []int
	var missKeys []pairKey
	for i, cand := range cands {
		if out[i] > 0 {
			c.graphHits.Add(1)
			continue
		}
		x, y := orderPair(d, cand)
		key := pairKey{a: x, b: y, bucket: bucket}
		if e, ok := c.fallbackCache.Get(key); ok {
			if valid, survived := c.entryScopedValid(e, key, bucketEnd); valid {
				if survived {
					c.scopedKept.Add(1)
				}
				out[i] = e.val
				continue
			}
			c.scopedStale.Add(1)
			c.fallbackCache.Delete(key)
		}
		missIdx = append(missIdx, i)
		missKeys = append(missKeys, key)
	}
	if len(missIdx) == 0 {
		return out
	}

	// Claim or join an in-flight computation per missing key. Keys this call
	// claims are computed below in one batched fallback sweep; keys another
	// goroutine is already computing are joined after our own sweep
	// publishes (so their waiters are never blocked on us).
	c.mu.Lock()
	var leadIdx []int // positions into missIdx/missKeys this call leads
	var leadCalls []*inflightAffinity
	// Every key this call leads completes at the same moment (one batched
	// sweep publishes them together), so they share a single done channel.
	var leadDone chan struct{}
	type joined struct {
		pos   int // index into cands/out
		call  *inflightAffinity
		epoch uint64
	}
	var joins []joined
	for mi, key := range missKeys {
		if e, ok := c.fallbackCache.Peek(key); ok {
			if valid, survived := c.entryScopedValid(e, key, bucketEnd); valid {
				if survived {
					c.scopedKept.Add(1)
				}
				out[missIdx[mi]] = e.val
				continue
			}
			c.scopedStale.Add(1)
			c.fallbackCache.Delete(key)
		}
		if call, ok := c.inflight[key]; ok {
			joins = append(joins, joined{pos: missIdx[mi], call: call, epoch: c.fallbackCache.Epoch()})
			continue
		}
		if leadDone == nil {
			leadDone = make(chan struct{})
		}
		sa, sb := c.seqsOf(key.a, key.b)
		call := &inflightAffinity{done: leadDone, epoch: c.fallbackCache.Epoch(), seqA: sa, seqB: sb}
		c.inflight[key] = call
		leadIdx = append(leadIdx, mi)
		leadCalls = append(leadCalls, call)
	}
	c.mu.Unlock()

	if len(leadIdx) > 0 {
		leadDevs := make([]event.DeviceID, len(leadIdx))
		leadKeys := make([]pairKey, len(leadIdx))
		for k, mi := range leadIdx {
			leadDevs[k] = cands[missIdx[mi]]
			leadKeys[k] = missKeys[mi]
		}
		vals := c.leadBatchFallback(d, leadDevs, ref, leadKeys, leadCalls, leadDone)
		for k, mi := range leadIdx {
			out[missIdx[mi]] = vals[k]
		}
	}
	for _, j := range joins {
		<-j.call.done
		if j.call.ok && j.call.epoch == j.epoch {
			x, y := orderPair(d, cands[j.pos])
			key := pairKey{a: x, b: y, bucket: bucket}
			if c.seqsStillValid(j.call.seqA, j.call.seqB, key, bucketEnd) {
				out[j.pos] = j.call.val
				continue
			}
		}
		// The foreign leader panicked or its computation predates a write
		// observed before this query joined: re-resolve through the full
		// single-pair path (which retries until it leads or reads a fresh
		// value).
		out[j.pos] = c.PairAffinity(d, cands[j.pos], ref)
	}
	return out
}

// leadBatchFallback computes the claimed keys' affinities in one batched
// fallback sweep and publishes them. Publication happens in a defer, so a
// panicking fallback can never leave waiters blocked; as in leadFallback,
// only successful computations are cached, and only at the epoch captured
// when the key was claimed. done is the completion channel every claimed
// key's inflight entry shares — closed exactly once, after all values are
// written.
func (c *CachedAffinity) leadBatchFallback(d event.DeviceID, devs []event.DeviceID, ref time.Time, keys []pairKey, calls []*inflightAffinity, done chan struct{}) (vals []float64) {
	computed := false
	defer func() {
		c.mu.Lock()
		for i, key := range keys {
			if computed {
				c.fallbackCache.PutAt(key, affEntry{val: vals[i], seqA: calls[i].seqA, seqB: calls[i].seqB}, calls[i].epoch)
			}
			delete(c.inflight, key)
		}
		c.mu.Unlock()
		for i, call := range calls {
			if computed {
				call.val = vals[i]
			}
			call.ok = computed
		}
		close(done)
	}()
	start := time.Now()
	if bf, ok := c.Fallback.(batchFallback); ok {
		vals = bf.BatchPairAffinity(d, devs, ref, make([]float64, 0, len(devs)))
	} else {
		vals = make([]float64, len(devs))
		for i, dev := range devs {
			vals[i] = c.Fallback.PairAffinity(d, dev, ref)
		}
	}
	c.fallbackNanos.Add(time.Since(start).Nanoseconds())
	computed = true
	return vals
}

// batchFallback mirrors fine.BatchPairAffinityProvider without importing the
// package (avoiding an import cycle, like Edge does for fine.LocalEdge).
type batchFallback interface {
	BatchPairAffinity(d event.DeviceID, cands []event.DeviceID, ref time.Time, out []float64) []float64
}

// Invalidate orphans every cached fallback affinity (O(1) epoch bump).
// Called after writes that change affinity inputs: new events or δ changes.
// The global graph is not cleared — its edges are query-derived knowledge
// the paper's caching engine intentionally accumulates.
func (c *CachedAffinity) Invalidate() { c.fallbackCache.Invalidate() }

// Stats reports the affinity tier's counters: the bounded fallback cache's
// size/capacity/evictions/invalidations, with lookups served straight from
// the global graph folded into Hits. Lookups the underlying cache served
// but scoped validation rejected are moved from Hits to Misses — they paid
// the fallback.
func (c *CachedAffinity) Stats() cache.Stats {
	st := c.fallbackCache.Stats()
	st.Hits += c.graphHits.Load() - c.scopedStale.Load()
	st.Misses += c.scopedStale.Load()
	return st
}

// MaintenanceStats are the affinity tier's incremental-maintenance counters:
// time spent in fallback recomputes (the cost scoped validation avoids),
// entries proven valid across writes vs rejected, the write-log size, and
// the co-occurrence accumulator's state.
type MaintenanceStats struct {
	// FallbackNanos is total time spent computing fallback affinities —
	// the recompute cost the write path induces on queries.
	FallbackNanos int64 `json:"fallback_nanos"`
	// ScopedKept counts cached entries that survived at least one write
	// because scoped validation proved them still exact; ScopedStale counts
	// entries a write actually invalidated.
	ScopedKept  int64 `json:"scoped_kept"`
	ScopedStale int64 `json:"scoped_stale"`
	// TrackedDevices is the number of devices with a live write log.
	TrackedDevices int64 `json:"tracked_devices"`
	// CoOccur* snapshot the ingest-time co-occurrence accumulator.
	CoOccurPairs        int64 `json:"cooccur_pairs"`
	CoOccurObservations int64 `json:"cooccur_observations"`
	CoOccurDropped      int64 `json:"cooccur_dropped"`
}

// MaintenanceStats snapshots the scoped-validation and co-occurrence
// counters.
func (c *CachedAffinity) MaintenanceStats() MaintenanceStats {
	c.wmu.RLock()
	tracked := int64(len(c.writes))
	c.wmu.RUnlock()
	ms := MaintenanceStats{
		FallbackNanos:  c.fallbackNanos.Load(),
		ScopedKept:     c.scopedKept.Load(),
		ScopedStale:    c.scopedStale.Load(),
		TrackedDevices: tracked,
	}
	if c.cooccur != nil {
		cs := c.cooccur.Stats()
		ms.CoOccurPairs = cs.Pairs
		ms.CoOccurObservations = cs.Observations
		ms.CoOccurDropped = cs.Dropped
	}
	return ms
}
