package affgraph

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// --- scoped write validation -------------------------------------------

func TestScopedValidationKeepsEntryAcrossRecentWrites(t *testing.T) {
	g := New(Options{})
	fb := &fixedFallback{value: 0.7}
	c := NewCachedAffinity(g, fb, time.Hour, 0)

	ref := t0
	if got := c.PairAffinity("a", "b", ref); got != 0.7 {
		t.Fatalf("fallback affinity = %v", got)
	}
	if fb.calls != 1 {
		t.Fatalf("fallback calls = %d, want 1", fb.calls)
	}

	// Ingest events for both devices strictly AFTER the bucket's end: the
	// cached entry provably cannot change, so it must survive.
	later := ref.Add(3 * time.Hour)
	c.ObserveIngest([]event.Event{
		{Device: "a", Time: later, AP: "ap1"},
		{Device: "b", Time: later.Add(time.Minute), AP: "ap1"},
	})
	if got := c.PairAffinity("a", "b", ref.Add(time.Minute)); got != 0.7 {
		t.Fatalf("post-write affinity = %v", got)
	}
	if fb.calls != 1 {
		t.Fatalf("fallback calls = %d after harmless write, want 1 (entry kept)", fb.calls)
	}
	ms := c.MaintenanceStats()
	if ms.ScopedKept == 0 || ms.ScopedStale != 0 {
		t.Fatalf("maintenance %+v, want kept>0 stale=0", ms)
	}
	if ms.TrackedDevices != 2 {
		t.Fatalf("tracked devices %d, want 2", ms.TrackedDevices)
	}
}

func TestScopedValidationInvalidatesOnInBucketWrite(t *testing.T) {
	g := New(Options{})
	fb := &fixedFallback{value: 0.7}
	c := NewCachedAffinity(g, fb, time.Hour, 0)

	ref := t0
	c.PairAffinity("a", "b", ref)

	// A write carrying an event at (or before) the bucket end may change
	// the pair's history inside the bucket: the entry must be recomputed.
	c.ObserveIngest([]event.Event{{Device: "a", Time: ref, AP: "ap1"}})
	if got := c.PairAffinity("a", "b", ref.Add(time.Minute)); got != 0.7 {
		t.Fatalf("post-write affinity = %v", got)
	}
	if fb.calls != 2 {
		t.Fatalf("fallback calls = %d after in-bucket write, want 2 (recomputed)", fb.calls)
	}
	if ms := c.MaintenanceStats(); ms.ScopedStale != 1 {
		t.Fatalf("maintenance %+v, want stale=1", ms)
	}
}

func TestScopedValidationIsPerDevice(t *testing.T) {
	g := New(Options{})
	fb := &fixedFallback{value: 0.5}
	c := NewCachedAffinity(g, fb, time.Hour, 0)

	ref := t0
	c.PairAffinity("a", "b", ref)
	c.PairAffinity("c", "d", ref)
	if fb.calls != 2 {
		t.Fatalf("fallback calls = %d, want 2", fb.calls)
	}

	// An in-bucket write to device a invalidates (a,b) but must NOT touch
	// (c,d) — the point of scoped validation over the old epoch bump.
	c.ObserveIngest([]event.Event{{Device: "a", Time: ref, AP: "ap1"}})
	c.PairAffinity("c", "d", ref.Add(time.Minute))
	if fb.calls != 2 {
		t.Fatalf("fallback calls = %d, want 2 (unrelated pair kept)", fb.calls)
	}
	c.PairAffinity("a", "b", ref.Add(time.Minute))
	if fb.calls != 3 {
		t.Fatalf("fallback calls = %d, want 3 (touched pair recomputed)", fb.calls)
	}
}

func TestInvalidateDeviceScopedToDevice(t *testing.T) {
	g := New(Options{})
	fb := &fixedFallback{value: 0.5}
	c := NewCachedAffinity(g, fb, time.Hour, 0)

	ref := t0
	c.PairAffinity("a", "b", ref)
	c.PairAffinity("c", "d", ref)

	// InvalidateDevice must kill every bucket of the device's pairs —
	// including entries for refs far in the future — but leave others.
	c.InvalidateDevice("a")
	c.PairAffinity("a", "b", ref.Add(time.Minute))
	if fb.calls != 3 {
		t.Fatalf("fallback calls = %d, want 3 (invalidated pair recomputed)", fb.calls)
	}
	c.PairAffinity("c", "d", ref.Add(time.Minute))
	if fb.calls != 3 {
		t.Fatalf("fallback calls = %d, want 3 (unrelated pair kept)", fb.calls)
	}
}

func TestWriteRingOverflowConservativelyStale(t *testing.T) {
	g := New(Options{})
	fb := &fixedFallback{value: 0.5}
	c := NewCachedAffinity(g, fb, time.Hour, 0)

	ref := t0
	c.PairAffinity("a", "b", ref)

	// More writes than the ring holds — all harmless (after bucket end) —
	// must still invalidate: validation can no longer prove anything.
	later := ref.Add(3 * time.Hour)
	for i := 0; i < writeRingSize+2; i++ {
		c.ObserveIngest([]event.Event{{Device: "a", Time: later.Add(time.Duration(i) * time.Minute), AP: "ap1"}})
	}
	c.PairAffinity("a", "b", ref.Add(time.Minute))
	if fb.calls != 2 {
		t.Fatalf("fallback calls = %d, want 2 (ring overflow → recompute)", fb.calls)
	}
}

func TestGlobalInvalidateStillWorks(t *testing.T) {
	g := New(Options{})
	fb := &fixedFallback{value: 0.5}
	c := NewCachedAffinity(g, fb, time.Hour, 0)

	ref := t0
	c.PairAffinity("a", "b", ref)
	c.Invalidate() // e.g. EstimateDeltas changed every δ at once
	c.PairAffinity("a", "b", ref.Add(time.Minute))
	if fb.calls != 2 {
		t.Fatalf("fallback calls = %d, want 2 after global invalidate", fb.calls)
	}
}

func TestBatchScopedValidation(t *testing.T) {
	g := New(Options{})
	fb := &fixedFallback{value: 0.5}
	c := NewCachedAffinity(g, fb, time.Hour, 0)

	ref := t0
	cands := []event.DeviceID{"b", "c", "d"}
	c.BatchPairAffinity("a", cands, ref, nil)
	calls0 := fb.calls

	// In-bucket write to c: only (a,c) recomputes on the next batch.
	c.ObserveIngest([]event.Event{{Device: "c", Time: ref, AP: "ap1"}})
	out := c.BatchPairAffinity("a", cands, ref.Add(time.Minute), nil)
	for i, v := range out {
		if v != 0.5 {
			t.Fatalf("out[%d] = %v, want 0.5", i, v)
		}
	}
	if fb.calls != calls0+1 {
		t.Fatalf("fallback calls = %d, want %d (only the touched pair)", fb.calls, calls0+1)
	}
}

func TestScopedValidationConcurrent(t *testing.T) {
	g := New(Options{})
	fb := &fixedFallback{value: 0.5}
	c := NewCachedAffinity(g, fb, time.Hour, 0)

	const workers = 8
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				d := event.DeviceID(fmt.Sprintf("dev-%d", rng.Intn(6)))
				e := event.DeviceID(fmt.Sprintf("dev-%d", rng.Intn(6)))
				switch rng.Intn(4) {
				case 0:
					c.ObserveIngest([]event.Event{{Device: d, Time: t0.Add(time.Duration(i) * time.Minute), AP: "ap1"}})
				case 1:
					c.InvalidateDevice(d)
				default:
					if d != e {
						c.PairAffinity(d, e, t0.Add(time.Duration(rng.Intn(300))*time.Minute))
					}
				}
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}

// --- co-occurrence accumulator -----------------------------------------

func TestCoOccurWindowAndWeight(t *testing.T) {
	co := NewCoOccur(CoOccurConfig{Window: 5 * time.Minute})
	co.Observe([]event.Event{
		{Device: "a", Time: t0, AP: "ap1"},
		{Device: "b", Time: t0.Add(2 * time.Minute), AP: "ap1"},  // within window → bump
		{Device: "c", Time: t0.Add(30 * time.Minute), AP: "ap1"}, // outside window
		{Device: "d", Time: t0.Add(31 * time.Minute), AP: "ap2"}, // other AP
	})
	if w, _ := co.Weight("a", "b"); w != 1 {
		t.Fatalf("weight(a,b) = %v, want 1", w)
	}
	if w, _ := co.Weight("a", "c"); w != 0 {
		t.Fatalf("weight(a,c) = %v, want 0", w)
	}
	if w, _ := co.Weight("c", "d"); w != 0 {
		t.Fatalf("weight(c,d) = %v, want 0 (different AP)", w)
	}
	st := co.Stats()
	if st.Pairs != 1 || st.Observations != 1 || st.Dropped != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCoOccurDecayIsEventTimeDriven(t *testing.T) {
	cfg := CoOccurConfig{Window: 5 * time.Minute, HalfLife: time.Hour}
	co := NewCoOccur(cfg)
	co.Observe([]event.Event{
		{Device: "a", Time: t0, AP: "ap1"},
		{Device: "b", Time: t0.Add(time.Minute), AP: "ap1"},
	})
	// One half-life later the old bump has decayed to 0.5 before the new
	// bump lands: weight ≈ 1.5.
	co.Observe([]event.Event{
		{Device: "a", Time: t0.Add(time.Hour), AP: "ap1"},
		{Device: "b", Time: t0.Add(time.Hour + time.Minute), AP: "ap1"},
	})
	w, _ := co.Weight("a", "b")
	if w < 1.49 || w > 1.51 {
		t.Fatalf("decayed weight = %v, want ≈1.5", w)
	}
}

// Oracle: replaying the same events through a fresh accumulator reproduces
// the incremental weights exactly — the same determinism contract the
// coarse sufficient statistics have.
func TestCoOccurReplayOracle(t *testing.T) {
	cfg := CoOccurConfig{Window: 10 * time.Minute, HalfLife: 6 * time.Hour}
	rng := rand.New(rand.NewSource(7))
	var all []event.Event
	cur := t0
	for i := 0; i < 500; i++ {
		cur = cur.Add(time.Duration(rng.Intn(8)) * time.Minute)
		all = append(all, event.Event{
			Device: event.DeviceID(fmt.Sprintf("dev-%d", rng.Intn(8))),
			Time:   cur,
			AP:     []space.APID{"ap1", "ap2", "ap3"}[rng.Intn(3)],
		})
	}

	incr := NewCoOccur(cfg)
	for i := 0; i < len(all); i += 17 { // uneven batches
		end := i + 17
		if end > len(all) {
			end = len(all)
		}
		incr.Observe(all[i:end])
	}
	oracle := NewCoOccur(cfg)
	oracle.Observe(all)

	if is, os := incr.Stats(), oracle.Stats(); is != os {
		t.Fatalf("stats diverge: incr %+v oracle %+v", is, os)
	}
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			a := event.DeviceID(fmt.Sprintf("dev-%d", i))
			b := event.DeviceID(fmt.Sprintf("dev-%d", j))
			wi, ti := incr.Weight(a, b)
			wo, to := oracle.Weight(a, b)
			if wi != wo || ti != to {
				t.Fatalf("pair (%s,%s): incr (%v,%d) oracle (%v,%d)", a, b, wi, ti, wo, to)
			}
		}
	}
}

func TestCoOccurBoundedPairs(t *testing.T) {
	co := NewCoOccur(CoOccurConfig{Window: time.Hour, MaxPairs: 2})
	co.Observe([]event.Event{
		{Device: "a", Time: t0, AP: "ap1"},
		{Device: "b", Time: t0.Add(time.Minute), AP: "ap1"},
		{Device: "c", Time: t0.Add(2 * time.Minute), AP: "ap1"},
		{Device: "d", Time: t0.Add(3 * time.Minute), AP: "ap1"},
	})
	st := co.Stats()
	if st.Pairs != 2 {
		t.Fatalf("pairs = %d, want 2 (bounded)", st.Pairs)
	}
	if st.Dropped == 0 {
		t.Fatalf("stats %+v, want dropped>0", st)
	}
}
