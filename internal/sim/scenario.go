package sim

import (
	"fmt"
	"time"

	"locater/internal/space"
)

// Scenario bundles a ready-to-generate configuration: a building, the
// profile mix and event templates of one of the paper's environments.
type Scenario struct {
	Name     string
	Building *space.Building
	Profiles []Profile
	Events   []EventTemplate
}

// Config materializes a sim.Config for the scenario.
func (s Scenario) Config(start time.Time, days int, seed int64) Config {
	return Config{
		Building: s.Building,
		Profiles: s.Profiles,
		Events:   s.Events,
		Start:    start,
		Days:     days,
		Seed:     seed,
	}
}

// GridBuilding constructs a building with numRooms rooms laid out linearly
// and numAPs access points, each covering a contiguous window of
// roomsPerAP rooms. Consecutive coverage windows overlap, so rooms can
// belong to multiple regions — matching the paper's description of DBH
// (64 APs, 300+ rooms, ~11 rooms covered per AP). Every publicEvery-th room
// is public (lounges, meeting rooms); the rest are private offices.
func GridBuilding(name string, numRooms, numAPs, roomsPerAP, publicEvery int) (*space.Building, error) {
	if numRooms <= 0 || numAPs <= 0 || roomsPerAP <= 0 {
		return nil, fmt.Errorf("sim: invalid grid building dims rooms=%d aps=%d perAP=%d", numRooms, numAPs, roomsPerAP)
	}
	rooms := make([]space.Room, numRooms)
	ids := make([]space.RoomID, numRooms)
	for i := 0; i < numRooms; i++ {
		id := space.RoomID(fmt.Sprintf("%s-r%03d", name, i+1))
		ids[i] = id
		kind := space.Private
		if publicEvery > 0 && i%publicEvery == 0 {
			kind = space.Public
		}
		rooms[i] = space.Room{ID: id, Kind: kind}
	}
	aps := make([]space.AccessPoint, numAPs)
	for a := 0; a < numAPs; a++ {
		// Evenly spread AP anchor positions; window of roomsPerAP rooms.
		var anchor int
		if numAPs == 1 {
			anchor = 0
		} else {
			anchor = a * (numRooms - roomsPerAP) / (numAPs - 1)
		}
		if anchor < 0 {
			anchor = 0
		}
		if anchor+roomsPerAP > numRooms {
			anchor = numRooms - roomsPerAP
		}
		cov := make([]space.RoomID, roomsPerAP)
		copy(cov, ids[anchor:anchor+roomsPerAP])
		aps[a] = space.AccessPoint{
			ID:       space.APID(fmt.Sprintf("%s-wap%02d", name, a+1)),
			Coverage: cov,
		}
	}
	return space.NewBuilding(space.Config{Name: name, Rooms: rooms, AccessPoints: aps})
}

// publicRooms returns the first n public rooms of the building.
func publicRooms(b *space.Building, n int) []space.RoomID {
	var out []space.RoomID
	for _, r := range b.Rooms() {
		if b.IsPublic(r) {
			out = append(out, r)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// DBH builds the stand-in for the paper's Donald Bren Hall dataset: a
// 300-room, 64-AP building whose population is split into the paper's four
// predictability classes ([40,55), [55,70), [70,85), [85,100) percent of
// inside time in the preferred room), tuned via the profiles' BaseStay.
// perClass is the number of people per predictability class.
func DBH(perClass int) (Scenario, error) {
	b, err := GridBuilding("dbh", 300, 64, 11, 10)
	if err != nil {
		return Scenario{}, err
	}
	if perClass <= 0 {
		perClass = 6
	}
	meeting := publicRooms(b, 6)
	baseProfile := func(name string, baseStay float64) Profile {
		return Profile{
			Name: name, Count: perClass,
			HasOffice:    true,
			OfficeShare:  2, // officemates: the co-location signal
			BaseStay:     baseStay,
			PresenceProb: 0.9,
			ArrivalMean:  9 * time.Hour, ArrivalStd: 45 * time.Minute,
			DepartureMean: 17*time.Hour + 30*time.Minute, DepartureStd: time.Hour,
			AttendProb:     0.75,
			MidDayExitProb: 0.45,
			EmitPeriod:     15 * time.Minute,
			EmitProb:       0.6,
			SilenceProb:    0.08,
			SilenceMin:     40 * time.Minute,
			SilenceMax:     150 * time.Minute,
		}
	}
	profiles := []Profile{
		// BaseStay values tuned so *measured* predictability (fraction of
		// inside time in the preferred room, which exceeds BaseStay
		// because base-room stays are longer than wander chunks) lands in
		// the four bands of Section 6.2.
		baseProfile("p40", 0.29),
		baseProfile("p55", 0.40),
		baseProfile("p70", 0.62),
		baseProfile("p85", 0.93),
	}
	// Recurring meetings create the co-location structure that group
	// affinity exploits: each meeting draws from all classes, and several
	// run every weekday so pairwise device affinities accumulate quickly.
	all := map[string]float64{"p40": 0.5, "p55": 0.5, "p70": 0.5, "p85": 0.5}
	var events []EventTemplate
	for i, room := range meeting {
		days := []time.Weekday{time.Monday + time.Weekday(i%5)}
		if i < 3 {
			days = weekdays() // the first three meetings run daily
		}
		events = append(events, EventTemplate{
			Name:     fmt.Sprintf("meeting-%d", i+1),
			Room:     room,
			Start:    time.Duration(10+i) * time.Hour,
			Duration: time.Hour,
			Days:     days,
			Profiles: all,
			Capacity: 8,
		})
	}
	return Scenario{Name: "dbh", Building: b, Profiles: profiles, Events: events}, nil
}

// Office builds the paper's office scenario: janitorial staff, visitors,
// a manager, employees, and a receptionist, in increasing predictability.
func Office(scale int) (Scenario, error) {
	if scale <= 0 {
		scale = 1
	}
	b, err := GridBuilding("office", 60, 12, 9, 8)
	if err != nil {
		return Scenario{}, err
	}
	lobby := publicRooms(b, 4)
	profiles := []Profile{
		{Name: "Janitorial", Count: 3 * scale, HasOffice: false, BaseRooms: lobby[:1], BaseStay: 0.25,
			PresenceProb: 0.9, ArrivalMean: 6 * time.Hour, ArrivalStd: 30 * time.Minute,
			DepartureMean: 14 * time.Hour, DepartureStd: time.Hour, AttendProb: 0.1,
			MidDayExitProb: 0.3, EmitPeriod: 9 * time.Minute, EmitProb: 0.7},
		{Name: "Visitors", Count: 6 * scale, HasOffice: false, BaseRooms: lobby, BaseStay: 0.3,
			PresenceProb: 0.5, ArrivalMean: 10 * time.Hour, ArrivalStd: 2 * time.Hour,
			DepartureMean: 14 * time.Hour, DepartureStd: 2 * time.Hour, AttendProb: 0.4,
			MidDayExitProb: 0.5, EmitPeriod: 10 * time.Minute, EmitProb: 0.65},
		{Name: "Manager", Count: 2 * scale, HasOffice: true, BaseStay: 0.72,
			PresenceProb: 0.95, ArrivalMean: 8*time.Hour + 30*time.Minute, ArrivalStd: 20 * time.Minute,
			DepartureMean: 18 * time.Hour, DepartureStd: 45 * time.Minute, AttendProb: 0.85,
			MidDayExitProb: 0.4, EmitPeriod: 8 * time.Minute, EmitProb: 0.75},
		{Name: "Employees", Count: 12 * scale, HasOffice: true, BaseStay: 0.85,
			PresenceProb: 0.92, ArrivalMean: 9 * time.Hour, ArrivalStd: 30 * time.Minute,
			DepartureMean: 17*time.Hour + 30*time.Minute, DepartureStd: 45 * time.Minute, AttendProb: 0.7,
			MidDayExitProb: 0.35, EmitPeriod: 8 * time.Minute, EmitProb: 0.75},
		{Name: "Receptionist", Count: 2 * scale, HasOffice: true, BaseStay: 0.9,
			PresenceProb: 0.95, ArrivalMean: 8 * time.Hour, ArrivalStd: 15 * time.Minute,
			DepartureMean: 17 * time.Hour, DepartureStd: 20 * time.Minute, AttendProb: 0.3,
			MidDayExitProb: 0.3, EmitPeriod: 7 * time.Minute, EmitProb: 0.8},
	}
	events := []EventTemplate{
		{Name: "standup", Room: lobby[1], Start: 9*time.Hour + 30*time.Minute, Duration: 30 * time.Minute,
			Days: weekdays(), Profiles: map[string]float64{"Manager": 0.9, "Employees": 0.8}, Capacity: 15 * scale},
		{Name: "all-hands", Room: lobby[2], Start: 14 * time.Hour, Duration: time.Hour,
			Days: []time.Weekday{time.Wednesday}, Profiles: map[string]float64{"Manager": 0.95, "Employees": 0.9, "Receptionist": 0.5}, Capacity: 20 * scale},
		{Name: "client-visit", Room: lobby[3], Start: 11 * time.Hour, Duration: 90 * time.Minute,
			Days: []time.Weekday{time.Tuesday, time.Thursday}, Profiles: map[string]float64{"Visitors": 0.7, "Manager": 0.6}, Capacity: 8 * scale},
	}
	return Scenario{Name: "office", Building: b, Profiles: sparsify(profiles), Events: events}, nil
}

// University builds the paper's university scenario: visitors,
// undergraduates, professors, graduate students, and staff.
func University(scale int) (Scenario, error) {
	if scale <= 0 {
		scale = 1
	}
	b, err := GridBuilding("univ", 120, 24, 10, 7)
	if err != nil {
		return Scenario{}, err
	}
	classrooms := publicRooms(b, 8)
	profiles := []Profile{
		{Name: "Visitors", Count: 5 * scale, BaseRooms: classrooms[:2], BaseStay: 0.2,
			PresenceProb: 0.4, ArrivalMean: 11 * time.Hour, ArrivalStd: 2 * time.Hour,
			DepartureMean: 14 * time.Hour, DepartureStd: 90 * time.Minute, AttendProb: 0.3,
			MidDayExitProb: 0.5, EmitPeriod: 10 * time.Minute, EmitProb: 0.6},
		{Name: "Undergraduate", Count: 14 * scale, BaseRooms: classrooms, BaseStay: 0.45,
			PresenceProb: 0.8, ArrivalMean: 10 * time.Hour, ArrivalStd: 90 * time.Minute,
			DepartureMean: 16 * time.Hour, DepartureStd: 2 * time.Hour, AttendProb: 0.85,
			MidDayExitProb: 0.5, EmitPeriod: 9 * time.Minute, EmitProb: 0.7},
		{Name: "Professor", Count: 5 * scale, HasOffice: true, BaseStay: 0.72,
			PresenceProb: 0.85, ArrivalMean: 9 * time.Hour, ArrivalStd: 45 * time.Minute,
			DepartureMean: 17 * time.Hour, DepartureStd: time.Hour, AttendProb: 0.9,
			MidDayExitProb: 0.4, EmitPeriod: 8 * time.Minute, EmitProb: 0.75},
		{Name: "Graduate", Count: 10 * scale, HasOffice: true, BaseStay: 0.8,
			PresenceProb: 0.9, ArrivalMean: 10 * time.Hour, ArrivalStd: time.Hour,
			DepartureMean: 19 * time.Hour, DepartureStd: 90 * time.Minute, AttendProb: 0.6,
			MidDayExitProb: 0.4, EmitPeriod: 8 * time.Minute, EmitProb: 0.75},
		{Name: "Staff", Count: 6 * scale, HasOffice: true, BaseStay: 0.9,
			PresenceProb: 0.95, ArrivalMean: 8*time.Hour + 30*time.Minute, ArrivalStd: 20 * time.Minute,
			DepartureMean: 17 * time.Hour, DepartureStd: 30 * time.Minute, AttendProb: 0.25,
			MidDayExitProb: 0.35, EmitPeriod: 7 * time.Minute, EmitProb: 0.8},
	}
	var events []EventTemplate
	for i := 0; i < 6; i++ {
		events = append(events, EventTemplate{
			Name:     fmt.Sprintf("class-%d", i+1),
			Room:     classrooms[i%len(classrooms)],
			Start:    time.Duration(9+i) * time.Hour,
			Duration: 80 * time.Minute,
			Days:     alternatingDays(i),
			Profiles: map[string]float64{"Undergraduate": 0.7, "Professor": 0.35, "Graduate": 0.3},
			Capacity: 25 * scale,
		})
	}
	events = append(events, EventTemplate{
		Name: "seminar", Room: classrooms[6], Start: 15 * time.Hour, Duration: time.Hour,
		Days:     []time.Weekday{time.Friday},
		Profiles: map[string]float64{"Professor": 0.8, "Graduate": 0.7, "Staff": 0.2},
		Capacity: 30 * scale,
	})
	return Scenario{Name: "university", Building: b, Profiles: sparsify(profiles), Events: events}, nil
}

// Mall builds the paper's mall scenario: random customers, regular
// customers, staff, and salesmen in restaurants and shops.
func Mall(scale int) (Scenario, error) {
	if scale <= 0 {
		scale = 1
	}
	b, err := GridBuilding("mall", 80, 16, 10, 4)
	if err != nil {
		return Scenario{}, err
	}
	shops := publicRooms(b, 10)
	profiles := []Profile{
		{Name: "RandomCustomer", Count: 20 * scale, BaseRooms: nil, BaseStay: 0,
			PresenceProb: 0.35, ArrivalMean: 12 * time.Hour, ArrivalStd: 3 * time.Hour,
			DepartureMean: 15 * time.Hour, DepartureStd: 2 * time.Hour, AttendProb: 0.5,
			MidDayExitProb: 0.2, EmitPeriod: 11 * time.Minute, EmitProb: 0.6},
		{Name: "RegularCustomer", Count: 10 * scale, BaseRooms: shops[:3], BaseStay: 0.5,
			PresenceProb: 0.6, ArrivalMean: 11 * time.Hour, ArrivalStd: 2 * time.Hour,
			DepartureMean: 14 * time.Hour, DepartureStd: 90 * time.Minute, AttendProb: 0.6,
			MidDayExitProb: 0.25, EmitPeriod: 10 * time.Minute, EmitProb: 0.65},
		{Name: "Staff", Count: 8 * scale, BaseRooms: shops[3:5], BaseStay: 0.65,
			PresenceProb: 0.9, ArrivalMean: 9 * time.Hour, ArrivalStd: 30 * time.Minute,
			DepartureMean: 18 * time.Hour, DepartureStd: time.Hour, AttendProb: 0.3,
			MidDayExitProb: 0.4, EmitPeriod: 9 * time.Minute, EmitProb: 0.7},
		{Name: "SalesmanRes", Count: 6 * scale, BaseRooms: shops[5:7], BaseStay: 0.8,
			PresenceProb: 0.92, ArrivalMean: 10 * time.Hour, ArrivalStd: 30 * time.Minute,
			DepartureMean: 20 * time.Hour, DepartureStd: time.Hour, AttendProb: 0.2,
			MidDayExitProb: 0.3, EmitPeriod: 8 * time.Minute, EmitProb: 0.75},
		{Name: "SalesmanShops", Count: 6 * scale, BaseRooms: shops[7:9], BaseStay: 0.85,
			PresenceProb: 0.92, ArrivalMean: 9*time.Hour + 30*time.Minute, ArrivalStd: 30 * time.Minute,
			DepartureMean: 19 * time.Hour, DepartureStd: time.Hour, AttendProb: 0.2,
			MidDayExitProb: 0.3, EmitPeriod: 8 * time.Minute, EmitProb: 0.75},
	}
	events := []EventTemplate{
		{Name: "lunch-rush", Room: shops[5], Start: 12 * time.Hour, Duration: 90 * time.Minute,
			Profiles: map[string]float64{"RandomCustomer": 0.5, "RegularCustomer": 0.6, "Staff": 0.3}, Capacity: 30 * scale},
		{Name: "promo", Room: shops[9], Start: 15 * time.Hour, Duration: time.Hour,
			Days:     []time.Weekday{time.Saturday, time.Sunday},
			Profiles: map[string]float64{"RandomCustomer": 0.4, "RegularCustomer": 0.5}, Capacity: 25 * scale},
	}
	return Scenario{Name: "mall", Building: b, Profiles: sparsify(profiles), Events: events}, nil
}

// Airport builds the paper's airport scenario from the Santa Ana layout
// description: restaurant staff (15), store staff (15), airline
// representatives (20), TSA staff (15), and passengers (200), attending
// security checks, dining, boarding, and shopping events. scale divides the
// passenger count for small test runs (scale=1 reproduces the paper's mix).
func Airport(scale int) (Scenario, error) {
	if scale <= 0 {
		scale = 1
	}
	b, err := GridBuilding("airport", 100, 20, 10, 3)
	if err != nil {
		return Scenario{}, err
	}
	halls := publicRooms(b, 12)
	gates, security, dining, stores := halls[0:4], halls[4:6], halls[6:9], halls[9:12]
	profiles := []Profile{
		{Name: "Passenger", Count: 200 / scale, BaseRooms: gates, BaseStay: 0.35,
			PresenceProb: 0.5, ArrivalMean: 10 * time.Hour, ArrivalStd: 4 * time.Hour,
			DepartureMean: 13 * time.Hour, DepartureStd: 3 * time.Hour, AttendProb: 0.8,
			MidDayExitProb: 0.05, EmitPeriod: 9 * time.Minute, EmitProb: 0.65},
		{Name: "TSA", Count: 15 / scaleMin(scale, 3), BaseRooms: security, BaseStay: 0.6,
			PresenceProb: 0.95, ArrivalMean: 6 * time.Hour, ArrivalStd: 30 * time.Minute,
			DepartureMean: 16 * time.Hour, DepartureStd: time.Hour, AttendProb: 0.9,
			MidDayExitProb: 0.3, EmitPeriod: 8 * time.Minute, EmitProb: 0.7},
		{Name: "AirlineRep", Count: 20 / scaleMin(scale, 4), BaseRooms: gates, BaseStay: 0.7,
			PresenceProb: 0.9, ArrivalMean: 7 * time.Hour, ArrivalStd: time.Hour,
			DepartureMean: 17 * time.Hour, DepartureStd: 90 * time.Minute, AttendProb: 0.85,
			MidDayExitProb: 0.3, EmitPeriod: 8 * time.Minute, EmitProb: 0.75},
		{Name: "StoreStaff", Count: 15 / scaleMin(scale, 3), BaseRooms: stores, BaseStay: 0.82,
			PresenceProb: 0.92, ArrivalMean: 8 * time.Hour, ArrivalStd: 30 * time.Minute,
			DepartureMean: 18 * time.Hour, DepartureStd: time.Hour, AttendProb: 0.3,
			MidDayExitProb: 0.3, EmitPeriod: 8 * time.Minute, EmitProb: 0.75},
		{Name: "ResStaff", Count: 15 / scaleMin(scale, 3), BaseRooms: dining, BaseStay: 0.85,
			PresenceProb: 0.92, ArrivalMean: 7 * time.Hour, ArrivalStd: 30 * time.Minute,
			DepartureMean: 17 * time.Hour, DepartureStd: time.Hour, AttendProb: 0.35,
			MidDayExitProb: 0.3, EmitPeriod: 8 * time.Minute, EmitProb: 0.75},
	}
	var events []EventTemplate
	for i, g := range gates {
		events = append(events, EventTemplate{
			Name: fmt.Sprintf("boarding-%d", i+1), Room: g,
			Start: time.Duration(9+2*i) * time.Hour, Duration: time.Hour,
			Profiles: map[string]float64{"Passenger": 0.6, "AirlineRep": 0.7},
			Capacity: 60,
		})
	}
	for i, s := range security {
		events = append(events, EventTemplate{
			Name: fmt.Sprintf("security-%d", i+1), Room: s,
			Start: time.Duration(8+4*i) * time.Hour, Duration: 2 * time.Hour,
			Profiles: map[string]float64{"Passenger": 0.7, "TSA": 0.9},
			Capacity: 80,
		})
	}
	events = append(events,
		EventTemplate{Name: "dining", Room: dining[0], Start: 12 * time.Hour, Duration: 90 * time.Minute,
			Profiles: map[string]float64{"Passenger": 0.5, "ResStaff": 0.6}, Capacity: 50},
		EventTemplate{Name: "shopping", Room: stores[0], Start: 14 * time.Hour, Duration: time.Hour,
			Profiles: map[string]float64{"Passenger": 0.4, "StoreStaff": 0.6}, Capacity: 40},
	)
	return Scenario{Name: "airport", Building: b, Profiles: sparsify(profiles), Events: events}, nil
}

// sparsify applies realistic log sparsity to scenario profiles that do not
// set their own emission knobs: slower emission and occasional OS silence,
// so connectivity logs contain inside gaps for the coarse stage to repair.
func sparsify(profiles []Profile) []Profile {
	for i := range profiles {
		if profiles[i].SilenceProb == 0 {
			profiles[i].SilenceProb = 0.06
			profiles[i].SilenceMin = 40 * time.Minute
			profiles[i].SilenceMax = 130 * time.Minute
		}
		profiles[i].EmitPeriod = profiles[i].EmitPeriod * 3 / 2
	}
	return profiles
}

func weekdays() []time.Weekday {
	return []time.Weekday{time.Monday, time.Tuesday, time.Wednesday, time.Thursday, time.Friday}
}

func alternatingDays(i int) []time.Weekday {
	if i%2 == 0 {
		return []time.Weekday{time.Monday, time.Wednesday, time.Friday}
	}
	return []time.Weekday{time.Tuesday, time.Thursday}
}

// scaleMin caps the divisor so small staff profiles never hit zero count.
func scaleMin(scale, max int) int {
	if scale > max {
		return max
	}
	if scale < 1 {
		return 1
	}
	return scale
}
