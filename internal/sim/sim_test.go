package sim

import (
	"testing"
	"time"

	"locater/internal/event"
)

var simStart = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC) // Monday

// smallScenario builds a compact deterministic scenario for tests.
func smallScenario(t *testing.T) Scenario {
	t.Helper()
	b, err := GridBuilding("t", 24, 4, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	pub := publicRooms(b, 2)
	return Scenario{
		Name:     "small",
		Building: b,
		Profiles: []Profile{{
			Name: "staff", Count: 6, HasOffice: true, BaseStay: 0.7,
			PresenceProb: 0.9,
			ArrivalMean:  9 * time.Hour, ArrivalStd: 30 * time.Minute,
			DepartureMean: 17 * time.Hour, DepartureStd: 30 * time.Minute,
			AttendProb: 0.8, MidDayExitProb: 0.4,
			EmitPeriod: 10 * time.Minute, EmitProb: 0.7,
			SilenceProb: 0.05,
		}},
		Events: []EventTemplate{{
			Name: "sync", Room: pub[0],
			Start: 11 * time.Hour, Duration: time.Hour,
			Days:     []time.Weekday{time.Tuesday},
			Profiles: map[string]float64{"staff": 0.9},
			Capacity: 4,
		}},
	}
}

func generateSmall(t *testing.T, days int, seed int64) *Dataset {
	t.Helper()
	sc := smallScenario(t)
	ds, err := Generate(sc.Config(simStart, days, seed))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateValidation(t *testing.T) {
	sc := smallScenario(t)
	if _, err := Generate(Config{Building: nil, Profiles: sc.Profiles, Days: 1}); err == nil {
		t.Error("nil building should fail")
	}
	if _, err := Generate(Config{Building: sc.Building, Profiles: sc.Profiles, Days: 0}); err == nil {
		t.Error("zero days should fail")
	}
	if _, err := Generate(Config{Building: sc.Building, Days: 1}); err == nil {
		t.Error("no profiles should fail")
	}
	bad := sc
	bad.Events = []EventTemplate{{Name: "x", Room: "nope"}}
	if _, err := Generate(Config{Building: bad.Building, Profiles: bad.Profiles, Events: bad.Events, Days: 1}); err == nil {
		t.Error("unknown event room should fail")
	}
	badProf := sc
	badProf.Profiles = []Profile{{Name: "p", Count: 0}}
	if _, err := Generate(Config{Building: badProf.Building, Profiles: badProf.Profiles, Days: 1}); err == nil {
		t.Error("zero-count profile should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := generateSmall(t, 3, 42)
	b := generateSmall(t, 3, 42)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.Device != eb.Device || !ea.Time.Equal(eb.Time) || ea.AP != eb.AP {
			t.Fatalf("event %d differs: %v vs %v", i, ea, eb)
		}
	}
	c := generateSmall(t, 3, 43)
	if len(a.Events) == len(c.Events) {
		same := true
		for i := range a.Events {
			if !a.Events[i].Time.Equal(c.Events[i].Time) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestEventsSortedAndIDed(t *testing.T) {
	ds := generateSmall(t, 3, 1)
	if len(ds.Events) == 0 {
		t.Fatal("no events generated")
	}
	for i := 1; i < len(ds.Events); i++ {
		if ds.Events[i].Time.Before(ds.Events[i-1].Time) {
			t.Fatal("events not sorted")
		}
	}
	for i, e := range ds.Events {
		if e.ID != int64(i+1) {
			t.Fatalf("event %d has ID %d", i, e.ID)
		}
		if e.Device == "" || e.AP == "" || e.Time.IsZero() {
			t.Fatalf("malformed event %v", e)
		}
	}
}

// TestTruthConsistency: every connectivity event must occur while its device
// is inside, in a room covered by the event's AP region set... the emission
// model only uses covering APs, so the event AP must cover the truth room.
func TestTruthConsistency(t *testing.T) {
	ds := generateSmall(t, 3, 7)
	b := ds.Building
	for _, e := range ds.Events {
		seg, ok := ds.Truth.At(e.Device, e.Time)
		if !ok {
			t.Fatalf("no ground truth for %s at %v", e.Device, e.Time)
		}
		if seg.Outside {
			t.Fatalf("event %v emitted while outside", e)
		}
		covered := false
		for _, r := range b.Coverage(e.AP) {
			if r == seg.Room {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("event AP %s does not cover truth room %s", e.AP, seg.Room)
		}
	}
}

// TestTruthSegmentsDisjoint: a person is in exactly one place at a time.
func TestTruthSegmentsDisjoint(t *testing.T) {
	ds := generateSmall(t, 3, 9)
	for _, d := range ds.Truth.Devices() {
		segs := ds.Truth.Segments(d)
		for i := 1; i < len(segs); i++ {
			if segs[i].Start.Before(segs[i-1].End) {
				t.Fatalf("device %s has overlapping segments: %v then %v", d, segs[i-1], segs[i])
			}
		}
		for _, s := range segs {
			if !s.Start.Before(s.End) {
				t.Fatalf("degenerate segment %v", s)
			}
			if !s.Outside && s.Room == "" {
				t.Fatalf("inside segment with no room: %v", s)
			}
		}
	}
}

func TestTruthAt(t *testing.T) {
	ds := generateSmall(t, 2, 11)
	d := ds.People[0].Device
	// Midnight: outside (overnight, between segments or before first).
	seg, ok := ds.Truth.At(d, simStart.Add(2*time.Hour))
	if !ok || !seg.Outside {
		t.Errorf("2am should be outside: %+v %v", seg, ok)
	}
	// Unknown device.
	if _, ok := ds.Truth.At("ghost", simStart); ok {
		t.Error("unknown device should not be known to the oracle")
	}
}

func TestCapacityRespected(t *testing.T) {
	sc := smallScenario(t)
	// One Tuesday with capacity 4 of 6 possible attendees.
	ds, err := Generate(sc.Config(simStart, 7, 3))
	if err != nil {
		t.Fatal(err)
	}
	tuesday := simStart.AddDate(0, 0, 1)
	eventRoom := sc.Events[0].Room
	middle := tuesday.Add(11*time.Hour + 30*time.Minute)
	count := 0
	for _, d := range ds.Truth.Devices() {
		if seg, ok := ds.Truth.At(d, middle); ok && !seg.Outside && seg.Room == eventRoom {
			count++
		}
	}
	if count > sc.Events[0].Capacity {
		t.Errorf("%d attendees exceed capacity %d", count, sc.Events[0].Capacity)
	}
}

func TestPredictabilityMeasured(t *testing.T) {
	ds := generateSmall(t, 5, 13)
	for _, p := range ds.People {
		frac, ok := ds.Predictability[p.Device]
		if !ok {
			t.Fatalf("no predictability for %s", p.Device)
		}
		if frac < 0 || frac > 1 {
			t.Fatalf("predictability %v out of range", frac)
		}
		// HasOffice profile: base room assigned and registered as metadata.
		if p.BaseRoom == "" {
			t.Fatalf("person %v has no base room", p)
		}
		prefs := ds.Building.PreferredRooms(string(p.Device))
		if len(prefs) != 1 || prefs[0] != p.BaseRoom {
			t.Fatalf("preferred rooms %v, want [%s]", prefs, p.BaseRoom)
		}
	}
}

func TestOccupancyOracle(t *testing.T) {
	ds := generateSmall(t, 2, 17)
	noon := simStart.Add(12 * time.Hour)
	occ := ds.Truth.OccupancyAt(noon)
	total := 0
	for room, n := range occ {
		if n <= 0 {
			t.Errorf("room %s has non-positive occupancy %d", room, n)
		}
		total += n
	}
	if total == 0 {
		t.Error("nobody inside at noon on a weekday — implausible for 6 staff")
	}
}

func TestInsideWindows(t *testing.T) {
	ds := generateSmall(t, 2, 19)
	d := ds.People[0].Device
	wins := ds.Truth.InsideWindows(d, simStart, simStart.AddDate(0, 0, 2))
	if len(wins) == 0 {
		t.Fatal("no inside windows for a present staff member")
	}
	for _, w := range wins {
		if w.Outside {
			t.Fatal("InsideWindows returned an outside segment")
		}
	}
}

func TestScenarioBuilders(t *testing.T) {
	builders := map[string]func(int) (Scenario, error){
		"office":     Office,
		"university": University,
		"mall":       Mall,
		"airport":    Airport,
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			sc, err := build(4)
			if err != nil {
				t.Fatal(err)
			}
			if sc.Building == nil || len(sc.Profiles) == 0 {
				t.Fatal("incomplete scenario")
			}
			for _, p := range sc.Profiles {
				if p.Count <= 0 {
					t.Errorf("profile %s has count %d", p.Name, p.Count)
				}
			}
			ds, err := Generate(sc.Config(simStart, 2, 5))
			if err != nil {
				t.Fatal(err)
			}
			if len(ds.Events) == 0 {
				t.Error("scenario generated no connectivity")
			}
		})
	}
}

func TestDBHScenario(t *testing.T) {
	sc, err := DBH(2)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Building.NumRooms() != 300 || sc.Building.NumAccessPoints() != 64 {
		t.Errorf("DBH dims = %d rooms, %d APs", sc.Building.NumRooms(), sc.Building.NumAccessPoints())
	}
	if len(sc.Profiles) != 4 {
		t.Errorf("DBH profiles = %d, want 4 predictability classes", len(sc.Profiles))
	}
	ds, err := Generate(sc.Config(simStart, 3, 21))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.People) != 8 {
		t.Errorf("population = %d, want 8", len(ds.People))
	}
}

func TestGridBuildingCoverage(t *testing.T) {
	b, err := GridBuilding("g", 30, 5, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Every AP covers exactly 8 rooms.
	for _, ap := range b.AccessPoints() {
		if got := len(b.Coverage(ap)); got != 8 {
			t.Errorf("AP %s covers %d rooms, want 8", ap, got)
		}
	}
	// Every room is covered by at least one AP... the grid overlaps by
	// construction: check room 1 and the last room.
	rooms := b.Rooms()
	if len(b.RegionsOfRoom(rooms[0])) == 0 {
		t.Error("first room uncovered")
	}
	if len(b.RegionsOfRoom(rooms[len(rooms)-1])) == 0 {
		t.Error("last room uncovered")
	}
	if _, err := GridBuilding("g", 0, 5, 8, 10); err == nil {
		t.Error("invalid dims should fail")
	}
}

func TestDeviceIDsUnique(t *testing.T) {
	ds := generateSmall(t, 1, 23)
	seen := map[event.DeviceID]bool{}
	for _, p := range ds.People {
		if seen[p.Device] {
			t.Fatalf("duplicate device ID %s", p.Device)
		}
		seen[p.Device] = true
	}
}

func TestGapStructureExists(t *testing.T) {
	// The emission model must produce gaps (sporadic logs), otherwise the
	// coarse stage has nothing to repair.
	ds := generateSmall(t, 3, 29)
	d := ds.People[0].Device
	var devEvents []event.Event
	for _, e := range ds.Events {
		if e.Device == d {
			devEvents = append(devEvents, e)
		}
	}
	tl, err := event.NewTimeline(d, 10*time.Minute, devEvents)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Gaps()) == 0 {
		t.Error("no gaps in simulated log — sporadicity model broken")
	}
}
