package sim

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func workloadDataset(t *testing.T) *Dataset {
	t.Helper()
	sc, err := Office(1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	ds, err := Generate(sc.Config(start, 3, 11))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestWorkloadDeterministic: the same (dataset, spec) pair must regenerate a
// byte-identical canonical schedule — the property the loadgen golden-file
// test and CI's fixed-seed SLO smoke both stand on.
func TestWorkloadDeterministic(t *testing.T) {
	ds := workloadDataset(t)
	spec := WorkloadSpec{
		Ops: 400, Seed: 42, ReadFraction: 0.8, BatchFraction: 0.2,
		Arrival: ArrivalBursty, Diurnal: true, DirtyFraction: 0.3,
	}
	render := func() []byte {
		w, err := BuildWorkload(ds, spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := w.WriteCanonical(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed+spec produced different schedules")
	}
	// A different seed must actually change the schedule.
	spec.Seed = 43
	if c := render(); bytes.Equal(a, c) {
		t.Fatal("different seed produced identical schedule")
	}
}

// TestWorkloadMixAndSplit checks the op mix tracks the spec fractions, the
// history/replay split lands at SimStart, and the unit-rate normalization
// holds (mean inter-arrival = 1s).
func TestWorkloadMixAndSplit(t *testing.T) {
	ds := workloadDataset(t)
	spec := WorkloadSpec{Ops: 2000, Seed: 7, ReadFraction: 0.7, BatchFraction: 0.25}
	w, err := BuildWorkload(ds, spec)
	if err != nil {
		t.Fatal(err)
	}

	wantSplit := ds.Config.Start.AddDate(0, 0, ds.Config.Days-1)
	if !w.SimStart.Equal(wantSplit) {
		t.Errorf("SimStart = %v, want last day %v", w.SimStart, wantSplit)
	}
	for _, e := range w.History {
		if !e.Time.Before(w.SimStart) {
			t.Fatalf("history event at %v is not before SimStart %v", e.Time, w.SimStart)
		}
	}
	if len(w.History) == 0 || len(w.History) == len(ds.Events) {
		t.Fatalf("degenerate split: %d of %d events in history", len(w.History), len(ds.Events))
	}

	var locate, batch, ingest int
	for i, op := range w.Ops {
		switch op.Kind {
		case OpLocate:
			locate++
			if op.Query.Device == "" || !op.Query.Time.Before(w.SimStart) {
				t.Fatalf("op %d: locate query outside history span: %+v", i, op.Query)
			}
		case OpBatch:
			batch++
			if len(op.Batch) != 16 {
				t.Fatalf("op %d: batch size %d, want default 16", i, len(op.Batch))
			}
		case OpIngest:
			ingest++
			if len(op.Events) == 0 || len(op.Events) > 64 {
				t.Fatalf("op %d: ingest chunk of %d events", i, len(op.Events))
			}
			for _, e := range op.Events {
				if e.ID != 0 {
					t.Fatalf("op %d: ingest event carries pre-assigned ID %d", i, e.ID)
				}
				if e.Time.Before(w.SimStart) {
					t.Fatalf("op %d: ingest event at %v predates SimStart", i, e.Time)
				}
			}
		}
		if i > 0 && op.At < w.Ops[i-1].At {
			t.Fatalf("op %d: schedule not sorted (%v after %v)", i, op.At, w.Ops[i-1].At)
		}
	}

	reads := locate + batch
	if f := float64(reads) / float64(len(w.Ops)); math.Abs(f-0.7) > 0.05 {
		t.Errorf("read fraction = %.3f, want ≈ 0.7", f)
	}
	if f := float64(batch) / float64(reads); math.Abs(f-0.25) > 0.05 {
		t.Errorf("batch fraction of reads = %.3f, want ≈ 0.25", f)
	}
	if ingest == 0 {
		t.Error("no ingest ops with ReadFraction 0.7")
	}

	// Unit-rate: the last offset equals Ops seconds after normalization.
	last := w.Ops[len(w.Ops)-1].At
	if math.Abs(last.Seconds()-float64(spec.Ops)) > 1 {
		t.Errorf("normalized span = %v, want ≈ %ds", last, spec.Ops)
	}
}

// TestWorkloadDirtyInjection: with DirtyFraction 1 every (multi-event)
// ingest chunk carries dirt, and both patterns appear — oscillating
// re-associations (duplicate-timestamped bursts alternating APs) or
// time-reversed chunks.
func TestWorkloadDirtyInjection(t *testing.T) {
	ds := workloadDataset(t)
	w, err := BuildWorkload(ds, WorkloadSpec{
		Ops: 600, Seed: 3, ReadFraction: 0.2, DirtyFraction: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var oscillating, reversed int
	for _, op := range w.Ops {
		if op.Kind != OpIngest || len(op.Events) < 2 {
			continue
		}
		if !op.Dirty {
			t.Fatal("DirtyFraction=1 left a clean multi-event chunk")
		}
		if op.Events[0].Time.After(op.Events[len(op.Events)-1].Time) {
			reversed++
		} else if op.Events[1].Time.Sub(op.Events[0].Time) <= 4*time.Second &&
			op.Events[1].Device == op.Events[0].Device {
			oscillating++
		}
	}
	if oscillating == 0 || reversed == 0 {
		t.Errorf("dirty patterns unbalanced: %d oscillating, %d reversed", oscillating, reversed)
	}
}

// TestWorkloadArrivalProcesses: every arrival process normalizes to unit
// rate; bursty produces a heavier tail (more sub-100ms gaps) than uniform.
func TestWorkloadArrivalProcesses(t *testing.T) {
	ds := workloadDataset(t)
	gaps := func(arrival string) (short int, n int) {
		w, err := BuildWorkload(ds, WorkloadSpec{Ops: 1500, Seed: 5, Arrival: arrival, ReadFraction: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(w.Ops); i++ {
			if w.Ops[i].At-w.Ops[i-1].At < 100*time.Millisecond {
				short++
			}
		}
		return short, len(w.Ops)
	}
	uShort, _ := gaps(ArrivalUniform)
	bShort, _ := gaps(ArrivalBursty)
	pShort, _ := gaps(ArrivalPoisson)
	if uShort != 0 {
		t.Errorf("uniform arrivals produced %d sub-100ms gaps", uShort)
	}
	if bShort <= pShort/2 {
		t.Errorf("bursty arrivals not bursty: %d short gaps vs poisson %d", bShort, pShort)
	}

	if _, err := BuildWorkload(ds, WorkloadSpec{Arrival: "warp"}); err == nil {
		t.Error("unknown arrival process accepted")
	}
}
