package sim

import (
	"sort"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// Truth is the ground-truth oracle: per-device ordered location segments.
type Truth struct {
	segments map[event.DeviceID][]TruthSegment
}

func newTruth() *Truth {
	return &Truth{segments: make(map[event.DeviceID][]TruthSegment)}
}

func (t *Truth) add(d event.DeviceID, s TruthSegment) {
	t.segments[d] = append(t.segments[d], s)
}

// finalize sorts each device's segments (generation emits them day by day
// in order, but sorting keeps the invariant explicit).
func (t *Truth) finalize() {
	for d := range t.segments {
		segs := t.segments[d]
		sort.Slice(segs, func(i, j int) bool { return segs[i].Start.Before(segs[j].Start) })
	}
}

// At returns the device's ground-truth segment at time tq. When tq falls in
// no segment (e.g. overnight, before arrival), the device is outside and
// ok is still true with an Outside segment; ok is false only for devices
// the oracle has never seen.
func (t *Truth) At(d event.DeviceID, tq time.Time) (TruthSegment, bool) {
	segs, known := t.segments[d]
	if !known {
		return TruthSegment{}, false
	}
	idx := sort.Search(len(segs), func(i int) bool { return segs[i].End.After(tq) })
	if idx < len(segs) && !segs[idx].Start.After(tq) {
		return segs[idx], true
	}
	return TruthSegment{Start: tq, End: tq, Outside: true}, true
}

// Devices lists the devices known to the oracle, sorted.
func (t *Truth) Devices() []event.DeviceID {
	out := make([]event.DeviceID, 0, len(t.segments))
	for d := range t.segments {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Segments returns a copy of the device's ordered segments.
func (t *Truth) Segments(d event.DeviceID) []TruthSegment {
	segs := t.segments[d]
	out := make([]TruthSegment, len(segs))
	copy(out, segs)
	return out
}

// InsideWindows returns the device's inside segments overlapping [from, to].
func (t *Truth) InsideWindows(d event.DeviceID, from, to time.Time) []TruthSegment {
	var out []TruthSegment
	for _, s := range t.segments[d] {
		if s.Outside {
			continue
		}
		if s.End.After(from) && s.Start.Before(to) {
			out = append(out, s)
		}
	}
	return out
}

// predictability measures the fraction of inside time spent in the base
// room. Returns 0 when base is empty or the device was never inside.
func (t *Truth) predictability(d event.DeviceID, base space.RoomID) float64 {
	if base == "" {
		return 0
	}
	var inside, inBase time.Duration
	for _, s := range t.segments[d] {
		if s.Outside {
			continue
		}
		dur := s.End.Sub(s.Start)
		inside += dur
		if s.Room == base {
			inBase += dur
		}
	}
	if inside == 0 {
		return 0
	}
	return float64(inBase) / float64(inside)
}

// OccupancyAt counts, for every room, the devices inside it at time tq.
// Example applications (HVAC/occupancy analytics) build on this oracle view
// to validate LOCATER-derived occupancy.
func (t *Truth) OccupancyAt(tq time.Time) map[space.RoomID]int {
	out := make(map[space.RoomID]int)
	for d := range t.segments {
		if s, ok := t.At(d, tq); ok && !s.Outside {
			out[s.Room]++
		}
	}
	return out
}
