// Package sim is LOCATER's workload substrate: a trajectory and WiFi
// connectivity simulator equivalent in role to the SmartBench simulator the
// paper uses for its synthetic scenarios (Section 6.3) and, with the DBH
// scenario, a stand-in for the proprietary DBH-WIFI campus dataset
// (Section 6.1).
//
// The simulator generates realistic movement of people through a building:
// people belong to profiles (e.g. TSA staff, passengers), attend
// spatio-temporal events subject to capacity constraints (e.g. a class, a
// security check, a boarding), spend the rest of their time in a preferred
// "base" room or wandering, and occasionally leave the building. Devices
// carried by people emit sporadic WiFi association events while inside —
// connectivity is probabilistic and periodic-with-jitter, so logs contain
// exactly the gap structure LOCATER must repair. The simulator also emits
// exact ground-truth (device, room, interval) segments used as the
// evaluation oracle.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// Profile describes a class of people with a shared behavioural pattern.
type Profile struct {
	// Name labels the profile (e.g. "Passenger", "TSA").
	Name string
	// Count is the number of people instantiated from the profile.
	Count int

	// HasOffice assigns each person a private room as their preferred
	// room. When false, BaseRooms supplies a shared pool.
	HasOffice bool
	// OfficeShare is how many people share one office when HasOffice is
	// set (officemates create the co-location structure group affinity
	// exploits). Values < 1 mean private offices.
	OfficeShare int
	// BaseRooms is a pool of rooms used as base when HasOffice is false
	// (e.g. a staff room). Empty means no base: free time is all wander.
	BaseRooms []space.RoomID

	// BaseStay is the probability that a free-time chunk is spent in the
	// base room rather than wandering. It directly controls the person's
	// predictability (fraction of inside time in the preferred room).
	BaseStay float64

	// PresenceProb is the probability the person shows up on a given day.
	PresenceProb float64
	// ArrivalMean/ArrivalStd and DepartureMean/DepartureStd describe the
	// daily arrival/departure times as offsets from midnight.
	ArrivalMean, ArrivalStd     time.Duration
	DepartureMean, DepartureStd time.Duration

	// AttendProb is the default probability of attending an eligible
	// event instance (templates may override per profile).
	AttendProb float64

	// MidDayExitProb is the chance of one mid-day excursion outside
	// (e.g. lunch out) lasting 30–90 minutes.
	MidDayExitProb float64

	// EmitPeriod is the mean interval between connectivity emissions
	// while inside; EmitProb gates each emission. Together they shape the
	// sporadicity (and hence the gaps) of the device's log.
	EmitPeriod time.Duration
	EmitProb   float64

	// SilenceProb is the per-emission-opportunity probability that the
	// device goes silent (OS stops probing: screen off, power save) for a
	// period drawn uniformly from [SilenceMin, SilenceMax] even though the
	// person remains inside. Silence creates the long inside gaps that the
	// coarse classifier must distinguish from genuinely-outside gaps.
	SilenceProb float64
	SilenceMin  time.Duration
	SilenceMax  time.Duration
}

// EventTemplate is a recurring spatio-temporal event: it occupies a room at
// a time of day on given weekdays, accepts people from given profiles with
// given probabilities, and enforces a capacity (e.g. max class enrollment).
type EventTemplate struct {
	Name     string
	Room     space.RoomID
	Start    time.Duration // offset from midnight
	Duration time.Duration
	// Days lists the weekdays on which the event occurs; empty = daily.
	Days []time.Weekday
	// Profiles maps profile name → attendance probability. Profiles not
	// listed do not attend. A probability of -1 uses the profile default.
	Profiles map[string]float64
	// Capacity caps attendance per instance; 0 = unlimited.
	Capacity int
}

func (t EventTemplate) occursOn(d time.Weekday) bool {
	if len(t.Days) == 0 {
		return true
	}
	for _, day := range t.Days {
		if day == d {
			return true
		}
	}
	return false
}

// Config drives dataset generation.
type Config struct {
	Building *space.Building
	Profiles []Profile
	Events   []EventTemplate
	// Start is the first day (midnight) of the simulation.
	Start time.Time
	// Days is the number of simulated days.
	Days int
	// Seed makes generation deterministic.
	Seed int64
}

// Person is one simulated individual and their device.
type Person struct {
	Device    event.DeviceID
	Profile   string
	BaseRoom  space.RoomID // preferred room ("" when none)
	PersonIdx int
}

// TruthSegment is one ground-truth interval: the device was in Room (or
// outside) during [Start, End).
type TruthSegment struct {
	Start, End time.Time
	Room       space.RoomID
	Outside    bool
}

// Dataset is the generation output: the connectivity log, the ground truth,
// and the population.
type Dataset struct {
	Building *space.Building
	Events   []event.Event
	Truth    *Truth
	People   []Person
	// Predictability[device] is the measured fraction of inside time the
	// device spent in its preferred room (0 when it has none).
	Predictability map[event.DeviceID]float64
	Config         Config
}

// Generate runs the simulation.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Building == nil {
		return nil, fmt.Errorf("sim: nil building")
	}
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("sim: non-positive day count %d", cfg.Days)
	}
	if len(cfg.Profiles) == 0 {
		return nil, fmt.Errorf("sim: no profiles")
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC) // a Monday
	}
	for _, t := range cfg.Events {
		if _, ok := cfg.Building.Room(t.Room); !ok {
			return nil, fmt.Errorf("sim: event %q in unknown room %q", t.Name, t.Room)
		}
	}

	master := rand.New(rand.NewSource(cfg.Seed))
	people, err := buildPopulation(cfg, master)
	if err != nil {
		return nil, err
	}

	g := &generator{
		cfg:    cfg,
		people: people,
		rngs:   make([]*rand.Rand, len(people)),
		truth:  newTruth(),
	}
	for i := range people {
		g.rngs[i] = rand.New(rand.NewSource(cfg.Seed + 7919*int64(i+1)))
	}

	for day := 0; day < cfg.Days; day++ {
		g.simulateDay(day, master)
	}

	event.SortEvents(g.events)
	for i := range g.events {
		g.events[i].ID = int64(i + 1)
	}
	g.truth.finalize()

	ds := &Dataset{
		Building:       cfg.Building,
		Events:         g.events,
		Truth:          g.truth,
		People:         people,
		Predictability: make(map[event.DeviceID]float64, len(people)),
		Config:         cfg,
	}
	for _, p := range people {
		ds.Predictability[p.Device] = g.truth.predictability(p.Device, p.BaseRoom)
	}
	return ds, nil
}

// buildPopulation instantiates people, assigning offices (private rooms not
// used by event templates) round-robin for HasOffice profiles.
func buildPopulation(cfg Config, master *rand.Rand) ([]Person, error) {
	eventRooms := make(map[space.RoomID]bool)
	for _, t := range cfg.Events {
		eventRooms[t.Room] = true
	}
	var offices []space.RoomID
	for _, r := range cfg.Building.Rooms() {
		if cfg.Building.IsPrivate(r) && !eventRooms[r] {
			offices = append(offices, r)
		}
	}
	var people []Person
	officeIdx := 0
	personIdx := 0
	for _, prof := range cfg.Profiles {
		if prof.Count <= 0 {
			return nil, fmt.Errorf("sim: profile %q has non-positive count", prof.Name)
		}
		for i := 0; i < prof.Count; i++ {
			p := Person{
				Device:    deviceID(personIdx),
				Profile:   prof.Name,
				PersonIdx: personIdx,
			}
			if prof.HasOffice {
				if len(offices) == 0 {
					return nil, fmt.Errorf("sim: profile %q needs offices but building has none left", prof.Name)
				}
				share := prof.OfficeShare
				if share < 1 {
					share = 1
				}
				p.BaseRoom = offices[(officeIdx/share)%len(offices)]
				officeIdx++
			} else if len(prof.BaseRooms) > 0 {
				p.BaseRoom = prof.BaseRooms[master.Intn(len(prof.BaseRooms))]
			}
			people = append(people, p)
			personIdx++
		}
	}
	// Register preferred rooms as building metadata so LOCATER and
	// Baseline2 see the same information the paper assumes.
	for _, p := range people {
		if p.BaseRoom != "" {
			if err := cfg.Building.SetPreferredRooms(string(p.Device), []space.RoomID{p.BaseRoom}); err != nil {
				return nil, err
			}
		}
	}
	return people, nil
}

func deviceID(i int) event.DeviceID {
	return event.DeviceID(fmt.Sprintf("d%02x:%02x:%02x", (i>>16)&0xff, (i>>8)&0xff, i&0xff))
}

// generator holds the evolving simulation state.
type generator struct {
	cfg    Config
	people []Person
	rngs   []*rand.Rand
	events []event.Event
	truth  *Truth
}

// attendance is one person's planned event instance for a day.
type attendance struct {
	room       space.RoomID
	start, end time.Time
}

// simulateDay plans attendance (respecting capacities) and generates each
// present person's segments and connectivity for one day.
func (g *generator) simulateDay(day int, master *rand.Rand) {
	dayStart := g.cfg.Start.AddDate(0, 0, day)
	weekday := dayStart.Weekday()

	profiles := make(map[string]*Profile, len(g.cfg.Profiles))
	for i := range g.cfg.Profiles {
		profiles[g.cfg.Profiles[i].Name] = &g.cfg.Profiles[i]
	}

	// Presence and working hours per person.
	present := make([]bool, len(g.people))
	arrive := make([]time.Time, len(g.people))
	depart := make([]time.Time, len(g.people))
	for i, p := range g.people {
		prof := profiles[p.Profile]
		rng := g.rngs[i]
		if rng.Float64() >= prof.PresenceProb {
			continue
		}
		a := gaussDuration(rng, prof.ArrivalMean, prof.ArrivalStd)
		d := gaussDuration(rng, prof.DepartureMean, prof.DepartureStd)
		if d <= a+30*time.Minute {
			d = a + 30*time.Minute
		}
		if d > 23*time.Hour+30*time.Minute {
			d = 23*time.Hour + 30*time.Minute
		}
		present[i] = true
		arrive[i] = dayStart.Add(a)
		depart[i] = dayStart.Add(d)
	}

	// Plan event attendance with capacity enforcement. People are
	// considered in a day-seeded shuffled order for fairness.
	plans := make([][]attendance, len(g.people))
	order := master.Perm(len(g.people))
	for _, tmpl := range g.cfg.Events {
		if !tmpl.occursOn(weekday) {
			continue
		}
		start := dayStart.Add(tmpl.Start)
		end := start.Add(tmpl.Duration)
		taken := 0
		for _, pi := range order {
			if tmpl.Capacity > 0 && taken >= tmpl.Capacity {
				break
			}
			if !present[pi] {
				continue
			}
			p := g.people[pi]
			prob, eligible := tmpl.Profiles[p.Profile]
			if !eligible {
				continue
			}
			prof := profiles[p.Profile]
			if prob < 0 {
				prob = prof.AttendProb
			}
			// The event must fit in the person's working hours.
			if start.Before(arrive[pi]) || end.After(depart[pi]) {
				continue
			}
			if g.rngs[pi].Float64() >= prob {
				continue
			}
			// Skip if overlapping an already-planned attendance.
			if overlapsAny(plans[pi], start, end) {
				continue
			}
			plans[pi] = append(plans[pi], attendance{room: tmpl.Room, start: start, end: end})
			taken++
		}
	}

	// Generate each present person's day.
	for i := range g.people {
		if !present[i] {
			continue
		}
		sort.Slice(plans[i], func(a, b int) bool { return plans[i][a].start.Before(plans[i][b].start) })
		g.simulatePersonDay(i, profiles[g.people[i].Profile], arrive[i], depart[i], plans[i])
	}
}

func overlapsAny(plan []attendance, start, end time.Time) bool {
	for _, a := range plan {
		if start.Before(a.end) && a.start.Before(end) {
			return true
		}
	}
	return false
}

// simulatePersonDay fills the person's day with segments (events, base-room
// stays, wandering, an optional outside excursion) and emits connectivity.
func (g *generator) simulatePersonDay(pi int, prof *Profile, arrive, depart time.Time, plan []attendance) {
	p := g.people[pi]
	rng := g.rngs[pi]

	var segments []TruthSegment

	// Optional mid-day excursion: carve an outside window.
	var exitStart, exitEnd time.Time
	if prof.MidDayExitProb > 0 && rng.Float64() < prof.MidDayExitProb {
		dayLen := depart.Sub(arrive)
		if dayLen > 3*time.Hour {
			off := dayLen/3 + time.Duration(rng.Int63n(int64(dayLen/3)))
			exitStart = arrive.Add(off)
			exitEnd = exitStart.Add(30*time.Minute + time.Duration(rng.Int63n(int64(time.Hour))))
			if exitEnd.After(depart) {
				exitEnd = depart
			}
		}
	}

	cursor := arrive
	planIdx := 0
	for cursor.Before(depart) {
		// Next fixed boundary: event start or departure.
		var nextEvent *attendance
		if planIdx < len(plan) {
			nextEvent = &plan[planIdx]
		}
		if nextEvent != nil && !cursor.Before(nextEvent.start) {
			// Attend the event.
			end := minTime(nextEvent.end, depart)
			segments = appendSegment(segments, TruthSegment{Start: cursor, End: end, Room: nextEvent.room})
			cursor = end
			planIdx++
			continue
		}
		blockEnd := depart
		if nextEvent != nil && nextEvent.start.Before(blockEnd) {
			blockEnd = nextEvent.start
		}
		// Excursion outside?
		if !exitStart.IsZero() && !cursor.After(exitStart) && exitStart.Before(blockEnd) {
			if cursor.Before(exitStart) {
				segments = g.fillFreeBlock(segments, p, prof, rng, cursor, exitStart)
			}
			end := minTime(exitEnd, blockEnd)
			segments = appendSegment(segments, TruthSegment{Start: exitStart, End: end, Outside: true})
			cursor = end
			exitStart = time.Time{} // consumed
			continue
		}
		segments = g.fillFreeBlock(segments, p, prof, rng, cursor, blockEnd)
		cursor = blockEnd
	}

	var silentUntil time.Time
	for _, s := range segments {
		g.truth.add(p.Device, s)
		if !s.Outside {
			silentUntil = g.emitConnectivity(p, prof, rng, s, silentUntil)
		}
	}
}

// fillFreeBlock splits [start, end) into chunks spent in the base room
// (w.p. BaseStay) or wandering to a random room.
func (g *generator) fillFreeBlock(segments []TruthSegment, p Person, prof *Profile, rng *rand.Rand, start, end time.Time) []TruthSegment {
	cursor := start
	for cursor.Before(end) {
		remaining := end.Sub(cursor)
		var room space.RoomID
		var chunk time.Duration
		if p.BaseRoom != "" && rng.Float64() < prof.BaseStay {
			room = p.BaseRoom
			chunk = 30*time.Minute + time.Duration(rng.Int63n(int64(90*time.Minute)))
		} else {
			room = g.randomRoom(rng, p.BaseRoom)
			chunk = 10*time.Minute + time.Duration(rng.Int63n(int64(35*time.Minute)))
		}
		if chunk > remaining {
			chunk = remaining
		}
		segments = appendSegment(segments, TruthSegment{Start: cursor, End: cursor.Add(chunk), Room: room})
		cursor = cursor.Add(chunk)
	}
	return segments
}

// randomRoom picks a wander destination: public rooms with probability 0.7,
// otherwise any room other than the person's base.
func (g *generator) randomRoom(rng *rand.Rand, base space.RoomID) space.RoomID {
	rooms := g.cfg.Building.Rooms()
	if rng.Float64() < 0.7 {
		// Try a few times to hit a public room.
		for attempt := 0; attempt < 8; attempt++ {
			r := rooms[rng.Intn(len(rooms))]
			if g.cfg.Building.IsPublic(r) {
				return r
			}
		}
	}
	for attempt := 0; attempt < 8; attempt++ {
		r := rooms[rng.Intn(len(rooms))]
		if r != base {
			return r
		}
	}
	return rooms[rng.Intn(len(rooms))]
}

// appendSegment merges adjacent segments in the same place.
func appendSegment(segments []TruthSegment, s TruthSegment) []TruthSegment {
	if !s.Start.Before(s.End) {
		return segments
	}
	if n := len(segments); n > 0 {
		last := &segments[n-1]
		if last.End.Equal(s.Start) && last.Outside == s.Outside && last.Room == s.Room {
			last.End = s.End
			return segments
		}
	}
	return append(segments, s)
}

// emitConnectivity generates the device's association events for one inside
// segment: a roaming event near the segment start with high probability
// (devices re-associate when moving), then periodic-with-jitter emissions
// gated by EmitProb, interrupted by occasional silence periods (SilenceProb)
// during which the OS stops probing. The AP is the room's primary covering
// AP most of the time, with occasional spill to another covering AP.
// It returns the time until which the device remains silent, so silence can
// span segment boundaries.
func (g *generator) emitConnectivity(p Person, prof *Profile, rng *rand.Rand, s TruthSegment, silentUntil time.Time) time.Time {
	b := g.cfg.Building
	regions := b.RegionsOfRoom(s.Room)
	if len(regions) == 0 {
		return silentUntil // room out of WiFi coverage (Appendix 9.1 allows this)
	}
	period := prof.EmitPeriod
	if period <= 0 {
		period = 10 * time.Minute
	}
	silMin, silMax := prof.SilenceMin, prof.SilenceMax
	if silMin <= 0 {
		silMin = 45 * time.Minute
	}
	if silMax <= silMin {
		silMax = silMin + 90*time.Minute
	}
	chooseAP := func() space.APID {
		// Primary AP: first covering region (deterministic); spill 15%.
		idx := 0
		if len(regions) > 1 && rng.Float64() < 0.15 {
			idx = 1 + rng.Intn(len(regions)-1)
		}
		ap, _ := b.APOf(regions[idx])
		return ap
	}
	maybeSilence := func(t time.Time) time.Time {
		if prof.SilenceProb > 0 && rng.Float64() < prof.SilenceProb {
			return t.Add(silMin + time.Duration(rng.Int63n(int64(silMax-silMin))))
		}
		return silentUntil
	}
	// Roaming association shortly after entering the room.
	t := s.Start.Add(time.Duration(rng.Int63n(int64(2 * time.Minute))))
	if t.Before(s.End) && t.After(silentUntil) && rng.Float64() < 0.9 {
		g.events = append(g.events, event.Event{Device: p.Device, Time: t, AP: chooseAP()})
		silentUntil = maybeSilence(t)
	}
	for {
		step := time.Duration(rng.ExpFloat64() * float64(period))
		if step < 30*time.Second {
			step = 30 * time.Second
		}
		if step > 4*period {
			step = 4 * period
		}
		t = t.Add(step)
		if !t.Before(s.End) {
			return silentUntil
		}
		if t.Before(silentUntil) {
			continue
		}
		if rng.Float64() < prof.EmitProb {
			g.events = append(g.events, event.Event{Device: p.Device, Time: t, AP: chooseAP()})
			silentUntil = maybeSilence(t)
		}
	}
}

func gaussDuration(rng *rand.Rand, mean, std time.Duration) time.Duration {
	v := time.Duration(rng.NormFloat64()*float64(std)) + mean
	if v < 0 {
		v = 0
	}
	return v
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}
