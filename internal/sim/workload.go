package sim

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"locater/internal/event"
)

// Workload generation: turns a simulated Dataset into a deterministic,
// rate-independent request schedule for the SLO harness (cmd/locater-loadgen).
//
// The schedule is generated at UNIT RATE — arrival offsets assume a mean of
// one operation per second — and the dispatcher rescales offsets by the
// target rate at send time. One schedule therefore serves every calibrated
// rate, which keeps golden-file determinism (same seed + spec → byte-identical
// schedule) compatible with runtime rate calibration.
//
// The dataset is split at SimStart into history (pre-ingested before the run,
// so reads have substance) and a replay window (events arriving live as
// ingest operations, optionally dirtied with the oscillation and out-of-order
// patterns the cleaning literature calls out).

// OpKind labels one scheduled operation.
type OpKind uint8

const (
	OpLocate OpKind = iota
	OpBatch
	OpIngest
)

func (k OpKind) String() string {
	switch k {
	case OpLocate:
		return "locate"
	case OpBatch:
		return "batch"
	case OpIngest:
		return "ingest"
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// Arrival process names for WorkloadSpec.Arrival.
const (
	ArrivalPoisson = "poisson"
	ArrivalUniform = "uniform"
	ArrivalBursty  = "bursty"
)

// LocateQuery is one read target (a device at a time inside the history
// span, so the engine has data to answer with).
type LocateQuery struct {
	Device event.DeviceID
	Time   time.Time
}

// Op is one scheduled operation.
type Op struct {
	// At is the unit-rate arrival offset from schedule start; the
	// dispatcher divides it by the target rate.
	At   time.Duration
	Kind OpKind
	// Query is set for OpLocate; Batch for OpBatch; Events for OpIngest.
	Query LocateQuery
	Batch []LocateQuery
	// Events is the ingest chunk, IDs zeroed (the store assigns them).
	Events []event.Event
	// Dirty marks an ingest chunk that carries injected dirt: an
	// oscillating AP re-association burst or an out-of-order chunk.
	Dirty bool
}

// WorkloadSpec parameterizes schedule generation over a Dataset.
type WorkloadSpec struct {
	// Ops is the number of scheduled operations. Seed drives every random
	// choice; the same (dataset, spec) pair regenerates byte-identically.
	Ops  int
	Seed int64

	// ReadFraction is the fraction of operations that are reads (the rest
	// ingest replay-window events). BatchFraction is the fraction of reads
	// issued as LocateBatch calls of BatchSize queries.
	ReadFraction  float64
	BatchFraction float64
	BatchSize     int

	// IngestChunk caps events per ingest operation (default 64).
	IngestChunk int

	// Arrival selects the arrival process: ArrivalPoisson (default),
	// ArrivalUniform, or ArrivalBursty. Bursty is Markov-modulated
	// Poisson: a fraction BurstFraction of arrivals come from a state
	// running BurstFactor× faster than the mean, the rest from a
	// compensating slow state, preserving unit mean rate overall.
	Arrival       string
	BurstFactor   float64
	BurstFraction float64

	// Diurnal modulates the arrival rate with the dataset's own hourly
	// event histogram (normalized to mean 1, clamped to [0.2, 3]), sweeping
	// one full day across the schedule — quiet nights, busy middays.
	Diurnal bool

	// DirtyFraction is the probability an ingest chunk carries injected
	// dirt (oscillation burst or reversed order).
	DirtyFraction float64

	// SimStart splits the dataset: events before it are History (bulk
	// pre-ingest), events at/after it replay live. Zero means the start of
	// the dataset's last simulated day.
	SimStart time.Time
}

func (spec WorkloadSpec) withDefaults() WorkloadSpec {
	if spec.Ops <= 0 {
		spec.Ops = 1000
	}
	if spec.ReadFraction <= 0 {
		spec.ReadFraction = 0.9
	}
	if spec.ReadFraction > 1 {
		spec.ReadFraction = 1
	}
	if spec.BatchFraction < 0 {
		spec.BatchFraction = 0
	}
	if spec.BatchSize <= 0 {
		spec.BatchSize = 16
	}
	if spec.IngestChunk <= 0 || spec.IngestChunk > 64 {
		spec.IngestChunk = 64
	}
	if spec.Arrival == "" {
		spec.Arrival = ArrivalPoisson
	}
	if spec.BurstFactor <= 1 {
		spec.BurstFactor = 4
	}
	if spec.BurstFraction <= 0 || spec.BurstFraction >= 1 {
		spec.BurstFraction = 0.2
	}
	return spec
}

// Workload is a generated schedule plus the pre-ingest history split.
type Workload struct {
	Spec WorkloadSpec
	// History holds the dataset events before SimStart, to be bulk-ingested
	// before the run starts.
	History []event.Event
	// Ops is the schedule, sorted by At.
	Ops []Op
	// SimStart is the resolved history/replay split point; Window is the
	// replay span's length.
	SimStart time.Time
	Window   time.Duration
}

// BuildWorkload generates a deterministic schedule from a dataset.
func BuildWorkload(ds *Dataset, spec WorkloadSpec) (*Workload, error) {
	spec = spec.withDefaults()
	if ds == nil || len(ds.People) == 0 {
		return nil, fmt.Errorf("sim: workload needs a populated dataset")
	}
	if len(ds.Events) == 0 {
		return nil, fmt.Errorf("sim: workload needs a dataset with events")
	}
	switch spec.Arrival {
	case ArrivalPoisson, ArrivalUniform, ArrivalBursty:
	default:
		return nil, fmt.Errorf("sim: unknown arrival process %q", spec.Arrival)
	}

	start := ds.Config.Start
	end := start.AddDate(0, 0, ds.Config.Days)
	simStart := spec.SimStart
	if simStart.IsZero() {
		simStart = start.AddDate(0, 0, ds.Config.Days-1)
	}
	if !simStart.After(start) || !simStart.Before(end) {
		return nil, fmt.Errorf("sim: SimStart %v outside dataset span [%v, %v)", simStart, start, end)
	}

	w := &Workload{Spec: spec, SimStart: simStart, Window: end.Sub(simStart)}

	// History/replay split. Events are already time-sorted by Generate.
	split := sort.Search(len(ds.Events), func(i int) bool {
		return !ds.Events[i].Time.Before(simStart)
	})
	w.History = ds.Events[:split]
	window := ds.Events[split:]
	if len(w.History) == 0 {
		return nil, fmt.Errorf("sim: no history events before %v", simStart)
	}

	// Diurnal weights from the dataset's own hourly rhythm.
	var diurnal [24]float64
	if spec.Diurnal {
		diurnal = hourlyWeights(ds.Events)
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	arrive := newArrivals(spec, rng)

	// Query times target the settled history span (skip the cold first
	// day, when devices have no past to clean against).
	qlo := start.Add(24 * time.Hour)
	if !qlo.Before(simStart) {
		qlo = start
	}
	qspan := simStart.Sub(qlo)

	randomQuery := func() LocateQuery {
		p := ds.People[rng.Intn(len(ds.People))]
		return LocateQuery{
			Device: p.Device,
			Time:   qlo.Add(time.Duration(rng.Int63n(int64(qspan)))),
		}
	}

	var at time.Duration
	ingestCursor := 0
	ingestLap := 0
	for i := 0; i < spec.Ops; i++ {
		step := arrive()
		if spec.Diurnal {
			// Sweep one simulated day across the schedule: op i lands at
			// hour 24·i/Ops. Faster hours compress inter-arrivals.
			h := (24 * i / spec.Ops) % 24
			step = time.Duration(float64(step) / diurnal[h])
		}
		at += step

		op := Op{At: at}
		switch {
		case rng.Float64() < spec.ReadFraction:
			if rng.Float64() < spec.BatchFraction {
				op.Kind = OpBatch
				op.Batch = make([]LocateQuery, spec.BatchSize)
				for j := range op.Batch {
					op.Batch[j] = randomQuery()
				}
			} else {
				op.Kind = OpLocate
				op.Query = randomQuery()
			}
		default:
			op.Kind = OpIngest
			var chunk []event.Event
			chunk, ingestCursor, ingestLap = nextChunk(window, spec.IngestChunk, ingestCursor, ingestLap, w.Window)
			if len(chunk) == 0 {
				// No replay window (SimStart at the very end): fall back
				// to a read so the schedule keeps its length.
				op.Kind = OpLocate
				op.Query = randomQuery()
				break
			}
			op.Events = chunk
			if spec.DirtyFraction > 0 && rng.Float64() < spec.DirtyFraction {
				op.Dirty = true
				dirtyChunk(ds, rng, op.Events)
			}
		}
		w.Ops = append(w.Ops, op)
	}

	// Normalize so the schedule's realized mean rate is exactly 1 op/s:
	// dividing offsets by realized-mean keeps the dispatcher's target-rate
	// math honest regardless of arrival process or diurnal shaping.
	if n := len(w.Ops); n > 0 && w.Ops[n-1].At > 0 {
		scale := float64(w.Ops[n-1].At) / (float64(n) * float64(time.Second))
		for i := range w.Ops {
			w.Ops[i].At = time.Duration(float64(w.Ops[i].At) / scale)
		}
	}
	return w, nil
}

// newArrivals returns a unit-mean inter-arrival sampler for the spec.
func newArrivals(spec WorkloadSpec, rng *rand.Rand) func() time.Duration {
	switch spec.Arrival {
	case ArrivalUniform:
		return func() time.Duration { return time.Second }
	case ArrivalBursty:
		// Markov-modulated: burst arrivals are BurstFactor× faster; slow
		// arrivals stretch to keep the overall mean at 1s. State flips
		// with a persistence of ~8 arrivals per dwell.
		fastMean := 1 / spec.BurstFactor
		slowMean := (1 - spec.BurstFraction*fastMean) / (1 - spec.BurstFraction)
		inBurst := false
		return func() time.Duration {
			if inBurst {
				if rng.Float64() < 1.0/8 {
					inBurst = false
				}
			} else if rng.Float64() < spec.BurstFraction/8/(1-spec.BurstFraction) {
				inBurst = true
			}
			mean := slowMean
			if inBurst {
				mean = fastMean
			}
			return time.Duration(rng.ExpFloat64() * mean * float64(time.Second))
		}
	default: // ArrivalPoisson
		return func() time.Duration {
			return time.Duration(rng.ExpFloat64() * float64(time.Second))
		}
	}
}

// hourlyWeights builds the diurnal profile: events per hour-of-day,
// normalized to mean 1 and clamped to [0.2, 3] so dead hours don't stall the
// schedule and peaks don't degenerate into a single spike.
func hourlyWeights(events []event.Event) [24]float64 {
	var counts [24]int
	for _, e := range events {
		counts[e.Time.Hour()]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	var w [24]float64
	for h := range w {
		if total == 0 {
			w[h] = 1
			continue
		}
		w[h] = 24 * float64(counts[h]) / float64(total)
		if w[h] < 0.2 {
			w[h] = 0.2
		}
		if w[h] > 3 {
			w[h] = 3
		}
	}
	return w
}

// nextChunk slices the next due ingest chunk off the replay window. When the
// window is exhausted the cursor wraps and every event is shifted one window
// length forward (lap), so replayed ingests stay time-monotone however long
// the schedule runs.
func nextChunk(window []event.Event, size, cursor, lap int, span time.Duration) ([]event.Event, int, int) {
	if len(window) == 0 {
		return nil, cursor, lap
	}
	if cursor >= len(window) {
		cursor = 0
		lap++
	}
	end := cursor + size
	if end > len(window) {
		end = len(window)
	}
	chunk := make([]event.Event, end-cursor)
	copy(chunk, window[cursor:end])
	shift := time.Duration(lap) * span
	for i := range chunk {
		chunk[i].ID = 0
		if shift > 0 {
			chunk[i].Time = chunk[i].Time.Add(shift)
		}
	}
	return chunk, end, lap
}

// dirtyChunk injects one of the two dirt patterns in place:
//
//   - oscillation: the chunk's first event is followed by four re-association
//     events alternating between its own AP and another AP at +1..+4s — the
//     unstable-connectivity pattern (a device flapping between overlapping
//     APs) that data-cleaning systems must not mistake for movement;
//   - out-of-order: the chunk arrives time-reversed, exercising the store's
//     tolerance for non-monotone ingest.
//
// The chunk keeps its length (oscillation overwrites the tail) so schedule
// geometry is independent of dirt.
func dirtyChunk(ds *Dataset, rng *rand.Rand, chunk []event.Event) {
	if len(chunk) < 2 {
		return
	}
	if rng.Float64() < 0.5 {
		// Oscillation burst after the first event.
		aps := ds.Building.AccessPoints()
		other := aps[rng.Intn(len(aps))]
		for other == chunk[0].AP && len(aps) > 1 {
			other = aps[rng.Intn(len(aps))]
		}
		n := 4
		if n > len(chunk)-1 {
			n = len(chunk) - 1
		}
		for i := 1; i <= n; i++ {
			e := chunk[0]
			e.Time = e.Time.Add(time.Duration(i) * time.Second)
			if i%2 == 1 {
				e.AP = other
			}
			chunk[i] = e
		}
	} else {
		for i, j := 0, len(chunk)-1; i < j; i, j = i+1, j-1 {
			chunk[i], chunk[j] = chunk[j], chunk[i]
		}
	}
}

// WriteCanonical serializes the schedule in a canonical line-oriented text
// form for golden-file tests: identical (dataset, spec) inputs must produce
// byte-identical output.
func (w *Workload) WriteCanonical(out io.Writer) error {
	spec := w.Spec
	if _, err := fmt.Fprintf(out,
		"workload ops=%d seed=%d read=%.3f batch=%.3f batchsize=%d chunk=%d arrival=%s burst=%.2fx%.2f diurnal=%t dirty=%.3f\nsimstart=%s window=%s history=%d\n",
		spec.Ops, spec.Seed, spec.ReadFraction, spec.BatchFraction, spec.BatchSize,
		spec.IngestChunk, spec.Arrival, spec.BurstFactor, spec.BurstFraction,
		spec.Diurnal, spec.DirtyFraction,
		w.SimStart.UTC().Format(time.RFC3339), w.Window, len(w.History),
	); err != nil {
		return err
	}
	for i, op := range w.Ops {
		switch op.Kind {
		case OpLocate:
			if _, err := fmt.Fprintf(out, "%d %d locate %s %s\n",
				i, op.At.Nanoseconds(), op.Query.Device,
				op.Query.Time.UTC().Format(time.RFC3339Nano)); err != nil {
				return err
			}
		case OpBatch:
			if _, err := fmt.Fprintf(out, "%d %d batch %d", i, op.At.Nanoseconds(), len(op.Batch)); err != nil {
				return err
			}
			for _, q := range op.Batch {
				if _, err := fmt.Fprintf(out, " %s@%s", q.Device, q.Time.UTC().Format(time.RFC3339Nano)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(out); err != nil {
				return err
			}
		case OpIngest:
			first, last := op.Events[0], op.Events[len(op.Events)-1]
			if _, err := fmt.Fprintf(out, "%d %d ingest %d dirty=%t %s@%s..%s@%s\n",
				i, op.At.Nanoseconds(), len(op.Events), op.Dirty,
				first.Device, first.Time.UTC().Format(time.RFC3339Nano),
				last.Device, last.Time.UTC().Format(time.RFC3339Nano)); err != nil {
				return err
			}
		}
	}
	return nil
}
