// Package wal implements LOCATER's durability subsystem: an append-only,
// segmented, CRC-checksummed write-ahead log with periodic snapshots and
// crash recovery. The store's in-memory engine stays the source of truth for
// queries; the WAL records every acknowledged mutation (ingested events,
// per-device validity intervals δ, crowd-sourced room labels) so a restart —
// clean or not — rebuilds exactly the acknowledged state.
//
// On disk a WAL directory holds numbered segment files (`wal-<firstLSN>.seg`)
// and snapshot files (`snap-<lsn>.snap`). Every record carries a CRC-32C
// checksum; every record has an implicit log sequence number (LSN), the
// position in the global append order. A snapshot captures the full
// materialized state as of an LSN; recovery loads the newest valid snapshot
// and replays the segments' records with larger LSNs, truncating a torn
// final record left by a crash mid-write.
package wal

import (
	"encoding/binary"
	"fmt"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// Record kinds. The kind byte leads every record payload.
const (
	recEvent byte = 1 // one acknowledged connectivity event
	recDelta byte = 2 // a per-device validity interval δ(d)
	recLabel byte = 3 // a crowd-sourced room label
)

// record is one decoded WAL record.
type record struct {
	kind byte

	ev event.Event // recEvent

	dev   event.DeviceID // recDelta, recLabel
	delta time.Duration  // recDelta
	room  space.RoomID   // recLabel
	at    time.Time      // recLabel
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodeEvent appends an event record payload to b.
func encodeEvent(b []byte, e event.Event) []byte {
	b = append(b, recEvent)
	b = binary.AppendVarint(b, e.ID)
	b = appendString(b, string(e.Device))
	b = binary.AppendVarint(b, e.Time.UnixNano())
	b = appendString(b, string(e.AP))
	return b
}

// encodeDelta appends a δ record payload to b.
func encodeDelta(b []byte, d event.DeviceID, delta time.Duration) []byte {
	b = append(b, recDelta)
	b = appendString(b, string(d))
	b = binary.AppendVarint(b, int64(delta))
	return b
}

// encodeLabel appends a room-label record payload to b.
func encodeLabel(b []byte, d event.DeviceID, r space.RoomID, t time.Time) []byte {
	b = append(b, recLabel)
	b = appendString(b, string(d))
	b = appendString(b, string(r))
	b = binary.AppendVarint(b, t.UnixNano())
	return b
}

// decoder is a cursor over an encoded payload with sticky error handling.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wal: truncated or malformed %s at offset %d", what, d.off)
	}
}

func (d *decoder) byte_() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)-d.off) < n {
		d.fail("string")
		return ""
	}
	v := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return v
}

func (d *decoder) remaining() int { return len(d.b) - d.off }

// decodeRecord parses one record payload. Every byte must be consumed; a
// short or over-long payload is malformed.
func decodeRecord(payload []byte) (record, error) {
	d := &decoder{b: payload}
	var r record
	r.kind = d.byte_()
	switch r.kind {
	case recEvent:
		r.ev.ID = d.varint()
		r.ev.Device = event.DeviceID(d.str())
		r.ev.Time = time.Unix(0, d.varint()).UTC()
		r.ev.AP = space.APID(d.str())
	case recDelta:
		r.dev = event.DeviceID(d.str())
		r.delta = time.Duration(d.varint())
	case recLabel:
		r.dev = event.DeviceID(d.str())
		r.room = space.RoomID(d.str())
		r.at = time.Unix(0, d.varint()).UTC()
	default:
		if d.err == nil {
			return record{}, fmt.Errorf("wal: unknown record kind %d", r.kind)
		}
	}
	if d.err != nil {
		return record{}, d.err
	}
	if d.remaining() != 0 {
		return record{}, fmt.Errorf("wal: %d trailing bytes after record kind %d", d.remaining(), r.kind)
	}
	return r, nil
}
