// Package wal implements LOCATER's durability subsystem: an append-only,
// segmented, CRC-checksummed write-ahead log with periodic snapshots and
// crash recovery. The store's in-memory engine stays the source of truth for
// queries; the WAL records every acknowledged mutation (ingested events,
// per-device validity intervals δ, crowd-sourced room labels) so a restart —
// clean or not — rebuilds exactly the acknowledged state.
//
// On disk a WAL directory holds numbered segment files (`wal-<firstLSN>.seg`)
// and snapshot files (`snap-<lsn>.snap`). Every record carries a CRC-32C
// checksum; every record has an implicit log sequence number (LSN), the
// position in the global append order. A snapshot captures the full
// materialized state as of an LSN; recovery loads the newest valid snapshot
// and replays the segments' records with larger LSNs, truncating a torn
// final record left by a crash mid-write.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// Record kinds. The kind byte leads every record payload.
const (
	recEvent byte = 1 // one acknowledged connectivity event
	recDelta byte = 2 // a per-device validity interval δ(d)
	recLabel byte = 3 // a crowd-sourced room label
)

// record is one decoded WAL record.
type record struct {
	kind byte

	ev event.Event // recEvent

	dev   event.DeviceID // recDelta, recLabel
	delta time.Duration  // recDelta
	room  space.RoomID   // recLabel
	at    time.Time      // recLabel
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodeEvent appends an event record payload to b.
func encodeEvent(b []byte, e event.Event) []byte {
	b = append(b, recEvent)
	b = binary.AppendVarint(b, e.ID)
	b = appendString(b, string(e.Device))
	b = binary.AppendVarint(b, e.Time.UnixNano())
	b = appendString(b, string(e.AP))
	return b
}

// encodeDelta appends a δ record payload to b.
func encodeDelta(b []byte, d event.DeviceID, delta time.Duration) []byte {
	b = append(b, recDelta)
	b = appendString(b, string(d))
	b = binary.AppendVarint(b, int64(delta))
	return b
}

// encodeLabel appends a room-label record payload to b.
func encodeLabel(b []byte, d event.DeviceID, r space.RoomID, t time.Time) []byte {
	b = append(b, recLabel)
	b = appendString(b, string(d))
	b = appendString(b, string(r))
	b = binary.AppendVarint(b, t.UnixNano())
	return b
}

// decoder is a cursor over an encoded payload with sticky error handling.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wal: truncated or malformed %s at offset %d", what, d.off)
	}
}

func (d *decoder) byte_() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)-d.off) < n {
		d.fail("string")
		return ""
	}
	v := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return v
}

func (d *decoder) remaining() int { return len(d.b) - d.off }

// --- Columnar event-block codec ---------------------------------------------
//
// A block is the encoded payload of one sealed event segment: a single
// device's sorted run of events in compressed columnar form. WiFi
// connectivity logs are highly redundant — a device re-associates with a
// handful of APs and timestamps are near-monotone with regular spacing — so
// the block dictionary-encodes AP IDs (a uvarint index into a per-block AP
// table) and stores timestamps as delta-of-delta varints (the first is
// absolute nanoseconds, the second a delta, the rest deltas of deltas, which
// are near zero for periodic beacons). Event IDs are delta varints. The
// device ID is not stored: segments are keyed by device, so the caller
// supplies it at decode time.
//
// Layout:
//
//	uvarint count
//	uvarint nAPs, then nAPs length-prefixed AP strings (first-appearance order)
//	per event: uvarint apIndex, varint ddTime, varint deltaID
//	4-byte LE CRC-32C over everything above
//
// The trailing CRC is verified before any field is parsed, so a corrupted
// segment file is refused at page-in rather than yielding garbage events.

// SegmentMeta describes one sealed, immutable event segment without decoding
// it: enough for the store to prune segment page-ins by time window and for
// the snapshot manifest to restore a device's segment list after a restart.
type SegmentMeta struct {
	// Seq is the segment's per-device sequence number (1-based, dense in
	// seal order). (Device, Seq) keys the payload in the SegmentBackend.
	Seq uint64
	// Count is the number of events in the block.
	Count int
	// MinNanos/MaxNanos bound the block's event times (inclusive).
	MinNanos int64
	MaxNanos int64
	// Bytes is the encoded payload size including the CRC trailer.
	Bytes int
}

// EncodeEventBlock appends the columnar block encoding of evs to dst and
// returns the extended slice. evs must be non-empty and sorted; all events
// must belong to the same device (the device is not encoded).
func EncodeEventBlock(dst []byte, evs []event.Event) []byte {
	start := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(evs)))
	apIdx := make(map[space.APID]uint64, 8)
	order := make([]space.APID, 0, 8)
	for i := range evs {
		if _, ok := apIdx[evs[i].AP]; !ok {
			apIdx[evs[i].AP] = uint64(len(order))
			order = append(order, evs[i].AP)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(order)))
	for _, ap := range order {
		dst = appendString(dst, string(ap))
	}
	var prevT, prevDelta, prevID int64
	for i := range evs {
		dst = binary.AppendUvarint(dst, apIdx[evs[i].AP])
		t := evs[i].Time.UnixNano()
		if i == 0 {
			dst = binary.AppendVarint(dst, t)
			dst = binary.AppendVarint(dst, evs[i].ID)
		} else {
			d := t - prevT
			dst = binary.AppendVarint(dst, d-prevDelta)
			dst = binary.AppendVarint(dst, evs[i].ID-prevID)
			prevDelta = d
		}
		prevT = t
		prevID = evs[i].ID
	}
	crc := crc32.Checksum(dst[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// DecodeEventBlock verifies the block's CRC, decodes its events for device
// dev, appends them to dst, and returns the extended slice. The CRC is
// checked before any field is parsed; on any error dst is returned with only
// fully decoded events appended and must be discarded by the caller.
func DecodeEventBlock(block []byte, dev event.DeviceID, dst []event.Event) ([]event.Event, error) {
	if len(block) < 4 {
		return dst, fmt.Errorf("wal: event block too short (%d bytes)", len(block))
	}
	body := block[:len(block)-4]
	want := binary.LittleEndian.Uint32(block[len(block)-4:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return dst, fmt.Errorf("wal: event block CRC mismatch (got %08x, want %08x)", got, want)
	}
	d := &decoder{b: body}
	count := d.uvarint()
	nAPs := d.uvarint()
	if d.err != nil {
		return dst, d.err
	}
	if nAPs > count || count > uint64(len(body)) {
		return dst, fmt.Errorf("wal: event block header implausible (count %d, aps %d, body %d bytes)", count, nAPs, len(body))
	}
	aps := make([]space.APID, nAPs)
	for i := range aps {
		aps[i] = space.APID(d.str())
	}
	var prevT, prevDelta, prevID int64
	for i := uint64(0); i < count; i++ {
		ai := d.uvarint()
		dd := d.varint()
		di := d.varint()
		if d.err != nil {
			return dst, d.err
		}
		if ai >= nAPs {
			return dst, fmt.Errorf("wal: event block AP index %d out of range (%d APs)", ai, nAPs)
		}
		var t, id int64
		if i == 0 {
			t, id = dd, di
		} else {
			prevDelta += dd
			t = prevT + prevDelta
			id = prevID + di
		}
		prevT, prevID = t, id
		dst = append(dst, event.Event{
			ID:     id,
			Device: dev,
			Time:   time.Unix(0, t).UTC(),
			AP:     aps[ai],
		})
	}
	if d.remaining() != 0 {
		return dst, fmt.Errorf("wal: %d trailing bytes after event block", d.remaining())
	}
	return dst, nil
}

// --- Block-indexed segment payloads ------------------------------------------
//
// A sealed segment used to be encoded as ONE event block, so any read — a
// two-event point lookup included — decoded the whole thing. The
// block-indexed layout splits the segment into consecutive dictionary-
// relative blocks and appends an indexed trailer describing them:
//
//	block[0] block[1] ... block[k-1]
//	trailer body:
//	    uvarint k
//	    per block: uvarint len, uvarint count,
//	               varint minNanos (first absolute, then delta from the
//	               previous block's min)
//	    varint lastSpan (final block's maxNanos - minNanos)
//	    uvarint nAPs, then nAPs length-prefixed AP strings — the segment
//	    dictionary shared by every block
//	4-byte LE CRC-32C over the trailer body
//	4-byte LE trailer length (body + CRC)
//	4-byte magic "LSIX"
//
// Only block minima are stored: blocks partition a sorted run, so block i's
// true maximum is bounded by block i+1's minimum, and ParseSegmentIndex
// reports exactly that as MaxNanos — a tight conservative bound that prunes
// just as well while costing zero trailer bytes. Only the final block,
// which has no successor, carries its span explicitly, so its MaxNanos (the
// segment's own maximum) is exact.
//
// Each block is: uvarint count, then per event (uvarint AP index into the
// segment dictionary; varint time as a delta-of-delta chain seeded from the
// index's minNanos for that block; varint ID delta), then a 4-byte LE
// CRC-32C over everything before it. Blocks carry no dictionary and no
// absolute timestamp of their own — both live in the trailer, parsed once
// and shared — which keeps a 1–2-block point lookup from re-decoding
// per-block copies of state the whole segment has in common.
//
// Block offsets are implicit (blocks are contiguous from offset 0), so the
// trailer costs ~10 bytes per block. Readers parse the trailer once —
// touching only the payload's final pages when it is memory-mapped — then
// decode exactly the blocks a query needs, binary-searching the per-block
// time bounds to skip the rest. Each block still verifies its own CRC
// before any field is parsed, so a truncated or bit-flipped mapping is
// refused block-by-block and a decoder can never over-read the payload
// slice it was handed.
//
// Payloads without the trailer magic are the legacy single-block format and
// remain fully readable: ParseSegmentIndex reports them as unindexed and
// the caller treats the whole payload as one block.

// segIndexMagic terminates every block-indexed segment payload.
const segIndexMagic = "LSIX"

// segIndexFooterLen is the fixed footer: trailer length + magic.
const segIndexFooterLen = 8

// BlockMeta describes one event block inside a sealed segment payload:
// where it lives, how many events it holds, and the time range it covers.
type BlockMeta struct {
	// Off/Len locate the block's bytes (CRC trailer included) within the
	// segment payload.
	Off, Len int
	// Count is the number of events in the block.
	Count int
	// MinNanos/MaxNanos bound the block's event times (inclusive). Blocks
	// are consecutive ranges of the segment's sorted events, so MinNanos is
	// non-decreasing across the index. MinNanos is always an exact event
	// time (the block's first); MaxNanos is exact only for a segment's final
	// block — earlier blocks report their successor's MinNanos, a tight
	// upper bound that need not be one of the block's own event times.
	MinNanos, MaxNanos int64
}

// EncodeSegment appends the block-indexed encoding of evs to dst: the
// events split into consecutive dictionary-relative blocks of at most
// blockEvents each (blockEvents <= 0 or >= len(evs) yields a single
// block), followed by the indexed trailer carrying the block index and the
// segment-wide AP dictionary. Returns the extended slice and the block
// index (offsets relative to the start of this segment's payload). evs
// must be non-empty and sorted; all events must belong to the same device.
func EncodeSegment(dst []byte, evs []event.Event, blockEvents int) ([]byte, []BlockMeta) {
	if blockEvents <= 0 || blockEvents > len(evs) {
		blockEvents = len(evs)
	}
	apIdx := make(map[space.APID]uint64, 8)
	order := make([]space.APID, 0, 8)
	for i := range evs {
		if _, ok := apIdx[evs[i].AP]; !ok {
			apIdx[evs[i].AP] = uint64(len(order))
			order = append(order, evs[i].AP)
		}
	}
	start := len(dst)
	nBlocks := (len(evs) + blockEvents - 1) / blockEvents
	metas := make([]BlockMeta, 0, nBlocks)
	for lo := 0; lo < len(evs); lo += blockEvents {
		hi := lo + blockEvents
		if hi > len(evs) {
			hi = len(evs)
		}
		off := len(dst) - start
		dst = encodeDictBlock(dst, evs[lo:hi], apIdx)
		metas = append(metas, BlockMeta{
			Off:      off,
			Len:      len(dst) - start - off,
			Count:    hi - lo,
			MinNanos: evs[lo].Time.UnixNano(),
			MaxNanos: evs[hi-1].Time.UnixNano(),
		})
	}
	// Non-final maxes are not encoded; report the same conservative bound the
	// parser will reconstruct (the next block's min) so encoder-returned and
	// parsed indexes agree byte-for-byte in tests and callers alike.
	for i := range metas[:len(metas)-1] {
		metas[i].MaxNanos = metas[i+1].MinNanos
	}
	trailerStart := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(metas)))
	prevMin := int64(0)
	for i, m := range metas {
		dst = binary.AppendUvarint(dst, uint64(m.Len))
		dst = binary.AppendUvarint(dst, uint64(m.Count))
		if i == 0 {
			dst = binary.AppendVarint(dst, m.MinNanos)
		} else {
			dst = binary.AppendVarint(dst, m.MinNanos-prevMin)
		}
		prevMin = m.MinNanos
	}
	last := metas[len(metas)-1]
	dst = binary.AppendVarint(dst, last.MaxNanos-last.MinNanos)
	dst = binary.AppendUvarint(dst, uint64(len(order)))
	for _, ap := range order {
		dst = appendString(dst, string(ap))
	}
	crc := crc32.Checksum(dst[trailerStart:], castagnoli)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	trailerLen := len(dst) - trailerStart
	dst = binary.LittleEndian.AppendUint32(dst, uint32(trailerLen))
	return append(dst, segIndexMagic...), metas
}

// encodeDictBlock appends one dictionary-relative block: count, then per
// event (AP index, delta-of-delta time, ID delta), then the block CRC. The
// time chain is seeded from the block's first event — whose absolute time
// the index trailer records as the block's minNanos — so the block itself
// stores only small deltas.
func encodeDictBlock(dst []byte, evs []event.Event, apIdx map[space.APID]uint64) []byte {
	start := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(evs)))
	var prevT, prevDelta, prevID int64
	for i := range evs {
		dst = binary.AppendUvarint(dst, apIdx[evs[i].AP])
		t := evs[i].Time.UnixNano()
		if i == 0 {
			// The absolute time lives in the index; in-block it is the
			// chain seed, always encoding as zero.
			dst = binary.AppendVarint(dst, 0)
			dst = binary.AppendVarint(dst, evs[i].ID)
		} else {
			d := t - prevT
			dst = binary.AppendVarint(dst, d-prevDelta)
			dst = binary.AppendVarint(dst, evs[i].ID-prevID)
			prevDelta = d
		}
		prevT = t
		prevID = evs[i].ID
	}
	crc := crc32.Checksum(dst[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// DecodeIndexedBlock verifies and decodes one dictionary-relative block of
// an indexed segment payload, appending its events for device dev to dst.
// dict is the segment dictionary and minNanos the block's index-recorded
// first-event time, both from ParseSegmentIndex. The CRC is checked before
// any field is parsed; on error dst must be discarded by the caller.
func DecodeIndexedBlock(block []byte, dev event.DeviceID, dict []space.APID, minNanos int64, dst []event.Event) ([]event.Event, error) {
	if len(block) < 4 {
		return dst, fmt.Errorf("wal: indexed block too short (%d bytes)", len(block))
	}
	body := block[:len(block)-4]
	want := binary.LittleEndian.Uint32(block[len(block)-4:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return dst, fmt.Errorf("wal: indexed block CRC mismatch (got %08x, want %08x)", got, want)
	}
	d := &decoder{b: body}
	count := d.uvarint()
	if d.err != nil {
		return dst, d.err
	}
	if count == 0 || count > uint64(len(body)) {
		return dst, fmt.Errorf("wal: indexed block count %d implausible (%d body bytes)", count, len(body))
	}
	var prevT, prevDelta, prevID int64
	for i := uint64(0); i < count; i++ {
		ai := d.uvarint()
		dd := d.varint()
		di := d.varint()
		if d.err != nil {
			return dst, d.err
		}
		if ai >= uint64(len(dict)) {
			return dst, fmt.Errorf("wal: indexed block AP index %d out of range (%d dictionary entries)", ai, len(dict))
		}
		var t, id int64
		if i == 0 {
			t, id = minNanos+dd, di
		} else {
			prevDelta += dd
			t = prevT + prevDelta
			id = prevID + di
		}
		prevT, prevID = t, id
		dst = append(dst, event.Event{
			ID:     id,
			Device: dev,
			Time:   time.Unix(0, t).UTC(),
			AP:     dict[ai],
		})
	}
	if d.remaining() != 0 {
		return dst, fmt.Errorf("wal: %d trailing bytes after indexed block", d.remaining())
	}
	return dst, nil
}

// ParseSegmentIndex parses a segment payload's block index and segment
// dictionary. indexed reports whether the payload carries them: a payload
// without the trailer magic is the legacy single-block format
// (indexed=false, nil metas, nil dict, nil error) and the caller decodes it
// as one self-contained block covering the whole payload. A payload that
// carries the magic but whose trailer fails validation is corrupt — the
// error is returned and nothing is decoded (the legacy interpretation
// would fail its whole-payload CRC anyway, so corruption is refused rather
// than misread). The returned metas reference only byte ranges inside the
// blocks region, so decoding through them can never over-read the payload.
func ParseSegmentIndex(payload []byte) (metas []BlockMeta, dict []space.APID, indexed bool, err error) {
	n := len(payload)
	if n < segIndexFooterLen || string(payload[n-4:]) != segIndexMagic {
		return nil, nil, false, nil
	}
	trailerLen := int(binary.LittleEndian.Uint32(payload[n-8 : n-4]))
	if trailerLen < 5 || trailerLen > n-segIndexFooterLen {
		return nil, nil, true, fmt.Errorf("wal: segment index trailer length %d out of range (payload %d bytes)", trailerLen, n)
	}
	trailer := payload[n-segIndexFooterLen-trailerLen : n-segIndexFooterLen]
	body := trailer[:len(trailer)-4]
	want := binary.LittleEndian.Uint32(trailer[len(trailer)-4:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, nil, true, fmt.Errorf("wal: segment index CRC mismatch (got %08x, want %08x)", got, want)
	}
	blocksLen := n - segIndexFooterLen - trailerLen
	d := &decoder{b: body}
	k := d.uvarint()
	if d.err != nil {
		return nil, nil, true, d.err
	}
	if k == 0 || k > uint64(len(body)) {
		return nil, nil, true, fmt.Errorf("wal: segment index block count %d implausible (trailer %d bytes)", k, len(body))
	}
	metas = make([]BlockMeta, 0, k)
	off := 0
	total := uint64(0)
	prevMin := int64(0)
	for i := uint64(0); i < k; i++ {
		blen := d.uvarint()
		count := d.uvarint()
		dmin := d.varint()
		if d.err != nil {
			return nil, nil, true, d.err
		}
		if blen < 5 || blen > uint64(blocksLen-off) {
			return nil, nil, true, fmt.Errorf("wal: segment index block %d length %d out of range", i, blen)
		}
		if count == 0 || count > blen {
			return nil, nil, true, fmt.Errorf("wal: segment index block %d count %d implausible (%d bytes)", i, count, blen)
		}
		min := prevMin + dmin
		if i == 0 {
			min = dmin
		} else if dmin < 0 {
			return nil, nil, true, fmt.Errorf("wal: segment index block %d out of order (min delta %d)", i, dmin)
		}
		metas = append(metas, BlockMeta{Off: off, Len: int(blen), Count: int(count), MinNanos: min})
		off += int(blen)
		total += count
		prevMin = min
	}
	// Reconstruct the time upper bounds: each non-final block is capped by its
	// successor's min (blocks partition a sorted run); the final block's exact
	// span is encoded.
	lastSpan := d.varint()
	if d.err != nil {
		return nil, nil, true, d.err
	}
	if lastSpan < 0 {
		return nil, nil, true, fmt.Errorf("wal: segment index final block has max before min")
	}
	for i := range metas[:len(metas)-1] {
		metas[i].MaxNanos = metas[i+1].MinNanos
	}
	metas[len(metas)-1].MaxNanos = metas[len(metas)-1].MinNanos + lastSpan
	nAPs := d.uvarint()
	if d.err != nil {
		return nil, nil, true, d.err
	}
	if nAPs == 0 || nAPs > total {
		return nil, nil, true, fmt.Errorf("wal: segment dictionary has %d APs for %d events", nAPs, total)
	}
	dict = make([]space.APID, nAPs)
	for i := range dict {
		dict[i] = space.APID(d.str())
	}
	if d.err != nil {
		return nil, nil, true, d.err
	}
	if d.remaining() != 0 {
		return nil, nil, true, fmt.Errorf("wal: %d trailing bytes in segment index", d.remaining())
	}
	if off != blocksLen {
		return nil, nil, true, fmt.Errorf("wal: segment index covers %d block bytes, payload has %d", off, blocksLen)
	}
	return metas, dict, true, nil
}

// DecodeSegment decodes a full segment payload — block-indexed or legacy
// single-block — appending the events to dst. Each block's CRC is verified
// before its fields are parsed.
func DecodeSegment(payload []byte, dev event.DeviceID, dst []event.Event) ([]event.Event, error) {
	metas, dict, indexed, err := ParseSegmentIndex(payload)
	if err != nil {
		return dst, err
	}
	if !indexed {
		return DecodeEventBlock(payload, dev, dst)
	}
	for _, m := range metas {
		dst, err = DecodeIndexedBlock(payload[m.Off:m.Off+m.Len], dev, dict, m.MinNanos, dst)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// decodeRecord parses one record payload. Every byte must be consumed; a
// short or over-long payload is malformed.
func decodeRecord(payload []byte) (record, error) {
	d := &decoder{b: payload}
	var r record
	r.kind = d.byte_()
	switch r.kind {
	case recEvent:
		r.ev.ID = d.varint()
		r.ev.Device = event.DeviceID(d.str())
		r.ev.Time = time.Unix(0, d.varint()).UTC()
		r.ev.AP = space.APID(d.str())
	case recDelta:
		r.dev = event.DeviceID(d.str())
		r.delta = time.Duration(d.varint())
	case recLabel:
		r.dev = event.DeviceID(d.str())
		r.room = space.RoomID(d.str())
		r.at = time.Unix(0, d.varint()).UTC()
	default:
		if d.err == nil {
			return record{}, fmt.Errorf("wal: unknown record kind %d", r.kind)
		}
	}
	if d.err != nil {
		return record{}, d.err
	}
	if d.remaining() != 0 {
		return record{}, fmt.Errorf("wal: %d trailing bytes after record kind %d", d.remaining(), r.kind)
	}
	return r, nil
}
