// Package wal implements LOCATER's durability subsystem: an append-only,
// segmented, CRC-checksummed write-ahead log with periodic snapshots and
// crash recovery. The store's in-memory engine stays the source of truth for
// queries; the WAL records every acknowledged mutation (ingested events,
// per-device validity intervals δ, crowd-sourced room labels) so a restart —
// clean or not — rebuilds exactly the acknowledged state.
//
// On disk a WAL directory holds numbered segment files (`wal-<firstLSN>.seg`)
// and snapshot files (`snap-<lsn>.snap`). Every record carries a CRC-32C
// checksum; every record has an implicit log sequence number (LSN), the
// position in the global append order. A snapshot captures the full
// materialized state as of an LSN; recovery loads the newest valid snapshot
// and replays the segments' records with larger LSNs, truncating a torn
// final record left by a crash mid-write.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// Record kinds. The kind byte leads every record payload.
const (
	recEvent byte = 1 // one acknowledged connectivity event
	recDelta byte = 2 // a per-device validity interval δ(d)
	recLabel byte = 3 // a crowd-sourced room label
)

// record is one decoded WAL record.
type record struct {
	kind byte

	ev event.Event // recEvent

	dev   event.DeviceID // recDelta, recLabel
	delta time.Duration  // recDelta
	room  space.RoomID   // recLabel
	at    time.Time      // recLabel
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodeEvent appends an event record payload to b.
func encodeEvent(b []byte, e event.Event) []byte {
	b = append(b, recEvent)
	b = binary.AppendVarint(b, e.ID)
	b = appendString(b, string(e.Device))
	b = binary.AppendVarint(b, e.Time.UnixNano())
	b = appendString(b, string(e.AP))
	return b
}

// encodeDelta appends a δ record payload to b.
func encodeDelta(b []byte, d event.DeviceID, delta time.Duration) []byte {
	b = append(b, recDelta)
	b = appendString(b, string(d))
	b = binary.AppendVarint(b, int64(delta))
	return b
}

// encodeLabel appends a room-label record payload to b.
func encodeLabel(b []byte, d event.DeviceID, r space.RoomID, t time.Time) []byte {
	b = append(b, recLabel)
	b = appendString(b, string(d))
	b = appendString(b, string(r))
	b = binary.AppendVarint(b, t.UnixNano())
	return b
}

// decoder is a cursor over an encoded payload with sticky error handling.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wal: truncated or malformed %s at offset %d", what, d.off)
	}
}

func (d *decoder) byte_() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)-d.off) < n {
		d.fail("string")
		return ""
	}
	v := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return v
}

func (d *decoder) remaining() int { return len(d.b) - d.off }

// --- Columnar event-block codec ---------------------------------------------
//
// A block is the encoded payload of one sealed event segment: a single
// device's sorted run of events in compressed columnar form. WiFi
// connectivity logs are highly redundant — a device re-associates with a
// handful of APs and timestamps are near-monotone with regular spacing — so
// the block dictionary-encodes AP IDs (a uvarint index into a per-block AP
// table) and stores timestamps as delta-of-delta varints (the first is
// absolute nanoseconds, the second a delta, the rest deltas of deltas, which
// are near zero for periodic beacons). Event IDs are delta varints. The
// device ID is not stored: segments are keyed by device, so the caller
// supplies it at decode time.
//
// Layout:
//
//	uvarint count
//	uvarint nAPs, then nAPs length-prefixed AP strings (first-appearance order)
//	per event: uvarint apIndex, varint ddTime, varint deltaID
//	4-byte LE CRC-32C over everything above
//
// The trailing CRC is verified before any field is parsed, so a corrupted
// segment file is refused at page-in rather than yielding garbage events.

// SegmentMeta describes one sealed, immutable event segment without decoding
// it: enough for the store to prune segment page-ins by time window and for
// the snapshot manifest to restore a device's segment list after a restart.
type SegmentMeta struct {
	// Seq is the segment's per-device sequence number (1-based, dense in
	// seal order). (Device, Seq) keys the payload in the SegmentBackend.
	Seq uint64
	// Count is the number of events in the block.
	Count int
	// MinNanos/MaxNanos bound the block's event times (inclusive).
	MinNanos int64
	MaxNanos int64
	// Bytes is the encoded payload size including the CRC trailer.
	Bytes int
}

// EncodeEventBlock appends the columnar block encoding of evs to dst and
// returns the extended slice. evs must be non-empty and sorted; all events
// must belong to the same device (the device is not encoded).
func EncodeEventBlock(dst []byte, evs []event.Event) []byte {
	start := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(evs)))
	apIdx := make(map[space.APID]uint64, 8)
	order := make([]space.APID, 0, 8)
	for i := range evs {
		if _, ok := apIdx[evs[i].AP]; !ok {
			apIdx[evs[i].AP] = uint64(len(order))
			order = append(order, evs[i].AP)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(order)))
	for _, ap := range order {
		dst = appendString(dst, string(ap))
	}
	var prevT, prevDelta, prevID int64
	for i := range evs {
		dst = binary.AppendUvarint(dst, apIdx[evs[i].AP])
		t := evs[i].Time.UnixNano()
		if i == 0 {
			dst = binary.AppendVarint(dst, t)
			dst = binary.AppendVarint(dst, evs[i].ID)
		} else {
			d := t - prevT
			dst = binary.AppendVarint(dst, d-prevDelta)
			dst = binary.AppendVarint(dst, evs[i].ID-prevID)
			prevDelta = d
		}
		prevT = t
		prevID = evs[i].ID
	}
	crc := crc32.Checksum(dst[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// DecodeEventBlock verifies the block's CRC, decodes its events for device
// dev, appends them to dst, and returns the extended slice. The CRC is
// checked before any field is parsed; on any error dst is returned with only
// fully decoded events appended and must be discarded by the caller.
func DecodeEventBlock(block []byte, dev event.DeviceID, dst []event.Event) ([]event.Event, error) {
	if len(block) < 4 {
		return dst, fmt.Errorf("wal: event block too short (%d bytes)", len(block))
	}
	body := block[:len(block)-4]
	want := binary.LittleEndian.Uint32(block[len(block)-4:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return dst, fmt.Errorf("wal: event block CRC mismatch (got %08x, want %08x)", got, want)
	}
	d := &decoder{b: body}
	count := d.uvarint()
	nAPs := d.uvarint()
	if d.err != nil {
		return dst, d.err
	}
	if nAPs > count || count > uint64(len(body)) {
		return dst, fmt.Errorf("wal: event block header implausible (count %d, aps %d, body %d bytes)", count, nAPs, len(body))
	}
	aps := make([]space.APID, nAPs)
	for i := range aps {
		aps[i] = space.APID(d.str())
	}
	var prevT, prevDelta, prevID int64
	for i := uint64(0); i < count; i++ {
		ai := d.uvarint()
		dd := d.varint()
		di := d.varint()
		if d.err != nil {
			return dst, d.err
		}
		if ai >= nAPs {
			return dst, fmt.Errorf("wal: event block AP index %d out of range (%d APs)", ai, nAPs)
		}
		var t, id int64
		if i == 0 {
			t, id = dd, di
		} else {
			prevDelta += dd
			t = prevT + prevDelta
			id = prevID + di
		}
		prevT, prevID = t, id
		dst = append(dst, event.Event{
			ID:     id,
			Device: dev,
			Time:   time.Unix(0, t).UTC(),
			AP:     aps[ai],
		})
	}
	if d.remaining() != 0 {
		return dst, fmt.Errorf("wal: %d trailing bytes after event block", d.remaining())
	}
	return dst, nil
}

// decodeRecord parses one record payload. Every byte must be consumed; a
// short or over-long payload is malformed.
func decodeRecord(payload []byte) (record, error) {
	d := &decoder{b: payload}
	var r record
	r.kind = d.byte_()
	switch r.kind {
	case recEvent:
		r.ev.ID = d.varint()
		r.ev.Device = event.DeviceID(d.str())
		r.ev.Time = time.Unix(0, d.varint()).UTC()
		r.ev.AP = space.APID(d.str())
	case recDelta:
		r.dev = event.DeviceID(d.str())
		r.delta = time.Duration(d.varint())
	case recLabel:
		r.dev = event.DeviceID(d.str())
		r.room = space.RoomID(d.str())
		r.at = time.Unix(0, d.varint()).UTC()
	default:
		if d.err == nil {
			return record{}, fmt.Errorf("wal: unknown record kind %d", r.kind)
		}
	}
	if d.err != nil {
		return record{}, d.err
	}
	if d.remaining() != 0 {
		return record{}, fmt.Errorf("wal: %d trailing bytes after record kind %d", d.remaining(), r.kind)
	}
	return r, nil
}
