package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// Snapshot format magics. V1 ("LOCSNAP1") is the original full-state form:
// every event of every device inlined. V2 ("LOCSNAP2") is the incremental
// form: only the mutable heads are inlined, and sealed segments appear as a
// metadata manifest — their payloads are already durable in the store's
// segment backend, so a checkpoint ships new heads plus new manifest
// entries instead of rewriting total history. Readers accept both formats;
// writers emit v1 via WriteSnapshot and v2 via WriteSnapshotV2.
const (
	snapMagic   = "LOCSNAP1"
	snapMagicV2 = "LOCSNAP2"
)

// SnapshotData is the state captured by a checkpoint: everything recovery
// needs without replaying the log from the beginning.
type SnapshotData struct {
	// NextID is the store's event-ID counter at capture time.
	NextID int64
	// Deltas are the per-device validity intervals δ(d).
	Deltas map[event.DeviceID]time.Duration
	// Events are the per-device event logs, each sorted by time: full logs
	// in a v1 snapshot, just the mutable heads in a v2 snapshot.
	Events map[event.DeviceID][]event.Event
	// Segments is the per-device sealed-segment manifest (v2 only; ignored
	// by the v1 writer). The referenced payloads must be durable in the
	// segment backend before the snapshot is published.
	Segments map[event.DeviceID][]SegmentMeta
	// Labels are the crowd-sourced room-label counts.
	Labels map[event.DeviceID]map[space.RoomID]int
}

// snapEncoder writes the snapshot body with sticky error handling.
type snapEncoder struct {
	w       io.Writer
	scratch [binary.MaxVarintLen64]byte
	err     error
}

func (e *snapEncoder) uvarint(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.scratch[:], v)
	_, e.err = e.w.Write(e.scratch[:n])
}

func (e *snapEncoder) varint(v int64) {
	if e.err != nil {
		return
	}
	n := binary.PutVarint(e.scratch[:], v)
	_, e.err = e.w.Write(e.scratch[:n])
}

func (e *snapEncoder) str(s string) {
	e.uvarint(uint64(len(s)))
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

// WriteSnapshot persists a checkpoint covering every record with LSN ≤ lsn,
// then compacts. Only the two newest snapshots are kept (the older one is
// the fallback if the newest is later found corrupt), and sealed segments
// are deleted only once no retained snapshot needs them — compaction
// reaches up to the OLDEST retained snapshot's LSN, so the fallback
// snapshot always still has its tail segments on disk. The file is written
// to a temporary name, synced, and renamed, so a crash mid-snapshot never
// leaves a half-written snapshot under the real name.
//
// The caller must guarantee that data actually reflects all records with
// LSN ≤ lsn and no records after it (locater.System captures both under its
// checkpoint lock).
func (w *WAL) WriteSnapshot(lsn uint64, data *SnapshotData) error {
	return w.publishSnapshot(lsn, data, snapMagic)
}

// WriteSnapshotV2 persists an incremental (format v2) checkpoint: data's
// Events hold only the mutable heads and Segments carries the sealed-
// segment manifest. The caller must have made the referenced segment
// payloads durable (store.SyncSegments) BEFORE calling this — publishing a
// manifest is the commit point of an incremental checkpoint, and it must
// never point at bytes a crash could lose. Prune/compaction semantics are
// identical to WriteSnapshot.
func (w *WAL) WriteSnapshotV2(lsn uint64, data *SnapshotData) error {
	return w.publishSnapshot(lsn, data, snapMagicV2)
}

func (w *WAL) publishSnapshot(lsn uint64, data *SnapshotData, magic string) error {
	w.snapMu.Lock()
	defer w.snapMu.Unlock()

	path := filepath.Join(w.dir, fmt.Sprintf("%s%020d%s", snapPrefix, lsn, snapSuffix))
	tmp := path + ".tmp"
	if err := writeSnapshotFile(tmp, lsn, data, magic); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: publishing snapshot: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}

	oldestRetained := w.pruneSnapshots(path, lsn)
	w.compact(oldestRetained)
	return nil
}

func writeSnapshotFile(path string, lsn uint64, data *SnapshotData, magic string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("wal: creating snapshot: %w", err)
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)

	if _, err := io.WriteString(bw, magic); err != nil {
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	// The CRC covers everything after the magic: the LSN and the body.
	crc := crc32.New(castagnoli)
	mw := io.MultiWriter(bw, crc)
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], lsn)
	if _, err := mw.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}

	enc := &snapEncoder{w: mw}
	enc.varint(data.NextID)

	devs := sortedKeys(data.Deltas)
	enc.uvarint(uint64(len(devs)))
	for _, d := range devs {
		enc.str(string(d))
		enc.varint(int64(data.Deltas[d]))
	}

	evDevs := sortedKeys(data.Events)
	enc.uvarint(uint64(len(evDevs)))
	for _, d := range evDevs {
		evs := data.Events[d]
		enc.str(string(d))
		enc.uvarint(uint64(len(evs)))
		for _, e := range evs {
			enc.varint(e.ID)
			enc.varint(e.Time.UnixNano())
			enc.str(string(e.AP))
		}
	}

	// The sealed-segment manifest sits between events and labels, only in
	// format v2: v1 keeps its original byte layout so pre-v2 snapshots stay
	// readable (and v1 files written by this version stay readable by
	// pre-v2 code).
	if magic == snapMagicV2 {
		segDevs := sortedKeys(data.Segments)
		enc.uvarint(uint64(len(segDevs)))
		for _, d := range segDevs {
			metas := data.Segments[d]
			enc.str(string(d))
			enc.uvarint(uint64(len(metas)))
			for _, m := range metas {
				enc.uvarint(m.Seq)
				enc.uvarint(uint64(m.Count))
				enc.varint(m.MinNanos)
				enc.varint(m.MaxNanos)
				enc.uvarint(uint64(m.Bytes))
			}
		}
	}

	labDevs := sortedKeys(data.Labels)
	enc.uvarint(uint64(len(labDevs)))
	for _, d := range labDevs {
		rooms := data.Labels[d]
		roomIDs := sortedKeys(rooms)
		enc.str(string(d))
		enc.uvarint(uint64(len(roomIDs)))
		for _, r := range roomIDs {
			enc.str(string(r))
			enc.uvarint(uint64(rooms[r]))
		}
	}
	if enc.err != nil {
		return fmt.Errorf("wal: writing snapshot: %w", enc.err)
	}

	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := bw.Write(sum[:]); err != nil {
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("wal: flushing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing snapshot: %w", err)
	}
	return f.Close()
}

func sortedKeys[K ~string, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// compact deletes sealed segments whose records are all at or below lsn —
// the oldest LSN any retained snapshot covers, so recovery from any of
// them still finds a contiguous tail. The active segment is never deleted.
func (w *WAL) compact(lsn uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	keep := w.sealed[:0]
	for _, seg := range w.sealed {
		if seg.lastLSN <= lsn {
			// Best-effort: a segment that cannot be removed now is retried
			// at the next checkpoint.
			if err := os.Remove(seg.path); err == nil || os.IsNotExist(err) {
				continue
			}
		}
		keep = append(keep, seg)
	}
	w.sealed = keep
}

// pruneSnapshots keeps the just-written snapshot plus the next newest one
// (a fallback if the newest is later found corrupt), deletes the rest, and
// returns the oldest retained snapshot's LSN — the compaction bound.
func (w *WAL) pruneSnapshots(newest string, newestLSN uint64) uint64 {
	oldestRetained := newestLSN
	snaps, err := listSnapshots(w.dir)
	if err != nil {
		return oldestRetained
	}
	kept := 0
	for i := len(snaps) - 1; i >= 0; i-- {
		if snaps[i].path == newest || kept < 2 {
			kept++
			if snaps[i].lsn < oldestRetained {
				oldestRetained = snaps[i].lsn
			}
			continue
		}
		os.Remove(snaps[i].path)
	}
	return oldestRetained
}

// RetainedSegmentManifests parses every retained snapshot file and returns
// their sealed-segment manifests (nil entries for v1 snapshots, which carry
// none). The union of these manifests plus the store's current refs is the
// cold tier's live set: a (device, seq) referenced by NO retained snapshot
// and no current ref can never be needed by recovery again, so checkpoint
// uses this to reclaim dead cold-tier records. Unreadable snapshots are
// skipped — a manifest that cannot be parsed keeps nothing alive, exactly as
// recovery itself would treat it.
func (w *WAL) RetainedSegmentManifests() ([]map[event.DeviceID][]SegmentMeta, error) {
	w.snapMu.Lock()
	defer w.snapMu.Unlock()
	snaps, err := listSnapshots(w.dir)
	if err != nil {
		return nil, err
	}
	manifests := make([]map[event.DeviceID][]SegmentMeta, 0, len(snaps))
	for _, sn := range snaps {
		var rec Recovered
		if _, err := readSnapshotFile(sn.path, &rec); err != nil {
			continue
		}
		if rec.Segments != nil {
			manifests = append(manifests, rec.Segments)
		}
	}
	return manifests, nil
}

type snapshotInfo struct {
	path string
	lsn  uint64
}

// listSnapshots returns the directory's snapshot files ordered by LSN.
func listSnapshots(dir string) ([]snapshotInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	var snaps []snapshotInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		lsn, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: unparseable snapshot name %q", name)
		}
		snaps = append(snaps, snapshotInfo{path: filepath.Join(dir, name), lsn: lsn})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].lsn < snaps[j].lsn })
	return snaps, nil
}

// loadNewestSnapshot loads the newest parseable snapshot into rec and
// returns its LSN. Corrupt snapshots fall back to the next older one (the
// segment-continuity check in Open catches a fallback that reaches past
// compacted segments). With snapshots present but none readable, recovery
// fails loudly instead of silently starting empty.
func loadNewestSnapshot(dir string, rec *Recovered) (uint64, error) {
	snaps, err := listSnapshots(dir)
	if err != nil {
		return 0, err
	}
	var lastErr error
	for i := len(snaps) - 1; i >= 0; i-- {
		lsn, err := readSnapshotFile(snaps[i].path, rec)
		if err != nil {
			lastErr = err
			continue
		}
		if lsn != snaps[i].lsn {
			lastErr = fmt.Errorf("wal: snapshot %s: header LSN %d does not match file name", filepath.Base(snaps[i].path), lsn)
			continue
		}
		return lsn, nil
	}
	if lastErr != nil {
		return 0, fmt.Errorf("wal: no readable snapshot: %w", lastErr)
	}
	return 0, nil
}

// readSnapshotFile parses one snapshot into rec, overwriting its state.
func readSnapshotFile(path string, rec *Recovered) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: reading snapshot: %w", err)
	}
	if len(data) < len(snapMagic)+8+4 {
		return 0, fmt.Errorf("wal: snapshot %s: bad header", filepath.Base(path))
	}
	magic := string(data[:len(snapMagic)])
	if magic != snapMagic && magic != snapMagicV2 {
		return 0, fmt.Errorf("wal: snapshot %s: bad header", filepath.Base(path))
	}
	body := data[len(snapMagic) : len(data)-4]
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return 0, fmt.Errorf("wal: snapshot %s: CRC mismatch", filepath.Base(path))
	}
	lsn := binary.LittleEndian.Uint64(body[:8])

	d := &decoder{b: body[8:]}
	nextID := d.varint()

	// Reset before filling: a previous (corrupt) snapshot attempt must not
	// leak partial state into this parse.
	rec.NextID = nextID
	rec.Events = nil
	rec.Deltas = make(map[event.DeviceID]time.Duration)
	rec.Labels = make(map[event.DeviceID]map[space.RoomID]int)
	rec.Segments = nil

	nDeltas := d.uvarint()
	for i := uint64(0); i < nDeltas && d.err == nil; i++ {
		dev := event.DeviceID(d.str())
		rec.Deltas[dev] = time.Duration(d.varint())
	}

	nDevs := d.uvarint()
	for i := uint64(0); i < nDevs && d.err == nil; i++ {
		dev := event.DeviceID(d.str())
		nEvs := d.uvarint()
		for j := uint64(0); j < nEvs && d.err == nil; j++ {
			ev := event.Event{
				ID:     d.varint(),
				Device: dev,
			}
			ev.Time = time.Unix(0, d.varint()).UTC()
			ev.AP = space.APID(d.str())
			rec.Events = append(rec.Events, ev)
			if ev.ID >= rec.NextID {
				rec.NextID = ev.ID + 1
			}
		}
	}

	if magic == snapMagicV2 {
		rec.Segments = make(map[event.DeviceID][]SegmentMeta)
		nSegDevs := d.uvarint()
		for i := uint64(0); i < nSegDevs && d.err == nil; i++ {
			dev := event.DeviceID(d.str())
			nSegs := d.uvarint()
			metas := make([]SegmentMeta, 0, nSegs)
			for j := uint64(0); j < nSegs && d.err == nil; j++ {
				metas = append(metas, SegmentMeta{
					Seq:      d.uvarint(),
					Count:    int(d.uvarint()),
					MinNanos: d.varint(),
					MaxNanos: d.varint(),
					Bytes:    int(d.uvarint()),
				})
			}
			if d.err == nil {
				rec.Segments[dev] = metas
			}
		}
	}

	nLabs := d.uvarint()
	for i := uint64(0); i < nLabs && d.err == nil; i++ {
		dev := event.DeviceID(d.str())
		nRooms := d.uvarint()
		m := make(map[space.RoomID]int, nRooms)
		for j := uint64(0); j < nRooms && d.err == nil; j++ {
			room := space.RoomID(d.str())
			m[room] = int(d.uvarint())
		}
		if d.err == nil {
			rec.Labels[dev] = m
		}
	}

	if d.err != nil {
		return 0, fmt.Errorf("wal: snapshot %s: %w", filepath.Base(path), d.err)
	}
	if d.remaining() != 0 {
		return 0, fmt.Errorf("wal: snapshot %s: %d trailing bytes", filepath.Base(path), d.remaining())
	}
	return lsn, nil
}
