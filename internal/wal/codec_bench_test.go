package wal

import (
	"testing"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// benchBlockEvents builds one segment-sized run of events shaped like real
// WiFi connectivity logs: a handful of APs, near-periodic timestamps with
// jitter, dense IDs.
func benchBlockEvents(n int) []event.Event {
	base := time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC)
	aps := []space.APID{"ap01", "ap02", "ap03", "ap07"}
	evs := make([]event.Event, n)
	t := base
	for i := range evs {
		evs[i] = event.Event{
			ID:     int64(1000 + i),
			Device: "bench-dev",
			Time:   t,
			AP:     aps[(i*7)%len(aps)],
		}
		t = t.Add(90*time.Second + time.Duration(i%11)*time.Second)
	}
	return evs
}

func BenchmarkEncodeEventBlock(b *testing.B) {
	evs := benchBlockEvents(32)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = EncodeEventBlock(buf[:0], evs)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(evs)), "ns/event")
}

func BenchmarkDecodeEventBlock(b *testing.B) {
	evs := benchBlockEvents(32)
	block := EncodeEventBlock(nil, evs)
	dst := make([]event.Event, 0, len(evs))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = DecodeEventBlock(block, "bench-dev", dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(evs)), "ns/event")
}
