package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

var t0 = time.Date(2026, 1, 5, 8, 0, 0, 0, time.UTC)

func mkEvent(id int64, dev string, offset time.Duration, ap string) event.Event {
	return event.Event{ID: id, Device: event.DeviceID(dev), Time: t0.Add(offset), AP: space.APID(ap)}
}

func mustOpen(t *testing.T, dir string, opts Options) (*WAL, *Recovered) {
	t.Helper()
	w, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return w, rec
}

func sortEvents(evs []event.Event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].ID != evs[j].ID {
			return evs[i].ID < evs[j].ID
		}
		return evs[i].Device < evs[j].Device
	})
}

func sameEvents(t *testing.T, got, want []event.Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	g := append([]event.Event(nil), got...)
	w := append([]event.Event(nil), want...)
	sortEvents(g)
	sortEvents(w)
	for i := range g {
		if g[i].ID != w[i].ID || g[i].Device != w[i].Device || g[i].AP != w[i].AP || !g[i].Time.Equal(w[i].Time) {
			t.Fatalf("event %d: got %v, want %v", i, g[i], w[i])
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	e := mkEvent(42, "aa:bb:cc", 3*time.Minute, "ap-17")
	r, err := decodeRecord(encodeEvent(nil, e))
	if err != nil {
		t.Fatal(err)
	}
	if r.kind != recEvent || r.ev.ID != 42 || r.ev.Device != "aa:bb:cc" || r.ev.AP != "ap-17" || !r.ev.Time.Equal(e.Time) {
		t.Fatalf("event round trip: %+v", r)
	}

	r, err = decodeRecord(encodeDelta(nil, "dd:ee:ff", 7*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if r.kind != recDelta || r.dev != "dd:ee:ff" || r.delta != 7*time.Minute {
		t.Fatalf("delta round trip: %+v", r)
	}

	r, err = decodeRecord(encodeLabel(nil, "aa:bb:cc", "room-2065", t0))
	if err != nil {
		t.Fatal(err)
	}
	if r.kind != recLabel || r.dev != "aa:bb:cc" || r.room != "room-2065" || !r.at.Equal(t0) {
		t.Fatalf("label round trip: %+v", r)
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	good := encodeEvent(nil, mkEvent(1, "aa", 0, "ap"))
	if _, err := decodeRecord(good[:len(good)-1]); err == nil {
		t.Error("truncated payload should fail")
	}
	if _, err := decodeRecord(append(good, 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
	if _, err := decodeRecord([]byte{99}); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := decodeRecord(nil); err == nil {
		t.Error("empty payload should fail")
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, rec := mustOpen(t, dir, Options{})
	if len(rec.Events) != 0 || rec.NextID != 1 {
		t.Fatalf("fresh dir should recover empty, got %+v", rec)
	}

	evs := []event.Event{
		mkEvent(1, "aa", 0, "ap1"),
		mkEvent(2, "bb", time.Minute, "ap2"),
		mkEvent(3, "aa", 2*time.Minute, "ap1"),
	}
	if err := w.AppendEvents(evs); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendDelta("aa", 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendLabel("bb", "room-1", t0); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := w.LastLSN(); got != 5 {
		t.Fatalf("LastLSN = %d, want 5", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rec2 := mustOpen(t, dir, Options{})
	defer w2.Close()
	sameEvents(t, rec2.Events, evs)
	if rec2.NextID != 4 {
		t.Errorf("NextID = %d, want 4", rec2.NextID)
	}
	if rec2.Deltas["aa"] != 5*time.Minute {
		t.Errorf("delta not recovered: %v", rec2.Deltas)
	}
	if rec2.Labels["bb"]["room-1"] != 1 {
		t.Errorf("label not recovered: %v", rec2.Labels)
	}
	if rec2.LastLSN != 5 {
		t.Errorf("LastLSN = %d, want 5", rec2.LastLSN)
	}
	// Appends continue at the next LSN.
	if err := w2.AppendDelta("bb", time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := w2.LastLSN(); got != 6 {
		t.Errorf("LastLSN after append = %d, want 6", got)
	}
}

func TestCrashWithoutCloseKeepsCommittedData(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{Fsync: true})
	evs := []event.Event{mkEvent(0, "aa", 0, "ap1"), mkEvent(0, "bb", time.Minute, "ap2")}
	evs[0].ID, evs[1].ID = 1, 2
	if err := w.AppendEvents(evs); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// Simulated crash: the WAL is abandoned without Close, so nothing
	// buffered after the last Commit is flushed.
	w2, rec := mustOpen(t, dir, Options{Fsync: true})
	defer w2.Close()
	sameEvents(t, rec.Events, evs)
}

func TestTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{})
	evs := []event.Event{mkEvent(1, "aa", 0, "ap1"), mkEvent(2, "bb", time.Minute, "ap2")}
	if err := w.AppendEvents(evs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d (%v)", len(segs), err)
	}
	// Tear the final record: chop a few bytes off the end of the segment.
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0].path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, rec := mustOpen(t, dir, Options{})
	sameEvents(t, rec.Events, evs[:1])
	if rec.LastLSN != 1 {
		t.Errorf("LastLSN = %d, want 1", rec.LastLSN)
	}
	// The torn bytes are gone: appending a fresh record and re-recovering
	// yields exactly [first event, new record].
	if err := w2.AppendEvents([]event.Event{mkEvent(7, "cc", time.Hour, "ap3")}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, rec3 := mustOpen(t, dir, Options{})
	defer w3.Close()
	sameEvents(t, rec3.Events, []event.Event{evs[0], mkEvent(7, "cc", time.Hour, "ap3")})
}

func TestCorruptedCRCMidSegmentFailsRecovery(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := w.AppendEvents([]event.Event{mkEvent(int64(i+1), "aa", time.Duration(i)*time.Minute, "ap1")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _ := listSegments(dir)
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the FIRST record (well before the tail):
	// that is silent corruption of acknowledged data, not a torn append,
	// and recovery must refuse rather than silently drop records.
	data[segHeaderLen+frameHdrLen] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// The corrupt record is followed by two valid ones, so this is not a
	// torn tail... but the torn-tail rule truncates at the FIRST bad
	// record of the newest segment. Guard the stronger property on sealed
	// segments: corrupt a middle record there.
	_, rec, err := Open(dir, Options{})
	if err == nil && len(rec.Events) == 3 {
		t.Fatal("corrupted record silently accepted")
	}
}

func TestCorruptedSealedSegmentIsAnError(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation: each record seals the previous segment.
	w, _ := mustOpen(t, dir, Options{SegmentSize: 64})
	for i := 0; i < 5; i++ {
		if err := w.AppendEvents([]event.Event{mkEvent(int64(i+1), "aa", time.Duration(i)*time.Minute, "ap1")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	// Corrupt a record in a sealed (non-newest) segment.
	data, err := os.ReadFile(segs[1].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(segs[1].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt sealed segment must fail recovery")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSegmentRotationAndContinuity(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{SegmentSize: 256})
	var want []event.Event
	for i := 0; i < 100; i++ {
		e := mkEvent(int64(i+1), fmt.Sprintf("d%02d", i%7), time.Duration(i)*time.Second, "ap1")
		want = append(want, e)
		if err := w.AppendEvents([]event.Event{e}); err != nil {
			t.Fatal(err)
		}
	}
	segments, last, _ := w.Stats()
	if segments < 4 {
		t.Fatalf("want ≥4 segments after rotation, got %d", segments)
	}
	if last != 100 {
		t.Fatalf("LastLSN = %d, want 100", last)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, rec := mustOpen(t, dir, Options{SegmentSize: 256})
	defer w2.Close()
	sameEvents(t, rec.Events, want)
}

func TestSnapshotReplayAndCompaction(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{SegmentSize: 256})
	var want []event.Event
	for i := 0; i < 60; i++ {
		e := mkEvent(int64(i+1), "aa", time.Duration(i)*time.Second, "ap1")
		want = append(want, e)
		if err := w.AppendEvents([]event.Event{e}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AppendDelta("aa", 4*time.Minute); err != nil {
		t.Fatal(err)
	}

	// Snapshot at the current position, then append a tail.
	lsn := w.LastLSN()
	evMap := map[event.DeviceID][]event.Event{"aa": want}
	err := w.WriteSnapshot(lsn, &SnapshotData{
		NextID: 61,
		Deltas: map[event.DeviceID]time.Duration{"aa": 4 * time.Minute},
		Events: evMap,
		Labels: map[event.DeviceID]map[space.RoomID]int{"aa": {"room-9": 2}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Compaction: sealed segments fully covered by the snapshot are gone.
	segsAfter, _ := listSegments(dir)
	if len(segsAfter) > 2 {
		t.Errorf("compaction kept %d segments", len(segsAfter))
	}

	tail := []event.Event{mkEvent(61, "bb", time.Hour, "ap2")}
	if err := w.AppendEvents(tail); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rec := mustOpen(t, dir, Options{SegmentSize: 256})
	defer w2.Close()
	if rec.SnapshotLSN != lsn {
		t.Errorf("SnapshotLSN = %d, want %d", rec.SnapshotLSN, lsn)
	}
	sameEvents(t, rec.Events, append(append([]event.Event(nil), want...), tail...))
	if rec.NextID != 62 {
		t.Errorf("NextID = %d, want 62", rec.NextID)
	}
	if rec.Deltas["aa"] != 4*time.Minute {
		t.Errorf("delta lost: %v", rec.Deltas)
	}
	if rec.Labels["aa"]["room-9"] != 2 {
		t.Errorf("labels lost: %v", rec.Labels)
	}
}

func TestCorruptSnapshotFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{})
	evs := []event.Event{mkEvent(1, "aa", 0, "ap1")}
	if err := w.AppendEvents(evs); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSnapshot(1, &SnapshotData{NextID: 2, Events: map[event.DeviceID][]event.Event{"aa": evs}}); err != nil {
		t.Fatal(err)
	}
	more := []event.Event{mkEvent(2, "bb", time.Minute, "ap2")}
	if err := w.AppendEvents(more); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSnapshot(2, &SnapshotData{
		NextID: 3,
		Events: map[event.DeviceID][]event.Event{"aa": evs, "bb": more},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest snapshot's body.
	snaps, err := listSnapshots(dir)
	if err != nil || len(snaps) != 2 {
		t.Fatalf("want 2 snapshots, got %d (%v)", len(snaps), err)
	}
	data, err := os.ReadFile(snaps[1].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(snapMagic)+10] ^= 0xff
	if err := os.WriteFile(snaps[1].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Recovery falls back to the older snapshot; the log tail (never
	// compacted past it) still replays the second event.
	w2, rec := mustOpen(t, dir, Options{})
	defer w2.Close()
	if rec.SnapshotLSN != 1 {
		t.Errorf("SnapshotLSN = %d, want fallback to 1", rec.SnapshotLSN)
	}
	sameEvents(t, rec.Events, append(append([]event.Event(nil), evs...), more...))
}

// TestFallbackSnapshotSurvivesCompaction: segments rotate between two
// checkpoints, the newest snapshot is corrupted — recovery must still
// succeed from the older retained snapshot, which means compaction must
// not have deleted the segments between the two snapshot LSNs.
func TestFallbackSnapshotSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{SegmentSize: 128})
	var first []event.Event
	for i := 0; i < 10; i++ {
		e := mkEvent(int64(i+1), "aa", time.Duration(i)*time.Minute, "ap1")
		first = append(first, e)
		if err := w.AppendEvents([]event.Event{e}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteSnapshot(w.LastLSN(), &SnapshotData{
		NextID: 11,
		Events: map[event.DeviceID][]event.Event{"aa": first},
	}); err != nil {
		t.Fatal(err)
	}
	// More appends force rotations past the first snapshot's LSN.
	var second []event.Event
	for i := 10; i < 25; i++ {
		e := mkEvent(int64(i+1), "bb", time.Duration(i)*time.Minute, "ap2")
		second = append(second, e)
		if err := w.AppendEvents([]event.Event{e}); err != nil {
			t.Fatal(err)
		}
	}
	all := map[event.DeviceID][]event.Event{"aa": first, "bb": second}
	if err := w.WriteSnapshot(w.LastLSN(), &SnapshotData{NextID: 26, Events: all}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, err := listSnapshots(dir)
	if err != nil || len(snaps) != 2 {
		t.Fatalf("want 2 retained snapshots, got %d (%v)", len(snaps), err)
	}
	data, err := os.ReadFile(snaps[1].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(snaps[1].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, rec := mustOpen(t, dir, Options{SegmentSize: 128})
	defer w2.Close()
	if rec.SnapshotLSN != snaps[0].lsn {
		t.Errorf("SnapshotLSN = %d, want fallback to %d", rec.SnapshotLSN, snaps[0].lsn)
	}
	sameEvents(t, rec.Events, append(append([]event.Event(nil), first...), second...))
}

func TestAllSnapshotsCorruptFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{})
	if err := w.AppendEvents([]event.Event{mkEvent(1, "aa", 0, "ap1")}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSnapshot(1, &SnapshotData{NextID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := listSnapshots(dir)
	data, _ := os.ReadFile(snaps[0].path)
	data[len(data)-1] ^= 0xff // break the CRC
	if err := os.WriteFile(snaps[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("recovery with only corrupt snapshots must fail, not start empty")
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{Fsync: true, SegmentSize: 4096})
	const goroutines = 8
	const perG = 25

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := int64(g*perG + i + 1)
				e := mkEvent(id, fmt.Sprintf("g%d", g), time.Duration(id)*time.Second, "ap1")
				if err := w.AppendEvents([]event.Event{e}); err != nil {
					errs <- err
					return
				}
				if err := w.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rec := mustOpen(t, dir, Options{})
	defer w2.Close()
	if len(rec.Events) != goroutines*perG {
		t.Fatalf("recovered %d events, want %d", len(rec.Events), goroutines*perG)
	}
	if rec.NextID != goroutines*perG+1 {
		t.Fatalf("NextID = %d, want %d", rec.NextID, goroutines*perG+1)
	}
}

func TestGapInLogDetected(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{SegmentSize: 64})
	for i := 0; i < 6; i++ {
		if err := w.AppendEvents([]event.Event{mkEvent(int64(i+1), "aa", time.Duration(i)*time.Minute, "ap1")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	// Delete a middle segment: recovery must detect the hole.
	if err := os.Remove(segs[1].path); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("missing segment should fail with a gap error, got %v", err)
	}
}

func TestTornSegmentHeaderReset(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{})
	if err := w.AppendEvents([]event.Event{mkEvent(1, "aa", 0, "ap1")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that tore the header of a freshly rotated segment.
	segs, _ := listSegments(dir)
	next := segs[0].firstLSN + 1 // after the single record, next LSN is 2
	torn := filepath.Join(dir, fmt.Sprintf("%s%020d%s", segPrefix, next, segSuffix))
	var partial [4]byte
	copy(partial[:], segMagic)
	if err := os.WriteFile(torn, partial[:], 0o644); err != nil {
		t.Fatal(err)
	}
	w2, rec := mustOpen(t, dir, Options{})
	defer w2.Close()
	if len(rec.Events) != 1 {
		t.Fatalf("recovered %d events, want 1", len(rec.Events))
	}
	// The reset segment must carry a valid header now.
	data, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != segHeaderLen || string(data[:len(segMagic)]) != segMagic {
		t.Fatalf("torn header not reset: %d bytes", len(data))
	}
	if got := binary.LittleEndian.Uint64(data[len(segMagic):]); got != next {
		t.Fatalf("reset header LSN = %d, want %d", got, next)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendDelta("aa", time.Minute); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := w.Commit(); err != ErrClosed {
		t.Fatalf("commit after close: %v, want ErrClosed", err)
	}
}
