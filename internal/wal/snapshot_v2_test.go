package wal

import (
	"os"
	"testing"
	"time"

	"locater/internal/event"
)

// TestSnapshotV2RoundTrip writes an incremental (v2) snapshot — mutable
// heads plus a sealed-segment manifest — and checks recovery returns both
// exactly, with the log tail replayed on top.
func TestSnapshotV2RoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{SegmentSize: 256})
	heads := map[event.DeviceID][]event.Event{}
	for i := 0; i < 20; i++ {
		e := mkEvent(int64(i+1), "aa", time.Duration(i)*time.Second, "ap1")
		heads["aa"] = append(heads["aa"], e)
		if err := w.AppendEvents([]event.Event{e}); err != nil {
			t.Fatal(err)
		}
	}
	manifest := map[event.DeviceID][]SegmentMeta{
		"aa": {
			{Seq: 1, Count: 512, MinNanos: 1000, MaxNanos: 2000, Bytes: 900},
			{Seq: 2, Count: 512, MinNanos: 1500, MaxNanos: 9000, Bytes: 905},
		},
		"bb": {
			{Seq: 1, Count: 7, MinNanos: -50, MaxNanos: 40, Bytes: 60},
		},
	}
	lsn := w.LastLSN()
	err := w.WriteSnapshotV2(lsn, &SnapshotData{
		NextID:   21,
		Deltas:   map[event.DeviceID]time.Duration{"aa": 4 * time.Minute},
		Events:   heads,
		Segments: manifest,
	})
	if err != nil {
		t.Fatal(err)
	}
	tail := []event.Event{mkEvent(21, "bb", time.Hour, "ap2")}
	if err := w.AppendEvents(tail); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rec := mustOpen(t, dir, Options{SegmentSize: 256})
	defer w2.Close()
	if rec.SnapshotLSN != lsn {
		t.Errorf("SnapshotLSN = %d, want %d", rec.SnapshotLSN, lsn)
	}
	sameEvents(t, rec.Events, append(append([]event.Event(nil), heads["aa"]...), tail...))
	if rec.Deltas["aa"] != 4*time.Minute {
		t.Errorf("delta lost: %v", rec.Deltas)
	}
	if len(rec.Segments) != 2 {
		t.Fatalf("recovered %d manifest devices, want 2: %v", len(rec.Segments), rec.Segments)
	}
	for dev, want := range manifest {
		got := rec.Segments[dev]
		if len(got) != len(want) {
			t.Fatalf("device %s: %d manifest entries, want %d", dev, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("device %s seg %d: %+v, want %+v", dev, i, got[i], want[i])
			}
		}
	}
}

// TestSnapshotV1StillReadable is the read-compat satellite: a v1 snapshot
// (full logs, no manifest) written by a pre-segment build must recover on
// the current one, with a nil manifest so the store replays everything
// through ingest.
func TestSnapshotV1StillReadable(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{})
	var evs []event.Event
	for i := 0; i < 10; i++ {
		e := mkEvent(int64(i+1), "aa", time.Duration(i)*time.Minute, "ap1")
		evs = append(evs, e)
		if err := w.AppendEvents([]event.Event{e}); err != nil {
			t.Fatal(err)
		}
	}
	err := w.WriteSnapshot(w.LastLSN(), &SnapshotData{
		NextID: 11,
		Events: map[event.DeviceID][]event.Event{"aa": evs},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rec := mustOpen(t, dir, Options{})
	defer w2.Close()
	sameEvents(t, rec.Events, evs)
	if rec.Segments != nil {
		t.Errorf("v1 snapshot recovered a segment manifest: %v", rec.Segments)
	}
	if rec.NextID != 11 {
		t.Errorf("NextID = %d, want 11", rec.NextID)
	}
}

// TestTornV2SnapshotFallsBack simulates a crash between shipping segments
// and durably publishing the manifest: the newest v2 snapshot file is torn,
// so recovery must come from the previous manifest plus the log tail —
// never from the half-written one.
func TestTornV2SnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{})
	evs := []event.Event{mkEvent(1, "aa", 0, "ap1")}
	if err := w.AppendEvents(evs); err != nil {
		t.Fatal(err)
	}
	firstManifest := map[event.DeviceID][]SegmentMeta{
		"aa": {{Seq: 1, Count: 3, MinNanos: 10, MaxNanos: 30, Bytes: 44}},
	}
	if err := w.WriteSnapshotV2(1, &SnapshotData{NextID: 2, Events: map[event.DeviceID][]event.Event{"aa": evs}, Segments: firstManifest}); err != nil {
		t.Fatal(err)
	}
	more := []event.Event{mkEvent(2, "bb", time.Minute, "ap2")}
	if err := w.AppendEvents(more); err != nil {
		t.Fatal(err)
	}
	secondManifest := map[event.DeviceID][]SegmentMeta{
		"aa": {{Seq: 1, Count: 3, MinNanos: 10, MaxNanos: 30, Bytes: 44}, {Seq: 2, Count: 5, MinNanos: 40, MaxNanos: 90, Bytes: 61}},
	}
	if err := w.WriteSnapshotV2(2, &SnapshotData{
		NextID:   3,
		Events:   map[event.DeviceID][]event.Event{"aa": evs, "bb": more},
		Segments: secondManifest,
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the newest snapshot mid-file: the body CRC no longer matches, as
	// after a crash that interrupted the write before the final fsync.
	snaps, err := listSnapshots(dir)
	if err != nil || len(snaps) != 2 {
		t.Fatalf("want 2 snapshots, got %d (%v)", len(snaps), err)
	}
	data, err := os.ReadFile(snaps[1].path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snaps[1].path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, rec := mustOpen(t, dir, Options{})
	defer w2.Close()
	if rec.SnapshotLSN != 1 {
		t.Errorf("SnapshotLSN = %d, want fallback to 1", rec.SnapshotLSN)
	}
	// The fallback manifest is the FIRST checkpoint's — one segment, not
	// two — and the tail replays the second device's event.
	if len(rec.Segments) != 1 || len(rec.Segments["aa"]) != 1 || rec.Segments["aa"][0] != firstManifest["aa"][0] {
		t.Fatalf("fallback manifest = %v, want %v", rec.Segments, firstManifest)
	}
	sameEvents(t, rec.Events, append(append([]event.Event(nil), evs...), more...))
}

// TestRetainedSegmentManifests checks the checkpoint-reclaim input: after
// several snapshots only the two newest are retained, and their manifests —
// not the pruned ones' — come back. An unreadable (corrupted) retained
// snapshot contributes nothing, matching what recovery itself would do.
func TestRetainedSegmentManifests(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{SegmentSize: 1 << 20})
	defer w.Close()
	manifestAt := func(seq uint64) map[event.DeviceID][]SegmentMeta {
		return map[event.DeviceID][]SegmentMeta{
			"aa": {{Seq: seq, Count: 4, MinNanos: 10, MaxNanos: 20, Bytes: 64}},
		}
	}
	for i := 1; i <= 3; i++ {
		if err := w.AppendEvents([]event.Event{mkEvent(int64(i), "aa", time.Duration(i)*time.Second, "ap1")}); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteSnapshotV2(w.LastLSN(), &SnapshotData{NextID: int64(i + 1), Segments: manifestAt(uint64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := w.RetainedSegmentManifests()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d retained manifests, want 2 (keep-two pruning)", len(got))
	}
	seqs := map[uint64]bool{}
	for _, m := range got {
		for _, sm := range m["aa"] {
			seqs[sm.Seq] = true
		}
	}
	if !seqs[2] || !seqs[3] || seqs[1] {
		t.Fatalf("retained manifests carry seqs %v, want exactly {2, 3}", seqs)
	}

	// Corrupt the older retained snapshot: it must silently drop out.
	snaps, err := listSnapshots(dir)
	if err != nil || len(snaps) != 2 {
		t.Fatalf("listSnapshots = %v, %v", snaps, err)
	}
	data, err := os.ReadFile(snaps[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(snaps[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = w.RetainedSegmentManifests()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("%d manifests after corrupting one, want 1", len(got))
	}
}
