package wal

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// segEvents builds n sorted same-device events with semi-regular spacing and
// a small AP alphabet — the shape real association logs have.
func segEvents(n int, seed int64) []event.Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]event.Event, n)
	at := t0
	for i := range evs {
		at = at.Add(time.Duration(1+rng.Intn(600)) * time.Second)
		evs[i] = event.Event{
			ID:     int64(100 + i),
			Device: "dev-a",
			Time:   at,
			AP:     space.APID([]string{"ap-1", "ap-2", "ap-3"}[rng.Intn(3)]),
		}
	}
	return evs
}

func TestEncodeSegmentRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 200} {
		for _, blockEvents := range []int{-1, 0, 1, 3, 64, 1000} {
			evs := segEvents(n, int64(n*1000+blockEvents))
			payload, metas := EncodeSegment(nil, evs, blockEvents)

			// The returned index and the parsed one must agree exactly
			// (modulo the trailer: EncodeSegment's Len excludes it only for
			// the region covered — both describe the same block ranges).
			parsed, dict, indexed, err := ParseSegmentIndex(payload)
			if err != nil || !indexed {
				t.Fatalf("n=%d be=%d: ParseSegmentIndex = (%v, %v)", n, blockEvents, indexed, err)
			}
			if len(dict) == 0 || len(dict) > 3 {
				t.Fatalf("n=%d be=%d: segment dictionary has %d APs", n, blockEvents, len(dict))
			}
			if len(parsed) != len(metas) {
				t.Fatalf("n=%d be=%d: %d parsed blocks, encoder returned %d", n, blockEvents, len(parsed), len(metas))
			}
			wantBlocks := 1
			if blockEvents > 0 && blockEvents < n {
				wantBlocks = (n + blockEvents - 1) / blockEvents
			}
			if len(parsed) != wantBlocks {
				t.Fatalf("n=%d be=%d: %d blocks, want %d", n, blockEvents, len(parsed), wantBlocks)
			}
			total := 0
			for i, m := range parsed {
				if m != metas[i] {
					t.Fatalf("n=%d be=%d: block %d parsed %+v, encoded %+v", n, blockEvents, i, m, metas[i])
				}
				total += m.Count
				// Every block must decode independently against its slice.
				sub, err := DecodeIndexedBlock(payload[m.Off:m.Off+m.Len], "dev-a", dict, m.MinNanos, nil)
				if err != nil {
					t.Fatalf("n=%d be=%d: block %d decode: %v", n, blockEvents, i, err)
				}
				if len(sub) != m.Count {
					t.Fatalf("n=%d be=%d: block %d decoded %d events, meta says %d", n, blockEvents, i, len(sub), m.Count)
				}
				// MinNanos is always the block's exact first event time.
				// MaxNanos is the exact last event time for the final block;
				// earlier blocks report the successor's min — an upper bound.
				if sub[0].Time.UnixNano() != m.MinNanos {
					t.Fatalf("n=%d be=%d: block %d min diverges from index", n, blockEvents, i)
				}
				last := sub[len(sub)-1].Time.UnixNano()
				if i == len(parsed)-1 {
					if last != m.MaxNanos {
						t.Fatalf("n=%d be=%d: final block max %d, index says %d", n, blockEvents, last, m.MaxNanos)
					}
				} else if last > m.MaxNanos || m.MaxNanos != parsed[i+1].MinNanos {
					t.Fatalf("n=%d be=%d: block %d conservative max %d (last event %d, next min %d)",
						n, blockEvents, i, m.MaxNanos, last, parsed[i+1].MinNanos)
				}
			}
			if total != n {
				t.Fatalf("n=%d be=%d: index counts sum to %d", n, blockEvents, total)
			}

			got, err := DecodeSegment(payload, "dev-a", nil)
			if err != nil {
				t.Fatalf("n=%d be=%d: DecodeSegment: %v", n, blockEvents, err)
			}
			sameEvents(t, got, evs)
		}
	}
}

// TestLegacySegmentStillReadable pins the v2 compatibility contract: a bare
// EncodeEventBlock payload (no index trailer) parses as unindexed and
// decodes through DecodeSegment unchanged.
func TestLegacySegmentStillReadable(t *testing.T) {
	evs := segEvents(40, 7)
	payload := EncodeEventBlock(nil, evs)
	metas, dict, indexed, err := ParseSegmentIndex(payload)
	if err != nil || indexed || metas != nil || dict != nil {
		t.Fatalf("legacy payload: ParseSegmentIndex = (%v, %v, %v, %v), want unindexed", metas, dict, indexed, err)
	}
	got, err := DecodeSegment(payload, "dev-a", nil)
	if err != nil {
		t.Fatalf("legacy payload: DecodeSegment: %v", err)
	}
	sameEvents(t, got, evs)
}

// TestSegmentRefusesEveryByteFlip flips every single byte of a
// block-indexed payload and requires DecodeSegment to refuse it: block
// corruption fails the block CRC, trailer corruption fails the index CRC or
// its validation, and magic corruption demotes the payload to the legacy
// interpretation whose whole-payload CRC then fails. Nothing may panic and
// nothing may decode silently.
func TestSegmentRefusesEveryByteFlip(t *testing.T) {
	evs := segEvents(48, 3)
	payload, _ := EncodeSegment(nil, evs, 8)
	mut := make([]byte, len(payload))
	for i := range payload {
		copy(mut, payload)
		mut[i] ^= 0x41
		if _, err := DecodeSegment(mut, "dev-a", nil); err == nil {
			t.Fatalf("byte %d of %d: corrupted payload decoded without error", i, len(payload))
		}
	}
}

// TestSegmentRefusesTruncation truncates the payload at every length — a
// torn cold-tier write can persist any prefix. Almost every truncation must
// be refused; the one structural exception is a prefix that IS exactly the
// first block, which is byte-identical to a valid legacy single-block
// payload and so decodes to a strict prefix of the events (the store's
// count-vs-manifest check catches that case one layer up). Silently
// decoding anything else is a failure.
func TestSegmentRefusesTruncation(t *testing.T) {
	evs := segEvents(32, 11)
	payload, _ := EncodeSegment(nil, evs, 8)
	for n := 0; n < len(payload); n++ {
		got, err := DecodeSegment(payload[:n], "dev-a", nil)
		if err != nil {
			continue
		}
		if len(got) >= len(evs) {
			t.Fatalf("truncation to %d of %d bytes decoded %d events without error", n, len(payload), len(got))
		}
		for i := range got {
			if got[i].ID != evs[i].ID || !got[i].Time.Equal(evs[i].Time) || got[i].AP != evs[i].AP {
				t.Fatalf("truncation to %d decoded non-prefix event %d", n, i)
			}
		}
	}
}

// TestParseSegmentIndexHostileCounts feeds trailers with absurd block
// counts/lengths and requires bounded, error-returning behavior (no huge
// allocations, no over-read panics).
func TestParseSegmentIndexHostileCounts(t *testing.T) {
	evs := segEvents(16, 5)
	payload, _ := EncodeSegment(nil, evs, 4)
	// Grow the declared trailer length past the payload.
	mut := append([]byte(nil), payload...)
	mut[len(mut)-8] = 0xff
	mut[len(mut)-7] = 0xff
	if _, _, _, err := ParseSegmentIndex(mut); err == nil {
		t.Fatal("oversized trailer length accepted")
	}
	// A tiny fabricated trailer claiming 2^60 blocks.
	hostile := append([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10}, make([]byte, 16)...)
	hostile = append(hostile, []byte{0, 0, 0, 0}...) // bogus CRC, will be refused
	hostile = append(hostile, byte(len(hostile)), 0, 0, 0)
	hostile = append(hostile, segIndexMagic...)
	if _, _, _, err := ParseSegmentIndex(hostile); err == nil {
		t.Fatal("hostile block count accepted")
	}
}

func FuzzParseSegmentIndex(f *testing.F) {
	evs := segEvents(32, 1)
	indexed, _ := EncodeSegment(nil, evs, 8)
	f.Add(indexed)
	f.Add(EncodeEventBlock(nil, evs))
	f.Add([]byte(segIndexMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		metas, dict, ok, err := ParseSegmentIndex(data)
		if err != nil || !ok {
			return
		}
		if len(dict) == 0 {
			t.Fatal("indexed parse returned an empty dictionary")
		}
		// A parse that succeeds must describe in-bounds, contiguous blocks;
		// decoding through it must never over-read (slicing would panic).
		off := 0
		for _, m := range metas {
			if m.Off != off || m.Len < 5 || m.Off+m.Len > len(data) {
				t.Fatalf("index meta out of bounds: %+v in %d bytes", m, len(data))
			}
			off = m.Off + m.Len
			_, _ = DecodeIndexedBlock(data[m.Off:m.Off+m.Len], "dev-a", dict, m.MinNanos, nil)
		}
	})
}

func FuzzDecodeSegment(f *testing.F) {
	evs := segEvents(24, 2)
	indexed, _ := EncodeSegment(nil, evs, 6)
	f.Add(indexed)
	f.Add(EncodeEventBlock(nil, evs[:4]))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic or over-read, whatever the bytes claim.
		_, _ = DecodeSegment(data, "dev-a", nil)
	})
}

// TestDecodeEventBlockHostileHeaders hand-crafts blocks whose CRC is valid
// but whose contents lie: implausible counts, AP indexes out of range,
// truncated varint streams, and trailing garbage. Each must be refused with
// an error — a valid checksum over hostile bytes is not a licence to decode.
func TestDecodeEventBlockHostileHeaders(t *testing.T) {
	seal := func(body []byte) []byte {
		crc := crc32.Checksum(body, castagnoli)
		return binary.LittleEndian.AppendUint32(body, crc)
	}
	cases := map[string][]byte{
		"count exceeds body":   seal(binary.AppendUvarint(binary.AppendUvarint(nil, 1<<40), 1)),
		"more APs than events": seal(binary.AppendUvarint(binary.AppendUvarint(nil, 2), 3)),
		"truncated varints": seal(append(
			// count=3, one AP "a", then only one complete event record.
			appendString(binary.AppendUvarint(binary.AppendUvarint(nil, 3), 1), "a"),
			0, 2, 2)),
		"ap index out of range": seal(append(
			appendString(binary.AppendUvarint(binary.AppendUvarint(nil, 1), 1), "a"),
			7, 2, 2)),
		"trailing bytes": seal(append(EncodeEventBlock(nil, segEvents(2, 3))[:0:0],
			append(func() []byte {
				b := EncodeEventBlock(nil, segEvents(2, 3))
				return b[:len(b)-4]
			}(), 0xEE)...)),
	}
	for name, block := range cases {
		if _, err := DecodeEventBlock(block, "dev-a", nil); err == nil {
			t.Errorf("%s: hostile block decoded without error", name)
		}
	}
}
