package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

const (
	segMagic     = "LOCWAL1\n"
	segHeaderLen = 16 // magic + little-endian first LSN
	frameHdrLen  = 8  // little-endian payload length + CRC-32C

	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".snap"

	// DefaultSegmentSize is the rotation threshold when Options.SegmentSize
	// is zero: large enough that steady ingest rarely rotates, small enough
	// that compaction after a snapshot reclaims space promptly.
	DefaultSegmentSize = 64 << 20

	// writerBufSize is the in-process buffer in front of the segment file.
	// Appends only copy into it; a flush (commit, rotation, close) moves the
	// buffered frames to the OS in one write.
	writerBufSize = 256 << 10
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("wal: closed")

// Options configures a WAL.
type Options struct {
	// Fsync makes Commit block until every record appended so far is on
	// stable storage. Commits are grouped: one fsync covers all appends
	// since the previous sync, so concurrent committers share the cost.
	// Without Fsync, Commit only flushes to the OS (data survives a process
	// crash but not a machine crash).
	Fsync bool
	// SegmentSize is the segment rotation threshold in bytes.
	// DefaultSegmentSize when zero or negative.
	SegmentSize int64
}

// segmentInfo describes a sealed (no longer written) segment. lastLSN is
// firstLSN-1 for a segment holding no records.
type segmentInfo struct {
	path     string
	firstLSN uint64
	lastLSN  uint64
}

// WAL is an append-only, segmented, CRC-checksummed write-ahead log. It is
// safe for concurrent use: appends serialize on an internal mutex (they only
// copy into a buffer), and durability waits ride a shared group commit.
type WAL struct {
	dir  string
	opts Options

	// mu guards the append path: active segment, buffer, LSN counter,
	// sealed-segment list.
	mu          sync.Mutex
	f           *os.File
	bw          *bufio.Writer
	size        int64 // bytes written to the active segment, header included
	activeFirst uint64
	nextLSN     uint64 // LSN the next appended record receives
	sealed      []segmentInfo
	failed      error // sticky: a write/sync error poisons the WAL
	closed      bool

	// Group commit state. A committer whose records are not yet durable
	// either becomes the leader (runs one flush+fsync covering everything
	// appended so far) or waits for the current leader's round.
	syncMu  sync.Mutex
	syncing bool
	durable uint64 // highest LSN known to be on stable storage
	syncCh  chan struct{}

	// snapMu serializes snapshot writing + compaction.
	snapMu sync.Mutex
}

// Recovered is the state rebuilt by Open: the newest valid snapshot plus the
// WAL tail replayed over it.
type Recovered struct {
	// NextID is the store's persisted event-ID counter: recovered stores
	// must never reissue an ID, even when the counter ran ahead of the
	// highest stored event ID.
	NextID int64
	// Events are the recovered connectivity events (snapshot events grouped
	// per device, then the WAL tail in log order).
	Events []event.Event
	// Deltas are the per-device validity intervals δ(d).
	Deltas map[event.DeviceID]time.Duration
	// Labels are the crowd-sourced room-label counts.
	Labels map[event.DeviceID]map[space.RoomID]int
	// Segments is the sealed-segment manifest from a format-v2 incremental
	// snapshot (nil for v1 snapshots or none): per-device metadata for the
	// segments whose payloads live in the store's segment backend. Events
	// then holds only the mutable heads plus the WAL tail — recovery
	// registers the manifest without re-decoding any sealed segment.
	Segments map[event.DeviceID][]SegmentMeta
	// SnapshotLSN is the LSN of the snapshot recovery started from (0 if
	// none); LastLSN is the position of the last valid record replayed.
	SnapshotLSN uint64
	LastLSN     uint64
}

func newRecovered() *Recovered {
	return &Recovered{
		NextID: 1,
		Deltas: make(map[event.DeviceID]time.Duration),
		Labels: make(map[event.DeviceID]map[space.RoomID]int),
	}
}

func (r *Recovered) apply(rec record) {
	switch rec.kind {
	case recEvent:
		r.Events = append(r.Events, rec.ev)
		if rec.ev.ID >= r.NextID {
			r.NextID = rec.ev.ID + 1
		}
	case recDelta:
		r.Deltas[rec.dev] = rec.delta
	case recLabel:
		m := r.Labels[rec.dev]
		if m == nil {
			m = make(map[space.RoomID]int)
			r.Labels[rec.dev] = m
		}
		m[rec.room]++
	}
}

// Open opens (or creates) a WAL directory, recovers its state, and returns
// the log positioned for appending. Recovery loads the newest valid snapshot
// and replays every later record; a torn final record — a crash mid-append —
// is truncated away. A checksum failure anywhere else is surfaced as an
// error rather than silently dropping acknowledged data.
func Open(dir string, opts Options) (*WAL, *Recovered, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}

	rec := newRecovered()
	snapLSN, err := loadNewestSnapshot(dir, rec)
	if err != nil {
		return nil, nil, err
	}
	rec.SnapshotLSN = snapLSN
	rec.LastLSN = snapLSN

	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}

	w := &WAL{
		dir:    dir,
		opts:   opts,
		syncCh: make(chan struct{}),
	}

	// expected is the next LSN the recovered state needs data for: records
	// below it are covered by the snapshot or already-replayed segments.
	expected := snapLSN + 1
	var lastActive uint64
	var activeSize int64
	for i, seg := range segs {
		if seg.firstLSN > expected {
			return nil, nil, fmt.Errorf("wal: gap in log: segment %s starts at LSN %d, want ≤ %d (missing segment or stale snapshot)",
				filepath.Base(seg.path), seg.firstLSN, expected)
		}
		isLast := i == len(segs)-1
		last, size, err := replaySegment(seg, snapLSN, rec, isLast)
		if err != nil {
			return nil, nil, err
		}
		if last+1 > expected {
			expected = last + 1
		}
		if isLast {
			lastActive, activeSize = last, size
		} else {
			w.sealed = append(w.sealed, segmentInfo{path: seg.path, firstLSN: seg.firstLSN, lastLSN: last})
		}
	}
	w.nextLSN = expected
	w.durable = expected - 1 // everything recovered is on disk already
	if rec.LastLSN < expected-1 {
		rec.LastLSN = expected - 1
	}

	switch {
	case len(segs) == 0:
		if err := w.createSegmentLocked(expected); err != nil {
			return nil, nil, err
		}
	case lastActive+1 < expected:
		// The newest segment ends before the recovered position — possible
		// when a non-fsync tail already covered by the snapshot was torn.
		// Appending into it would break the positional LSN numbering, so
		// seal it and start a fresh segment at the recovered position.
		active := segs[len(segs)-1]
		w.sealed = append(w.sealed, segmentInfo{path: active.path, firstLSN: active.firstLSN, lastLSN: expected - 1})
		if err := w.createSegmentLocked(expected); err != nil {
			return nil, nil, err
		}
	default:
		active := segs[len(segs)-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reopening active segment: %w", err)
		}
		w.f = f
		w.bw = bufio.NewWriterSize(f, writerBufSize)
		w.size = activeSize
		w.activeFirst = active.firstLSN
	}
	return w, rec, nil
}

// listSegments returns the directory's segment files ordered by first LSN.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	var segs []segmentInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: unparseable segment name %q", name)
		}
		segs = append(segs, segmentInfo{path: filepath.Join(dir, name), firstLSN: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	return segs, nil
}

// replaySegment reads one segment, applying records with LSN > snapLSN to
// rec. For the newest segment a malformed or torn trailing record is
// truncated away — the crash-recovery contract — while corruption anywhere
// else is an error. Returns the last LSN surviving in the file and the
// file's surviving byte size.
func replaySegment(seg segmentInfo, snapLSN uint64, rec *Recovered, isLast bool) (lastLSN uint64, size int64, err error) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: reading segment: %w", err)
	}
	if len(data) < segHeaderLen {
		if isLast {
			// A crash can tear the 16-byte header of a just-created
			// segment; reset it to an empty segment.
			if err := os.Truncate(seg.path, 0); err != nil {
				return 0, 0, fmt.Errorf("wal: resetting torn segment header: %w", err)
			}
			if err := writeHeader(seg.path, seg.firstLSN); err != nil {
				return 0, 0, err
			}
			return seg.firstLSN - 1, segHeaderLen, nil
		}
		return 0, 0, fmt.Errorf("wal: segment %s: short header", filepath.Base(seg.path))
	}
	if string(data[:len(segMagic)]) != segMagic {
		return 0, 0, fmt.Errorf("wal: segment %s: bad magic", filepath.Base(seg.path))
	}
	if hdrLSN := binary.LittleEndian.Uint64(data[len(segMagic):segHeaderLen]); hdrLSN != seg.firstLSN {
		return 0, 0, fmt.Errorf("wal: segment %s: header LSN %d does not match file name", filepath.Base(seg.path), hdrLSN)
	}

	truncate := func(off int, cause error) (uint64, int64, error) {
		if !isLast {
			return 0, 0, fmt.Errorf("wal: segment %s: corrupt record at offset %d: %v", filepath.Base(seg.path), off, cause)
		}
		if terr := os.Truncate(seg.path, int64(off)); terr != nil {
			return 0, 0, fmt.Errorf("wal: truncating torn record: %w", terr)
		}
		return lastLSN, int64(off), nil
	}

	lastLSN = seg.firstLSN - 1
	off := segHeaderLen
	for off < len(data) {
		payload, n, ferr := readFrame(data[off:])
		if ferr != nil {
			return truncate(off, ferr)
		}
		if lastLSN+1 > snapLSN {
			r, derr := decodeRecord(payload)
			if derr != nil {
				return truncate(off, derr)
			}
			rec.apply(r)
			rec.LastLSN = lastLSN + 1
		}
		lastLSN++
		off += n
	}
	return lastLSN, int64(len(data)), nil
}

// readFrame parses one length+CRC framed record at the start of b.
func readFrame(b []byte) (payload []byte, n int, err error) {
	if len(b) < frameHdrLen {
		return nil, 0, fmt.Errorf("short frame header (%d bytes)", len(b))
	}
	plen := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if uint64(len(b)-frameHdrLen) < uint64(plen) {
		return nil, 0, fmt.Errorf("frame length %d exceeds remaining %d bytes", plen, len(b)-frameHdrLen)
	}
	payload = b[frameHdrLen : frameHdrLen+int(plen)]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, errors.New("CRC mismatch")
	}
	return payload, frameHdrLen + int(plen), nil
}

// writeHeader writes a segment header at the start of an (empty) file.
func writeHeader(path string, firstLSN uint64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rewriting segment header: %w", err)
	}
	defer f.Close()
	var hdr [segHeaderLen]byte
	copy(hdr[:], segMagic)
	binary.LittleEndian.PutUint64(hdr[len(segMagic):], firstLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: rewriting segment header: %w", err)
	}
	return nil
}

// createSegmentLocked opens a fresh active segment whose first record will
// have the given LSN. Callers hold w.mu (or own the WAL exclusively during
// Open).
func (w *WAL) createSegmentLocked(firstLSN uint64) error {
	path := filepath.Join(w.dir, fmt.Sprintf("%s%020d%s", segPrefix, firstLSN, segSuffix))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:], segMagic)
	binary.LittleEndian.PutUint64(hdr[len(segMagic):], firstLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if w.opts.Fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: syncing segment header: %w", err)
		}
		if err := syncDir(w.dir); err != nil {
			f.Close()
			return err
		}
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, writerBufSize)
	w.size = segHeaderLen
	w.activeFirst = firstLSN
	return nil
}

// rotateLocked seals the active segment (flush + sync + close) and opens the
// next one. Callers hold w.mu.
func (w *WAL) rotateLocked() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flushing segment: %w", err)
	}
	// A sealed segment is always synced, even without Options.Fsync: it will
	// never be written again, so one fsync here makes compaction and
	// recovery reasoning uniform.
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing segment: %w", err)
	}
	path := w.f.Name()
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment: %w", err)
	}
	w.sealed = append(w.sealed, segmentInfo{path: path, firstLSN: w.activeFirst, lastLSN: w.nextLSN - 1})
	return w.createSegmentLocked(w.nextLSN)
}

// appendPayloads appends framed records and assigns them consecutive LSNs.
// The data lands in the in-process buffer only; call Commit for durability.
func (w *WAL) appendPayloads(payloads [][]byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.failed != nil {
		return w.failed
	}
	for _, p := range payloads {
		if w.size >= w.opts.SegmentSize {
			if err := w.rotateLocked(); err != nil {
				w.failed = err
				return err
			}
		}
		var hdr [frameHdrLen]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(p, castagnoli))
		if _, err := w.bw.Write(hdr[:]); err != nil {
			w.failed = fmt.Errorf("wal: append: %w", err)
			return w.failed
		}
		if _, err := w.bw.Write(p); err != nil {
			w.failed = fmt.Errorf("wal: append: %w", err)
			return w.failed
		}
		w.size += frameHdrLen + int64(len(p))
		w.nextLSN++
	}
	return nil
}

// AppendEvents logs a batch of acknowledged events (IDs assigned). It only
// buffers; the store calls Commit after releasing its lock so concurrent
// batches share one fsync.
func (w *WAL) AppendEvents(evs []event.Event) error {
	payloads := make([][]byte, len(evs))
	for i, e := range evs {
		payloads[i] = encodeEvent(make([]byte, 0, 24+len(e.Device)+len(e.AP)), e)
	}
	return w.appendPayloads(payloads)
}

// AppendDelta logs a per-device validity interval δ(d).
func (w *WAL) AppendDelta(d event.DeviceID, delta time.Duration) error {
	return w.appendPayloads([][]byte{encodeDelta(make([]byte, 0, 16+len(d)), d, delta)})
}

// AppendLabel logs a crowd-sourced room label.
func (w *WAL) AppendLabel(d event.DeviceID, r space.RoomID, t time.Time) error {
	return w.appendPayloads([][]byte{encodeLabel(make([]byte, 0, 24+len(d)+len(r)), d, r, t)})
}

// Commit makes every record appended so far durable. With Options.Fsync the
// call blocks until an fsync covers the caller's records; concurrent
// committers are grouped under a single fsync (group commit). Without Fsync
// it only flushes the in-process buffer to the OS.
func (w *WAL) Commit() error {
	if !w.opts.Fsync {
		w.mu.Lock()
		defer w.mu.Unlock()
		if w.closed {
			return ErrClosed
		}
		if w.failed != nil {
			return w.failed
		}
		if err := w.bw.Flush(); err != nil {
			w.failed = fmt.Errorf("wal: flush: %w", err)
			return w.failed
		}
		return nil
	}

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return err
	}
	target := w.nextLSN - 1
	w.mu.Unlock()
	return w.syncTo(target)
}

// syncTo blocks until all records with LSN ≤ target are on stable storage,
// electing at most one fsync leader at a time.
func (w *WAL) syncTo(target uint64) error {
	w.syncMu.Lock()
	for {
		if w.durable >= target {
			w.syncMu.Unlock()
			return nil
		}
		if !w.syncing {
			w.syncing = true
			w.syncMu.Unlock()

			w.mu.Lock()
			var err error
			var covered uint64
			switch {
			case w.closed:
				err = ErrClosed
			case w.failed != nil:
				err = w.failed
			default:
				covered = w.nextLSN - 1
				if err = w.bw.Flush(); err == nil {
					err = w.f.Sync()
				}
				if err != nil {
					err = fmt.Errorf("wal: sync: %w", err)
					w.failed = err
				}
			}
			w.mu.Unlock()

			w.syncMu.Lock()
			w.syncing = false
			if err == nil && covered > w.durable {
				w.durable = covered
			}
			close(w.syncCh)
			w.syncCh = make(chan struct{})
			if err != nil {
				w.syncMu.Unlock()
				return err
			}
			continue
		}
		ch := w.syncCh
		w.syncMu.Unlock()
		<-ch
		w.syncMu.Lock()
	}
}

// LastLSN returns the LSN of the most recently appended record.
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN - 1
}

// Stats reports the log's shape: segment count (sealed + active), the last
// assigned LSN, and the highest LSN known durable.
func (w *WAL) Stats() (segments int, lastLSN, durableLSN uint64) {
	w.mu.Lock()
	segments = len(w.sealed) + 1
	lastLSN = w.nextLSN - 1
	w.mu.Unlock()
	w.syncMu.Lock()
	durableLSN = w.durable
	w.syncMu.Unlock()
	return segments, lastLSN, durableLSN
}

// Close flushes, syncs, and closes the active segment. Further operations
// return ErrClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	var err error
	if w.failed == nil {
		if err = w.bw.Flush(); err == nil {
			err = w.f.Sync()
		}
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so renames/creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing dir: %w", err)
	}
	return nil
}
