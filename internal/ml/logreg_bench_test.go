package ml

import (
	"fmt"
	"testing"
)

func BenchmarkTrain(b *testing.B) {
	for _, n := range []int{100, 500} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			examples := linearlySeparable(n, 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Train(examples, 2, Options{Epochs: 100}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPredict(b *testing.B) {
	examples := linearlySeparable(200, 42)
	clf, err := Train(examples, 2, Options{Epochs: 100})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := clf.Predict(examples[i%len(examples)].Features); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVariance(b *testing.B) {
	probs := []float64{0.1, 0.2, 0.3, 0.4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Variance(probs)
	}
}
