package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// linearlySeparable builds a 2-class dataset split by x0 > 0.
func linearlySeparable(n int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Example, n)
	for i := range out {
		x0 := rng.NormFloat64()
		x1 := rng.NormFloat64()
		label := 0
		if x0 > 0 {
			label = 1
		}
		out[i] = Example{Features: []float64{x0*3 + 0.5*x1, x1}, Label: label}
	}
	return out
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, 2, Options{}); err != ErrNoData {
		t.Errorf("nil examples: err = %v, want ErrNoData", err)
	}
	ex := []Example{{Features: []float64{1}, Label: 0}}
	if _, err := Train(ex, 1, Options{}); err == nil {
		t.Error("numClasses < 2 should fail")
	}
	if _, err := Train([]Example{{Features: nil, Label: 0}}, 2, Options{}); err == nil {
		t.Error("zero-dim features should fail")
	}
	bad := []Example{{Features: []float64{1}, Label: 0}, {Features: []float64{1, 2}, Label: 1}}
	if _, err := Train(bad, 2, Options{}); err == nil {
		t.Error("ragged features should fail")
	}
	oob := []Example{{Features: []float64{1}, Label: 5}}
	if _, err := Train(oob, 2, Options{}); err == nil {
		t.Error("out-of-range label should fail")
	}
}

func TestTrainSeparable(t *testing.T) {
	examples := linearlySeparable(200, 42)
	clf, err := Train(examples, 2, Options{Epochs: 300})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, ex := range examples {
		_, label, err := clf.Predict(ex.Features)
		if err != nil {
			t.Fatal(err)
		}
		if label == ex.Label {
			correct++
		}
	}
	acc := float64(correct) / float64(len(examples))
	if acc < 0.95 {
		t.Errorf("training accuracy %.2f < 0.95 on separable data", acc)
	}
}

func TestTrainMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var examples []Example
	centers := [][]float64{{-4, 0}, {4, 0}, {0, 5}}
	for i := 0; i < 300; i++ {
		c := i % 3
		examples = append(examples, Example{
			Features: []float64{centers[c][0] + rng.NormFloat64()*0.5, centers[c][1] + rng.NormFloat64()*0.5},
			Label:    c,
		})
	}
	clf, err := Train(examples, 3, Options{Epochs: 400})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, ex := range examples {
		_, label, _ := clf.Predict(ex.Features)
		if label == ex.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(examples)); acc < 0.95 {
		t.Errorf("multiclass accuracy %.2f < 0.95", acc)
	}
	if clf.NumClasses() != 3 || clf.NumFeatures() != 2 {
		t.Errorf("dims = %d classes, %d features", clf.NumClasses(), clf.NumFeatures())
	}
}

func TestPredictProbabilitiesSumToOne(t *testing.T) {
	examples := linearlySeparable(100, 3)
	clf, err := Train(examples, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range examples[:10] {
		probs, _, err := clf.Predict(ex.Features)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range probs {
			if p < 0 || p > 1 {
				t.Fatalf("probability out of range: %v", probs)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

func TestPredictDimensionMismatch(t *testing.T) {
	clf, err := Train(linearlySeparable(50, 1), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := clf.Predict([]float64{1, 2, 3}); err == nil {
		t.Error("wrong feature count should fail")
	}
}

func TestTrainLossNonIncreasing(t *testing.T) {
	examples := linearlySeparable(150, 11)
	clf, err := Train(examples, 2, Options{Epochs: 150, LearningRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	losses := clf.TrainLoss()
	if len(losses) < 2 {
		t.Fatalf("too few loss samples: %d", len(losses))
	}
	for i := 1; i < len(losses); i++ {
		if losses[i] > losses[i-1]+1e-6 {
			t.Fatalf("loss increased at epoch %d: %v -> %v", i, losses[i-1], losses[i])
		}
	}
}

func TestDeterminism(t *testing.T) {
	examples := linearlySeparable(100, 5)
	a, err := Train(examples, 2, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(examples, 2, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range examples[:20] {
		pa, la, _ := a.Predict(ex.Features)
		pb, lb, _ := b.Predict(ex.Features)
		if la != lb {
			t.Fatal("labels differ across identical training runs")
		}
		for i := range pa {
			if math.Abs(pa[i]-pb[i]) > 1e-12 {
				t.Fatal("probabilities differ across identical training runs")
			}
		}
	}
}

func TestVariance(t *testing.T) {
	if Variance(nil) != 0 {
		t.Error("variance of empty slice should be 0")
	}
	flat := Variance([]float64{0.5, 0.5})
	peaked := Variance([]float64{0.99, 0.01})
	if flat != 0 {
		t.Errorf("flat variance = %v, want 0", flat)
	}
	if peaked <= flat {
		t.Error("peaked distribution should have higher variance than flat")
	}
	// Confidence ordering: more peaked → higher variance.
	mid := Variance([]float64{0.7, 0.3})
	if !(peaked > mid && mid > flat) {
		t.Errorf("variance ordering violated: %v %v %v", peaked, mid, flat)
	}
}

func TestScaler(t *testing.T) {
	examples := []Example{
		{Features: []float64{10, 5, 3}},
		{Features: []float64{20, 5, 1}},
		{Features: []float64{30, 5, 2}},
	}
	s := FitScaler(examples)
	// Constant feature (index 1) must pass through with std clamped to 1.
	if s.Std[1] != 1 {
		t.Errorf("constant feature std = %v, want 1", s.Std[1])
	}
	x := s.Transform([]float64{20, 5, 2})
	if math.Abs(x[0]) > 1e-9 {
		t.Errorf("mean-centered value = %v, want 0", x[0])
	}
	if math.Abs(x[1]) > 1e-9 {
		t.Errorf("constant feature transforms to %v, want 0", x[1])
	}
	// Empty scaler copies input.
	empty := &Scaler{}
	y := empty.Transform([]float64{1, 2})
	if y[0] != 1 || y[1] != 2 {
		t.Errorf("empty scaler mangled input: %v", y)
	}
}

func TestMajorityClassifier(t *testing.T) {
	m := &MajorityClassifier{Class: 1, Total: 10}
	probs, label := m.Predict(3)
	if label != 1 || probs[1] != 1 || probs[0] != 0 || probs[2] != 0 {
		t.Errorf("majority predict = %v %d", probs, label)
	}
	// Out-of-range class yields zero vector.
	m2 := &MajorityClassifier{Class: 5}
	probs, _ = m2.Predict(2)
	if probs[0] != 0 || probs[1] != 0 {
		t.Errorf("out-of-range majority = %v", probs)
	}
}

// Property: prediction arrays always sum to 1 and variance is non-negative
// and bounded by 0.25 for 2 classes.
func TestPredictionArrayProperty(t *testing.T) {
	examples := linearlySeparable(80, 123)
	clf, err := Train(examples, 2, Options{Epochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		probs, _, err := clf.Predict([]float64{a, b})
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range probs {
			sum += p
		}
		v := Variance(probs)
		return math.Abs(sum-1) < 1e-6 && v >= 0 && v <= 0.25+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
