// Package ml is LOCATER's machine-learning substrate: a from-scratch,
// stdlib-only multinomial (softmax) logistic regression with L2
// regularization, feature standardization, and the prediction-array variance
// that the semi-supervised self-training loop of the coarse-grained
// localization algorithm uses as its confidence score (paper Section 3).
package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Example is one training instance: a dense feature vector and an integer
// class label in [0, numClasses).
type Example struct {
	Features []float64
	Label    int
}

// Options configures training.
type Options struct {
	// Epochs is the number of full gradient-descent passes. Default 200.
	Epochs int
	// LearningRate is the GD step size. Default 0.1.
	LearningRate float64
	// L2 is the ridge penalty on weights (not biases). Default 1e-3.
	L2 float64
	// Seed drives deterministic weight initialization. Default 1.
	Seed int64
	// Tolerance stops training early when the loss improvement between
	// epochs falls below it. Default 1e-7 (set negative to disable).
	Tolerance float64
}

func (o Options) withDefaults() Options {
	if o.Epochs <= 0 {
		o.Epochs = 200
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.1
	}
	if o.L2 < 0 {
		o.L2 = 0
	} else if o.L2 == 0 {
		o.L2 = 1e-3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-7
	}
	return o
}

// Classifier is a trained softmax regression model. The zero value is not
// usable; construct with Train.
type Classifier struct {
	numClasses  int
	numFeatures int
	// weights[c][f], biases[c].
	weights [][]float64
	biases  []float64
	scaler  *Scaler
	// trainLoss records the regularized negative log-likelihood per epoch.
	trainLoss []float64
}

// ErrNoData is returned when Train receives no examples.
var ErrNoData = errors.New("ml: no training examples")

// Train fits a softmax logistic regression on the examples. numClasses must
// cover every label. Features are standardized internally; the scaler is
// stored in the classifier and applied on prediction.
func Train(examples []Example, numClasses int, opts Options) (*Classifier, error) {
	if len(examples) == 0 {
		return nil, ErrNoData
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("ml: numClasses %d < 2", numClasses)
	}
	nf := len(examples[0].Features)
	if nf == 0 {
		return nil, errors.New("ml: zero-dimensional features")
	}
	for i, ex := range examples {
		if len(ex.Features) != nf {
			return nil, fmt.Errorf("ml: example %d has %d features, want %d", i, len(ex.Features), nf)
		}
		if ex.Label < 0 || ex.Label >= numClasses {
			return nil, fmt.Errorf("ml: example %d has label %d outside [0,%d)", i, ex.Label, numClasses)
		}
	}
	opts = opts.withDefaults()

	scaler := FitScaler(examples)
	x := make([][]float64, len(examples))
	for i, ex := range examples {
		x[i] = scaler.Transform(ex.Features)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	c := &Classifier{
		numClasses:  numClasses,
		numFeatures: nf,
		weights:     make([][]float64, numClasses),
		biases:      make([]float64, numClasses),
		scaler:      scaler,
	}
	for k := 0; k < numClasses; k++ {
		c.weights[k] = make([]float64, nf)
		for f := 0; f < nf; f++ {
			c.weights[k][f] = (rng.Float64() - 0.5) * 0.01
		}
	}

	n := float64(len(examples))
	probs := make([]float64, numClasses)
	gradW := make([][]float64, numClasses)
	gradB := make([]float64, numClasses)
	for k := range gradW {
		gradW[k] = make([]float64, nf)
	}
	prevLoss := math.Inf(1)
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		for k := 0; k < numClasses; k++ {
			gradB[k] = 0
			for f := 0; f < nf; f++ {
				gradW[k][f] = 0
			}
		}
		loss := 0.0
		for i, ex := range examples {
			c.logits(x[i], probs)
			softmaxInPlace(probs)
			p := probs[ex.Label]
			if p < 1e-15 {
				p = 1e-15
			}
			loss -= math.Log(p)
			for k := 0; k < numClasses; k++ {
				d := probs[k]
				if k == ex.Label {
					d -= 1
				}
				gradB[k] += d
				xi := x[i]
				gw := gradW[k]
				for f := 0; f < nf; f++ {
					gw[f] += d * xi[f]
				}
			}
		}
		// L2 penalty and parameter update.
		for k := 0; k < numClasses; k++ {
			wk := c.weights[k]
			gw := gradW[k]
			for f := 0; f < nf; f++ {
				loss += 0.5 * opts.L2 * wk[f] * wk[f]
				g := gw[f]/n + opts.L2*wk[f]
				wk[f] -= opts.LearningRate * g
			}
			c.biases[k] -= opts.LearningRate * gradB[k] / n
		}
		loss /= n
		c.trainLoss = append(c.trainLoss, loss)
		if opts.Tolerance > 0 && prevLoss-loss < opts.Tolerance && epoch > 5 {
			break
		}
		prevLoss = loss
	}
	return c, nil
}

// logits writes w_k·x + b_k into out (len == numClasses).
func (c *Classifier) logits(x []float64, out []float64) {
	for k := 0; k < c.numClasses; k++ {
		s := c.biases[k]
		wk := c.weights[k]
		for f, v := range x {
			s += wk[f] * v
		}
		out[k] = s
	}
}

func softmaxInPlace(z []float64) {
	max := z[0]
	for _, v := range z[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range z {
		e := math.Exp(v - max)
		z[i] = e
		sum += e
	}
	for i := range z {
		z[i] /= sum
	}
}

// Predict returns the probability array over classes (summing to 1) and the
// arg-max label for the feature vector. This is the paper's
// Predict(classifier, gap) returning (prediction array, label).
func (c *Classifier) Predict(features []float64) ([]float64, int, error) {
	if len(features) != c.numFeatures {
		return nil, 0, fmt.Errorf("ml: predict with %d features, want %d", len(features), c.numFeatures)
	}
	x := c.scaler.Transform(features)
	probs := make([]float64, c.numClasses)
	c.logits(x, probs)
	softmaxInPlace(probs)
	best := 0
	for k := 1; k < c.numClasses; k++ {
		if probs[k] > probs[best] {
			best = k
		}
	}
	return probs, best, nil
}

// NumClasses returns the model's class count.
func (c *Classifier) NumClasses() int { return c.numClasses }

// NumFeatures returns the model's input dimensionality.
func (c *Classifier) NumFeatures() int { return c.numFeatures }

// TrainLoss returns the per-epoch regularized training loss (diagnostics).
func (c *Classifier) TrainLoss() []float64 { return c.trainLoss }

// Variance returns the population variance of a prediction array. The
// self-training loop uses it as the confidence of a prediction: a peaked
// distribution (one label much more likely than the rest) has high variance,
// a flat one has variance near zero (paper Section 3).
func Variance(probs []float64) float64 {
	if len(probs) == 0 {
		return 0
	}
	mean := 0.0
	for _, p := range probs {
		mean += p
	}
	mean /= float64(len(probs))
	v := 0.0
	for _, p := range probs {
		d := p - mean
		v += d * d
	}
	return v / float64(len(probs))
}

// Scaler standardizes features to zero mean and unit variance. Constant
// features pass through unchanged (their std is clamped to 1).
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler computes per-feature mean and standard deviation.
func FitScaler(examples []Example) *Scaler {
	if len(examples) == 0 {
		return &Scaler{}
	}
	nf := len(examples[0].Features)
	mean := make([]float64, nf)
	std := make([]float64, nf)
	for _, ex := range examples {
		for f, v := range ex.Features {
			mean[f] += v
		}
	}
	n := float64(len(examples))
	for f := range mean {
		mean[f] /= n
	}
	for _, ex := range examples {
		for f, v := range ex.Features {
			d := v - mean[f]
			std[f] += d * d
		}
	}
	for f := range std {
		std[f] = math.Sqrt(std[f] / n)
		if std[f] < 1e-12 {
			std[f] = 1
		}
	}
	return &Scaler{Mean: mean, Std: std}
}

// transformClamp bounds standardized features so that even adversarial
// inputs (±Inf, ±1e308) keep the downstream logits finite.
const transformClamp = 1e12

// Transform standardizes one feature vector (allocating a new slice).
// Non-finite and extreme values are clamped to keep predictions finite.
func (s *Scaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for f, v := range x {
		if f < len(s.Mean) {
			v = (v - s.Mean[f]) / s.Std[f]
		}
		switch {
		case math.IsNaN(v):
			v = 0
		case v > transformClamp:
			v = transformClamp
		case v < -transformClamp:
			v = -transformClamp
		}
		out[f] = v
	}
	return out
}

// MajorityClassifier is the degenerate fallback used when every training
// gap carries the same label (softmax needs ≥2 classes): it always predicts
// that label with probability 1.
type MajorityClassifier struct {
	Class int
	Total int
}

// Predict returns a one-hot probability array of the given width.
func (m *MajorityClassifier) Predict(width int) ([]float64, int) {
	probs := make([]float64, width)
	if m.Class >= 0 && m.Class < width {
		probs[m.Class] = 1
	}
	return probs, m.Class
}
