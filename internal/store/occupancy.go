package store

import (
	"sort"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// DefaultOccupancyBucket is the default width of the temporal occupancy
// index's time buckets. Ten minutes matches the default validity interval δ,
// so a typical neighbor window (±1 hour) touches about a dozen buckets.
const DefaultOccupancyBucket = 10 * time.Minute

// occupancyIndex is a time-bucketed inverted index over the event logs:
// bucket → AP → set of devices with at least one event at that AP inside
// the bucket. It serves ActiveDevices / ActiveDevicesAt in time proportional
// to the devices actually active in the window instead of a scan over every
// device log in the store.
//
// The index is derived state: it is maintained incrementally on the ingest
// path (under the store's exclusive lock), rebuilt from the logs when
// reconfigured or cloned, and reconstructed naturally during WAL replay and
// snapshot restore because both go through Ingest. It is never persisted.
//
// Membership is insensitive to event order, so out-of-order ingestion needs
// no special handling here; only the per-device verification of boundary
// buckets (see activeFromIndexLocked) needs sorted logs.
type occupancyIndex struct {
	width   time.Duration
	buckets map[int64]map[space.APID]map[event.DeviceID]struct{}
	// entries counts distinct (bucket, AP, device) triples — the index's
	// resident size.
	entries int
}

func newOccupancyIndex(width time.Duration) *occupancyIndex {
	if width <= 0 {
		width = DefaultOccupancyBucket
	}
	return &occupancyIndex{
		width:   width,
		buckets: make(map[int64]map[space.APID]map[event.DeviceID]struct{}),
	}
}

// bucketOf maps a timestamp to its bucket ordinal (floor division, so
// pre-epoch times bucket consistently too).
func (ix *occupancyIndex) bucketOf(t time.Time) int64 {
	n := t.UnixNano()
	w := int64(ix.width)
	b := n / w
	if n < 0 && n%w != 0 {
		b--
	}
	return b
}

// add records one event. Called with the store's exclusive lock held.
func (ix *occupancyIndex) add(e event.Event) {
	b := ix.bucketOf(e.Time)
	apm, ok := ix.buckets[b]
	if !ok {
		apm = make(map[space.APID]map[event.DeviceID]struct{})
		ix.buckets[b] = apm
	}
	devs, ok := apm[e.AP]
	if !ok {
		devs = make(map[event.DeviceID]struct{})
		apm[e.AP] = devs
	}
	if _, ok := devs[e.Device]; !ok {
		devs[e.Device] = struct{}{}
		ix.entries++
	}
}

// OccupancyStats reports the temporal occupancy index's shape and traffic.
type OccupancyStats struct {
	// Enabled reports whether the index is maintained; when false every
	// ActiveDevices lookup falls back to a scan over all device logs.
	Enabled bool
	// Bucket is the configured bucket width.
	Bucket time.Duration
	// Buckets is the number of non-empty time buckets; Entries counts
	// distinct (bucket, AP, device) triples.
	Buckets, Entries int
	// Lookups counts index-served ActiveDevices / ActiveDevicesAt calls;
	// FallbackScans counts calls answered by the full-scan path because the
	// index is disabled.
	Lookups, FallbackScans int64
}

// OccupancyStats returns the occupancy index's current size and counters.
func (s *Store) OccupancyStats() OccupancyStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := OccupancyStats{
		Lookups:       s.occLookups.Load(),
		FallbackScans: s.occFallbacks.Load(),
	}
	if s.occ != nil {
		st.Enabled = true
		st.Bucket = s.occ.width
		st.Buckets = len(s.occ.buckets)
		st.Entries = s.occ.entries
	}
	return st
}

// ConfigureOccupancy reconfigures the temporal occupancy index: a new bucket
// width (non-positive selects DefaultOccupancyBucket) or disabling it
// entirely (enabled=false), in which case ActiveDevices falls back to
// scanning every device log. The index is rebuilt from the logs in one
// pass — sealed segments are streamed block-at-a-time (decoded into a
// reused scratch buffer, never materialized as whole logs), so a rebuild
// over a mostly-sealed store allocates O(segment), not O(history). A
// segment that cannot be paged in is skipped (the index under-covers and
// boundary verification still keeps results exact for decodable devices)
// and counted in SegmentStats.DecodeFailures. ConfigureOccupancy may be
// called at any point, not only on an empty store.
func (s *Store) ConfigureOccupancy(width time.Duration, enabled bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !enabled {
		s.occ = nil
		return
	}
	ix := newOccupancyIndex(width)
	var scratch []event.Event
	for dev, lg := range s.logs {
		for _, ref := range lg.segs {
			var err error
			scratch, err = s.decodeSegmentEvents(dev, ref, scratch[:0])
			if err != nil {
				continue
			}
			for j := range scratch {
				ix.add(scratch[j])
			}
		}
		for _, e := range lg.head {
			ix.add(e)
		}
	}
	s.occ = ix
}

// ActiveDevices returns the devices that have at least one event with
// timestamp in [start, end], sorted. The fine-grained algorithm uses this to
// find candidate neighbor devices that are "online" around the query time.
func (s *Store) ActiveDevices(start, end time.Time) []event.DeviceID {
	return s.ActiveDevicesAt(nil, start, end)
}

// ActiveDevicesAt is the region-scoped variant of ActiveDevices: it returns
// the devices with at least one event in [start, end] at one of the given
// APs, sorted. aps == nil means "any AP" (exactly ActiveDevices); an empty
// non-nil slice matches nothing. Fine-grained neighbor discovery passes the
// APs whose region overlaps the query region, so only devices seen in that
// neighborhood are considered instead of filtering the whole campus after
// the fact.
func (s *Store) ActiveDevicesAt(aps []space.APID, start, end time.Time) []event.DeviceID {
	s.mu.RLock()
	if len(s.dirty) == 0 {
		out := s.activeDevicesLocked(aps, start, end)
		s.mu.RUnlock()
		return out
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Only logs knocked out of order get re-sorted: one out-of-order ingest
	// must not stall a neighbor lookup behind a pass over every log in the
	// store. (Deleting from the map inside the range is safe in Go;
	// ensureSorted removes each log it sorts.)
	for lg := range s.dirty {
		s.ensureSorted(lg)
	}
	return s.activeDevicesLocked(aps, start, end)
}

// activeDevicesLocked answers an active-devices lookup with a store lock
// held and all logs sorted: from the occupancy index when enabled, else by
// scanning every device log.
func (s *Store) activeDevicesLocked(aps []space.APID, start, end time.Time) []event.DeviceID {
	if s.occ != nil {
		s.occLookups.Add(1)
		return s.activeFromIndexLocked(aps, start, end)
	}
	s.occFallbacks.Add(1)
	var out []event.DeviceID
	for d, lg := range s.logs {
		if s.deviceActiveInWindowLocked(d, lg, aps, start, end) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// activeFromIndexLocked serves a lookup from the occupancy index. Devices
// found in an interior bucket (fully inside [start, end]) are confirmed
// outright; devices found only in the two boundary buckets — which may hold
// events just outside the window — are verified against their sorted log,
// so the result is exactly the brute-force scan's.
func (s *Store) activeFromIndexLocked(aps []space.APID, start, end time.Time) []event.DeviceID {
	if end.Before(start) {
		return nil
	}
	ix := s.occ
	bs, be := ix.bucketOf(start), ix.bucketOf(end)

	confirmed := make(map[event.DeviceID]struct{})
	candidates := make(map[event.DeviceID]struct{})
	collect := func(b int64) {
		apm, ok := ix.buckets[b]
		if !ok {
			return
		}
		boundary := b == bs || b == be
		addAll := func(devs map[event.DeviceID]struct{}) {
			for d := range devs {
				if boundary {
					candidates[d] = struct{}{}
				} else {
					confirmed[d] = struct{}{}
				}
			}
		}
		if aps == nil {
			for _, devs := range apm {
				addAll(devs)
			}
			return
		}
		for _, ap := range aps {
			if devs, ok := apm[ap]; ok {
				addAll(devs)
			}
		}
	}
	// A window much wider than the ingested history would walk mostly-empty
	// bucket ordinals; iterating the populated buckets is cheaper then.
	if span := be - bs + 1; span < 0 || span > int64(len(ix.buckets)) {
		for b := range ix.buckets {
			if b >= bs && b <= be {
				collect(b)
			}
		}
	} else {
		for b := bs; b <= be; b++ {
			collect(b)
		}
	}

	for d := range candidates {
		if _, ok := confirmed[d]; ok {
			continue
		}
		lg, ok := s.logs[d]
		if !ok {
			continue
		}
		if s.deviceActiveInWindowLocked(d, lg, aps, start, end) {
			confirmed[d] = struct{}{}
		}
	}
	if len(confirmed) == 0 {
		return nil
	}
	out := make([]event.DeviceID, 0, len(confirmed))
	for d := range confirmed {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// deviceActiveInWindowLocked reports whether a device has an event in
// [start, end] (at one of the given APs when aps is non-nil), across its
// head and sealed segments. Segment metadata prunes most decodes: segments
// disjoint from the window are skipped outright, and with no AP filter a
// segment endpoint inside the window confirms activity without decoding.
// Only boundary-straddling segments (or any overlap under an AP filter) are
// paged in, through the bounded cache. Caller holds a store lock; the head
// is sorted.
func (s *Store) deviceActiveInWindowLocked(d event.DeviceID, lg *deviceLog, aps []space.APID, start, end time.Time) bool {
	if windowHasAP(lg.head, aps, start, end) {
		return true
	}
	if len(lg.segs) == 0 || end.Before(start) {
		return false
	}
	startN, endN := clampedNanos(start), clampedNanos(end)
	for _, ref := range lg.segs {
		m := &ref.meta
		if m.MaxNanos < startN || m.MinNanos > endN {
			continue
		}
		// A segment endpoint inside the window guarantees an event inside
		// it (the endpoints are event times).
		if aps == nil && (m.MinNanos >= startN || m.MaxNanos <= endN) {
			return true
		}
		idx, err := s.blocksFor(d, ref)
		if err != nil {
			continue
		}
		blocks := idx.metas
		blo, bhi := blockRange(blocks, startN, endN)
		s.blockSkips.Add(int64(blo + len(blocks) - bhi))
		for bi := blo; bi < bhi; bi++ {
			// The same endpoint argument prunes at block granularity — but
			// only where the bound is an exact event time: every block's
			// MinNanos is, while MaxNanos is exact only for the final block
			// (earlier blocks carry their successor's min as a conservative
			// cap, see wal.BlockMeta).
			if aps == nil && (blocks[bi].MinNanos >= startN ||
				(bi == len(blocks)-1 && blocks[bi].MaxNanos <= endN)) {
				return true
			}
			evs, err := s.blockEventsCached(d, ref, idx, bi, nil)
			if err != nil {
				continue
			}
			if windowHasAP(evs, aps, start, end) {
				return true
			}
		}
	}
	return false
}

// windowHasAP reports whether a sorted event slice has an event in
// [start, end], at one of the given APs when aps is non-nil.
func windowHasAP(evs []event.Event, aps []space.APID, start, end time.Time) bool {
	lo := sort.Search(len(evs), func(i int) bool { return !evs[i].Time.Before(start) })
	hi := sort.Search(len(evs), func(i int) bool { return evs[i].Time.After(end) })
	if lo >= hi {
		return false
	}
	if aps == nil {
		return true
	}
	for _, e := range evs[lo:hi] {
		for _, ap := range aps {
			if e.AP == ap {
				return true
			}
		}
	}
	return false
}
