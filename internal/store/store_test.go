package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

var t0 = time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC)

func mk(dev string, offset time.Duration, ap string) event.Event {
	return event.Event{Device: event.DeviceID(dev), Time: t0.Add(offset), AP: space.APID(ap)}
}

func TestIngestAssignsIDs(t *testing.T) {
	s := New(0)
	n, err := s.Ingest([]event.Event{mk("a", 0, "x"), mk("a", time.Minute, "x")})
	if err != nil || n != 2 {
		t.Fatalf("Ingest = %d, %v", n, err)
	}
	evs := s.Events("a")
	if evs[0].ID == 0 || evs[1].ID == 0 || evs[0].ID == evs[1].ID {
		t.Errorf("IDs not assigned uniquely: %v", evs)
	}
	// Pre-set IDs preserved and sequence advances past them.
	e := mk("a", 2*time.Minute, "x")
	e.ID = 100
	if err := s.IngestOne(e); err != nil {
		t.Fatal(err)
	}
	if err := s.IngestOne(mk("a", 3*time.Minute, "x")); err != nil {
		t.Fatal(err)
	}
	evs = s.Events("a")
	if evs[3].ID <= 100 {
		t.Errorf("sequence did not advance past explicit ID: %v", evs[3].ID)
	}
}

func TestIngestValidation(t *testing.T) {
	s := New(0)
	if _, err := s.Ingest([]event.Event{{Device: "", Time: t0, AP: "x"}}); err == nil {
		t.Error("empty device should fail")
	}
	if _, err := s.Ingest([]event.Event{{Device: "d", Time: t0, AP: ""}}); err == nil {
		t.Error("empty AP should fail")
	}
	if _, err := s.Ingest([]event.Event{{Device: "d", AP: "x"}}); err == nil {
		t.Error("zero time should fail")
	}
}

func TestOutOfOrderIngest(t *testing.T) {
	s := New(0)
	for i := 10; i > 0; i-- {
		if err := s.IngestOne(mk("d", time.Duration(i)*time.Minute, "x")); err != nil {
			t.Fatal(err)
		}
	}
	evs := s.Events("d")
	for i := 1; i < len(evs); i++ {
		if evs[i].Time.Before(evs[i-1].Time) {
			t.Fatalf("events not sorted after out-of-order ingest: %v", evs)
		}
	}
}

func TestDeltas(t *testing.T) {
	s := New(0)
	if got := s.Delta("d"); got != DefaultDelta {
		t.Errorf("default delta = %v", got)
	}
	if err := s.SetDelta("d", 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := s.Delta("d"); got != 5*time.Minute {
		t.Errorf("delta = %v", got)
	}
	if err := s.SetDelta("d", 0); err == nil {
		t.Error("zero delta should fail")
	}
	s2 := New(7 * time.Minute)
	if got := s2.Delta("whatever"); got != 7*time.Minute {
		t.Errorf("configured default = %v", got)
	}
}

func TestEstimateDeltas(t *testing.T) {
	s := New(0)
	for i := 0; i < 30; i++ {
		if err := s.IngestOne(mk("d", time.Duration(i)*4*time.Minute, "x")); err != nil {
			t.Fatal(err)
		}
	}
	s.EstimateDeltas(0.9, time.Minute, time.Hour)
	if got := s.Delta("d"); got != 4*time.Minute {
		t.Errorf("estimated delta = %v, want 4m", got)
	}
}

func TestBoundsAndCounts(t *testing.T) {
	s := New(0)
	if _, _, ok := s.TimeBounds(); ok {
		t.Error("empty store should have no bounds")
	}
	s.Ingest([]event.Event{mk("a", time.Hour, "x"), mk("b", 0, "y"), mk("a", 2*time.Hour, "x")})
	min, max, ok := s.TimeBounds()
	if !ok || !min.Equal(t0) || !max.Equal(t0.Add(2*time.Hour)) {
		t.Errorf("bounds = %v %v %v", min, max, ok)
	}
	if s.NumEvents() != 3 || s.NumDevices() != 2 {
		t.Errorf("counts = %d events %d devices", s.NumEvents(), s.NumDevices())
	}
	if got := s.Devices(); !reflect.DeepEqual(got, []event.DeviceID{"a", "b"}) {
		t.Errorf("Devices = %v", got)
	}
}

func TestEventsBetween(t *testing.T) {
	s := New(0)
	for i := 0; i < 10; i++ {
		s.IngestOne(mk("d", time.Duration(i)*10*time.Minute, "x"))
	}
	got := s.EventsBetween("d", t0.Add(15*time.Minute), t0.Add(45*time.Minute))
	if len(got) != 3 {
		t.Errorf("EventsBetween returned %d, want 3", len(got))
	}
	if got := s.EventsBetween("nope", t0, t0.Add(time.Hour)); got != nil {
		t.Error("unknown device should return nil")
	}
}

func TestAtAndCurrentAP(t *testing.T) {
	s := New(0)
	s.SetDelta("d", 10*time.Minute)
	s.Ingest([]event.Event{mk("d", 0, "apA"), mk("d", 2*time.Hour, "apB")})

	v, g, err := s.At("d", t0.Add(5*time.Minute))
	if err != nil || v == nil || g != nil {
		t.Fatalf("At(5m) = %v %v %v", v, g, err)
	}
	ap, ok := s.CurrentAP("d", t0.Add(5*time.Minute))
	if !ok || ap != "apA" {
		t.Errorf("CurrentAP = %v %v", ap, ok)
	}
	_, g, err = s.At("d", t0.Add(time.Hour))
	if err != nil || g == nil {
		t.Fatalf("At(1h) should be a gap: %v %v", g, err)
	}
	if _, ok := s.CurrentAP("d", t0.Add(time.Hour)); ok {
		t.Error("CurrentAP inside a gap should fail")
	}
}

func TestActiveDevices(t *testing.T) {
	s := New(0)
	s.Ingest([]event.Event{
		mk("a", 0, "x"),
		mk("b", 30*time.Minute, "y"),
		mk("c", 3*time.Hour, "z"),
	})
	got := s.ActiveDevices(t0.Add(-time.Minute), t0.Add(time.Hour))
	if !reflect.DeepEqual(got, []event.DeviceID{"a", "b"}) {
		t.Errorf("ActiveDevices = %v", got)
	}
	got = s.ActiveDevices(t0.Add(4*time.Hour), t0.Add(5*time.Hour))
	if len(got) != 0 {
		t.Errorf("late window should be empty, got %v", got)
	}
}

func TestLastFirstEvents(t *testing.T) {
	s := New(0)
	s.Ingest([]event.Event{mk("d", 0, "x"), mk("d", time.Hour, "y")})
	e, ok := s.LastEventAtOrBefore("d", t0.Add(30*time.Minute))
	if !ok || e.AP != "x" {
		t.Errorf("LastEventAtOrBefore = %v %v", e, ok)
	}
	if _, ok := s.LastEventAtOrBefore("d", t0.Add(-time.Minute)); ok {
		t.Error("nothing before first event")
	}
	e, ok = s.FirstEventAfter("d", t0.Add(30*time.Minute))
	if !ok || e.AP != "y" {
		t.Errorf("FirstEventAfter = %v %v", e, ok)
	}
	if _, ok := s.FirstEventAfter("d", t0.Add(2*time.Hour)); ok {
		t.Error("nothing after last event")
	}
	if _, ok := s.LastEventAtOrBefore("zzz", t0); ok {
		t.Error("unknown device")
	}
	if _, ok := s.FirstEventAfter("zzz", t0); ok {
		t.Error("unknown device")
	}
}

func TestClone(t *testing.T) {
	s := New(0)
	s.SetDelta("d", 5*time.Minute)
	s.Ingest([]event.Event{mk("d", 0, "x")})
	c := s.Clone()
	// Mutating the clone must not affect the original.
	c.IngestOne(mk("d", time.Hour, "y"))
	c.SetDelta("d", time.Minute)
	if s.NumEvents() != 1 {
		t.Errorf("original gained events: %d", s.NumEvents())
	}
	if s.Delta("d") != 5*time.Minute {
		t.Errorf("original delta changed: %v", s.Delta("d"))
	}
	if c.NumEvents() != 2 {
		t.Errorf("clone has %d events", c.NumEvents())
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				dev := fmt.Sprintf("d%d", w)
				s.IngestOne(mk(dev, time.Duration(i)*time.Minute, "x"))
				s.Events(event.DeviceID(dev))
				s.ActiveDevices(t0, t0.Add(time.Hour))
				s.NumEvents()
			}
		}(w)
	}
	wg.Wait()
	if s.NumEvents() != 400 {
		t.Errorf("expected 400 events, got %d", s.NumEvents())
	}
}

// TestConcurrentOutOfOrderReads hammers every read method while another
// goroutine ingests *out-of-order* events, repeatedly knocking logs out of
// their sorted state. This exercises withSortedLog's shared-lock fast path
// racing against its exclusive sort-upgrade path (run under -race in CI).
func TestConcurrentOutOfOrderReads(t *testing.T) {
	s := New(0)
	const devices = 8
	for d := 0; d < devices; d++ {
		s.IngestOne(mk(fmt.Sprintf("d%d", d), time.Hour, "x"))
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			// Earlier than the seed event: marks the log unsorted.
			dev := fmt.Sprintf("d%d", i%devices)
			s.IngestOne(mk(dev, time.Duration(200-i)*time.Second, "x"))
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				dev := event.DeviceID(fmt.Sprintf("d%d", (i+w)%devices))
				tq := t0.Add(time.Duration(i%90) * time.Minute)
				if _, _, err := s.At(dev, tq); err != nil {
					t.Errorf("At: %v", err)
					return
				}
				evs := s.Events(dev)
				for j := 1; j < len(evs); j++ {
					if evs[j].Before(evs[j-1]) {
						t.Errorf("Events(%s) unsorted at %d", dev, j)
						return
					}
				}
				s.EventsBetween(dev, t0, t0.Add(time.Hour))
				s.LastEventAtOrBefore(dev, tq)
				s.FirstEventAfter(dev, tq)
				s.ActiveDevices(t0, t0.Add(time.Hour))
			}
		}(w)
	}
	wg.Wait()
	if got := s.NumEvents(); got != devices+200 {
		t.Errorf("NumEvents = %d, want %d", got, devices+200)
	}
}

// Property: EventsBetween equals a naive scan over Events.
func TestEventsBetweenProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(0)
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			s.IngestOne(mk("d", time.Duration(rng.Intn(10000))*time.Second, "x"))
		}
		for trial := 0; trial < 20; trial++ {
			a := t0.Add(time.Duration(rng.Intn(10000)) * time.Second)
			b := a.Add(time.Duration(rng.Intn(5000)) * time.Second)
			got := s.EventsBetween("d", a, b)
			var want []event.Event
			for _, e := range s.Events("d") {
				if !e.Time.Before(a) && !e.Time.After(b) {
					want = append(want, e)
				}
			}
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if !got[i].Time.Equal(want[i].Time) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: ActiveDevices equals the naive per-device window check.
func TestActiveDevicesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(0)
		for d := 0; d < 5; d++ {
			for i := 0; i < rng.Intn(20); i++ {
				s.IngestOne(mk(fmt.Sprintf("d%d", d), time.Duration(rng.Intn(10000))*time.Second, "x"))
			}
		}
		a := t0.Add(time.Duration(rng.Intn(10000)) * time.Second)
		b := a.Add(time.Duration(rng.Intn(5000)) * time.Second)
		got := s.ActiveDevices(a, b)
		gotSet := map[event.DeviceID]bool{}
		for _, d := range got {
			gotSet[d] = true
		}
		for _, d := range s.Devices() {
			want := false
			for _, e := range s.Events(d) {
				if !e.Time.Before(a) && !e.Time.After(b) {
					want = true
					break
				}
			}
			if want != gotSet[d] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestScanEvents: the zero-copy visitor must see exactly the EventsBetween
// window (sorted, even after out-of-order ingest), receive the device's δ,
// be invoked with an empty slice for an empty window, and not be invoked at
// all for unknown devices.
func TestScanEvents(t *testing.T) {
	s := New(0)
	base := time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC)
	// Ingest out of order so the scan has to trigger the lazy re-sort.
	s.Ingest([]event.Event{
		{Device: "d", Time: base.Add(30 * time.Minute), AP: "ap2"},
		{Device: "d", Time: base, AP: "ap1"},
		{Device: "d", Time: base.Add(10 * time.Minute), AP: "ap1"},
	})
	s.SetDelta("d", 7*time.Minute)

	start, end := base, base.Add(15*time.Minute)
	var got []event.Event
	var gotDelta time.Duration
	calls := 0
	found := s.ScanEvents("d", start, end, func(evs []event.Event, delta time.Duration) {
		calls++
		got = append(got, evs...) // copy out: the slice must not be retained
		gotDelta = delta
	})
	if !found || calls != 1 {
		t.Fatalf("found=%v calls=%d", found, calls)
	}
	if gotDelta != 7*time.Minute {
		t.Errorf("delta = %v", gotDelta)
	}
	want := s.EventsBetween("d", start, end)
	if len(got) != 2 || len(want) != 2 || got[0].AP != want[0].AP || !got[1].Time.Equal(want[1].Time) {
		t.Errorf("scan window = %v, EventsBetween = %v", got, want)
	}
	if got[0].Time.After(got[1].Time) {
		t.Error("scan saw unsorted events")
	}

	// Empty window: fn runs with an empty slice.
	calls = 0
	empty := true
	found = s.ScanEvents("d", base.Add(2*time.Hour), base.Add(3*time.Hour), func(evs []event.Event, _ time.Duration) {
		calls++
		empty = len(evs) == 0
	})
	if !found || calls != 1 || !empty {
		t.Errorf("empty window: found=%v calls=%d empty=%v", found, calls, empty)
	}

	// Unknown device: fn not invoked, found=false.
	if s.ScanEvents("ghost", start, end, func([]event.Event, time.Duration) { t.Error("fn called for ghost") }) {
		t.Error("ScanEvents(ghost) = true")
	}
}

// TestTimelineBetweenMatchesEventsBetween: the single-copy TimelineBetween
// must carry exactly the window EventsBetween reports.
func TestTimelineBetweenMatchesEventsBetween(t *testing.T) {
	s := New(0)
	base := time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC)
	var evs []event.Event
	for i := 0; i < 10; i++ {
		evs = append(evs, event.Event{Device: "d", Time: base.Add(time.Duration(9-i) * time.Minute), AP: "ap"})
	}
	s.Ingest(evs)
	start, end := base.Add(2*time.Minute), base.Add(6*time.Minute)
	tl, err := s.TimelineBetween("d", start, end)
	if err != nil {
		t.Fatal(err)
	}
	want := s.EventsBetween("d", start, end)
	if len(tl.Events) != len(want) {
		t.Fatalf("timeline %d events, want %d", len(tl.Events), len(want))
	}
	for i := range want {
		if !tl.Events[i].Time.Equal(want[i].Time) {
			t.Errorf("event %d: %v vs %v", i, tl.Events[i].Time, want[i].Time)
		}
	}
	if tl.Delta != s.Delta("d") {
		t.Errorf("delta = %v", tl.Delta)
	}
	// Unknown device: empty timeline, no error (NewTimeline semantics).
	tl, err = s.TimelineBetween("ghost", start, end)
	if err != nil || len(tl.Events) != 0 {
		t.Errorf("ghost timeline: %v, %v", tl.Events, err)
	}
}
