package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"locater/internal/event"
)

// bigPayload builds a payload large enough that a handful of dead copies
// clear the reclaim gates (reclaimMinDeadBytes and the dead-fraction bound).
func bigPayload(fill byte, n int) []byte {
	return bytes.Repeat([]byte{fill}, n)
}

func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, ".seg") {
			total += info.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

// TestDiskBackendReclaimDropsDeadRecords fills a device file with
// superseded and orphaned records and checks Reclaim rewrites it down to
// the live set, keeps every live payload readable (in this process and
// after a reload), and reports the reclaimed bytes.
func TestDiskBackendReclaimDropsDeadRecords(t *testing.T) {
	dir := t.TempDir()
	b, err := NewDiskSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	rb := b.(ReclaimableBackend)
	// Seq 1 superseded twice (two dead copies), seq 2 orphaned by
	// compaction, seq 3 live, seq 4 above the floor.
	for i := 0; i < 2; i++ {
		if err := b.Put("d", 1, bigPayload('x', 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Put("d", 1, bigPayload('a', 4096)); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("d", 2, bigPayload('o', 4096)); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("d", 3, bigPayload('b', 4096)); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("d", 4, bigPayload('c', 4096)); err != nil {
		t.Fatal(err)
	}
	before := dirSize(t, dir)

	live := map[event.DeviceID]LiveSegments{"d": {Seqs: []uint64{1, 3}, Floor: 4}}
	reclaimed, err := rb.Reclaim(live)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed <= 0 {
		t.Fatalf("reclaimed %d bytes, want > 0", reclaimed)
	}
	after := dirSize(t, dir)
	if after >= before {
		t.Fatalf("file did not shrink: %d -> %d", before, after)
	}
	check := func(bk SegmentBackend, label string) {
		t.Helper()
		for seq, fill := range map[uint64]byte{1: 'a', 3: 'b', 4: 'c'} {
			p, err := bk.Get("d", seq)
			if err != nil {
				t.Fatalf("%s: live seq %d lost: %v", label, seq, err)
			}
			if !bytes.Equal(p, bigPayload(fill, 4096)) {
				t.Fatalf("%s: live seq %d payload corrupted by rewrite", label, seq)
			}
		}
		if _, err := bk.Get("d", 2); err == nil {
			t.Fatalf("%s: dead seq 2 still served after reclaim", label)
		}
	}
	check(b, "in-process")
	if sb, ok := b.(StatsBackend); ok {
		st := sb.BackendStats()
		if st.Rewrites != 1 || st.ReclaimedBytes != reclaimed {
			t.Fatalf("stats = %+v, want 1 rewrite / %d reclaimed", st, reclaimed)
		}
	}
	// The rewrite must be durable and torn-free on reload.
	b2, err := NewDiskSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	check(b2, "reloaded")

	// A second pass with nothing dead is a no-op: gates skip clean files.
	if reclaimed, err = rb.Reclaim(live); err != nil || reclaimed != 0 {
		t.Fatalf("idle reclaim = (%d, %v), want (0, nil)", reclaimed, err)
	}
}

// TestDiskBackendReclaimSkipsSmallDeadFractions checks both gates: a file
// whose dead bytes are below the absolute floor, or a small fraction of the
// file, is left alone — rewriting it would cost more IO than it frees.
func TestDiskBackendReclaimSkipsSmallDeadFractions(t *testing.T) {
	dir := t.TempDir()
	b, err := NewDiskSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	rb := b.(ReclaimableBackend)
	// 64 KiB live, ~4.1 KiB dead: above the absolute floor but well under a
	// quarter of the file.
	if err := b.Put("d", 1, bigPayload('x', 4200)); err != nil { // superseded
		t.Fatal(err)
	}
	if err := b.Put("d", 1, bigPayload('a', 4200)); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(2); seq <= 16; seq++ {
		if err := b.Put("d", seq, bigPayload(byte(seq), 4096)); err != nil {
			t.Fatal(err)
		}
	}
	before := dirSize(t, dir)
	live := map[event.DeviceID]LiveSegments{"d": {Floor: 1}}
	reclaimed, err := rb.Reclaim(live)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 0 || dirSize(t, dir) != before {
		t.Fatalf("low-dead-fraction file was rewritten (%d bytes reclaimed)", reclaimed)
	}
}

// TestReclaimTornRewriteRecovery simulates a crash mid-rewrite: a stale
// temporary file sits next to the real segment file. The live file must win
// on reload (the tmp is never read), a later reclaim must succeed by
// truncating over the debris, and live payloads survive throughout.
func TestReclaimTornRewriteRecovery(t *testing.T) {
	dir := t.TempDir()
	b, err := NewDiskSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("d", 1, bigPayload('x', 4096)); err != nil { // dead after supersede
		t.Fatal(err)
	}
	if err := b.Put("d", 1, bigPayload('a', 4096)); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("d", 2, bigPayload('b', 4096)); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*", "*.seg"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected one segment file, got %v (%v)", matches, err)
	}
	// The torn rewrite: a half-written tmp with garbage, as a crash between
	// tmp creation and rename leaves it.
	torn := matches[0] + segTmpSuffix
	if err := os.WriteFile(torn, []byte("garbage-half-rewrite"), 0o644); err != nil {
		t.Fatal(err)
	}

	b2, err := NewDiskSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	for seq, fill := range map[uint64]byte{1: 'a', 2: 'b'} {
		p, err := b2.Get("d", seq)
		if err != nil || !bytes.Equal(p, bigPayload(fill, 4096)) {
			t.Fatalf("seq %d lost after torn rewrite: %v", seq, err)
		}
	}
	reclaimed, err := b2.(ReclaimableBackend).Reclaim(map[event.DeviceID]LiveSegments{"d": {Seqs: []uint64{1, 2}, Floor: 3}})
	if err != nil {
		t.Fatalf("reclaim over torn tmp: %v", err)
	}
	if reclaimed <= 0 {
		t.Fatal("reclaim dropped nothing despite a dead superseded record")
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("tmp debris still present after successful rewrite: %v", err)
	}
	p, err := b2.Get("d", 1)
	if err != nil || !bytes.Equal(p, bigPayload('a', 4096)) {
		t.Fatalf("seq 1 lost after recovery rewrite: %v", err)
	}
}

// TestMmapBackendLifecycle drives the mmap backend through its lifecycle:
// map on first view, serve reads from the mapping, remap after growth,
// survive a reclaim-triggered rewrite mid-view (the doomed-mapping path),
// and unmap on close.
func TestMmapBackendLifecycle(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	dir := t.TempDir()
	b, err := NewMmapSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	vb := b.(ViewBackend)
	sb := b.(StatsBackend)
	if err := b.Put("d", 1, bigPayload('a', 4096)); err != nil {
		t.Fatal(err)
	}
	view := func(seq uint64, want byte) {
		t.Helper()
		err := vb.View("d", seq, func(p []byte) error {
			if !bytes.Equal(p, bigPayload(want, 4096)) {
				t.Fatalf("seq %d view diverges from payload", seq)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	view(1, 'a')
	st := sb.BackendStats()
	if st.MappedFiles != 1 || st.MappedBytes == 0 {
		t.Fatalf("after first view stats = %+v, want one live mapping", st)
	}

	// Growth: a Put after the mapping was established lands beyond the
	// mapped prefix; the next view of it must remap.
	if err := b.Put("d", 2, bigPayload('b', 4096)); err != nil {
		t.Fatal(err)
	}
	view(2, 'b')
	if st2 := sb.BackendStats(); st2.Remaps <= st.Remaps {
		t.Fatalf("no remap recorded after growth: %+v", st2)
	}

	// Doomed-mapping path: trigger a rewrite while a view is outstanding.
	// The borrowed slice must stay valid for the whole view (munmap is
	// deferred until the last reference drops) and the rewrite must land.
	if err := b.Put("d", 1, bigPayload('A', 4096)); err != nil { // supersede: dead bytes
		t.Fatal(err)
	}
	err = vb.View("d", 2, func(p []byte) error {
		if _, err := b.(ReclaimableBackend).Reclaim(map[event.DeviceID]LiveSegments{"d": {Seqs: []uint64{1, 2}, Floor: 3}}); err != nil {
			return err
		}
		// Touch every page of the old mapping after the rewrite: if the
		// backend unmapped eagerly this faults.
		if !bytes.Equal(p, bigPayload('b', 4096)) {
			t.Fatal("view bytes changed under a concurrent rewrite")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	view(1, 'A')
	view(2, 'b')
	if st3 := sb.BackendStats(); st3.Rewrites != 1 {
		t.Fatalf("rewrite not recorded: %+v", st3)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMmapBackendReloadServesRewrittenFile checks the full crash cycle with
// mmap on: rewrite, reload, map again, read everything back.
func TestMmapBackendReloadServesRewrittenFile(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	dir := t.TempDir()
	b, err := NewMmapSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("d", 1, bigPayload('x', 8192)); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("d", 1, bigPayload('a', 8192)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.(ReclaimableBackend).Reclaim(map[event.DeviceID]LiveSegments{"d": {Seqs: []uint64{1}, Floor: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := NewMmapSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	err = b2.(ViewBackend).View("d", 1, func(p []byte) error {
		if !bytes.Equal(p, bigPayload('a', 8192)) {
			t.Fatal("rewritten payload lost across reload")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
