package store

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// newSegmented returns a store sealing heads at max events; newSliceOracle
// returns one with sealing disabled (plain slices), the pre-segment layout
// every segmented read path must reproduce exactly.
func newSegmented(t *testing.T, max int) *Store {
	t.Helper()
	s := New(0)
	if err := s.ConfigureSegments(SegmentConfig{MaxEvents: max}); err != nil {
		t.Fatal(err)
	}
	return s
}

func newSliceOracle(t *testing.T) *Store {
	t.Helper()
	s := New(0)
	if err := s.ConfigureSegments(SegmentConfig{MaxEvents: -1}); err != nil {
		t.Fatal(err)
	}
	return s
}

func eventsEqual(a, b []event.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Device != b[i].Device || a[i].AP != b[i].AP || !a[i].Time.Equal(b[i].Time) {
			return false
		}
	}
	return true
}

// TestSealRegistersSegments checks the seal lifecycle: heads compress into
// segments at the threshold, counters track the shape, and the full log
// round-trips through the encoded payloads.
func TestSealRegistersSegments(t *testing.T) {
	s := newSegmented(t, 4)
	var want []event.Event
	for i := 0; i < 11; i++ {
		e := mk("d", time.Duration(i)*time.Minute, "x")
		if err := s.IngestOne(e); err != nil {
			t.Fatal(err)
		}
	}
	want = s.Events("d")
	if len(want) != 11 {
		t.Fatalf("Events returned %d events, want 11", len(want))
	}
	st := s.SegmentStats()
	if !st.Enabled || st.MaxEvents != 4 {
		t.Fatalf("stats = %+v, want enabled with MaxEvents 4", st)
	}
	if st.Segments != 2 || st.SegmentEvents != 8 || st.HeadEvents != 3 {
		t.Fatalf("shape = %d segments / %d sealed / %d head, want 2/8/3", st.Segments, st.SegmentEvents, st.HeadEvents)
	}
	if st.Seals != 2 || st.SealFailures != 0 || st.EncodedBytes <= 0 {
		t.Fatalf("seal counters = %+v", st)
	}
	// The encoded form must be far smaller than the in-memory structs.
	if perEvent := float64(st.EncodedBytes) / float64(st.SegmentEvents); perEvent > 16 {
		t.Errorf("encoded bytes/event = %.1f, want compact (<16)", perEvent)
	}
	// A cache invalidation forces page-ins; the log must survive them.
	s.InvalidateSegmentCache()
	got := s.Events("d")
	if !eventsEqual(got, want) {
		t.Fatalf("after invalidation Events = %v, want %v", got, want)
	}
	// Windowed reads go through the decoded-segment cache and must page the
	// cold payloads back in (bulk materialization above bypasses it).
	if evs := s.EventsBetween("d", t0, t0.Add(10*time.Minute)); !eventsEqual(evs, want) {
		t.Fatalf("after invalidation EventsBetween = %v, want %v", evs, want)
	}
	if st := s.SegmentStats(); st.PageIns == 0 {
		t.Error("expected page-ins after cache invalidation")
	}
}

// TestSegmentedMatchesSliceOracle drives the same out-of-order workload into
// a segmented store and a plain-slice oracle and checks every read path
// answers identically: the tentpole's contract is that segmentation is
// invisible to consumers.
func TestSegmentedMatchesSliceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seg := newSegmented(t, 4)
	ora := newSliceOracle(t)
	seg.ConfigureOccupancy(0, true)

	devs := []string{"d0", "d1", "d2"}
	aps := []string{"a0", "a1", "a2", "a3"}
	span := 6 * time.Hour
	for i := 0; i < 400; i++ {
		e := mk(devs[rng.Intn(len(devs))], time.Duration(rng.Int63n(int64(span))), aps[rng.Intn(len(aps))])
		if err := seg.IngestOne(e); err != nil {
			t.Fatal(err)
		}
		if err := ora.IngestOne(e); err != nil {
			t.Fatal(err)
		}
	}
	if seg.NumEvents() != ora.NumEvents() || seg.NumDevices() != ora.NumDevices() {
		t.Fatalf("counts diverge: %d/%d vs %d/%d", seg.NumEvents(), seg.NumDevices(), ora.NumEvents(), ora.NumDevices())
	}
	if st := seg.SegmentStats(); st.Segments == 0 {
		t.Fatal("workload sealed no segments; thresholds too high for the test to mean anything")
	}

	for _, d := range devs {
		dd := event.DeviceID(d)
		if !eventsEqual(seg.Events(dd), ora.Events(dd)) {
			t.Fatalf("device %s: Events diverges from oracle", d)
		}
	}
	randT := func() time.Time {
		return t0.Add(time.Duration(rng.Int63n(int64(span+2*time.Hour))) - time.Hour)
	}
	for i := 0; i < 200; i++ {
		d := event.DeviceID(devs[rng.Intn(len(devs))])
		a, b := randT(), randT()
		if b.Before(a) {
			a, b = b, a
		}
		if got, want := seg.EventsBetween(d, a, b), ora.EventsBetween(d, a, b); !eventsEqual(got, want) {
			t.Fatalf("EventsBetween(%s, %v, %v) = %d events, oracle %d", d, a, b, len(got), len(want))
		}
		tq := randT()
		sv, sg, serr := seg.At(d, tq)
		ov, og, oerr := ora.At(d, tq)
		if (serr == nil) != (oerr == nil) {
			t.Fatalf("At(%s, %v) err = %v, oracle %v", d, tq, serr, oerr)
		}
		if (sv == nil) != (ov == nil) || (sg == nil) != (og == nil) {
			t.Fatalf("At(%s, %v) = (%v, %v), oracle (%v, %v)", d, tq, sv, sg, ov, og)
		}
		if sv != nil && (sv.Event.ID != ov.Event.ID || !sv.Start.Equal(ov.Start) || !sv.End.Equal(ov.End)) {
			t.Fatalf("At(%s, %v) validity = %+v, oracle %+v", d, tq, sv, ov)
		}
		if sg != nil && (sg.PrevEvent.ID != og.PrevEvent.ID || sg.NextEvent.ID != og.NextEvent.ID ||
			!sg.Start.Equal(og.Start) || !sg.End.Equal(og.End)) {
			t.Fatalf("At(%s, %v) gap = %+v, oracle %+v", d, tq, sg, og)
		}
		if gap, gok := seg.CurrentAP(d, tq); true {
			oap, ook := ora.CurrentAP(d, tq)
			if gok != ook || gap != oap {
				t.Fatalf("CurrentAP(%s, %v) = %v/%v, oracle %v/%v", d, tq, gap, gok, oap, ook)
			}
		}
		se, sok := seg.LastEventAtOrBefore(d, tq)
		oe, ook := ora.LastEventAtOrBefore(d, tq)
		if sok != ook || (sok && se.ID != oe.ID) {
			t.Fatalf("LastEventAtOrBefore(%s, %v) = %v/%v, oracle %v/%v", d, tq, se, sok, oe, ook)
		}
		se, sok = seg.FirstEventAfter(d, tq)
		oe, ook = ora.FirstEventAfter(d, tq)
		if sok != ook || (sok && se.ID != oe.ID) {
			t.Fatalf("FirstEventAfter(%s, %v) = %v/%v, oracle %v/%v", d, tq, se, sok, oe, ook)
		}
	}
	// Active-device discovery: the segmented store runs the occupancy index
	// (with segment-metadata boundary verification), the oracle scans slices.
	for i := 0; i < 60; i++ {
		a, b := randT(), randT()
		if b.Before(a) {
			a, b = b, a
		}
		var filter []space.APID
		if i%2 == 1 {
			filter = []space.APID{space.APID(aps[rng.Intn(len(aps))]), space.APID(aps[rng.Intn(len(aps))])}
		}
		got := seg.ActiveDevicesAt(filter, a, b)
		want := ora.ActiveDevicesAt(filter, a, b)
		if len(got) != len(want) {
			t.Fatalf("ActiveDevicesAt(%v, %v, %v) = %v, oracle %v", filter, a, b, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("ActiveDevicesAt(%v, %v, %v) = %v, oracle %v", filter, a, b, got, want)
			}
		}
	}
}

// TestScanEventsZeroCopyWindows spot-checks the fast paths: windows that live
// entirely in the head or one segment must still be exact after seals.
func TestScanEventsZeroCopyWindows(t *testing.T) {
	s := newSegmented(t, 4)
	for i := 0; i < 10; i++ {
		if err := s.IngestOne(mk("d", time.Duration(i)*time.Minute, "x")); err != nil {
			t.Fatal(err)
		}
	}
	// Window inside the first sealed segment.
	got := s.EventsBetween("d", t0, t0.Add(2*time.Minute))
	if len(got) != 3 {
		t.Fatalf("segment window = %d events, want 3", len(got))
	}
	// Window inside the head only.
	got = s.EventsBetween("d", t0.Add(8*time.Minute), t0.Add(9*time.Minute))
	if len(got) != 2 {
		t.Fatalf("head window = %d events, want 2", len(got))
	}
	// Window straddling segments and head.
	got = s.EventsBetween("d", t0.Add(2*time.Minute), t0.Add(9*time.Minute))
	if len(got) != 8 {
		t.Fatalf("straddling window = %d events, want 8", len(got))
	}
	// Empty window between events.
	got = s.EventsBetween("d", t0.Add(30*time.Second), t0.Add(45*time.Second))
	if len(got) != 0 {
		t.Fatalf("empty window = %d events, want 0", len(got))
	}
}

// TestConfigureSegmentsRejectsNonEmptyStore pins the configuration contract.
func TestConfigureSegmentsRejectsNonEmptyStore(t *testing.T) {
	s := New(0)
	if err := s.IngestOne(mk("d", 0, "x")); err != nil {
		t.Fatal(err)
	}
	if err := s.ConfigureSegments(SegmentConfig{MaxEvents: 4}); err == nil {
		t.Fatal("ConfigureSegments on a non-empty store should fail")
	}
}

// TestCheckpointStateRestoreRoundTrip seals into a cold tier, captures an
// incremental checkpoint, and rebuilds a fresh store from the manifest plus
// heads — the recovery path — checking byte-for-byte read equality and that
// sequence numbers resume past the restored segments.
func TestCheckpointStateRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b1, err := NewDiskSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(0)
	if err := s.ConfigureSegments(SegmentConfig{MaxEvents: 4, Backend: b1}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	devs := []string{"d0", "d1"}
	for i := 0; i < 37; i++ {
		e := mk(devs[rng.Intn(2)], time.Duration(rng.Int63n(int64(3*time.Hour))), "x")
		if err := s.IngestOne(e); err != nil {
			t.Fatal(err)
		}
	}
	st := s.CheckpointState()
	if len(st.Segments) == 0 {
		t.Fatal("checkpoint captured no segments")
	}
	for d, head := range st.Heads {
		if len(head) >= 4 {
			t.Errorf("device %s: checkpoint head has %d events, should be below the seal threshold", d, len(head))
		}
	}
	if err := s.SyncSegments(); err != nil {
		t.Fatal(err)
	}

	b2, err := NewDiskSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := New(0)
	if err := r.ConfigureSegments(SegmentConfig{MaxEvents: 4, Backend: b2}); err != nil {
		t.Fatal(err)
	}
	r.ConfigureOccupancy(0, true)
	if err := r.RestoreSegments(st.Segments); err != nil {
		t.Fatal(err)
	}
	for _, head := range st.Heads {
		if _, err := r.Ingest(head); err != nil {
			t.Fatal(err)
		}
	}
	if r.NumEvents() != s.NumEvents() {
		t.Fatalf("restored %d events, want %d", r.NumEvents(), s.NumEvents())
	}
	for _, d := range devs {
		dd := event.DeviceID(d)
		if !eventsEqual(r.Events(dd), s.Events(dd)) {
			t.Fatalf("device %s: restored log diverges", d)
		}
	}
	// Restored occupancy index (streamed from the cold tier) must answer
	// like the live store's.
	a, b := t0.Add(20*time.Minute), t0.Add(100*time.Minute)
	gotAD, wantAD := r.ActiveDevices(a, b), s.ActiveDevices(a, b)
	if len(gotAD) != len(wantAD) {
		t.Fatalf("restored ActiveDevices = %v, want %v", gotAD, wantAD)
	}
	// New seals after restore must not collide with restored sequence
	// numbers: keep ingesting past the threshold and re-read everything.
	before := r.SegmentStats().Segments
	var extra []event.Event
	for i := 0; i < 12; i++ {
		e := mk("d0", 4*time.Hour+time.Duration(i)*time.Minute, "y")
		extra = append(extra, e)
		if err := r.IngestOne(e); err != nil {
			t.Fatal(err)
		}
	}
	if after := r.SegmentStats().Segments; after <= before {
		t.Fatalf("no new seals after restore (%d -> %d)", before, after)
	}
	r.InvalidateSegmentCache()
	evs := r.Events("d0")
	tail := evs[len(evs)-len(extra):]
	if !eventsEqual(tail, func() []event.Event {
		cp := make([]event.Event, len(extra))
		copy(cp, extra)
		for i := range cp {
			cp[i].ID = tail[i].ID
		}
		return cp
	}()) {
		t.Fatalf("post-restore seals lost events: %v", tail)
	}
}

// TestRestoreSegmentsRejectsNonEmptyStore pins the restore contract.
func TestRestoreSegmentsRejectsNonEmptyStore(t *testing.T) {
	s := newSegmented(t, 4)
	if err := s.IngestOne(mk("d", 0, "x")); err != nil {
		t.Fatal(err)
	}
	if err := s.RestoreSegments(nil); err == nil {
		t.Fatal("RestoreSegments on a non-empty store should fail")
	}
}

// TestDiskBackendReloadAndLastWins covers the cold tier's file format:
// payloads survive a fresh index build, and a duplicate sequence number —
// crash recovery re-sealing an unmanifested head — resolves to the newest
// record.
func TestDiskBackendReloadAndLastWins(t *testing.T) {
	dir := t.TempDir()
	b, err := NewDiskSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	put := func(bk SegmentBackend, d string, seq uint64, payload string) {
		t.Helper()
		if err := bk.Put(event.DeviceID(d), seq, []byte(payload)); err != nil {
			t.Fatal(err)
		}
	}
	get := func(bk SegmentBackend, d string, seq uint64) string {
		t.Helper()
		p, err := bk.Get(event.DeviceID(d), seq)
		if err != nil {
			t.Fatal(err)
		}
		return string(p)
	}
	put(b, "d1", 1, "alpha")
	put(b, "d1", 2, "beta")
	put(b, "d2", 1, "gamma")
	put(b, "d1", 2, "beta-rewritten")
	if got := get(b, "d1", 2); got != "beta-rewritten" {
		t.Fatalf("dup seq read %q, want last write", got)
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if !b.Persistent() {
		t.Fatal("disk backend must report persistent")
	}

	// A fresh backend over the same directory rebuilds the index from the
	// files; last-wins must hold across the reload too.
	b2, err := NewDiskSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := get(b2, "d1", 1); got != "alpha" {
		t.Fatalf("reload read %q, want alpha", got)
	}
	if got := get(b2, "d1", 2); got != "beta-rewritten" {
		t.Fatalf("reload dup seq read %q, want last write", got)
	}
	if got := get(b2, "d2", 1); got != "gamma" {
		t.Fatalf("reload read %q, want gamma", got)
	}
	if _, err := b2.Get("d1", 99); err == nil {
		t.Fatal("missing seq should error")
	}
	if _, err := b2.Get("ghost", 1); err == nil {
		t.Fatal("unknown device should error")
	}
}

// TestDiskBackendTornTailTruncated appends a torn final record (a crash mid
// Put) and checks a reload drops it, keeps the intact prefix, and appends
// cleanly afterwards.
func TestDiskBackendTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	b, err := NewDiskSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("d", 1, []byte("intact")); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*", "*.seg"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected one segment file, got %v (%v)", matches, err)
	}
	// A record header claiming 100 payload bytes, followed by only 3: torn.
	torn := []byte{2, 0, 0, 0, 0, 0, 0, 0, 100, 0, 0, 0, 'x', 'y', 'z'}
	f, err := os.OpenFile(matches[0], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b2, err := NewDiskSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p, err := b2.Get("d", 1); err != nil || string(p) != "intact" {
		t.Fatalf("prefix lost after torn tail: %q, %v", p, err)
	}
	if _, err := b2.Get("d", 2); err == nil {
		t.Fatal("torn record must not be indexed")
	}
	if err := b2.Put("d", 2, []byte("after")); err != nil {
		t.Fatal(err)
	}
	b3, err := NewDiskSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p, err := b3.Get("d", 2); err != nil || string(p) != "after" {
		t.Fatalf("append after truncation lost: %q, %v", p, err)
	}
}

// TestCorruptSegmentRefused flips one byte of a cold-tier payload and checks
// every read path refuses the segment — errors or empty results plus a
// DecodeFailures bump — rather than serving corrupt events.
func TestCorruptSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	b, err := NewDiskSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(0)
	if err := s.ConfigureSegments(SegmentConfig{MaxEvents: 4, Backend: b}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.IngestOne(mk("d", time.Duration(i)*time.Minute, "x")); err != nil {
			t.Fatal(err)
		}
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*", "*.seg"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected one segment file, got %v (%v)", matches, err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip the first byte of the last record's payload — inside the block's
	// CRC-covered data, for the legacy and block-indexed formats alike.
	rec1 := len(segFileMagic)
	n1 := int(binary.LittleEndian.Uint32(raw[rec1+8 : rec1+12]))
	p2 := rec1 + segRecHdrLen + n1 + segRecHdrLen
	raw[p2] ^= 0xff
	if err := os.WriteFile(matches[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s.InvalidateSegmentCache() // drop the pre-warmed decodes: force page-ins

	if evs := s.Events("d"); evs != nil {
		t.Fatalf("Events served %d events from a corrupt log, want nil", len(evs))
	}
	if evs := s.EventsBetween("d", t0.Add(4*time.Minute), t0.Add(7*time.Minute)); len(evs) != 0 {
		t.Fatalf("EventsBetween served %d events from a corrupt segment", len(evs))
	}
	if _, _, err := s.At("d", t0.Add(5*time.Minute)); err == nil {
		t.Fatal("At over a corrupt segment should error")
	}
	if st := s.SegmentStats(); st.DecodeFailures == 0 {
		t.Fatal("decode failures not counted")
	}
	// The intact first segment still serves.
	if evs := s.EventsBetween("d", t0, t0.Add(2*time.Minute)); len(evs) != 3 {
		t.Fatalf("intact segment window = %d events, want 3", len(evs))
	}
}

// TestRetainedReadsAreCopiesUnderIngest is the satellite contract test for
// the ScanEvents doc fix: callers that need to keep events use the copying
// paths (Events / EventsBetween / TimelineBetween), and the copies must stay
// stable — and race-free, under -race — while ingest keeps appending and
// sealing behind them. ScanEvents visitor slices, by contrast, are decode or
// scratch buffers that must not be retained; this pins that the copying
// wrappers actually insulate callers from that.
func TestRetainedReadsAreCopiesUnderIngest(t *testing.T) {
	s := newSegmented(t, 8)
	for i := 0; i < 64; i++ {
		if err := s.IngestOne(mk("d", time.Duration(i)*time.Second, "x")); err != nil {
			t.Fatal(err)
		}
	}
	sum := func(evs []event.Event) int64 {
		var h int64
		for i := range evs {
			h = h*31 + evs[i].ID + evs[i].Time.Unix()
		}
		return h
	}
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	var writerErr atomic.Value
	writers.Add(1)
	go func() {
		defer writers.Done()
		// Bounded: an unthrottled writer grows the log faster than the
		// readers' O(n) passes can keep up with. 20k events still crosses
		// thousands of seal boundaries while the readers hold their copies.
		for i := 64; i < 20_000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.IngestOne(mk("d", time.Duration(i)*time.Second, "x")); err != nil {
				writerErr.Store(err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			end := t0.Add(time.Hour)
			for k := 0; k < 150; k++ {
				evs := s.EventsBetween("d", t0, end)
				before := sum(evs)
				runtime.Gosched() // let ingest seal and recycle buffers
				if after := sum(evs); after != before {
					t.Errorf("retained EventsBetween slice mutated under ingest: %d -> %d", before, after)
					return
				}
				tl, err := s.TimelineBetween("d", t0, end)
				if err != nil {
					t.Errorf("TimelineBetween: %v", err)
					return
				}
				before = sum(tl.Events)
				runtime.Gosched()
				if after := sum(tl.Events); after != before {
					t.Errorf("retained TimelineBetween slice mutated under ingest: %d -> %d", before, after)
					return
				}
				all := s.Events("d")
				before = sum(all)
				runtime.Gosched()
				if after := sum(all); after != before {
					t.Errorf("retained Events slice mutated under ingest: %d -> %d", before, after)
					return
				}
			}
		}()
	}
	// Readers drive the duration; once they finish, stop the writer.
	done := make(chan struct{})
	go func() { readers.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("test wedged")
	}
	close(stop)
	writers.Wait()
	if err, _ := writerErr.Load().(error); err != nil {
		t.Fatal(err)
	}
}

// TestCloneMaterializesSegments checks a clone of a segmented store is fully
// independent and answers identically.
func TestCloneMaterializesSegments(t *testing.T) {
	s := newSegmented(t, 4)
	for i := 0; i < 13; i++ {
		if err := s.IngestOne(mk("d", time.Duration(i)*time.Minute, "x")); err != nil {
			t.Fatal(err)
		}
	}
	c := s.Clone()
	if !eventsEqual(c.Events("d"), s.Events("d")) {
		t.Fatal("clone diverges from original")
	}
	if err := c.IngestOne(mk("d", time.Hour, "y")); err != nil {
		t.Fatal(err)
	}
	if s.NumEvents() != 13 || c.NumEvents() != 14 {
		t.Fatalf("clone not independent: %d / %d", s.NumEvents(), c.NumEvents())
	}
}

// TestCompactRuntSegments seals a log into many runt segments (a manifest
// written under a small seal threshold, restored into a store with a larger
// one), compacts, and checks the merged layout answers every read exactly
// like the pre-compaction log while the manifest shrinks.
func TestCompactRuntSegments(t *testing.T) {
	dir := t.TempDir()
	b1, err := NewDiskSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	small := New(0)
	if err := small.ConfigureSegments(SegmentConfig{MaxEvents: 4, Backend: b1}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		e := mk("d", time.Duration(rng.Int63n(int64(6*time.Hour))), "x")
		if err := small.IngestOne(e); err != nil {
			t.Fatal(err)
		}
	}
	st := small.CheckpointState()
	if err := small.SyncSegments(); err != nil {
		t.Fatal(err)
	}
	want := small.Events("d")

	b2, err := NewDiskSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	big := New(0)
	if err := big.ConfigureSegments(SegmentConfig{MaxEvents: 32, Backend: b2}); err != nil {
		t.Fatal(err)
	}
	if err := big.RestoreSegments(st.Segments); err != nil {
		t.Fatal(err)
	}
	for _, head := range st.Heads {
		if _, err := big.Ingest(head); err != nil {
			t.Fatal(err)
		}
	}
	before := big.SegmentStats()
	if before.Segments < 4 {
		t.Fatalf("restore produced %d segments, want ≥4 runts to compact", before.Segments)
	}

	merged := big.CompactRuntSegments()
	if merged == 0 {
		t.Fatal("CompactRuntSegments merged nothing")
	}
	after := big.SegmentStats()
	if after.Segments >= before.Segments {
		t.Fatalf("segments %d → %d, want fewer after compaction", before.Segments, after.Segments)
	}
	if after.Segments != before.Segments-merged {
		t.Fatalf("segments %d → %d with %d merges, counts disagree", before.Segments, after.Segments, merged)
	}
	if after.SegmentEvents != before.SegmentEvents {
		t.Fatalf("sealed events %d → %d, compaction must not change totals", before.SegmentEvents, after.SegmentEvents)
	}
	if after.Compactions != int64(merged) || after.CompactionFailures != 0 {
		t.Fatalf("compaction counters = %+v, want %d clean merges", after, merged)
	}

	// Reads must be unchanged, including after dropping the decoded cache
	// (forcing page-ins of the freshly written merged payloads).
	if got := big.Events("d"); !eventsEqual(got, want) {
		t.Fatalf("post-compaction Events diverge")
	}
	big.InvalidateSegmentCache()
	if got := big.EventsBetween("d", t0, t0.Add(6*time.Hour)); !eventsEqual(got, want) {
		t.Fatalf("post-compaction EventsBetween diverges after cache drop")
	}

	// A second pass finds nothing left to merge.
	if again := big.CompactRuntSegments(); again != 0 {
		t.Fatalf("second compaction merged %d more segments, want 0", again)
	}

	// The compacted manifest must checkpoint and restore: recovery reads
	// only the new sequence numbers (orphaned runt payloads are ignored).
	st2 := big.CheckpointState()
	if err := big.SyncSegments(); err != nil {
		t.Fatal(err)
	}
	b3, err := NewDiskSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := New(0)
	if err := rec.ConfigureSegments(SegmentConfig{MaxEvents: 32, Backend: b3}); err != nil {
		t.Fatal(err)
	}
	if err := rec.RestoreSegments(st2.Segments); err != nil {
		t.Fatal(err)
	}
	for _, head := range st2.Heads {
		if _, err := rec.Ingest(head); err != nil {
			t.Fatal(err)
		}
	}
	if got := rec.Events("d"); !eventsEqual(got, want) {
		t.Fatalf("recovered post-compaction log diverges")
	}
}

// TestCompactRuntSegmentsRespectsMaxEvents: merges never build a segment
// larger than the seal threshold, and a lone pair exceeding it stays split.
func TestCompactRuntSegmentsRespectsMaxEvents(t *testing.T) {
	s := newSegmented(t, 4)
	for i := 0; i < 16; i++ {
		if err := s.IngestOne(mk("d", time.Duration(i)*time.Minute, "x")); err != nil {
			t.Fatal(err)
		}
	}
	// Four full segments of 4 under segMax=4: none is a runt (the runt
	// threshold is MaxEvents/4 = 1 event), so compaction is a no-op.
	if merged := s.CompactRuntSegments(); merged != 0 {
		t.Fatalf("full segments merged %d times, want 0", merged)
	}
	if st := s.SegmentStats(); st.Segments != 4 {
		t.Fatalf("segments = %d, want 4 untouched", st.Segments)
	}
}
