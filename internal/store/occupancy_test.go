package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// refActive is the test's own brute-force oracle, computed straight from an
// event slice with no store machinery: the sorted devices with at least one
// event in [start, end], optionally restricted to a set of APs (nil = any).
func refActive(evs []event.Event, aps []space.APID, start, end time.Time) []event.DeviceID {
	apOK := func(ap space.APID) bool {
		if aps == nil {
			return true
		}
		for _, a := range aps {
			if a == ap {
				return true
			}
		}
		return false
	}
	seen := make(map[event.DeviceID]bool)
	for _, e := range evs {
		if !e.Time.Before(start) && !e.Time.After(end) && apOK(e.AP) {
			seen[e.Device] = true
		}
	}
	var out []event.DeviceID
	for d := range seen {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// randomWorkload builds a reproducible batch of events across devices and
// APs with deliberately shuffled timestamps (out-of-order ingestion).
func randomWorkload(rng *rand.Rand, devices, aps, n int) []event.Event {
	evs := make([]event.Event, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, event.Event{
			Device: event.DeviceID(fmt.Sprintf("d%03d", rng.Intn(devices))),
			AP:     space.APID(fmt.Sprintf("ap%02d", rng.Intn(aps))),
			// Timestamps over ~3 days at second granularity, drawn in random
			// order so most logs are knocked out of time order.
			Time: t0.Add(time.Duration(rng.Intn(3*24*3600)) * time.Second),
		})
	}
	return evs
}

// TestActiveDevicesIndexScanEquivalenceProperty is the occupancy index's
// correctness contract: across random workloads (with out-of-order
// ingestion), random windows, and random AP scopes, the index-served result
// is byte-identical to the brute-force oracle and to an index-disabled
// store's full-scan answer — including after Clone and after an index
// rebuild via ConfigureOccupancy.
func TestActiveDevicesIndexScanEquivalenceProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		evs := randomWorkload(rng, 40, 6, 600)

		indexed := New(0)
		scan := New(0)
		scan.ConfigureOccupancy(0, false)
		// Ingest in small batches so sortedness flips repeatedly.
		for i := 0; i < len(evs); i += 37 {
			end := i + 37
			if end > len(evs) {
				end = len(evs)
			}
			for _, s := range []*Store{indexed, scan} {
				if _, err := s.Ingest(evs[i:end]); err != nil {
					t.Fatal(err)
				}
			}
		}
		if st := indexed.OccupancyStats(); !st.Enabled || st.Entries == 0 {
			t.Fatalf("seed %d: index not populated: %+v", seed, st)
		}
		if st := scan.OccupancyStats(); st.Enabled {
			t.Fatalf("seed %d: disabled store reports an enabled index", seed)
		}

		clone := indexed.Clone()
		rebuilt := indexed.Clone()
		rebuilt.ConfigureOccupancy(3*time.Minute, true) // rebuild at another width

		apSets := [][]space.APID{
			nil,
			{},
			{"ap00"},
			{"ap01", "ap03", "ap05"},
			{"ap02", "nope"},
		}
		for q := 0; q < 60; q++ {
			start := t0.Add(time.Duration(rng.Intn(3*24*3600)-3600) * time.Second)
			end := start.Add(time.Duration(rng.Intn(4*3600)-60) * time.Second)
			aps := apSets[rng.Intn(len(apSets))]
			want := refActive(evs, aps, start, end)
			for name, s := range map[string]*Store{
				"indexed": indexed, "scan": scan, "clone": clone, "rebuilt": rebuilt,
			} {
				got := s.ActiveDevicesAt(aps, start, end)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d query %d (%s, aps=%v, [%v,%v]): got %v, want %v",
						seed, q, name, aps, start, end, got, want)
				}
			}
			if aps == nil {
				if got := indexed.ActiveDevices(start, end); !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d query %d: ActiveDevices diverged from oracle", seed, q)
				}
			}
		}
	}
}

// TestActiveDevicesInteriorAndBoundaryBuckets pins the verification split:
// a device whose only event sits in a boundary bucket but outside the
// window must be excluded, while interior-bucket devices are included
// without touching their logs.
func TestActiveDevicesInteriorAndBoundaryBuckets(t *testing.T) {
	s := New(0)
	s.ConfigureOccupancy(10*time.Minute, true)
	mustIngest := func(d event.DeviceID, at time.Time) {
		t.Helper()
		if err := s.IngestOne(event.Event{Device: d, AP: "ap", Time: at}); err != nil {
			t.Fatal(err)
		}
	}
	start := t0.Add(2 * time.Minute) // mid-bucket
	end := start.Add(25 * time.Minute)
	mustIngest("in-boundary", start.Add(time.Minute))      // boundary bucket, inside window
	mustIngest("out-boundary", start.Add(-1*time.Minute))  // same bucket, before start
	mustIngest("interior", start.Add(12*time.Minute))      // fully-interior bucket
	mustIngest("out-far", start.Add(-2*time.Hour))         // different bucket entirely
	mustIngest("end-boundary-out", end.Add(2*time.Minute)) // end bucket, after end

	got := s.ActiveDevices(start, end)
	want := []event.DeviceID{"in-boundary", "interior"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ActiveDevices = %v, want %v", got, want)
	}
}

// TestActiveDevicesSortsOnlyDirtyLogs is the sort-scope regression test:
// one out-of-order ingest among many devices must trigger exactly one lazy
// re-sort on the slow path, not a pass over every log.
func TestActiveDevicesSortsOnlyDirtyLogs(t *testing.T) {
	s := New(0)
	for i := 0; i < 100; i++ {
		d := event.DeviceID(fmt.Sprintf("d%03d", i))
		for j := 0; j < 5; j++ {
			if err := s.IngestOne(event.Event{Device: d, AP: "ap", Time: t0.Add(time.Duration(j) * time.Minute)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Knock exactly one log out of order.
	if err := s.IngestOne(event.Event{Device: "d042", AP: "ap", Time: t0.Add(-time.Hour)}); err != nil {
		t.Fatal(err)
	}
	if n := len(s.dirty); n != 1 {
		t.Fatalf("dirty logs = %d, want 1", n)
	}
	before := s.resorts
	got := s.ActiveDevices(t0, t0.Add(10*time.Minute))
	if len(got) != 100 {
		t.Fatalf("ActiveDevices returned %d devices, want 100", len(got))
	}
	if n := s.resorts - before; n != 1 {
		t.Errorf("slow path performed %d re-sorts, want exactly 1 (the dirty log)", n)
	}
	if len(s.dirty) != 0 {
		t.Errorf("dirty set not drained: %d", len(s.dirty))
	}
	// The dirtied log must now serve the pre-seed event in time order.
	evs := s.Events("d042")
	if len(evs) != 6 || !evs[0].Time.Equal(t0.Add(-time.Hour)) {
		t.Errorf("re-sorted log wrong: %v", evs)
	}
}

// TestOccupancyStatsCounters checks the index's observability surface:
// lookups, fallback scans, bucket/entry sizes, and the enabled flag across
// ConfigureOccupancy transitions.
func TestOccupancyStatsCounters(t *testing.T) {
	s := New(0)
	if st := s.OccupancyStats(); !st.Enabled || st.Bucket != DefaultOccupancyBucket {
		t.Fatalf("default index state: %+v", st)
	}
	for i := 0; i < 4; i++ {
		if err := s.IngestOne(event.Event{
			Device: event.DeviceID(fmt.Sprintf("d%d", i)),
			AP:     space.APID(fmt.Sprintf("ap%d", i%2)),
			Time:   t0.Add(time.Duration(i) * time.Hour),
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.OccupancyStats()
	if st.Buckets != 4 || st.Entries != 4 {
		t.Errorf("index size = %d buckets / %d entries, want 4/4", st.Buckets, st.Entries)
	}
	s.ActiveDevices(t0, t0.Add(time.Hour))
	s.ActiveDevicesAt([]space.APID{"ap0"}, t0, t0.Add(time.Hour))
	st = s.OccupancyStats()
	if st.Lookups != 2 || st.FallbackScans != 0 {
		t.Errorf("lookups/fallbacks = %d/%d, want 2/0", st.Lookups, st.FallbackScans)
	}

	s.ConfigureOccupancy(0, false)
	s.ActiveDevices(t0, t0.Add(time.Hour))
	st = s.OccupancyStats()
	if st.Enabled || st.Buckets != 0 || st.Entries != 0 {
		t.Errorf("disabled index still reports size: %+v", st)
	}
	if st.FallbackScans != 1 {
		t.Errorf("fallback scans = %d, want 1", st.FallbackScans)
	}

	// Re-enabling rebuilds from the logs.
	s.ConfigureOccupancy(30*time.Minute, true)
	st = s.OccupancyStats()
	if !st.Enabled || st.Bucket != 30*time.Minute || st.Entries != 4 {
		t.Errorf("rebuilt index state: %+v", st)
	}
}

// TestActiveDevicesDuplicateEventsOneEntry: re-ingesting the same
// (device, AP, bucket) combination must not grow the index.
func TestActiveDevicesDuplicateEventsOneEntry(t *testing.T) {
	s := New(0)
	for i := 0; i < 10; i++ {
		if err := s.IngestOne(event.Event{Device: "d", AP: "ap", Time: t0.Add(time.Duration(i) * time.Second)}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.OccupancyStats(); st.Entries != 1 || st.Buckets != 1 {
		t.Errorf("10 same-bucket events produced %d entries / %d buckets, want 1/1", st.Entries, st.Buckets)
	}
}
