package store

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"locater/internal/cache"
	"locater/internal/event"
	"locater/internal/wal"
)

// Default segmentation parameters. 512 events per segment keeps blocks in
// the few-KiB range (decode cost measured in microseconds) while a device
// with fleet-typical history still seals most of its log; 1024 cached
// decoded segments bound the warm working set to a few tens of MiB.
const (
	DefaultSegmentMaxEvents = 512
	DefaultSegmentCacheSize = 1024
)

// segmentRef is a device log's handle on one sealed segment: metadata only.
// The encoded payload lives in the SegmentBackend and decoded events are
// materialized on demand through the bounded segment cache.
type segmentRef struct {
	meta wal.SegmentMeta
}

// SegmentConfig configures the store's log-structured layout.
type SegmentConfig struct {
	// MaxEvents is the head size at which a device's mutable head is sealed
	// into an immutable compressed segment. 0 selects
	// DefaultSegmentMaxEvents; a negative value disables sealing entirely
	// (every log stays a plain slice). Values 1..2 are clamped to 2.
	MaxEvents int
	// CacheSize bounds the decoded-segment cache (entries = segments).
	// 0 selects DefaultSegmentCacheSize.
	CacheSize int
	// Backend stores sealed segment payloads; nil selects the in-memory
	// compressed tier. Pass NewDiskSegmentBackend for a cold tier.
	Backend SegmentBackend
}

// ConfigureSegments applies a segmentation configuration. It must be called
// before any events are ingested or restored: sealed segments already
// reference the previous backend.
func (s *Store) ConfigureSegments(cfg SegmentConfig) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count != 0 || len(s.logs) != 0 {
		return errors.New("store: ConfigureSegments on a non-empty store")
	}
	switch {
	case cfg.MaxEvents < 0:
		s.segMax = 0
	case cfg.MaxEvents == 0:
		s.segMax = DefaultSegmentMaxEvents
	case cfg.MaxEvents < 2:
		s.segMax = 2
	default:
		s.segMax = cfg.MaxEvents
	}
	size := cfg.CacheSize
	if size <= 0 {
		size = DefaultSegmentCacheSize
	}
	s.segCache = cache.New[segKey, []event.Event](size, segKeyHash)
	if cfg.Backend != nil {
		s.segBackend = cfg.Backend
	}
	return nil
}

// CloseSegments closes the segment backend. Call once the store will no
// longer be read (page-ins need the backend).
func (s *Store) CloseSegments() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.segBackend.Close()
}

// InvalidateSegmentCache drops every decoded segment in O(1) (epoch bump),
// releasing the decoded working set. Purely an operational control — the
// encoded payloads in the backend stay authoritative and are paged back in
// on demand — used under memory pressure and by the cold-query benchmarks.
func (s *Store) InvalidateSegmentCache() {
	s.segCache.Invalidate()
}

// SyncSegments makes every sealed segment durable in the backend. The
// checkpoint path calls it before publishing a manifest that references the
// segments: a manifest must never point at bytes that could vanish in a
// crash.
func (s *Store) SyncSegments() error {
	return s.segBackend.Sync()
}

func segKeyHash(k segKey) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.dev); i++ {
		h ^= uint64(k.dev[i])
		h *= 1099511628211
	}
	h ^= k.seq
	h *= 1099511628211
	return h
}

// sealLocked compresses the device's head into an immutable segment: sort,
// encode (dictionary APs + delta-of-delta timestamps), store the payload in
// the backend, register the metadata, and start a fresh head. The freshly
// decoded block — a round-trip that also verifies the encoding — pre-warms
// the segment cache. Caller holds the exclusive lock.
//
// On failure the head is simply kept: the next append re-attempts the seal,
// and an over-full head is only a memory regression, never a correctness
// one.
func (s *Store) sealLocked(d event.DeviceID, lg *deviceLog) {
	s.ensureSorted(lg)
	block := wal.EncodeEventBlock(nil, lg.head)
	decoded, err := wal.DecodeEventBlock(block, d, make([]event.Event, 0, len(lg.head)))
	if err != nil || len(decoded) != len(lg.head) {
		s.sealFails.Add(1)
		return
	}
	seq := lg.nextSeq
	if err := s.segBackend.Put(d, seq, block); err != nil {
		s.sealFails.Add(1)
		return
	}
	lg.nextSeq++
	lg.segs = append(lg.segs, segmentRef{meta: wal.SegmentMeta{
		Seq:      seq,
		Count:    len(lg.head),
		MinNanos: lg.head[0].Time.UnixNano(),
		MaxNanos: lg.head[len(lg.head)-1].Time.UnixNano(),
		Bytes:    len(block),
	}})
	lg.segEvents += len(lg.head)
	s.segCount++
	s.segEvents += len(lg.head)
	s.segBytes += int64(len(block))
	s.seals.Add(1)
	s.segCache.Put(segKey{d, seq}, decoded)
	lg.head = nil
}

// segEventsCached returns a segment's decoded events through the bounded
// segment cache, paging the payload in from the backend on a miss. The
// returned slice is shared and immutable: callers must not mutate it, and
// non-copying callers must not let it escape the store lock. Errors are not
// cached, so a corrupt segment is refused on every access.
func (s *Store) segEventsCached(d event.DeviceID, ref segmentRef) ([]event.Event, error) {
	return s.segCache.GetOrCompute(segKey{d, ref.meta.Seq}, func() ([]event.Event, error) {
		s.pageIns.Add(1)
		payload, err := s.segBackend.Get(d, ref.meta.Seq)
		if err != nil {
			s.decodeFails.Add(1)
			return nil, err
		}
		out, err := wal.DecodeEventBlock(payload, d, make([]event.Event, 0, ref.meta.Count))
		if err != nil {
			s.decodeFails.Add(1)
			return nil, fmt.Errorf("store: decoding segment %d for device %s: %w", ref.meta.Seq, d, err)
		}
		if len(out) != ref.meta.Count {
			s.decodeFails.Add(1)
			return nil, fmt.Errorf("store: segment %d for device %s decoded %d events, manifest says %d",
				ref.meta.Seq, d, len(out), ref.meta.Count)
		}
		return out, nil
	})
}

// materializeLocked appends the device's full log — every sealed segment
// plus the head — to out in time order. Cached decodes are reused (via Peek,
// so bulk materialization doesn't skew cache traffic counters); uncached
// segments are decoded straight into out without populating the cache.
// Caller holds a store lock and has sorted the head.
func (s *Store) materializeLocked(d event.DeviceID, lg *deviceLog, out []event.Event) ([]event.Event, error) {
	for i := range lg.segs {
		ref := lg.segs[i]
		if evs, ok := s.segCache.Peek(segKey{d, ref.meta.Seq}); ok {
			out = append(out, evs...)
			continue
		}
		payload, err := s.segBackend.Get(d, ref.meta.Seq)
		if err != nil {
			s.decodeFails.Add(1)
			return out, err
		}
		out, err = wal.DecodeEventBlock(payload, d, out)
		if err != nil {
			s.decodeFails.Add(1)
			return out, fmt.Errorf("store: decoding segment %d for device %s: %w", ref.meta.Seq, d, err)
		}
	}
	out = append(out, lg.head...)
	if !eventsSorted(out) {
		event.SortEvents(out)
	}
	return out, nil
}

// nanoTime bounds within which time.Time round-trips through UnixNano.
// Stored events always fit (they round-trip through the WAL codec); query
// windows are clamped so comparisons against segment metadata stay correct
// for arbitrarily wide windows.
var (
	minNanoTime = time.Unix(0, math.MinInt64)
	maxNanoTime = time.Unix(0, math.MaxInt64)
)

func clampedNanos(t time.Time) int64 {
	if t.Before(minNanoTime) {
		return math.MinInt64
	}
	if t.After(maxNanoTime) {
		return math.MaxInt64
	}
	return t.UnixNano()
}

// searchWindow returns the [lo, hi) index range of events with
// start ≤ Time ≤ end in a sorted slice.
func searchWindow(evs []event.Event, start, end time.Time) (int, int) {
	lo := sort.Search(len(evs), func(i int) bool { return !evs[i].Time.Before(start) })
	hi := sort.Search(len(evs), func(i int) bool { return evs[i].Time.After(end) })
	return lo, hi
}

// eventsSorted reports whether evs is sorted by the store's event order.
func eventsSorted(evs []event.Event) bool {
	for i := 1; i < len(evs); i++ {
		if evs[i].Before(evs[i-1]) {
			return false
		}
	}
	return true
}

// scanBuf is the pooled scratch a segmented read assembles its window or
// point-lookup neighborhood into. Pooled per call (Get/Put around each use),
// so re-entrant reads — the fine stage scans candidate logs while holding
// results of an outer scan — each get their own buffer.
type scanBuf struct {
	evs  []event.Event
	idx  []int
	runs [][]event.Event
}

var scanBufPool = sync.Pool{New: func() any { return new(scanBuf) }}

// mergeRuns appends the merge of k individually sorted, non-empty runs to
// out in the store's (Time, ID, Device) event order. The run list is kept
// sorted by head event; each step binary-searches how far the front run
// extends before the second run's head and copies that whole stretch. Runs
// that do not interleave — the common shape, since segments are sealed in
// rough time order and overlap only around late-arriving events — thus cost
// one wholesale copy each, and a store fragmented into thousands of tiny
// segments still merges in O(m) instead of re-sorting every window. The
// order is total (event IDs are unique per device), so the result is
// exactly what sorting the concatenation would produce.
func mergeRuns(out []event.Event, runs [][]event.Event) []event.Event {
	// Insertion-sort the runs by head: they arrive in seal order, which is
	// already nearly sorted.
	for i := 1; i < len(runs); i++ {
		r := runs[i]
		j := i
		for ; j > 0 && r[0].Before(runs[j-1][0]); j-- {
			runs[j] = runs[j-1]
		}
		runs[j] = r
	}
	for len(runs) > 1 {
		r, next := runs[0], runs[1][0]
		// Everything in r strictly before the next run's head is safe to
		// emit wholesale. The heads are ordered, so cut ≥ 1: progress is
		// guaranteed.
		cut := sort.Search(len(r), func(j int) bool { return next.Before(r[j]) })
		out = append(out, r[:cut]...)
		if cut == len(r) {
			runs = runs[1:]
			continue
		}
		// Re-position the remainder by its new head.
		r = r[cut:]
		i := 1
		for ; i < len(runs) && runs[i][0].Before(r[0]); i++ {
			runs[i-1] = runs[i]
		}
		runs[i-1] = r
	}
	if len(runs) == 1 {
		out = append(out, runs[0]...)
	}
	return out
}

// scanWindowLocked is the segmented ScanEvents core: it assembles the
// device's events in [start, end] and hands them to fn. Zero-copy fast
// paths cover the no-segments and single-source cases; otherwise the
// windowed runs from cached segment decodes plus the head are k-way merged
// (see mergeRuns) into a pooled buffer. On a page-in or decode failure the
// scan degrades to an empty window — the corrupt segment is refused, never
// served — with the failure counted in SegmentStats. Caller holds a store
// lock and has sorted the head.
func (s *Store) scanWindowLocked(d event.DeviceID, lg *deviceLog, start, end time.Time, delta time.Duration, fn func([]event.Event, time.Duration)) {
	hl, hh := searchWindow(lg.head, start, end)
	if len(lg.segs) == 0 || end.Before(start) {
		if hl >= hh {
			fn(nil, delta)
		} else {
			fn(lg.head[hl:hh], delta)
		}
		return
	}
	startN, endN := clampedNanos(start), clampedNanos(end)
	nOver, single := 0, -1
	for i := range lg.segs {
		m := &lg.segs[i].meta
		if m.MaxNanos < startN || m.MinNanos > endN {
			continue
		}
		nOver++
		single = i
	}
	if nOver == 0 {
		if hl >= hh {
			fn(nil, delta)
		} else {
			fn(lg.head[hl:hh], delta)
		}
		return
	}
	if nOver == 1 && hl >= hh {
		evs, err := s.segEventsCached(d, lg.segs[single])
		if err != nil {
			fn(nil, delta)
			return
		}
		lo, hi := searchWindow(evs, start, end)
		if lo >= hi {
			fn(nil, delta)
		} else {
			fn(evs[lo:hi], delta)
		}
		return
	}
	bp := scanBufPool.Get().(*scanBuf)
	runs := bp.runs[:0]
	ok := true
	for i := range lg.segs {
		m := &lg.segs[i].meta
		if m.MaxNanos < startN || m.MinNanos > endN {
			continue
		}
		evs, err := s.segEventsCached(d, lg.segs[i])
		if err != nil {
			ok = false
			break
		}
		if lo, hi := searchWindow(evs, start, end); lo < hi {
			runs = append(runs, evs[lo:hi])
		}
	}
	out := bp.evs[:0]
	if ok {
		if hl < hh {
			runs = append(runs, lg.head[hl:hh])
		}
		out = mergeRuns(out, runs)
	}
	if !ok || len(out) == 0 {
		fn(nil, delta)
	} else {
		fn(out, delta)
	}
	// Drop the run views before pooling: they alias cached segment decodes,
	// which the pool must not pin.
	for i := range runs {
		runs[i] = nil
	}
	bp.evs, bp.runs = out, runs[:0]
	scanBufPool.Put(bp)
}

// appendNeighborhood appends to buf the events adjacent to t in one sorted
// source: up to two at or before t and up to two after.
func appendNeighborhood(buf []event.Event, evs []event.Event, t time.Time) []event.Event {
	idx := sort.Search(len(evs), func(i int) bool { return evs[i].Time.After(t) })
	lo, hi := idx-2, idx+2
	if lo < 0 {
		lo = 0
	}
	if hi > len(evs) {
		hi = len(evs)
	}
	return append(buf, evs[lo:hi]...)
}

// leqStats returns how many events in buf have Time ≤ t (as nanos) and the
// second-largest such time (math.MinInt64 when fewer than two).
func leqStats(buf []event.Event, tN int64) (int, int64) {
	n := 0
	max1, max2 := int64(math.MinInt64), int64(math.MinInt64)
	for i := range buf {
		en := buf[i].Time.UnixNano()
		if en > tN {
			continue
		}
		n++
		if en >= max1 {
			max2, max1 = max1, en
		} else if en > max2 {
			max2 = en
		}
	}
	return n, max2
}

// gtStats returns how many events in buf have Time > t (as nanos) and the
// second-smallest such time (math.MaxInt64 when fewer than two).
func gtStats(buf []event.Event, tN int64) (int, int64) {
	n := 0
	min1, min2 := int64(math.MaxInt64), int64(math.MaxInt64)
	for i := range buf {
		en := buf[i].Time.UnixNano()
		if en <= tN {
			continue
		}
		n++
		if en <= min1 {
			min2, min1 = min1, en
		} else if en < min2 {
			min2 = en
		}
	}
	return n, min2
}

// neighborhoodLocked assembles into bp the sorted set of events adjacent to
// t across every source (head + segments): at least the two nearest events
// on each side of t, drawn from whichever sources hold them.
//
// Timeline.At/APAt on time t only ever read the two events on each side of
// it — validity truncation uses the immediate neighbors and gap bounds use
// the straddling pair — so running them over this neighborhood reproduces
// the flat-log answer exactly. Segments whose time range overlaps t are
// always decoded; segments entirely before (after) t are visited in
// decreasing-max (increasing-min) order and decoding stops as soon as the
// next segment provably cannot displace the two best candidates already
// found (ties keep decoding, so equal-time events still tie-break by ID).
// Caller holds a store lock and has sorted the head.
func (s *Store) neighborhoodLocked(d event.DeviceID, lg *deviceLog, t time.Time, bp *scanBuf) ([]event.Event, error) {
	buf := appendNeighborhood(bp.evs[:0], lg.head, t)
	tN := clampedNanos(t)
	before, after := bp.idx[:0], make([]int, 0)
	for i := range lg.segs {
		m := &lg.segs[i].meta
		switch {
		case m.MaxNanos < tN:
			// Insertion sort by MaxNanos descending.
			j := len(before)
			before = append(before, i)
			for ; j > 0 && lg.segs[before[j-1]].meta.MaxNanos < m.MaxNanos; j-- {
				before[j] = before[j-1]
			}
			before[j] = i
		case m.MinNanos > tN:
			// Insertion sort by MinNanos ascending.
			j := len(after)
			after = append(after, i)
			for ; j > 0 && lg.segs[after[j-1]].meta.MinNanos > m.MinNanos; j-- {
				after[j] = after[j-1]
			}
			after[j] = i
		default:
			evs, err := s.segEventsCached(d, lg.segs[i])
			if err != nil {
				bp.evs, bp.idx = buf, before
				return nil, err
			}
			buf = appendNeighborhood(buf, evs, t)
		}
	}
	for _, i := range before {
		n, second := leqStats(buf, tN)
		if n >= 2 && lg.segs[i].meta.MaxNanos < second {
			break
		}
		evs, err := s.segEventsCached(d, lg.segs[i])
		if err != nil {
			bp.evs, bp.idx = buf, before
			return nil, err
		}
		buf = appendNeighborhood(buf, evs, t)
	}
	for _, i := range after {
		n, second := gtStats(buf, tN)
		if n >= 2 && lg.segs[i].meta.MinNanos > second {
			break
		}
		evs, err := s.segEventsCached(d, lg.segs[i])
		if err != nil {
			bp.evs, bp.idx = buf, before
			return nil, err
		}
		buf = appendNeighborhood(buf, evs, t)
	}
	if !eventsSorted(buf) {
		event.SortEvents(buf)
	}
	bp.evs, bp.idx = buf, before
	return buf, nil
}

// RestoreSegments registers recovered segment metadata on an empty store —
// metadata only: no segment is decoded to restore it, which is what makes
// recovery incremental. Per-device sequence counters resume past the
// highest restored seq, and the occupancy index (when enabled) is rebuilt
// by streaming the segments block-at-a-time — the one full read, which
// doubles as an integrity pass over the cold tier; run with occupancy
// disabled, restore touches no segment bytes at all.
func (s *Store) RestoreSegments(manifest map[event.DeviceID][]wal.SegmentMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count != 0 || len(s.logs) != 0 {
		return errors.New("store: RestoreSegments on a non-empty store")
	}
	for dev, metas := range manifest {
		if len(metas) == 0 {
			continue
		}
		sorted := make([]wal.SegmentMeta, len(metas))
		copy(sorted, metas)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })
		lg := &deviceLog{sorted: true, nextSeq: 1}
		for _, m := range sorted {
			lg.segs = append(lg.segs, segmentRef{meta: m})
			if m.Seq >= lg.nextSeq {
				lg.nextSeq = m.Seq + 1
			}
			lg.segEvents += m.Count
			s.segCount++
			s.segEvents += m.Count
			s.segBytes += int64(m.Bytes)
			minT, maxT := time.Unix(0, m.MinNanos).UTC(), time.Unix(0, m.MaxNanos).UTC()
			if s.count == 0 || minT.Before(s.minTime) {
				s.minTime = minT
			}
			if s.count == 0 || maxT.After(s.maxTime) {
				s.maxTime = maxT
			}
			s.count += m.Count
		}
		s.logs[dev] = lg
	}
	s.segCache.Invalidate()
	if s.occ == nil {
		return nil
	}
	var scratch []event.Event
	for dev, lg := range s.logs {
		for i := range lg.segs {
			ref := lg.segs[i]
			payload, err := s.segBackend.Get(dev, ref.meta.Seq)
			if err != nil {
				return fmt.Errorf("store: restoring segment %d for device %s: %w", ref.meta.Seq, dev, err)
			}
			scratch = scratch[:0]
			scratch, err = wal.DecodeEventBlock(payload, dev, scratch)
			if err != nil {
				s.decodeFails.Add(1)
				return fmt.Errorf("store: restoring segment %d for device %s: %w", ref.meta.Seq, dev, err)
			}
			for j := range scratch {
				s.occ.add(scratch[j])
			}
		}
	}
	return nil
}

// CompactRuntSegments merges runt segments — sealed blocks holding fewer
// than MaxEvents/4 events, the debris of checkpoint-time partial seals and
// low-traffic devices — into their predecessor segment, provided the
// combined block still fits under MaxEvents. Compaction re-seals the merged
// events under a fresh sequence number (the backend has no delete, so the
// old payloads are simply orphaned; last-wins recovery ignores them) and
// replaces the two refs with one, shrinking the per-device manifest and the
// decoded-segment cache's working set. Returns the number of merges
// performed. Failures leave the original refs untouched: compaction is a
// pure space optimization, never a correctness risk.
func (s *Store) CompactRuntSegments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.segMax <= 0 {
		return 0
	}
	runt := s.segMax / 4
	if runt < 1 {
		runt = 1
	}
	merged := 0
	for d, lg := range s.logs {
		if len(lg.segs) < 2 {
			continue
		}
		out := make([]segmentRef, 0, len(lg.segs))
		out = append(out, lg.segs[0])
		changed := false
		for i := 1; i < len(lg.segs); i++ {
			cur := lg.segs[i]
			prev := &out[len(out)-1]
			if cur.meta.Count >= runt || prev.meta.Count+cur.meta.Count > s.segMax {
				out = append(out, cur)
				continue
			}
			ref, ok := s.mergeSegmentsLocked(d, lg, *prev, cur)
			if !ok {
				out = append(out, cur)
				continue
			}
			*prev = ref
			changed = true
			merged++
		}
		if changed {
			lg.segs = out
		}
	}
	return merged
}

// mergeSegmentsLocked re-seals two adjacent segments as one: decode both
// through the cache, merge-sort (out-of-order ingest means ranges can
// overlap), encode, and store under a fresh sequence number. Caller holds
// the exclusive lock and splices the returned ref in place of the pair.
func (s *Store) mergeSegmentsLocked(d event.DeviceID, lg *deviceLog, a, b segmentRef) (segmentRef, bool) {
	ea, err := s.segEventsCached(d, a)
	if err != nil {
		s.compactFails.Add(1)
		return segmentRef{}, false
	}
	eb, err := s.segEventsCached(d, b)
	if err != nil {
		s.compactFails.Add(1)
		return segmentRef{}, false
	}
	evs := make([]event.Event, 0, len(ea)+len(eb))
	evs = append(evs, ea...)
	evs = append(evs, eb...)
	if !eventsSorted(evs) {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })
	}
	block := wal.EncodeEventBlock(nil, evs)
	decoded, err := wal.DecodeEventBlock(block, d, make([]event.Event, 0, len(evs)))
	if err != nil || len(decoded) != len(evs) {
		s.compactFails.Add(1)
		return segmentRef{}, false
	}
	seq := lg.nextSeq
	if err := s.segBackend.Put(d, seq, block); err != nil {
		s.compactFails.Add(1)
		return segmentRef{}, false
	}
	lg.nextSeq++
	s.segCount--
	s.segBytes += int64(len(block)) - int64(a.meta.Bytes) - int64(b.meta.Bytes)
	s.compactions.Add(1)
	s.segCache.Put(segKey{d, seq}, decoded)
	return segmentRef{meta: wal.SegmentMeta{
		Seq:      seq,
		Count:    len(evs),
		MinNanos: evs[0].Time.UnixNano(),
		MaxNanos: evs[len(evs)-1].Time.UnixNano(),
		Bytes:    len(block),
	}}, true
}

// CheckpointState is the store's durable state in incremental-snapshot
// form: the mutable heads in full plus a manifest of sealed segments —
// metadata only, since the segment payloads are already durable in the
// backend (SyncSegments). It shares nothing with the live store.
type CheckpointState struct {
	NextID   int64
	Deltas   map[event.DeviceID]time.Duration
	Heads    map[event.DeviceID][]event.Event
	Segments map[event.DeviceID][]wal.SegmentMeta
}

// CheckpointState captures the store's durable state for an incremental
// checkpoint. Unlike SnapshotState it never materializes sealed segments:
// capture cost is proportional to the mutable heads, not total history.
func (s *Store) CheckpointState() CheckpointState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := CheckpointState{
		NextID:   s.nextID,
		Deltas:   make(map[event.DeviceID]time.Duration, len(s.deltas)),
		Heads:    make(map[event.DeviceID][]event.Event, len(s.logs)),
		Segments: make(map[event.DeviceID][]wal.SegmentMeta),
	}
	for d, dl := range s.deltas {
		st.Deltas[d] = dl
	}
	for dev, lg := range s.logs {
		s.ensureSorted(lg)
		if len(lg.head) > 0 {
			cp := make([]event.Event, len(lg.head))
			copy(cp, lg.head)
			st.Heads[dev] = cp
		}
		if len(lg.segs) > 0 {
			metas := make([]wal.SegmentMeta, len(lg.segs))
			for i := range lg.segs {
				metas[i] = lg.segs[i].meta
			}
			st.Segments[dev] = metas
		}
	}
	return st
}

// SegmentStats reports the log-structured layout's shape and traffic.
type SegmentStats struct {
	// Enabled reports whether heads are sealed into segments; MaxEvents is
	// the seal threshold.
	Enabled   bool
	MaxEvents int
	// ColdTier reports whether sealed payloads live on disk (a persistent
	// backend) rather than in memory.
	ColdTier bool
	// Segments / SegmentEvents / HeadEvents split the store's resident
	// shape; EncodedBytes is the compressed size of all sealed payloads.
	Segments      int
	SegmentEvents int
	HeadEvents    int
	EncodedBytes  int64
	// Seals / SealFailures count seal attempts; PageIns counts backend
	// reads (decoded-segment cache misses), CacheHits the reads served
	// without one. DecodeFailures counts refused page-ins (corrupt or
	// missing payloads).
	Seals          int64
	SealFailures   int64
	PageIns        int64
	CacheHits      int64
	CacheSize      int
	CacheCapacity  int
	DecodeFailures int64
	// Compactions counts runt-segment merges performed at checkpoint;
	// CompactionFailures counts merges abandoned (decode or backend
	// errors), which leave the original segments in place.
	Compactions        int64
	CompactionFailures int64
}

// SegmentStats returns the segmented layout's current shape and counters.
func (s *Store) SegmentStats() SegmentStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cst := s.segCache.Stats()
	return SegmentStats{
		Enabled:            s.segMax > 0,
		MaxEvents:          s.segMax,
		ColdTier:           s.segBackend.Persistent(),
		Segments:           s.segCount,
		SegmentEvents:      s.segEvents,
		HeadEvents:         s.count - s.segEvents,
		EncodedBytes:       s.segBytes,
		Seals:              s.seals.Load(),
		SealFailures:       s.sealFails.Load(),
		PageIns:            s.pageIns.Load(),
		CacheHits:          cst.Hits,
		CacheSize:          cst.Size,
		CacheCapacity:      cst.Capacity,
		DecodeFailures:     s.decodeFails.Load(),
		Compactions:        s.compactions.Load(),
		CompactionFailures: s.compactFails.Load(),
	}
}
