package store

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"locater/internal/cache"
	"locater/internal/event"
	"locater/internal/space"
	"locater/internal/wal"
)

// Default segmentation parameters. 512 events per segment keeps payloads in
// the few-KiB range while a device with fleet-typical history still seals
// most of its log; 64-event blocks inside each segment make the unit of
// decode (and of cache residency) a few hundred bytes, so a point lookup
// touches one or two blocks instead of a whole segment. The default cache
// size is expressed in segments for compatibility and scaled to blocks at
// configuration time.
const (
	DefaultSegmentMaxEvents   = 512
	DefaultSegmentCacheSize   = 1024
	DefaultSegmentBlockEvents = 64
)

// approxEventBytes is the decoded-block cache's per-event weight: the Event
// struct itself (ID + string headers + Time). String bytes are shared with
// the block's AP dictionary and between events, so they are deliberately
// not charged per event.
const approxEventBytes = 64

// segIndex is a segment's parsed trailer state: the block index plus the
// segment-wide AP dictionary the blocks decode against. dict is nil for
// legacy whole-segment payloads, whose synthesized single block is
// self-contained.
type segIndex struct {
	metas []wal.BlockMeta
	dict  []space.APID
}

// segmentRef is a device log's handle on one sealed segment: metadata plus
// the lazily parsed block index and dictionary. The encoded payload lives
// in the SegmentBackend and decoded blocks are materialized on demand
// through the bounded block cache. index is atomic because it is parsed on
// first use under the shared store lock; refs are heap-allocated and shared
// by pointer (deviceLog.segs is []*segmentRef) so the atomic is never
// copied.
type segmentRef struct {
	meta  wal.SegmentMeta
	index atomic.Pointer[segIndex]
}

func (r *segmentRef) blockIndex() *segIndex { return r.index.Load() }

// SegmentConfig configures the store's log-structured layout.
type SegmentConfig struct {
	// MaxEvents is the head size at which a device's mutable head is sealed
	// into an immutable compressed segment. 0 selects
	// DefaultSegmentMaxEvents; a negative value disables sealing entirely
	// (every log stays a plain slice). Values 1..2 are clamped to 2.
	MaxEvents int
	// BlockEvents is the intra-segment block size: sealed payloads are
	// encoded as consecutive blocks of at most this many events, each
	// independently decodable, with a block index in the payload trailer.
	// 0 selects DefaultSegmentBlockEvents; a negative value selects the
	// legacy whole-segment encoding (one block, no index trailer) — the
	// format PR 8 wrote, kept readable and writable for compatibility.
	BlockEvents int
	// CacheSize bounds the decoded-block cache (entries = blocks).
	// 0 selects DefaultSegmentCacheSize segments' worth of blocks.
	CacheSize int
	// Backend stores sealed segment payloads; nil selects the in-memory
	// compressed tier. Pass NewDiskSegmentBackend or NewMmapSegmentBackend
	// for a cold tier.
	Backend SegmentBackend
}

// ConfigureSegments applies a segmentation configuration. It must be called
// before any events are ingested or restored: sealed segments already
// reference the previous backend.
func (s *Store) ConfigureSegments(cfg SegmentConfig) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count != 0 || len(s.logs) != 0 {
		return errors.New("store: ConfigureSegments on a non-empty store")
	}
	switch {
	case cfg.MaxEvents < 0:
		s.segMax = 0
	case cfg.MaxEvents == 0:
		s.segMax = DefaultSegmentMaxEvents
	case cfg.MaxEvents < 2:
		s.segMax = 2
	default:
		s.segMax = cfg.MaxEvents
	}
	switch {
	case cfg.BlockEvents < 0:
		s.segBlockEvents = -1
	case cfg.BlockEvents == 0:
		s.segBlockEvents = DefaultSegmentBlockEvents
	default:
		s.segBlockEvents = cfg.BlockEvents
	}
	size := cfg.CacheSize
	if size <= 0 {
		size = DefaultSegmentCacheSize * blocksPerSegment(s.segMax, s.segBlockEvents)
	}
	s.segCache = newBlockCache(size)
	if cfg.Backend != nil {
		s.segBackend = cfg.Backend
	}
	return nil
}

// blocksPerSegment is how many decodable blocks a full segment holds under
// the given configuration (at least 1).
func blocksPerSegment(segMax, blockEvents int) int {
	if segMax <= 0 || blockEvents <= 0 || blockEvents >= segMax {
		return 1
	}
	return (segMax + blockEvents - 1) / blockEvents
}

// newBlockCache builds the decoded-block cache with its heap-bytes weigher
// attached, so SegmentStats can report the decoded working set the GC
// actually sees.
func newBlockCache(entries int) *cache.Cache[blockKey, []event.Event] {
	c := cache.New[blockKey, []event.Event](entries, blockKeyHash)
	c.SetWeigher(func(evs []event.Event) int64 { return int64(len(evs)) * approxEventBytes })
	return c
}

// CloseSegments closes the segment backend. Call once the store will no
// longer be read (page-ins need the backend).
func (s *Store) CloseSegments() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.segBackend.Close()
}

// InvalidateSegmentCache drops every decoded block in O(1) (epoch bump),
// releasing the decoded working set. Purely an operational control — the
// encoded payloads in the backend stay authoritative and are paged back in
// block-at-a-time on demand — used under memory pressure and by the
// cold-query benchmarks. Parsed block indexes are kept: they are metadata
// on the order of the segment manifest, not decoded data.
func (s *Store) InvalidateSegmentCache() {
	s.segCache.Invalidate()
}

// SyncSegments makes every sealed segment durable in the backend. The
// checkpoint path calls it before publishing a manifest that references the
// segments: a manifest must never point at bytes that could vanish in a
// crash.
func (s *Store) SyncSegments() error {
	return s.segBackend.Sync()
}

// blockKey identifies one decoded block: (device, segment seq, block index).
type blockKey struct {
	dev   event.DeviceID
	seq   uint64
	block int
}

// mergedBlock is the sentinel block index caching a segment's contiguous
// full decode. Scans that cover every block of a multi-block segment
// assemble one and serve repeat scans from it with a single cache hit —
// the same per-scan cost as the whole-segment layout — while point lookups
// keep paging individual blocks. Real block indexes are always >= 0.
const mergedBlock = -1

func blockKeyHash(k blockKey) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.dev); i++ {
		h ^= uint64(k.dev[i])
		h *= 1099511628211
	}
	h ^= k.seq
	h *= 1099511628211
	h ^= uint64(k.block)
	h *= 1099511628211
	return h
}

// viewPayload runs fn over a segment's encoded payload, borrowing it
// zero-copy from a ViewBackend (the slice may alias a memory mapping and
// must not escape fn) and falling back to a heap copy for plain backends.
func (s *Store) viewPayload(d event.DeviceID, seq uint64, fn func(payload []byte) error) error {
	if vb, ok := s.segBackend.(ViewBackend); ok {
		return vb.View(d, seq, fn)
	}
	p, err := s.segBackend.Get(d, seq)
	if err != nil {
		return err
	}
	return fn(p)
}

// blocksFor returns a segment's block index, parsing the payload trailer on
// first use (touching only the payload's final bytes — its final pages when
// memory-mapped). Legacy payloads without an index get a synthesized
// single-block entry covering the whole payload, so every read path is
// uniformly block-granular. The parsed index is published atomically on the
// shared ref; concurrent first readers may parse twice, idempotently.
func (s *Store) blocksFor(d event.DeviceID, ref *segmentRef) (*segIndex, error) {
	if idx := ref.blockIndex(); idx != nil {
		return idx, nil
	}
	var idx segIndex
	err := s.viewPayload(d, ref.meta.Seq, func(payload []byte) error {
		ms, dict, indexed, err := wal.ParseSegmentIndex(payload)
		if err != nil {
			return err
		}
		if !indexed {
			ms = []wal.BlockMeta{{
				Off: 0, Len: len(payload),
				Count:    ref.meta.Count,
				MinNanos: ref.meta.MinNanos,
				MaxNanos: ref.meta.MaxNanos,
			}}
		}
		idx = segIndex{metas: ms, dict: dict}
		return nil
	})
	if err != nil {
		s.decodeFails.Add(1)
		return nil, fmt.Errorf("store: indexing segment %d for device %s: %w", ref.meta.Seq, d, err)
	}
	s.indexLoads.Add(1)
	ref.index.Store(&idx)
	return &idx, nil
}

// decodeBlockAt decodes block bi against the segment's dictionary (or as a
// self-contained legacy block when dict is nil), appending to dst.
func decodeBlockAt(payload []byte, d event.DeviceID, idx *segIndex, bi int, dst []event.Event) ([]event.Event, error) {
	bm := idx.metas[bi]
	if bm.Off < 0 || bm.Len < 0 || bm.Off+bm.Len > len(payload) {
		return dst, fmt.Errorf("store: block %d outside payload", bi)
	}
	if idx.dict == nil {
		return wal.DecodeEventBlock(payload[bm.Off:bm.Off+bm.Len], d, dst)
	}
	return wal.DecodeIndexedBlock(payload[bm.Off:bm.Off+bm.Len], d, idx.dict, bm.MinNanos, dst)
}

// blockEventsCached returns one block's decoded events through the bounded
// block cache, paging just that block's bytes in from the backend on a
// miss. The returned slice is shared and immutable: callers must not mutate
// it, and non-copying callers must not let it escape the store lock.
// lookupBytes, when non-nil, accrues the encoded bytes actually decoded
// (zero on a cache hit) — the point-lookup paths use it to measure their
// decode traffic. Errors are not cached, so a corrupt block is refused on
// every access.
func (s *Store) blockEventsCached(d event.DeviceID, ref *segmentRef, idx *segIndex, bi int, lookupBytes *int64) ([]event.Event, error) {
	bm := idx.metas[bi]
	return s.segCache.GetOrCompute(blockKey{d, ref.meta.Seq, bi}, func() ([]event.Event, error) {
		s.pageIns.Add(1)
		var out []event.Event
		err := s.viewPayload(d, ref.meta.Seq, func(payload []byte) error {
			var derr error
			out, derr = decodeBlockAt(payload, d, idx, bi, make([]event.Event, 0, bm.Count))
			return derr
		})
		if err != nil {
			s.decodeFails.Add(1)
			return nil, fmt.Errorf("store: decoding segment %d block %d for device %s: %w", ref.meta.Seq, bi, d, err)
		}
		if len(out) != bm.Count {
			s.decodeFails.Add(1)
			return nil, fmt.Errorf("store: segment %d block %d for device %s decoded %d events, index says %d",
				ref.meta.Seq, bi, d, len(out), bm.Count)
		}
		s.decodedBytes.Add(int64(bm.Len))
		if lookupBytes != nil {
			*lookupBytes += int64(bm.Len)
		}
		return out, nil
	})
}

// blockRunsCached appends decoded events for blocks [blo, bhi) of one
// segment to runs, one run per block. Cached blocks come straight from the
// block cache; all misses are paged in together — one backend view, one
// decode arena shared by every missed block — so a bulk scan pays the
// per-view and per-allocation cost once per segment instead of once per
// block. Decoded misses are inserted into the cache for later point
// lookups. The runs alias cached slices and must not be mutated.
func (s *Store) blockRunsCached(d event.DeviceID, ref *segmentRef, idx *segIndex, blo, bhi int, runs [][]event.Event) ([][]event.Event, error) {
	blocks := idx.metas
	base := len(runs)
	total := 0
	nMiss := 0
	for bi := blo; bi < bhi; bi++ {
		if evs, ok := s.segCache.Get(blockKey{d, ref.meta.Seq, bi}); ok {
			runs = append(runs, evs)
			continue
		}
		runs = append(runs, nil)
		nMiss++
		total += blocks[bi].Count
	}
	if nMiss == 0 {
		return runs, nil
	}
	arena := make([]event.Event, 0, total)
	pos := 0
	err := s.viewPayload(d, ref.meta.Seq, func(payload []byte) error {
		for bi := blo; bi < bhi; bi++ {
			ri := base + bi - blo
			if runs[ri] != nil {
				continue
			}
			bm := blocks[bi]
			out, derr := decodeBlockAt(payload, d, idx, bi, arena[pos:pos:pos+bm.Count])
			if derr != nil {
				return derr
			}
			if len(out) != bm.Count {
				return fmt.Errorf("store: segment %d block %d for device %s decoded %d events, index says %d",
					ref.meta.Seq, bi, d, len(out), bm.Count)
			}
			runs[ri] = out
			pos += bm.Count
			s.pageIns.Add(1)
			s.decodedBytes.Add(int64(bm.Len))
			s.segCache.Put(blockKey{d, ref.meta.Seq, bi}, out)
		}
		return nil
	})
	if err != nil {
		s.decodeFails.Add(1)
		return runs[:base], fmt.Errorf("store: decoding segment %d for device %s: %w", ref.meta.Seq, d, err)
	}
	return runs, nil
}

// mergedRunCached returns a multi-block segment's full contiguous run
// through the cache's mergedBlock sentinel entry, assembling it on a miss.
// Blocks partition the sorted run in order, so misses decode directly into
// their slot of one contiguous arena — the arena IS the merged run, no
// second copy — and individual block entries that contributed are deleted:
// the sentinel is probed before per-block entries on every read path, so
// keeping both would just double the cached heap (and the GC scan work)
// for every fully-scanned segment. History scans hit the same segments
// repeatedly; one entry per segment is their steady state.
func (s *Store) mergedRunCached(d event.DeviceID, ref *segmentRef, idx *segIndex) ([]event.Event, error) {
	key := blockKey{d, ref.meta.Seq, mergedBlock}
	if evs, hit := s.segCache.Get(key); hit {
		return evs, nil
	}
	blocks := idx.metas
	total := 0
	for _, bm := range blocks {
		total += bm.Count
	}
	merged := make([]event.Event, total)
	miss := make([][2]int, 0, len(blocks)) // (block index, event offset) still to decode
	pos := 0
	for bi := range blocks {
		if evs, ok := s.segCache.Get(blockKey{d, ref.meta.Seq, bi}); ok {
			if len(evs) != blocks[bi].Count {
				s.decodeFails.Add(1)
				return nil, fmt.Errorf("store: segment %d block %d for device %s cached %d events, index says %d",
					ref.meta.Seq, bi, d, len(evs), blocks[bi].Count)
			}
			copy(merged[pos:], evs)
			s.segCache.Delete(blockKey{d, ref.meta.Seq, bi})
		} else {
			miss = append(miss, [2]int{bi, pos})
		}
		pos += blocks[bi].Count
	}
	if len(miss) > 0 {
		err := s.viewPayload(d, ref.meta.Seq, func(payload []byte) error {
			for _, m := range miss {
				bi, off := m[0], m[1]
				bm := blocks[bi]
				out, derr := decodeBlockAt(payload, d, idx, bi, merged[off:off:off+bm.Count])
				if derr != nil {
					return derr
				}
				if len(out) != bm.Count {
					return fmt.Errorf("store: segment %d block %d for device %s decoded %d events, index says %d",
						ref.meta.Seq, bi, d, len(out), bm.Count)
				}
				s.pageIns.Add(1)
				s.decodedBytes.Add(int64(bm.Len))
			}
			return nil
		})
		if err != nil {
			s.decodeFails.Add(1)
			return nil, fmt.Errorf("store: decoding segment %d for device %s: %w", ref.meta.Seq, d, err)
		}
	}
	s.segCache.Put(key, merged)
	return merged, nil
}

// encodeSegmentVerified encodes evs per the configured block layout and
// round-trip verifies the payload — the decode re-parses the trailer and
// re-checks every CRC, so a mis-encoded segment is caught before it reaches
// the backend.
func (s *Store) encodeSegmentVerified(d event.DeviceID, evs []event.Event) ([]byte, error) {
	var payload []byte
	if s.segBlockEvents < 0 {
		payload = wal.EncodeEventBlock(nil, evs)
	} else {
		payload, _ = wal.EncodeSegment(nil, evs, s.segBlockEvents)
	}
	decoded, err := wal.DecodeSegment(payload, d, make([]event.Event, 0, len(evs)))
	if err == nil && len(decoded) != len(evs) {
		err = fmt.Errorf("store: segment round-trip decoded %d events, encoded %d", len(decoded), len(evs))
	}
	if err != nil {
		return nil, err
	}
	return payload, nil
}

// sealLocked compresses the device's head into an immutable segment: sort,
// encode (segment AP dictionary + delta-of-delta timestamps, with a block
// index in the trailer), verify by round-trip decode, store the payload in
// the backend, register the metadata, and start a fresh head. The block
// cache is deliberately NOT warmed from the seal: it holds what queries
// read, so write-heavy devices that are never queried cannot evict the read
// working set, and an idle store's footprint is the encoded payloads alone.
// Caller holds the exclusive lock.
//
// On failure the head is simply kept: the next append re-attempts the seal,
// and an over-full head is only a memory regression, never a correctness
// one.
func (s *Store) sealLocked(d event.DeviceID, lg *deviceLog) {
	s.ensureSorted(lg)
	payload, err := s.encodeSegmentVerified(d, lg.head)
	if err != nil {
		s.sealFails.Add(1)
		return
	}
	seq := lg.nextSeq
	if err := s.segBackend.Put(d, seq, payload); err != nil {
		s.sealFails.Add(1)
		return
	}
	lg.nextSeq++
	ref := &segmentRef{meta: wal.SegmentMeta{
		Seq:      seq,
		Count:    len(lg.head),
		MinNanos: lg.head[0].Time.UnixNano(),
		MaxNanos: lg.head[len(lg.head)-1].Time.UnixNano(),
		Bytes:    len(payload),
	}}
	lg.segs = append(lg.segs, ref)
	lg.segEvents += len(lg.head)
	s.segCount++
	s.segEvents += len(lg.head)
	s.segBytes += int64(len(payload))
	s.seals.Add(1)
	lg.head = nil
}

// decodeSegmentEvents appends a segment's full decode to dst, borrowing the
// payload from the backend. Bulk paths (materialization, occupancy rebuild,
// compaction) use it directly rather than through the block cache, so a
// one-off full read doesn't evict the point-lookup working set.
func (s *Store) decodeSegmentEvents(d event.DeviceID, ref *segmentRef, dst []event.Event) ([]event.Event, error) {
	var n int64
	out := dst
	err := s.viewPayload(d, ref.meta.Seq, func(payload []byte) error {
		n = int64(len(payload))
		var derr error
		out, derr = wal.DecodeSegment(payload, d, dst)
		return derr
	})
	if err != nil {
		s.decodeFails.Add(1)
		return dst, fmt.Errorf("store: decoding segment %d for device %s: %w", ref.meta.Seq, d, err)
	}
	// A payload torn exactly at a block boundary decodes cleanly to a prefix
	// (it is byte-identical to a valid shorter segment); the manifest count
	// is the only thing that can tell, so check it.
	if got := len(out) - len(dst); got != ref.meta.Count {
		s.decodeFails.Add(1)
		return dst, fmt.Errorf("store: segment %d for device %s decoded %d events, manifest says %d", ref.meta.Seq, d, got, ref.meta.Count)
	}
	s.decodedBytes.Add(n)
	return out, nil
}

// materializeLocked appends the device's full log — every sealed segment
// plus the head — to out in time order. Segments are decoded straight into
// out without populating the block cache. Caller holds a store lock and has
// sorted the head.
func (s *Store) materializeLocked(d event.DeviceID, lg *deviceLog, out []event.Event) ([]event.Event, error) {
	for _, ref := range lg.segs {
		var err error
		out, err = s.decodeSegmentEvents(d, ref, out)
		if err != nil {
			return out, err
		}
	}
	out = append(out, lg.head...)
	if !eventsSorted(out) {
		event.SortEvents(out)
	}
	return out, nil
}

// nanoTime bounds within which time.Time round-trips through UnixNano.
// Stored events always fit (they round-trip through the WAL codec); query
// windows are clamped so comparisons against segment metadata stay correct
// for arbitrarily wide windows.
var (
	minNanoTime = time.Unix(0, math.MinInt64)
	maxNanoTime = time.Unix(0, math.MaxInt64)
)

func clampedNanos(t time.Time) int64 {
	if t.Before(minNanoTime) {
		return math.MinInt64
	}
	if t.After(maxNanoTime) {
		return math.MaxInt64
	}
	return t.UnixNano()
}

// searchWindow returns the [lo, hi) index range of events with
// start ≤ Time ≤ end in a sorted slice.
func searchWindow(evs []event.Event, start, end time.Time) (int, int) {
	lo := sort.Search(len(evs), func(i int) bool { return !evs[i].Time.Before(start) })
	hi := sort.Search(len(evs), func(i int) bool { return evs[i].Time.After(end) })
	return lo, hi
}

// blockRange returns the [lo, hi) range of blocks whose time bounds overlap
// [startN, endN]. Blocks are consecutive ranges of a sorted segment —
// non-overlapping, both bounds non-decreasing — so both ends binary-search.
func blockRange(blocks []wal.BlockMeta, startN, endN int64) (int, int) {
	lo := sort.Search(len(blocks), func(i int) bool { return blocks[i].MaxNanos >= startN })
	hi := sort.Search(len(blocks), func(i int) bool { return blocks[i].MinNanos > endN })
	return lo, hi
}

// eventsSorted reports whether evs is sorted by the store's event order.
func eventsSorted(evs []event.Event) bool {
	for i := 1; i < len(evs); i++ {
		if evs[i].Before(evs[i-1]) {
			return false
		}
	}
	return true
}

// scanBuf is the pooled scratch a segmented read assembles its window or
// point-lookup neighborhood into. Pooled per call (Get/Put around each use),
// so re-entrant reads — the fine stage scans candidate logs while holding
// results of an outer scan — each get their own buffer. decoded accrues the
// encoded bytes a point lookup actually decoded (cache misses only).
type scanBuf struct {
	evs     []event.Event
	idx     []int
	runs    [][]event.Event
	decoded int64
}

var scanBufPool = sync.Pool{New: func() any { return new(scanBuf) }}

// mergeRuns appends the merge of k individually sorted, non-empty runs to
// out in the store's (Time, ID, Device) event order. The run list is kept
// sorted by head event; each step binary-searches how far the front run
// extends before the second run's head and copies that whole stretch. Runs
// that do not interleave — the common shape, since blocks within a segment
// never overlap and segments are sealed in rough time order — thus cost
// one wholesale copy each, and a store fragmented into thousands of tiny
// blocks still merges in O(m) instead of re-sorting every window. The
// order is total (event IDs are unique per device), so the result is
// exactly what sorting the concatenation would produce.
func mergeRuns(out []event.Event, runs [][]event.Event) []event.Event {
	// Insertion-sort the runs by head: they arrive in seal order, which is
	// already nearly sorted.
	for i := 1; i < len(runs); i++ {
		r := runs[i]
		j := i
		for ; j > 0 && r[0].Before(runs[j-1][0]); j-- {
			runs[j] = runs[j-1]
		}
		runs[j] = r
	}
	for len(runs) > 1 {
		r, next := runs[0], runs[1][0]
		// Everything in r strictly before the next run's head is safe to
		// emit wholesale. The heads are ordered, so cut ≥ 1: progress is
		// guaranteed.
		cut := sort.Search(len(r), func(j int) bool { return next.Before(r[j]) })
		out = append(out, r[:cut]...)
		if cut == len(r) {
			runs = runs[1:]
			continue
		}
		// Re-position the remainder by its new head.
		r = r[cut:]
		i := 1
		for ; i < len(runs) && runs[i][0].Before(r[0]); i++ {
			runs[i-1] = runs[i]
		}
		runs[i-1] = r
	}
	if len(runs) == 1 {
		out = append(out, runs[0]...)
	}
	return out
}

// scanWindowLocked is the segmented ScanEvents core: it assembles the
// device's events in [start, end] and hands them to fn. The window's
// overlapping segments contribute lazily decoded block runs — the block
// index prunes blocks outside the window without decoding them — and the
// runs plus the head are k-way merged (see mergeRuns) into a pooled buffer.
// Zero-copy fast paths cover the no-segments and single-source cases,
// including a window that lives inside one block of one segment. On a
// page-in or decode failure the scan degrades to an empty window — the
// corrupt block is refused, never served — with the failure counted in
// SegmentStats. Caller holds a store lock and has sorted the head.
func (s *Store) scanWindowLocked(d event.DeviceID, lg *deviceLog, start, end time.Time, delta time.Duration, fn func([]event.Event, time.Duration)) {
	hl, hh := searchWindow(lg.head, start, end)
	if len(lg.segs) == 0 || end.Before(start) {
		if hl >= hh {
			fn(nil, delta)
		} else {
			fn(lg.head[hl:hh], delta)
		}
		return
	}
	startN, endN := clampedNanos(start), clampedNanos(end)
	nOver := 0
	for _, ref := range lg.segs {
		if ref.meta.MaxNanos >= startN && ref.meta.MinNanos <= endN {
			nOver++
		}
	}
	if nOver == 0 {
		if hl >= hh {
			fn(nil, delta)
		} else {
			fn(lg.head[hl:hh], delta)
		}
		return
	}
	bp := scanBufPool.Get().(*scanBuf)
	runs := bp.runs[:0]
	ok := true
	for _, ref := range lg.segs {
		if ref.meta.MaxNanos < startN || ref.meta.MinNanos > endN {
			continue
		}
		// Fast path: a previous full-coverage scan already assembled this
		// segment into one contiguous run — one cache hit, one merge source.
		if evs, hit := s.segCache.Get(blockKey{d, ref.meta.Seq, mergedBlock}); hit {
			if lo, hi := searchWindow(evs, start, end); lo < hi {
				runs = append(runs, evs[lo:hi])
			}
			continue
		}
		idx, err := s.blocksFor(d, ref)
		if err != nil {
			ok = false
			break
		}
		blocks := idx.metas
		blo, bhi := blockRange(blocks, startN, endN)
		s.blockSkips.Add(int64(blo + len(blocks) - bhi))
		if blo == 0 && bhi == len(blocks) && len(blocks) > 1 {
			// Full coverage of a multi-block segment: assemble (or fetch)
			// the single merged run so every later scan pays one lookup —
			// and one cache entry — instead of one per block. History
			// scans (training, gap extraction) hit the same segments
			// repeatedly; this is their steady state.
			merged, merr := s.mergedRunCached(d, ref, idx)
			if merr != nil {
				ok = false
				break
			}
			if lo, hi := searchWindow(merged, start, end); lo < hi {
				runs = append(runs, merged[lo:hi])
			}
			continue
		}
		base := len(runs)
		runs, err = s.blockRunsCached(d, ref, idx, blo, bhi, runs)
		if err != nil {
			ok = false
			break
		}
		// Trim each block's run to the window in place; drop empty ones.
		keep := base
		for _, evs := range runs[base:] {
			if lo, hi := searchWindow(evs, start, end); lo < hi {
				runs[keep] = evs[lo:hi]
				keep++
			}
		}
		runs = runs[:keep]
	}
	out := bp.evs[:0]
	switch {
	case !ok:
		fn(nil, delta)
	case len(runs) == 0:
		if hl >= hh {
			fn(nil, delta)
		} else {
			fn(lg.head[hl:hh], delta)
		}
	case len(runs) == 1 && hl >= hh:
		// Single-source window: served zero-copy from the cached block.
		fn(runs[0], delta)
	default:
		if hl < hh {
			runs = append(runs, lg.head[hl:hh])
		}
		out = mergeRuns(out, runs)
		fn(out, delta)
	}
	// Drop the run views before pooling: they alias cached block decodes,
	// which the pool must not pin.
	for i := range runs {
		runs[i] = nil
	}
	bp.evs, bp.runs = out, runs[:0]
	scanBufPool.Put(bp)
}

// appendNeighborhood appends to buf the events adjacent to t in one sorted
// source: up to two at or before t and up to two after.
func appendNeighborhood(buf []event.Event, evs []event.Event, t time.Time) []event.Event {
	idx := sort.Search(len(evs), func(i int) bool { return evs[i].Time.After(t) })
	lo, hi := idx-2, idx+2
	if lo < 0 {
		lo = 0
	}
	if hi > len(evs) {
		hi = len(evs)
	}
	return append(buf, evs[lo:hi]...)
}

// leqStats returns how many events in buf have Time ≤ t (as nanos) and the
// second-largest such time (math.MinInt64 when fewer than two).
func leqStats(buf []event.Event, tN int64) (int, int64) {
	n := 0
	max1, max2 := int64(math.MinInt64), int64(math.MinInt64)
	for i := range buf {
		en := buf[i].Time.UnixNano()
		if en > tN {
			continue
		}
		n++
		if en >= max1 {
			max2, max1 = max1, en
		} else if en > max2 {
			max2 = en
		}
	}
	return n, max2
}

// gtStats returns how many events in buf have Time > t (as nanos) and the
// second-smallest such time (math.MaxInt64 when fewer than two).
func gtStats(buf []event.Event, tN int64) (int, int64) {
	n := 0
	min1, min2 := int64(math.MaxInt64), int64(math.MaxInt64)
	for i := range buf {
		en := buf[i].Time.UnixNano()
		if en <= tN {
			continue
		}
		n++
		if en <= min1 {
			min2, min1 = min1, en
		} else if en < min2 {
			min2 = en
		}
	}
	return n, min2
}

// appendSegNeighborhood appends to buf the events adjacent to t within one
// segment, decoding only the block containing t plus whatever neighboring
// blocks are needed to cover the two nearest events on each side (ties at
// exactly t can spill across block boundaries; the backward walk keeps
// decoding until two ≤-side events are in hand, so equal-time events still
// tie-break by ID exactly as a full decode would). Typically one or two
// block decodes; the rest of the segment's blocks are skipped via the index.
func (s *Store) appendSegNeighborhood(d event.DeviceID, ref *segmentRef, t time.Time, tN int64, buf []event.Event, bp *scanBuf) ([]event.Event, error) {
	// A scan may have assembled the segment's merged run already; the
	// neighborhood then costs one cache hit and zero decode.
	if evs, hit := s.segCache.Get(blockKey{d, ref.meta.Seq, mergedBlock}); hit {
		return appendNeighborhood(buf, evs, t), nil
	}
	idx, err := s.blocksFor(d, ref)
	if err != nil {
		return buf, err
	}
	blocks := idx.metas
	// Start from the last block whose first event is at or before t — the
	// block holding t's insertion point. The search steers by MinNanos only:
	// every block's min is an exact event time, while a non-final MaxNanos is
	// merely the successor's min (see wal.BlockMeta), and keying on it would
	// start one block early whenever t falls in the gap between two blocks.
	bi := sort.Search(len(blocks), func(i int) bool { return blocks[i].MinNanos > tN }) - 1
	if bi < 0 {
		bi = 0
	}
	used, leq, gt := 0, 0, 0
	decodeAt := func(i int) error {
		evs, err := s.blockEventsCached(d, ref, idx, i, &bp.decoded)
		if err != nil {
			return err
		}
		used++
		idx := sort.Search(len(evs), func(k int) bool { return evs[k].Time.After(t) })
		leq += idx
		gt += len(evs) - idx
		buf = appendNeighborhood(buf, evs, t)
		return nil
	}
	if err := decodeAt(bi); err != nil {
		return buf, err
	}
	// Every event at or before t lives in blocks ≤ bi (later blocks start
	// strictly after t), and equal-time events order by ID in seal order, so
	// the nearest neighbors on the ≤ side are bi's own — walking backward
	// while fewer than two are in hand covers ties spilling across block
	// boundaries exactly.
	for k := bi - 1; leq < 2 && k >= 0; k-- {
		if err := decodeAt(k); err != nil {
			return buf, err
		}
	}
	for j := bi + 1; gt < 2 && j < len(blocks); j++ {
		if err := decodeAt(j); err != nil {
			return buf, err
		}
	}
	s.blockSkips.Add(int64(len(blocks) - used))
	return buf, nil
}

// neighborhoodLocked assembles into bp the sorted set of events adjacent to
// t across every source (head + segments): at least the two nearest events
// on each side of t, drawn from whichever sources hold them.
//
// Timeline.At/APAt on time t only ever read the two events on each side of
// it — validity truncation uses the immediate neighbors and gap bounds use
// the straddling pair — so running them over this neighborhood reproduces
// the flat-log answer exactly. Segments whose time range overlaps t are
// always visited (block-granularly: see appendSegNeighborhood); segments
// entirely before (after) t are visited in decreasing-max (increasing-min)
// order and decoding stops as soon as the next segment provably cannot
// displace the two best candidates already found (ties keep decoding, so
// equal-time events still tie-break by ID). Caller holds a store lock and
// has sorted the head.
func (s *Store) neighborhoodLocked(d event.DeviceID, lg *deviceLog, t time.Time, bp *scanBuf) ([]event.Event, error) {
	s.pointLookups.Add(1)
	bp.decoded = 0
	defer func() { s.lookupDecodedBytes.Add(bp.decoded) }()
	buf := appendNeighborhood(bp.evs[:0], lg.head, t)
	tN := clampedNanos(t)
	before, after := bp.idx[:0], make([]int, 0)
	for i := range lg.segs {
		m := &lg.segs[i].meta
		switch {
		case m.MaxNanos < tN:
			// Insertion sort by MaxNanos descending.
			j := len(before)
			before = append(before, i)
			for ; j > 0 && lg.segs[before[j-1]].meta.MaxNanos < m.MaxNanos; j-- {
				before[j] = before[j-1]
			}
			before[j] = i
		case m.MinNanos > tN:
			// Insertion sort by MinNanos ascending.
			j := len(after)
			after = append(after, i)
			for ; j > 0 && lg.segs[after[j-1]].meta.MinNanos > m.MinNanos; j-- {
				after[j] = after[j-1]
			}
			after[j] = i
		default:
			var err error
			buf, err = s.appendSegNeighborhood(d, lg.segs[i], t, tN, buf, bp)
			if err != nil {
				bp.evs, bp.idx = buf, before
				return nil, err
			}
		}
	}
	for _, i := range before {
		n, second := leqStats(buf, tN)
		if n >= 2 && lg.segs[i].meta.MaxNanos < second {
			break
		}
		var err error
		buf, err = s.appendSegNeighborhood(d, lg.segs[i], t, tN, buf, bp)
		if err != nil {
			bp.evs, bp.idx = buf, before
			return nil, err
		}
	}
	for _, i := range after {
		n, second := gtStats(buf, tN)
		if n >= 2 && lg.segs[i].meta.MinNanos > second {
			break
		}
		var err error
		buf, err = s.appendSegNeighborhood(d, lg.segs[i], t, tN, buf, bp)
		if err != nil {
			bp.evs, bp.idx = buf, before
			return nil, err
		}
	}
	if !eventsSorted(buf) {
		event.SortEvents(buf)
	}
	bp.evs, bp.idx = buf, before
	return buf, nil
}

// RestoreSegments registers recovered segment metadata on an empty store —
// metadata only: no segment is decoded to restore it, which is what makes
// recovery incremental. Per-device sequence counters resume past the
// highest restored seq, and the occupancy index (when enabled) is rebuilt
// by streaming the segments — the one full read, which doubles as an
// integrity pass over the cold tier; run with occupancy disabled, restore
// touches no segment bytes at all. Block indexes are parsed lazily on first
// query, so restore cost stays proportional to the manifest.
func (s *Store) RestoreSegments(manifest map[event.DeviceID][]wal.SegmentMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count != 0 || len(s.logs) != 0 {
		return errors.New("store: RestoreSegments on a non-empty store")
	}
	for dev, metas := range manifest {
		if len(metas) == 0 {
			continue
		}
		sorted := make([]wal.SegmentMeta, len(metas))
		copy(sorted, metas)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })
		lg := &deviceLog{sorted: true, nextSeq: 1}
		for _, m := range sorted {
			lg.segs = append(lg.segs, &segmentRef{meta: m})
			if m.Seq >= lg.nextSeq {
				lg.nextSeq = m.Seq + 1
			}
			lg.segEvents += m.Count
			s.segCount++
			s.segEvents += m.Count
			s.segBytes += int64(m.Bytes)
			minT, maxT := time.Unix(0, m.MinNanos).UTC(), time.Unix(0, m.MaxNanos).UTC()
			if s.count == 0 || minT.Before(s.minTime) {
				s.minTime = minT
			}
			if s.count == 0 || maxT.After(s.maxTime) {
				s.maxTime = maxT
			}
			s.count += m.Count
		}
		s.logs[dev] = lg
	}
	s.segCache.Invalidate()
	if s.occ == nil {
		return nil
	}
	var scratch []event.Event
	for dev, lg := range s.logs {
		for _, ref := range lg.segs {
			var err error
			scratch, err = s.decodeSegmentEvents(dev, ref, scratch[:0])
			if err != nil {
				return fmt.Errorf("store: restoring segment %d for device %s: %w", ref.meta.Seq, dev, err)
			}
			for j := range scratch {
				s.occ.add(scratch[j])
			}
		}
	}
	return nil
}

// LiveSegmentSeqs captures, per device, the segment seqs the store
// currently references plus a floor (the device's next unissued seq): any
// record sealed after this capture carries a seq at or above the floor and
// is unconditionally live. The checkpoint path unions this with the seqs
// referenced by retained snapshot manifests before asking the backend to
// reclaim dead records.
func (s *Store) LiveSegmentSeqs() map[event.DeviceID]LiveSegments {
	s.mu.RLock()
	defer s.mu.RUnlock()
	live := make(map[event.DeviceID]LiveSegments, len(s.logs))
	for dev, lg := range s.logs {
		ls := LiveSegments{Floor: lg.nextSeq}
		if len(lg.segs) > 0 {
			ls.Seqs = make([]uint64, len(lg.segs))
			for i, ref := range lg.segs {
				ls.Seqs[i] = ref.meta.Seq
			}
		}
		live[dev] = ls
	}
	return live
}

// ReclaimSegments asks the backend to drop segment records that are neither
// referenced by the current store state nor by any of the given retained
// snapshot manifests (the fallback manifests crash recovery may still read
// — reclaiming their records would break recovery from an older snapshot).
// Returns the bytes reclaimed; zero with a nil error when the backend does
// not support reclamation. Call only after the current checkpoint has been
// published durably.
func (s *Store) ReclaimSegments(retained []map[event.DeviceID][]wal.SegmentMeta) (int64, error) {
	rb, ok := s.segBackend.(ReclaimableBackend)
	if !ok {
		return 0, nil
	}
	live := s.LiveSegmentSeqs()
	for _, manifest := range retained {
		for dev, metas := range manifest {
			ls := live[dev]
			for _, m := range metas {
				if !seqLive(m.Seq, ls) {
					ls.Seqs = append(ls.Seqs, m.Seq)
				}
			}
			live[dev] = ls
		}
	}
	return rb.Reclaim(live)
}

// CompactRuntSegments merges runt segments — sealed blocks holding fewer
// than MaxEvents/4 events, the debris of checkpoint-time partial seals and
// low-traffic devices — into their predecessor segment, provided the
// combined block still fits under MaxEvents. Compaction re-seals the merged
// events under a fresh sequence number and replaces the two refs with one,
// shrinking the per-device manifest. The superseded records are dropped
// from the cold tier by the next checkpoint's reclaim pass (see
// ReclaimSegments); until then last-wins recovery simply ignores them.
// Returns the number of merges performed. Failures leave the original refs
// untouched: compaction is a pure space optimization, never a correctness
// risk.
func (s *Store) CompactRuntSegments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.segMax <= 0 {
		return 0
	}
	runt := s.segMax / 4
	if runt < 1 {
		runt = 1
	}
	merged := 0
	for d, lg := range s.logs {
		if len(lg.segs) < 2 {
			continue
		}
		out := make([]*segmentRef, 0, len(lg.segs))
		out = append(out, lg.segs[0])
		changed := false
		for i := 1; i < len(lg.segs); i++ {
			cur := lg.segs[i]
			prev := out[len(out)-1]
			if cur.meta.Count >= runt || prev.meta.Count+cur.meta.Count > s.segMax {
				out = append(out, cur)
				continue
			}
			ref, ok := s.mergeSegmentsLocked(d, lg, prev, cur)
			if !ok {
				out = append(out, cur)
				continue
			}
			out[len(out)-1] = ref
			changed = true
			merged++
		}
		if changed {
			lg.segs = out
		}
	}
	return merged
}

// mergeSegmentsLocked re-seals two adjacent segments as one: decode both,
// merge-sort (out-of-order ingest means ranges can overlap), encode under
// the configured block layout, and store under a fresh sequence number.
// Caller holds the exclusive lock and splices the returned ref in place of
// the pair.
func (s *Store) mergeSegmentsLocked(d event.DeviceID, lg *deviceLog, a, b *segmentRef) (*segmentRef, bool) {
	evs, err := s.decodeSegmentEvents(d, a, make([]event.Event, 0, a.meta.Count+b.meta.Count))
	if err == nil {
		evs, err = s.decodeSegmentEvents(d, b, evs)
	}
	if err != nil {
		s.compactFails.Add(1)
		return nil, false
	}
	if !eventsSorted(evs) {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })
	}
	payload, err := s.encodeSegmentVerified(d, evs)
	if err != nil {
		s.compactFails.Add(1)
		return nil, false
	}
	seq := lg.nextSeq
	if err := s.segBackend.Put(d, seq, payload); err != nil {
		s.compactFails.Add(1)
		return nil, false
	}
	lg.nextSeq++
	s.segCount--
	s.segBytes += int64(len(payload)) - int64(a.meta.Bytes) - int64(b.meta.Bytes)
	s.compactions.Add(1)
	ref := &segmentRef{meta: wal.SegmentMeta{
		Seq:      seq,
		Count:    len(evs),
		MinNanos: evs[0].Time.UnixNano(),
		MaxNanos: evs[len(evs)-1].Time.UnixNano(),
		Bytes:    len(payload),
	}}
	return ref, true
}

// CheckpointState is the store's durable state in incremental-snapshot
// form: the mutable heads in full plus a manifest of sealed segments —
// metadata only, since the segment payloads are already durable in the
// backend (SyncSegments). It shares nothing with the live store.
type CheckpointState struct {
	NextID   int64
	Deltas   map[event.DeviceID]time.Duration
	Heads    map[event.DeviceID][]event.Event
	Segments map[event.DeviceID][]wal.SegmentMeta
}

// CheckpointState captures the store's durable state for an incremental
// checkpoint. Unlike SnapshotState it never materializes sealed segments:
// capture cost is proportional to the mutable heads, not total history.
func (s *Store) CheckpointState() CheckpointState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := CheckpointState{
		NextID:   s.nextID,
		Deltas:   make(map[event.DeviceID]time.Duration, len(s.deltas)),
		Heads:    make(map[event.DeviceID][]event.Event, len(s.logs)),
		Segments: make(map[event.DeviceID][]wal.SegmentMeta),
	}
	for d, dl := range s.deltas {
		st.Deltas[d] = dl
	}
	for dev, lg := range s.logs {
		s.ensureSorted(lg)
		if len(lg.head) > 0 {
			cp := make([]event.Event, len(lg.head))
			copy(cp, lg.head)
			st.Heads[dev] = cp
		}
		if len(lg.segs) > 0 {
			metas := make([]wal.SegmentMeta, len(lg.segs))
			for i := range lg.segs {
				metas[i] = lg.segs[i].meta
			}
			st.Segments[dev] = metas
		}
	}
	return st
}

// SegmentStats reports the log-structured layout's shape and traffic.
type SegmentStats struct {
	// Enabled reports whether heads are sealed into segments; MaxEvents is
	// the seal threshold. BlockEvents is the intra-segment block size
	// (negative = legacy whole-segment encoding).
	Enabled     bool
	MaxEvents   int
	BlockEvents int
	// ColdTier reports whether sealed payloads live on disk (a persistent
	// backend) rather than in memory.
	ColdTier bool
	// Segments / SegmentEvents / HeadEvents split the store's resident
	// shape; EncodedBytes is the compressed size of all sealed payloads.
	Segments      int
	SegmentEvents int
	HeadEvents    int
	EncodedBytes  int64
	// Seals / SealFailures count seal attempts; PageIns counts block
	// decodes from the backend (block-cache misses), CacheHits the reads
	// served without one. DecodedBytes is the encoded bytes those decodes
	// consumed. DecodeFailures counts refused page-ins (corrupt or missing
	// payloads/blocks).
	Seals          int64
	SealFailures   int64
	PageIns        int64
	DecodedBytes   int64
	CacheHits      int64
	CacheSize      int
	CacheCapacity  int
	DecodeFailures int64
	// CachedBytes approximates the heap bytes held by the decoded-block
	// cache — the GC-visible decoded working set, as opposed to
	// Backend.MappedBytes which the OS owns.
	CachedBytes int64
	// PointLookups counts segmented point lookups (At/CurrentAP/...);
	// LookupDecodedBytes the encoded bytes those lookups decoded (cache
	// misses only). Their ratio is the bytes-decoded-per-point-lookup the
	// memory benchmark gates.
	PointLookups       int64
	LookupDecodedBytes int64
	// BlockSkips counts blocks pruned via the block index without being
	// decoded; IndexLoads counts block-index trailer parses.
	BlockSkips int64
	IndexLoads int64
	// Compactions counts runt-segment merges performed at checkpoint;
	// CompactionFailures counts merges abandoned (decode or backend
	// errors), which leave the original segments in place.
	Compactions        int64
	CompactionFailures int64
	// Backend reports storage-level stats — mmap residency and cold-tier
	// reclamation — for backends that expose them.
	Backend BackendStats
}

// SegmentStats returns the segmented layout's current shape and counters.
func (s *Store) SegmentStats() SegmentStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cst := s.segCache.Stats()
	st := SegmentStats{
		Enabled:            s.segMax > 0,
		MaxEvents:          s.segMax,
		BlockEvents:        s.segBlockEvents,
		ColdTier:           s.segBackend.Persistent(),
		Segments:           s.segCount,
		SegmentEvents:      s.segEvents,
		HeadEvents:         s.count - s.segEvents,
		EncodedBytes:       s.segBytes,
		Seals:              s.seals.Load(),
		SealFailures:       s.sealFails.Load(),
		PageIns:            s.pageIns.Load(),
		DecodedBytes:       s.decodedBytes.Load(),
		CacheHits:          cst.Hits,
		CacheSize:          cst.Size,
		CacheCapacity:      cst.Capacity,
		CachedBytes:        cst.Weight,
		DecodeFailures:     s.decodeFails.Load(),
		PointLookups:       s.pointLookups.Load(),
		LookupDecodedBytes: s.lookupDecodedBytes.Load(),
		BlockSkips:         s.blockSkips.Load(),
		IndexLoads:         s.indexLoads.Load(),
		Compactions:        s.compactions.Load(),
		CompactionFailures: s.compactFails.Load(),
	}
	if sb, ok := s.segBackend.(StatsBackend); ok {
		st.Backend = sb.BackendStats()
	}
	return st
}
