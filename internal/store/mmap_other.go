//go:build !unix

package store

import (
	"errors"
	"os"
)

// mmapSupported reports whether this platform can memory-map cold-tier
// segment files; here the cold tier always uses the portable read-at path.
const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("store: mmap not supported on this platform")
}

func munmapFile(b []byte) error { return nil }
