package store

import (
	"fmt"
	"testing"
	"time"

	"locater/internal/event"
)

// seedBench fills a store with n events across k devices.
func seedBench(b *testing.B, n, k int) *Store {
	b.Helper()
	s := New(0)
	evs := make([]event.Event, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, event.Event{
			Device: event.DeviceID(fmt.Sprintf("d%03d", i%k)),
			Time:   t0.Add(time.Duration(i) * time.Minute),
			AP:     "ap",
		})
	}
	if _, err := s.Ingest(evs); err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkIngestBatch(b *testing.B) {
	evs := make([]event.Event, 10000)
	for i := range evs {
		evs[i] = event.Event{
			Device: event.DeviceID(fmt.Sprintf("d%03d", i%50)),
			Time:   t0.Add(time.Duration(i) * time.Second),
			AP:     "ap",
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(0)
		if _, err := s.Ingest(evs); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(evs)))
}

func BenchmarkEventsBetween(b *testing.B) {
	s := seedBench(b, 100000, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := event.DeviceID(fmt.Sprintf("d%03d", i%100))
		start := t0.Add(time.Duration(i%1000) * time.Hour)
		s.EventsBetween(dev, start, start.Add(8*time.Hour))
	}
}

func BenchmarkAt(b *testing.B) {
	s := seedBench(b, 50000, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := event.DeviceID(fmt.Sprintf("d%03d", i%50))
		if _, _, err := s.At(dev, t0.Add(time.Duration(i%50000)*time.Minute)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkActiveDevices(b *testing.B) {
	s := seedBench(b, 100000, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := t0.Add(time.Duration(i%1000) * time.Hour)
		s.ActiveDevices(start, start.Add(time.Hour))
	}
}
