package store

import (
	"fmt"
	"testing"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// seedBench fills a store with n events across k devices.
func seedBench(b *testing.B, n, k int) *Store {
	b.Helper()
	s := New(0)
	evs := make([]event.Event, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, event.Event{
			Device: event.DeviceID(fmt.Sprintf("d%03d", i%k)),
			Time:   t0.Add(time.Duration(i) * time.Minute),
			AP:     "ap",
		})
	}
	if _, err := s.Ingest(evs); err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkIngestBatch(b *testing.B) {
	evs := make([]event.Event, 10000)
	for i := range evs {
		evs[i] = event.Event{
			Device: event.DeviceID(fmt.Sprintf("d%03d", i%50)),
			Time:   t0.Add(time.Duration(i) * time.Second),
			AP:     "ap",
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(0)
		if _, err := s.Ingest(evs); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(evs)))
}

func BenchmarkEventsBetween(b *testing.B) {
	s := seedBench(b, 100000, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := event.DeviceID(fmt.Sprintf("d%03d", i%100))
		start := t0.Add(time.Duration(i%1000) * time.Hour)
		s.EventsBetween(dev, start, start.Add(8*time.Hour))
	}
}

func BenchmarkAt(b *testing.B) {
	s := seedBench(b, 50000, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := event.DeviceID(fmt.Sprintf("d%03d", i%50))
		if _, _, err := s.At(dev, t0.Add(time.Duration(i%50000)*time.Minute)); err != nil {
			b.Fatal(err)
		}
	}
}

// seedActiveWindow builds a store with n devices whose history is spread
// over a day, plus a fixed-size active set with one extra event inside the
// benchmark's query window — so the number of active devices stays constant
// while the total device count scales.
func seedActiveWindow(b *testing.B, n, active int, indexed bool) (*Store, time.Time, time.Time) {
	b.Helper()
	s := New(0)
	if !indexed {
		s.ConfigureOccupancy(0, false)
	}
	winStart := t0.Add(30 * 24 * time.Hour)
	evs := make([]event.Event, 0, n+active)
	for i := 0; i < n; i++ {
		evs = append(evs, event.Event{
			Device: event.DeviceID(fmt.Sprintf("d%06d", i)),
			AP:     space.APID(fmt.Sprintf("ap%02d", i%16)),
			Time:   t0.Add(time.Duration(i%1440) * time.Minute),
		})
	}
	for i := 0; i < active; i++ {
		evs = append(evs, event.Event{
			Device: event.DeviceID(fmt.Sprintf("d%06d", i*(n/active))),
			AP:     space.APID(fmt.Sprintf("ap%02d", i%16)),
			Time:   winStart.Add(time.Duration(i%30) * time.Minute),
		})
	}
	if _, err := s.Ingest(evs); err != nil {
		b.Fatal(err)
	}
	return s, winStart.Add(-5 * time.Minute), winStart.Add(35 * time.Minute)
}

// BenchmarkActiveDevices contrasts the occupancy index with the full-scan
// baseline across total device counts at a fixed active set (64 devices):
// the indexed cost should stay near-constant while the scan grows linearly.
func BenchmarkActiveDevices(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		for _, mode := range []struct {
			name    string
			indexed bool
		}{{"indexed", true}, {"scan", false}} {
			b.Run(fmt.Sprintf("devices=%d/%s", n, mode.name), func(b *testing.B) {
				s, start, end := seedActiveWindow(b, n, 64, mode.indexed)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := s.ActiveDevices(start, end); len(got) != 64 {
						b.Fatalf("active = %d, want 64", len(got))
					}
				}
			})
		}
	}
}

// BenchmarkActiveDevicesAt measures the region-scoped lookup the
// fine-grained neighbor discovery issues: only 4 of 16 APs are in scope.
func BenchmarkActiveDevicesAt(b *testing.B) {
	aps := []space.APID{"ap00", "ap01", "ap02", "ap03"}
	for _, n := range []int{1000, 10000} {
		for _, mode := range []struct {
			name    string
			indexed bool
		}{{"indexed", true}, {"scan", false}} {
			b.Run(fmt.Sprintf("devices=%d/%s", n, mode.name), func(b *testing.B) {
				s, start, end := seedActiveWindow(b, n, 64, mode.indexed)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := s.ActiveDevicesAt(aps, start, end); len(got) == 0 {
						b.Fatal("no active devices in scope")
					}
				}
			})
		}
	}
}
