package store

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"

	"locater/internal/event"
)

// segKey identifies one sealed segment: segments are per-device and numbered
// densely in seal order.
type segKey struct {
	dev event.DeviceID
	seq uint64
}

// SegmentBackend stores the encoded payloads of sealed, immutable event
// segments, keyed by (device, per-device sequence number). The store seals
// segments under its exclusive lock but pages them back in under the shared
// lock, so implementations must be safe for concurrent use.
//
// Segments are immutable once written, with one exception: crash recovery
// can re-seal a head the previous run had already sealed but not yet
// captured in a snapshot manifest, re-issuing the same (device, seq) with
// identical contents. Put must let the newest write win. Payloads carry
// their own CRC trailers (wal.EncodeSegment), so backends store them
// opaquely and corruption is detected at decode time, not here.
type SegmentBackend interface {
	// Put stores one sealed segment's payload. The slice is not retained.
	Put(d event.DeviceID, seq uint64, payload []byte) error
	// Get returns the payload stored for (d, seq); the caller owns the
	// returned slice.
	Get(d event.DeviceID, seq uint64) ([]byte, error)
	// Sync makes every Put so far durable. A checkpoint calls it before
	// publishing a manifest that references the segments.
	Sync() error
	// Persistent reports whether payloads survive a process restart (a cold
	// tier) or live in memory only (a compressed warm tier).
	Persistent() bool
	// Close releases backend resources; the store issues no calls after it.
	Close() error
}

// ViewBackend is the zero-copy read seam: View lends the caller a read-only
// view of a payload instead of heap-copying it. The slice is valid only for
// the duration of fn and must not be retained, mutated, or leaked — it may
// alias a shared memory mapping whose lifetime the backend manages (the
// mapping is guaranteed to outlive fn via refcounting). The store prefers
// View over Get wherever the payload is only decoded and dropped, which is
// every read path; with the mmap backend that makes sealed history
// OS-page-resident instead of heap-resident.
type ViewBackend interface {
	SegmentBackend
	View(d event.DeviceID, seq uint64, fn func(payload []byte) error) error
}

// LiveSegments names the segment records one device needs to keep through a
// cold-tier rewrite: the seqs referenced by the current store state and
// every retained snapshot manifest, plus a floor — any record with
// seq >= Floor was sealed after the live set was captured (seqs are
// per-device monotone) and is kept unconditionally, so reclamation can run
// concurrently with fresh seals without coordinating with them.
type LiveSegments struct {
	Seqs  []uint64
	Floor uint64
}

// ReclaimableBackend is implemented by backends that can drop dead segment
// records — payloads superseded by a re-seal under the same seq, or
// orphaned by runt-segment compaction under a fresh seq. Reclaim rewrites
// storage keeping only the live records and returns the bytes reclaimed.
// Implementations must be crash-safe: a crash mid-reclaim leaves every live
// record readable.
type ReclaimableBackend interface {
	Reclaim(live map[event.DeviceID]LiveSegments) (reclaimedBytes int64, err error)
}

// BackendStats reports a segment backend's storage-level shape and traffic.
// All fields are zero for backends without the corresponding feature.
type BackendStats struct {
	// MappedFiles / MappedBytes are the live memory-mapped cold-tier files
	// and their total mapped size — bytes resident at the OS's discretion,
	// invisible to the Go heap and the GC. Remaps counts re-mappings after
	// file growth or rewrite.
	MappedFiles int
	MappedBytes int64
	Remaps      int64
	// Rewrites / RewriteFailures / ReclaimedBytes report cold-tier file
	// reclamation (see ReclaimableBackend).
	Rewrites        int64
	RewriteFailures int64
	ReclaimedBytes  int64
}

// StatsBackend is implemented by backends that report storage-level
// statistics.
type StatsBackend interface {
	BackendStats() BackendStats
}

// seqLive reports whether a record with the given seq survives a reclaim
// against the device's live set.
func seqLive(seq uint64, ls LiveSegments) bool {
	if seq >= ls.Floor {
		return true
	}
	for _, s := range ls.Seqs {
		if s == seq {
			return true
		}
	}
	return false
}

// memSegmentBackend keeps encoded segments in a map: the compressed warm
// tier used when no cold-tier directory is configured. Even in memory the
// payloads are the columnar encoding, so sealed history costs a few bytes
// per event instead of a 64-byte Event struct.
type memSegmentBackend struct {
	mu   sync.RWMutex
	segs map[segKey][]byte
}

// NewMemorySegmentBackend returns an in-memory SegmentBackend.
func NewMemorySegmentBackend() SegmentBackend {
	return &memSegmentBackend{segs: make(map[segKey][]byte)}
}

func (b *memSegmentBackend) Put(d event.DeviceID, seq uint64, payload []byte) error {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	b.mu.Lock()
	b.segs[segKey{d, seq}] = cp
	b.mu.Unlock()
	return nil
}

func (b *memSegmentBackend) Get(d event.DeviceID, seq uint64) ([]byte, error) {
	b.mu.RLock()
	p, ok := b.segs[segKey{d, seq}]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("store: segment %d for device %s not in memory tier", seq, d)
	}
	cp := make([]byte, len(p))
	copy(cp, p)
	return cp, nil
}

// View lends the stored payload without copying. Put never mutates a
// stored slice in place (a re-seal stores a fresh copy), so the borrowed
// view stays valid for fn even across a concurrent last-wins overwrite.
func (b *memSegmentBackend) View(d event.DeviceID, seq uint64, fn func(payload []byte) error) error {
	b.mu.RLock()
	p, ok := b.segs[segKey{d, seq}]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("store: segment %d for device %s not in memory tier", seq, d)
	}
	return fn(p)
}

// Reclaim drops payloads that are no longer live — for the memory tier,
// the map entries orphaned by runt-segment compaction.
func (b *memSegmentBackend) Reclaim(live map[event.DeviceID]LiveSegments) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	reclaimed := int64(0)
	for k, p := range b.segs {
		ls, ok := live[k.dev]
		if !ok || seqLive(k.seq, ls) {
			continue
		}
		reclaimed += int64(len(p))
		delete(b.segs, k)
	}
	return reclaimed, nil
}

func (b *memSegmentBackend) Sync() error      { return nil }
func (b *memSegmentBackend) Persistent() bool { return false }
func (b *memSegmentBackend) Close() error     { return nil }

// --- Cold tier: per-device segment files -------------------------------------

// segFileMagic leads every segment file. The format is append-only: after
// the magic come records of [seq u64 LE][payload length u32 LE][payload],
// where the payload is a wal.EncodeEventBlock block (CRC trailer included).
// A crash can leave a torn final record; the scan on first open truncates
// it, exactly like the WAL's torn-record handling. A duplicate seq — crash
// recovery re-sealing an unmanifested head — appends a second record; the
// scan lets the last one win.
const segFileMagic = "LOCSEG1\n"

// segRecHdrLen is the per-record header: 8-byte seq + 4-byte payload length.
const segRecHdrLen = 12

// segLoc locates one segment payload inside its device file.
type segLoc struct {
	off int64
	n   int
}

// maxMappedFiles bounds how many cold-tier device files the mmap backend
// keeps mapped at once. Fleet-scale stores hold one file per device —
// mapping them all would exhaust the kernel's per-process mapping budget
// (vm.max_map_count) — so mappings are an LRU-bounded working set,
// re-established on demand.
const maxMappedFiles = 512

// reclaimMinDeadBytes / reclaimDeadFraction gate cold-tier file rewrites: a
// file is rewritten only when it carries at least this many dead bytes AND
// the dead share is at least 1/reclaimDeadFraction of the file, so
// reclamation cost is always amortized against real space.
const (
	reclaimMinDeadBytes = 4 << 10
	reclaimDeadFraction = 4
	segTmpSuffix        = ".tmp"
)

// fileMapping is one device file's live memory mapping. refs counts
// borrowed views (View calls in flight); a mapping displaced by growth,
// rewrite, or LRU eviction while borrowed is doomed instead of unmapped and
// released when the last borrower returns, so a view handed to a decoder
// can never be unmapped underneath it.
type fileMapping struct {
	dev        event.DeviceID
	data       []byte
	refs       int
	doomed     bool
	prev, next *fileMapping
}

// diskSegmentBackend spills sealed segments to per-device append-only files
// under dir, fanned out over 256 hash subdirectories so fleet-scale device
// counts don't pile into one directory. Files are opened per operation (no
// resident descriptor per device); the per-device record index is built
// lazily on first access and maintained on Put.
//
// With useMmap set (NewMmapSegmentBackend on a supporting platform), reads
// borrow views of an LRU-bounded set of per-file memory mappings instead of
// heap-copying payloads: sealed history is then resident at the OS's
// discretion — evictable clean pages, not GC-visible heap. Appends go
// through the file descriptor (same page cache, so an existing mapping of
// the file's prefix stays coherent); a read past the mapped prefix remaps
// at the grown size.
type diskSegmentBackend struct {
	dir     string
	useMmap bool

	mu    sync.Mutex
	index map[event.DeviceID]map[uint64]segLoc
	sizes map[event.DeviceID]int64
	// dirty holds device files written since the last Sync; newDirs the
	// directories that gained entries and need a directory fsync.
	dirty   map[string]struct{}
	newDirs map[string]struct{}

	// maps is the LRU-bounded working set of live file mappings
	// (mapHead = most recently used). Counters feed BackendStats.
	maps             map[event.DeviceID]*fileMapping
	mapHead, mapTail *fileMapping
	mappedBytes      int64
	remaps           int64
	rewrites         int64
	rewriteFails     int64
	reclaimedBytes   int64
}

// NewDiskSegmentBackend returns a SegmentBackend storing segments in
// per-device files under dir, creating it if needed. Reads use portable
// positional I/O; see NewMmapSegmentBackend for the memory-mapped variant.
func NewDiskSegmentBackend(dir string) (SegmentBackend, error) {
	return newDiskBackend(dir, false)
}

// NewMmapSegmentBackend returns a cold-tier SegmentBackend that serves
// reads from memory-mapped per-device files where the platform supports it,
// falling back to the portable read-at path where it does not. The two
// variants are bit-for-bit compatible on disk.
func NewMmapSegmentBackend(dir string) (SegmentBackend, error) {
	return newDiskBackend(dir, mmapSupported)
}

func newDiskBackend(dir string, useMmap bool) (SegmentBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating cold-tier dir: %w", err)
	}
	return &diskSegmentBackend{
		dir:     dir,
		useMmap: useMmap,
		index:   make(map[event.DeviceID]map[uint64]segLoc),
		sizes:   make(map[event.DeviceID]int64),
		dirty:   make(map[string]struct{}),
		newDirs: make(map[string]struct{}),
		maps:    make(map[event.DeviceID]*fileMapping),
	}, nil
}

func (b *diskSegmentBackend) pathFor(d event.DeviceID) string {
	h := fnv.New32a()
	io.WriteString(h, string(d))
	return filepath.Join(b.dir, fmt.Sprintf("%02x", h.Sum32()&0xff), hex.EncodeToString([]byte(d))+".seg")
}

// loadLocked scans a device's file into the index on first access,
// truncating a torn final record. Caller holds b.mu.
func (b *diskSegmentBackend) loadLocked(d event.DeviceID) (map[uint64]segLoc, error) {
	if idx, ok := b.index[d]; ok {
		return idx, nil
	}
	idx := make(map[uint64]segLoc)
	path := b.pathFor(d)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		b.index[d] = idx
		b.sizes[d] = 0
		return idx, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: opening segment file: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: segment file stat: %w", err)
	}
	size := st.Size()
	valid := int64(0)
	if size >= int64(len(segFileMagic)) {
		magic := make([]byte, len(segFileMagic))
		if _, err := f.ReadAt(magic, 0); err != nil {
			return nil, fmt.Errorf("store: segment file magic: %w", err)
		}
		if string(magic) != segFileMagic {
			return nil, fmt.Errorf("store: %s: bad segment file magic %q", path, magic)
		}
		off := int64(len(segFileMagic))
		hdr := make([]byte, segRecHdrLen)
		for off+segRecHdrLen <= size {
			if _, err := f.ReadAt(hdr, off); err != nil {
				return nil, fmt.Errorf("store: segment record header: %w", err)
			}
			n := int64(binary.LittleEndian.Uint32(hdr[8:12]))
			if off+segRecHdrLen+n > size {
				break // torn final record
			}
			seq := binary.LittleEndian.Uint64(hdr[0:8])
			idx[seq] = segLoc{off: off + segRecHdrLen, n: int(n)}
			off += segRecHdrLen + n
		}
		valid = off
	}
	// A torn tail (or a torn magic from a crash during file creation) is
	// dropped so appends resume at a clean boundary.
	if valid < size {
		if err := f.Truncate(valid); err != nil {
			return nil, fmt.Errorf("store: truncating torn segment record: %w", err)
		}
	}
	b.index[d] = idx
	b.sizes[d] = valid
	return idx, nil
}

func (b *diskSegmentBackend) Put(d event.DeviceID, seq uint64, payload []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	idx, err := b.loadLocked(d)
	if err != nil {
		return err
	}
	path := b.pathFor(d)
	size := b.sizes[d]
	if size == 0 {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("store: creating segment subdir: %w", err)
		}
		b.newDirs[filepath.Dir(path)] = struct{}{}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening segment file: %w", err)
	}
	defer f.Close()
	rec := make([]byte, 0, len(segFileMagic)+segRecHdrLen+len(payload))
	if size == 0 {
		rec = append(rec, segFileMagic...)
	}
	rec = binary.LittleEndian.AppendUint64(rec, seq)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	if _, err := f.WriteAt(rec, size); err != nil {
		return fmt.Errorf("store: writing segment: %w", err)
	}
	off := size + int64(len(rec)) - int64(len(payload))
	idx[seq] = segLoc{off: off, n: len(payload)}
	b.sizes[d] = size + int64(len(rec))
	b.dirty[path] = struct{}{}
	return nil
}

func (b *diskSegmentBackend) Get(d event.DeviceID, seq uint64) ([]byte, error) {
	b.mu.Lock()
	idx, err := b.loadLocked(d)
	if err != nil {
		b.mu.Unlock()
		return nil, err
	}
	loc, ok := idx[seq]
	path := b.pathFor(d)
	b.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: segment %d for device %s not in cold tier", seq, d)
	}
	// The read runs outside the lock: records are immutable once indexed
	// and appends never move them, so concurrent page-ins proceed in
	// parallel.
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: opening segment file: %w", err)
	}
	defer f.Close()
	p := make([]byte, loc.n)
	if _, err := f.ReadAt(p, loc.off); err != nil {
		return nil, fmt.Errorf("store: reading segment %d for device %s: %w", seq, d, err)
	}
	return p, nil
}

func (b *diskSegmentBackend) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for path := range b.dirty {
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			return fmt.Errorf("store: syncing segment file: %w", err)
		}
		err = f.Sync()
		f.Close()
		if err != nil {
			return fmt.Errorf("store: syncing segment file: %w", err)
		}
		delete(b.dirty, path)
	}
	for dir := range b.newDirs {
		f, err := os.Open(dir)
		if err != nil {
			return fmt.Errorf("store: syncing segment dir: %w", err)
		}
		err = f.Sync()
		f.Close()
		if err != nil {
			return fmt.Errorf("store: syncing segment dir: %w", err)
		}
		delete(b.newDirs, dir)
	}
	// The root dir gains subdirectories; one sync covers them all.
	f, err := os.Open(b.dir)
	if err != nil {
		return fmt.Errorf("store: syncing cold-tier dir: %w", err)
	}
	err = f.Sync()
	f.Close()
	if err != nil {
		return fmt.Errorf("store: syncing cold-tier dir: %w", err)
	}
	return nil
}

func (b *diskSegmentBackend) Persistent() bool { return true }

// --- Mapping working set ------------------------------------------------------

func (b *diskSegmentBackend) mapUnlinkLocked(m *fileMapping) {
	if m.prev != nil {
		m.prev.next = m.next
	} else if b.mapHead == m {
		b.mapHead = m.next
	}
	if m.next != nil {
		m.next.prev = m.prev
	} else if b.mapTail == m {
		b.mapTail = m.prev
	}
	m.prev, m.next = nil, nil
}

func (b *diskSegmentBackend) mapPushFrontLocked(m *fileMapping) {
	m.next = b.mapHead
	if b.mapHead != nil {
		b.mapHead.prev = m
	}
	b.mapHead = m
	if b.mapTail == nil {
		b.mapTail = m
	}
}

// dropMappingLocked retires a mapping from the working set. If a borrowed
// view is in flight the mapping is doomed and the last returning borrower
// unmaps it; otherwise it is unmapped now. Caller holds b.mu.
func (b *diskSegmentBackend) dropMappingLocked(m *fileMapping) {
	b.mapUnlinkLocked(m)
	delete(b.maps, m.dev)
	if m.refs > 0 {
		m.doomed = true
		return
	}
	b.mappedBytes -= int64(len(m.data))
	munmapFile(m.data)
	m.data = nil
}

// mappingLocked returns a mapping of d's file covering at least need bytes,
// reusing the live one when it is long enough and (re)mapping at the
// current file size otherwise. Caller holds b.mu; the returned mapping is
// valid until dropped, so callers that release b.mu must hold a ref.
func (b *diskSegmentBackend) mappingLocked(d event.DeviceID, need int64) (*fileMapping, error) {
	if m, ok := b.maps[d]; ok {
		if int64(len(m.data)) >= need {
			if b.mapHead != m {
				b.mapUnlinkLocked(m)
				b.mapPushFrontLocked(m)
			}
			return m, nil
		}
		// The file grew past the mapped prefix: remap at the new size. The
		// old mapping stays valid for in-flight views (records never move),
		// so it is doomed, not unmapped.
		b.dropMappingLocked(m)
		b.remaps++
	}
	f, err := os.Open(b.pathFor(d))
	if err != nil {
		return nil, fmt.Errorf("store: opening segment file for mmap: %w", err)
	}
	data, err := mmapFile(f, b.sizes[d])
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("store: mapping segment file: %w", err)
	}
	m := &fileMapping{dev: d, data: data}
	b.maps[d] = m
	b.mapPushFrontLocked(m)
	b.mappedBytes += int64(len(data))
	for len(b.maps) > maxMappedFiles && b.mapTail != nil && b.mapTail != m {
		b.dropMappingLocked(b.mapTail)
	}
	return m, nil
}

// viewBufPool recycles page-in buffers for the read-at View path so the
// fallback backend doesn't churn one allocation per cold read.
var viewBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 16<<10); return &b }}

// View lends fn a read-only view of the payload. With mmap it is a slice of
// the file mapping — zero heap bytes, refcounted against concurrent remap
// or reclaim; without it, a pooled buffer filled by positional read.
func (b *diskSegmentBackend) View(d event.DeviceID, seq uint64, fn func(payload []byte) error) error {
	b.mu.Lock()
	idx, err := b.loadLocked(d)
	if err != nil {
		b.mu.Unlock()
		return err
	}
	loc, ok := idx[seq]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("store: segment %d for device %s not in cold tier", seq, d)
	}
	if b.useMmap {
		m, merr := b.mappingLocked(d, loc.off+int64(loc.n))
		if merr == nil {
			m.refs++
			view := m.data[loc.off : loc.off+int64(loc.n)]
			b.mu.Unlock()
			err = fn(view)
			b.mu.Lock()
			m.refs--
			if m.doomed && m.refs == 0 {
				b.mappedBytes -= int64(len(m.data))
				munmapFile(m.data)
				m.data = nil
			}
			b.mu.Unlock()
			return err
		}
		// Mapping failed (e.g. transient open error): fall through to the
		// positional read, which serves the same bytes.
	}
	path := b.pathFor(d)
	b.mu.Unlock()
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: opening segment file: %w", err)
	}
	bufp := viewBufPool.Get().(*[]byte)
	buf := (*bufp)[:0]
	if cap(buf) < loc.n {
		buf = make([]byte, loc.n)
	} else {
		buf = buf[:loc.n]
	}
	_, err = f.ReadAt(buf, loc.off)
	f.Close()
	if err != nil {
		*bufp = buf
		viewBufPool.Put(bufp)
		return fmt.Errorf("store: reading segment %d for device %s: %w", seq, d, err)
	}
	err = fn(buf)
	*bufp = buf
	viewBufPool.Put(bufp)
	return err
}

// Reclaim rewrites device files dropping records whose seq is dead in the
// live set: payloads superseded by a last-wins re-seal or orphaned by
// runt-segment compaction. Each rewrite is tmp+rename atomic — a crash at
// any point leaves either the old file or the complete new one — and the
// rewrite is skipped unless the dead share clears the amortization gates.
func (b *diskSegmentBackend) Reclaim(live map[event.DeviceID]LiveSegments) (int64, error) {
	var reclaimed int64
	var firstErr error
	for d, ls := range live {
		n, err := b.reclaimDevice(d, ls)
		reclaimed += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return reclaimed, firstErr
}

func (b *diskSegmentBackend) reclaimDevice(d event.DeviceID, ls LiveSegments) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	idx, err := b.loadLocked(d)
	if err != nil {
		return 0, err
	}
	size := b.sizes[d]
	if size == 0 {
		return 0, nil
	}
	liveBytes := int64(len(segFileMagic))
	keep := make([]uint64, 0, len(idx))
	for seq, loc := range idx {
		if seqLive(seq, ls) {
			keep = append(keep, seq)
			liveBytes += segRecHdrLen + int64(loc.n)
		}
	}
	dead := size - liveBytes
	if dead < reclaimMinDeadBytes || dead*reclaimDeadFraction < size {
		return 0, nil
	}
	sortSeqs(keep)
	path := b.pathFor(d)
	newIdx, newSize, err := b.rewriteFile(path, idx, keep)
	if err != nil {
		b.rewriteFails++
		return 0, fmt.Errorf("store: reclaiming %s: %w", path, err)
	}
	b.index[d] = newIdx
	b.sizes[d] = newSize
	delete(b.dirty, path)
	if m, ok := b.maps[d]; ok {
		// The rewritten file has different record offsets; in-flight views
		// of the old mapping stay valid (the old inode lives until they
		// return), new views map the new file.
		b.dropMappingLocked(m)
		b.remaps++
	}
	b.rewrites++
	b.reclaimedBytes += dead
	return dead, nil
}

// rewriteFile writes magic plus the kept records (in seq order) to a temp
// file, fsyncs it, renames it over path, and fsyncs the parent directory.
// It returns the new record index and file size. Caller holds b.mu.
func (b *diskSegmentBackend) rewriteFile(path string, idx map[uint64]segLoc, keep []uint64) (map[uint64]segLoc, int64, error) {
	src, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer src.Close()
	tmpPath := path + segTmpSuffix
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, 0, err
	}
	newIdx := make(map[uint64]segLoc, len(keep))
	ok := false
	defer func() {
		if !ok {
			tmp.Close()
			os.Remove(tmpPath)
		}
	}()
	if _, err := tmp.WriteString(segFileMagic); err != nil {
		return nil, 0, err
	}
	off := int64(len(segFileMagic))
	var hdr [segRecHdrLen]byte
	for _, seq := range keep {
		loc := idx[seq]
		p := make([]byte, loc.n)
		if _, err := src.ReadAt(p, loc.off); err != nil {
			return nil, 0, err
		}
		binary.LittleEndian.PutUint64(hdr[0:8], seq)
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(loc.n))
		if _, err := tmp.Write(hdr[:]); err != nil {
			return nil, 0, err
		}
		if _, err := tmp.Write(p); err != nil {
			return nil, 0, err
		}
		newIdx[seq] = segLoc{off: off + segRecHdrLen, n: loc.n}
		off += segRecHdrLen + int64(loc.n)
	}
	if err := tmp.Sync(); err != nil {
		return nil, 0, err
	}
	if err := tmp.Close(); err != nil {
		return nil, 0, err
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return nil, 0, err
	}
	ok = true
	if dirf, err := os.Open(filepath.Dir(path)); err == nil {
		dirf.Sync()
		dirf.Close()
	}
	return newIdx, off, nil
}

// sortSeqs is an insertion sort: keep lists are small (live segments per
// device) and this avoids pulling in sort for one call site.
func sortSeqs(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// BackendStats reports the mapping working set and reclamation counters.
func (b *diskSegmentBackend) BackendStats() BackendStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BackendStats{
		MappedFiles:     len(b.maps),
		MappedBytes:     b.mappedBytes,
		Remaps:          b.remaps,
		Rewrites:        b.rewrites,
		RewriteFailures: b.rewriteFails,
		ReclaimedBytes:  b.reclaimedBytes,
	}
}

func (b *diskSegmentBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	// The store issues no calls after Close, so no views are in flight and
	// every live mapping can be unmapped immediately.
	for _, m := range b.maps {
		b.mappedBytes -= int64(len(m.data))
		munmapFile(m.data)
		m.data = nil
	}
	b.maps = make(map[event.DeviceID]*fileMapping)
	b.mapHead, b.mapTail = nil, nil
	return nil
}
