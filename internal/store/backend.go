package store

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"

	"locater/internal/event"
)

// segKey identifies one sealed segment: segments are per-device and numbered
// densely in seal order.
type segKey struct {
	dev event.DeviceID
	seq uint64
}

// SegmentBackend stores the encoded payloads of sealed, immutable event
// segments, keyed by (device, per-device sequence number). The store seals
// segments under its exclusive lock but pages them back in under the shared
// lock, so implementations must be safe for concurrent use.
//
// Segments are immutable once written, with one exception: crash recovery
// can re-seal a head the previous run had already sealed but not yet
// captured in a snapshot manifest, re-issuing the same (device, seq) with
// identical contents. Put must let the newest write win. Payloads carry
// their own CRC trailer (wal.EncodeEventBlock), so backends store them
// opaquely and corruption is detected at decode time, not here.
type SegmentBackend interface {
	// Put stores one sealed segment's payload. The slice is not retained.
	Put(d event.DeviceID, seq uint64, payload []byte) error
	// Get returns the payload stored for (d, seq); the caller owns the
	// returned slice.
	Get(d event.DeviceID, seq uint64) ([]byte, error)
	// Sync makes every Put so far durable. A checkpoint calls it before
	// publishing a manifest that references the segments.
	Sync() error
	// Persistent reports whether payloads survive a process restart (a cold
	// tier) or live in memory only (a compressed warm tier).
	Persistent() bool
	// Close releases backend resources; the store issues no calls after it.
	Close() error
}

// memSegmentBackend keeps encoded segments in a map: the compressed warm
// tier used when no cold-tier directory is configured. Even in memory the
// payloads are the columnar encoding, so sealed history costs a few bytes
// per event instead of a 64-byte Event struct.
type memSegmentBackend struct {
	mu   sync.RWMutex
	segs map[segKey][]byte
}

// NewMemorySegmentBackend returns an in-memory SegmentBackend.
func NewMemorySegmentBackend() SegmentBackend {
	return &memSegmentBackend{segs: make(map[segKey][]byte)}
}

func (b *memSegmentBackend) Put(d event.DeviceID, seq uint64, payload []byte) error {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	b.mu.Lock()
	b.segs[segKey{d, seq}] = cp
	b.mu.Unlock()
	return nil
}

func (b *memSegmentBackend) Get(d event.DeviceID, seq uint64) ([]byte, error) {
	b.mu.RLock()
	p, ok := b.segs[segKey{d, seq}]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("store: segment %d for device %s not in memory tier", seq, d)
	}
	cp := make([]byte, len(p))
	copy(cp, p)
	return cp, nil
}

func (b *memSegmentBackend) Sync() error      { return nil }
func (b *memSegmentBackend) Persistent() bool { return false }
func (b *memSegmentBackend) Close() error     { return nil }

// --- Cold tier: per-device segment files -------------------------------------

// segFileMagic leads every segment file. The format is append-only: after
// the magic come records of [seq u64 LE][payload length u32 LE][payload],
// where the payload is a wal.EncodeEventBlock block (CRC trailer included).
// A crash can leave a torn final record; the scan on first open truncates
// it, exactly like the WAL's torn-record handling. A duplicate seq — crash
// recovery re-sealing an unmanifested head — appends a second record; the
// scan lets the last one win.
const segFileMagic = "LOCSEG1\n"

// segRecHdrLen is the per-record header: 8-byte seq + 4-byte payload length.
const segRecHdrLen = 12

// segLoc locates one segment payload inside its device file.
type segLoc struct {
	off int64
	n   int
}

// diskSegmentBackend spills sealed segments to per-device append-only files
// under dir, fanned out over 256 hash subdirectories so fleet-scale device
// counts don't pile into one directory. Files are opened per operation (no
// resident descriptor per device); the per-device record index is built
// lazily on first access and maintained on Put.
type diskSegmentBackend struct {
	dir string

	mu    sync.Mutex
	index map[event.DeviceID]map[uint64]segLoc
	sizes map[event.DeviceID]int64
	// dirty holds device files written since the last Sync; newDirs the
	// directories that gained entries and need a directory fsync.
	dirty   map[string]struct{}
	newDirs map[string]struct{}
}

// NewDiskSegmentBackend returns a SegmentBackend storing segments in
// per-device files under dir, creating it if needed.
func NewDiskSegmentBackend(dir string) (SegmentBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating cold-tier dir: %w", err)
	}
	return &diskSegmentBackend{
		dir:     dir,
		index:   make(map[event.DeviceID]map[uint64]segLoc),
		sizes:   make(map[event.DeviceID]int64),
		dirty:   make(map[string]struct{}),
		newDirs: make(map[string]struct{}),
	}, nil
}

func (b *diskSegmentBackend) pathFor(d event.DeviceID) string {
	h := fnv.New32a()
	io.WriteString(h, string(d))
	return filepath.Join(b.dir, fmt.Sprintf("%02x", h.Sum32()&0xff), hex.EncodeToString([]byte(d))+".seg")
}

// loadLocked scans a device's file into the index on first access,
// truncating a torn final record. Caller holds b.mu.
func (b *diskSegmentBackend) loadLocked(d event.DeviceID) (map[uint64]segLoc, error) {
	if idx, ok := b.index[d]; ok {
		return idx, nil
	}
	idx := make(map[uint64]segLoc)
	path := b.pathFor(d)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		b.index[d] = idx
		b.sizes[d] = 0
		return idx, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: opening segment file: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: segment file stat: %w", err)
	}
	size := st.Size()
	valid := int64(0)
	if size >= int64(len(segFileMagic)) {
		magic := make([]byte, len(segFileMagic))
		if _, err := f.ReadAt(magic, 0); err != nil {
			return nil, fmt.Errorf("store: segment file magic: %w", err)
		}
		if string(magic) != segFileMagic {
			return nil, fmt.Errorf("store: %s: bad segment file magic %q", path, magic)
		}
		off := int64(len(segFileMagic))
		hdr := make([]byte, segRecHdrLen)
		for off+segRecHdrLen <= size {
			if _, err := f.ReadAt(hdr, off); err != nil {
				return nil, fmt.Errorf("store: segment record header: %w", err)
			}
			n := int64(binary.LittleEndian.Uint32(hdr[8:12]))
			if off+segRecHdrLen+n > size {
				break // torn final record
			}
			seq := binary.LittleEndian.Uint64(hdr[0:8])
			idx[seq] = segLoc{off: off + segRecHdrLen, n: int(n)}
			off += segRecHdrLen + n
		}
		valid = off
	}
	// A torn tail (or a torn magic from a crash during file creation) is
	// dropped so appends resume at a clean boundary.
	if valid < size {
		if err := f.Truncate(valid); err != nil {
			return nil, fmt.Errorf("store: truncating torn segment record: %w", err)
		}
	}
	b.index[d] = idx
	b.sizes[d] = valid
	return idx, nil
}

func (b *diskSegmentBackend) Put(d event.DeviceID, seq uint64, payload []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	idx, err := b.loadLocked(d)
	if err != nil {
		return err
	}
	path := b.pathFor(d)
	size := b.sizes[d]
	if size == 0 {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("store: creating segment subdir: %w", err)
		}
		b.newDirs[filepath.Dir(path)] = struct{}{}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening segment file: %w", err)
	}
	defer f.Close()
	rec := make([]byte, 0, len(segFileMagic)+segRecHdrLen+len(payload))
	if size == 0 {
		rec = append(rec, segFileMagic...)
	}
	rec = binary.LittleEndian.AppendUint64(rec, seq)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	if _, err := f.WriteAt(rec, size); err != nil {
		return fmt.Errorf("store: writing segment: %w", err)
	}
	off := size + int64(len(rec)) - int64(len(payload))
	idx[seq] = segLoc{off: off, n: len(payload)}
	b.sizes[d] = size + int64(len(rec))
	b.dirty[path] = struct{}{}
	return nil
}

func (b *diskSegmentBackend) Get(d event.DeviceID, seq uint64) ([]byte, error) {
	b.mu.Lock()
	idx, err := b.loadLocked(d)
	if err != nil {
		b.mu.Unlock()
		return nil, err
	}
	loc, ok := idx[seq]
	path := b.pathFor(d)
	b.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: segment %d for device %s not in cold tier", seq, d)
	}
	// The read runs outside the lock: records are immutable once indexed
	// and appends never move them, so concurrent page-ins proceed in
	// parallel.
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: opening segment file: %w", err)
	}
	defer f.Close()
	p := make([]byte, loc.n)
	if _, err := f.ReadAt(p, loc.off); err != nil {
		return nil, fmt.Errorf("store: reading segment %d for device %s: %w", seq, d, err)
	}
	return p, nil
}

func (b *diskSegmentBackend) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for path := range b.dirty {
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			return fmt.Errorf("store: syncing segment file: %w", err)
		}
		err = f.Sync()
		f.Close()
		if err != nil {
			return fmt.Errorf("store: syncing segment file: %w", err)
		}
		delete(b.dirty, path)
	}
	for dir := range b.newDirs {
		f, err := os.Open(dir)
		if err != nil {
			return fmt.Errorf("store: syncing segment dir: %w", err)
		}
		err = f.Sync()
		f.Close()
		if err != nil {
			return fmt.Errorf("store: syncing segment dir: %w", err)
		}
		delete(b.newDirs, dir)
	}
	// The root dir gains subdirectories; one sync covers them all.
	f, err := os.Open(b.dir)
	if err != nil {
		return fmt.Errorf("store: syncing cold-tier dir: %w", err)
	}
	err = f.Sync()
	f.Close()
	if err != nil {
		return fmt.Errorf("store: syncing cold-tier dir: %w", err)
	}
	return nil
}

func (b *diskSegmentBackend) Persistent() bool { return true }
func (b *diskSegmentBackend) Close() error     { return nil }
