// Package store implements LOCATER's storage engine: an in-memory,
// time-indexed repository of WiFi connectivity events supporting batch and
// streaming ingestion, per-device timelines, time-window scans, and the gap
// lookups that the cleaning engine issues for every query.
//
// The store keeps one log per device in a log-structured layout: a small
// mutable head (a sorted slice absorbing fresh ingestion) plus a list of
// immutable, sorted, compressed segments (see internal/wal's columnar block
// codec) sealed whenever the head reaches a configurable size. Sealed
// payloads live in a SegmentBackend — in memory, or spilled to per-device
// files for a cold tier — and are decoded block-at-a-time through a bounded
// segment cache, so resident memory scales with the working set instead of
// total history. Campus-scale deployments generate millions of tuples per
// day (paper Section 1), so all temporal lookups are binary searches plus
// metadata-pruned segment decodes, and ingestion amortizes sorting by
// buffering out-of-order arrivals in the head.
package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"locater/internal/cache"
	"locater/internal/event"
	"locater/internal/space"
)

// DefaultDelta is the fallback validity interval δ used for devices without
// a configured or estimated value. Ten minutes reflects the typical probe
// periodicity of mobile devices.
const DefaultDelta = 10 * time.Minute

// Backend is the durability hook behind the store: a write-ahead log that
// records every acknowledged mutation. The append methods are called with
// the store's exclusive lock held, before the mutation is applied in memory,
// and must only buffer (no fsync) so the lock stays cheap; an append error
// aborts the mutation entirely. Commit is called after the lock is released
// and blocks until everything appended so far is durable, so concurrent
// writers share one fsync (group commit). A Commit error means the mutation
// is applied in memory but not acknowledged as durable; callers see it as a
// failed write.
//
// Implementations must be safe for concurrent use. internal/wal provides the
// production implementation.
type Backend interface {
	// AppendEvents logs a batch of events exactly as acknowledged (IDs
	// already assigned).
	AppendEvents(evs []event.Event) error
	// AppendDelta logs a per-device validity interval δ(d).
	AppendDelta(d event.DeviceID, delta time.Duration) error
	// Commit makes every record appended so far durable.
	Commit() error
}

// Store is an in-memory event repository. It is safe for concurrent use:
// reads take a shared lock in the common case (all heads sorted), so
// concurrent queries scan the store in parallel; ingestion — and the lazy
// re-sort a read triggers after out-of-order ingestion — takes an exclusive
// lock.
type Store struct {
	mu sync.RWMutex

	// backend, when attached, receives every acknowledged mutation before
	// it is applied (write-ahead logging).
	backend Backend

	logs map[event.DeviceID]*deviceLog

	// deltas holds per-device validity intervals; defaultDelta applies to
	// devices not present.
	deltas       map[event.DeviceID]time.Duration
	defaultDelta time.Duration

	nextID int64

	// dirty holds the device logs whose heads were knocked out of time
	// order by out-of-order ingestion: read paths test "everything sorted"
	// in O(1) via len(dirty), and the lazy re-sort touches exactly these
	// logs instead of iterating every log in the store.
	dirty map[*deviceLog]struct{}
	// resorts counts actual lazy re-sorts (one per dirtied log), so tests
	// can assert the re-sort scope.
	resorts int64

	// Segmented layout (see segment.go): segMax is the seal threshold
	// (0 = sealing disabled), segBlockEvents the intra-segment block size
	// (negative = legacy whole-segment encoding), segBackend stores sealed
	// payloads, segCache bounds the decoded-block working set.
	// segCount/segEvents/segBytes track the sealed shape; the atomics count
	// seal, page-in, and block-index traffic (bumped under the shared lock).
	segMax         int
	segBlockEvents int
	segBackend     SegmentBackend
	segCache       *cache.Cache[blockKey, []event.Event]
	segCount       int
	segEvents      int
	segBytes       int64
	seals          atomic.Int64
	sealFails      atomic.Int64
	pageIns        atomic.Int64
	decodeFails    atomic.Int64
	compactions    atomic.Int64
	compactFails   atomic.Int64
	// decodedBytes counts encoded bytes decoded on block page-ins;
	// pointLookups / lookupDecodedBytes isolate point-lookup decode
	// traffic; blockSkips counts blocks pruned via the block index;
	// indexLoads counts block-index trailer parses.
	decodedBytes       atomic.Int64
	pointLookups       atomic.Int64
	lookupDecodedBytes atomic.Int64
	blockSkips         atomic.Int64
	indexLoads         atomic.Int64

	// occ is the temporal occupancy index serving ActiveDevices /
	// ActiveDevicesAt; nil when disabled (see ConfigureOccupancy).
	occ *occupancyIndex
	// occLookups / occFallbacks count index-served lookups and full-scan
	// fallbacks. Atomic: bumped under the shared lock.
	occLookups   atomic.Int64
	occFallbacks atomic.Int64

	// bounds of all ingested data.
	minTime time.Time
	maxTime time.Time
	count   int
}

// deviceLog is one device's log-structured history: sealed immutable
// segments (in seal order, each internally sorted) plus the mutable head.
// Segments may overlap each other and the head in time when ingestion was
// out of order across a seal boundary; read paths merge-and-sort windows
// that actually interleave.
type deviceLog struct {
	head   []event.Event // mutable tail, sorted by (Time, ID) when sorted
	sorted bool

	segs      []*segmentRef
	segEvents int
	nextSeq   uint64 // next segment sequence number (1-based)
}

// New creates an empty store with the given default validity interval δ.
// A non-positive defaultDelta falls back to DefaultDelta. Segmentation
// starts at the defaults (in-memory compressed tier, DefaultSegmentMaxEvents
// seal threshold); ConfigureSegments adjusts it before first ingest.
func New(defaultDelta time.Duration) *Store {
	if defaultDelta <= 0 {
		defaultDelta = DefaultDelta
	}
	return &Store{
		logs:           make(map[event.DeviceID]*deviceLog),
		deltas:         make(map[event.DeviceID]time.Duration),
		defaultDelta:   defaultDelta,
		nextID:         1,
		dirty:          make(map[*deviceLog]struct{}),
		occ:            newOccupancyIndex(DefaultOccupancyBucket),
		segMax:         DefaultSegmentMaxEvents,
		segBlockEvents: DefaultSegmentBlockEvents,
		segBackend:     NewMemorySegmentBackend(),
		segCache: newBlockCache(DefaultSegmentCacheSize *
			blocksPerSegment(DefaultSegmentMaxEvents, DefaultSegmentBlockEvents)),
	}
}

// AttachBackend sets the durability backend; nil detaches. Attach during
// setup, after any recovered state has been restored (so replayed mutations
// are not re-logged) and before traffic is served.
func (s *Store) AttachBackend(b Backend) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.backend = b
}

// SetDelta registers a device-specific validity interval δ(d).
func (s *Store) SetDelta(d event.DeviceID, delta time.Duration) error {
	if delta <= 0 {
		return fmt.Errorf("store: non-positive delta %v for device %s", delta, d)
	}
	s.mu.Lock()
	if s.backend != nil {
		if err := s.backend.AppendDelta(d, delta); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("store: logging delta: %w", err)
		}
	}
	s.deltas[d] = delta
	b := s.backend
	s.mu.Unlock()
	if b != nil {
		if err := b.Commit(); err != nil {
			return fmt.Errorf("store: committing delta: %w", err)
		}
	}
	return nil
}

// Delta returns the validity interval for a device (the configured value or
// the default).
func (s *Store) Delta(d event.DeviceID) time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.deltaLocked(d)
}

// deltaLocked is Delta with a store lock (shared or exclusive) already held.
func (s *Store) deltaLocked(d event.DeviceID) time.Duration {
	if dl, ok := s.deltas[d]; ok {
		return dl
	}
	return s.defaultDelta
}

// withDevice invokes fn with the device's log — head sorted — and validity
// interval while a store lock is held: a shared lock in the common case
// (the head is already sorted), an exclusive one only when a lazy sort is
// needed after out-of-order ingestion. fn must only read the log and must
// not retain any slice it derives from it. Reports whether the device
// exists.
func (s *Store) withDevice(d event.DeviceID, fn func(lg *deviceLog, delta time.Duration)) bool {
	s.mu.RLock()
	lg, ok := s.logs[d]
	if ok && lg.sorted {
		fn(lg, s.deltaLocked(d))
		s.mu.RUnlock()
		return true
	}
	s.mu.RUnlock()
	if !ok {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-fetch: the log may have grown between the lock hand-off.
	lg, ok = s.logs[d]
	if !ok {
		return false
	}
	s.ensureSorted(lg)
	fn(lg, s.deltaLocked(d))
	return true
}

// EstimateDeltas derives δ(d) for every device from its own log (see
// event.EstimateDelta) and registers the results. Devices with too little
// data keep the default. With a backend attached the estimated deltas are
// logged and committed as one group; the returned error reports a logging
// failure or a sealed segment that could not be materialized.
func (s *Store) EstimateDeltas(quantile float64, minD, maxD time.Duration) error {
	s.mu.Lock()
	var scratch []event.Event
	for dev, lg := range s.logs {
		s.ensureSorted(lg)
		evs := lg.head
		if len(lg.segs) > 0 {
			var err error
			scratch, err = s.materializeLocked(dev, lg, scratch[:0])
			if err != nil {
				s.mu.Unlock()
				return fmt.Errorf("store: materializing device %s: %w", dev, err)
			}
			evs = scratch
		}
		d := event.EstimateDelta(evs, quantile, minD, maxD, s.defaultDelta)
		if s.backend != nil {
			if err := s.backend.AppendDelta(dev, d); err != nil {
				s.mu.Unlock()
				return fmt.Errorf("store: logging delta: %w", err)
			}
		}
		s.deltas[dev] = d
	}
	b := s.backend
	s.mu.Unlock()
	if b != nil {
		if err := b.Commit(); err != nil {
			return fmt.Errorf("store: committing deltas: %w", err)
		}
	}
	return nil
}

// Ingest adds a batch of events. Events with ID == 0 receive fresh sequence
// numbers. Returns the number of events added. The whole batch is validated
// before anything is appended, so a rejected batch leaves the store
// untouched (all-or-nothing). With a backend attached the batch is logged —
// exactly as acknowledged, IDs included — before the in-memory apply, and
// Ingest returns only after the backend reports the batch durable. Heads
// that reach the seal threshold are compressed into immutable segments on
// the spot.
func (s *Store) Ingest(events []event.Event) (int, error) {
	for _, e := range events {
		if e.Device == "" {
			return 0, fmt.Errorf("store: event with empty device at %v", e.Time)
		}
		if e.AP == "" {
			return 0, fmt.Errorf("store: event with empty AP for device %s at %v", e.Device, e.Time)
		}
		if e.Time.IsZero() {
			return 0, fmt.Errorf("store: event with zero timestamp for device %s", e.Device)
		}
	}
	s.mu.Lock()
	// Assign IDs on a copy first: the batch must reach the write-ahead log
	// exactly as acknowledged, and a failed log append must leave both the
	// event logs and the nextID counter untouched.
	batch := make([]event.Event, len(events))
	copy(batch, events)
	nid := s.nextID
	for i := range batch {
		if batch[i].ID == 0 {
			batch[i].ID = nid
		}
		if batch[i].ID >= nid {
			nid = batch[i].ID + 1
		}
	}
	if s.backend != nil {
		if err := s.backend.AppendEvents(batch); err != nil {
			s.mu.Unlock()
			return 0, fmt.Errorf("store: logging batch: %w", err)
		}
	}
	s.nextID = nid
	for _, e := range batch {
		lg, ok := s.logs[e.Device]
		if !ok {
			lg = &deviceLog{sorted: true, nextSeq: 1}
			s.logs[e.Device] = lg
		}
		// Maintain sortedness cheaply: appending in time order is the
		// common case for streaming ingestion.
		if lg.sorted && len(lg.head) > 0 && e.Before(lg.head[len(lg.head)-1]) {
			lg.sorted = false
			s.dirty[lg] = struct{}{}
		}
		lg.head = append(lg.head, e)
		if s.occ != nil {
			s.occ.add(e)
		}
		if s.count == 0 || e.Time.Before(s.minTime) {
			s.minTime = e.Time
		}
		if s.count == 0 || e.Time.After(s.maxTime) {
			s.maxTime = e.Time
		}
		s.count++
		if s.segMax > 0 && len(lg.head) >= s.segMax {
			s.sealLocked(e.Device, lg)
		}
	}
	b := s.backend
	s.mu.Unlock()
	if b != nil {
		// The durability wait happens outside the store lock so queries and
		// further appends proceed while the log syncs; concurrent batches
		// share one fsync (group commit).
		if err := b.Commit(); err != nil {
			return 0, fmt.Errorf("store: committing batch: %w", err)
		}
	}
	return len(batch), nil
}

// IngestOne adds a single event (streaming ingestion).
func (s *Store) IngestOne(e event.Event) error {
	_, err := s.Ingest([]event.Event{e})
	return err
}

// ensureSorted re-sorts a head after out-of-order ingestion and maintains
// the store's dirty-log set. Callers must hold the exclusive lock.
func (s *Store) ensureSorted(lg *deviceLog) {
	if !lg.sorted {
		event.SortEvents(lg.head)
		lg.sorted = true
		delete(s.dirty, lg)
		s.resorts++
	}
}

// NumEvents returns the total number of stored events.
func (s *Store) NumEvents() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// NumDevices returns the number of distinct devices seen.
func (s *Store) NumDevices() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.logs)
}

// TimeBounds returns the earliest and latest event timestamps. ok is false
// for an empty store.
func (s *Store) TimeBounds() (min, max time.Time, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.count == 0 {
		return time.Time{}, time.Time{}, false
	}
	return s.minTime, s.maxTime, true
}

// Devices returns all device IDs in sorted order.
func (s *Store) Devices() []event.DeviceID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]event.DeviceID, 0, len(s.logs))
	for d := range s.logs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Events returns a copy of a device's full event log in time order,
// materializing sealed segments. A segment that cannot be paged in yields a
// nil slice (and a DecodeFailures bump) rather than a partial log.
func (s *Store) Events(d event.DeviceID) []event.Event {
	var out []event.Event
	s.withDevice(d, func(lg *deviceLog, _ time.Duration) {
		var err error
		out, err = s.materializeLocked(d, lg, make([]event.Event, 0, len(lg.head)+lg.segEvents))
		if err != nil {
			out = nil
		}
	})
	return out
}

// ScanEvents invokes fn once with the device's events with start ≤ t ≤ end
// and the device's validity interval δ, while a store lock is held — a
// shared lock in the common case, so concurrent scans proceed in parallel.
//
// fn must not retain or mutate evs, and must not assume anything about its
// backing storage: depending on where the window lives, the slice may alias
// the device's mutable head, a cached segment-decode buffer shared with
// concurrent readers, or a pooled scratch buffer that is reused the moment
// ScanEvents returns. Callers that need to keep the events must copy them
// (EventsBetween / TimelineBetween do exactly that). Reports whether the
// device exists; fn is invoked (possibly with an empty slice) exactly when
// it does. A window whose segments cannot be paged in (corrupt or missing
// cold-tier payload) is served as empty and counted in
// SegmentStats.DecodeFailures — a corrupt segment is refused, never served.
//
// This is the allocation-free read path the per-query kernels use: the fine
// stage's batched affinity sweep and the coarse stage's history statistics
// visit millions of events per second through it; windows inside a single
// source (head or one segment) are served zero-copy.
func (s *Store) ScanEvents(d event.DeviceID, start, end time.Time, fn func(evs []event.Event, delta time.Duration)) bool {
	return s.withDevice(d, func(lg *deviceLog, delta time.Duration) {
		s.scanWindowLocked(d, lg, start, end, delta, fn)
	})
}

// EventsBetween returns a copy of the device's events with
// start ≤ t ≤ end, via binary search.
func (s *Store) EventsBetween(d event.DeviceID, start, end time.Time) []event.Event {
	var out []event.Event
	s.ScanEvents(d, start, end, func(evs []event.Event, _ time.Duration) {
		if len(evs) == 0 {
			return
		}
		out = make([]event.Event, len(evs))
		copy(out, evs)
	})
	return out
}

// Timeline builds the device's timeline (sorted events + δ). The returned
// timeline shares no state with the store.
func (s *Store) Timeline(d event.DeviceID) (*event.Timeline, error) {
	evs := s.Events(d)
	return event.NewTimeline(d, s.Delta(d), evs)
}

// TimelineBetween builds a timeline restricted to [start, end]. The window
// is copied once inside the ScanEvents visitor — the events are already
// sorted and belong to one device, so the NewTimeline re-sort (and the
// second copy the pre-ScanEvents path paid) is skipped.
func (s *Store) TimelineBetween(d event.DeviceID, start, end time.Time) (*event.Timeline, error) {
	var tl *event.Timeline
	var err error
	found := s.ScanEvents(d, start, end, func(evs []event.Event, delta time.Duration) {
		if delta <= 0 {
			err = fmt.Errorf("event: non-positive validity interval %v for device %s", delta, d)
			return
		}
		cp := make([]event.Event, len(evs))
		copy(cp, evs)
		tl = &event.Timeline{Device: d, Delta: delta, Events: cp}
	})
	if err != nil {
		return nil, err
	}
	if !found {
		return event.NewTimeline(d, s.Delta(d), nil)
	}
	return tl, nil
}

// At classifies time t for device d: inside a validity interval, inside a
// gap, or unknown (before first/after last event). It is the store-level
// entry point the cleaning engine uses for every query. Timeline.At only
// ever reads the two events on each side of t, so for a segmented log it
// runs over the point-lookup neighborhood (see neighborhoodLocked) instead
// of materializing the history — at most a couple of segment decodes, all
// through the bounded cache.
func (s *Store) At(d event.DeviceID, t time.Time) (*event.Validity, *event.Gap, error) {
	var v *event.Validity
	var g *event.Gap
	var err error
	s.withDevice(d, func(lg *deviceLog, delta time.Duration) {
		if delta <= 0 {
			err = fmt.Errorf("store: non-positive validity interval %v for device %s", delta, d)
			return
		}
		evs := lg.head
		var bp *scanBuf
		if len(lg.segs) > 0 {
			bp = scanBufPool.Get().(*scanBuf)
			defer scanBufPool.Put(bp)
			evs, err = s.neighborhoodLocked(d, lg, t, bp)
			if err != nil {
				err = fmt.Errorf("store: reading device %s at %v: %w", d, t, err)
				return
			}
		}
		// Timeline.At only reads the slice and returns freshly-allocated
		// values, so the view never escapes the lock.
		tl := event.Timeline{Device: d, Delta: delta, Events: evs}
		v, g = tl.At(t)
	})
	return v, g, err
}

// LastEventAtOrBefore returns the device's latest event with Time ≤ t.
func (s *Store) LastEventAtOrBefore(d event.DeviceID, t time.Time) (event.Event, bool) {
	var e event.Event
	var found bool
	s.withDevice(d, func(lg *deviceLog, _ time.Duration) {
		evs := lg.head
		if len(lg.segs) > 0 {
			bp := scanBufPool.Get().(*scanBuf)
			defer scanBufPool.Put(bp)
			var err error
			evs, err = s.neighborhoodLocked(d, lg, t, bp)
			if err != nil {
				return
			}
		}
		idx := sort.Search(len(evs), func(i int) bool { return evs[i].Time.After(t) })
		if idx == 0 {
			return
		}
		e, found = evs[idx-1], true
	})
	return e, found
}

// FirstEventAfter returns the device's earliest event with Time > t.
func (s *Store) FirstEventAfter(d event.DeviceID, t time.Time) (event.Event, bool) {
	var e event.Event
	var found bool
	s.withDevice(d, func(lg *deviceLog, _ time.Duration) {
		evs := lg.head
		if len(lg.segs) > 0 {
			bp := scanBufPool.Get().(*scanBuf)
			defer scanBufPool.Put(bp)
			var err error
			evs, err = s.neighborhoodLocked(d, lg, t, bp)
			if err != nil {
				return
			}
		}
		idx := sort.Search(len(evs), func(i int) bool { return evs[i].Time.After(t) })
		if idx == len(evs) {
			return
		}
		e, found = evs[idx], true
	})
	return e, found
}

// CurrentAP returns the AP the device is connected to at time t when t falls
// inside a validity interval; ok is false otherwise. This is the "online"
// test for neighbor devices at query time; it runs on the head (or the
// point-lookup neighborhood for segmented logs) because the fine stage
// issues it once per candidate neighbor of every query.
func (s *Store) CurrentAP(d event.DeviceID, t time.Time) (space.APID, bool) {
	var ap space.APID
	var ok bool
	s.withDevice(d, func(lg *deviceLog, delta time.Duration) {
		if delta <= 0 {
			return
		}
		evs := lg.head
		if len(lg.segs) > 0 {
			bp := scanBufPool.Get().(*scanBuf)
			defer scanBufPool.Put(bp)
			var err error
			evs, err = s.neighborhoodLocked(d, lg, t, bp)
			if err != nil {
				return
			}
		}
		tl := event.Timeline{Device: d, Delta: delta, Events: evs}
		ap, ok = tl.APAt(t)
	})
	return ap, ok
}

// NextID returns the next event ID the store would assign. Recovery and the
// ID-monotonicity tests use it; it is not a reservation.
func (s *Store) NextID() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextID
}

// AdvanceNextID raises the ID counter to at least n. Recovery calls it with
// the persisted counter after replaying events, so a recovered store never
// reissues an event ID — even if the counter had run ahead of the highest
// stored event ID. Values at or below the current counter are ignored (the
// counter is monotone).
func (s *Store) AdvanceNextID(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.nextID {
		s.nextID = n
	}
}

// SnapshotState is the store's complete durable state in fully materialized
// form: the ID counter, the per-device validity intervals, and the
// per-device event logs (each sorted by time). It shares nothing with the
// live store. Incremental checkpoints use CheckpointState instead; this
// remains the full-export form (format-v1 snapshots, tests, tooling).
type SnapshotState struct {
	NextID int64
	Deltas map[event.DeviceID]time.Duration
	Events map[event.DeviceID][]event.Event
}

// SnapshotState returns a deep copy of the store's durable state with every
// sealed segment materialized. It takes the exclusive lock (out-of-order
// heads are sorted in place first). A device whose segments cannot be paged
// in is exported with only its decodable events (counted in
// SegmentStats.DecodeFailures).
func (s *Store) SnapshotState() SnapshotState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SnapshotState{
		NextID: s.nextID,
		Deltas: make(map[event.DeviceID]time.Duration, len(s.deltas)),
		Events: make(map[event.DeviceID][]event.Event, len(s.logs)),
	}
	for d, dl := range s.deltas {
		st.Deltas[d] = dl
	}
	for dev, lg := range s.logs {
		s.ensureSorted(lg)
		cp, err := s.materializeLocked(dev, lg, make([]event.Event, 0, len(lg.head)+lg.segEvents))
		if err != nil {
			event.SortEvents(cp)
		}
		st.Events[dev] = cp
	}
	return st
}

// Clone returns a deep copy of the store. Used by experiments that mutate
// per-device deltas while sharing the ingested data. The clone keeps the
// original's ID counter (so it never reissues an event ID the source store
// handed out) but has no durability backend attached and owns a fresh
// in-memory segment tier: sealed history is materialized into plain heads
// (re-sealed lazily as the clone ingests), so cloned mutations never touch
// the source's segment backend.
func (s *Store) Clone() *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := New(s.defaultDelta)
	c.nextID = s.nextID
	c.segMax = s.segMax
	// The occupancy index is derived state: the clone keeps the source's
	// configuration (width, or disabled) and rebuilds its own index while
	// the logs are copied.
	if s.occ == nil {
		c.occ = nil
	} else {
		c.occ = newOccupancyIndex(s.occ.width)
	}
	for d, dl := range s.deltas {
		c.deltas[d] = dl
	}
	for dev, lg := range s.logs {
		s.ensureSorted(lg)
		cp, err := s.materializeLocked(dev, lg, make([]event.Event, 0, len(lg.head)+lg.segEvents))
		if err != nil {
			event.SortEvents(cp)
		}
		c.logs[dev] = &deviceLog{head: cp, sorted: true, nextSeq: 1}
		for _, e := range cp {
			if c.occ != nil {
				c.occ.add(e)
			}
			if c.count == 0 || e.Time.Before(c.minTime) {
				c.minTime = e.Time
			}
			if c.count == 0 || e.Time.After(c.maxTime) {
				c.maxTime = e.Time
			}
			c.count++
		}
	}
	return c
}
