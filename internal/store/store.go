// Package store implements LOCATER's storage engine: an in-memory,
// time-indexed repository of WiFi connectivity events supporting batch and
// streaming ingestion, per-device timelines, time-window scans, and the gap
// lookups that the cleaning engine issues for every query.
//
// The store keeps one sorted event log per device. Campus-scale deployments
// generate millions of tuples per day (paper Section 1), so all temporal
// lookups are binary searches over the per-device logs, and ingestion
// amortizes sorting by buffering out-of-order arrivals.
package store

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// DefaultDelta is the fallback validity interval δ used for devices without
// a configured or estimated value. Ten minutes reflects the typical probe
// periodicity of mobile devices.
const DefaultDelta = 10 * time.Minute

// Store is an in-memory event repository. It is safe for concurrent use:
// reads take a shared lock, ingestion takes an exclusive lock.
type Store struct {
	mu sync.RWMutex

	logs map[event.DeviceID]*deviceLog

	// deltas holds per-device validity intervals; defaultDelta applies to
	// devices not present.
	deltas       map[event.DeviceID]time.Duration
	defaultDelta time.Duration

	nextID int64

	// bounds of all ingested data.
	minTime time.Time
	maxTime time.Time
	count   int
}

type deviceLog struct {
	events []event.Event // sorted by (Time, ID)
	sorted bool
}

// New creates an empty store with the given default validity interval δ.
// A non-positive defaultDelta falls back to DefaultDelta.
func New(defaultDelta time.Duration) *Store {
	if defaultDelta <= 0 {
		defaultDelta = DefaultDelta
	}
	return &Store{
		logs:         make(map[event.DeviceID]*deviceLog),
		deltas:       make(map[event.DeviceID]time.Duration),
		defaultDelta: defaultDelta,
		nextID:       1,
	}
}

// SetDelta registers a device-specific validity interval δ(d).
func (s *Store) SetDelta(d event.DeviceID, delta time.Duration) error {
	if delta <= 0 {
		return fmt.Errorf("store: non-positive delta %v for device %s", delta, d)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deltas[d] = delta
	return nil
}

// Delta returns the validity interval for a device (the configured value or
// the default).
func (s *Store) Delta(d event.DeviceID) time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if dl, ok := s.deltas[d]; ok {
		return dl
	}
	return s.defaultDelta
}

// EstimateDeltas derives δ(d) for every device from its own log (see
// event.EstimateDelta) and registers the results. Devices with too little
// data keep the default.
func (s *Store) EstimateDeltas(quantile float64, minD, maxD time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for dev, lg := range s.logs {
		lg.ensureSorted()
		d := event.EstimateDelta(lg.events, quantile, minD, maxD, s.defaultDelta)
		s.deltas[dev] = d
	}
}

// Ingest adds a batch of events. Events with ID == 0 receive fresh sequence
// numbers. Returns the number of events added.
func (s *Store) Ingest(events []event.Event) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range events {
		if e.Device == "" {
			return 0, fmt.Errorf("store: event with empty device at %v", e.Time)
		}
		if e.AP == "" {
			return 0, fmt.Errorf("store: event with empty AP for device %s at %v", e.Device, e.Time)
		}
		if e.Time.IsZero() {
			return 0, fmt.Errorf("store: event with zero timestamp for device %s", e.Device)
		}
		if e.ID == 0 {
			e.ID = s.nextID
		}
		if e.ID >= s.nextID {
			s.nextID = e.ID + 1
		}
		lg, ok := s.logs[e.Device]
		if !ok {
			lg = &deviceLog{sorted: true}
			s.logs[e.Device] = lg
		}
		// Maintain sortedness cheaply: appending in time order is the
		// common case for streaming ingestion.
		if lg.sorted && len(lg.events) > 0 && e.Before(lg.events[len(lg.events)-1]) {
			lg.sorted = false
		}
		lg.events = append(lg.events, e)
		if s.count == 0 || e.Time.Before(s.minTime) {
			s.minTime = e.Time
		}
		if s.count == 0 || e.Time.After(s.maxTime) {
			s.maxTime = e.Time
		}
		s.count++
	}
	return len(events), nil
}

// IngestOne adds a single event (streaming ingestion).
func (s *Store) IngestOne(e event.Event) error {
	_, err := s.Ingest([]event.Event{e})
	return err
}

func (lg *deviceLog) ensureSorted() {
	if !lg.sorted {
		event.SortEvents(lg.events)
		lg.sorted = true
	}
}

// NumEvents returns the total number of stored events.
func (s *Store) NumEvents() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// NumDevices returns the number of distinct devices seen.
func (s *Store) NumDevices() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.logs)
}

// TimeBounds returns the earliest and latest event timestamps. ok is false
// for an empty store.
func (s *Store) TimeBounds() (min, max time.Time, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.count == 0 {
		return time.Time{}, time.Time{}, false
	}
	return s.minTime, s.maxTime, true
}

// Devices returns all device IDs in sorted order.
func (s *Store) Devices() []event.DeviceID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]event.DeviceID, 0, len(s.logs))
	for d := range s.logs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Events returns a copy of a device's full event log in time order.
func (s *Store) Events(d event.DeviceID) []event.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	lg, ok := s.logs[d]
	if !ok {
		return nil
	}
	lg.ensureSorted()
	out := make([]event.Event, len(lg.events))
	copy(out, lg.events)
	return out
}

// EventsBetween returns a copy of the device's events with
// start ≤ t ≤ end, via binary search.
func (s *Store) EventsBetween(d event.DeviceID, start, end time.Time) []event.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	lg, ok := s.logs[d]
	if !ok {
		return nil
	}
	lg.ensureSorted()
	evs := lg.events
	lo := sort.Search(len(evs), func(i int) bool { return !evs[i].Time.Before(start) })
	hi := sort.Search(len(evs), func(i int) bool { return evs[i].Time.After(end) })
	if lo >= hi {
		return nil
	}
	out := make([]event.Event, hi-lo)
	copy(out, evs[lo:hi])
	return out
}

// Timeline builds the device's timeline (sorted events + δ). The returned
// timeline shares no state with the store.
func (s *Store) Timeline(d event.DeviceID) (*event.Timeline, error) {
	evs := s.Events(d)
	return event.NewTimeline(d, s.Delta(d), evs)
}

// TimelineBetween builds a timeline restricted to [start, end].
func (s *Store) TimelineBetween(d event.DeviceID, start, end time.Time) (*event.Timeline, error) {
	evs := s.EventsBetween(d, start, end)
	return event.NewTimeline(d, s.Delta(d), evs)
}

// At classifies time t for device d: inside a validity interval, inside a
// gap, or unknown (before first/after last event). It is the store-level
// entry point the cleaning engine uses for every query.
func (s *Store) At(d event.DeviceID, t time.Time) (*event.Validity, *event.Gap, error) {
	tl, err := s.Timeline(d)
	if err != nil {
		return nil, nil, err
	}
	v, g := tl.At(t)
	return v, g, nil
}

// ActiveDevices returns the devices that have at least one event with
// timestamp in [start, end], sorted. The fine-grained algorithm uses this to
// find candidate neighbor devices that are "online" around the query time.
func (s *Store) ActiveDevices(start, end time.Time) []event.DeviceID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []event.DeviceID
	for d, lg := range s.logs {
		lg.ensureSorted()
		evs := lg.events
		lo := sort.Search(len(evs), func(i int) bool { return !evs[i].Time.Before(start) })
		if lo < len(evs) && !evs[lo].Time.After(end) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LastEventAtOrBefore returns the device's latest event with Time ≤ t.
func (s *Store) LastEventAtOrBefore(d event.DeviceID, t time.Time) (event.Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lg, ok := s.logs[d]
	if !ok {
		return event.Event{}, false
	}
	lg.ensureSorted()
	evs := lg.events
	idx := sort.Search(len(evs), func(i int) bool { return evs[i].Time.After(t) })
	if idx == 0 {
		return event.Event{}, false
	}
	return evs[idx-1], true
}

// FirstEventAfter returns the device's earliest event with Time > t.
func (s *Store) FirstEventAfter(d event.DeviceID, t time.Time) (event.Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lg, ok := s.logs[d]
	if !ok {
		return event.Event{}, false
	}
	lg.ensureSorted()
	evs := lg.events
	idx := sort.Search(len(evs), func(i int) bool { return evs[i].Time.After(t) })
	if idx == len(evs) {
		return event.Event{}, false
	}
	return evs[idx], true
}

// CurrentAP returns the AP the device is connected to at time t when t falls
// inside a validity interval; ok is false otherwise. This is the "online"
// test for neighbor devices at query time.
func (s *Store) CurrentAP(d event.DeviceID, t time.Time) (space.APID, bool) {
	v, _, err := s.At(d, t)
	if err != nil || v == nil {
		return "", false
	}
	return v.Event.AP, true
}

// Clone returns a deep copy of the store. Used by experiments that mutate
// per-device deltas while sharing the ingested data.
func (s *Store) Clone() *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := New(s.defaultDelta)
	c.nextID = s.nextID
	c.minTime, c.maxTime, c.count = s.minTime, s.maxTime, s.count
	for d, dl := range s.deltas {
		c.deltas[d] = dl
	}
	for dev, lg := range s.logs {
		lg.ensureSorted()
		cp := make([]event.Event, len(lg.events))
		copy(cp, lg.events)
		c.logs[dev] = &deviceLog{events: cp, sorted: true}
	}
	return c
}
