package store

import (
	"errors"
	"sync"
	"testing"
	"time"

	"locater/internal/event"
)

// memBackend is a Backend double that records appended mutations and can be
// told to fail, for exercising the write-ahead contract without a real log.
type memBackend struct {
	mu         sync.Mutex
	events     []event.Event
	deltas     map[event.DeviceID]time.Duration
	commits    int
	failAppend bool
	failCommit bool
}

func newMemBackend() *memBackend {
	return &memBackend{deltas: make(map[event.DeviceID]time.Duration)}
}

var errBackend = errors.New("backend failure")

func (b *memBackend) AppendEvents(evs []event.Event) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failAppend {
		return errBackend
	}
	b.events = append(b.events, evs...)
	return nil
}

func (b *memBackend) AppendDelta(d event.DeviceID, delta time.Duration) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failAppend {
		return errBackend
	}
	b.deltas[d] = delta
	return nil
}

func (b *memBackend) Commit() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failCommit {
		return errBackend
	}
	b.commits++
	return nil
}

func TestBackendReceivesAcknowledgedBatch(t *testing.T) {
	s := New(0)
	b := newMemBackend()
	s.AttachBackend(b)

	evs := []event.Event{
		{Device: "aa", Time: t0, AP: "ap1"},
		{ID: 77, Device: "bb", Time: t0.Add(time.Minute), AP: "ap2"},
		{Device: "aa", Time: t0.Add(2 * time.Minute), AP: "ap1"},
	}
	if _, err := s.Ingest(evs); err != nil {
		t.Fatal(err)
	}
	if len(b.events) != 3 {
		t.Fatalf("backend saw %d events, want 3", len(b.events))
	}
	// The logged batch carries the assigned IDs, exactly as acknowledged.
	if b.events[0].ID != 1 || b.events[1].ID != 77 || b.events[2].ID != 78 {
		t.Errorf("logged IDs = %d,%d,%d, want 1,77,78", b.events[0].ID, b.events[1].ID, b.events[2].ID)
	}
	if got := s.NextID(); got != 79 {
		t.Errorf("NextID = %d, want 79", got)
	}
	if b.commits != 1 {
		t.Errorf("commits = %d, want 1 (one group commit per batch)", b.commits)
	}

	if err := s.SetDelta("aa", 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if b.deltas["aa"] != 5*time.Minute {
		t.Errorf("backend delta = %v", b.deltas["aa"])
	}
}

func TestFailedAppendLeavesStoreUntouched(t *testing.T) {
	s := New(0)
	b := newMemBackend()
	s.AttachBackend(b)
	if _, err := s.Ingest([]event.Event{{Device: "aa", Time: t0, AP: "ap1"}}); err != nil {
		t.Fatal(err)
	}

	b.failAppend = true
	_, err := s.Ingest([]event.Event{{Device: "bb", Time: t0, AP: "ap2"}})
	if err == nil {
		t.Fatal("ingest with failing backend must error")
	}
	if got := s.NumEvents(); got != 1 {
		t.Errorf("store has %d events after failed append, want 1", got)
	}
	if got := s.NextID(); got != 2 {
		t.Errorf("NextID = %d after failed append, want 2 (unchanged)", got)
	}
	if err := s.SetDelta("aa", time.Minute); err == nil {
		t.Error("SetDelta with failing backend must error")
	}
	if s.Delta("aa") != DefaultDelta {
		t.Error("failed SetDelta must not change the delta")
	}

	// Recovered backend: the counter continues without reissuing ID 2.
	b.failAppend = false
	if _, err := s.Ingest([]event.Event{{Device: "cc", Time: t0, AP: "ap3"}}); err != nil {
		t.Fatal(err)
	}
	if evs := s.Events("cc"); len(evs) != 1 || evs[0].ID != 2 {
		t.Errorf("post-recovery ingest got %+v, want ID 2", evs)
	}
}

func TestFailedCommitSurfaces(t *testing.T) {
	s := New(0)
	b := newMemBackend()
	b.failCommit = true
	s.AttachBackend(b)
	if _, err := s.Ingest([]event.Event{{Device: "aa", Time: t0, AP: "ap1"}}); !errors.Is(err, errBackend) {
		t.Fatalf("commit failure not surfaced: %v", err)
	}
}

// TestNextIDMonotonicAcrossRecovery is the regression test for recovered
// stores reissuing event IDs: whatever the ingest pattern (buffered
// out-of-order arrivals, explicit IDs above the counter), a store rebuilt
// from a snapshot + replay must hand out fresh IDs.
func TestNextIDMonotonicAcrossRecovery(t *testing.T) {
	s := New(0)
	// Out-of-order ingestion knocks the log into the buffered (unsorted)
	// path; the middle event carries an explicit high ID.
	evs := []event.Event{
		{Device: "aa", Time: t0.Add(10 * time.Minute), AP: "ap1"},
		{ID: 500, Device: "aa", Time: t0, AP: "ap1"}, // out of order + explicit ID
		{Device: "aa", Time: t0.Add(5 * time.Minute), AP: "ap2"},
	}
	if _, err := s.Ingest(evs); err != nil {
		t.Fatal(err)
	}
	if got := s.NextID(); got != 502 {
		t.Fatalf("NextID = %d, want 502", got)
	}

	// Snapshot capture sorts the logs; the rebuilt store must restore the
	// counter even though replay order differs from ingest order.
	state := s.SnapshotState()
	if state.NextID != 502 {
		t.Fatalf("SnapshotState.NextID = %d, want 502", state.NextID)
	}
	recovered := New(0)
	for d, delta := range state.Deltas {
		if err := recovered.SetDelta(d, delta); err != nil {
			t.Fatal(err)
		}
	}
	for _, devEvs := range state.Events {
		if _, err := recovered.Ingest(devEvs); err != nil {
			t.Fatal(err)
		}
	}
	recovered.AdvanceNextID(state.NextID)
	if got := recovered.NextID(); got != 502 {
		t.Fatalf("recovered NextID = %d, want 502", got)
	}
	if err := recovered.IngestOne(event.Event{Device: "bb", Time: t0, AP: "ap1"}); err != nil {
		t.Fatal(err)
	}
	if got := recovered.Events("bb")[0].ID; got != 502 {
		t.Errorf("recovered store issued ID %d, want fresh 502", got)
	}

	// AdvanceNextID never lowers the counter.
	recovered.AdvanceNextID(10)
	if got := recovered.NextID(); got != 503 {
		t.Errorf("AdvanceNextID lowered the counter to %d", got)
	}
}

func TestCloneKeepsNextIDAndDropsBackend(t *testing.T) {
	s := New(0)
	b := newMemBackend()
	s.AttachBackend(b)
	if _, err := s.Ingest([]event.Event{
		{Device: "aa", Time: t0.Add(time.Hour), AP: "ap1"},
		{ID: 40, Device: "aa", Time: t0, AP: "ap2"}, // buffered out-of-order path
	}); err != nil {
		t.Fatal(err)
	}

	c := s.Clone()
	if got, want := c.NextID(), s.NextID(); got != want {
		t.Fatalf("clone NextID = %d, want %d", got, want)
	}
	logged := len(b.events)
	if err := c.IngestOne(event.Event{Device: "bb", Time: t0, AP: "ap1"}); err != nil {
		t.Fatal(err)
	}
	if c.Events("bb")[0].ID != 41 {
		t.Errorf("clone issued ID %d, want 41", c.Events("bb")[0].ID)
	}
	if len(b.events) != logged {
		t.Error("clone writes must not reach the source store's backend")
	}
}

func TestSnapshotStateIsDeepCopy(t *testing.T) {
	s := New(0)
	if _, err := s.Ingest([]event.Event{{Device: "aa", Time: t0, AP: "ap1"}}); err != nil {
		t.Fatal(err)
	}
	st := s.SnapshotState()
	st.Events["aa"][0].AP = "tampered"
	st.Deltas["aa"] = time.Nanosecond
	if s.Events("aa")[0].AP != "ap1" {
		t.Error("snapshot shares event memory with the store")
	}
	if s.Delta("aa") == time.Nanosecond {
		t.Error("snapshot shares delta map with the store")
	}
}
