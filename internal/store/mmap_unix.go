//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform can memory-map cold-tier
// segment files. On unsupported platforms the cold tier silently uses the
// portable read-at path behind the same interface.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared (coherent with
// appends written through the file descriptor on the same page cache).
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
