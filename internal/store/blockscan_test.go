package store

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// newBlockStore returns a segmented store with an intra-segment block size
// small enough that every segment holds several blocks — the configuration
// the block-skip scan paths exist for.
func newBlockStore(t *testing.T, segMax, blockEvents int, backend SegmentBackend) *Store {
	t.Helper()
	s := New(0)
	cfg := SegmentConfig{MaxEvents: segMax, BlockEvents: blockEvents, Backend: backend}
	if err := s.ConfigureSegments(cfg); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestBlockScanMatchesWholeSegmentDecode is the property test behind the
// tentpole: for random out-of-order seal histories, every read path on a
// block-indexed store (blocks of 3, index-driven skips) answers byte-for-
// byte identically to a whole-segment store (BlockEvents=-1, the legacy
// layout) and to a plain-slice oracle. Segments sealed from out-of-order
// ingestion overlap in time, so block pruning must be correct across
// overlapping segments, equal timestamps spilling over block boundaries,
// and window edges landing inside, between, and outside blocks.
func TestBlockScanMatchesWholeSegmentDecode(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		block := newBlockStore(t, 16, 3, nil)
		whole := newBlockStore(t, 16, -1, nil)
		ora := newSliceOracle(t)
		block.ConfigureOccupancy(0, true)

		devs := []string{"d0", "d1", "d2", "d3"}
		aps := []string{"a0", "a1", "a2"}
		span := 4 * time.Hour
		for i := 0; i < 600; i++ {
			// Bursts of equal timestamps force ties to straddle block
			// boundaries; backward jumps force overlapping seals.
			off := time.Duration(rng.Int63n(int64(span)))
			if rng.Intn(8) == 0 {
				off = off.Round(10 * time.Minute)
			}
			e := mk(devs[rng.Intn(len(devs))], off, aps[rng.Intn(len(aps))])
			for _, s := range []*Store{block, whole, ora} {
				if err := s.IngestOne(e); err != nil {
					t.Fatal(err)
				}
			}
		}
		if st := block.SegmentStats(); st.Segments == 0 {
			t.Fatal("workload sealed no segments")
		}

		randT := func() time.Time {
			return t0.Add(time.Duration(rng.Int63n(int64(span+time.Hour))) - 30*time.Minute)
		}
		for i := 0; i < 300; i++ {
			d := event.DeviceID(devs[rng.Intn(len(devs))])
			a, b := randT(), randT()
			if b.Before(a) {
				a, b = b, a
			}
			gb := block.EventsBetween(d, a, b)
			gw := whole.EventsBetween(d, a, b)
			go_ := ora.EventsBetween(d, a, b)
			if !eventsEqual(gb, go_) || !eventsEqual(gw, go_) {
				t.Fatalf("seed %d: EventsBetween(%s, %v, %v): block %d, whole %d, oracle %d events",
					seed, d, a, b, len(gb), len(gw), len(go_))
			}
			tq := randT()
			be, bok := block.LastEventAtOrBefore(d, tq)
			oe, ook := ora.LastEventAtOrBefore(d, tq)
			if bok != ook || (bok && be.ID != oe.ID) {
				t.Fatalf("seed %d: LastEventAtOrBefore(%s, %v) = %v/%v, oracle %v/%v", seed, d, tq, be, bok, oe, ook)
			}
			be, bok = block.FirstEventAfter(d, tq)
			oe, ook = ora.FirstEventAfter(d, tq)
			if bok != ook || (bok && be.ID != oe.ID) {
				t.Fatalf("seed %d: FirstEventAfter(%s, %v) = %v/%v, oracle %v/%v", seed, d, tq, be, bok, oe, ook)
			}
			bv, bg, berr := block.At(d, tq)
			ov, og, oerr := ora.At(d, tq)
			if (berr == nil) != (oerr == nil) || (bv == nil) != (ov == nil) || (bg == nil) != (og == nil) {
				t.Fatalf("seed %d: At(%s, %v) shape diverges from oracle", seed, d, tq)
			}
			if bv != nil && (bv.Event.ID != ov.Event.ID || !bv.Start.Equal(ov.Start) || !bv.End.Equal(ov.End)) {
				t.Fatalf("seed %d: At(%s, %v) validity diverges", seed, d, tq)
			}
		}
		// Active-device discovery exercises the per-block endpoint pruning.
		for i := 0; i < 50; i++ {
			a, b := randT(), randT()
			if b.Before(a) {
				a, b = b, a
			}
			var filter []space.APID
			if i%2 == 1 {
				filter = []space.APID{space.APID(aps[rng.Intn(len(aps))])}
			}
			got := block.ActiveDevicesAt(filter, a, b)
			want := ora.ActiveDevicesAt(filter, a, b)
			if len(got) != len(want) {
				t.Fatalf("seed %d: ActiveDevicesAt(%v, %v, %v) = %v, oracle %v", seed, filter, a, b, got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("seed %d: ActiveDevicesAt(%v, %v, %v) = %v, oracle %v", seed, filter, a, b, got, want)
				}
			}
		}
		// The point of the layout: the index must actually have pruned
		// blocks, and full materialization must agree too.
		if st := block.SegmentStats(); st.BlockSkips == 0 {
			t.Fatalf("seed %d: no block skips recorded — the index never pruned anything", seed)
		}
		for _, d := range devs {
			dd := event.DeviceID(d)
			if !eventsEqual(block.Events(dd), ora.Events(dd)) {
				t.Fatalf("seed %d: device %s: Events diverges", seed, d)
			}
		}
	}
}

// TestResidentBytesSplitHeapVsMmap pins the /stats contract: with the mmap
// cold tier, decoded blocks are heap-resident (CachedBytes) while encoded
// payloads are OS-resident (Backend.MappedBytes) — two separate non-zero
// numbers. With the in-memory backend the mapped figure is zero.
func TestResidentBytesSplitHeapVsMmap(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	dir := t.TempDir()
	backend, err := NewMmapSegmentBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := newBlockStore(t, 8, 2, backend)
	for i := 0; i < 64; i++ {
		if err := s.IngestOne(mk("d", time.Duration(i)*time.Minute, fmt.Sprintf("ap%d", i%3))); err != nil {
			t.Fatal(err)
		}
	}
	s.InvalidateSegmentCache()
	if evs := s.EventsBetween("d", t0, t0.Add(time.Hour)); len(evs) != 61 {
		t.Fatalf("window read %d events, want 61", len(evs))
	}
	st := s.SegmentStats()
	if st.CachedBytes <= 0 {
		t.Fatalf("heap-resident decoded bytes = %d, want > 0", st.CachedBytes)
	}
	if st.Backend.MappedFiles != 1 || st.Backend.MappedBytes <= 0 {
		t.Fatalf("mmap residency = %+v, want one mapped file", st.Backend)
	}
	if err := s.CloseSegments(); err != nil {
		t.Fatal(err)
	}

	mem := newBlockStore(t, 8, 2, nil)
	for i := 0; i < 64; i++ {
		if err := mem.IngestOne(mk("d", time.Duration(i)*time.Minute, "x")); err != nil {
			t.Fatal(err)
		}
	}
	mem.EventsBetween("d", t0, t0.Add(time.Hour))
	if st := mem.SegmentStats(); st.Backend.MappedBytes != 0 || st.Backend.MappedFiles != 0 {
		t.Fatalf("in-memory backend reports mmap residency: %+v", st.Backend)
	}
}
