package fine

import (
	"time"

	"locater/internal/event"
)

// clusterNeighbors runs the incremental D-FINE clusterer (union-find +
// batched intra-neighbor affinity sweep) over a scripted neighbor set and
// returns the final partition in deterministic order. Tests only: the
// production path folds neighbors in one at a time via dfineAddNeighbor.
func (l *Localizer) clusterNeighbors(active []neighborInfo, tq time.Time) [][]neighborInfo {
	var df dfineState
	df.reset(len(active))
	var devs []event.DeviceID
	var affs []float64
	for idx := range active {
		devs = devs[:0]
		for i := 0; i < idx; i++ {
			devs = append(devs, active[i].dev)
		}
		affs = l.batchAffinity(active[idx].dev, devs, tq, affs)
		for i := 0; i < idx; i++ {
			if affs[i] > 0 {
				df.union(i, idx)
			}
		}
	}
	// Roots discovered in ascending member order, so cluster order is by
	// minimum member index — the production ordering.
	byRoot := make(map[int][]neighborInfo)
	var roots []int
	for i := range active {
		r := df.find(i)
		if _, seen := byRoot[r]; !seen {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], active[i])
	}
	out := make([][]neighborInfo, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}
