package fine

import (
	"fmt"
	"testing"
	"time"

	"locater/internal/event"
	"locater/internal/space"
	"locater/internal/store"
)

// benchScene wires a region full of neighbors around the queried device.
func benchScene(b *testing.B, neighbors int, variant Variant, stop bool) (*Localizer, space.RegionID) {
	b.Helper()
	bld := paperBuilding(b)
	st := store.New(0)
	aff := fixedAffinity{}
	conns := map[event.DeviceID]space.APID{"d1": "wap3"}
	for i := 0; i < neighbors; i++ {
		d := event.DeviceID(fmt.Sprintf("n%03d", i))
		conns[d] = "wap3"
		aff[pair("d1", d)] = 0.1 + 0.8*float64(i%7)/7
	}
	for d, ap := range conns {
		if err := st.IngestOne(event.Event{Device: d, Time: t0, AP: ap}); err != nil {
			b.Fatal(err)
		}
		if err := st.SetDelta(d, 10*time.Minute); err != nil {
			b.Fatal(err)
		}
	}
	l := New(bld, st, aff, nil, Options{Variant: variant, UseStopConditions: stop})
	g3, _ := bld.RegionOf("wap3")
	return l, g3
}

func BenchmarkLocateIndependent(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("neighbors=%d", n), func(b *testing.B) {
			l, g := benchScene(b, n, Independent, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Locate("d1", g, t0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLocateDependent(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("neighbors=%d", n), func(b *testing.B) {
			l, g := benchScene(b, n, Dependent, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Locate("d1", g, t0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLocateNoStopConditions(b *testing.B) {
	l, g := benchScene(b, 32, Independent, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Locate("d1", g, t0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNeighborSet measures candidate-neighbor discovery (D_n
// construction) at a fixed neighborhood size while the total device count
// in the store scales: 32 devices near t_q, the rest with history a month
// away. With the occupancy index the cost should track the active
// neighborhood, not the store population; the scan variant is the
// full-store baseline.
func BenchmarkNeighborSet(b *testing.B) {
	for _, total := range []int{1000, 10000} {
		for _, mode := range []struct {
			name    string
			indexed bool
		}{{"indexed", true}, {"scan", false}} {
			b.Run(fmt.Sprintf("devices=%d/%s", total, mode.name), func(b *testing.B) {
				bld := paperBuilding(b)
				st := store.New(0)
				if !mode.indexed {
					st.ConfigureOccupancy(0, false)
				}
				aff := fixedAffinity{}
				evs := make([]event.Event, 0, total+33)
				// The queried device plus 32 live neighbors at t_q.
				evs = append(evs, event.Event{Device: "d1", Time: t0, AP: "wap3"})
				for i := 0; i < 32; i++ {
					d := event.DeviceID(fmt.Sprintf("n%03d", i))
					aff[pair("d1", d)] = 0.1 + 0.8*float64(i%7)/7
					evs = append(evs, event.Event{Device: d, Time: t0, AP: "wap3"})
				}
				// Background population: history far from t_q.
				for i := 0; i < total; i++ {
					evs = append(evs, event.Event{
						Device: event.DeviceID(fmt.Sprintf("bg%06d", i)),
						Time:   t0.Add(-30*24*time.Hour + time.Duration(i%1440)*time.Minute),
						AP:     "wap4",
					})
				}
				if _, err := st.Ingest(evs); err != nil {
					b.Fatal(err)
				}
				l := New(bld, st, aff, nil, Options{UseStopConditions: true})
				g3, _ := bld.RegionOf("wap3")
				prior := l.priorFor("d1", g3, t0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := l.neighborSet("d1", g3, t0, prior); len(got) != 32 {
						b.Fatalf("neighbors = %d, want 32", len(got))
					}
				}
			})
		}
	}
}

func BenchmarkDeviceAffinity(b *testing.B) {
	st := store.New(0)
	st.SetDelta("a", 5*time.Minute)
	st.SetDelta("b", 5*time.Minute)
	var evs []event.Event
	for i := 0; i < 5000; i++ {
		ts := t0.Add(time.Duration(i) * time.Minute)
		evs = append(evs,
			event.Event{Device: "a", Time: ts, AP: "apX"},
			event.Event{Device: "b", Time: ts.Add(30 * time.Second), AP: "apX"},
		)
	}
	st.Ingest(evs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeviceAffinity(st, "a", "b", t0, t0.Add(5000*time.Minute))
	}
}

func BenchmarkRoomAffinities(b *testing.B) {
	bld := paperBuilding(b)
	g3, _ := bld.RegionOf("wap3")
	w := DefaultWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RoomAffinities(bld, w, "d1", g3)
	}
}
