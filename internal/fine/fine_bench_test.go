package fine

import (
	"fmt"
	"testing"
	"time"

	"locater/internal/event"
	"locater/internal/space"
	"locater/internal/store"
)

// benchScene wires a region full of neighbors around the queried device.
func benchScene(b *testing.B, neighbors int, variant Variant, stop bool) (*Localizer, space.RegionID) {
	b.Helper()
	bld := paperBuilding(b)
	st := store.New(0)
	aff := fixedAffinity{}
	conns := map[event.DeviceID]space.APID{"d1": "wap3"}
	for i := 0; i < neighbors; i++ {
		d := event.DeviceID(fmt.Sprintf("n%03d", i))
		conns[d] = "wap3"
		aff[pair("d1", d)] = 0.1 + 0.8*float64(i%7)/7
	}
	for d, ap := range conns {
		if err := st.IngestOne(event.Event{Device: d, Time: t0, AP: ap}); err != nil {
			b.Fatal(err)
		}
		if err := st.SetDelta(d, 10*time.Minute); err != nil {
			b.Fatal(err)
		}
	}
	l := New(bld, st, aff, nil, Options{Variant: variant, UseStopConditions: stop})
	g3, _ := bld.RegionOf("wap3")
	return l, g3
}

func BenchmarkLocateIndependent(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("neighbors=%d", n), func(b *testing.B) {
			l, g := benchScene(b, n, Independent, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Locate("d1", g, t0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLocateDependent(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("neighbors=%d", n), func(b *testing.B) {
			l, g := benchScene(b, n, Dependent, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Locate("d1", g, t0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLocateNoStopConditions(b *testing.B) {
	l, g := benchScene(b, 32, Independent, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Locate("d1", g, t0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNeighborSet measures candidate-neighbor discovery (D_n
// construction) at a fixed neighborhood size while the total device count
// in the store scales: 32 devices near t_q, the rest with history a month
// away. With the occupancy index the cost should track the active
// neighborhood, not the store population; the scan variant is the
// full-store baseline.
func BenchmarkNeighborSet(b *testing.B) {
	for _, total := range []int{1000, 10000} {
		for _, mode := range []struct {
			name    string
			indexed bool
		}{{"indexed", true}, {"scan", false}} {
			b.Run(fmt.Sprintf("devices=%d/%s", total, mode.name), func(b *testing.B) {
				bld := paperBuilding(b)
				st := store.New(0)
				if !mode.indexed {
					st.ConfigureOccupancy(0, false)
				}
				aff := fixedAffinity{}
				evs := make([]event.Event, 0, total+33)
				// The queried device plus 32 live neighbors at t_q.
				evs = append(evs, event.Event{Device: "d1", Time: t0, AP: "wap3"})
				for i := 0; i < 32; i++ {
					d := event.DeviceID(fmt.Sprintf("n%03d", i))
					aff[pair("d1", d)] = 0.1 + 0.8*float64(i%7)/7
					evs = append(evs, event.Event{Device: d, Time: t0, AP: "wap3"})
				}
				// Background population: history far from t_q.
				for i := 0; i < total; i++ {
					evs = append(evs, event.Event{
						Device: event.DeviceID(fmt.Sprintf("bg%06d", i)),
						Time:   t0.Add(-30*24*time.Hour + time.Duration(i%1440)*time.Minute),
						AP:     "wap4",
					})
				}
				if _, err := st.Ingest(evs); err != nil {
					b.Fatal(err)
				}
				l := New(bld, st, aff, nil, Options{UseStopConditions: true})
				g3, _ := bld.RegionOf("wap3")
				candidates := bld.CandidateRooms(g3)
				priorMap := l.priorFor("d1", g3, t0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					qc := acquireQueryCtx(candidates)
					for j, r := range candidates {
						qc.prior[j] = priorMap[r]
						qc.lp[j] = logit(priorMap[r])
					}
					if got := l.neighborSet(qc, "d1", g3, t0); len(got) != 32 {
						b.Fatalf("neighbors = %d, want 32", len(got))
					}
					qc.release()
				}
			})
		}
	}
}

// historyScene builds a store where the queried device and every neighbor
// carry real co-located history, so store-backed affinities are non-trivial:
// the cold-query benchmarks exercise the batched sweep end to end.
func historyScene(b *testing.B, neighbors int) (*space.Building, *store.Store, space.RegionID) {
	b.Helper()
	bld := paperBuilding(b)
	st := store.New(0)
	var evs []event.Event
	var qTimes []time.Time
	for k := 0; k < 336; k++ { // two weeks, hourly
		ts := t0.Add(-time.Duration(k+1) * time.Hour)
		qTimes = append(qTimes, ts)
		evs = append(evs, event.Event{Device: "d1", Time: ts, AP: "wap3"})
	}
	evs = append(evs, event.Event{Device: "d1", Time: t0, AP: "wap3"})
	for i := 0; i < neighbors; i++ {
		d := event.DeviceID(fmt.Sprintf("n%03d", i))
		for k := 0; k < 64; k++ {
			ts := qTimes[(k*7+i*3)%len(qTimes)]
			ap := space.APID("wap3")
			if k%2 == 1 {
				ts = ts.Add(4 * time.Hour)
				ap = "wap4"
			} else {
				ts = ts.Add(2 * time.Minute)
			}
			evs = append(evs, event.Event{Device: d, Time: ts, AP: ap})
		}
		evs = append(evs, event.Event{Device: d, Time: t0, AP: "wap3"})
	}
	if _, err := st.Ingest(evs); err != nil {
		b.Fatal(err)
	}
	g3, _ := bld.RegionOf("wap3")
	return bld, st, g3
}

// BenchmarkColdLocate measures a full cold query — neighbor discovery,
// batched affinity sweep from raw history, posterior combination — for both
// variants. The store-backed provider has no cache, so every iteration pays
// the whole kernel.
func BenchmarkColdLocate(b *testing.B) {
	for _, variant := range []Variant{Independent, Dependent} {
		for _, n := range []int{16, 64} {
			b.Run(fmt.Sprintf("%s/neighbors=%d", variant, n), func(b *testing.B) {
				bld, st, g3 := historyScene(b, n)
				l := New(bld, st, nil, nil, Options{Variant: variant, UseStopConditions: false})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := l.Locate("d1", g3, t0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPairAffinityBatch contrasts the batched affinity sweep (one copy
// of the queried device's window + zero-copy candidate scans) against the
// per-pair DeviceAffinity path (two window copies per pair).
func BenchmarkPairAffinityBatch(b *testing.B) {
	_, st, _ := historyScene(b, 64)
	var cands []event.DeviceID
	for i := 0; i < 64; i++ {
		cands = append(cands, event.DeviceID(fmt.Sprintf("n%03d", i)))
	}
	start, end := t0.Add(-8*7*24*time.Hour), t0
	b.Run("batch", func(b *testing.B) {
		var out []float64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out = BatchDeviceAffinity(st, "d1", cands, start, end, out)
		}
	})
	b.Run("perpair", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, c := range cands {
				DeviceAffinity(st, "d1", c, start, end)
			}
		}
	})
}

// BenchmarkDFineCluster isolates D-FINE's clustering cost: a scripted
// affinity provider (no history scans), so the measured work is the
// incremental union-find + cluster re-scoring versus the reference's
// from-scratch O(n³)-lookup re-clustering.
func BenchmarkDFineCluster(b *testing.B) {
	for _, n := range []int{32, 128} {
		bld := paperBuilding(b)
		st := store.New(0)
		aff := fixedAffinity{}
		conns := map[event.DeviceID]space.APID{"d1": "wap3"}
		var devs []event.DeviceID
		for i := 0; i < n; i++ {
			d := event.DeviceID(fmt.Sprintf("n%03d", i))
			devs = append(devs, d)
			conns[d] = "wap3"
			aff[pair("d1", d)] = 0.1 + 0.8*float64(i%7)/7
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j += 5 { // sparse intra-neighbor edges
				aff[pair(devs[i], devs[j])] = 0.3
			}
		}
		for d, ap := range conns {
			if err := st.IngestOne(event.Event{Device: d, Time: t0, AP: ap}); err != nil {
				b.Fatal(err)
			}
			if err := st.SetDelta(d, 10*time.Minute); err != nil {
				b.Fatal(err)
			}
		}
		g3, _ := bld.RegionOf("wap3")
		l := New(bld, st, aff, nil, Options{Variant: Dependent, UseStopConditions: false})
		b.Run(fmt.Sprintf("incremental/neighbors=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := l.Locate("d1", g3, t0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("reference/neighbors=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := l.ReferenceLocate("d1", g3, t0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDeviceAffinity(b *testing.B) {
	st := store.New(0)
	st.SetDelta("a", 5*time.Minute)
	st.SetDelta("b", 5*time.Minute)
	var evs []event.Event
	for i := 0; i < 5000; i++ {
		ts := t0.Add(time.Duration(i) * time.Minute)
		evs = append(evs,
			event.Event{Device: "a", Time: ts, AP: "apX"},
			event.Event{Device: "b", Time: ts.Add(30 * time.Second), AP: "apX"},
		)
	}
	st.Ingest(evs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeviceAffinity(st, "a", "b", t0, t0.Add(5000*time.Minute))
	}
}

func BenchmarkRoomAffinities(b *testing.B) {
	bld := paperBuilding(b)
	g3, _ := bld.RegionOf("wap3")
	w := DefaultWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RoomAffinities(bld, w, "d1", g3)
	}
}
