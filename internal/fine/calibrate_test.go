package fine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

func TestLabelStoreValidation(t *testing.T) {
	s := NewLabelStore(0)
	if s.Smoothing != 8 {
		t.Errorf("default smoothing = %v, want 8", s.Smoothing)
	}
	if err := s.Add("", "r", t0); err == nil {
		t.Error("empty device should fail")
	}
	if err := s.Add("d", "", t0); err == nil {
		t.Error("empty room should fail")
	}
	if err := s.Add("d", "r", t0); err != nil {
		t.Fatal(err)
	}
	if got := s.Count("d", "r"); got != 1 {
		t.Errorf("count = %d", got)
	}
	if got := s.Count("d", "other"); got != 0 {
		t.Errorf("missing count = %d", got)
	}
	devs := s.Devices()
	if len(devs) != 1 || devs[0] != "d" {
		t.Errorf("devices = %v", devs)
	}
}

func TestLabelStoreBlend(t *testing.T) {
	s := NewLabelStore(4)
	prior := map[space.RoomID]float64{"a": 0.6, "b": 0.3, "c": 0.1}

	// No labels → same map returned.
	if got := s.Blend("d", prior); &got == &prior {
		// maps are reference types; compare identity via mutation
	}
	out := s.Blend("d", prior)
	if out["a"] != 0.6 {
		t.Errorf("no-label blend changed prior: %v", out)
	}

	// Labels concentrated on "c" shift the blended distribution toward it.
	for i := 0; i < 12; i++ {
		s.Add("d", "c", t0)
	}
	out = s.Blend("d", prior)
	if out["c"] <= prior["c"] {
		t.Errorf("labels did not raise c: %v", out["c"])
	}
	if out["a"] >= prior["a"] {
		t.Errorf("labels did not lower a: %v", out["a"])
	}
	// λ = 12/(12+4) = 0.75: c = 0.75·1 + 0.25·0.1 = 0.775.
	if math.Abs(out["c"]-0.775) > 1e-9 {
		t.Errorf("c = %v, want 0.775", out["c"])
	}
	// Still a distribution.
	sum := 0.0
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("blend sums to %v", sum)
	}
	// Labels in rooms outside the candidate set are ignored.
	s2 := NewLabelStore(4)
	s2.Add("d", "elsewhere", t0)
	out = s2.Blend("d", prior)
	if out["a"] != 0.6 {
		t.Errorf("foreign-room labels changed prior: %v", out)
	}
}

// Property: Blend always returns a probability distribution over the
// candidate rooms and is monotone in label counts for the labeled room.
func TestLabelBlendProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewLabelStore(1 + rng.Float64()*10)
		prior := map[space.RoomID]float64{}
		rooms := []space.RoomID{"a", "b", "c", "d"}
		total := 0.0
		for _, r := range rooms {
			prior[r] = 0.05 + rng.Float64()
			total += prior[r]
		}
		for _, r := range rooms {
			prior[r] /= total
		}
		target := rooms[rng.Intn(len(rooms))]
		prev := prior[target]
		for i := 0; i < 5; i++ {
			s.Add("d", target, t0)
			out := s.Blend("d", prior)
			sum := 0.0
			for _, r := range rooms {
				if out[r] < -1e-12 {
					return false
				}
				sum += out[r]
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
			if out[target]+1e-12 < prev {
				return false // more labels must not lower the labeled room
			}
			prev = out[target]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLabelsSharpenLocate(t *testing.T) {
	b := paperBuilding(t)
	// d9 has no preferred room: the prior favors the public room 2065.
	st := setupScene(t, b, map[event.DeviceID]space.APID{"d9": "wap3"})
	l := New(b, st, fixedAffinity{}, nil, Options{})
	g3, _ := b.RegionOf("wap3")

	res, err := l.Locate("d9", g3, t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Room != "2065" {
		t.Fatalf("unlabeled answer = %s, want public 2065", res.Room)
	}

	// Crowd-sourced labels say d9 actually works in 2069.
	labels := NewLabelStore(2)
	for i := 0; i < 10; i++ {
		labels.Add("d9", "2069", t0.Add(time.Duration(i)*time.Hour))
	}
	l.SetLabelStore(labels)
	res, err = l.Locate("d9", g3, t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Room != "2069" {
		t.Errorf("labeled answer = %s, want 2069", res.Room)
	}
}

func TestTimePreferredRoomsShiftPrior(t *testing.T) {
	b := paperBuilding(t)
	st := setupScene(t, b, map[event.DeviceID]space.APID{"d1": "wap3"})
	// d1 statically prefers 2061; over lunch they prefer the public 2065.
	if err := b.SetTimePreferredRooms("d1", []space.TimePreference{
		{StartMinute: 12 * 60, EndMinute: 13 * 60, Rooms: []space.RoomID{"2065"}},
	}); err != nil {
		t.Fatal(err)
	}
	l := New(b, st, fixedAffinity{}, nil, Options{})
	g3, _ := b.RegionOf("wap3")

	// t0 is 09:00: static preference applies.
	res, err := l.Locate("d1", g3, t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Room != "2061" {
		t.Errorf("morning room = %s, want 2061", res.Room)
	}
	// Same device at 12:30 — but the store only has an event at t0, so use
	// a fresh scene with a lunch-time event.
	lunch := t0.Add(3*time.Hour + 30*time.Minute) // 12:30
	st2 := setupScene(t, b, map[event.DeviceID]space.APID{})
	st2.IngestOne(event.Event{Device: "d1", Time: lunch, AP: "wap3"})
	st2.SetDelta("d1", 10*time.Minute)
	l2 := New(b, st2, fixedAffinity{}, nil, Options{})
	res, err = l2.Locate("d1", g3, lunch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Room != "2065" {
		t.Errorf("lunch room = %s, want time-preferred 2065", res.Room)
	}
}
