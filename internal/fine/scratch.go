package fine

import (
	"sort"
	"sync"

	"locater/internal/event"
	"locater/internal/space"
)

// This file holds the query-scoped scratch state of the optimized kernel:
// dense room-indexed slices recycled through a sync.Pool, a float arena for
// per-neighbor support vectors, and the per-region pair context cache.
// Nothing allocated here may outlive the query — Locate copies everything it
// returns (Posterior map, LocalGraph) out of the scratch before releasing it.

// floatArena hands out zeroed []float64 scratch slices backed by one large
// block. When the block runs out a bigger one is allocated; slices handed
// out earlier keep referencing the old block (still reachable, so still
// valid) while new requests come from the new one. reset reuses the current
// block for the next query.
type floatArena struct {
	cur []float64
	off int
}

func (a *floatArena) alloc(n int) []float64 {
	if a.off+n > len(a.cur) {
		size := 2 * len(a.cur)
		if size < n {
			size = n
		}
		if size < 1024 {
			size = 1024
		}
		a.cur = make([]float64, size)
		a.off = 0
	}
	out := a.cur[a.off : a.off+n : a.off+n]
	a.off += n
	for i := range out {
		out[i] = 0
	}
	return out
}

func (a *floatArena) reset() { a.off = 0 }

// regionCtx caches, per neighbor region g_k encountered during one query,
// everything pairSupport needs that depends only on (g_d, g_k, prior): the
// intersecting rooms R_is and the queried device's conditional over them.
// The pre-fix kernel re-derived all of it for every neighbor even though
// neighbors overwhelmingly share a handful of regions.
type regionCtx struct {
	// risIdx are the positions (in qc.candidates, ascending) of
	// R(g_d) ∩ R(g_k); risGkIdx are the same rooms' positions in R(g_k).
	risIdx   []int
	risGkIdx []int
	// condD[ri] = P(@(d_i, r) | @(d_i, R_is)) for ri ∈ risIdx; nil when the
	// regions share no rooms.
	condD []float64
}

// pendingNeighbor is a discovery candidate that passed the region/online
// filters and awaits its affinity from the batched sweep.
type pendingNeighbor struct {
	dev    event.DeviceID
	region space.RegionID
}

// clusterInfo is one D-FINE affinity cluster's cached state: its members (in
// ascending processing order), the cluster-wide group affinity per candidate
// room, the total co-location mass z (clamped at 1), and whether any room's
// affinity is positive (the termination test).
type clusterInfo struct {
	members  []int
	ga       []float64
	z        float64
	positive bool
}

// dfineState is the incremental D-FINE clusterer: one union-find maintained
// across Algorithm 2's iterations, with per-root cluster caches. Only the
// cluster the new neighbor joins (or merges) is recomputed; the from-scratch
// reference re-clusters and re-scores everything at every step.
type dfineState struct {
	parent []int
	// clusters[root] is the cached cluster whose union-find root is root;
	// nil at non-root indices.
	clusters []*clusterInfo
	// order is scratch for the deterministic cluster ordering (roots sorted
	// by minimum member index).
	order []int
	// free recycles clusterInfo structs across iterations and queries.
	free []*clusterInfo
}

func (df *dfineState) reset(n int) {
	if cap(df.parent) < n {
		df.parent = make([]int, n)
		df.clusters = make([]*clusterInfo, n)
	}
	df.parent = df.parent[:n]
	df.clusters = df.clusters[:n]
	for i := 0; i < n; i++ {
		df.parent[i] = i
		if c := df.clusters[i]; c != nil {
			df.free = append(df.free, c)
		}
		df.clusters[i] = nil
	}
	df.order = df.order[:0]
}

func (df *dfineState) find(x int) int {
	for df.parent[x] != x {
		df.parent[x] = df.parent[df.parent[x]]
		x = df.parent[x]
	}
	return x
}

// union merges the sets of i and j, dropping both roots' cached clusters
// (the caller rebuilds the merged one). Reports whether a merge happened.
func (df *dfineState) union(i, j int) bool {
	ri, rj := df.find(i), df.find(j)
	if ri == rj {
		return false
	}
	df.parent[ri] = rj
	df.releaseCluster(ri)
	df.releaseCluster(rj)
	return true
}

func (df *dfineState) releaseCluster(root int) {
	if c := df.clusters[root]; c != nil {
		df.free = append(df.free, c)
		df.clusters[root] = nil
	}
}

func (df *dfineState) newCluster() *clusterInfo {
	if n := len(df.free); n > 0 {
		c := df.free[n-1]
		df.free = df.free[:n-1]
		c.members = c.members[:0]
		c.ga = nil
		c.z = 0
		c.positive = false
		return c
	}
	return &clusterInfo{}
}

// clusterOrder returns the live roots sorted by their cluster's minimum
// member index — the deterministic order the posterior combination folds
// clusters in.
func (df *dfineState) clusterOrder() []int {
	df.order = df.order[:0]
	for root, c := range df.clusters {
		if c != nil {
			df.order = append(df.order, root)
		}
	}
	sort.Slice(df.order, func(i, j int) bool {
		return df.clusters[df.order[i]].members[0] < df.clusters[df.order[j]].members[0]
	})
	return df.order
}

// queryCtx is the per-query scratch of the optimized kernel. All room
// distributions are dense slices indexed by the room's position in the
// sorted candidate set (the "room index"); the maps the pre-fix kernel
// allocated per neighbor are gone.
type queryCtx struct {
	// candidates is R(g_d), shared with the building (not owned).
	candidates []space.RoomID
	// prior / lp are the queried device's room prior and its logit, computed
	// once per query; acc accumulates per-room evidence log-odds (I-FINE);
	// post is the current posterior.
	prior, lp, acc, post []float64

	arena floatArena

	// regions caches pair contexts by neighbor region; regionPool recycles
	// the structs across queries.
	regions    map[space.RegionID]*regionCtx
	regionPool []*regionCtx
	nextRegion int

	// neighbors / ordered are the kernel's neighbor lists; cands the
	// filtered discovery candidates; devs / affs the batched-affinity
	// arguments; gkVals / blended per-room scratch.
	neighbors []neighborInfo
	ordered   []neighborInfo
	cands     []pendingNeighbor
	devs      []event.DeviceID
	affs      []float64
	gkVals    []float64
	blended   []float64
	byDev     map[event.DeviceID]int

	dfine dfineState
}

// scratchPool recycles queryCtx values across queries and goroutines:
// steady-state queries allocate only what escapes (the Result's posterior
// map and local-graph edges).
var scratchPool = sync.Pool{New: func() any { return new(queryCtx) }}

func acquireQueryCtx(candidates []space.RoomID) *queryCtx {
	qc := scratchPool.Get().(*queryCtx)
	nc := len(candidates)
	qc.candidates = candidates
	qc.prior = growFloats(qc.prior, nc)
	qc.lp = growFloats(qc.lp, nc)
	qc.acc = growFloats(qc.acc, nc)
	qc.post = growFloats(qc.post, nc)
	if qc.regions == nil {
		qc.regions = make(map[space.RegionID]*regionCtx, 8)
	}
	return qc
}

// release returns the scratch to the pool. The caller must not touch qc — or
// anything arena-backed, like the neighborInfo slices — afterwards.
func (qc *queryCtx) release() {
	qc.candidates = nil
	for k := range qc.regions {
		delete(qc.regions, k)
	}
	qc.nextRegion = 0
	qc.neighbors = qc.neighbors[:0]
	qc.ordered = qc.ordered[:0]
	qc.cands = qc.cands[:0]
	qc.devs = qc.devs[:0]
	qc.arena.reset()
	scratchPool.Put(qc)
}

// regionCtxFor returns the cached pair context for neighbor region gk,
// computing it on first sight: the candidate-room intersection (two-pointer
// over the sorted room lists) and the queried device's conditional over it.
func (qc *queryCtx) regionCtxFor(l *Localizer, gk space.RegionID) *regionCtx {
	if rc, ok := qc.regions[gk]; ok {
		return rc
	}
	var rc *regionCtx
	if qc.nextRegion < len(qc.regionPool) {
		rc = qc.regionPool[qc.nextRegion]
		rc.risIdx = rc.risIdx[:0]
		rc.risGkIdx = rc.risGkIdx[:0]
		rc.condD = nil
	} else {
		rc = &regionCtx{}
		qc.regionPool = append(qc.regionPool, rc)
	}
	qc.nextRegion++

	gkRooms := l.building.CandidateRooms(gk)
	i, j := 0, 0
	for i < len(qc.candidates) && j < len(gkRooms) {
		switch {
		case qc.candidates[i] == gkRooms[j]:
			rc.risIdx = append(rc.risIdx, i)
			rc.risGkIdx = append(rc.risGkIdx, j)
			i++
			j++
		case qc.candidates[i] < gkRooms[j]:
			i++
		default:
			j++
		}
	}
	if len(rc.risIdx) > 0 {
		rc.condD = qc.arena.alloc(len(qc.candidates))
		total := 0.0
		for _, ri := range rc.risIdx {
			total += qc.prior[ri]
		}
		if total <= 0 {
			u := 1.0 / float64(len(rc.risIdx))
			for _, ri := range rc.risIdx {
				rc.condD[ri] = u
			}
		} else {
			for _, ri := range rc.risIdx {
				rc.condD[ri] = qc.prior[ri] / total
			}
		}
	}
	qc.regions[gk] = rc
	return rc
}

// result copies the dense posterior out into the public Result shape.
func (qc *queryCtx) result(processed int, stopped bool) Result {
	posterior := make(map[space.RoomID]float64, len(qc.candidates))
	for i, r := range qc.candidates {
		posterior[r] = qc.post[i]
	}
	best := argmaxDense(qc.post)
	return Result{
		Room:               qc.candidates[best],
		Probability:        qc.post[best],
		Posterior:          posterior,
		ProcessedNeighbors: processed,
		StoppedEarly:       stopped,
	}
}

// argmaxDense mirrors argmaxRoom on the dense posterior: first index wins
// ties (candidates are sorted, so this is the same deterministic tie-break).
func argmaxDense(post []float64) int {
	best := 0
	for i := 1; i < len(post); i++ {
		if post[i] > post[best] {
			best = i
		}
	}
	return best
}

// top2Dense mirrors top2Rooms on the dense posterior.
func top2Dense(post []float64) (int, int) {
	ra, rb := 0, 0
	first := true
	for i := range post {
		if first {
			ra = i
			first = false
			continue
		}
		if post[i] > post[ra] {
			rb = ra
			ra = i
		} else if rb == ra || post[i] > post[rb] {
			rb = i
		}
	}
	if rb == ra && len(post) > 1 {
		for i := range post {
			if i != ra {
				rb = i
				break
			}
		}
	}
	return ra, rb
}

// roomInSorted reports membership via binary search over a sorted room list
// (the preferred-rooms set), replacing the per-neighbor map the reference
// prior construction builds.
func roomInSorted(rooms []space.RoomID, r space.RoomID) bool {
	i := sort.Search(len(rooms), func(i int) bool { return rooms[i] >= r })
	return i < len(rooms) && rooms[i] == r
}
