package fine

import (
	"fmt"
	"math"
	"sort"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// This file preserves the pre-optimization fine-stage kernel verbatim as an
// executable oracle. The optimized kernel in fine.go (batched affinity
// sweeps, incremental posteriors, dense room indexing, incremental D-FINE
// clustering) must produce posteriors that match this implementation to
// 1e-12; the equivalence property suite and `locater-bench -query`'s
// correctness gate both diff against it. It is deliberately naive: per-pair
// history copies, map-keyed room distributions, full per-iteration
// re-summation, and from-scratch clustering at every step.

// refNeighborInfo is the map-based neighborInfo of the reference kernel.
type refNeighborInfo struct {
	dev          event.DeviceID
	region       space.RegionID
	pairAffinity float64
	support      map[space.RoomID]float64
	condI        map[space.RoomID]float64
	condK        map[space.RoomID]float64
	sameRoomProb float64
}

// ReferenceLocate answers the same query as Locate through the pre-refactor
// reference kernel. It is exported for the equivalence tests and the
// `locater-bench -query` correctness gate only; production callers use
// Locate.
func (l *Localizer) ReferenceLocate(d event.DeviceID, g space.RegionID, tq time.Time) (Result, error) {
	candidates := l.building.CandidateRooms(g)
	if len(candidates) == 0 {
		return Result{}, fmt.Errorf("fine: region %s has no candidate rooms", g)
	}
	prior := l.priorFor(d, g, tq)

	neighbors := l.refNeighborSet(d, g, tq, prior)
	total := len(neighbors)
	if l.orderer != nil {
		neighbors = l.refReorder(d, neighbors, tq)
	}
	if max := l.opts.MaxNeighbors; max > 0 && len(neighbors) > max {
		neighbors = neighbors[:max]
	}

	var res Result
	switch l.opts.Variant {
	case Dependent:
		res = l.refLocateDependent(candidates, prior, neighbors, tq)
	default:
		res = l.refLocateIndependent(candidates, prior, neighbors)
	}
	res.TotalNeighbors = total

	for i := 0; i < res.ProcessedNeighbors && i < len(neighbors); i++ {
		n := neighbors[i]
		sum := 0.0
		for _, r := range candidates {
			sum += n.support[r]
		}
		res.LocalGraph = append(res.LocalGraph, LocalEdge{
			From:   d,
			To:     n.dev,
			Weight: sum / float64(len(candidates)),
		})
	}
	return res, nil
}

// refNeighborSet consults the affinity provider once per candidate — with a
// store-backed provider that means two full history-window copies per pair
// (DeviceAffinity via EventsBetween), the cost the batched sweep removes.
func (l *Localizer) refNeighborSet(d event.DeviceID, g space.RegionID, tq time.Time, prior map[space.RoomID]float64) []refNeighborInfo {
	window := l.opts.NeighborWindow
	if d2 := l.store.Delta(d); d2 > window {
		window = d2
	}
	active := l.neighbors.ActiveDevicesAt(l.building.OverlappingAPs(g), tq.Add(-window), tq.Add(window))
	candidates := l.building.CandidateRooms(g)

	var out []refNeighborInfo
	for _, dk := range active {
		if dk == d {
			continue
		}
		region, online := l.deviceRegionAt(dk, tq)
		if !online {
			continue
		}
		if !l.building.OverlappingRegions(g, region) {
			continue
		}
		pa := l.affinity.PairAffinity(d, dk, tq)
		if pa <= l.opts.MinPairAffinity || pa <= 0 {
			continue
		}
		n := l.refPairSupport(dk, g, region, prior, candidates, pa, tq)
		positive := false
		for _, s := range n.support {
			if s > 0 {
				positive = true
				break
			}
		}
		if !positive {
			continue
		}
		out = append(out, n)
	}
	return out
}

func (l *Localizer) refReorder(d event.DeviceID, neighbors []refNeighborInfo, tq time.Time) []refNeighborInfo {
	devs := make([]event.DeviceID, len(neighbors))
	for i, n := range neighbors {
		devs[i] = n.dev
	}
	ordered := l.orderer.OrderNeighbors(d, devs, tq)
	byDev := make(map[event.DeviceID]refNeighborInfo, len(neighbors))
	for _, n := range neighbors {
		byDev[n.dev] = n
	}
	out := make([]refNeighborInfo, 0, len(neighbors))
	for _, dev := range ordered {
		if n, ok := byDev[dev]; ok {
			out = append(out, n)
			delete(byDev, dev)
		}
	}
	for _, n := range neighbors {
		if _, left := byDev[n.dev]; left {
			out = append(out, n)
		}
	}
	return out
}

func (l *Localizer) refPairSupport(dk event.DeviceID, gd, gk space.RegionID, prior map[space.RoomID]float64, candidates []space.RoomID, pairAffinity float64, tq time.Time) refNeighborInfo {
	n := refNeighborInfo{
		dev:          dk,
		region:       gk,
		pairAffinity: pairAffinity,
		support:      make(map[space.RoomID]float64, len(candidates)),
		condI:        make(map[space.RoomID]float64, len(candidates)),
		condK:        make(map[space.RoomID]float64, len(candidates)),
	}
	ris := l.building.IntersectCandidates([]space.RegionID{gd, gk})
	if len(ris) == 0 {
		return n
	}
	condD := ConditionalOverRooms(prior, ris)
	priorK := l.priorFor(dk, gk, tq)
	condK := ConditionalOverRooms(priorK, ris)
	inRis := make(map[space.RoomID]bool, len(ris))
	for _, r := range ris {
		inRis[r] = true
	}
	mass := 0.0
	for _, r := range ris {
		mass += condD[r] * condK[r]
	}
	n.sameRoomProb = pairAffinity * mass
	if n.sameRoomProb > 1 {
		n.sameRoomProb = 1
	}
	for _, r := range candidates {
		if !inRis[r] {
			continue
		}
		n.condI[r] = condD[r]
		n.condK[r] = condK[r]
		n.support[r] = GroupAffinity(pairAffinity, []float64{condD[r], condK[r]})
	}
	return n
}

func refBlendedSupport(n refNeighborInfo, r space.RoomID, prior float64) float64 {
	return n.support[r] + (1-n.sameRoomProb)*prior
}

func (l *Localizer) refLocateIndependent(candidates []space.RoomID, prior map[space.RoomID]float64, neighbors []refNeighborInfo) Result {
	blended := make(map[space.RoomID][]float64, len(candidates))
	posterior := make(map[space.RoomID]float64, len(candidates))
	for _, r := range candidates {
		posterior[r] = prior[r]
	}

	processed := 0
	stopped := false
	for idx, n := range neighbors {
		for _, r := range candidates {
			blended[r] = append(blended[r], refBlendedSupport(n, r, prior[r]))
		}
		processed = idx + 1
		for _, r := range candidates {
			posterior[r] = combinePosterior(prior[r], blended[r])
		}
		if !l.opts.UseStopConditions {
			continue
		}
		if l.refCheckStop(candidates, prior, posterior, blended, neighbors[processed:]) {
			stopped = processed < len(neighbors)
			break
		}
	}
	best := argmaxRoom(posterior, candidates)
	return Result{
		Room:               best,
		Probability:        posterior[best],
		Posterior:          posterior,
		ProcessedNeighbors: processed,
		StoppedEarly:       stopped,
	}
}

func (l *Localizer) refCheckStop(candidates []space.RoomID, prior, posterior map[space.RoomID]float64, blended map[space.RoomID][]float64, unprocessed []refNeighborInfo) bool {
	if len(candidates) < 2 {
		return true
	}
	ra, rb := top2Rooms(posterior, candidates)
	if len(unprocessed) == 0 {
		return posterior[ra] > posterior[rb]
	}
	minA := l.refBoundPosterior(ra, prior, blended, unprocessed, false)
	maxB := l.refBoundPosterior(rb, prior, blended, unprocessed, true)
	expA := posterior[ra]
	expB := posterior[rb]
	return minA > expB || expA > maxB
}

func (l *Localizer) refBoundPosterior(r space.RoomID, prior map[space.RoomID]float64, blended map[space.RoomID][]float64, unprocessed []refNeighborInfo, assumeIn bool) float64 {
	supports := make([]float64, 0, len(blended[r])+len(unprocessed))
	supports = append(supports, blended[r]...)
	for _, n := range unprocessed {
		supports = append(supports, hypoSupport(assumeIn, n.pairAffinity, n.condI[r], prior[r]))
	}
	return combinePosterior(prior[r], supports)
}

func (l *Localizer) refLocateDependent(candidates []space.RoomID, prior map[space.RoomID]float64, neighbors []refNeighborInfo, tq time.Time) Result {
	posterior := make(map[space.RoomID]float64, len(candidates))
	for _, r := range candidates {
		posterior[r] = prior[r]
	}

	processed := 0
	stopped := false
	for idx := range neighbors {
		processed = idx + 1
		active := neighbors[:processed]
		groups := l.refClusterNeighbors(active, tq)
		anyPositive := false
		gas := make([]map[space.RoomID]float64, len(groups))
		zs := make([]float64, len(groups))
		for gi, grp := range groups {
			gas[gi] = make(map[space.RoomID]float64, len(candidates))
			for _, r := range candidates {
				_, ga := refClusterAffinity(grp, r)
				gas[gi][r] = ga
				zs[gi] += ga
				if ga > 0 {
					anyPositive = true
				}
			}
			if zs[gi] > 1 {
				zs[gi] = 1
			}
		}
		for _, r := range candidates {
			blended := make([]float64, len(groups))
			for gi := range groups {
				blended[gi] = gas[gi][r] + (1-zs[gi])*prior[r]
			}
			posterior[r] = combinePosterior(prior[r], blended)
		}
		if l.opts.UseStopConditions && !anyPositive {
			stopped = processed < len(neighbors)
			break
		}
	}
	best := argmaxRoom(posterior, candidates)
	return Result{
		Room:               best,
		Probability:        posterior[best],
		Posterior:          posterior,
		ProcessedNeighbors: processed,
		StoppedEarly:       stopped,
	}
}

// refClusterNeighbors re-clusters the whole active set from scratch with a
// fresh union-find and an affinity lookup per pair — the O(n²)-per-step
// (O(n³) per query) shape the incremental clusterer replaces.
func (l *Localizer) refClusterNeighbors(active []refNeighborInfo, tq time.Time) [][]refNeighborInfo {
	n := len(active)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if l.affinity.PairAffinity(active[i].dev, active[j].dev, tq) > 0 {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	byRoot := make(map[int][]refNeighborInfo)
	var roots []int
	for i, ninfo := range active {
		r := find(i)
		if _, seen := byRoot[r]; !seen {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], ninfo)
	}
	sort.Ints(roots)
	out := make([][]refNeighborInfo, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}

func refClusterAffinity(grp []refNeighborInfo, r space.RoomID) (deviceAff, groupAff float64) {
	if len(grp) == 0 {
		return 0, 0
	}
	minPair := math.Inf(1)
	condProduct := 1.0
	condI := 0.0
	for _, n := range grp {
		if n.pairAffinity < minPair {
			minPair = n.pairAffinity
		}
		ck, ok := n.condK[r]
		if !ok || ck <= 0 {
			return minAff(minPair), 0
		}
		condProduct *= ck
		if ci := n.condI[r]; ci > condI {
			condI = ci
		}
	}
	if condI <= 0 {
		return minAff(minPair), 0
	}
	ga := minPair * condI * condProduct
	if ga > 1 {
		ga = 1
	}
	return minAff(minPair), ga
}

func minAff(v float64) float64 {
	if math.IsInf(v, 1) {
		return 0
	}
	return v
}

// argmaxRoom / top2Rooms are the map-keyed argmax helpers the
// reference posterior combination uses (the optimized kernel works on dense
// indexed slices).
func argmaxRoom(m map[space.RoomID]float64, rooms []space.RoomID) space.RoomID {
	if len(rooms) == 0 {
		return ""
	}
	best := rooms[0]
	for _, r := range rooms[1:] {
		if m[r] > m[best] {
			best = r
		}
	}
	return best
}

func top2Rooms(m map[space.RoomID]float64, rooms []space.RoomID) (space.RoomID, space.RoomID) {
	ra, rb := rooms[0], rooms[0]
	first := true
	for _, r := range rooms {
		if first {
			ra = r
			first = false
			continue
		}
		if m[r] > m[ra] {
			rb = ra
			ra = r
		} else if rb == ra || m[r] > m[rb] {
			rb = r
		}
	}
	if rb == ra && len(rooms) > 1 {
		for _, r := range rooms {
			if r != ra {
				rb = r
				break
			}
		}
	}
	return ra, rb
}
