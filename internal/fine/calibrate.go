package fine

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// LabelStore accumulates crowd-sourced room-level location labels — the
// extension the paper sketches in Section 4.1 (footnote 7): "Extending our
// approach when such data is obtainable, at least [for] some subset of
// devices, through techniques such as crowd-sourcing". Labels sharpen a
// device's room-affinity prior: the metadata-derived distribution is blended
// with the empirical distribution of labeled visits,
//
//	α'(d, r) = λ·empirical(d, r) + (1−λ)·α(d, r),   λ = n/(n+κ)
//
// where n is the number of labels the device has among the candidate rooms
// and κ (Smoothing) controls how many labels are needed before the
// empirical term dominates.
type LabelStore struct {
	mu sync.RWMutex
	// visits[device][room] = number of labeled observations.
	visits map[event.DeviceID]map[space.RoomID]int
	// Smoothing is κ. Non-positive values default to 8.
	Smoothing float64
}

// NewLabelStore creates an empty label store with smoothing κ.
func NewLabelStore(smoothing float64) *LabelStore {
	if smoothing <= 0 {
		smoothing = 8
	}
	return &LabelStore{
		visits:    make(map[event.DeviceID]map[space.RoomID]int),
		Smoothing: smoothing,
	}
}

// Add records one labeled observation: device d was in room r at time t.
// The timestamp is accepted for future time-bucketed extensions; the current
// model aggregates over all times.
func (s *LabelStore) Add(d event.DeviceID, r space.RoomID, t time.Time) error {
	if d == "" {
		return fmt.Errorf("fine: label with empty device")
	}
	if r == "" {
		return fmt.Errorf("fine: label with empty room")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.visits[d]
	if !ok {
		m = make(map[space.RoomID]int)
		s.visits[d] = m
	}
	m[r]++
	return nil
}

// Count returns the number of labels recorded for (d, r).
func (s *LabelStore) Count(d event.DeviceID, r space.RoomID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.visits[d][r]
}

// Devices lists devices with at least one label, sorted.
func (s *LabelStore) Devices() []event.DeviceID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]event.DeviceID, 0, len(s.visits))
	for d := range s.visits {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot returns a deep copy of the label counts, for checkpointing.
func (s *LabelStore) Snapshot() map[event.DeviceID]map[space.RoomID]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[event.DeviceID]map[space.RoomID]int, len(s.visits))
	for d, rooms := range s.visits {
		m := make(map[space.RoomID]int, len(rooms))
		for r, n := range rooms {
			m[r] = n
		}
		out[d] = m
	}
	return out
}

// Restore replaces the label counts with a deep copy of m, for recovery.
// A nil map clears the store.
func (s *LabelStore) Restore(m map[event.DeviceID]map[space.RoomID]int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.visits = make(map[event.DeviceID]map[space.RoomID]int, len(m))
	for d, rooms := range m {
		cp := make(map[space.RoomID]int, len(rooms))
		for r, n := range rooms {
			cp[r] = n
		}
		s.visits[d] = cp
	}
}

// Blend sharpens a metadata-derived room-affinity distribution with the
// device's labels over the candidate rooms. The result remains a
// probability distribution over the candidates. With no labels the prior is
// returned unchanged (the same map, not a copy).
func (s *LabelStore) Blend(d event.DeviceID, prior map[space.RoomID]float64) map[space.RoomID]float64 {
	// The shared lock is held across the whole computation: the inner
	// visits map is mutated by Add under the write lock, so it must not be
	// read after RUnlock.
	s.mu.RLock()
	defer s.mu.RUnlock()
	visits := s.visits[d]
	kappa := s.Smoothing
	if len(visits) == 0 {
		return prior
	}
	n := 0
	for r := range prior {
		n += visits[r]
	}
	if n == 0 {
		return prior
	}
	lambda := float64(n) / (float64(n) + kappa)
	out := make(map[space.RoomID]float64, len(prior))
	for r, p := range prior {
		emp := float64(visits[r]) / float64(n)
		out[r] = lambda*emp + (1-lambda)*p
	}
	return out
}

// BlendDense is the allocation-free form of Blend used by the query kernel:
// vals is the device's metadata prior over rooms (parallel slices) and is
// sharpened in place. Values are identical to Blend's.
func (s *LabelStore) BlendDense(d event.DeviceID, rooms []space.RoomID, vals []float64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	visits := s.visits[d]
	if len(visits) == 0 {
		return
	}
	n := 0
	for _, r := range rooms {
		n += visits[r]
	}
	if n == 0 {
		return
	}
	lambda := float64(n) / (float64(n) + s.Smoothing)
	for i, r := range rooms {
		emp := float64(visits[r]) / float64(n)
		vals[i] = lambda*emp + (1-lambda)*vals[i]
	}
}

// SetLabelStore attaches a crowd-sourced label store to the localizer; nil
// detaches. Attached labels sharpen every subsequent query's prior. Call it
// during setup, before queries are served concurrently: the pointer itself
// is not synchronized (the LabelStore is, so adding labels while queries
// run is fine).
func (l *Localizer) SetLabelStore(s *LabelStore) { l.labels = s }

// priorFor computes the (possibly time-dependent, possibly label-sharpened)
// room-affinity prior for a device in a region at a query time.
func (l *Localizer) priorFor(d event.DeviceID, g space.RegionID, tq time.Time) map[space.RoomID]float64 {
	prior := RoomAffinitiesAt(l.building, l.opts.Weights, d, g, tq)
	if l.labels != nil {
		prior = l.labels.Blend(d, prior)
	}
	return prior
}
