package fine

import (
	"fmt"
	"math"
	"time"

	"locater/internal/event"
	"locater/internal/space"
	"locater/internal/store"
)

// Variant selects the fine-localization posterior model.
type Variant int

const (
	// Independent is I-FINE: neighbors influence the posterior
	// independently (Eq. 3) and the min/max/expected bounds of
	// Theorems 1–3 drive the loose stop conditions.
	Independent Variant = iota
	// Dependent is D-FINE: neighbors are grouped into affinity clusters
	// that influence the posterior jointly (Eq. 6).
	Dependent
)

// String names the variant like the paper ("I-FINE"/"D-FINE").
func (v Variant) String() string {
	switch v {
	case Independent:
		return "I-FINE"
	case Dependent:
		return "D-FINE"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Options configures the fine localizer.
type Options struct {
	// Weights are the room-affinity weights; DefaultWeights when zero.
	Weights Weights
	// Variant selects I-FINE or D-FINE.
	Variant Variant
	// UseStopConditions enables the loose early-termination conditions
	// (Section 4.2). Disabling processes every neighbor (Fig. 11 ablation).
	UseStopConditions bool
	// HistoryWindow bounds the history used for device affinities.
	// Default 8 weeks.
	HistoryWindow time.Duration
	// MaxNeighbors caps the neighbor set size (0 = unlimited).
	MaxNeighbors int
	// NeighborWindow is how far around t_q to look for neighbor-device
	// events. Devices in gaps have no event within ±δ of t_q, so this must
	// exceed the typical validity interval; default 1 hour.
	NeighborWindow time.Duration
	// MinPairAffinity filters out neighbors whose device affinity with the
	// queried device falls below it. Default 0 (keep all positive).
	MinPairAffinity float64
}

func (o Options) withDefaults() Options {
	if (o.Weights == Weights{}) {
		o.Weights = DefaultWeights()
	}
	if o.HistoryWindow <= 0 {
		o.HistoryWindow = 8 * 7 * 24 * time.Hour
	}
	if o.NeighborWindow <= 0 {
		o.NeighborWindow = time.Hour
	}
	return o
}

// NeighborOrderer optionally reorders the neighbor set before Algorithm 2
// processes it. The caching engine's global affinity graph implements this
// to process high-affinity devices first (paper Section 5). The neighbors
// slice is query-scoped scratch: implementations must not retain it past the
// call (returning a fresh slice, as the affinity graph does, is fine).
type NeighborOrderer interface {
	OrderNeighbors(d event.DeviceID, neighbors []event.DeviceID, tq time.Time) []event.DeviceID
}

// NeighborSource discovers candidate neighbor devices for Algorithm 2: the
// devices with at least one event in [start, end] at one of the given APs
// (nil aps = any AP). store.Store implements it — backed by its temporal
// occupancy index — and is the default; tests may stub it.
type NeighborSource interface {
	ActiveDevicesAt(aps []space.APID, start, end time.Time) []event.DeviceID
}

// Localizer answers room-level queries.
//
// The query kernel is built for allocation discipline: all per-query state
// lives in a pooled scratch (dense room-indexed slices, a float arena for
// per-neighbor support vectors), pairwise affinities against the queried
// device are computed in one batched history sweep instead of per-pair
// copies, I-FINE posteriors are maintained by running log-odds accumulators,
// and D-FINE keeps one union-find across iterations with every
// intra-neighbor affinity computed exactly once. Posteriors are equivalent
// to the pre-optimization kernel preserved in reference.go (bitwise for
// I-FINE; within cluster-summation reordering, ≪1e-12, for D-FINE).
type Localizer struct {
	opts     Options
	building *space.Building
	store    *store.Store
	affinity PairAffinityProvider
	// batch is affinity's batched entry point, when it implements one
	// (resolved once at construction; nil otherwise).
	batch   BatchPairAffinityProvider
	orderer NeighborOrderer

	// neighbors discovers candidate neighbor devices; defaults to the store
	// (whose occupancy index answers region-scoped lookups in time
	// proportional to the devices actually active in the window).
	neighbors NeighborSource

	// coarseRegion resolves a neighbor device's region at tq; injected by
	// the system so fine can reason about devices in gaps too. May be nil:
	// then only devices inside a validity interval count as online.
	coarseRegion func(d event.DeviceID, tq time.Time) (space.RegionID, bool)

	// labels optionally sharpens priors with crowd-sourced room labels.
	labels *LabelStore
}

// Result is the fine-level answer.
type Result struct {
	Room space.RoomID
	// Probability is the posterior of the winning room.
	Probability float64
	// Posterior maps every candidate room to its posterior (diagnostics).
	Posterior map[space.RoomID]float64
	// ProcessedNeighbors counts how many neighbor devices Algorithm 2
	// consumed before stopping.
	ProcessedNeighbors int
	// TotalNeighbors is the size of the neighbor set D_n.
	TotalNeighbors int
	// StoppedEarly is true when a loose stop condition fired before all
	// neighbors were processed.
	StoppedEarly bool
	// LocalGraph carries the pairwise edges computed during this query for
	// the caching engine (device, weight) — see Section 5.
	LocalGraph []LocalEdge
}

// LocalEdge is one edge of the local affinity graph built while answering a
// query: the average group affinity between the queried device and the
// neighbor across candidate rooms.
type LocalEdge struct {
	From, To event.DeviceID
	Weight   float64
}

// New creates a fine localizer. affinity may be nil (a store-backed provider
// over opts.HistoryWindow is used); orderer may be nil (store order).
func New(b *space.Building, st *store.Store, affinity PairAffinityProvider, orderer NeighborOrderer, opts Options) *Localizer {
	opts = opts.withDefaults()
	if affinity == nil {
		affinity = NewStoreAffinity(st, opts.HistoryWindow)
	}
	l := &Localizer{
		opts:      opts,
		building:  b,
		store:     st,
		affinity:  affinity,
		orderer:   orderer,
		neighbors: st,
	}
	l.batch, _ = affinity.(BatchPairAffinityProvider)
	return l
}

// SetNeighborSource replaces the candidate-neighbor discovery backend (the
// store by default). Call during setup, before queries are served.
func (l *Localizer) SetNeighborSource(src NeighborSource) {
	if src != nil {
		l.neighbors = src
	}
}

// SetCoarseResolver injects a resolver that returns a neighbor's region at
// t_q when the neighbor is in a gap (LOCATER wires the coarse localizer in).
func (l *Localizer) SetCoarseResolver(f func(d event.DeviceID, tq time.Time) (space.RegionID, bool)) {
	l.coarseRegion = f
}

// neighborInfo captures everything Algorithm 2 needs about one neighbor.
// The room distributions are dense slices indexed by the room's position in
// the query's sorted candidate set, backed by the query scratch arena — they
// are valid only for the query's lifetime.
type neighborInfo struct {
	dev event.DeviceID
	// region the neighbor is located in at tq.
	region space.RegionID
	// pairAffinity = α({d_i, d_k}): the device affinity of the pair.
	pairAffinity float64
	// support[ri] = α({d_i, d_k}, r, t_q): the pairwise group affinity
	// (Eq. 1) for candidate room index ri; zero outside the pair's
	// intersecting rooms R_is.
	support []float64
	// condI[ri] = P(@(d_i, r) | @(d_i, R_is)): the queried device's
	// conditional room probability within the pair's intersecting rooms
	// (zero outside R_is). Used by the Theorem 1/2 bounds.
	condI []float64
	// condK[ri] is the analogous conditional for the neighbor device.
	condK []float64
	// sameRoomProb = α_pair · Σ_{r ∈ R_is} cond_i(r)·cond_k(r): the
	// probability that the pair is co-located in the same room — the total
	// group-affinity mass. It weights how much this neighbor's evidence
	// can displace the prior.
	sameRoomProb float64
}

// Locate disambiguates the room for device d known to be in region g at
// time tq (the coarse stage's output).
func (l *Localizer) Locate(d event.DeviceID, g space.RegionID, tq time.Time) (Result, error) {
	// The candidate set and the queried device's prior are computed exactly
	// once here and threaded through the whole query via the scratch (the
	// pre-fix kernel re-derived the candidates in neighborSet and the prior
	// conditional in every pairSupport call).
	candidates := l.building.CandidateRooms(g)
	if len(candidates) == 0 {
		return Result{}, fmt.Errorf("fine: region %s has no candidate rooms", g)
	}
	qc := acquireQueryCtx(candidates)
	defer qc.release()
	priorMap := l.priorFor(d, g, tq)
	for i, r := range candidates {
		p := priorMap[r]
		qc.prior[i] = p
		qc.lp[i] = logit(p)
	}

	neighbors := l.neighborSet(qc, d, g, tq)
	total := len(neighbors)
	if l.orderer != nil {
		neighbors = l.reorder(qc, d, neighbors, tq)
	}
	// MaxNeighbors truncates only after the affinity reorder, so the cap
	// keeps the highest-affinity candidates. (The pre-fix code broke out of
	// the discovery loop in sorted-ID order, handing the orderer an
	// arbitrary ID-prefix in which the top-affinity neighbors might not
	// even appear.)
	if max := l.opts.MaxNeighbors; max > 0 && len(neighbors) > max {
		neighbors = neighbors[:max]
	}

	var res Result
	switch l.opts.Variant {
	case Dependent:
		res = l.locateDependent(qc, neighbors, tq)
	default:
		res = l.locateIndependent(qc, neighbors)
	}
	// TotalNeighbors reports the full neighbor set D_n found, before any
	// MaxNeighbors truncation.
	res.TotalNeighbors = total

	// Local affinity graph edges: w = Σ_r α({d_a, d_b}, r, t_q) / |R(g_x)|.
	for i := 0; i < res.ProcessedNeighbors && i < len(neighbors); i++ {
		n := &neighbors[i]
		sum := 0.0
		for _, s := range n.support {
			sum += s
		}
		res.LocalGraph = append(res.LocalGraph, LocalEdge{
			From:   d,
			To:     n.dev,
			Weight: sum / float64(len(candidates)),
		})
	}
	return res, nil
}

// reorder applies the NeighborOrderer (global affinity graph) to the
// neighbor set, preserving entries the orderer does not know about.
func (l *Localizer) reorder(qc *queryCtx, d event.DeviceID, neighbors []neighborInfo, tq time.Time) []neighborInfo {
	qc.devs = qc.devs[:0]
	for i := range neighbors {
		qc.devs = append(qc.devs, neighbors[i].dev)
	}
	ordered := l.orderer.OrderNeighbors(d, qc.devs, tq)
	if qc.byDev == nil {
		qc.byDev = make(map[event.DeviceID]int, len(neighbors))
	}
	for i := range neighbors {
		qc.byDev[neighbors[i].dev] = i
	}
	out := qc.ordered[:0]
	for _, dev := range ordered {
		if i, ok := qc.byDev[dev]; ok {
			out = append(out, neighbors[i])
			delete(qc.byDev, dev)
		}
	}
	for i := range neighbors {
		if _, left := qc.byDev[neighbors[i].dev]; left {
			out = append(out, neighbors[i])
			delete(qc.byDev, neighbors[i].dev)
		}
	}
	qc.ordered = out
	return out
}

// neighborSet finds D_n(d): devices online at tq whose region's candidate
// rooms overlap the queried device's candidates and whose pairwise group
// affinity is positive for some room (paper Section 4.2).
//
// Discovery is region-scoped: only devices with an event at an AP whose
// region overlaps g (Building.OverlappingAPs) are considered, so the
// candidate scan is proportional to the query region's neighborhood, not
// the whole campus. The pairwise device affinities of every candidate that
// passes the region/online filters are then computed in ONE batched history
// sweep — the queried device's log is fetched once per query, not twice per
// pair (see BatchDeviceAffinity).
func (l *Localizer) neighborSet(qc *queryCtx, d event.DeviceID, g space.RegionID, tq time.Time) []neighborInfo {
	window := l.opts.NeighborWindow
	if d2 := l.store.Delta(d); d2 > window {
		window = d2
	}
	active := l.neighbors.ActiveDevicesAt(l.building.OverlappingAPs(g), tq.Add(-window), tq.Add(window))

	// Pass 1: the cheap structural filters — online, overlapping region.
	qc.cands = qc.cands[:0]
	for _, dk := range active {
		if dk == d {
			continue
		}
		region, online := l.deviceRegionAt(dk, tq)
		if !online {
			continue
		}
		// (iii) overlapping regions.
		if !l.building.OverlappingRegions(g, region) {
			continue
		}
		qc.cands = append(qc.cands, pendingNeighbor{dev: dk, region: region})
	}

	// Pass 2: one batched affinity sweep over every surviving candidate.
	qc.devs = qc.devs[:0]
	for i := range qc.cands {
		qc.devs = append(qc.devs, qc.cands[i].dev)
	}
	qc.affs = l.batchAffinity(d, qc.devs, tq, qc.affs)

	// Pass 3: (ii) positive group affinity for some candidate room.
	out := qc.neighbors[:0]
	for i := range qc.cands {
		pa := qc.affs[i]
		if pa <= l.opts.MinPairAffinity || pa <= 0 {
			continue
		}
		n, positive := l.pairSupport(qc, qc.cands[i].dev, qc.cands[i].region, pa, tq)
		if !positive {
			continue
		}
		// No MaxNeighbors break here: the full filtered set is returned so
		// the cap can be applied after the affinity reorder in Locate.
		out = append(out, n)
	}
	qc.neighbors = out
	return out
}

// batchAffinity computes α({d, c}) for every candidate in one call through
// the provider's batched entry point, falling back to a per-pair loop for
// providers (like scripted test doubles) that only implement PairAffinity.
func (l *Localizer) batchAffinity(d event.DeviceID, devs []event.DeviceID, tq time.Time, out []float64) []float64 {
	if l.batch != nil {
		return l.batch.BatchPairAffinity(d, devs, tq, out)
	}
	out = growFloats(out, len(devs))
	for i, dk := range devs {
		out[i] = l.affinity.PairAffinity(d, dk, tq)
	}
	return out
}

// deviceRegionAt resolves which region a device is in at tq: from a validity
// interval when connected, else via the injected coarse resolver.
func (l *Localizer) deviceRegionAt(d event.DeviceID, tq time.Time) (space.RegionID, bool) {
	if ap, ok := l.store.CurrentAP(d, tq); ok {
		if g, ok2 := l.building.RegionOf(ap); ok2 {
			return g, true
		}
		return "", false
	}
	if l.coarseRegion != nil {
		return l.coarseRegion(d, tq)
	}
	return "", false
}

// pairSupport computes, for every candidate room r of the queried device,
// the pairwise group affinity s_k(r) = α({d_i, d_k}, r, t_q) (Eq. 1) along
// with both devices' conditionals over the pair's intersecting rooms R_is,
// into arena-backed dense slices. The (R_is, queried-device conditional)
// part depends only on the neighbor's region and is computed once per region
// per query (regionCtxFor). Reports whether any room's support is positive.
func (l *Localizer) pairSupport(qc *queryCtx, dk event.DeviceID, gk space.RegionID, pairAffinity float64, tq time.Time) (neighborInfo, bool) {
	n := neighborInfo{dev: dk, region: gk, pairAffinity: pairAffinity}
	rc := qc.regionCtxFor(l, gk)
	if len(rc.risIdx) == 0 {
		return n, false
	}
	nc := len(qc.candidates)
	buf := qc.arena.alloc(3 * nc)
	n.support = buf[:nc:nc]
	n.condI = buf[nc : 2*nc : 2*nc]
	n.condK = buf[2*nc : 3*nc : 3*nc]

	l.neighborCondInto(qc, rc, dk, gk, tq, n.condK)
	mass := 0.0
	for _, ri := range rc.risIdx {
		mass += rc.condD[ri] * n.condK[ri]
	}
	n.sameRoomProb = pairAffinity * mass
	if n.sameRoomProb > 1 {
		n.sameRoomProb = 1
	}
	positive := false
	for _, ri := range rc.risIdx {
		cd := rc.condD[ri]
		n.condI[ri] = cd
		s := groupAffinity2(pairAffinity, cd, n.condK[ri])
		n.support[ri] = s
		if s > 0 {
			positive = true
		}
	}
	return n, positive
}

// groupAffinity2 is GroupAffinity specialized to a pair (the only group size
// Eq. 1 is evaluated for on the per-neighbor path), with the same
// multiplication order so results are bitwise identical.
func groupAffinity2(deviceAffinity, c1, c2 float64) float64 {
	if deviceAffinity <= 0 || c1 <= 0 || c2 <= 0 {
		return 0
	}
	return deviceAffinity * c1 * c2
}

// neighborCondInto computes the neighbor's conditional room distribution
// P(@(d_k, r) | @(d_k, R_is)) into ck (dense over the query's candidates, at
// the R_is positions), without materializing the neighbor's prior as a map:
// the metadata prior over R(g_k) is classified in place (roomPriorInto),
// label-sharpened densely, and normalized over R_is.
func (l *Localizer) neighborCondInto(qc *queryCtx, rc *regionCtx, dk event.DeviceID, gk space.RegionID, tq time.Time, ck []float64) {
	gkRooms := l.building.CandidateRooms(gk)
	qc.gkVals = growFloats(qc.gkVals, len(gkRooms))
	vals := qc.gkVals
	l.roomPriorInto(dk, gkRooms, tq, vals)
	if l.labels != nil {
		l.labels.BlendDense(dk, gkRooms, vals)
	}
	total := 0.0
	for _, gj := range rc.risGkIdx {
		total += vals[gj]
	}
	if total <= 0 {
		u := 1.0 / float64(len(rc.risIdx))
		for _, ri := range rc.risIdx {
			ck[ri] = u
		}
		return
	}
	for k, ri := range rc.risIdx {
		ck[ri] = vals[rc.risGkIdx[k]] / total
	}
}

// roomPriorInto is the dense, allocation-free form of RoomAffinitiesAt: it
// writes the metadata room-affinity distribution for dev over rooms into
// vals (parallel to rooms). Values are identical to the map form — the same
// class weights, the same renormalization expression.
func (l *Localizer) roomPriorInto(dev event.DeviceID, rooms []space.RoomID, tq time.Time, vals []float64) {
	w := l.opts.Weights
	b := l.building
	prefs := b.PreferredRoomsAt(string(dev), tq)
	nPref, nPub, nPriv := 0, 0, 0
	for _, r := range rooms {
		switch {
		case roomInSorted(prefs, r):
			nPref++
		case b.IsPublic(r):
			nPub++
		default:
			nPriv++
		}
	}
	mass := 0.0
	if nPref > 0 {
		mass += w.Preferred
	}
	if nPub > 0 {
		mass += w.Public
	}
	if nPriv > 0 {
		mass += w.Private
	}
	if mass == 0 {
		// Unreachable with valid weights, but keep a uniform fallback.
		u := 1.0 / float64(len(rooms))
		for i := range vals {
			vals[i] = u
		}
		return
	}
	for i, r := range rooms {
		switch {
		case roomInSorted(prefs, r):
			vals[i] = w.Preferred / mass / float64(nPref)
		case b.IsPublic(r):
			vals[i] = w.Public / mass / float64(nPub)
		default:
			vals[i] = w.Private / mass / float64(nPriv)
		}
	}
}

// --- posterior combination ------------------------------------------------
//
// The paper's Eq. 3 combines pairwise group affinities into
// P(r | D̄_n) = 1/(1 + Π(1−s_k)/Π s_k). Applied verbatim, a single neighbor
// whose intersecting-room set excludes r forces P(r) = 0 even when the prior
// strongly favors r, which destroys precision for isolated devices. We keep
// the same product-of-odds structure but combine the per-neighbor evidence
// in log-odds space anchored at the prior — the standard naive-Bayes
// identity logit P(r|e_1..e_n) = logit P(r) + Σ (logit P(r|e_k) − logit P(r))
// — with per-neighbor posteriors given by the co-location mixture
//
//	P(r | obs_k) = s_k(r) + (1 − z_k)·prior(r)
//	s_k(r) = α_pair·cond_i(r)·cond_k(r)·1[r ∈ R_is]   (Eq. 1)
//	z_k    = Σ_{r ∈ R_is} s_k(r)                      (same-room probability)
//
// — with probability z_k the pair is co-located in one room (distributed by
// the group affinities), otherwise the neighbor is uninformative and the
// prior stands. Eq. 3's group-affinity supports appear unchanged; the prior
// term only prevents the hard-zero collapse. Recorded in DESIGN.md.
//
// The additive structure is what makes the optimized kernel incremental:
// the per-room accumulator acc[ri] holds logit(prior) + Σ_k evidence terms,
// each neighbor adds its term once, and the posterior is sigmoid(acc[ri]).
// Because the reference recomputes exactly the same left-to-right sum every
// iteration, the running accumulator is bitwise identical to it.

const probEps = 1e-9

func logit(p float64) float64 {
	if p < probEps {
		p = probEps
	}
	if p > 1-probEps {
		p = 1 - probEps
	}
	return math.Log(p / (1 - p))
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		e := math.Exp(-x)
		return 1 / (1 + e)
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// combinePosterior folds blended per-neighbor posteriors into the prior.
func combinePosterior(prior float64, blended []float64) float64 {
	if len(blended) == 0 {
		return prior
	}
	lp := logit(prior)
	acc := lp
	for _, b := range blended {
		acc += logit(b) - lp
	}
	return sigmoid(acc)
}

// hypoSupport is P(r | neighbor known to be in room w) for the
// possible-world bounds: if the neighbor is hypothesized in room r
// (inRoom), its own conditional becomes 1 so the co-location term is
// α_pair·cond_i(r); hypothesized elsewhere, only the uninformative prior
// term remains. This is monotone in the hypothesis, so Theorem 1's world
// (all unprocessed in r_j) maximizes the posterior and Theorem 2's world
// (all in r_max ≠ r_j) minimizes it.
func hypoSupport(inRoom bool, pairAffinity, condI, prior float64) float64 {
	co := pairAffinity * condI
	if co > 1 {
		co = 1
	}
	s := (1 - co) * prior
	if inRoom {
		s += co
	}
	return s
}

// --- Independent variant (I-FINE) --------------------------------------

// locateIndependent runs Algorithm 2's independent combination with running
// per-room log-odds accumulators: each neighbor contributes its evidence
// term once (O(|rooms|) per neighbor, O(n·|rooms|) per query) instead of the
// reference's full re-summation at every step (O(n²·|rooms|) logit
// evaluations). The accumulator holds exactly the left-to-right partial sums
// the reference recomputes, so posteriors are bitwise identical.
func (l *Localizer) locateIndependent(qc *queryCtx, neighbors []neighborInfo) Result {
	nc := len(qc.candidates)
	for i := 0; i < nc; i++ {
		qc.post[i] = qc.prior[i]
		qc.acc[i] = qc.lp[i]
	}

	processed := 0
	stopped := false
	for idx := range neighbors {
		n := &neighbors[idx]
		oneMinus := 1 - n.sameRoomProb
		for ri := 0; ri < nc; ri++ {
			b := n.support[ri] + oneMinus*qc.prior[ri]
			qc.acc[ri] += logit(b) - qc.lp[ri]
		}
		processed = idx + 1
		if !l.opts.UseStopConditions {
			// Nothing reads the posterior mid-loop without stop checks;
			// it is materialized from the accumulator once, after the loop.
			continue
		}
		for ri := 0; ri < nc; ri++ {
			qc.post[ri] = sigmoid(qc.acc[ri])
		}
		if l.checkStop(qc, neighbors[processed:]) {
			stopped = processed < len(neighbors)
			break
		}
	}
	if processed > 0 && !l.opts.UseStopConditions {
		for ri := 0; ri < nc; ri++ {
			qc.post[ri] = sigmoid(qc.acc[ri])
		}
	}
	return qc.result(processed, stopped)
}

// checkStop evaluates the loose stop conditions on the top-2 rooms:
//
//  1. minP(r_a | D̄_n) > expP(r_b | D̄_n), or
//  2. expP(r_a | D̄_n) > maxP(r_b | D̄_n),
//
// where expP = P (Theorem 3), maxP assumes every unprocessed neighbor is in
// the room (Theorem 1), and minP assumes they are all in the best other room
// (Theorem 2).
func (l *Localizer) checkStop(qc *queryCtx, unprocessed []neighborInfo) bool {
	if len(qc.candidates) < 2 {
		return true
	}
	ra, rb := top2Dense(qc.post)
	if len(unprocessed) == 0 {
		return qc.post[ra] > qc.post[rb]
	}
	minA := qc.boundPosterior(ra, unprocessed, false)
	maxB := qc.boundPosterior(rb, unprocessed, true)
	// expA/expB are the current posteriors (Theorem 3).
	return minA > qc.post[rb] || qc.post[ra] > maxB
}

// boundPosterior computes maxP (assumeIn=true: every unprocessed neighbor
// hypothesized in the room, Theorem 1) or minP (assumeIn=false: every
// unprocessed neighbor hypothesized in the rival room, Theorem 2), starting
// from the processed-evidence accumulator instead of rebuilding the support
// slice the reference re-materializes on every check.
func (qc *queryCtx) boundPosterior(ri int, unprocessed []neighborInfo, assumeIn bool) float64 {
	acc := qc.acc[ri]
	lp := qc.lp[ri]
	prior := qc.prior[ri]
	for i := range unprocessed {
		n := &unprocessed[i]
		h := hypoSupport(assumeIn, n.pairAffinity, n.condI[ri], prior)
		acc += logit(h) - lp
	}
	return sigmoid(acc)
}

// --- Dependent variant (D-FINE) -----------------------------------------

// locateDependent clusters the processed neighbors by nonzero pairwise
// device affinity and lets each cluster influence the posterior jointly,
// following Eq. 6's structure: the cluster-wide group affinity
//
//	α({D̄_nl, d_i}, r, t_q) = A_l · cond_i(r) · Π_{d_k ∈ D̄_nl} cond_k(r)
//
// (A_l = the cluster's device affinity, approximated by the minimum pairwise
// affinity with the queried device) replaces the per-neighbor group affinity
// in the evidence combination. Processing stops early when every cluster's
// affinity is zero for all rooms (the paper's D-FINE termination).
//
// Clustering is incremental: one union-find persists across iterations, the
// new neighbor's intra-set affinities are computed in a single batched sweep
// (each pair exactly once per query — O(n²) affinity lookups total, versus
// the reference's from-scratch O(n²)-per-step re-clustering, O(n³) lookups),
// and only the cluster the new neighbor joins or merges is re-scored.
func (l *Localizer) locateDependent(qc *queryCtx, neighbors []neighborInfo, tq time.Time) Result {
	nc := len(qc.candidates)
	for i := 0; i < nc; i++ {
		qc.post[i] = qc.prior[i]
	}
	df := &qc.dfine
	df.reset(len(neighbors))

	processed := 0
	stopped := false
	for idx := range neighbors {
		processed = idx + 1
		l.dfineAddNeighbor(qc, neighbors, idx, tq)

		if !l.opts.UseStopConditions {
			continue
		}
		anyPositive := false
		for _, cl := range df.clusters {
			if cl != nil && cl.positive {
				anyPositive = true
				break
			}
		}
		if !anyPositive {
			stopped = processed < len(neighbors)
			break
		}
	}
	// The posterior is a pure function of the final cluster state — nothing
	// reads it mid-loop — so the cluster fold runs once, after the loop,
	// instead of per iteration (the reference's per-step re-fold is where
	// its O(n·clusters·rooms) posterior cost came from).
	if processed > 0 {
		order := df.clusterOrder()
		for ri := 0; ri < nc; ri++ {
			blended := qc.blended[:0]
			prior := qc.prior[ri]
			for _, root := range order {
				cl := df.clusters[root]
				blended = append(blended, cl.ga[ri]+(1-cl.z)*prior)
			}
			qc.blended = blended
			qc.post[ri] = combinePosterior(prior, blended)
		}
	}
	return qc.result(processed, stopped)
}

// dfineAddNeighbor folds neighbor idx into the incremental cluster state:
// one batched affinity sweep against the already-processed neighbors (the
// query-lifetime memo — each intra-neighbor pair is computed exactly once),
// union-find edge insertion, and a re-score of the single affected cluster.
func (l *Localizer) dfineAddNeighbor(qc *queryCtx, neighbors []neighborInfo, idx int, tq time.Time) {
	df := &qc.dfine
	qc.devs = qc.devs[:0]
	for i := 0; i < idx; i++ {
		qc.devs = append(qc.devs, neighbors[i].dev)
	}
	qc.affs = l.batchAffinity(neighbors[idx].dev, qc.devs, tq, qc.affs)
	for i := 0; i < idx; i++ {
		if qc.affs[i] > 0 {
			df.union(i, idx)
		}
	}

	// Rebuild the (possibly merged) cluster containing idx: members in
	// ascending processing order, matching the reference's member order so
	// the cluster-wide conditional product multiplies in the same sequence.
	root := df.find(idx)
	cl := df.newCluster()
	for i := 0; i <= idx; i++ {
		if df.find(i) == root {
			cl.members = append(cl.members, i)
		}
	}
	nc := len(qc.candidates)
	cl.ga = qc.arena.alloc(nc)
	cl.z = 0
	cl.positive = false
	for ri := 0; ri < nc; ri++ {
		ga := clusterGroupAffinity(neighbors, cl.members, ri)
		cl.ga[ri] = ga
		cl.z += ga
		if ga > 0 {
			cl.positive = true
		}
	}
	if cl.z > 1 {
		cl.z = 1
	}
	df.clusters[root] = cl
}

// clusterGroupAffinity returns α({D̄_nl, d_i}, r): the cluster-wide group
// affinity for candidate room index ri (the dense form of the reference's
// clusterAffinity, same accumulation order).
func clusterGroupAffinity(neighbors []neighborInfo, members []int, ri int) float64 {
	minPair := math.Inf(1)
	condProduct := 1.0
	condI := 0.0
	for _, mi := range members {
		n := &neighbors[mi]
		if n.pairAffinity < minPair {
			minPair = n.pairAffinity
		}
		ck := n.condK[ri]
		if ck <= 0 {
			return 0
		}
		condProduct *= ck
		// cond_i over the pair's R_is: use the largest available — the
		// queried device's conditional should reflect the tightest
		// intersecting set in the cluster.
		if ci := n.condI[ri]; ci > condI {
			condI = ci
		}
	}
	if condI <= 0 {
		return 0
	}
	ga := minPair * condI * condProduct
	if ga > 1 {
		ga = 1
	}
	return ga
}
