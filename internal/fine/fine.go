package fine

import (
	"fmt"
	"math"
	"sort"
	"time"

	"locater/internal/event"
	"locater/internal/space"
	"locater/internal/store"
)

// Variant selects the fine-localization posterior model.
type Variant int

const (
	// Independent is I-FINE: neighbors influence the posterior
	// independently (Eq. 3) and the min/max/expected bounds of
	// Theorems 1–3 drive the loose stop conditions.
	Independent Variant = iota
	// Dependent is D-FINE: neighbors are grouped into affinity clusters
	// that influence the posterior jointly (Eq. 6).
	Dependent
)

// String names the variant like the paper ("I-FINE"/"D-FINE").
func (v Variant) String() string {
	switch v {
	case Independent:
		return "I-FINE"
	case Dependent:
		return "D-FINE"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Options configures the fine localizer.
type Options struct {
	// Weights are the room-affinity weights; DefaultWeights when zero.
	Weights Weights
	// Variant selects I-FINE or D-FINE.
	Variant Variant
	// UseStopConditions enables the loose early-termination conditions
	// (Section 4.2). Disabling processes every neighbor (Fig. 11 ablation).
	UseStopConditions bool
	// HistoryWindow bounds the history used for device affinities.
	// Default 8 weeks.
	HistoryWindow time.Duration
	// MaxNeighbors caps the neighbor set size (0 = unlimited).
	MaxNeighbors int
	// NeighborWindow is how far around t_q to look for neighbor-device
	// events. Devices in gaps have no event within ±δ of t_q, so this must
	// exceed the typical validity interval; default 1 hour.
	NeighborWindow time.Duration
	// MinPairAffinity filters out neighbors whose device affinity with the
	// queried device falls below it. Default 0 (keep all positive).
	MinPairAffinity float64
}

func (o Options) withDefaults() Options {
	if (o.Weights == Weights{}) {
		o.Weights = DefaultWeights()
	}
	if o.HistoryWindow <= 0 {
		o.HistoryWindow = 8 * 7 * 24 * time.Hour
	}
	if o.NeighborWindow <= 0 {
		o.NeighborWindow = time.Hour
	}
	return o
}

// NeighborOrderer optionally reorders the neighbor set before Algorithm 2
// processes it. The caching engine's global affinity graph implements this
// to process high-affinity devices first (paper Section 5).
type NeighborOrderer interface {
	OrderNeighbors(d event.DeviceID, neighbors []event.DeviceID, tq time.Time) []event.DeviceID
}

// NeighborSource discovers candidate neighbor devices for Algorithm 2: the
// devices with at least one event in [start, end] at one of the given APs
// (nil aps = any AP). store.Store implements it — backed by its temporal
// occupancy index — and is the default; tests may stub it.
type NeighborSource interface {
	ActiveDevicesAt(aps []space.APID, start, end time.Time) []event.DeviceID
}

// Localizer answers room-level queries.
type Localizer struct {
	opts     Options
	building *space.Building
	store    *store.Store
	affinity PairAffinityProvider
	orderer  NeighborOrderer

	// neighbors discovers candidate neighbor devices; defaults to the store
	// (whose occupancy index answers region-scoped lookups in time
	// proportional to the devices actually active in the window).
	neighbors NeighborSource

	// coarseRegion resolves a neighbor device's region at tq; injected by
	// the system so fine can reason about devices in gaps too. May be nil:
	// then only devices inside a validity interval count as online.
	coarseRegion func(d event.DeviceID, tq time.Time) (space.RegionID, bool)

	// labels optionally sharpens priors with crowd-sourced room labels.
	labels *LabelStore
}

// Result is the fine-level answer.
type Result struct {
	Room space.RoomID
	// Probability is the posterior of the winning room.
	Probability float64
	// Posterior maps every candidate room to its posterior (diagnostics).
	Posterior map[space.RoomID]float64
	// ProcessedNeighbors counts how many neighbor devices Algorithm 2
	// consumed before stopping.
	ProcessedNeighbors int
	// TotalNeighbors is the size of the neighbor set D_n.
	TotalNeighbors int
	// StoppedEarly is true when a loose stop condition fired before all
	// neighbors were processed.
	StoppedEarly bool
	// LocalGraph carries the pairwise edges computed during this query for
	// the caching engine (device, weight) — see Section 5.
	LocalGraph []LocalEdge
}

// LocalEdge is one edge of the local affinity graph built while answering a
// query: the average group affinity between the queried device and the
// neighbor across candidate rooms.
type LocalEdge struct {
	From, To event.DeviceID
	Weight   float64
}

// New creates a fine localizer. affinity may be nil (a store-backed provider
// over opts.HistoryWindow is used); orderer may be nil (store order).
func New(b *space.Building, st *store.Store, affinity PairAffinityProvider, orderer NeighborOrderer, opts Options) *Localizer {
	opts = opts.withDefaults()
	if affinity == nil {
		affinity = NewStoreAffinity(st, opts.HistoryWindow)
	}
	return &Localizer{
		opts:      opts,
		building:  b,
		store:     st,
		affinity:  affinity,
		orderer:   orderer,
		neighbors: st,
	}
}

// SetNeighborSource replaces the candidate-neighbor discovery backend (the
// store by default). Call during setup, before queries are served.
func (l *Localizer) SetNeighborSource(src NeighborSource) {
	if src != nil {
		l.neighbors = src
	}
}

// SetCoarseResolver injects a resolver that returns a neighbor's region at
// t_q when the neighbor is in a gap (LOCATER wires the coarse localizer in).
func (l *Localizer) SetCoarseResolver(f func(d event.DeviceID, tq time.Time) (space.RegionID, bool)) {
	l.coarseRegion = f
}

// neighborInfo captures everything Algorithm 2 needs about one neighbor.
type neighborInfo struct {
	dev event.DeviceID
	// region the neighbor is located in at tq.
	region space.RegionID
	// pairAffinity = α({d_i, d_k}): the device affinity of the pair.
	pairAffinity float64
	// support[r] = α({d_i, d_k}, r, t_q): the pairwise group affinity
	// (Eq. 1) for each candidate room of the queried device; zero outside
	// the pair's intersecting rooms R_is.
	support map[space.RoomID]float64
	// condI[r] = P(@(d_i, r) | @(d_i, R_is)): the queried device's
	// conditional room probability within the pair's intersecting rooms
	// (zero outside R_is). Used by the Theorem 1/2 bounds.
	condI map[space.RoomID]float64
	// condK[r] is the analogous conditional for the neighbor device.
	condK map[space.RoomID]float64
	// sameRoomProb = α_pair · Σ_{r ∈ R_is} cond_i(r)·cond_k(r): the
	// probability that the pair is co-located in the same room — the total
	// group-affinity mass. It weights how much this neighbor's evidence
	// can displace the prior.
	sameRoomProb float64
}

// Locate disambiguates the room for device d known to be in region g at
// time tq (the coarse stage's output).
func (l *Localizer) Locate(d event.DeviceID, g space.RegionID, tq time.Time) (Result, error) {
	candidates := l.building.CandidateRooms(g)
	if len(candidates) == 0 {
		return Result{}, fmt.Errorf("fine: region %s has no candidate rooms", g)
	}
	prior := l.priorFor(d, g, tq)

	neighbors := l.neighborSet(d, g, tq, prior)
	total := len(neighbors)
	if l.orderer != nil {
		neighbors = l.reorder(d, neighbors, tq)
	}
	// MaxNeighbors truncates only after the affinity reorder, so the cap
	// keeps the highest-affinity candidates. (The pre-fix code broke out of
	// the discovery loop in sorted-ID order, handing the orderer an
	// arbitrary ID-prefix in which the top-affinity neighbors might not
	// even appear.)
	if max := l.opts.MaxNeighbors; max > 0 && len(neighbors) > max {
		neighbors = neighbors[:max]
	}

	var res Result
	switch l.opts.Variant {
	case Dependent:
		res = l.locateDependent(d, candidates, prior, neighbors, tq)
	default:
		res = l.locateIndependent(candidates, prior, neighbors)
	}
	// TotalNeighbors reports the full neighbor set D_n found, before any
	// MaxNeighbors truncation.
	res.TotalNeighbors = total

	// Local affinity graph edges: w = Σ_r α({d_a, d_b}, r, t_q) / |R(g_x)|.
	for i := 0; i < res.ProcessedNeighbors && i < len(neighbors); i++ {
		n := neighbors[i]
		sum := 0.0
		for _, r := range candidates {
			sum += n.support[r]
		}
		res.LocalGraph = append(res.LocalGraph, LocalEdge{
			From:   d,
			To:     n.dev,
			Weight: sum / float64(len(candidates)),
		})
	}
	return res, nil
}

// reorder applies the NeighborOrderer (global affinity graph) to the
// neighbor set, preserving entries the orderer does not know about.
func (l *Localizer) reorder(d event.DeviceID, neighbors []neighborInfo, tq time.Time) []neighborInfo {
	devs := make([]event.DeviceID, len(neighbors))
	for i, n := range neighbors {
		devs[i] = n.dev
	}
	ordered := l.orderer.OrderNeighbors(d, devs, tq)
	byDev := make(map[event.DeviceID]neighborInfo, len(neighbors))
	for _, n := range neighbors {
		byDev[n.dev] = n
	}
	out := make([]neighborInfo, 0, len(neighbors))
	for _, dev := range ordered {
		if n, ok := byDev[dev]; ok {
			out = append(out, n)
			delete(byDev, dev)
		}
	}
	for _, n := range neighbors {
		if _, left := byDev[n.dev]; left {
			out = append(out, n)
		}
	}
	return out
}

// neighborSet finds D_n(d): devices online at tq whose region's candidate
// rooms overlap the queried device's candidates and whose pairwise group
// affinity is positive for some room (paper Section 4.2).
//
// Discovery is region-scoped: only devices with an event at an AP whose
// region overlaps g (Building.OverlappingAPs) are considered, so the
// candidate scan is proportional to the query region's neighborhood, not
// the whole campus. A device whose in-window events all lie in
// non-overlapping regions could previously enter the set only via the
// coarse resolver predicting it back into an overlapping region during a
// gap; scoped discovery treats such a device as not being a neighbor.
func (l *Localizer) neighborSet(d event.DeviceID, g space.RegionID, tq time.Time, prior map[space.RoomID]float64) []neighborInfo {
	window := l.opts.NeighborWindow
	if d2 := l.store.Delta(d); d2 > window {
		window = d2
	}
	active := l.neighbors.ActiveDevicesAt(l.building.OverlappingAPs(g), tq.Add(-window), tq.Add(window))
	candidates := l.building.CandidateRooms(g)

	var out []neighborInfo
	for _, dk := range active {
		if dk == d {
			continue
		}
		region, online := l.deviceRegionAt(dk, tq)
		if !online {
			continue
		}
		// (iii) overlapping regions.
		if !l.building.OverlappingRegions(g, region) {
			continue
		}
		// (ii) positive group affinity for some candidate room.
		pa := l.affinity.PairAffinity(d, dk, tq)
		if pa <= l.opts.MinPairAffinity || pa <= 0 {
			continue
		}
		n := l.pairSupport(d, dk, g, region, prior, candidates, pa, tq)
		positive := false
		for _, s := range n.support {
			if s > 0 {
				positive = true
				break
			}
		}
		if !positive {
			continue
		}
		// No MaxNeighbors break here: the full filtered set is returned so
		// the cap can be applied after the affinity reorder in Locate.
		out = append(out, n)
	}
	return out
}

// deviceRegionAt resolves which region a device is in at tq: from a validity
// interval when connected, else via the injected coarse resolver.
func (l *Localizer) deviceRegionAt(d event.DeviceID, tq time.Time) (space.RegionID, bool) {
	if ap, ok := l.store.CurrentAP(d, tq); ok {
		if g, ok2 := l.building.RegionOf(ap); ok2 {
			return g, true
		}
		return "", false
	}
	if l.coarseRegion != nil {
		return l.coarseRegion(d, tq)
	}
	return "", false
}

// pairSupport computes, for every candidate room r of the queried device,
// the pairwise group affinity s_k(r) = α({d_i, d_k}, r, t_q) (Eq. 1) along
// with both devices' conditionals over the pair's intersecting rooms R_is.
func (l *Localizer) pairSupport(d, dk event.DeviceID, gd, gk space.RegionID, prior map[space.RoomID]float64, candidates []space.RoomID, pairAffinity float64, tq time.Time) neighborInfo {
	n := neighborInfo{
		dev:          dk,
		region:       gk,
		pairAffinity: pairAffinity,
		support:      make(map[space.RoomID]float64, len(candidates)),
		condI:        make(map[space.RoomID]float64, len(candidates)),
		condK:        make(map[space.RoomID]float64, len(candidates)),
	}
	ris := l.building.IntersectCandidates([]space.RegionID{gd, gk})
	if len(ris) == 0 {
		return n
	}
	condD := ConditionalOverRooms(prior, ris)
	priorK := l.priorFor(dk, gk, tq)
	condK := ConditionalOverRooms(priorK, ris)
	inRis := make(map[space.RoomID]bool, len(ris))
	for _, r := range ris {
		inRis[r] = true
	}
	mass := 0.0
	for _, r := range ris {
		mass += condD[r] * condK[r]
	}
	n.sameRoomProb = pairAffinity * mass
	if n.sameRoomProb > 1 {
		n.sameRoomProb = 1
	}
	for _, r := range candidates {
		if !inRis[r] {
			continue
		}
		n.condI[r] = condD[r]
		n.condK[r] = condK[r]
		n.support[r] = GroupAffinity(pairAffinity, []float64{condD[r], condK[r]})
	}
	return n
}

// --- posterior combination ------------------------------------------------
//
// The paper's Eq. 3 combines pairwise group affinities into
// P(r | D̄_n) = 1/(1 + Π(1−s_k)/Π s_k). Applied verbatim, a single neighbor
// whose intersecting-room set excludes r forces P(r) = 0 even when the prior
// strongly favors r, which destroys precision for isolated devices. We keep
// the same product-of-odds structure but combine the per-neighbor evidence
// in log-odds space anchored at the prior — the standard naive-Bayes
// identity logit P(r|e_1..e_n) = logit P(r) + Σ (logit P(r|e_k) − logit P(r))
// — with per-neighbor posteriors given by the co-location mixture
//
//	P(r | obs_k) = s_k(r) + (1 − z_k)·prior(r)
//	s_k(r) = α_pair·cond_i(r)·cond_k(r)·1[r ∈ R_is]   (Eq. 1)
//	z_k    = Σ_{r ∈ R_is} s_k(r)                      (same-room probability)
//
// — with probability z_k the pair is co-located in one room (distributed by
// the group affinities), otherwise the neighbor is uninformative and the
// prior stands. Eq. 3's group-affinity supports appear unchanged; the prior
// term only prevents the hard-zero collapse. Recorded in DESIGN.md.

const probEps = 1e-9

func logit(p float64) float64 {
	if p < probEps {
		p = probEps
	}
	if p > 1-probEps {
		p = 1 - probEps
	}
	return math.Log(p / (1 - p))
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		e := math.Exp(-x)
		return 1 / (1 + e)
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// combinePosterior folds blended per-neighbor posteriors into the prior.
func combinePosterior(prior float64, blended []float64) float64 {
	if len(blended) == 0 {
		return prior
	}
	lp := logit(prior)
	acc := lp
	for _, b := range blended {
		acc += logit(b) - lp
	}
	return sigmoid(acc)
}

// blendedSupport is P(r | obs_k) for a processed neighbor.
func blendedSupport(n neighborInfo, r space.RoomID, prior float64) float64 {
	return n.support[r] + (1-n.sameRoomProb)*prior
}

// hypoSupport is P(r | neighbor known to be in room w) for the
// possible-world bounds: if the neighbor is hypothesized in room r
// (inRoom), its own conditional becomes 1 so the co-location term is
// α_pair·cond_i(r); hypothesized elsewhere, only the uninformative prior
// term remains. This is monotone in the hypothesis, so Theorem 1's world
// (all unprocessed in r_j) maximizes the posterior and Theorem 2's world
// (all in r_max ≠ r_j) minimizes it.
func hypoSupport(inRoom bool, pairAffinity, condI, prior float64) float64 {
	co := pairAffinity * condI
	if co > 1 {
		co = 1
	}
	s := (1 - co) * prior
	if inRoom {
		s += co
	}
	return s
}

// --- Independent variant (I-FINE) --------------------------------------

func (l *Localizer) locateIndependent(candidates []space.RoomID, prior map[space.RoomID]float64, neighbors []neighborInfo) Result {
	blended := make(map[space.RoomID][]float64, len(candidates))
	posterior := make(map[space.RoomID]float64, len(candidates))
	for _, r := range candidates {
		posterior[r] = prior[r]
	}

	processed := 0
	stopped := false
	for idx, n := range neighbors {
		for _, r := range candidates {
			blended[r] = append(blended[r], blendedSupport(n, r, prior[r]))
		}
		processed = idx + 1
		for _, r := range candidates {
			posterior[r] = combinePosterior(prior[r], blended[r])
		}
		if !l.opts.UseStopConditions {
			continue
		}
		if l.checkStop(candidates, prior, posterior, blended, neighbors[processed:]) {
			stopped = processed < len(neighbors)
			break
		}
	}
	best := argmaxRoom(posterior, candidates)
	return Result{
		Room:               best,
		Probability:        posterior[best],
		Posterior:          posterior,
		ProcessedNeighbors: processed,
		StoppedEarly:       stopped,
	}
}

// checkStop evaluates the loose stop conditions on the top-2 rooms:
//
//  1. minP(r_a | D̄_n) > expP(r_b | D̄_n), or
//  2. expP(r_a | D̄_n) > maxP(r_b | D̄_n),
//
// where expP = P (Theorem 3), maxP assumes every unprocessed neighbor is in
// the room (Theorem 1), and minP assumes they are all in the best other room
// (Theorem 2).
func (l *Localizer) checkStop(candidates []space.RoomID, prior, posterior map[space.RoomID]float64, blended map[space.RoomID][]float64, unprocessed []neighborInfo) bool {
	if len(candidates) < 2 {
		return true
	}
	ra, rb := top2Rooms(posterior, candidates)
	if len(unprocessed) == 0 {
		return posterior[ra] > posterior[rb]
	}
	minA := l.boundPosterior(ra, prior, blended, unprocessed, false)
	maxB := l.boundPosterior(rb, prior, blended, unprocessed, true)
	expA := posterior[ra] // Theorem 3
	expB := posterior[rb]
	return minA > expB || expA > maxB
}

// boundPosterior computes maxP (assumeIn=true: every unprocessed neighbor
// hypothesized in room r, Theorem 1) or minP (assumeIn=false: every
// unprocessed neighbor hypothesized in the rival room, Theorem 2).
func (l *Localizer) boundPosterior(r space.RoomID, prior map[space.RoomID]float64, blended map[space.RoomID][]float64, unprocessed []neighborInfo, assumeIn bool) float64 {
	supports := make([]float64, 0, len(blended[r])+len(unprocessed))
	supports = append(supports, blended[r]...)
	for _, n := range unprocessed {
		supports = append(supports, hypoSupport(assumeIn, n.pairAffinity, n.condI[r], prior[r]))
	}
	return combinePosterior(prior[r], supports)
}

// --- Dependent variant (D-FINE) -----------------------------------------

// locateDependent clusters the processed neighbors by nonzero pairwise
// device affinity and lets each cluster influence the posterior jointly,
// following Eq. 6's structure: the cluster-wide group affinity
//
//	α({D̄_nl, d_i}, r, t_q) = A_l · cond_i(r) · Π_{d_k ∈ D̄_nl} cond_k(r)
//
// (A_l = the cluster's device affinity, approximated by the minimum pairwise
// affinity with the queried device) replaces the per-neighbor group affinity
// in the evidence combination. Processing stops early when every cluster's
// affinity is zero for all rooms (the paper's D-FINE termination).
func (l *Localizer) locateDependent(d event.DeviceID, candidates []space.RoomID, prior map[space.RoomID]float64, neighbors []neighborInfo, tq time.Time) Result {
	posterior := make(map[space.RoomID]float64, len(candidates))
	for _, r := range candidates {
		posterior[r] = prior[r]
	}

	processed := 0
	stopped := false
	for idx := range neighbors {
		processed = idx + 1
		active := neighbors[:processed]
		groups := l.clusterNeighbors(active, tq)
		anyPositive := false
		// Cluster-wide group affinities per room, plus each cluster's
		// total co-location mass (for the mixture blend).
		gas := make([]map[space.RoomID]float64, len(groups))
		zs := make([]float64, len(groups))
		for gi, grp := range groups {
			gas[gi] = make(map[space.RoomID]float64, len(candidates))
			for _, r := range candidates {
				_, ga := l.clusterAffinity(grp, r, prior[r])
				gas[gi][r] = ga
				zs[gi] += ga
				if ga > 0 {
					anyPositive = true
				}
			}
			if zs[gi] > 1 {
				zs[gi] = 1
			}
		}
		for _, r := range candidates {
			blended := make([]float64, len(groups))
			for gi := range groups {
				blended[gi] = gas[gi][r] + (1-zs[gi])*prior[r]
			}
			posterior[r] = combinePosterior(prior[r], blended)
		}
		if l.opts.UseStopConditions && !anyPositive {
			stopped = processed < len(neighbors)
			break
		}
	}
	best := argmaxRoom(posterior, candidates)
	return Result{
		Room:               best,
		Probability:        posterior[best],
		Posterior:          posterior,
		ProcessedNeighbors: processed,
		StoppedEarly:       stopped,
	}
}

// clusterNeighbors partitions processed neighbors into affinity clusters:
// neighbors with nonzero pairwise device affinity share a cluster
// (union-find). Cluster order is deterministic.
func (l *Localizer) clusterNeighbors(active []neighborInfo, tq time.Time) [][]neighborInfo {
	n := len(active)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if l.affinity.PairAffinity(active[i].dev, active[j].dev, tq) > 0 {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	byRoot := make(map[int][]neighborInfo)
	var roots []int
	for i, ninfo := range active {
		r := find(i)
		if _, seen := byRoot[r]; !seen {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], ninfo)
	}
	sort.Ints(roots)
	out := make([][]neighborInfo, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}

// clusterAffinity returns (A_l, α({D̄_nl, d_i}, r)): the cluster device
// affinity and the cluster-wide group affinity for room r.
func (l *Localizer) clusterAffinity(grp []neighborInfo, r space.RoomID, prior float64) (deviceAff, groupAff float64) {
	if len(grp) == 0 {
		return 0, 0
	}
	minPair := math.Inf(1)
	condProduct := 1.0
	condI := 0.0
	for _, n := range grp {
		if n.pairAffinity < minPair {
			minPair = n.pairAffinity
		}
		ck, ok := n.condK[r]
		if !ok || ck <= 0 {
			return minAff(minPair), 0
		}
		condProduct *= ck
		// cond_i over the pair's R_is: use the largest available — the
		// queried device's conditional should reflect the tightest
		// intersecting set in the cluster.
		if ci := n.condI[r]; ci > condI {
			condI = ci
		}
	}
	if condI <= 0 {
		return minAff(minPair), 0
	}
	ga := minPair * condI * condProduct
	if ga > 1 {
		ga = 1
	}
	return minAff(minPair), ga
}

func minAff(v float64) float64 {
	if math.IsInf(v, 1) {
		return 0
	}
	return v
}

// --- shared helpers -------------------------------------------------------

func argmaxRoom(m map[space.RoomID]float64, rooms []space.RoomID) space.RoomID {
	if len(rooms) == 0 {
		return ""
	}
	best := rooms[0]
	for _, r := range rooms[1:] {
		if m[r] > m[best] {
			best = r
		}
	}
	return best
}

// top2Rooms returns the two rooms with the highest posterior (deterministic
// tie-break by room ID, since candidates are sorted).
func top2Rooms(m map[space.RoomID]float64, rooms []space.RoomID) (space.RoomID, space.RoomID) {
	ra, rb := rooms[0], rooms[0]
	first := true
	for _, r := range rooms {
		if first {
			ra = r
			first = false
			continue
		}
		if m[r] > m[ra] {
			rb = ra
			ra = r
		} else if rb == ra || m[r] > m[rb] {
			rb = r
		}
	}
	if rb == ra && len(rooms) > 1 {
		for _, r := range rooms {
			if r != ra {
				rb = r
				break
			}
		}
	}
	return ra, rb
}
