package fine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"locater/internal/event"
	"locater/internal/space"
	"locater/internal/store"
)

// fixedAffinity is a PairAffinityProvider with scripted values.
type fixedAffinity map[[2]event.DeviceID]float64

func (f fixedAffinity) PairAffinity(a, b event.DeviceID, _ time.Time) float64 {
	if a > b {
		a, b = b, a
	}
	return f[[2]event.DeviceID{a, b}]
}

func pair(a, b event.DeviceID) [2]event.DeviceID {
	if a > b {
		a, b = b, a
	}
	return [2]event.DeviceID{a, b}
}

// setupScene ingests d1 connected to wap3 and any scripted neighbors
// connected to their APs at t0, with δ = 10 minutes.
func setupScene(t testing.TB, b *space.Building, conns map[event.DeviceID]space.APID) *store.Store {
	t.Helper()
	st := store.New(0)
	for d, ap := range conns {
		if err := st.IngestOne(event.Event{Device: d, Time: t0, AP: ap}); err != nil {
			t.Fatal(err)
		}
		if err := st.SetDelta(d, 10*time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestLocateNoNeighborsFallsBackToPrior(t *testing.T) {
	b := paperBuilding(t)
	st := setupScene(t, b, map[event.DeviceID]space.APID{"d1": "wap3"})
	l := New(b, st, fixedAffinity{}, nil, Options{UseStopConditions: true})
	g3, _ := b.RegionOf("wap3")

	res, err := l.Locate("d1", g3, t0)
	if err != nil {
		t.Fatal(err)
	}
	// With no neighbors the posterior is the room-affinity prior: the
	// preferred room 2061 wins.
	if res.Room != "2061" {
		t.Errorf("room = %s, want preferred 2061", res.Room)
	}
	if res.TotalNeighbors != 0 || res.ProcessedNeighbors != 0 {
		t.Errorf("neighbors = %d/%d, want 0/0", res.ProcessedNeighbors, res.TotalNeighbors)
	}
	if math.Abs(res.Probability-0.6) > 1e-9 {
		t.Errorf("probability = %v, want prior 0.6", res.Probability)
	}
}

func TestLocateUnknownRegion(t *testing.T) {
	b := paperBuilding(t)
	st := setupScene(t, b, map[event.DeviceID]space.APID{"d1": "wap3"})
	l := New(b, st, fixedAffinity{}, nil, Options{})
	if _, err := l.Locate("d1", "ghost", t0); err == nil {
		t.Error("unknown region should error")
	}
}

// TestNeighborBoostsSharedRoom reproduces the paper's Fig. 3 narrative: a
// strongly-affine neighbor in an overlapping region raises the posterior of
// the shared public room.
func TestNeighborBoostsSharedRoom(t *testing.T) {
	b := paperBuilding(t)
	st := setupScene(t, b, map[event.DeviceID]space.APID{
		"d1": "wap3",
		"d2": "wap4",
	})
	aff := fixedAffinity{pair("d1", "d2"): 0.9}
	l := New(b, st, aff, nil, Options{UseStopConditions: true})
	g3, _ := b.RegionOf("wap3")

	res, err := l.Locate("d1", g3, t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalNeighbors != 1 {
		t.Fatalf("neighbors = %d, want 1", res.TotalNeighbors)
	}
	// The posterior of the shared public room 2065 (in Ris of wap3∩wap4)
	// must rise above its prior 0.3.
	noNeighbor := New(b, setupScene(t, b, map[event.DeviceID]space.APID{"d1": "wap3"}),
		fixedAffinity{}, nil, Options{UseStopConditions: true})
	base, err := noNeighbor.Locate("d1", g3, t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Posterior["2065"] <= base.Posterior["2065"] {
		t.Errorf("neighbor should boost 2065: %v vs %v", res.Posterior["2065"], base.Posterior["2065"])
	}
}

func TestNeighborFilteredByRegionOverlap(t *testing.T) {
	// A building whose two APs share no rooms: devices there are never
	// neighbors regardless of affinity.
	b, err := space.NewBuilding(space.Config{
		Rooms: []space.Room{{ID: "x1"}, {ID: "x2"}, {ID: "y1"}, {ID: "y2"}},
		AccessPoints: []space.AccessPoint{
			{ID: "apX", Coverage: []space.RoomID{"x1", "x2"}},
			{ID: "apY", Coverage: []space.RoomID{"y1", "y2"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := setupScene(t, b, map[event.DeviceID]space.APID{
		"d1": "apX",
		"d2": "apY",
	})
	l := New(b, st, fixedAffinity{pair("d1", "d2"): 0.9}, nil, Options{})
	gX, _ := b.RegionOf("apX")
	res, err := l.Locate("d1", gX, t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalNeighbors != 0 {
		t.Errorf("non-overlapping device counted as neighbor: %d", res.TotalNeighbors)
	}
}

func TestNeighborFilteredByZeroAffinity(t *testing.T) {
	b := paperBuilding(t)
	st := setupScene(t, b, map[event.DeviceID]space.APID{
		"d1": "wap3",
		"d2": "wap4",
	})
	l := New(b, st, fixedAffinity{}, nil, Options{}) // no affinity entries → 0
	g3, _ := b.RegionOf("wap3")
	res, err := l.Locate("d1", g3, t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalNeighbors != 0 {
		t.Errorf("zero-affinity device counted as neighbor: %d", res.TotalNeighbors)
	}
}

func TestMaxNeighborsCap(t *testing.T) {
	b := paperBuilding(t)
	conns := map[event.DeviceID]space.APID{"d1": "wap3"}
	aff := fixedAffinity{}
	for _, d := range []event.DeviceID{"n1", "n2", "n3", "n4"} {
		conns[d] = "wap3"
		aff[pair("d1", d)] = 0.5
	}
	st := setupScene(t, b, conns)
	l := New(b, st, aff, nil, Options{MaxNeighbors: 2})
	g3, _ := b.RegionOf("wap3")
	res, err := l.Locate("d1", g3, t0)
	if err != nil {
		t.Fatal(err)
	}
	// TotalNeighbors reports the full discovered set; the cap bounds only
	// how many neighbors Algorithm 2 may process.
	if res.TotalNeighbors != 4 {
		t.Errorf("TotalNeighbors = %d, want full pre-truncation count 4", res.TotalNeighbors)
	}
	if res.ProcessedNeighbors > 2 {
		t.Errorf("neighbor cap violated: processed %d > 2", res.ProcessedNeighbors)
	}
}

func TestVariantString(t *testing.T) {
	if Independent.String() != "I-FINE" || Dependent.String() != "D-FINE" {
		t.Errorf("variant names: %s / %s", Independent, Dependent)
	}
	if Variant(9).String() == "" {
		t.Error("unknown variant should render")
	}
}

func TestStopConditionsReduceWork(t *testing.T) {
	b := paperBuilding(t)
	conns := map[event.DeviceID]space.APID{"d1": "wap3"}
	aff := fixedAffinity{}
	var names []event.DeviceID
	for i := 0; i < 12; i++ {
		d := event.DeviceID("n" + string(rune('a'+i)))
		names = append(names, d)
		conns[d] = "wap3"
		aff[pair("d1", d)] = 0.02 // weak neighbors: early stop should fire
	}
	st := setupScene(t, b, conns)
	g3, _ := b.RegionOf("wap3")

	withStop := New(b, st, aff, nil, Options{UseStopConditions: true})
	res1, err := withStop.Locate("d1", g3, t0)
	if err != nil {
		t.Fatal(err)
	}
	withoutStop := New(b, st, aff, nil, Options{UseStopConditions: false})
	res2, err := withoutStop.Locate("d1", g3, t0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ProcessedNeighbors != res2.TotalNeighbors {
		t.Errorf("without stop conditions all neighbors must be processed: %d/%d",
			res2.ProcessedNeighbors, res2.TotalNeighbors)
	}
	if res1.ProcessedNeighbors >= res2.ProcessedNeighbors {
		t.Errorf("stop conditions did not reduce work: %d vs %d",
			res1.ProcessedNeighbors, res2.ProcessedNeighbors)
	}
	if res1.Room != res2.Room {
		t.Errorf("early stop changed the answer: %s vs %s", res1.Room, res2.Room)
	}
	_ = names
}

func TestDependentClustersMatchPaperFigure4(t *testing.T) {
	// Fig. 4(b): neighbors {d2,d3,d4} form one cluster, {d5,d6} another.
	b := paperBuilding(t)
	conns := map[event.DeviceID]space.APID{"d1": "wap3"}
	for _, d := range []event.DeviceID{"d2", "d3", "d4", "d5", "d6"} {
		conns[d] = "wap3"
	}
	st := setupScene(t, b, conns)
	aff := fixedAffinity{
		pair("d1", "d2"): 0.5, pair("d1", "d3"): 0.5, pair("d1", "d4"): 0.5,
		pair("d1", "d5"): 0.5, pair("d1", "d6"): 0.5,
		pair("d2", "d3"): 0.4, pair("d3", "d4"): 0.4,
		pair("d5", "d6"): 0.4,
	}
	l := New(b, st, aff, nil, Options{Variant: Dependent})

	var infos []neighborInfo
	for _, d := range []event.DeviceID{"d2", "d3", "d4", "d5", "d6"} {
		infos = append(infos, neighborInfo{dev: d, pairAffinity: 0.5})
	}
	groups := l.clusterNeighbors(infos, t0)
	if len(groups) != 2 {
		t.Fatalf("got %d clusters, want 2", len(groups))
	}
	sizes := []int{len(groups[0]), len(groups[1])}
	if !(sizes[0] == 3 && sizes[1] == 2 || sizes[0] == 2 && sizes[1] == 3) {
		t.Errorf("cluster sizes = %v, want {3,2}", sizes)
	}
}

func TestDependentVariantAnswers(t *testing.T) {
	b := paperBuilding(t)
	st := setupScene(t, b, map[event.DeviceID]space.APID{
		"d1": "wap3", "d2": "wap3", "d3": "wap3",
	})
	aff := fixedAffinity{
		pair("d1", "d2"): 0.6,
		pair("d1", "d3"): 0.6,
		pair("d2", "d3"): 0.8, // d2, d3 cluster together
	}
	l := New(b, st, aff, nil, Options{Variant: Dependent, UseStopConditions: true})
	g3, _ := b.RegionOf("wap3")
	res, err := l.Locate("d1", g3, t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Room == "" {
		t.Fatal("no room answered")
	}
	// Posteriors must be valid probabilities.
	for r, p := range res.Posterior {
		if p < 0 || p > 1 {
			t.Errorf("posterior[%s] = %v out of range", r, p)
		}
	}
}

func TestLocalGraphEdges(t *testing.T) {
	b := paperBuilding(t)
	st := setupScene(t, b, map[event.DeviceID]space.APID{
		"d1": "wap3", "d2": "wap3",
	})
	aff := fixedAffinity{pair("d1", "d2"): 0.7}
	l := New(b, st, aff, nil, Options{UseStopConditions: false})
	g3, _ := b.RegionOf("wap3")
	res, err := l.Locate("d1", g3, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LocalGraph) != 1 {
		t.Fatalf("local graph edges = %d, want 1", len(res.LocalGraph))
	}
	e := res.LocalGraph[0]
	if e.From != "d1" || e.To != "d2" {
		t.Errorf("edge = %v", e)
	}
	// Weight = Σ_r α({d1,d2},r)/|R(g3)| must be positive and ≤ affinity.
	if e.Weight <= 0 || e.Weight > 0.7 {
		t.Errorf("edge weight = %v", e.Weight)
	}
}

// orderRecorder verifies the NeighborOrderer is consulted.
type orderRecorder struct {
	called bool
	swap   bool
}

func (o *orderRecorder) OrderNeighbors(d event.DeviceID, ns []event.DeviceID, _ time.Time) []event.DeviceID {
	o.called = true
	out := make([]event.DeviceID, len(ns))
	copy(out, ns)
	if o.swap && len(out) >= 2 {
		out[0], out[1] = out[1], out[0]
	}
	return out
}

func TestNeighborOrdererUsed(t *testing.T) {
	b := paperBuilding(t)
	st := setupScene(t, b, map[event.DeviceID]space.APID{
		"d1": "wap3", "n1": "wap3", "n2": "wap3",
	})
	aff := fixedAffinity{pair("d1", "n1"): 0.4, pair("d1", "n2"): 0.4}
	rec := &orderRecorder{swap: true}
	l := New(b, st, aff, rec, Options{UseStopConditions: false})
	g3, _ := b.RegionOf("wap3")
	if _, err := l.Locate("d1", g3, t0); err != nil {
		t.Fatal(err)
	}
	if !rec.called {
		t.Error("orderer was not consulted")
	}
}

func TestCoarseResolverUsedForGapNeighbors(t *testing.T) {
	b := paperBuilding(t)
	st := store.New(0)
	st.SetDelta("d1", 10*time.Minute)
	st.SetDelta("dg", 10*time.Minute)
	// d1 connected now; dg has events before and after t0 forming a gap
	// containing t0 (events at -40m and +40m, δ=10m).
	st.Ingest([]event.Event{
		{Device: "d1", Time: t0, AP: "wap3"},
		{Device: "dg", Time: t0.Add(-40 * time.Minute), AP: "wap4"},
		{Device: "dg", Time: t0.Add(40 * time.Minute), AP: "wap4"},
	})
	aff := fixedAffinity{pair("d1", "dg"): 0.8}
	l := New(b, st, aff, nil, Options{UseStopConditions: false})
	g4, _ := b.RegionOf("wap4")
	resolved := false
	l.SetCoarseResolver(func(d event.DeviceID, tq time.Time) (space.RegionID, bool) {
		if d == "dg" {
			resolved = true
			return g4, true
		}
		return "", false
	})
	g3, _ := b.RegionOf("wap3")
	res, err := l.Locate("d1", g3, t0)
	if err != nil {
		t.Fatal(err)
	}
	if !resolved {
		t.Error("coarse resolver not consulted for gap neighbor")
	}
	if res.TotalNeighbors != 1 {
		t.Errorf("gap neighbor not counted: %d", res.TotalNeighbors)
	}
}

// --- posterior math properties -------------------------------------------

func TestCombinePosteriorIdentities(t *testing.T) {
	// No evidence → prior.
	if got := combinePosterior(0.3, nil); got != 0.3 {
		t.Errorf("no evidence: %v", got)
	}
	// Evidence equal to prior → prior (uninformative).
	got := combinePosterior(0.3, []float64{0.3, 0.3})
	if math.Abs(got-0.3) > 1e-9 {
		t.Errorf("uninformative evidence moved posterior: %v", got)
	}
	// Supportive evidence raises, contrary evidence lowers.
	up := combinePosterior(0.3, []float64{0.8})
	down := combinePosterior(0.3, []float64{0.05})
	if !(up > 0.3 && down < 0.3) {
		t.Errorf("evidence direction wrong: up=%v down=%v", up, down)
	}
}

// Property: combinePosterior stays in [0,1] and is monotone in each
// support.
func TestCombinePosteriorMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prior := 0.05 + 0.9*rng.Float64()
		n := 1 + rng.Intn(6)
		supports := make([]float64, n)
		for i := range supports {
			supports[i] = rng.Float64()
		}
		p := combinePosterior(prior, supports)
		if p < 0 || p > 1 || math.IsNaN(p) {
			return false
		}
		// Raising one support must not lower the posterior.
		i := rng.Intn(n)
		raised := make([]float64, n)
		copy(raised, supports)
		raised[i] = supports[i] + (1-supports[i])*rng.Float64()
		p2 := combinePosterior(prior, raised)
		return p2+1e-12 >= p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (Theorems 1–3): minP ≤ expP ≤ maxP for the hypothetical-world
// bounds built from hypoSupport.
func TestBoundsOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prior := 0.05 + 0.9*rng.Float64()
		nProcessed := rng.Intn(4)
		nUnprocessed := 1 + rng.Intn(5)
		processed := make([]float64, nProcessed)
		for i := range processed {
			processed[i] = rng.Float64()
		}
		expP := combinePosterior(prior, processed)

		maxSupports := append([]float64{}, processed...)
		minSupports := append([]float64{}, processed...)
		for i := 0; i < nUnprocessed; i++ {
			a := rng.Float64()
			condI := rng.Float64()
			maxSupports = append(maxSupports, hypoSupport(true, a, condI, prior))
			minSupports = append(minSupports, hypoSupport(false, a, condI, prior))
		}
		maxP := combinePosterior(prior, maxSupports)
		minP := combinePosterior(prior, minSupports)
		return minP <= expP+1e-9 && expP <= maxP+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHypoSupportMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64()
		condI := rng.Float64()
		prior := 0.05 + 0.9*rng.Float64()
		in := hypoSupport(true, a, condI, prior)
		out := hypoSupport(false, a, condI, prior)
		return in+1e-12 >= out && in >= 0 && in <= 1 && out >= 0 && out <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTop2Rooms(t *testing.T) {
	rooms := []space.RoomID{"a", "b", "c"}
	m := map[space.RoomID]float64{"a": 0.2, "b": 0.5, "c": 0.3}
	ra, rb := top2Rooms(m, rooms)
	if ra != "b" || rb != "c" {
		t.Errorf("top2 = %s, %s", ra, rb)
	}
	// Single room: rb falls back to a different room when available.
	ra, rb = top2Rooms(map[space.RoomID]float64{"a": 1}, []space.RoomID{"a"})
	if ra != "a" {
		t.Errorf("single-room top = %s", ra)
	}
	_ = rb
}

func TestLogitSigmoidInverse(t *testing.T) {
	for _, p := range []float64{0.01, 0.2, 0.5, 0.77, 0.99} {
		if got := sigmoid(logit(p)); math.Abs(got-p) > 1e-9 {
			t.Errorf("sigmoid(logit(%v)) = %v", p, got)
		}
	}
	// Clamped extremes stay finite.
	if v := logit(0); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("logit(0) = %v", v)
	}
	if v := logit(1); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("logit(1) = %v", v)
	}
}
