// Package fine implements LOCATER's fine-grained localization: the location
// disambiguation stage (paper Section 4). Given a device localized to a
// region g_x at time t_q, it selects the specific room r ∈ R(g_x) by
// combining:
//
//   - room affinity α(d, r, t_q): the prior chance of d being in room r
//     given its region, computed from space metadata (preferred rooms,
//     public/private room types) with weights w^pf > w^pb > w^pr;
//   - device affinity α(D): the fraction of historical connectivity events
//     in which the devices of D were connected to the same AP within each
//     other's validity intervals;
//   - group affinity α(D, r, t_q) (Eq. 1): the probability of the whole
//     group being co-located in r, zero outside the intersecting rooms R_is.
//
// The iterative localization algorithm (Algorithm 2) processes neighbor
// devices one at a time, maintaining the posterior of every candidate room
// and stopping early via the min/max/expected probability bounds of
// Theorems 1–3 (independent variant, I-FINE) or via affinity clusters
// (dependent variant, D-FINE, Eq. 6).
package fine

import (
	"fmt"
	"sync"
	"time"

	"locater/internal/event"
	"locater/internal/space"
	"locater/internal/store"
)

// Weights are the room-affinity weights (w^pf, w^pb, w^pr) assigned to a
// device's preferred rooms, to public rooms, and to private rooms within the
// candidate set. Validity requires w^pf > w^pb > w^pr and a sum of 1
// (paper Section 4.1).
type Weights struct {
	Preferred float64 // w^pf
	Public    float64 // w^pb
	Private   float64 // w^pr
}

// DefaultWeights returns C2 = {0.6, 0.3, 0.1}, the paper's best-performing
// combination (Table 2).
func DefaultWeights() Weights { return Weights{Preferred: 0.6, Public: 0.3, Private: 0.1} }

// Validate checks the two conditions of Section 4.1.
func (w Weights) Validate() error {
	if !(w.Preferred > w.Public && w.Public > w.Private) {
		return fmt.Errorf("fine: weights must satisfy w^pf > w^pb > w^pr, got %+v", w)
	}
	if w.Private <= 0 {
		return fmt.Errorf("fine: weights must be positive, got %+v", w)
	}
	sum := w.Preferred + w.Public + w.Private
	if sum < 1-1e-9 || sum > 1+1e-9 {
		return fmt.Errorf("fine: weights must sum to 1, got %.6f", sum)
	}
	return nil
}

// RoomAffinities computes α(d, r) for every candidate room r ∈ R(g) using
// the device's static preferred rooms. See RoomAffinitiesAt for the
// time-dependent variant the paper suggests in Section 4.1.
func RoomAffinities(b *space.Building, w Weights, dev event.DeviceID, g space.RegionID) map[space.RoomID]float64 {
	return roomAffinities(b, w, g, b.PreferredRooms(string(dev)))
}

// RoomAffinitiesAt computes α(d, r, t_q) using the preferred rooms in effect
// at t_q (time-scoped preferences override the static set — e.g. the break
// room during lunch, the office otherwise).
func RoomAffinitiesAt(b *space.Building, w Weights, dev event.DeviceID, g space.RegionID, tq time.Time) map[space.RoomID]float64 {
	return roomAffinities(b, w, g, b.PreferredRoomsAt(string(dev), tq))
}

// roomAffinities computes the probability distribution over candidate rooms
// given only metadata.
//
// Each class of rooms present in the candidate set shares its class weight
// uniformly: the preferred rooms split w^pf, the public non-preferred rooms
// split w^pb, and the private non-preferred rooms split w^pr. Weight
// belonging to an absent class is redistributed proportionally so the
// affinities always sum to 1 (paper example, Section 4.1).
func roomAffinities(b *space.Building, w Weights, g space.RegionID, preferred []space.RoomID) map[space.RoomID]float64 {
	candidates := b.CandidateRooms(g)
	if len(candidates) == 0 {
		return nil
	}
	prefSet := make(map[space.RoomID]bool)
	for _, r := range preferred {
		prefSet[r] = true
	}
	var pref, pub, priv []space.RoomID
	for _, r := range candidates {
		switch {
		case prefSet[r]:
			pref = append(pref, r)
		case b.IsPublic(r):
			pub = append(pub, r)
		default:
			priv = append(priv, r)
		}
	}
	// Mass per class, dropping absent classes and renormalizing.
	mass := 0.0
	if len(pref) > 0 {
		mass += w.Preferred
	}
	if len(pub) > 0 {
		mass += w.Public
	}
	if len(priv) > 0 {
		mass += w.Private
	}
	out := make(map[space.RoomID]float64, len(candidates))
	if mass == 0 {
		// Unreachable with valid weights, but keep a uniform fallback.
		u := 1.0 / float64(len(candidates))
		for _, r := range candidates {
			out[r] = u
		}
		return out
	}
	assign := func(rooms []space.RoomID, classWeight float64) {
		if len(rooms) == 0 {
			return
		}
		each := classWeight / mass / float64(len(rooms))
		for _, r := range rooms {
			out[r] = each
		}
	}
	assign(pref, w.Preferred)
	assign(pub, w.Public)
	assign(priv, w.Private)
	return out
}

// DeviceAffinity computes α(D) for a pair of devices: the fraction of their
// historical events that are "intersecting" — the other device logged an
// event at the same AP within the validity interval — among all events of
// the pair (paper Section 4.1). The window [start, end] bounds the history
// considered.
func DeviceAffinity(st *store.Store, a, b event.DeviceID, start, end time.Time) float64 {
	ea := st.EventsBetween(a, start, end)
	eb := st.EventsBetween(b, start, end)
	total := len(ea) + len(eb)
	if total == 0 {
		return 0
	}
	da := st.Delta(a)
	db := st.Delta(b)
	inter := countIntersecting(ea, eb, da) + countIntersecting(eb, ea, db)
	return float64(inter) / float64(total)
}

// affinitySweep is the pooled scratch of one batched affinity sweep: the
// single copy of the queried device's history window plus the decoded
// nanosecond timestamp arrays of both sides (the neighbors' windows
// themselves are visited zero-copy under the store's shared lock).
type affinitySweep struct {
	dEvs   []event.Event
	dTimes []int64
	cTimes []int64
}

var affinitySweepPool = sync.Pool{New: func() any { return new(affinitySweep) }}

// BatchDeviceAffinity computes α({d, c}) for every candidate device c in one
// sweep over the history window [start, end]. The queried device's window is
// materialized once (into a pooled buffer) instead of once per pair, its
// timestamps decoded to nanoseconds once instead of being re-compared as
// time.Time per pair, and each candidate's window is visited in place via
// store.ScanEvents — so a query with N neighbors costs one copy plus N
// zero-copy scans where the per-pair DeviceAffinity path costs 2N copies.
// Results are written into out[:len(cands)] (grown as needed) and are
// identical to calling DeviceAffinity per pair.
func BatchDeviceAffinity(st *store.Store, d event.DeviceID, cands []event.DeviceID, start, end time.Time, out []float64) []float64 {
	out = growFloats(out, len(cands))
	if len(cands) == 0 {
		return out
	}
	sw := affinitySweepPool.Get().(*affinitySweep)
	defer func() {
		sw.dEvs = sw.dEvs[:0]
		affinitySweepPool.Put(sw)
	}()
	var dDelta time.Duration
	st.ScanEvents(d, start, end, func(evs []event.Event, delta time.Duration) {
		sw.dEvs = append(sw.dEvs[:0], evs...)
		dDelta = delta
	})
	sw.dTimes = eventNanos(sw.dEvs, sw.dTimes)
	for i, c := range cands {
		aff := 0.0
		st.ScanEvents(c, start, end, func(evs []event.Event, delta time.Duration) {
			total := len(sw.dEvs) + len(evs)
			if total == 0 {
				return
			}
			sw.cTimes = eventNanos(evs, sw.cTimes)
			inter := countIntersectingNanos(sw.dEvs, sw.dTimes, evs, sw.cTimes, dDelta) +
				countIntersectingNanos(evs, sw.cTimes, sw.dEvs, sw.dTimes, delta)
			aff = float64(inter) / float64(total)
		})
		out[i] = aff
	}
	return out
}

// eventNanos decodes the events' timestamps into a reused []int64.
func eventNanos(evs []event.Event, buf []int64) []int64 {
	if cap(buf) < len(evs) {
		buf = make([]int64, len(evs))
	}
	buf = buf[:len(evs)]
	for i := range evs {
		buf[i] = evs[i].Time.UnixNano()
	}
	return buf
}

// countIntersectingNanos is countIntersecting over pre-decoded nanosecond
// timestamps (xt, yt parallel to xs, ys): the same two-pointer sweep with
// integer comparisons instead of time.Time arithmetic per step. Counts are
// identical for timestamps within int64-nanosecond range (years 1678–2262).
func countIntersectingNanos(xs []event.Event, xt []int64, ys []event.Event, yt []int64, delta time.Duration) int {
	d := int64(delta)
	count := 0
	j := 0
	for i := range xs {
		lo := xt[i] - d
		hi := xt[i] + d
		for j < len(yt) && yt[j] < lo {
			j++
		}
		for k := j; k < len(yt) && yt[k] <= hi; k++ {
			if ys[k].AP == xs[i].AP {
				count++
				break
			}
		}
	}
	return count
}

// growFloats returns a zeroed slice of length n, reusing out's backing array
// when it is large enough.
func growFloats(out []float64, n int) []float64 {
	if cap(out) < n {
		return make([]float64, n)
	}
	out = out[:n]
	for i := range out {
		out[i] = 0
	}
	return out
}

// countIntersecting counts events in xs that have a same-AP event of ys
// within delta. Both inputs are sorted by time. Two-pointer sweep: O(n+m)
// amortized per event window.
func countIntersecting(xs, ys []event.Event, delta time.Duration) int {
	count := 0
	j := 0
	for _, e := range xs {
		lo := e.Time.Add(-delta)
		hi := e.Time.Add(delta)
		for j < len(ys) && ys[j].Time.Before(lo) {
			j++
		}
		for k := j; k < len(ys) && !ys[k].Time.After(hi); k++ {
			if ys[k].AP == e.AP {
				count++
				break
			}
		}
	}
	return count
}

// GroupAffinity computes α(D, r, t_q) per Eq. 1 for the device group D whose
// members' conditional room distributions are given. The affinity is zero
// when r is not an intersecting room of all members' candidate sets.
//
//	α(D, r, t_q) = α(D) · Π_{d∈D} P(@(d, r) | @(d, R_is))
//
// conds maps each device to its conditional probability of being in r given
// it is in one of the intersecting rooms (already normalized over R_is).
func GroupAffinity(deviceAffinity float64, conds []float64) float64 {
	if deviceAffinity <= 0 {
		return 0
	}
	p := deviceAffinity
	for _, c := range conds {
		if c <= 0 {
			return 0
		}
		p *= c
	}
	return p
}

// ConditionalOverRooms normalizes a room-affinity map over the subset rooms
// (R_is), returning P(@(d, r) | @(d, R_is)) for each r in rooms. Rooms with
// zero total mass yield a uniform distribution.
func ConditionalOverRooms(aff map[space.RoomID]float64, rooms []space.RoomID) map[space.RoomID]float64 {
	out := make(map[space.RoomID]float64, len(rooms))
	total := 0.0
	for _, r := range rooms {
		total += aff[r]
	}
	if total <= 0 {
		if len(rooms) == 0 {
			return out
		}
		u := 1.0 / float64(len(rooms))
		for _, r := range rooms {
			out[r] = u
		}
		return out
	}
	for _, r := range rooms {
		out[r] = aff[r] / total
	}
	return out
}

// PairAffinityProvider supplies pairwise device affinities α({a, b}). The
// fine localizer computes them from the store by default; the caching engine
// substitutes a cached provider (affgraph.CachedAffinity).
//
// Contract for caching implementations: affinities derive from mutable
// history — connectivity events and per-device δs — so a provider that
// memoizes answers must expose an invalidation hook and the system must
// call it after every write that changes those inputs (Ingest, SetDelta,
// EstimateDeltas). The provider must also be safe for concurrent use: the
// fine stage calls PairAffinity from every in-flight query.
type PairAffinityProvider interface {
	// PairAffinity returns α({a, b}) over history ending at ref.
	PairAffinity(a, b event.DeviceID, ref time.Time) float64
}

// BatchPairAffinityProvider is the batched companion of
// PairAffinityProvider: one call answers α({d, c}) for every candidate c,
// letting the provider fetch the shared device d's history once and sweep
// the candidates in a single pass. Results must equal len(cands) per-pair
// PairAffinity calls; out is a caller-owned scratch slice the provider may
// reuse (the returned slice has length len(cands)).
//
// The fine localizer probes for this interface on its provider and falls
// back to a per-pair loop when absent, so scripted test providers need not
// implement it.
type BatchPairAffinityProvider interface {
	BatchPairAffinity(d event.DeviceID, cands []event.DeviceID, ref time.Time, out []float64) []float64
}

// storeAffinity computes pairwise affinities directly from the store over a
// fixed-length history window.
type storeAffinity struct {
	st     *store.Store
	window time.Duration
}

// NewStoreAffinity returns a PairAffinityProvider that scans the store over
// a history window of the given length (ending at the reference time).
func NewStoreAffinity(st *store.Store, window time.Duration) PairAffinityProvider {
	return &storeAffinity{st: st, window: window}
}

func (s *storeAffinity) PairAffinity(a, b event.DeviceID, ref time.Time) float64 {
	return DeviceAffinity(s.st, a, b, ref.Add(-s.window), ref)
}

// BatchPairAffinity implements BatchPairAffinityProvider via the batched
// sweep kernel: device d's window is copied once, candidates are scanned in
// place.
func (s *storeAffinity) BatchPairAffinity(d event.DeviceID, cands []event.DeviceID, ref time.Time, out []float64) []float64 {
	return BatchDeviceAffinity(s.st, d, cands, ref.Add(-s.window), ref, out)
}
