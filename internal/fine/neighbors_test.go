package fine

import (
	"sort"
	"testing"
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// affinityOrderer orders neighbors by descending scripted affinity to the
// queried device — the same contract the caching engine's global affinity
// graph implements.
type affinityOrderer struct{ aff fixedAffinity }

func (o affinityOrderer) OrderNeighbors(d event.DeviceID, ns []event.DeviceID, _ time.Time) []event.DeviceID {
	out := make([]event.DeviceID, len(ns))
	copy(out, ns)
	sort.SliceStable(out, func(i, j int) bool {
		return o.aff[pair(d, out[i])] > o.aff[pair(d, out[j])]
	})
	return out
}

// TestMaxNeighborsKeepsTopAffinityNeighbor is the truncation-order
// regression test: the highest-affinity neighbor carries the
// lexicographically-LARGEST device ID, so the pre-fix code — which broke
// out of discovery at MaxNeighbors while iterating devices in sorted-ID
// order — dropped it before the affinity reorder ever ran. The cap must
// apply after the reorder, keeping the top-affinity candidates.
func TestMaxNeighborsKeepsTopAffinityNeighbor(t *testing.T) {
	b := paperBuilding(t)
	conns := map[event.DeviceID]space.APID{"d1": "wap3"}
	aff := fixedAffinity{}
	// Nine weak neighbors with small IDs…
	for _, d := range []event.DeviceID{"a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9"} {
		conns[d] = "wap3"
		aff[pair("d1", d)] = 0.1
	}
	// …and the strongest neighbor with the largest ID.
	conns["zz-strong"] = "wap3"
	aff[pair("d1", "zz-strong")] = 0.9

	st := setupScene(t, b, conns)
	l := New(b, st, aff, affinityOrderer{aff}, Options{MaxNeighbors: 2, UseStopConditions: false})
	g3, _ := b.RegionOf("wap3")
	res, err := l.Locate("d1", g3, t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalNeighbors != 10 {
		t.Errorf("TotalNeighbors = %d, want the full pre-truncation set of 10", res.TotalNeighbors)
	}
	if res.ProcessedNeighbors != 2 {
		t.Fatalf("ProcessedNeighbors = %d, want the MaxNeighbors cap of 2", res.ProcessedNeighbors)
	}
	// The processed set (visible through the local-graph edges) must start
	// with the top-affinity neighbor, not an ID-order prefix.
	if len(res.LocalGraph) == 0 || res.LocalGraph[0].To != "zz-strong" {
		t.Errorf("top-affinity neighbor dropped by truncation: local graph = %+v", res.LocalGraph)
	}
}

// TestNeighborDiscoveryIsRegionScoped: discovery must ask the store only
// for devices seen at APs whose region overlaps the query region, and a
// device active solely in a non-overlapping region must not be considered
// at all (its affinity provider is never even consulted).
func TestNeighborDiscoveryIsRegionScoped(t *testing.T) {
	// Two disjoint neighborhoods: {apX1, apX2} share room x2; apY covers
	// only its own rooms.
	b, err := space.NewBuilding(space.Config{
		Rooms: []space.Room{{ID: "x1"}, {ID: "x2"}, {ID: "x3"}, {ID: "y1"}, {ID: "y2"}},
		AccessPoints: []space.AccessPoint{
			{ID: "apX1", Coverage: []space.RoomID{"x1", "x2"}},
			{ID: "apX2", Coverage: []space.RoomID{"x2", "x3"}},
			{ID: "apY", Coverage: []space.RoomID{"y1", "y2"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	gX1, _ := b.RegionOf("apX1")
	if got := b.OverlappingAPs(gX1); len(got) != 2 || got[0] != "apX1" || got[1] != "apX2" {
		t.Fatalf("OverlappingAPs(%s) = %v, want [apX1 apX2]", gX1, got)
	}

	st := setupScene(t, b, map[event.DeviceID]space.APID{
		"d1":   "apX1",
		"near": "apX2",
		"far":  "apY",
	})
	aff := fixedAffinity{pair("d1", "near"): 0.8, pair("d1", "far"): 0.8}
	l := New(b, st, aff, nil, Options{UseStopConditions: false})
	res, err := l.Locate("d1", gX1, t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalNeighbors != 1 {
		t.Fatalf("TotalNeighbors = %d, want only the overlapping-region device", res.TotalNeighbors)
	}
	if len(res.LocalGraph) != 1 || res.LocalGraph[0].To != "near" {
		t.Errorf("neighbor set = %+v, want [near]", res.LocalGraph)
	}

	// The store-level lookup itself must already be scoped: the far device
	// is filtered by discovery, not by a post-hoc region check.
	active := st.ActiveDevicesAt(b.OverlappingAPs(gX1), t0.Add(-time.Hour), t0.Add(time.Hour))
	want := []event.DeviceID{"d1", "near"}
	if len(active) != 2 || active[0] != want[0] || active[1] != want[1] {
		t.Errorf("scoped ActiveDevicesAt = %v, want %v", active, want)
	}
}

// stubSource is a NeighborSource double recording the requested scope.
type stubSource struct {
	gotAPs     []space.APID
	gotStart   time.Time
	gotEnd     time.Time
	calls      int
	answerWith []event.DeviceID
}

func (s *stubSource) ActiveDevicesAt(aps []space.APID, start, end time.Time) []event.DeviceID {
	s.calls++
	s.gotAPs = aps
	s.gotStart, s.gotEnd = start, end
	return s.answerWith
}

// TestSetNeighborSource: an injected source replaces the store for
// discovery and receives the query region's overlap neighborhood.
func TestSetNeighborSource(t *testing.T) {
	b := paperBuilding(t)
	st := setupScene(t, b, map[event.DeviceID]space.APID{"d1": "wap3"})
	l := New(b, st, fixedAffinity{}, nil, Options{})
	src := &stubSource{}
	l.SetNeighborSource(src)
	g3, _ := b.RegionOf("wap3")
	if _, err := l.Locate("d1", g3, t0); err != nil {
		t.Fatal(err)
	}
	if src.calls != 1 {
		t.Fatalf("injected source consulted %d times, want 1", src.calls)
	}
	want := b.OverlappingAPs(g3)
	if len(src.gotAPs) != len(want) {
		t.Errorf("source got AP scope %v, want %v", src.gotAPs, want)
	}
	if !src.gotStart.Before(t0) || !src.gotEnd.After(t0) {
		t.Errorf("discovery window [%v, %v] does not surround t_q", src.gotStart, src.gotEnd)
	}
}
