package fine

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"locater/internal/event"
	"locater/internal/space"
	"locater/internal/store"
)

// equivTol is the posterior tolerance the optimized kernel must hold against
// the pre-refactor reference (ISSUE acceptance: 1e-12). I-FINE is bitwise
// identical; D-FINE differs only by the floating-point reordering of the
// cluster fold, orders of magnitude below this.
const equivTol = 1e-12

// randomScene builds a randomized building, store, and localizer options for
// one equivalence trial. Devices get events inside and outside the neighbor
// window, per-device deltas, random preferred rooms, time preferences, and
// crowd labels, so every prior/affinity path is exercised.
type scene struct {
	bld  *space.Building
	st   *store.Store
	opts Options
	dev  event.DeviceID
	g    space.RegionID
	tq   time.Time
	aff  PairAffinityProvider
	ord  NeighborOrderer
	lbl  *LabelStore
}

func randomScene(t *testing.T, rng *rand.Rand) scene {
	t.Helper()
	nRooms := 3 + rng.Intn(8)
	rooms := make([]space.Room, nRooms)
	roomIDs := make([]space.RoomID, nRooms)
	for i := range rooms {
		kind := space.Private
		if rng.Float64() < 0.4 {
			kind = space.Public
		}
		id := space.RoomID(fmt.Sprintf("r%02d", i))
		rooms[i] = space.Room{ID: id, Kind: kind}
		roomIDs[i] = id
	}
	nAPs := 2 + rng.Intn(4)
	aps := make([]space.AccessPoint, nAPs)
	for i := range aps {
		cov := map[space.RoomID]bool{}
		for len(cov) < 1+rng.Intn(nRooms) {
			cov[roomIDs[rng.Intn(nRooms)]] = true
		}
		var list []space.RoomID
		for r := range cov {
			list = append(list, r)
		}
		aps[i] = space.AccessPoint{ID: space.APID(fmt.Sprintf("ap%02d", i)), Coverage: list}
	}
	nDevs := 2 + rng.Intn(12)
	prefs := map[string][]space.RoomID{}
	devs := make([]event.DeviceID, nDevs)
	for i := range devs {
		devs[i] = event.DeviceID(fmt.Sprintf("dev%02d", i))
		if rng.Float64() < 0.5 {
			prefs[string(devs[i])] = []space.RoomID{roomIDs[rng.Intn(nRooms)]}
		}
	}
	bld, err := space.NewBuilding(space.Config{
		Name:           "equiv",
		Rooms:          rooms,
		AccessPoints:   aps,
		PreferredRooms: prefs,
	})
	if err != nil {
		t.Fatal(err)
	}

	tq := time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC)
	st := store.New(0)
	var evs []event.Event
	for _, d := range devs {
		// A handful of events near tq (neighbor-window candidates) and a
		// trail of history up to 8 weeks back (affinity inputs). Some events
		// land out of order to exercise the lazy re-sort under ScanEvents.
		n := 3 + rng.Intn(30)
		for j := 0; j < n; j++ {
			var ts time.Time
			if j < 3 {
				ts = tq.Add(time.Duration(rng.Intn(90)-45) * time.Minute)
			} else {
				ts = tq.Add(-time.Duration(rng.Intn(8*7*24)) * time.Hour)
			}
			evs = append(evs, event.Event{
				Device: d,
				Time:   ts,
				AP:     aps[rng.Intn(nAPs)].ID,
			})
		}
	}
	rng.Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })
	if _, err := st.Ingest(evs); err != nil {
		t.Fatal(err)
	}
	for _, d := range devs {
		if rng.Float64() < 0.7 {
			if err := st.SetDelta(d, time.Duration(2+rng.Intn(30))*time.Minute); err != nil {
				t.Fatal(err)
			}
		}
	}

	var lbl *LabelStore
	if rng.Float64() < 0.5 {
		lbl = NewLabelStore(float64(1 + rng.Intn(10)))
		for i := 0; i < rng.Intn(20); i++ {
			_ = lbl.Add(devs[rng.Intn(nDevs)], roomIDs[rng.Intn(nRooms)], tq)
		}
	}
	if rng.Float64() < 0.3 {
		d := devs[rng.Intn(nDevs)]
		_ = bld.SetTimePreferredRooms(string(d), []space.TimePreference{{
			StartMinute: 8 * 60, EndMinute: 12 * 60,
			Rooms: []space.RoomID{roomIDs[rng.Intn(nRooms)]},
		}})
	}

	// Half the trials use the store-backed provider (exercising the batched
	// sweep kernel against per-pair DeviceAffinity); half use a scripted
	// provider (exercising the per-pair fallback loop).
	var aff PairAffinityProvider
	if rng.Float64() < 0.5 {
		aff = NewStoreAffinity(st, 8*7*24*time.Hour)
	} else {
		f := fixedAffinity{}
		for i := 0; i < nDevs; i++ {
			for j := i + 1; j < nDevs; j++ {
				if rng.Float64() < 0.7 {
					f[pair(devs[i], devs[j])] = rng.Float64()
				}
			}
		}
		aff = f
	}
	var ord NeighborOrderer
	if rng.Float64() < 0.4 {
		ord = shuffleOrderer{seed: rng.Int63()}
	}

	variant := Independent
	if rng.Float64() < 0.5 {
		variant = Dependent
	}
	maxNeighbors := 0
	if rng.Float64() < 0.4 {
		maxNeighbors = 1 + rng.Intn(5)
	}
	opts := Options{
		Variant:           variant,
		UseStopConditions: rng.Float64() < 0.5,
		MaxNeighbors:      maxNeighbors,
		MinPairAffinity:   []float64{0, 0, 0.1}[rng.Intn(3)],
	}
	g, _ := bld.RegionOf(aps[rng.Intn(nAPs)].ID)
	return scene{
		bld: bld, st: st, opts: opts,
		dev: devs[rng.Intn(nDevs)], g: g, tq: tq,
		aff: aff, ord: ord, lbl: lbl,
	}
}

// shuffleOrderer deterministically permutes the neighbor set — a worst-case
// stand-in for the affinity-graph orderer that still satisfies the
// NeighborOrderer contract (returns a fresh slice).
type shuffleOrderer struct{ seed int64 }

func (o shuffleOrderer) OrderNeighbors(_ event.DeviceID, ns []event.DeviceID, _ time.Time) []event.DeviceID {
	out := make([]event.DeviceID, len(ns))
	copy(out, ns)
	rand.New(rand.NewSource(o.seed)).Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func newScenePair(s scene) *Localizer {
	l := New(s.bld, s.st, s.aff, s.ord, s.opts)
	if s.lbl != nil {
		l.SetLabelStore(s.lbl)
	}
	return l
}

func diffResults(t *testing.T, seed int64, got, want Result) {
	t.Helper()
	if got.Room != want.Room {
		t.Errorf("seed %d: Room = %s, reference %s", seed, got.Room, want.Room)
	}
	if got.ProcessedNeighbors != want.ProcessedNeighbors ||
		got.TotalNeighbors != want.TotalNeighbors ||
		got.StoppedEarly != want.StoppedEarly {
		t.Errorf("seed %d: processed/total/stopped = %d/%d/%v, reference %d/%d/%v",
			seed, got.ProcessedNeighbors, got.TotalNeighbors, got.StoppedEarly,
			want.ProcessedNeighbors, want.TotalNeighbors, want.StoppedEarly)
	}
	if len(got.Posterior) != len(want.Posterior) {
		t.Fatalf("seed %d: posterior sizes %d vs %d", seed, len(got.Posterior), len(want.Posterior))
	}
	for r, p := range want.Posterior {
		if math.Abs(got.Posterior[r]-p) > equivTol {
			t.Errorf("seed %d: posterior[%s] = %.17g, reference %.17g (Δ %.3g)",
				seed, r, got.Posterior[r], p, math.Abs(got.Posterior[r]-p))
		}
	}
	if math.Abs(got.Probability-want.Probability) > equivTol {
		t.Errorf("seed %d: probability %.17g vs %.17g", seed, got.Probability, want.Probability)
	}
	if len(got.LocalGraph) != len(want.LocalGraph) {
		t.Fatalf("seed %d: local graph %d vs %d edges", seed, len(got.LocalGraph), len(want.LocalGraph))
	}
	for i, e := range want.LocalGraph {
		ge := got.LocalGraph[i]
		if ge.From != e.From || ge.To != e.To || math.Abs(ge.Weight-e.Weight) > equivTol {
			t.Errorf("seed %d: edge %d = %+v, reference %+v", seed, i, ge, e)
		}
	}
}

// TestKernelMatchesReference fuzzes randomized scenes across I-FINE/D-FINE,
// stop conditions on/off, MaxNeighbors caps, store-backed and scripted
// affinity providers, orderers, labels, and time preferences, and checks the
// optimized kernel's answers against the preserved pre-refactor reference to
// 1e-12.
func TestKernelMatchesReference(t *testing.T) {
	trials := 300
	if testing.Short() {
		trials = 60
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randomScene(t, rng)
		l := newScenePair(s)
		want, errRef := l.ReferenceLocate(s.dev, s.g, s.tq)
		got, errNew := l.Locate(s.dev, s.g, s.tq)
		if (errRef == nil) != (errNew == nil) {
			t.Fatalf("seed %d: error mismatch: %v vs %v", seed, errNew, errRef)
		}
		if errRef != nil {
			continue
		}
		diffResults(t, seed, got, want)
		// A second run through the recycled scratch must be deterministic.
		again, err := l.Locate(s.dev, s.g, s.tq)
		if err != nil {
			t.Fatalf("seed %d: repeat: %v", seed, err)
		}
		diffResults(t, seed, again, want)
		if t.Failed() {
			t.Fatalf("seed %d: first mismatch, stopping", seed)
		}
	}
}

// TestKernelMatchesReferenceAllRegions sweeps every region of the paper
// building for every device with both variants — a dense, deterministic
// complement to the fuzz.
func TestKernelMatchesReferenceAllRegions(t *testing.T) {
	b := paperBuilding(t)
	conns := map[event.DeviceID]space.APID{"d1": "wap3", "d2": "wap4", "d3": "wap3", "d4": "wap4"}
	st := setupScene(t, b, conns)
	aff := fixedAffinity{
		pair("d1", "d2"): 0.6, pair("d1", "d3"): 0.3, pair("d1", "d4"): 0.8,
		pair("d2", "d3"): 0.5, pair("d3", "d4"): 0.2,
	}
	for _, variant := range []Variant{Independent, Dependent} {
		for _, stop := range []bool{true, false} {
			l := New(b, st, aff, nil, Options{Variant: variant, UseStopConditions: stop})
			for d := range conns {
				for _, g := range b.Regions() {
					want, err1 := l.ReferenceLocate(d, g, t0)
					got, err2 := l.Locate(d, g, t0)
					if (err1 == nil) != (err2 == nil) {
						t.Fatalf("%v/%v %s@%s: error mismatch %v vs %v", variant, stop, d, g, err2, err1)
					}
					if err1 != nil {
						continue
					}
					diffResults(t, -1, got, want)
				}
			}
		}
	}
}

// TestScratchPoolConcurrentLocate hammers one shared Localizer from many
// goroutines (the LocateBatch shape) and checks every concurrent answer
// against the serial reference — under -race this doubles as the data-race
// proof for the pooled scratch and arena reuse.
func TestScratchPoolConcurrentLocate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s scene
	var l *Localizer
	// Find a scene with at least a few neighbors so the arena is exercised.
	for {
		s = randomScene(t, rng)
		s.opts.Variant = Dependent
		s.opts.UseStopConditions = false
		l = newScenePair(s)
		res, err := l.Locate(s.dev, s.g, s.tq)
		if err == nil && res.TotalNeighbors >= 2 {
			break
		}
	}
	type q struct {
		dev event.DeviceID
		g   space.RegionID
	}
	var queries []q
	want := map[q]Result{}
	for _, g := range s.bld.Regions() {
		qq := q{dev: s.dev, g: g}
		res, err := l.Locate(s.dev, g, s.tq)
		if err != nil {
			continue
		}
		queries = append(queries, qq)
		want[qq] = res
	}
	if len(queries) == 0 {
		t.Skip("no answerable queries in scene")
	}
	workers := runtime.GOMAXPROCS(0) * 2
	var wg sync.WaitGroup
	errs := make(chan string, workers*len(queries))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 30; rep++ {
				qq := queries[(w+rep)%len(queries)]
				res, err := l.Locate(qq.dev, qq.g, s.tq)
				if err != nil {
					errs <- fmt.Sprintf("%v: %v", qq, err)
					return
				}
				ref := want[qq]
				if res.Room != ref.Room || math.Abs(res.Probability-ref.Probability) > equivTol {
					errs <- fmt.Sprintf("%v: %s/%.17g, want %s/%.17g", qq, res.Room, res.Probability, ref.Room, ref.Probability)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
