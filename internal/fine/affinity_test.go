package fine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"locater/internal/event"
	"locater/internal/space"
	"locater/internal/store"
)

var t0 = time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC)

// paperBuilding reproduces the running example of Section 4: region g3 with
// candidate rooms {2059, 2061, 2065, 2069, 2099}, 2061 the preferred room
// of device d1, 2065 the only public room.
func paperBuilding(t testing.TB) *space.Building {
	t.Helper()
	b, err := space.NewBuilding(space.Config{
		Name: "paper",
		Rooms: []space.Room{
			{ID: "2059", Kind: space.Private},
			{ID: "2061", Kind: space.Private},
			{ID: "2065", Kind: space.Public},
			{ID: "2069", Kind: space.Private},
			{ID: "2099", Kind: space.Private},
			{ID: "2068", Kind: space.Private},
		},
		AccessPoints: []space.AccessPoint{
			{ID: "wap3", Coverage: []space.RoomID{"2059", "2061", "2065", "2069", "2099"}},
			{ID: "wap4", Coverage: []space.RoomID{"2065", "2069", "2099", "2068"}},
		},
		PreferredRooms: map[string][]space.RoomID{
			"d1": {"2061"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestWeightsValidate(t *testing.T) {
	if err := DefaultWeights().Validate(); err != nil {
		t.Errorf("default weights invalid: %v", err)
	}
	bad := []Weights{
		{Preferred: 0.3, Public: 0.4, Private: 0.3}, // not decreasing
		{Preferred: 0.5, Public: 0.3, Private: 0.3}, // pb == pr... still not strictly decreasing
		{Preferred: 0.6, Public: 0.3, Private: 0.2}, // sums to 1.1
		{Preferred: 0.7, Public: 0.3, Private: 0},   // zero private
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d: weights %+v should be invalid", i, w)
		}
	}
}

// TestRoomAffinitiesPaperExample checks the Section 4.1 worked example:
// with w = {0.5, 0.3, 0.2}, α(d1, 2061) = 0.5, α(d1, 2065) = 0.3, and the
// three remaining private rooms share 0.2/3 ≈ 0.066.
func TestRoomAffinitiesPaperExample(t *testing.T) {
	b := paperBuilding(t)
	w := Weights{Preferred: 0.5, Public: 0.3, Private: 0.2}
	g3, _ := b.RegionOf("wap3")
	aff := RoomAffinities(b, w, "d1", g3)

	if math.Abs(aff["2061"]-0.5) > 1e-9 {
		t.Errorf("α(d1,2061) = %v, want 0.5", aff["2061"])
	}
	if math.Abs(aff["2065"]-0.3) > 1e-9 {
		t.Errorf("α(d1,2065) = %v, want 0.3", aff["2065"])
	}
	for _, r := range []space.RoomID{"2059", "2069", "2099"} {
		if math.Abs(aff[r]-0.2/3) > 1e-9 {
			t.Errorf("α(d1,%s) = %v, want %v", r, aff[r], 0.2/3)
		}
	}
	sum := 0.0
	for _, v := range aff {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("affinities sum to %v", sum)
	}
}

func TestRoomAffinitiesNoPreferred(t *testing.T) {
	b := paperBuilding(t)
	g3, _ := b.RegionOf("wap3")
	// d2 has no preferred rooms: the preferred mass is redistributed, so
	// public + private shares renormalize to 1.
	aff := RoomAffinities(b, DefaultWeights(), "d2", g3)
	sum := 0.0
	for _, v := range aff {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("affinities sum to %v, want 1", sum)
	}
	// Public room 2065 gets w_pb/(w_pb+w_pr) = 0.3/0.4 = 0.75.
	if math.Abs(aff["2065"]-0.75) > 1e-9 {
		t.Errorf("public affinity = %v, want 0.75", aff["2065"])
	}
}

func TestRoomAffinitiesUnknownRegion(t *testing.T) {
	b := paperBuilding(t)
	if aff := RoomAffinities(b, DefaultWeights(), "d1", "ghost"); aff != nil {
		t.Errorf("unknown region should yield nil, got %v", aff)
	}
}

// Property: room affinities are a probability distribution and respect the
// class ordering preferred ≥ public ≥ private per room whenever all classes
// are present.
func TestRoomAffinitiesProperty(t *testing.T) {
	b := paperBuilding(t)
	g3, _ := b.RegionOf("wap3")
	f := func(a, bw, c uint8) bool {
		// Build valid random weights.
		x := 1 + float64(a%50)
		y := x + 1 + float64(bw%50)
		z := y + 1 + float64(c%50)
		total := x + y + z
		w := Weights{Preferred: z / total, Public: y / total, Private: x / total}
		if err := w.Validate(); err != nil {
			return true // numerically degenerate; skip
		}
		aff := RoomAffinities(b, w, "d1", g3)
		sum := 0.0
		for _, v := range aff {
			if v < 0 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// Per-room ordering: preferred room ≥ public room ≥ private rooms.
		return aff["2061"] >= aff["2065"] && aff["2065"] >= aff["2059"]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceAffinity(t *testing.T) {
	st := store.New(0)
	st.SetDelta("a", 5*time.Minute)
	st.SetDelta("b", 5*time.Minute)
	// a and b co-located on apX for 3 events each (within validity), then a
	// alone for 3 events.
	var evs []event.Event
	for i := 0; i < 3; i++ {
		ts := t0.Add(time.Duration(i) * 20 * time.Minute)
		evs = append(evs,
			event.Event{Device: "a", Time: ts, AP: "apX"},
			event.Event{Device: "b", Time: ts.Add(time.Minute), AP: "apX"},
		)
	}
	for i := 0; i < 3; i++ {
		evs = append(evs, event.Event{Device: "a", Time: t0.Add(5*time.Hour + time.Duration(i)*20*time.Minute), AP: "apY"})
	}
	st.Ingest(evs)

	aff := DeviceAffinity(st, "a", "b", t0.Add(-time.Hour), t0.Add(10*time.Hour))
	// Intersecting: 3 of a's events + 3 of b's events = 6; total = 9.
	want := 6.0 / 9.0
	if math.Abs(aff-want) > 1e-9 {
		t.Errorf("device affinity = %v, want %v", aff, want)
	}
	// Empty history → 0.
	if got := DeviceAffinity(st, "a", "b", t0.Add(-10*time.Hour), t0.Add(-9*time.Hour)); got != 0 {
		t.Errorf("empty-window affinity = %v", got)
	}
	// Symmetric.
	rev := DeviceAffinity(st, "b", "a", t0.Add(-time.Hour), t0.Add(10*time.Hour))
	if math.Abs(aff-rev) > 1e-9 {
		t.Errorf("affinity not symmetric: %v vs %v", aff, rev)
	}
}

func TestDeviceAffinityDifferentAPsDontCount(t *testing.T) {
	st := store.New(0)
	st.SetDelta("a", 5*time.Minute)
	st.SetDelta("b", 5*time.Minute)
	st.Ingest([]event.Event{
		{Device: "a", Time: t0, AP: "apX"},
		{Device: "b", Time: t0.Add(time.Minute), AP: "apY"},
	})
	if got := DeviceAffinity(st, "a", "b", t0.Add(-time.Hour), t0.Add(time.Hour)); got != 0 {
		t.Errorf("different-AP events should not intersect: %v", got)
	}
}

// TestGroupAffinityPaperExample reproduces the Section 4.1 numeric example:
// α({d1,d2}) = 0.4, P(@(d1,2065)|Ris) = 0.69..., P(@(d2,2065)|Ris) = 0.44,
// giving α({d1,d2}, 2065) ≈ 0.12.
func TestGroupAffinityPaperExample(t *testing.T) {
	condD1 := 0.3 / (0.3 + 0.06 + 0.06)
	condD2 := 0.4 / (0.4 + 0.01 + 0.5)
	got := GroupAffinity(0.4, []float64{condD1, condD2})
	if math.Abs(got-0.4*condD1*condD2) > 1e-12 {
		t.Errorf("group affinity = %v", got)
	}
	if math.Abs(got-0.121) > 0.005 {
		t.Errorf("group affinity = %v, want ≈ 0.12 (paper)", got)
	}
}

func TestGroupAffinityZeroCases(t *testing.T) {
	if GroupAffinity(0, []float64{0.5}) != 0 {
		t.Error("zero device affinity → zero group affinity")
	}
	if GroupAffinity(0.5, []float64{0.5, 0}) != 0 {
		t.Error("zero conditional → zero group affinity")
	}
}

func TestConditionalOverRooms(t *testing.T) {
	aff := map[space.RoomID]float64{"a": 0.3, "b": 0.06, "c": 0.06, "d": 0.5}
	ris := []space.RoomID{"a", "b", "c"}
	cond := ConditionalOverRooms(aff, ris)
	if math.Abs(cond["a"]-0.3/0.42) > 1e-9 {
		t.Errorf("cond[a] = %v", cond["a"])
	}
	sum := 0.0
	for _, r := range ris {
		sum += cond[r]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("conditional sums to %v", sum)
	}
	// Zero-mass set → uniform.
	cond = ConditionalOverRooms(map[space.RoomID]float64{}, ris)
	for _, r := range ris {
		if math.Abs(cond[r]-1.0/3) > 1e-9 {
			t.Errorf("uniform fallback broken: %v", cond)
		}
	}
	// Empty room set → empty result.
	if got := ConditionalOverRooms(aff, nil); len(got) != 0 {
		t.Errorf("empty rooms should give empty conditionals: %v", got)
	}
}

// Property: conditional distributions always sum to 1 over their support.
func TestConditionalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		aff := map[space.RoomID]float64{}
		var rooms []space.RoomID
		for i := 0; i < n; i++ {
			r := space.RoomID(string(rune('a' + i)))
			rooms = append(rooms, r)
			aff[r] = rng.Float64()
		}
		cond := ConditionalOverRooms(aff, rooms)
		sum := 0.0
		for _, r := range rooms {
			if cond[r] < 0 || cond[r] > 1+1e-9 {
				return false
			}
			sum += cond[r]
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreAffinityProvider(t *testing.T) {
	st := store.New(0)
	st.SetDelta("a", 5*time.Minute)
	st.SetDelta("b", 5*time.Minute)
	st.Ingest([]event.Event{
		{Device: "a", Time: t0, AP: "apX"},
		{Device: "b", Time: t0.Add(time.Minute), AP: "apX"},
	})
	p := NewStoreAffinity(st, 24*time.Hour)
	if got := p.PairAffinity("a", "b", t0.Add(time.Hour)); got <= 0 {
		t.Errorf("provider affinity = %v, want > 0", got)
	}
	// Outside the window → 0.
	if got := p.PairAffinity("a", "b", t0.Add(48*time.Hour)); got != 0 {
		t.Errorf("stale affinity = %v, want 0", got)
	}
}
