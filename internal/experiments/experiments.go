// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section 6). Each driver generates (or reuses) a
// simulated workload, assembles the systems under test — Baseline1,
// Baseline2, I-LOCATER, D-LOCATER, with or without the caching engine — and
// reports the same rows/series the paper reports, as printable tables.
//
// The absolute numbers differ from the paper (the substrate is a simulator,
// not the DBH testbed); the experiments reproduce the paper's shape: system
// orderings, saturation curves, and efficiency trends. EXPERIMENTS.md
// records paper-vs-measured values for every driver.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"locater"
	"locater/internal/baseline"
	"locater/internal/eval"
	"locater/internal/sim"
	"locater/internal/space"
	"locater/internal/store"
)

// Params scales the experiment workloads. The zero value selects defaults
// sized for a laptop-scale run (~tens of seconds per experiment).
type Params struct {
	// PerClass is the number of simulated people per predictability class
	// in the DBH-like dataset. Default 6 (24 people).
	PerClass int
	// Days is the length of the simulated trace. Default 70 (10 weeks:
	// up to 9 weeks of history plus a query week, as in Fig. 8).
	Days int
	// Queries is the per-experiment query count. Default 400.
	Queries int
	// Seed drives dataset generation and query sampling.
	Seed int64
	// HistoryDays is the training window for LOCATER variants. Default 56
	// (8 weeks, the paper's choice for the comparison experiments).
	HistoryDays int
	// Fast trades fidelity for speed in self-training (batch promotions,
	// capped training gaps). Enabled by default.
	Fast bool
}

// WithDefaults fills unset fields.
func (p Params) WithDefaults() Params {
	if p.PerClass <= 0 {
		p.PerClass = 6
	}
	if p.Days <= 0 {
		p.Days = 70
	}
	if p.Queries <= 0 {
		p.Queries = 400
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.HistoryDays <= 0 {
		p.HistoryDays = 56
	}
	return p
}

// simStart is the fixed simulation start (a Monday) for all experiments.
var simStart = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)

// dbhCache memoizes generated DBH datasets per parameter set: dataset
// generation is deterministic, and several experiments share the workload.
var (
	dbhMu    sync.Mutex
	dbhCache = map[string]*sim.Dataset{}
)

// BuildDBH generates (or returns the cached) DBH-like dataset.
func BuildDBH(p Params) (*sim.Dataset, error) {
	p = p.WithDefaults()
	key := fmt.Sprintf("dbh/%d/%d/%d", p.PerClass, p.Days, p.Seed)
	dbhMu.Lock()
	defer dbhMu.Unlock()
	if ds, ok := dbhCache[key]; ok {
		return ds, nil
	}
	sc, err := sim.DBH(p.PerClass)
	if err != nil {
		return nil, err
	}
	ds, err := sim.Generate(sc.Config(simStart, p.Days, p.Seed))
	if err != nil {
		return nil, err
	}
	dbhCache[key] = ds
	return ds, nil
}

// SystemSpec names a system under test.
type SystemSpec struct {
	Name string
	// Variant applies to LOCATER systems.
	Variant locater.Variant
	// Cache enables the caching engine.
	Cache bool
	// Baseline selects Baseline1 (1) or Baseline2 (2); 0 means LOCATER.
	Baseline int
	// Weights overrides the room-affinity weights (LOCATER only).
	Weights locater.Weights
	// HistoryDays overrides Params.HistoryDays (LOCATER only).
	HistoryDays int
	// DisableStop disables Algorithm 2's stop conditions (Fig. 11).
	DisableStop bool
	// TauLow/TauHigh override coarse thresholds when positive (Fig. 7).
	TauLow, TauHigh time.Duration
}

// BuildSystem assembles the named system over the dataset and wraps it as an
// eval.System.
func BuildSystem(ds *sim.Dataset, p Params, spec SystemSpec) (eval.System, error) {
	p = p.WithDefaults()
	if spec.Baseline != 0 {
		st, err := ingestedStore(ds, p)
		if err != nil {
			return nil, err
		}
		var bs *baseline.System
		if spec.Baseline == 1 {
			bs = baseline.NewBaseline1(ds.Building, st, p.Seed)
		} else {
			bs = baseline.NewBaseline2(ds.Building, st, p.Seed)
		}
		return eval.SystemFunc(func(q eval.Query) (eval.Answer, error) {
			r, err := bs.Locate(q.Device, q.Time)
			if err != nil {
				return eval.Answer{}, err
			}
			return eval.Answer{Outside: r.Outside, Region: r.Region, Room: r.Room}, nil
		}), nil
	}

	historyDays := p.HistoryDays
	if spec.HistoryDays > 0 {
		historyDays = spec.HistoryDays
	}
	cfg := locater.Config{
		Building:    ds.Building,
		Variant:     spec.Variant,
		Weights:     spec.Weights,
		EnableCache: spec.Cache,
		HistoryDays: historyDays,
		// The affinity window tracks the coarse history window so the
		// Fig. 8 sweep varies both stages' historical knowledge.
		HistoryWindow:         time.Duration(historyDays) * 24 * time.Hour,
		DisableStopConditions: spec.DisableStop,
		TauLow:                spec.TauLow,
		TauHigh:               spec.TauHigh,
	}
	if p.Fast {
		cfg.PromotionsPerRound = 8
		cfg.MaxTrainingGaps = 150
	}
	sys, err := locater.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.Ingest(ds.Events); err != nil {
		return nil, err
	}
	sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute)
	return eval.SystemFunc(func(q eval.Query) (eval.Answer, error) {
		r, err := sys.Locate(q.Device, q.Time)
		if err != nil {
			return eval.Answer{}, err
		}
		return eval.Answer{Outside: r.Outside, Region: r.Region, Room: r.Room}, nil
	}), nil
}

// ingestedStore builds a plain store with the dataset's events, for the
// baseline systems.
func ingestedStore(ds *sim.Dataset, p Params) (*store.Store, error) {
	st := store.New(0)
	if _, err := st.Ingest(ds.Events); err != nil {
		return nil, err
	}
	st.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute)
	return st, nil
}

// QueryWindow returns the default query sampling window: the last week of
// the dataset, so LOCATER has history behind every query.
func QueryWindow(ds *sim.Dataset) (time.Time, time.Time) {
	end := ds.Config.Start.AddDate(0, 0, ds.Config.Days)
	start := end.AddDate(0, 0, -7)
	if start.Before(ds.Config.Start) {
		start = ds.Config.Start
	}
	return start, end
}

// SampleDefaultQueries draws the standard workload: daytime-biased queries
// over the last week, 60% at truly-inside times (mirroring the paper's
// diary/camera ground truth skew).
func SampleDefaultQueries(ds *sim.Dataset, p Params, devices []locater.DeviceID) ([]eval.Query, error) {
	p = p.WithDefaults()
	from, to := QueryWindow(ds)
	return eval.SampleQueries(ds, eval.WorkloadOptions{
		NumQueries:  p.Queries,
		Seed:        p.Seed + 17,
		Devices:     devices,
		From:        from,
		To:          to,
		DaytimeOnly: true,
		InsideBias:  0.6,
	})
}

// WarmedSystem assembles the canonical warm benchmark system: build the
// DBH workload, ingest it, estimate per-device deltas, and answer every
// sampled query once so per-device models and the affinity cache are hot.
// It returns the system plus the warmed batch queries. Shared by the root
// parallel benchmarks and locater-bench -throughput so both measure the
// same steady state.
func WarmedSystem(p Params, variant locater.Variant) (*locater.System, []locater.Query, error) {
	return WarmedSystemOpts(p, variant, nil)
}

// WarmedSystemOpts is WarmedSystem with a config hook: mutate (when non-nil)
// adjusts the default configuration before the system is assembled — e.g.
// disabling the result cache to benchmark the uncached query path.
func WarmedSystemOpts(p Params, variant locater.Variant, mutate func(*locater.Config)) (*locater.System, []locater.Query, error) {
	p = p.WithDefaults()
	ds, err := BuildDBH(p)
	if err != nil {
		return nil, nil, err
	}
	queries, err := SampleDefaultQueries(ds, p, nil)
	if err != nil {
		return nil, nil, err
	}
	cfg := locater.Config{
		Building:           ds.Building,
		Variant:            variant,
		EnableCache:        true,
		HistoryDays:        14,
		PromotionsPerRound: 8,
		MaxTrainingGaps:    100,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := locater.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := sys.Ingest(ds.Events); err != nil {
		return nil, nil, err
	}
	sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute)
	batch := make([]locater.Query, len(queries))
	for i, q := range queries {
		batch[i] = locater.Query{Device: q.Device, Time: q.Time}
	}
	for _, r := range sys.LocateBatch(batch, 0) {
		if r.Err != nil {
			return nil, nil, fmt.Errorf("warm-up query (%s, %v): %w", r.Query.Device, r.Query.Time, r.Err)
		}
	}
	return sys, batch, nil
}

// Table is a printable experiment result in the paper's row/column shape.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// pct formats a fraction as a rounded percentage.
func pct(f float64) string { return fmt.Sprintf("%.0f", f*100) }

// pct1 formats a fraction as a percentage with one decimal.
func pct1(f float64) string { return fmt.Sprintf("%.1f", f*100) }

// triple formats Pc|Pf|Po like the paper's Table 3 cells.
func triple(p eval.Precision) string {
	return fmt.Sprintf("%s|%s|%s", pct(p.Pc()), pct(p.Pf()), pct(p.Po()))
}

// bandsOf groups the dataset's devices by predictability band, keeping only
// the paper's four bands.
func bandsOf(ds *sim.Dataset) map[string][]locater.DeviceID {
	out := make(map[string][]locater.DeviceID)
	for _, band := range eval.Bands() {
		devs := eval.DevicesInBand(ds, band)
		if len(devs) > 0 {
			out[band] = devs
		}
	}
	return out
}

// sortedKeys returns map keys sorted.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Registry lists all experiment drivers by their paper artifact name.
type Driver struct {
	Name string
	// Run executes the experiment and returns its table(s).
	Run func(p Params) ([]*Table, error)
	// Description summarizes the paper result being reproduced.
	Description string
}

// All returns the drivers in paper order.
func All() []Driver {
	return []Driver{
		{Name: "fig7", Run: Fig7Thresholds, Description: "coarse precision vs thresholds τl, τh"},
		{Name: "table2", Run: Table2Weights, Description: "fine precision vs room-affinity weight combinations"},
		{Name: "fig8", Run: Fig8History, Description: "precision vs weeks of historical data"},
		{Name: "fig9", Run: Fig9CachingPrecision, Description: "precision impact of the caching engine"},
		{Name: "table3", Run: Table3Groups, Description: "precision per predictability group vs baselines"},
		{Name: "table4", Run: Table4Scenarios, Description: "precision per profile on simulated scenarios"},
		{Name: "fig10", Run: Fig10Efficiency, Description: "per-query latency vs number of processed queries"},
		{Name: "fig11", Run: Fig11StopConditions, Description: "latency with vs without stop conditions"},
		{Name: "fig12", Run: Fig12Caching, Description: "latency with vs without caching"},
	}
}

// Find returns the driver with the given name.
func Find(name string) (Driver, bool) {
	for _, d := range All() {
		if d.Name == name {
			return d, true
		}
	}
	return Driver{}, false
}

// ensure space import is used (building accessors appear in drivers).
var _ = space.Public
