package experiments

import (
	"fmt"
	"time"

	"locater"
	"locater/internal/eval"
)

// efficiencyParams shrinks the default workload for the timing experiments:
// latency curves need many queries, not many devices.
func efficiencyParams(p Params) Params {
	p = p.WithDefaults()
	return p
}

// Fig10Efficiency reproduces Figure 10: average per-query latency as a
// function of the number of processed queries, for I-LOCATER+C and
// D-LOCATER+C, on two workloads: the "university" set (queries for a small
// set of ground-truth devices) and the "generated" set (queries for
// uniformly drawn devices).
//
// Paper shape: D-LOCATER+C starts expensive (empty affinity graph: first
// queries cost seconds) and converges to ~5x cheaper as the graph warms up;
// I-LOCATER+C stays flat and cheapest. The convergence point arrives later
// on the generated set because many more devices must enter the graph.
func Fig10Efficiency(p Params) ([]*Table, error) {
	p = efficiencyParams(p)
	ds, err := BuildDBH(p)
	if err != nil {
		return nil, err
	}

	// University-style workload: a handful of devices queried repeatedly.
	truthDevs := ds.Truth.Devices()
	if len(truthDevs) > 8 {
		truthDevs = truthDevs[:8]
	}
	uniQueries, err := SampleDefaultQueries(ds, p, truthDevs)
	if err != nil {
		return nil, err
	}
	// Generated workload: all devices, uniform times.
	from, to := QueryWindow(ds)
	genQueries, err := eval.SampleQueries(ds, eval.WorkloadOptions{
		NumQueries: p.Queries,
		Seed:       p.Seed + 101,
		From:       from, To: to,
	})
	if err != nil {
		return nil, err
	}

	var tables []*Table
	for _, wl := range []struct {
		name    string
		queries []eval.Query
	}{
		{"university", uniQueries},
		{"generated", genQueries},
	} {
		t := &Table{
			Title:  fmt.Sprintf("Fig 10 (%s): avg per-query time vs #processed queries", wl.name),
			Header: []string{"#queries", "I-LOCATER+C (ms)", "D-LOCATER+C (ms)"},
		}
		series := map[string][]time.Duration{}
		for _, v := range []struct {
			name    string
			variant locater.Variant
		}{
			{"I", locater.IndependentVariant},
			{"D", locater.DependentVariant},
		} {
			sys, err := BuildSystem(ds, p, SystemSpec{Name: v.name, Variant: v.variant, Cache: true})
			if err != nil {
				return nil, err
			}
			timed, err := eval.Time(sys, wl.queries)
			if err != nil {
				return nil, err
			}
			series[v.name] = timed.PerQuery
		}
		n := len(wl.queries)
		for _, checkpoint := range checkpoints(n) {
			iAvg := averageOf(series["I"], checkpoint)
			dAvg := averageOf(series["D"], checkpoint)
			t.AddRow(fmt.Sprintf("%d", checkpoint), ms(iAvg), ms(dAvg))
		}
		t.Notes = append(t.Notes,
			"paper: D+C warms up (first queries are several times slower than converged), I+C stays flat")
		tables = append(tables, t)
	}
	return tables, nil
}

// checkpoints picks the x-axis of the latency figures: 1, then ~evenly
// spaced counts up to n.
func checkpoints(n int) []int {
	if n <= 1 {
		return []int{n}
	}
	out := []int{1}
	for _, f := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		c := int(f * float64(n))
		if c > out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// averageOf computes the running average of the first n samples.
func averageOf(samples []time.Duration, n int) time.Duration {
	if n > len(samples) {
		n = len(samples)
	}
	if n == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range samples[:n] {
		sum += s
	}
	return sum / time.Duration(n)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// Fig11StopConditions reproduces Figure 11: average per-query latency of
// I-LOCATER with and without Algorithm 2's loose stop conditions, on both
// workloads.
//
// Paper shape: without stop conditions every neighbor is processed and
// queries are substantially slower; the loose conditions terminate early
// with no precision loss (precision deltas are reported alongside).
func Fig11StopConditions(p Params) ([]*Table, error) {
	p = efficiencyParams(p)
	ds, err := BuildDBH(p)
	if err != nil {
		return nil, err
	}
	queries, err := SampleDefaultQueries(ds, p, nil)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Fig 11: I-LOCATER avg per-query time, stop conditions on/off",
		Header: []string{"config", "avg time (ms)", "Po (%)"},
	}
	for _, cfg := range []struct {
		name    string
		disable bool
	}{
		{"with stop conditions", false},
		{"without stop conditions", true},
	} {
		sys, err := BuildSystem(ds, p, SystemSpec{
			Name: cfg.name, Variant: locater.IndependentVariant, DisableStop: cfg.disable,
		})
		if err != nil {
			return nil, err
		}
		timed, err := eval.Time(sys, queries)
		if err != nil {
			return nil, err
		}
		prec := eval.Score(ds.Building, sys, queries)
		t.AddRow(cfg.name, ms(timed.Average()), pct1(prec.Po()))
	}
	t.Notes = append(t.Notes,
		"paper: early stop brings a considerable latency improvement without quality loss")
	return []*Table{t}, nil
}

// Fig12Caching reproduces Figure 12: average per-query latency of
// D-LOCATER with and without the caching engine.
//
// Paper shape: caching cuts the average per-query cost by roughly 5x
// (≈5 s → ≈1 s on the paper's testbed).
func Fig12Caching(p Params) ([]*Table, error) {
	p = efficiencyParams(p)
	ds, err := BuildDBH(p)
	if err != nil {
		return nil, err
	}
	queries, err := SampleDefaultQueries(ds, p, nil)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Fig 12: D-LOCATER avg per-query time, caching on/off",
		Header: []string{"config", "avg time (ms)"},
	}
	for _, cfg := range []struct {
		name  string
		cache bool
	}{
		{"D-LOCATER (no cache)", false},
		{"D-LOCATER+C (cached)", true},
	} {
		sys, err := BuildSystem(ds, p, SystemSpec{
			Name: cfg.name, Variant: locater.DependentVariant, Cache: cfg.cache,
		})
		if err != nil {
			return nil, err
		}
		timed, err := eval.Time(sys, queries)
		if err != nil {
			return nil, err
		}
		t.AddRow(cfg.name, ms(timed.Average()))
	}
	t.Notes = append(t.Notes, "paper: caching reduces D-LOCATER's per-query cost ≈5x")
	return []*Table{t}, nil
}
