package experiments

import (
	"fmt"
	"time"

	"locater"
	"locater/internal/eval"
	"locater/internal/sim"
)

// Table3Groups reproduces Table 3: Pc|Pf|Po per predictability group
// ([40,55), [55,70), [70,85), [85,100)) for Baseline1, Baseline2,
// I-LOCATER, and D-LOCATER, using 8 weeks of history.
//
// Paper shape: both LOCATER variants beat both baselines in every group,
// D ≥ I, and precision rises with predictability; the single exception is
// Baseline2's fine precision on the most predictable group, where always
// answering the preferred room is near-unbeatable.
func Table3Groups(p Params) ([]*Table, error) {
	p = p.WithDefaults()
	ds, err := BuildDBH(p)
	if err != nil {
		return nil, err
	}
	bands := bandsOf(ds)

	specs := []SystemSpec{
		{Name: "Baseline1", Baseline: 1},
		{Name: "Baseline2", Baseline: 2},
		{Name: "I-LOCATER", Variant: locater.IndependentVariant},
		{Name: "D-LOCATER", Variant: locater.DependentVariant},
	}

	t := &Table{
		Title:  "Table 3: precision (Pc|Pf|Po, %) per predictability group",
		Header: append([]string{"system"}, eval.Bands()...),
	}
	for _, spec := range specs {
		sys, err := BuildSystem(ds, p, spec)
		if err != nil {
			return nil, fmt.Errorf("building %s: %w", spec.Name, err)
		}
		row := []string{spec.Name}
		for _, band := range eval.Bands() {
			devs := bands[band]
			if len(devs) == 0 {
				row = append(row, "-")
				continue
			}
			queries, err := SampleDefaultQueries(ds, p, devs)
			if err != nil {
				return nil, err
			}
			prec := eval.Score(ds.Building, sys, queries)
			row = append(row, triple(prec))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: LOCATER wins everywhere except Baseline2's Pf on [85,100); D-LOCATER ≥ I-LOCATER")
	return []*Table{t}, nil
}

// Fig7Thresholds reproduces Figure 7: coarse precision Pc as a function of
// the bootstrap thresholds. Left series: τl ∈ {10..30} min with τh fixed at
// 180; right series: τh ∈ {60..180} min with τl fixed at 20.
//
// Paper shape: Pc peaks around τl = 20 and then dips slightly; Pc grows
// with τh and levels off near 170–180.
func Fig7Thresholds(p Params) ([]*Table, error) {
	p = p.WithDefaults()
	ds, err := BuildDBH(p)
	if err != nil {
		return nil, err
	}
	queries, err := SampleDefaultQueries(ds, p, nil)
	if err != nil {
		return nil, err
	}

	coarsePc := func(tauLow, tauHigh time.Duration) (float64, error) {
		spec := SystemSpec{
			Name:    "I-LOCATER",
			Variant: locater.IndependentVariant,
			TauLow:  tauLow, TauHigh: tauHigh,
		}
		sys, err := BuildSystem(ds, p, spec)
		if err != nil {
			return 0, err
		}
		prec := eval.Score(ds.Building, sys, queries)
		return prec.Pc(), nil
	}

	left := &Table{
		Title:  "Fig 7 (left): coarse precision vs τl (τh = 180 min)",
		Header: []string{"τl (min)", "Pc (%)"},
	}
	for _, tl := range []int{10, 15, 20, 25, 30} {
		pc, err := coarsePc(time.Duration(tl)*time.Minute, 180*time.Minute)
		if err != nil {
			return nil, err
		}
		left.AddRow(fmt.Sprintf("%d", tl), pct1(pc))
	}
	left.Notes = append(left.Notes, "paper: peak at τl = 20, slight decline after")

	right := &Table{
		Title:  "Fig 7 (right): coarse precision vs τh (τl = 20 min)",
		Header: []string{"τh (min)", "Pc (%)"},
	}
	for _, th := range []int{60, 80, 100, 120, 140, 160, 180} {
		pc, err := coarsePc(20*time.Minute, time.Duration(th)*time.Minute)
		if err != nil {
			return nil, err
		}
		right.AddRow(fmt.Sprintf("%d", th), pct1(pc))
	}
	right.Notes = append(right.Notes, "paper: Pc rises with τh, plateaus beyond ~170")
	return []*Table{left, right}, nil
}

// Table2Weights reproduces Table 2: fine precision Pf for the four weight
// combinations C1 = {.7,.2,.1}, C2 = {.6,.3,.1}, C3 = {.5,.3,.2},
// C4 = {.5,.4,.1}, for I-FINE and D-FINE.
//
// Paper shape: all combinations score similarly (C2 slightly best) and
// D-FINE beats I-FINE by a few points on average.
func Table2Weights(p Params) ([]*Table, error) {
	p = p.WithDefaults()
	ds, err := BuildDBH(p)
	if err != nil {
		return nil, err
	}
	queries, err := SampleDefaultQueries(ds, p, nil)
	if err != nil {
		return nil, err
	}

	combos := []struct {
		name string
		w    locater.Weights
	}{
		{"C1", locater.Weights{Preferred: 0.7, Public: 0.2, Private: 0.1}},
		{"C2", locater.Weights{Preferred: 0.6, Public: 0.3, Private: 0.1}},
		{"C3", locater.Weights{Preferred: 0.5, Public: 0.3, Private: 0.2}},
		{"C4", locater.Weights{Preferred: 0.5, Public: 0.4, Private: 0.1}},
	}
	t := &Table{
		Title:  "Table 2: fine precision Pf (%) vs room-affinity weights",
		Header: []string{"Pf", "C1", "C2", "C3", "C4"},
	}
	for _, variant := range []struct {
		name string
		v    locater.Variant
	}{
		{"I-FINE", locater.IndependentVariant},
		{"D-FINE", locater.DependentVariant},
	} {
		row := []string{variant.name}
		for _, c := range combos {
			sys, err := BuildSystem(ds, p, SystemSpec{
				Name: variant.name, Variant: variant.v, Weights: c.w,
			})
			if err != nil {
				return nil, err
			}
			prec := eval.Score(ds.Building, sys, queries)
			row = append(row, pct1(prec.Pf()))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "paper: C2 slightly best; D-FINE ≈ +4.6% over I-FINE on average")
	return []*Table{t}, nil
}

// Fig8History reproduces Figure 8: Pc, Pf, Po as a function of the weeks of
// historical data (0–9) for the [40,55) and [55,70) predictability groups.
//
// Paper shape: coarse precision grows and plateaus around 8 weeks; fine
// precision roughly doubles from 0 to 1 week and plateaus around 3 weeks;
// the more predictable group dominates everywhere.
func Fig8History(p Params) ([]*Table, error) {
	p = p.WithDefaults()
	ds, err := BuildDBH(p)
	if err != nil {
		return nil, err
	}
	bands := bandsOf(ds)
	groups := []string{"[40,55)", "[55,70)"}

	variants := []struct {
		name string
		v    locater.Variant
	}{
		{"I", locater.IndependentVariant},
		{"D", locater.DependentVariant},
	}

	coarseT := &Table{
		Title:  "Fig 8a: coarse precision Pc (%) vs weeks of history",
		Header: []string{"weeks", "[40,55)", "[55,70)"},
	}
	fineT := &Table{
		Title:  "Fig 8b: fine precision Pf (%) vs weeks of history",
		Header: []string{"weeks", "I [40,55)", "I [55,70)", "D [40,55)", "D [55,70)"},
	}
	overallT := &Table{
		Title:  "Fig 8c: overall precision Po (%) vs weeks of history",
		Header: []string{"weeks", "I [40,55)", "I [55,70)", "D [40,55)", "D [55,70)"},
	}

	weeksList := []int{0, 1, 2, 3, 5, 7, 9}
	for _, weeks := range weeksList {
		historyDays := weeks * 7
		if historyDays == 0 {
			historyDays = 1 // no history: degenerate single day
		}
		// Precision per (variant, band).
		type key struct{ variant, band string }
		prec := make(map[key]eval.Precision)
		for _, v := range variants {
			sys, err := BuildSystem(ds, p, SystemSpec{
				Name: v.name, Variant: v.v, HistoryDays: historyDays,
			})
			if err != nil {
				return nil, err
			}
			for _, band := range groups {
				devs := bands[band]
				if len(devs) == 0 {
					continue
				}
				queries, err := SampleDefaultQueries(ds, p, devs)
				if err != nil {
					return nil, err
				}
				prec[key{v.name, band}] = eval.Score(ds.Building, sys, queries)
			}
		}
		w := fmt.Sprintf("%d", weeks)
		coarseT.AddRow(w,
			pct1(prec[key{"I", "[40,55)"}].Pc()),
			pct1(prec[key{"I", "[55,70)"}].Pc()))
		fineT.AddRow(w,
			pct1(prec[key{"I", "[40,55)"}].Pf()),
			pct1(prec[key{"I", "[55,70)"}].Pf()),
			pct1(prec[key{"D", "[40,55)"}].Pf()),
			pct1(prec[key{"D", "[55,70)"}].Pf()))
		overallT.AddRow(w,
			pct1(prec[key{"I", "[40,55)"}].Po()),
			pct1(prec[key{"I", "[55,70)"}].Po()),
			pct1(prec[key{"D", "[40,55)"}].Po()),
			pct1(prec[key{"D", "[55,70)"}].Po()))
	}
	coarseT.Notes = append(coarseT.Notes, "paper: rises with history, plateau ≈ 8 weeks")
	fineT.Notes = append(fineT.Notes, "paper: near-doubles from 0→1 week, plateau ≈ 3 weeks")
	overallT.Notes = append(overallT.Notes, "paper: follows the same pattern; higher band dominates")
	return []*Table{coarseT, fineT, overallT}, nil
}

// Fig9CachingPrecision reproduces Figure 9: overall precision of I- and
// D-LOCATER with and without the caching engine.
//
// Paper shape: caching costs at most 5–10% precision.
func Fig9CachingPrecision(p Params) ([]*Table, error) {
	p = p.WithDefaults()
	ds, err := BuildDBH(p)
	if err != nil {
		return nil, err
	}
	queries, err := SampleDefaultQueries(ds, p, nil)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Fig 9: overall precision Po (%) with and without caching",
		Header: []string{"system", "no cache", "with cache (+C)", "delta"},
	}
	for _, v := range []struct {
		name    string
		variant locater.Variant
	}{
		{"I-LOCATER", locater.IndependentVariant},
		{"D-LOCATER", locater.DependentVariant},
	} {
		var po [2]float64
		for i, cache := range []bool{false, true} {
			sys, err := BuildSystem(ds, p, SystemSpec{Name: v.name, Variant: v.variant, Cache: cache})
			if err != nil {
				return nil, err
			}
			prec := eval.Score(ds.Building, sys, queries)
			po[i] = prec.Po()
		}
		t.AddRow(v.name, pct1(po[0]), pct1(po[1]), pct1(po[1]-po[0]))
	}
	t.Notes = append(t.Notes, "paper: caching reduces precision by at most 5–10%")
	return []*Table{t}, nil
}

// Table4Scenarios reproduces Table 4: D-LOCATER's Pc|Pf|Po per profile on
// the four simulated scenarios (office, university, mall, airport), with
// the delta of Po versus Baseline2 in parentheses.
//
// Paper shape: LOCATER beats Baseline2 for every profile; margins shrink
// for highly unpredictable profiles (visitors, passengers); coarse
// precision stays above ~80% everywhere; fine precision is strong (>75%)
// for predictable profiles in every scenario.
func Table4Scenarios(p Params) ([]*Table, error) {
	p = p.WithDefaults()
	days := 15 // the paper simulates 15 days per scenario
	scale := 2 // shrink populations for laptop-scale runs

	builders := []struct {
		name  string
		build func(int) (sim.Scenario, error)
	}{
		{"Office", sim.Office},
		{"University", sim.University},
		{"Mall", sim.Mall},
		{"Airport", sim.Airport},
	}

	var tables []*Table
	for si, b := range builders {
		sc, err := b.build(scale)
		if err != nil {
			return nil, err
		}
		ds, err := sim.Generate(sc.Config(simStart, days, p.Seed+int64(si)))
		if err != nil {
			return nil, err
		}
		scenarioParams := p
		scenarioParams.HistoryDays = 10
		dsys, err := BuildSystem(ds, scenarioParams, SystemSpec{Name: "D-LOCATER", Variant: locater.DependentVariant})
		if err != nil {
			return nil, err
		}
		bsys, err := BuildSystem(ds, scenarioParams, SystemSpec{Name: "Baseline2", Baseline: 2})
		if err != nil {
			return nil, err
		}

		t := &Table{
			Title:  fmt.Sprintf("Table 4 (%s): D-LOCATER Pc|Pf|Po (%%), Po delta vs Baseline2", b.name),
			Header: []string{"profile", "Pc|Pf|Po", "ΔPo vs B2"},
		}
		var avg, avgB eval.Precision
		for _, prof := range sc.Profiles {
			devs := eval.DevicesByProfile(ds, prof.Name)
			if len(devs) == 0 {
				continue
			}
			queries, err := SampleDefaultQueries(ds, scenarioParams, devs)
			if err != nil {
				return nil, err
			}
			prec := eval.Score(ds.Building, dsys, queries)
			precB := eval.Score(ds.Building, bsys, queries)
			avg.Add(prec)
			avgB.Add(precB)
			t.AddRow(prof.Name, triple(prec), fmt.Sprintf("(%+.0f)", (prec.Po()-precB.Po())*100))
		}
		t.AddRow("Avg", triple(avg), fmt.Sprintf("(%+.0f)", (avg.Po()-avgB.Po())*100))
		tables = append(tables, t)
	}
	if len(tables) > 0 {
		tables[len(tables)-1].Notes = append(tables[len(tables)-1].Notes,
			"paper: LOCATER ≥ Baseline2 for every profile; margin shrinks for unpredictable profiles")
	}
	return tables, nil
}
