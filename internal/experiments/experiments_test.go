package experiments

import (
	"strings"
	"testing"

	"locater"
	"locater/internal/eval"
)

// tinyParams keeps experiment tests fast.
var tinyParams = Params{PerClass: 2, Days: 14, Queries: 40, Seed: 1, Fast: true}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.PerClass != 6 || p.Days != 70 || p.Queries != 400 || p.Seed != 1 || p.HistoryDays != 56 {
		t.Errorf("defaults = %+v", p)
	}
	// Explicit values preserved.
	p2 := Params{PerClass: 2, Days: 7, Queries: 10, Seed: 9, HistoryDays: 3}.WithDefaults()
	if p2.PerClass != 2 || p2.Days != 7 || p2.Queries != 10 || p2.Seed != 9 || p2.HistoryDays != 3 {
		t.Errorf("explicit params overridden: %+v", p2)
	}
}

func TestBuildDBHCached(t *testing.T) {
	a, err := BuildDBH(tinyParams)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildDBH(tinyParams)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("BuildDBH should return the cached dataset for equal params")
	}
	c, err := BuildDBH(Params{PerClass: 2, Days: 7, Queries: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different params must not share a dataset")
	}
}

func TestBuildSystemAllSpecs(t *testing.T) {
	ds, err := BuildDBH(tinyParams)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := SampleDefaultQueries(ds, tinyParams, nil)
	if err != nil {
		t.Fatal(err)
	}
	specs := []SystemSpec{
		{Name: "B1", Baseline: 1},
		{Name: "B2", Baseline: 2},
		{Name: "I", Variant: locater.IndependentVariant},
		{Name: "D", Variant: locater.DependentVariant, Cache: true},
	}
	for _, spec := range specs {
		sys, err := BuildSystem(ds, tinyParams, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		p := eval.Score(ds.Building, sys, queries[:20])
		if p.Errors > 0 {
			t.Errorf("%s: %d errors", spec.Name, p.Errors)
		}
	}
}

func TestQueryWindowWithinDataset(t *testing.T) {
	ds, err := BuildDBH(tinyParams)
	if err != nil {
		t.Fatal(err)
	}
	from, to := QueryWindow(ds)
	if !from.Before(to) {
		t.Error("empty query window")
	}
	if from.Before(ds.Config.Start) {
		t.Error("window starts before dataset")
	}
	if to.After(ds.Config.Start.AddDate(0, 0, ds.Config.Days)) {
		t.Error("window ends after dataset")
	}
}

func TestTableFprint(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "longer-column"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("wide-cell", "3")
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== demo ==", "longer-column", "wide-cell", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("registry has %d drivers, want 9 (one per table/figure)", len(all))
	}
	names := map[string]bool{}
	for _, d := range all {
		if d.Name == "" || d.Run == nil || d.Description == "" {
			t.Errorf("incomplete driver %+v", d)
		}
		names[d.Name] = true
	}
	for _, want := range []string{"fig7", "table2", "fig8", "fig9", "table3", "table4", "fig10", "fig11", "fig12"} {
		if !names[want] {
			t.Errorf("missing driver %s", want)
		}
	}
	if _, ok := Find("table3"); !ok {
		t.Error("Find(table3) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) should fail")
	}
}

// TestDriversRunTiny executes the cheap drivers end to end at tiny scale to
// catch wiring regressions. (The full-scale outputs are produced by
// cmd/locater-bench and the root benchmarks.)
func TestDriversRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers are slow")
	}
	for _, name := range []string{"table2", "fig9", "fig11", "fig12"} {
		t.Run(name, func(t *testing.T) {
			d, _ := Find(name)
			tables, err := d.Run(tinyParams)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("table %q has no rows", tab.Title)
				}
			}
		})
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers are slow")
	}
	tables, err := Table3Groups(tinyParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("table3 produced %d tables", len(tables))
	}
	tab := tables[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("table3 has %d rows, want 4 systems", len(tab.Rows))
	}
	wantSystems := []string{"Baseline1", "Baseline2", "I-LOCATER", "D-LOCATER"}
	for i, row := range tab.Rows {
		if row[0] != wantSystems[i] {
			t.Errorf("row %d system = %s, want %s", i, row[0], wantSystems[i])
		}
		if len(row) != 5 {
			t.Errorf("row %d has %d cells", i, len(row))
		}
	}
}
