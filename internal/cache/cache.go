// Package cache provides the bounded caching layer shared by LOCATER's
// query-path caches (paper Section 5): a generic, sharded LRU with
// epoch-based invalidation and per-cache statistics.
//
// Every cache in the system — the coarse stage's per-device model cache, the
// caching engine's pairwise-affinity fallback cache, and the query result
// cache — is an instance of Cache. The shared implementation gives each tier
// the two properties a long-running server needs and the earlier ad-hoc maps
// lacked:
//
//   - Bounded memory. Capacity is fixed at construction and distributed over
//     the shards; inserting past a shard's capacity evicts its least
//     recently used entry. The cache can therefore never grow without bound,
//     no matter how many distinct keys a churning workload produces.
//
//   - O(1) invalidation. The cache carries a global epoch counter; every
//     entry is stamped with the epoch at insertion. Invalidate bumps the
//     epoch, instantly orphaning every cached value: lookups treat an entry
//     from an older epoch as a miss (and drop it lazily). Writers — ingest,
//     delta changes, label additions — call Invalidate after mutating the
//     underlying data, so the very next query recomputes from post-write
//     state instead of answering from stale history.
//
// Values computed from pre-invalidation state must not be cached after the
// epoch has moved on. PutAt and GetOrCompute close that race: the caller
// captures Epoch() before computing, and the insert is silently skipped when
// the epoch has changed in the meantime.
package cache

import (
	"sync"
	"sync/atomic"
)

// maxShards bounds the shard count regardless of capacity: beyond ~64
// lock-striped partitions, contention is negligible and the per-shard
// fixed cost dominates.
const maxShards = 64

// Stats is a point-in-time snapshot of one cache's counters.
type Stats struct {
	// Size is the current number of resident entries (stale entries from
	// older epochs count until they are lazily dropped or evicted).
	Size int
	// Capacity is the maximum number of resident entries.
	Capacity int
	// Hits and Misses count lookups (Get and GetOrCompute; Peek is free).
	// A lookup that finds only a stale-epoch entry counts as a miss.
	Hits, Misses int64
	// Evictions counts entries removed to make room at capacity.
	Evictions int64
	// Invalidations counts explicit invalidation events: Invalidate calls
	// (epoch bumps) plus Deletes that removed an entry.
	Invalidations int64
	// Epoch is the current epoch (the number of Invalidate calls so far).
	Epoch uint64
	// Weight is the total weight of resident entries under the cache's
	// weigher — typically approximate heap bytes. Zero when no weigher is
	// installed (see SetWeigher). Stale-epoch entries count until dropped,
	// matching Size.
	Weight int64
}

// entry is one cached value on its shard's intrusive LRU list.
type entry[K comparable, V any] struct {
	key        K
	val        V
	epoch      uint64
	prev, next *entry[K, V]
}

// shard is one lock-striped partition of the cache. head is the most
// recently used entry, tail the least recently used (next eviction victim).
type shard[K comparable, V any] struct {
	mu         sync.Mutex
	m          map[K]*entry[K, V]
	capacity   int
	head, tail *entry[K, V]

	// weigh, when set, prices each resident value; weight is the running
	// total over resident entries (see Cache.SetWeigher).
	weigh  func(V) int64
	weight int64

	hits, misses, evictions, deletes int64
}

// Cache is a sharded, bounded LRU cache with epoch-based invalidation. It is
// safe for concurrent use; operations on keys hashed to different shards
// never contend on a common lock.
type Cache[K comparable, V any] struct {
	hash        func(K) uint64
	epoch       atomic.Uint64
	invalidates atomic.Int64
	shards      []shard[K, V]
}

// New creates a cache holding at most capacity entries, lock-striped over a
// default shard count. hash maps keys onto shards; it must be deterministic
// and should mix well (see StringHash). capacity must be positive.
func New[K comparable, V any](capacity int, hash func(K) uint64) *Cache[K, V] {
	return NewSharded[K, V](capacity, 16, hash)
}

// NewSharded is New with an explicit shard count (clamped to [1, 64] and to
// capacity, so every shard can hold at least one entry). Capacity is
// distributed across shards; the sum of shard capacities is exactly
// capacity, so Size can never exceed Capacity.
func NewSharded[K comparable, V any](capacity, shards int, hash func(K) uint64) *Cache[K, V] {
	if capacity <= 0 {
		panic("cache: capacity must be positive")
	}
	if hash == nil {
		panic("cache: hash function is required")
	}
	if shards < 1 {
		shards = 1
	}
	if shards > maxShards {
		shards = maxShards
	}
	if shards > capacity {
		shards = capacity
	}
	c := &Cache[K, V]{hash: hash, shards: make([]shard[K, V], shards)}
	base, extra := capacity/shards, capacity%shards
	for i := range c.shards {
		sh := &c.shards[i]
		sh.capacity = base
		if i < extra {
			sh.capacity++
		}
		sh.m = make(map[K]*entry[K, V], sh.capacity)
	}
	return c
}

func (c *Cache[K, V]) shardFor(k K) *shard[K, V] {
	return &c.shards[c.hash(k)%uint64(len(c.shards))]
}

// SetWeigher installs a per-value weight function (typically approximate
// heap bytes) and reprices any resident entries. Stats.Weight then tracks
// the total weight of resident values, maintained on every insert, update,
// eviction, and drop. Install once at construction time; the weigher must
// be deterministic for a given value.
func (c *Cache[K, V]) SetWeigher(w func(V) int64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.weigh = w
		sh.weight = 0
		if w != nil {
			for _, e := range sh.m {
				sh.weight += w(e.val)
			}
		}
		sh.mu.Unlock()
	}
}

// drop removes a resident entry (stale-epoch lazy drop, Delete, eviction),
// keeping the weight total consistent. Caller holds sh.mu and accounts the
// removal in the appropriate counter.
func (sh *shard[K, V]) drop(e *entry[K, V]) {
	sh.unlink(e)
	delete(sh.m, e.key)
	if sh.weigh != nil {
		sh.weight -= sh.weigh(e.val)
	}
}

// Get returns the value cached for k in the current epoch. A stale entry
// (cached before the last Invalidate) is dropped and reported as a miss.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.m[k]
	if ok && e.epoch == c.epoch.Load() {
		sh.moveToFront(e)
		sh.hits++
		return e.val, true
	}
	if ok {
		sh.drop(e)
	}
	sh.misses++
	var zero V
	return zero, false
}

// Peek reports whether k is cached in the current epoch without touching the
// LRU order or the hit/miss counters. Used by callers that already counted
// the lookup (e.g. a singleflight double-check under the caller's own lock).
func (c *Cache[K, V]) Peek(k K) (V, bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.m[k]; ok && e.epoch == c.epoch.Load() {
		return e.val, true
	}
	var zero V
	return zero, false
}

// Put caches v for k in the current epoch, evicting the shard's least
// recently used entry if the shard is full.
func (c *Cache[K, V]) Put(k K, v V) {
	c.PutAt(k, v, c.epoch.Load())
}

// PutAt caches v for k only if the cache is still at the given epoch
// (captured with Epoch before v was computed). If an Invalidate intervened,
// v was derived from pre-invalidation state and the insert is skipped — the
// write that bumped the epoch stays visible to the next lookup.
func (c *Cache[K, V]) PutAt(k K, v V, epoch uint64) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c.epoch.Load() != epoch {
		return
	}
	sh.insert(k, v, epoch)
}

// insert stores (k, v, epoch), updating in place when the key is resident.
// Caller holds sh.mu.
func (sh *shard[K, V]) insert(k K, v V, epoch uint64) {
	if e, ok := sh.m[k]; ok {
		if sh.weigh != nil {
			sh.weight += sh.weigh(v) - sh.weigh(e.val)
		}
		e.val = v
		e.epoch = epoch
		sh.moveToFront(e)
		return
	}
	e := &entry[K, V]{key: k, val: v, epoch: epoch}
	sh.m[k] = e
	sh.pushFront(e)
	if sh.weigh != nil {
		sh.weight += sh.weigh(v)
	}
	if len(sh.m) > sh.capacity {
		sh.drop(sh.tail)
		sh.evictions++
	}
}

// GetOrCompute returns the cached value for k, computing and caching it on a
// miss. The shard lock is held across compute, so concurrent callers for the
// same key (or other keys on the same shard) run compute exactly once and
// wait for its result — the semantics the coarse stage's model cache needs
// ("train each device's model once"). compute must not touch this cache.
// A compute error is returned without caching anything, and a value computed
// across an Invalidate is returned but not cached.
func (c *Cache[K, V]) GetOrCompute(k K, compute func() (V, error)) (V, error) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	epoch := c.epoch.Load()
	if e, ok := sh.m[k]; ok {
		if e.epoch == epoch {
			sh.moveToFront(e)
			sh.hits++
			return e.val, nil
		}
		sh.drop(e)
	}
	sh.misses++
	v, err := compute()
	if err != nil {
		return v, err
	}
	if c.epoch.Load() == epoch {
		sh.insert(k, v, epoch)
	}
	return v, nil
}

// Delete drops the entry for k, reporting whether one was resident.
func (c *Cache[K, V]) Delete(k K) bool {
	sh := c.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.m[k]
	if !ok {
		return false
	}
	sh.drop(e)
	sh.deletes++
	return true
}

// Invalidate orphans every cached entry in O(1) by bumping the epoch.
// Resident stale entries are dropped lazily (on lookup or by eviction
// pressure) but can never be returned again.
func (c *Cache[K, V]) Invalidate() {
	c.epoch.Add(1)
	c.invalidates.Add(1)
}

// Epoch returns the current epoch, for use with PutAt.
func (c *Cache[K, V]) Epoch() uint64 { return c.epoch.Load() }

// Len returns the number of resident entries, counting not-yet-dropped
// entries from older epochs.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Capacity returns the total capacity across shards.
func (c *Cache[K, V]) Capacity() int {
	n := 0
	for i := range c.shards {
		n += c.shards[i].capacity
	}
	return n
}

// Stats aggregates the per-shard counters. The snapshot is not atomic across
// shards — counters keep moving under concurrent use — but every individual
// figure is consistent.
func (c *Cache[K, V]) Stats() Stats {
	st := Stats{
		Capacity:      c.Capacity(),
		Invalidations: c.invalidates.Load(),
		Epoch:         c.epoch.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Size += len(sh.m)
		st.Weight += sh.weight
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Evictions += sh.evictions
		st.Invalidations += sh.deletes
		sh.mu.Unlock()
	}
	return st
}

// pushFront links e as the most recently used entry. Caller holds sh.mu.
func (sh *shard[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// unlink removes e from the LRU list. Caller holds sh.mu.
func (sh *shard[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront marks e most recently used. Caller holds sh.mu.
func (sh *shard[K, V]) moveToFront(e *entry[K, V]) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// StringHash is a 64-bit FNV-1a hash for string-like keys, suitable as the
// hash argument of New for DeviceID-style keys.
func StringHash[K ~string](k K) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= prime64
	}
	return h
}
