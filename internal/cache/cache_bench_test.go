package cache

import (
	"runtime"
	"strconv"
	"testing"
)

// BenchmarkChurn inserts a stream of mostly-new keys (a 24h-style churn
// workload: every time bucket mints fresh keys) through a small cache and
// reports the resident size, demonstrating that memory stays bounded at
// capacity while the old unbounded-map design would have grown linearly
// with b.N.
func BenchmarkChurn(b *testing.B) {
	const capacity = 1024
	c := New[string, int](capacity, StringHash[string])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Put("churn-"+strconv.Itoa(i), i)
		if i%8 == 0 {
			c.Get("churn-" + strconv.Itoa(i-capacity/2))
		}
	}
	if n := c.Len(); n > capacity {
		b.Fatalf("Len = %d > capacity %d", n, capacity)
	}
	b.ReportMetric(float64(c.Len()), "resident-entries")
}

// BenchmarkGetHit measures the steady-state hit path.
func BenchmarkGetHit(b *testing.B) {
	c := New[string, int](1024, StringHash[string])
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = "k" + strconv.Itoa(i)
		c.Put(keys[i], i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(keys[i%len(keys)])
	}
}

// BenchmarkGetHitParallel measures shard-striped contention across cores.
func BenchmarkGetHitParallel(b *testing.B) {
	c := NewSharded[string, int](4096, runtime.GOMAXPROCS(0)*4, StringHash[string])
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = "k" + strconv.Itoa(i)
		c.Put(keys[i], i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Get(keys[i%len(keys)])
			i++
		}
	})
}
