package cache

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
)

func newTest(t *testing.T, capacity, shards int) *Cache[string, int] {
	t.Helper()
	return NewSharded[string, int](capacity, shards, StringHash[string])
}

func TestGetPut(t *testing.T) {
	c := newTest(t, 8, 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	c.Put("a", 2) // update in place
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("after update Get(a) = %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestEvictionBound is the core bounded-memory property: under arbitrary
// churn the cache never holds more than its capacity, whatever the shard
// layout, and it evicts in LRU order.
func TestEvictionBound(t *testing.T) {
	for _, shards := range []int{1, 3, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			const capacity = 50
			c := newTest(t, capacity, shards)
			if c.Capacity() != capacity {
				t.Fatalf("Capacity = %d, want %d", c.Capacity(), capacity)
			}
			for i := 0; i < 10*capacity; i++ {
				c.Put("k"+strconv.Itoa(i), i)
				if n := c.Len(); n > capacity {
					t.Fatalf("after %d inserts Len = %d > capacity %d", i+1, n, capacity)
				}
			}
			if c.Stats().Evictions == 0 {
				t.Fatal("no evictions under churn")
			}
		})
	}
}

func TestLRUOrder(t *testing.T) {
	c := newTest(t, 2, 1)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")    // a is now most recent
	c.Put("c", 3) // evicts b
	if _, ok := c.Peek("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("a (recently used) was evicted")
	}
	if _, ok := c.Peek("c"); !ok {
		t.Fatal("c missing")
	}
}

func TestInvalidate(t *testing.T) {
	c := newTest(t, 8, 2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Invalidate()
	if _, ok := c.Get("a"); ok {
		t.Fatal("stale entry survived Invalidate")
	}
	if _, ok := c.Peek("b"); ok {
		t.Fatal("Peek returned a stale entry")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("Invalidations = %d", st.Invalidations)
	}
	if st.Epoch != 1 {
		t.Fatalf("Epoch = %d", st.Epoch)
	}
	// Fresh inserts work in the new epoch.
	c.Put("a", 3)
	if v, ok := c.Get("a"); !ok || v != 3 {
		t.Fatalf("post-invalidate Get(a) = %d, %v", v, ok)
	}
}

// TestPutAtSkipsCrossEpochInsert is the invalidation-correctness race: a
// value computed before an Invalidate must not be cached after it.
func TestPutAtSkipsCrossEpochInsert(t *testing.T) {
	c := newTest(t, 8, 1)
	epoch := c.Epoch()
	// ... value computed from the old state here ...
	c.Invalidate()
	c.PutAt("a", 1, epoch)
	if _, ok := c.Get("a"); ok {
		t.Fatal("PutAt cached a value computed before Invalidate")
	}
}

func TestDelete(t *testing.T) {
	c := newTest(t, 8, 2)
	c.Put("a", 1)
	if !c.Delete("a") {
		t.Fatal("Delete(a) = false for a resident key")
	}
	if c.Delete("a") {
		t.Fatal("Delete(a) = true for an absent key")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("deleted entry still resident")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("Invalidations = %d, want 1 (one effective delete)", st.Invalidations)
	}
}

func TestGetOrCompute(t *testing.T) {
	c := newTest(t, 8, 1)
	calls := 0
	compute := func() (int, error) { calls++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := c.GetOrCompute("a", compute)
		if err != nil || v != 42 {
			t.Fatalf("GetOrCompute = %d, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetOrComputeError(t *testing.T) {
	c := newTest(t, 8, 1)
	wantErr := fmt.Errorf("boom")
	if _, err := c.GetOrCompute("a", func() (int, error) { return 0, wantErr }); err != wantErr {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed compute was cached")
	}
	// A later successful compute fills the entry.
	if v, err := c.GetOrCompute("a", func() (int, error) { return 7, nil }); err != nil || v != 7 {
		t.Fatalf("retry = %d, %v", v, err)
	}
}

// TestGetOrComputeCrossEpoch: an Invalidate that lands while compute runs
// must keep the computed value out of the cache (it reflects the old state),
// while still returning it to the caller.
func TestGetOrComputeCrossEpoch(t *testing.T) {
	c := newTest(t, 8, 1)
	v, err := c.GetOrCompute("a", func() (int, error) {
		c.Invalidate() // stands in for a concurrent writer on another shard
		return 9, nil
	})
	if err != nil || v != 9 {
		t.Fatalf("GetOrCompute = %d, %v", v, err)
	}
	if _, ok := c.Peek("a"); ok {
		t.Fatal("value computed across an epoch bump was cached")
	}
}

func TestStatsCountersAndSize(t *testing.T) {
	c := newTest(t, 4, 1)
	for i := 0; i < 8; i++ {
		c.Put(strconv.Itoa(i), i)
	}
	st := c.Stats()
	if st.Size != 4 || st.Capacity != 4 || st.Evictions != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCapacityDistribution(t *testing.T) {
	// 10 over 3 shards: shard capacities must sum to exactly 10.
	c := NewSharded[string, int](10, 3, StringHash[string])
	if c.Capacity() != 10 {
		t.Fatalf("Capacity = %d", c.Capacity())
	}
	// More shards than capacity: clamped so every shard holds ≥ 1.
	c2 := NewSharded[string, int](2, 16, StringHash[string])
	if c2.Capacity() != 2 {
		t.Fatalf("clamped Capacity = %d", c2.Capacity())
	}
}

func TestNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero capacity": func() { New[string, int](0, StringHash[string]) },
		"nil hash":      func() { New[string, int](4, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestConcurrent hammers every operation from many goroutines; run with
// -race. The final size must respect the bound.
func TestConcurrent(t *testing.T) {
	const capacity = 128
	c := newTest(t, capacity, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := strconv.Itoa((g*31 + i) % 500)
				switch i % 5 {
				case 0:
					c.Put(k, i)
				case 1:
					c.Get(k)
				case 2:
					c.GetOrCompute(k, func() (int, error) { return i, nil })
				case 3:
					c.Delete(k)
				case 4:
					if i%100 == 0 {
						c.Invalidate()
					} else {
						c.Peek(k)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > capacity {
		t.Fatalf("Len = %d > capacity %d after concurrent churn", n, capacity)
	}
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}
