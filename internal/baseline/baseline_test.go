package baseline

import (
	"testing"
	"time"

	"locater/internal/event"
	"locater/internal/space"
	"locater/internal/store"
)

var t0 = time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC)

func testBuilding(t *testing.T) *space.Building {
	t.Helper()
	b, err := space.NewBuilding(space.Config{
		Name: "bl",
		Rooms: []space.Room{
			{ID: "r1", Kind: space.Private}, {ID: "r2", Kind: space.Public},
			{ID: "r3", Kind: space.Private}, {ID: "r4", Kind: space.Private},
		},
		AccessPoints: []space.AccessPoint{
			{ID: "apA", Coverage: []space.RoomID{"r1", "r2", "r3"}},
			{ID: "apB", Coverage: []space.RoomID{"r3", "r4"}},
		},
		PreferredRooms: map[string][]space.RoomID{
			"dev": {"r1"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func seededStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New(0)
	st.SetDelta("dev", 10*time.Minute)
	// Event at 9:00 on apA, then at 9:40 (gap 9:10–9:30), then a long gap
	// until 12:00 on apB.
	evs := []event.Event{
		{Device: "dev", Time: t0, AP: "apA"},
		{Device: "dev", Time: t0.Add(40 * time.Minute), AP: "apA"},
		{Device: "dev", Time: t0.Add(3 * time.Hour), AP: "apB"},
	}
	if _, err := st.Ingest(evs); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestCoarseBaselineValidity(t *testing.T) {
	b := testBuilding(t)
	st := seededStore(t)
	c := &Coarse{Building: b, Store: st}

	res, err := c.Locate("dev", t0.Add(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	gA, _ := b.RegionOf("apA")
	if res.Outside || res.Region != gA {
		t.Errorf("validity hit = %+v, want region %s", res, gA)
	}
}

func TestCoarseBaselineShortGapLastRegion(t *testing.T) {
	b := testBuilding(t)
	st := seededStore(t)
	c := &Coarse{Building: b, Store: st}

	// 9:20 is in the 20-minute gap: < 1h → inside, last region apA.
	res, err := c.Locate("dev", t0.Add(20*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	gA, _ := b.RegionOf("apA")
	if res.Outside || res.Region != gA {
		t.Errorf("short gap = %+v, want inside %s", res, gA)
	}
}

func TestCoarseBaselineLongGapOutside(t *testing.T) {
	b := testBuilding(t)
	st := seededStore(t)
	c := &Coarse{Building: b, Store: st}

	// 11:00 is in the 9:50–12:50... actually gap from 9:50 to 2:50pm-δ;
	// duration > 1h → outside.
	res, err := c.Locate("dev", t0.Add(2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outside {
		t.Errorf("long gap = %+v, want outside", res)
	}
}

func TestCoarseBaselineNoData(t *testing.T) {
	b := testBuilding(t)
	st := seededStore(t)
	c := &Coarse{Building: b, Store: st}
	res, err := c.Locate("dev", t0.Add(-24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outside {
		t.Errorf("no surrounding data should be outside, got %+v", res)
	}
	res, err = c.Locate("ghost", t0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outside {
		t.Errorf("unknown device should be outside, got %+v", res)
	}
}

func TestFineRandomDeterministicSeed(t *testing.T) {
	b := testBuilding(t)
	gA, _ := b.RegionOf("apA")
	f1 := NewFineRandom(7)
	f2 := NewFineRandom(7)
	for i := 0; i < 20; i++ {
		r1, err1 := f1.Pick(b, "dev", gA)
		r2, err2 := f2.Pick(b, "dev", gA)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if r1 != r2 {
			t.Fatal("same seed produced different picks")
		}
	}
}

func TestFineRandomCoversCandidates(t *testing.T) {
	b := testBuilding(t)
	gA, _ := b.RegionOf("apA")
	f := NewFineRandom(1)
	seen := map[space.RoomID]bool{}
	for i := 0; i < 200; i++ {
		r, err := f.Pick(b, "dev", gA)
		if err != nil {
			t.Fatal(err)
		}
		seen[r] = true
	}
	for _, r := range b.CandidateRooms(gA) {
		if !seen[r] {
			t.Errorf("room %s never picked in 200 draws", r)
		}
	}
	if _, err := f.Pick(b, "dev", "ghost"); err == nil {
		t.Error("unknown region should error")
	}
}

func TestFineMetadataPick(t *testing.T) {
	b := testBuilding(t)
	gA, _ := b.RegionOf("apA")
	gB, _ := b.RegionOf("apB")
	fm := &FineMetadata{}

	// Preferred room r1 is a candidate of region A.
	r, err := fm.Pick(b, "dev", gA)
	if err != nil {
		t.Fatal(err)
	}
	if r != "r1" {
		t.Errorf("metadata pick = %s, want preferred r1", r)
	}
	// r1 is not in region B: fallback (first candidate).
	r, err = fm.Pick(b, "dev", gB)
	if err != nil {
		t.Fatal(err)
	}
	if r != "r3" {
		t.Errorf("fallback pick = %s, want first candidate r3", r)
	}
	// Custom fallback honored.
	fm2 := &FineMetadata{Fallback: func(b *space.Building, d event.DeviceID, g space.RegionID) (space.RoomID, error) {
		return "r4", nil
	}}
	r, err = fm2.Pick(b, "dev", gB)
	if err != nil {
		t.Fatal(err)
	}
	if r != "r4" {
		t.Errorf("custom fallback = %s", r)
	}
	if _, err := fm.Pick(b, "dev", "ghost"); err == nil {
		t.Error("unknown region should error")
	}
}

func TestSystemsEndToEnd(t *testing.T) {
	b := testBuilding(t)
	st := seededStore(t)

	b1 := NewBaseline1(b, st, 1)
	b2 := NewBaseline2(b, st, 1)

	// Validity hit: both answer inside with a room from the region.
	for name, sys := range map[string]*System{"B1": b1, "B2": b2} {
		res, err := sys.Locate("dev", t0.Add(5*time.Minute))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Outside {
			t.Errorf("%s: validity query answered outside", name)
		}
		found := false
		for _, r := range b.CandidateRooms(res.Region) {
			if r == res.Room {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: room %s not in region %s", name, res.Room, res.Region)
		}
	}
	// Baseline2 picks the metadata room.
	res, err := b2.Locate("dev", t0.Add(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.Room != "r1" {
		t.Errorf("Baseline2 room = %s, want r1", res.Room)
	}
	// Long gap: both outside.
	res, err = b1.Locate("dev", t0.Add(2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outside {
		t.Errorf("Baseline1 long gap = %+v", res)
	}
}
