// Package baseline implements the two comparison systems of the paper's
// evaluation (Section 6.1). Both share Coarse-Baseline for the coarse level
// and differ in fine-level room selection:
//
//   - Coarse-Baseline: a device is outside if the enclosing gap lasts at
//     least one hour; otherwise it is inside, in the last known region.
//   - Fine-Baseline1: picks the room uniformly at random from the region's
//     candidate rooms.
//   - Fine-Baseline2: picks the room associated with the user in the
//     metadata (their preferred room, e.g. their office) when that room is
//     among the candidates; otherwise it falls back to a random candidate.
package baseline

import (
	"fmt"
	"math/rand"
	"time"

	"locater/internal/event"
	"locater/internal/space"
	"locater/internal/store"
)

// OutsideThreshold is the Coarse-Baseline gap duration at or beyond which
// the device is considered outside the building.
const OutsideThreshold = time.Hour

// CoarseResult mirrors the coarse decision of a baseline.
type CoarseResult struct {
	Outside bool
	Region  space.RegionID
}

// Coarse implements Coarse-Baseline over a store and building.
type Coarse struct {
	Building *space.Building
	Store    *store.Store
}

// Locate answers the coarse query: inside a validity interval the region is
// the connected AP's; inside a gap shorter than one hour the region is the
// last known one; otherwise the device is outside.
func (c *Coarse) Locate(d event.DeviceID, tq time.Time) (CoarseResult, error) {
	v, g, err := c.Store.At(d, tq)
	if err != nil {
		return CoarseResult{}, fmt.Errorf("baseline: coarse locate %s: %w", d, err)
	}
	if v != nil {
		region, ok := c.Building.RegionOf(v.Event.AP)
		if !ok {
			return CoarseResult{}, fmt.Errorf("baseline: unknown AP %s", v.Event.AP)
		}
		return CoarseResult{Region: region}, nil
	}
	if g == nil {
		return CoarseResult{Outside: true}, nil
	}
	if g.Duration() >= OutsideThreshold {
		return CoarseResult{Outside: true}, nil
	}
	region, ok := c.Building.RegionOf(g.PrevEvent.AP)
	if !ok {
		return CoarseResult{}, fmt.Errorf("baseline: unknown AP %s", g.PrevEvent.AP)
	}
	return CoarseResult{Region: region}, nil
}

// FineRandom implements Fine-Baseline1: uniform random candidate room.
// It is deterministic for a given seed sequence.
type FineRandom struct {
	rng *rand.Rand
}

// NewFineRandom creates the random-room baseline with a seed.
func NewFineRandom(seed int64) *FineRandom {
	return &FineRandom{rng: rand.New(rand.NewSource(seed))}
}

// Pick selects a room uniformly at random among the region's candidates.
func (f *FineRandom) Pick(b *space.Building, d event.DeviceID, g space.RegionID) (space.RoomID, error) {
	rooms := b.CandidateRooms(g)
	if len(rooms) == 0 {
		return "", fmt.Errorf("baseline: region %s has no rooms", g)
	}
	return rooms[f.rng.Intn(len(rooms))], nil
}

// FineMetadata implements Fine-Baseline2: the user's metadata room.
type FineMetadata struct {
	// Fallback picks a room when the user has no preferred room among the
	// candidates. Defaults to the first candidate for determinism; tests
	// may substitute a FineRandom.
	Fallback func(b *space.Building, d event.DeviceID, g space.RegionID) (space.RoomID, error)
}

// Pick selects the user's preferred room when it is a candidate of the
// region; otherwise the fallback decides.
func (f *FineMetadata) Pick(b *space.Building, d event.DeviceID, g space.RegionID) (space.RoomID, error) {
	candidates := b.CandidateRooms(g)
	if len(candidates) == 0 {
		return "", fmt.Errorf("baseline: region %s has no rooms", g)
	}
	inCandidates := make(map[space.RoomID]bool, len(candidates))
	for _, r := range candidates {
		inCandidates[r] = true
	}
	for _, r := range b.PreferredRooms(string(d)) {
		if inCandidates[r] {
			return r, nil
		}
	}
	if f.Fallback != nil {
		return f.Fallback(b, d, g)
	}
	return candidates[0], nil
}

// System bundles a coarse baseline and one fine baseline into a full
// pipeline comparable to LOCATER (Baseline1 or Baseline2 of Section 6.1).
type System struct {
	Coarse *Coarse
	// PickRoom is the fine stage (Fine-Baseline1 or Fine-Baseline2).
	PickRoom func(b *space.Building, d event.DeviceID, g space.RegionID) (space.RoomID, error)
}

// Result is a baseline's full answer.
type Result struct {
	Outside bool
	Region  space.RegionID
	Room    space.RoomID
}

// Locate answers (d, t_q) end to end.
func (s *System) Locate(d event.DeviceID, tq time.Time) (Result, error) {
	cr, err := s.Coarse.Locate(d, tq)
	if err != nil {
		return Result{}, err
	}
	if cr.Outside {
		return Result{Outside: true}, nil
	}
	room, err := s.PickRoom(s.Coarse.Building, d, cr.Region)
	if err != nil {
		return Result{}, err
	}
	return Result{Region: cr.Region, Room: room}, nil
}

// NewBaseline1 builds Baseline1 = Coarse-Baseline + Fine-Baseline1.
func NewBaseline1(b *space.Building, st *store.Store, seed int64) *System {
	fr := NewFineRandom(seed)
	return &System{
		Coarse:   &Coarse{Building: b, Store: st},
		PickRoom: fr.Pick,
	}
}

// NewBaseline2 builds Baseline2 = Coarse-Baseline + Fine-Baseline2.
func NewBaseline2(b *space.Building, st *store.Store, seed int64) *System {
	fr := NewFineRandom(seed)
	fm := &FineMetadata{Fallback: fr.Pick}
	return &System{
		Coarse:   &Coarse{Building: b, Store: st},
		PickRoom: fm.Pick,
	}
}
