package coarse

import (
	"fmt"
	"sort"
	"time"

	"locater/internal/event"
	"locater/internal/ml"
	"locater/internal/space"
)

// labeledGap pairs a featurized gap with its (possibly bootstrap-assigned)
// class label.
type labeledGap struct {
	features GapFeatures
	label    int
}

// deviceModel holds the two classifiers trained for one device: the
// inside/outside model and the region model, plus the label space mapping.
type deviceModel struct {
	// insideModel classifies {0: inside, 1: outside}. nil when training
	// degenerated to a single class; then insideMajority applies.
	insideModel    *ml.Classifier
	insideMajority *ml.MajorityClassifier

	// regionModel classifies over regionLabels. nil when degenerate; then
	// regionMajority applies.
	regionModel    *ml.Classifier
	regionMajority *ml.MajorityClassifier
	regionLabels   []space.RegionID

	trainedAt time.Time
	numGaps   int
}

const (
	classInside  = 0
	classOutside = 1
)

// model returns (training on demand) the device's classifiers. The model
// cache's shard lock stays held across training (cache.GetOrCompute) so
// concurrent queries for the same device train exactly once; devices hashed
// to other shards proceed in parallel. Trained models are immutable, so the
// returned *deviceModel is safe to use after the shard lock is released —
// even after the entry is later evicted or invalidated.
func (l *Localizer) model(d event.DeviceID) (*deviceModel, error) {
	return l.models.GetOrCompute(d, func() (*deviceModel, error) {
		return l.train(d)
	})
}

// train builds the per-device model: extract gaps from the history window,
// bootstrap-label the easy ones, run Algorithm 1 twice (building level, then
// region level for inside gaps).
func (l *Localizer) train(d event.DeviceID) (*deviceModel, error) {
	trainStart := time.Now()
	defer func() {
		l.trainNanos.Add(time.Since(trainStart).Nanoseconds())
		l.trains.Add(1)
	}()
	_, maxT, ok := l.store.TimeBounds()
	if !ok {
		return nil, fmt.Errorf("coarse: empty store, cannot train model for %s", d)
	}
	hist := l.historyEvents(d, maxT)
	tl, err := event.NewTimeline(d, l.store.Delta(d), hist)
	if err != nil {
		return nil, fmt.Errorf("coarse: building timeline for %s: %w", d, err)
	}
	gaps := tl.Gaps()
	if l.opts.MaxTrainingGaps > 0 && len(gaps) > l.opts.MaxTrainingGaps {
		gaps = gaps[len(gaps)-l.opts.MaxTrainingGaps:]
	}

	m := &deviceModel{trainedAt: maxT, numGaps: len(gaps)}
	if len(gaps) == 0 {
		// No history gaps at all: the paper's footnote 5 labels such
		// devices from aggregate behaviour ("most common label for other
		// devices") — use the population model trained on every device's
		// bootstrap-labeled gaps.
		if pm := l.populationModel(maxT); pm != nil {
			return pm, nil
		}
		m.insideMajority = &ml.MajorityClassifier{Class: classInside}
		m.regionMajority = &ml.MajorityClassifier{Class: 0}
		m.regionLabels = l.building.Regions()
		return m, nil
	}

	th := l.opts.Thresholds

	// --- Stage 1: inside/outside -------------------------------------
	var labeled []labeledGap
	var unlabeled []GapFeatures
	var insideGaps []event.Gap // bootstrap-inside gaps feed stage 2
	for _, g := range gaps {
		if gapSpansDays(g) {
			continue // paper assumes gaps do not span multiple days
		}
		f := l.featurizeWithHistory(g, hist)
		switch {
		case g.Duration() <= th.TauLow:
			labeled = append(labeled, labeledGap{features: f, label: classInside})
			insideGaps = append(insideGaps, g)
		case g.Duration() >= th.TauHigh:
			labeled = append(labeled, labeledGap{features: f, label: classOutside})
		default:
			unlabeled = append(unlabeled, f)
		}
	}
	insideClf, insideMaj, err := l.selfTrain(labeled, unlabeled, 2)
	if err != nil {
		return nil, fmt.Errorf("coarse: training inside/outside model for %s: %w", d, err)
	}
	m.insideModel = insideClf
	m.insideMajority = insideMaj

	// --- Stage 2: region ----------------------------------------------
	// Label space: the building's regions in sorted order.
	m.regionLabels = l.building.Regions()
	regionIdx := make(map[space.RegionID]int, len(m.regionLabels))
	for i, r := range m.regionLabels {
		regionIdx[r] = i
	}
	var rLabeled []labeledGap
	var rUnlabeled []GapFeatures
	for _, g := range insideGaps {
		f := l.featurizeWithHistory(g, hist)
		gs, okS := l.building.RegionOf(g.PrevEvent.AP)
		ge, okE := l.building.RegionOf(g.NextEvent.AP)
		switch {
		case okS && okE && gs == ge:
			rLabeled = append(rLabeled, labeledGap{features: f, label: regionIdx[gs]})
		case g.Duration() <= th.RegionTauLow:
			// Short ambiguous gap: most-visited-region heuristic.
			if r, ok := l.mostVisitedRegionInWindowHist(hist, g); ok {
				rLabeled = append(rLabeled, labeledGap{features: f, label: regionIdx[r]})
			} else if okS {
				rLabeled = append(rLabeled, labeledGap{features: f, label: regionIdx[gs]})
			}
		case g.Duration() <= th.RegionTauHigh:
			rUnlabeled = append(rUnlabeled, f)
		default:
			// Long inside gaps are too uncertain for region training.
		}
	}
	regionClf, regionMaj, err := l.selfTrain(rLabeled, rUnlabeled, len(m.regionLabels))
	if err != nil {
		return nil, fmt.Errorf("coarse: training region model for %s: %w", d, err)
	}
	m.regionModel = regionClf
	m.regionMajority = regionMaj
	return m, nil
}

// mostVisitedRegionInWindowHist is mostVisitedRegionInWindow against a
// pre-fetched history slice.
func (l *Localizer) mostVisitedRegionInWindowHist(hist []event.Event, g event.Gap) (space.RegionID, bool) {
	startSec := secondOfDay(g.Start)
	endSec := secondOfDay(g.End)
	counts := make(map[space.RegionID]int)
	for _, e := range hist {
		if inDayWindow(secondOfDay(e.Time), startSec, endSec) {
			if region, ok := l.building.RegionOf(e.AP); ok {
				counts[region]++
			}
		}
	}
	if len(counts) == 0 {
		return "", false
	}
	regions := make([]space.RegionID, 0, len(counts))
	for r := range counts {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	best := regions[0]
	for _, r := range regions[1:] {
		if counts[r] > counts[best] {
			best = r
		}
	}
	return best, true
}

// selfTrain implements Algorithm 1. Starting from the bootstrap-labeled set,
// it repeatedly trains a classifier, predicts every unlabeled gap, and
// promotes the most confident prediction(s) (variance of the prediction
// array) into the labeled set; it returns the classifier trained in the last
// round. Degenerate label sets yield a majority classifier instead.
func (l *Localizer) selfTrain(labeled []labeledGap, unlabeled []GapFeatures, numClasses int) (*ml.Classifier, *ml.MajorityClassifier, error) {
	if len(labeled) == 0 {
		return nil, &ml.MajorityClassifier{Class: 0}, nil
	}
	distinct := distinctLabels(labeled)
	if distinct < 2 {
		return nil, &ml.MajorityClassifier{Class: labeled[0].label, Total: len(labeled)}, nil
	}

	work := make([]labeledGap, len(labeled))
	copy(work, labeled)
	pending := make([]GapFeatures, len(unlabeled))
	copy(pending, unlabeled)

	var clf *ml.Classifier
	var err error
	for {
		clf, err = ml.Train(examplesOf(work), numClasses, l.opts.Train)
		if err != nil {
			return nil, nil, err
		}
		if len(pending) == 0 {
			return clf, nil, nil
		}
		// Score every pending gap; promote the top-k by confidence.
		type scored struct {
			idx   int
			label int
			conf  float64
		}
		best := make([]scored, 0, len(pending))
		for i, f := range pending {
			probs, label, perr := clf.Predict(f.Vector())
			if perr != nil {
				return nil, nil, perr
			}
			best = append(best, scored{idx: i, label: label, conf: ml.Variance(probs)})
		}
		sort.Slice(best, func(i, j int) bool {
			if best[i].conf != best[j].conf {
				return best[i].conf > best[j].conf
			}
			return best[i].idx < best[j].idx
		})
		k := l.opts.MaxPromotionsPerRound
		if k > len(best) {
			k = len(best)
		}
		promoted := make(map[int]bool, k)
		for _, s := range best[:k] {
			work = append(work, labeledGap{features: pending[s.idx], label: s.label})
			promoted[s.idx] = true
		}
		next := pending[:0]
		for i, f := range pending {
			if !promoted[i] {
				next = append(next, f)
			}
		}
		pending = next
	}
}

func distinctLabels(gaps []labeledGap) int {
	seen := make(map[int]bool)
	for _, g := range gaps {
		seen[g.label] = true
	}
	return len(seen)
}

func examplesOf(gaps []labeledGap) []ml.Example {
	out := make([]ml.Example, len(gaps))
	for i, g := range gaps {
		out[i] = ml.Example{Features: g.features.Vector(), Label: g.label}
	}
	return out
}

// predictInside classifies a gap as inside (true) or outside (false) with a
// confidence equal to the winning probability.
func (m *deviceModel) predictInside(f GapFeatures) (bool, float64) {
	if m.insideModel == nil {
		probs, label := m.insideMajority.Predict(2)
		return label == classInside, probs[maxIdx(probs)]
	}
	probs, label, err := m.insideModel.Predict(f.Vector())
	if err != nil {
		return true, 0.5
	}
	return label == classInside, probs[label]
}

// predictRegion returns the region label with its probability; fallback is
// used when the model is degenerate and carries no information.
func (m *deviceModel) predictRegion(f GapFeatures, fallback space.RegionID) (space.RegionID, float64) {
	if len(m.regionLabels) == 0 {
		return fallback, 1
	}
	if m.regionModel == nil {
		if m.regionMajority != nil && m.regionMajority.Total > 0 {
			_, label := m.regionMajority.Predict(len(m.regionLabels))
			if label >= 0 && label < len(m.regionLabels) {
				return m.regionLabels[label], 1
			}
		}
		return fallback, 1
	}
	probs, label, err := m.regionModel.Predict(f.Vector())
	if err != nil || label < 0 || label >= len(m.regionLabels) {
		return fallback, 0.5
	}
	return m.regionLabels[label], probs[label]
}

func maxIdx(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
