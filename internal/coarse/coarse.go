// Package coarse implements LOCATER's coarse-grained localization: the
// missing-value detection and repair stage (paper Section 3).
//
// Given a query (d, t_q) whose time falls inside a gap of device d's
// connectivity log, the localizer decides (1) whether the device was inside
// or outside the building during the gap and (2) if inside, which region
// (AP coverage area) it was in. Both decisions use per-device classifiers
// trained by a bootstrapping + semi-supervised self-training procedure
// (Algorithm 1) over the gaps extracted from N past days of history:
//
//   - Bootstrapping labels "easy" gaps with duration heuristics: gaps
//     shorter than τ_l are inside, gaps longer than τ_h are outside
//     (similarly τ'_l / τ'_h at the region level). Inside gaps whose start
//     and end regions agree are labeled with that region; otherwise with the
//     device's most-visited region among historical events overlapping the
//     gap's time-of-day window.
//   - Self-training (Algorithm 1) then iteratively trains a logistic
//     regression on the labeled set, predicts the unlabeled gaps, and
//     promotes the prediction with the highest confidence — the variance of
//     the prediction array — into the labeled set until none remain.
package coarse

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"locater/internal/cache"
	"locater/internal/event"
	"locater/internal/ml"
	"locater/internal/space"
	"locater/internal/store"
)

// Thresholds configures the bootstrap heuristics.
type Thresholds struct {
	// TauLow / TauHigh bound the inside/outside bootstrap: a gap with
	// duration ≤ TauLow is labeled inside, ≥ TauHigh outside. The paper's
	// best values are 20 and 180 minutes (Fig. 7).
	TauLow  time.Duration
	TauHigh time.Duration
	// RegionTauLow / RegionTauHigh play the same role for the region-level
	// bootstrap among inside-labeled gaps: short gaps (≤ RegionTauLow) get
	// a region label immediately; gaps longer than RegionTauHigh stay
	// unlabeled for the region model even if inside. Paper: 20 and 40 min.
	RegionTauLow  time.Duration
	RegionTauHigh time.Duration
}

// DefaultThresholds returns the paper's experimentally best settings:
// τ_l = 20 min, τ_h = 180 min, τ'_l = 20 min, τ'_h = 40 min.
func DefaultThresholds() Thresholds {
	return Thresholds{
		TauLow:        20 * time.Minute,
		TauHigh:       180 * time.Minute,
		RegionTauLow:  20 * time.Minute,
		RegionTauHigh: 40 * time.Minute,
	}
}

// Options configures the coarse localizer.
type Options struct {
	Thresholds Thresholds
	// HistoryDays is N, the number of past days of connectivity history
	// used to extract training gaps. Default 56 (8 weeks, the paper's
	// plateau point in Fig. 8).
	HistoryDays int
	// Train configures the underlying logistic regressions.
	Train ml.Options
	// MaxPromotionsPerRound promotes the top-k most confident unlabeled
	// gaps per self-training round instead of exactly one. 1 reproduces
	// Algorithm 1 verbatim; larger values trade fidelity for speed on
	// large histories. Default 1.
	MaxPromotionsPerRound int
	// MaxTrainingGaps caps the number of gaps used for training (most
	// recent kept). 0 means no cap.
	MaxTrainingGaps int
	// ModelCacheCapacity bounds the number of cached per-device models;
	// past it the least recently used model is evicted (and simply
	// retrained on that device's next query). Default 4096.
	ModelCacheCapacity int
	// StatsHalfLife is the event-time half-life of the decayed gap
	// sufficient statistics maintained incrementally on ingest (stats.go).
	// Default 7 days.
	StatsHalfLife time.Duration
}

func (o Options) withDefaults() Options {
	z := Thresholds{}
	if o.Thresholds == z {
		o.Thresholds = DefaultThresholds()
	}
	if o.HistoryDays <= 0 {
		o.HistoryDays = 56
	}
	if o.MaxPromotionsPerRound <= 0 {
		o.MaxPromotionsPerRound = 1
	}
	if o.ModelCacheCapacity <= 0 {
		o.ModelCacheCapacity = 4096
	}
	if o.StatsHalfLife <= 0 {
		o.StatsHalfLife = 7 * 24 * time.Hour
	}
	return o
}

// numModelShards is the number of lock-striped partitions of the per-device
// model cache. 64 keeps lock contention negligible even with hundreds of
// concurrent queries while wasting little memory on an idle system.
const numModelShards = 64

// Localizer answers coarse queries against a store and building. It is safe
// for concurrent use: the per-device model cache (a bounded, sharded LRU)
// is partitioned by a hash of the device ID, so queries, training, and
// invalidation for unrelated devices never contend on a common lock. The
// cache's shard lock is held across lazy training, so two concurrent
// queries for the same untrained device train its model exactly once.
type Localizer struct {
	opts     Options
	building *space.Building
	store    *store.Store

	// models caches per-device trained classifiers, bounded at
	// Options.ModelCacheCapacity (LRU eviction past that).
	models *cache.Cache[event.DeviceID, *deviceModel]

	// popMu guards the building-wide fallback model for devices with no
	// history of their own (paper footnote 5).
	popMu      sync.Mutex
	population *deviceModel

	// stats holds the incrementally-maintained per-device gap sufficient
	// statistics (stats.go), with the write-path maintenance counters.
	stats        *statsTable
	observeNanos atomic.Int64
	trainNanos   atomic.Int64
	trains       atomic.Int64
	rebuilds     atomic.Int64
	outOfOrder   atomic.Int64
}

// Result is the coarse-level answer for a query.
type Result struct {
	// Outside is true when the device is predicted outside the building.
	Outside bool
	// Region is the predicted region when inside.
	Region space.RegionID
	// FromValidity is true when t_q fell inside a validity interval, so no
	// repair was needed (the region is the connected AP's region).
	FromValidity bool
	// Confidence is the winning class probability (1 for validity hits and
	// bootstrap-labeled answers).
	Confidence float64
	// Gap is the enclosing gap when the query required repair.
	Gap *event.Gap
}

// New creates a coarse localizer over the given building and store.
func New(b *space.Building, st *store.Store, opts Options) *Localizer {
	opts = opts.withDefaults()
	return &Localizer{
		opts:     opts,
		building: b,
		store:    st,
		models: cache.NewSharded[event.DeviceID, *deviceModel](
			opts.ModelCacheCapacity, numModelShards, cache.StringHash[event.DeviceID]),
		stats: newStatsTable(),
	}
}

// InvalidateDevice is the full per-device escape hatch: it drops the cached
// model AND marks the device's incremental gap statistics for a from-store
// rebuild. The ingest hot path no longer calls it — ObserveIngest maintains
// the statistics in place — so it remains for the cases incremental updates
// cannot cover: δ changes (SetDelta) and explicit operator resets.
func (l *Localizer) InvalidateDevice(d event.DeviceID) {
	l.models.Delete(d)
	l.stats.markRebuild(d)
}

// InvalidateAll drops every cached model (an O(1) epoch bump), the
// population model, and every incremental statistic (each device rebuilds
// lazily from the store).
func (l *Localizer) InvalidateAll() {
	l.models.Invalidate()
	l.popMu.Lock()
	l.population = nil
	l.popMu.Unlock()
	l.stats.clear()
}

// ModelCacheStats reports the model cache's size, capacity, and counters.
func (l *Localizer) ModelCacheStats() cache.Stats {
	return l.models.Stats()
}

// Locate answers the coarse query (d, t_q).
//
// If t_q lies inside a validity interval the device is in the region covered
// by the event's AP. If t_q lies in a gap, the gap is classified
// inside/outside and, when inside, assigned a region. A query after the
// device's last event (the real-time case: the gap has not closed yet) is
// classified as an *open gap* using the elapsed duration since the last
// validity. A query before the device's first event is reported outside.
func (l *Localizer) Locate(d event.DeviceID, tq time.Time) (Result, error) {
	v, g, err := l.store.At(d, tq)
	if err != nil {
		return Result{}, fmt.Errorf("coarse: locating %s: %w", d, err)
	}
	if v != nil {
		region, ok := l.building.RegionOf(v.Event.AP)
		if !ok {
			return Result{}, fmt.Errorf("coarse: event references unknown AP %s", v.Event.AP)
		}
		return Result{Region: region, FromValidity: true, Confidence: 1}, nil
	}
	if g == nil {
		if og, ok := l.openGap(d, tq); ok {
			return l.classifyGap(d, og, tq)
		}
		// No events at or before t_q: the device is offline.
		return Result{Outside: true, Confidence: 1}, nil
	}
	return l.classifyGap(d, *g, tq)
}

// openGap synthesizes the unclosed gap between the device's last event and
// a query time beyond it: the gap runs from the end of the last validity to
// t_q, and — since no later event exists — both endpoints carry the last
// event's region. Used for real-time queries ("where is d now?").
func (l *Localizer) openGap(d event.DeviceID, tq time.Time) (event.Gap, bool) {
	last, ok := l.store.LastEventAtOrBefore(d, tq)
	if !ok {
		return event.Gap{}, false
	}
	// Read δ once: a concurrent EstimateDeltas/SetDelta between two reads
	// would otherwise synthesize a gap from two different deltas.
	delta := l.store.Delta(d)
	start := last.Time.Add(delta)
	if !start.Before(tq) {
		return event.Gap{}, false
	}
	next := last
	next.Time = tq.Add(delta)
	return event.Gap{
		Device:    d,
		Start:     start,
		End:       tq,
		PrevEvent: last,
		NextEvent: next,
	}, true
}

// classifyGap runs the bootstrap heuristics and, when they are inconclusive,
// the trained classifiers on the query gap.
func (l *Localizer) classifyGap(d event.DeviceID, g event.Gap, tq time.Time) (Result, error) {
	th := l.opts.Thresholds
	feat := l.featurize(d, g)

	// Bootstrap heuristics answer directly when conclusive.
	switch {
	case g.Duration() <= th.TauLow:
		region := l.bootstrapRegion(d, g)
		return Result{Region: region, Confidence: 1, Gap: &g}, nil
	case g.Duration() >= th.TauHigh:
		return Result{Outside: true, Confidence: 1, Gap: &g}, nil
	}

	m, err := l.model(d)
	if err != nil {
		return Result{}, err
	}

	inside, conf := m.predictInside(feat)
	if !inside {
		return Result{Outside: true, Confidence: conf, Gap: &g}, nil
	}
	region, rconf := m.predictRegion(feat, l.bootstrapRegion(d, g))
	c := conf * rconf
	return Result{Region: region, Confidence: c, Gap: &g}, nil
}

// bootstrapRegion applies the paper's region heuristic for inside gaps:
// start==end region ⇒ that region; otherwise the most-visited region among
// the device's historical events whose time of day overlaps the gap's
// [start,end] time-of-day window.
func (l *Localizer) bootstrapRegion(d event.DeviceID, g event.Gap) space.RegionID {
	gs, okS := l.building.RegionOf(g.PrevEvent.AP)
	ge, okE := l.building.RegionOf(g.NextEvent.AP)
	if okS && okE && gs == ge {
		return gs
	}
	if r, ok := l.mostVisitedRegionInWindow(d, g); ok {
		return r
	}
	if okS {
		return gs
	}
	if okE {
		return ge
	}
	regions := l.building.Regions()
	if len(regions) > 0 {
		return regions[0]
	}
	return ""
}

// mostVisitedRegionInWindow counts the device's historical events whose
// time-of-day falls inside the gap's time-of-day window and returns the
// modal region. Ties break lexicographically for determinism. The history
// window is visited in place (store.ScanEvents) — counting retains nothing,
// so this per-query path makes no log copy.
func (l *Localizer) mostVisitedRegionInWindow(d event.DeviceID, g event.Gap) (space.RegionID, bool) {
	startSec := secondOfDay(g.Start)
	endSec := secondOfDay(g.End)
	counts := make(map[space.RegionID]int)
	l.scanHistory(d, g.Start, func(evs []event.Event) {
		for _, e := range evs {
			s := secondOfDay(e.Time)
			if inDayWindow(s, startSec, endSec) {
				if region, ok := l.building.RegionOf(e.AP); ok {
					counts[region]++
				}
			}
		}
	})
	if len(counts) == 0 {
		return "", false
	}
	regions := make([]space.RegionID, 0, len(counts))
	for r := range counts {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	best := regions[0]
	for _, r := range regions[1:] {
		if counts[r] > counts[best] {
			best = r
		}
	}
	return best, true
}

func secondOfDay(t time.Time) int {
	return t.Hour()*3600 + t.Minute()*60 + t.Second()
}

// inDayWindow reports whether second-of-day s lies in [start, end],
// handling windows that wrap past midnight.
func inDayWindow(s, start, end int) bool {
	if start <= end {
		return s >= start && s <= end
	}
	return s >= start || s <= end
}

// historyEvents returns a copy of the device's events in the N-day window
// ending at ref (exclusive of events after ref). Training paths that retain
// the slice (timeline construction, featurization) use it; per-query paths
// that only count use scanHistory.
func (l *Localizer) historyEvents(d event.DeviceID, ref time.Time) []event.Event {
	start := ref.AddDate(0, 0, -l.opts.HistoryDays)
	return l.store.EventsBetween(d, start, ref)
}

// scanHistory visits the same window as historyEvents zero-copy, under the
// store's shared lock. fn must not retain the slice.
func (l *Localizer) scanHistory(d event.DeviceID, ref time.Time, fn func(evs []event.Event)) {
	start := ref.AddDate(0, 0, -l.opts.HistoryDays)
	l.store.ScanEvents(d, start, ref, func(evs []event.Event, _ time.Duration) { fn(evs) })
}
