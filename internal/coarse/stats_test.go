package coarse

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"locater/internal/event"
	"locater/internal/store"
)

// statsDiff returns the largest absolute field-wise difference between two
// DeviceStats.
func statsDiff(a, b DeviceStats) float64 {
	max := 0.0
	acc := func(x, y float64) {
		if d := math.Abs(x - y); d > max {
			max = d
		}
	}
	acc(a.Events, b.Events)
	acc(a.Gaps, b.Gaps)
	acc(a.GapSeconds, b.GapSeconds)
	acc(a.Inside, b.Inside)
	acc(a.Outside, b.Outside)
	acc(float64(a.LastNanos), float64(b.LastNanos))
	acc(float64(a.RawEvents), float64(b.RawEvents))
	for i := range a.Hist {
		acc(a.Hist[i], b.Hist[i])
	}
	return max
}

func TestIncrementalStatsMatchOracleInOrder(t *testing.T) {
	st := store.New(5 * time.Minute)
	l := New(testBuilding(t), st, Options{})
	d := event.DeviceID("dev-1")

	rng := rand.New(rand.NewSource(42))
	cur := t0
	for batch := 0; batch < 20; batch++ {
		var evs []event.Event
		for i := 0; i < 10; i++ {
			// Mixed spacings: some within 2δ (no gap), some short gaps
			// (≤ τl), some long (≥ τh).
			switch rng.Intn(3) {
			case 0:
				cur = cur.Add(time.Duration(1+rng.Intn(8)) * time.Minute)
			case 1:
				cur = cur.Add(time.Duration(12+rng.Intn(20)) * time.Minute)
			default:
				cur = cur.Add(time.Duration(4+rng.Intn(6)) * time.Hour)
			}
			evs = append(evs, event.Event{Device: d, Time: cur, AP: "apA"})
		}
		if _, err := st.Ingest(evs); err != nil {
			t.Fatal(err)
		}
		l.ObserveIngest(evs)
		got, ok := l.DeviceStatsOf(d)
		if !ok {
			t.Fatalf("batch %d: no stats", batch)
		}
		want, ok := l.BatchDeviceStats(d)
		if !ok {
			t.Fatalf("batch %d: no oracle stats", batch)
		}
		if diff := statsDiff(got, want); diff > 1e-9 {
			t.Fatalf("batch %d: incremental vs oracle diff %g\nincr %+v\noracle %+v", batch, diff, got, want)
		}
	}
	ms := l.MaintenanceStats()
	if ms.StatsDevices != 1 {
		t.Fatalf("stats devices %d, want 1", ms.StatsDevices)
	}
	// Exactly one rebuild: the lazy first-sight one. In-order ingest never
	// falls back afterwards.
	if ms.Rebuilds != 1 || ms.OutOfOrder != 0 {
		t.Fatalf("maintenance %+v, want rebuilds=1 out_of_order=0", ms)
	}
	if ms.ObserveNanos <= 0 {
		t.Fatalf("maintenance %+v, want observe time accounted", ms)
	}
}

func TestOutOfOrderIngestRebuilds(t *testing.T) {
	st := store.New(5 * time.Minute)
	l := New(testBuilding(t), st, Options{})
	d := event.DeviceID("dev-ooo")

	first := []event.Event{
		{Device: d, Time: t0.Add(2 * time.Hour), AP: "apA"},
		{Device: d, Time: t0.Add(3 * time.Hour), AP: "apA"},
	}
	if _, err := st.Ingest(first); err != nil {
		t.Fatal(err)
	}
	l.ObserveIngest(first)
	if _, ok := l.DeviceStatsOf(d); !ok {
		t.Fatal("no stats after first batch")
	}

	// A late event older than the newest must flag a rebuild, after which
	// the stats match the oracle exactly.
	late := []event.Event{{Device: d, Time: t0.Add(time.Hour), AP: "apB"}}
	if _, err := st.Ingest(late); err != nil {
		t.Fatal(err)
	}
	l.ObserveIngest(late)
	ms := l.MaintenanceStats()
	if ms.OutOfOrder != 1 {
		t.Fatalf("maintenance %+v, want out_of_order=1", ms)
	}
	got, ok := l.DeviceStatsOf(d)
	if !ok {
		t.Fatal("no stats after rebuild")
	}
	want, _ := l.BatchDeviceStats(d)
	if diff := statsDiff(got, want); diff != 0 {
		t.Fatalf("post-rebuild diff %g", diff)
	}
	if after := l.MaintenanceStats(); after.Rebuilds != ms.Rebuilds+1 {
		t.Fatalf("rebuilds %d, want %d", after.Rebuilds, ms.Rebuilds+1)
	}
}

func TestSetDeltaInvalidatesStats(t *testing.T) {
	st := store.New(5 * time.Minute)
	l := New(testBuilding(t), st, Options{})
	d := event.DeviceID("dev-delta")
	evs := []event.Event{
		{Device: d, Time: t0, AP: "apA"},
		{Device: d, Time: t0.Add(30 * time.Minute), AP: "apA"},
		{Device: d, Time: t0.Add(5 * time.Hour), AP: "apA"},
	}
	if _, err := st.Ingest(evs); err != nil {
		t.Fatal(err)
	}
	l.ObserveIngest(evs)
	before, _ := l.DeviceStatsOf(d)

	// δ 5m→15m: the 30-minute spacing stops being a gap. The stats must
	// rebuild with the new δ and keep matching the oracle.
	if err := st.SetDelta(d, 15*time.Minute); err != nil {
		t.Fatal(err)
	}
	l.InvalidateDevice(d)
	after, ok := l.DeviceStatsOf(d)
	if !ok {
		t.Fatal("no stats after δ change")
	}
	if after.Gaps >= before.Gaps {
		t.Fatalf("gaps %v → %v, want fewer after widening δ", before.Gaps, after.Gaps)
	}
	want, _ := l.BatchDeviceStats(d)
	if diff := statsDiff(after, want); diff != 0 {
		t.Fatalf("post-δ-change diff %g", diff)
	}
}

func TestInvalidateAllClearsStats(t *testing.T) {
	st := store.New(5 * time.Minute)
	l := New(testBuilding(t), st, Options{})
	d := event.DeviceID("dev-clear")
	evs := []event.Event{
		{Device: d, Time: t0, AP: "apA"},
		{Device: d, Time: t0.Add(time.Hour), AP: "apA"},
	}
	if _, err := st.Ingest(evs); err != nil {
		t.Fatal(err)
	}
	l.ObserveIngest(evs)
	if _, ok := l.DeviceStatsOf(d); !ok {
		t.Fatal("no stats before clear")
	}
	l.InvalidateAll()
	if n := l.MaintenanceStats().StatsDevices; n != 0 {
		t.Fatalf("stats devices %d after InvalidateAll, want 0", n)
	}
	// Lazy rebuild serves the device again.
	got, ok := l.DeviceStatsOf(d)
	if !ok {
		t.Fatal("no stats after clear")
	}
	want, _ := l.BatchDeviceStats(d)
	if diff := statsDiff(got, want); diff != 0 {
		t.Fatalf("post-clear diff %g", diff)
	}
}

func TestDeviceStatsOfUnknownDevice(t *testing.T) {
	st := store.New(5 * time.Minute)
	l := New(testBuilding(t), st, Options{})
	if _, ok := l.DeviceStatsOf("ghost"); ok {
		t.Fatal("stats reported for unknown device")
	}
	if _, ok := l.BatchDeviceStats("ghost"); ok {
		t.Fatal("oracle stats reported for unknown device")
	}
}

func TestObserveIngestInvalidatesModels(t *testing.T) {
	b := testBuilding(t)
	st := store.New(0)
	seedHistory(t, st, "dev-model", 30)
	l := newLocalizer(t, b, st)
	// Train via a gap query, then ingest: the cached model must drop.
	if _, err := l.Locate("dev-model", t0.AddDate(0, 0, 29).Add(12*time.Hour+20*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.cachedModel("dev-model"); !ok {
		t.Fatal("model not cached after query")
	}
	evs := []event.Event{{Device: "dev-model", Time: t0.AddDate(0, 0, 30), AP: "apA"}}
	if _, err := st.Ingest(evs); err != nil {
		t.Fatal(err)
	}
	l.ObserveIngest(evs)
	if _, ok := l.cachedModel("dev-model"); ok {
		t.Fatal("model survived ObserveIngest")
	}
	if ms := l.MaintenanceStats(); ms.Trains == 0 || ms.TrainNanos <= 0 {
		t.Fatalf("maintenance %+v, want training accounted", ms)
	}
}

func TestStatsManyDevicesConcurrent(t *testing.T) {
	st := store.New(5 * time.Minute)
	l := New(testBuilding(t), st, Options{})
	const devs = 40
	done := make(chan error, devs)
	for i := 0; i < devs; i++ {
		go func(i int) {
			d := event.DeviceID(fmt.Sprintf("dev-%02d", i))
			cur := t0.Add(time.Duration(i) * time.Minute)
			for b := 0; b < 5; b++ {
				var evs []event.Event
				for j := 0; j < 8; j++ {
					cur = cur.Add(time.Duration(7+j) * time.Minute)
					evs = append(evs, event.Event{Device: d, Time: cur, AP: "apA"})
				}
				if _, err := st.Ingest(evs); err != nil {
					done <- err
					return
				}
				l.ObserveIngest(evs)
			}
			got, ok := l.DeviceStatsOf(d)
			if !ok {
				done <- fmt.Errorf("%s: no stats", d)
				return
			}
			want, _ := l.BatchDeviceStats(d)
			if diff := statsDiff(got, want); diff > 1e-9 {
				done <- fmt.Errorf("%s: diff %g", d, diff)
				return
			}
			done <- nil
		}(i)
	}
	for i := 0; i < devs; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if n := l.MaintenanceStats().StatsDevices; n != devs {
		t.Fatalf("stats devices %d, want %d", n, devs)
	}
}

func TestGapBucketBounds(t *testing.T) {
	if b := gapBucket(int64(500 * time.Millisecond)); b != 0 {
		t.Fatalf("sub-second gap bucket %d, want 0", b)
	}
	if b := gapBucket(int64(time.Second)); b != 1 {
		t.Fatalf("1s gap bucket %d, want 1", b)
	}
	// The largest representable gap (~292 years of nanos) still lands
	// inside the histogram.
	if b := gapBucket(math.MaxInt64); b <= 0 || b >= GapHistBuckets {
		t.Fatalf("huge gap bucket %d out of range", b)
	}
}
