package coarse

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"locater/internal/event"
	"locater/internal/space"
	"locater/internal/store"
)

var t0 = time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC) // Monday midnight

// cachedModel peeks at the model cache for a device without training.
// Entries orphaned by InvalidateAll (epoch bump) report as absent.
func (l *Localizer) cachedModel(d event.DeviceID) (*deviceModel, bool) {
	return l.models.Peek(d)
}

// testBuilding builds a 3-AP, 9-room building.
func testBuilding(t *testing.T) *space.Building {
	t.Helper()
	b, err := space.NewBuilding(space.Config{
		Name: "coarse-test",
		Rooms: []space.Room{
			{ID: "r1", Kind: space.Private}, {ID: "r2", Kind: space.Private},
			{ID: "r3", Kind: space.Public}, {ID: "r4", Kind: space.Private},
			{ID: "r5", Kind: space.Private}, {ID: "r6", Kind: space.Public},
			{ID: "r7", Kind: space.Private}, {ID: "r8", Kind: space.Private},
			{ID: "r9", Kind: space.Private},
		},
		AccessPoints: []space.AccessPoint{
			{ID: "apA", Coverage: []space.RoomID{"r1", "r2", "r3", "r4"}},
			{ID: "apB", Coverage: []space.RoomID{"r3", "r4", "r5", "r6"}},
			{ID: "apC", Coverage: []space.RoomID{"r6", "r7", "r8", "r9"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// seedHistory ingests `days` workdays of a regular pattern for device d:
// events every 10 minutes on apA from 9:00 to 12:00, a 45-minute silent
// stretch inside (12:00–12:45 no events, still apA at 12:45–13:00), then
// nothing after 13:00 (outside).
func seedHistory(t *testing.T, st *store.Store, d event.DeviceID, days int) {
	t.Helper()
	var evs []event.Event
	for day := 0; day < days; day++ {
		base := t0.AddDate(0, 0, day)
		for m := 0; m <= 180; m += 10 { // 9:00–12:00
			evs = append(evs, event.Event{
				Device: d, Time: base.Add(9*time.Hour + time.Duration(m)*time.Minute), AP: "apA",
			})
		}
		// Short inside silence, then two more events; the 13:30→14:05
		// pair leaves a 15-minute gap (≤ τl), a bootstrap-inside example.
		evs = append(evs,
			event.Event{Device: d, Time: base.Add(12*time.Hour + 45*time.Minute), AP: "apA"},
			event.Event{Device: d, Time: base.Add(13 * time.Hour), AP: "apA"},
			event.Event{Device: d, Time: base.Add(13*time.Hour + 30*time.Minute), AP: "apA"},
			event.Event{Device: d, Time: base.Add(14*time.Hour + 5*time.Minute), AP: "apA"},
		)
	}
	if _, err := st.Ingest(evs); err != nil {
		t.Fatal(err)
	}
	if err := st.SetDelta(d, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
}

func newLocalizer(t *testing.T, b *space.Building, st *store.Store) *Localizer {
	t.Helper()
	return New(b, st, Options{
		HistoryDays:           30,
		MaxPromotionsPerRound: 8,
	})
}

func TestLocateValidityHit(t *testing.T) {
	b := testBuilding(t)
	st := store.New(0)
	seedHistory(t, st, "dev", 10)
	l := newLocalizer(t, b, st)

	// 9:05 on day 9: inside apA's validity.
	res, err := l.Locate("dev", t0.AddDate(0, 0, 9).Add(9*time.Hour+5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outside || !res.FromValidity {
		t.Fatalf("expected validity hit, got %+v", res)
	}
	gA, _ := b.RegionOf("apA")
	if res.Region != gA {
		t.Errorf("region = %s, want %s", res.Region, gA)
	}
	if res.Confidence != 1 {
		t.Errorf("validity confidence = %v, want 1", res.Confidence)
	}
}

func TestLocateNoDataIsOutside(t *testing.T) {
	b := testBuilding(t)
	st := store.New(0)
	seedHistory(t, st, "dev", 10)
	l := newLocalizer(t, b, st)

	// 3:00 (night): after the previous day's last validity, before the next
	// day's first event — that is a long gap, bootstrap labels outside.
	res, err := l.Locate("dev", t0.AddDate(0, 0, 9).Add(3*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outside {
		t.Fatalf("night query should be outside, got %+v", res)
	}
	// Before any data at all: outside.
	res, err = l.Locate("dev", t0.Add(-24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outside {
		t.Fatalf("pre-history query should be outside, got %+v", res)
	}
}

func TestLocateShortGapBootstrapsInside(t *testing.T) {
	b := testBuilding(t)
	st := store.New(0)
	seedHistory(t, st, "dev", 10)
	l := newLocalizer(t, b, st)

	// 12:20 on day 9: inside the 12:10–12:35 gap (after 12:00+δ, before
	// 12:45−δ). Duration 25m is between τl=20m and τh=180m → classifier
	// decides; with start==end region the region heuristic gives apA.
	res, err := l.Locate("dev", t0.AddDate(0, 0, 9).Add(12*time.Hour+20*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.Gap == nil {
		t.Fatalf("expected a gap repair, got %+v", res)
	}
	if res.Outside {
		t.Fatalf("25-minute mid-day gap should be inside, got outside")
	}
	gA, _ := b.RegionOf("apA")
	if res.Region != gA {
		t.Errorf("region = %s, want %s", res.Region, gA)
	}
}

func TestLocateTinyGapUsesBootstrapDirectly(t *testing.T) {
	b := testBuilding(t)
	st := store.New(0)
	d := event.DeviceID("dev2")
	// Two events 35 minutes apart with δ=10m: gap of 15m ≤ τl → inside.
	evs := []event.Event{
		{Device: d, Time: t0.Add(9 * time.Hour), AP: "apB"},
		{Device: d, Time: t0.Add(9*time.Hour + 35*time.Minute), AP: "apB"},
	}
	if _, err := st.Ingest(evs); err != nil {
		t.Fatal(err)
	}
	st.SetDelta(d, 10*time.Minute)
	l := newLocalizer(t, b, st)

	res, err := l.Locate(d, t0.Add(9*time.Hour+17*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outside {
		t.Fatal("15-minute gap should bootstrap to inside")
	}
	gB, _ := b.RegionOf("apB")
	if res.Region != gB {
		t.Errorf("region = %s, want %s (start==end heuristic)", res.Region, gB)
	}
	if res.Confidence != 1 {
		t.Errorf("bootstrap answer confidence = %v, want 1", res.Confidence)
	}
}

func TestLocateLongGapBootstrapsOutside(t *testing.T) {
	b := testBuilding(t)
	st := store.New(0)
	d := event.DeviceID("dev3")
	evs := []event.Event{
		{Device: d, Time: t0.Add(9 * time.Hour), AP: "apA"},
		{Device: d, Time: t0.Add(15 * time.Hour), AP: "apA"},
	}
	if _, err := st.Ingest(evs); err != nil {
		t.Fatal(err)
	}
	st.SetDelta(d, 10*time.Minute)
	l := newLocalizer(t, b, st)

	res, err := l.Locate(d, t0.Add(12*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outside {
		t.Fatalf("6-hour gap should bootstrap to outside, got %+v", res)
	}
}

func TestRegionHeuristicMostVisited(t *testing.T) {
	b := testBuilding(t)
	st := store.New(0)
	d := event.DeviceID("dev4")
	var evs []event.Event
	// History: many midday events on apB across days (most visited in the
	// window), then a day with a gap whose endpoints disagree (apA → apC).
	for day := 0; day < 5; day++ {
		base := t0.AddDate(0, 0, day)
		for m := 0; m < 60; m += 10 {
			evs = append(evs, event.Event{Device: d, Time: base.Add(11*time.Hour + time.Duration(m)*time.Minute), AP: "apB"})
		}
	}
	base := t0.AddDate(0, 0, 5)
	evs = append(evs,
		event.Event{Device: d, Time: base.Add(11 * time.Hour), AP: "apA"},
		event.Event{Device: d, Time: base.Add(11*time.Hour + 29*time.Minute), AP: "apC"},
	)
	if _, err := st.Ingest(evs); err != nil {
		t.Fatal(err)
	}
	st.SetDelta(d, 5*time.Minute)
	l := newLocalizer(t, b, st)

	// Gap (11:05, 11:24), 19m ≤ τl → inside; start region ≠ end region →
	// most visited region in the 11:05–11:24 window is apB.
	res, err := l.Locate(d, base.Add(11*time.Hour+15*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outside {
		t.Fatal("short gap should be inside")
	}
	gB, _ := b.RegionOf("apB")
	if res.Region != gB {
		t.Errorf("region = %s, want most-visited %s", res.Region, gB)
	}
}

func TestModelCaching(t *testing.T) {
	b := testBuilding(t)
	st := store.New(0)
	seedHistory(t, st, "dev", 8)
	l := newLocalizer(t, b, st)

	tq := t0.AddDate(0, 0, 7).Add(12*time.Hour + 20*time.Minute)
	if _, err := l.Locate("dev", tq); err != nil {
		t.Fatal(err)
	}
	m1, ok := l.cachedModel("dev")
	if !ok {
		t.Fatal("model not cached after first query")
	}
	if _, err := l.Locate("dev", tq); err != nil {
		t.Fatal(err)
	}
	if m2, _ := l.cachedModel("dev"); m2 != m1 {
		t.Error("model retrained despite cache")
	}
	l.InvalidateDevice("dev")
	if _, ok := l.cachedModel("dev"); ok {
		t.Error("InvalidateDevice did not evict")
	}
	if _, err := l.Locate("dev", tq); err != nil {
		t.Fatal(err)
	}
	l.InvalidateAll()
	if _, ok := l.cachedModel("dev"); ok {
		t.Error("InvalidateAll left a servable model")
	}
}

// TestConcurrentModelCache drives Locate (lazy shard-locked training)
// against per-device and global invalidation from many goroutines across
// many devices — the sharded cache's contention surface (run under -race
// in CI).
func TestConcurrentModelCache(t *testing.T) {
	b := testBuilding(t)
	st := store.New(0)
	devices := []event.DeviceID{"dev0", "dev1", "dev2", "dev3", "dev4", "dev5"}
	for _, d := range devices {
		seedHistory(t, st, d, 8)
	}
	l := newLocalizer(t, b, st)

	tq := t0.AddDate(0, 0, 7).Add(12*time.Hour + 20*time.Minute)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				d := devices[(i+w)%len(devices)]
				if _, err := l.Locate(d, tq); err != nil {
					t.Errorf("concurrent Locate(%s): %v", d, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			l.InvalidateDevice(devices[i%len(devices)])
			if i%10 == 9 {
				l.InvalidateAll()
			}
		}
	}()
	wg.Wait()

	// After the dust settles every device still answers.
	for _, d := range devices {
		if _, err := l.Locate(d, tq); err != nil {
			t.Fatalf("post-race Locate(%s): %v", d, err)
		}
	}
}

func TestEmptyStoreError(t *testing.T) {
	b := testBuilding(t)
	st := store.New(0)
	// One device with two far-apart events to produce a mid gap, but query
	// a *different* device that has no events at all: outside.
	l := newLocalizer(t, b, st)
	res, err := l.Locate("ghost", t0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outside {
		t.Error("device with no events should be outside")
	}
}

func TestFeatureVector(t *testing.T) {
	b := testBuilding(t)
	st := store.New(0)
	seedHistory(t, st, "dev", 5)
	l := newLocalizer(t, b, st)

	g := event.Gap{
		Device:    "dev",
		Start:     t0.Add(10 * time.Hour),
		End:       t0.Add(11 * time.Hour),
		PrevEvent: event.Event{Device: "dev", Time: t0.Add(9 * time.Hour), AP: "apA"},
		NextEvent: event.Event{Device: "dev", Time: t0.Add(12 * time.Hour), AP: "apB"},
	}
	f := l.featurize("dev", g)
	v := f.Vector()
	if len(v) != NumFeatures {
		t.Fatalf("vector length = %d, want %d", len(v), NumFeatures)
	}
	if f.StartTime != 10*3600 || f.EndTime != 11*3600 {
		t.Errorf("times = %v %v", f.StartTime, f.EndTime)
	}
	if f.Duration != 3600 {
		t.Errorf("duration = %v", f.Duration)
	}
	if f.StartDay != float64(time.Monday) {
		t.Errorf("start day = %v", f.StartDay)
	}
	if f.StartRegion == f.EndRegion {
		t.Error("regions should differ (apA vs apB)")
	}
	if f.Density <= 0 {
		t.Error("density should be positive: history has events 10:00–11:00")
	}
}

func TestGapSpansDays(t *testing.T) {
	g := event.Gap{Start: t0.Add(23 * time.Hour), End: t0.Add(25 * time.Hour)}
	if !gapSpansDays(g) {
		t.Error("gap crossing midnight should span days")
	}
	g2 := event.Gap{Start: t0.Add(9 * time.Hour), End: t0.Add(10 * time.Hour)}
	if gapSpansDays(g2) {
		t.Error("same-day gap should not span days")
	}
}

func TestInDayWindowWrap(t *testing.T) {
	// Window 23:00 → 01:00 wraps midnight.
	if !inDayWindow(0, 23*3600, 1*3600) {
		t.Error("midnight should be inside the wrapped window")
	}
	if inDayWindow(12*3600, 23*3600, 1*3600) {
		t.Error("noon should be outside the wrapped window")
	}
	if !inDayWindow(12*3600, 9*3600, 17*3600) {
		t.Error("noon should be inside 9–17")
	}
}

func TestDefaultThresholds(t *testing.T) {
	th := DefaultThresholds()
	if th.TauLow != 20*time.Minute || th.TauHigh != 180*time.Minute {
		t.Errorf("inside/outside thresholds = %v", th)
	}
	if th.RegionTauLow != 20*time.Minute || th.RegionTauHigh != 40*time.Minute {
		t.Errorf("region thresholds = %v", th)
	}
}

func TestOpenGapRealtimeQueries(t *testing.T) {
	b := testBuilding(t)
	st := store.New(0)
	d := event.DeviceID("rt")
	st.SetDelta(d, 10*time.Minute)
	// Last event 15 minutes ago on apB: short open gap → still inside apB.
	now := t0.Add(10 * time.Hour)
	st.Ingest([]event.Event{
		{Device: d, Time: now.Add(-2 * time.Hour), AP: "apB"},
		{Device: d, Time: now.Add(-15 * time.Minute), AP: "apB"},
	})
	l := newLocalizer(t, b, st)

	res, err := l.Locate(d, now)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outside {
		t.Fatalf("15-minute-old last event should still be inside: %+v", res)
	}
	gB, _ := b.RegionOf("apB")
	if res.Region != gB {
		t.Errorf("open-gap region = %s, want %s", res.Region, gB)
	}
	// 6 hours after the last event: outside.
	res, err = l.Locate(d, now.Add(6*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outside {
		t.Fatalf("6-hour open gap should be outside: %+v", res)
	}
}

// TestModelCacheBounded: training more devices than the cache capacity must
// evict old models instead of growing without bound, and evicted devices
// stay answerable (they just retrain).
func TestModelCacheBounded(t *testing.T) {
	b := testBuilding(t)
	st := store.New(0)
	devices := make([]event.DeviceID, 8)
	for i := range devices {
		devices[i] = event.DeviceID(fmt.Sprintf("dev%d", i))
		seedHistory(t, st, devices[i], 8)
	}
	const capacity = 3
	l := New(b, st, Options{
		HistoryDays:           30,
		MaxPromotionsPerRound: 8,
		ModelCacheCapacity:    capacity,
	})

	tq := t0.AddDate(0, 0, 7).Add(12*time.Hour + 20*time.Minute)
	for _, d := range devices {
		if _, err := l.Locate(d, tq); err != nil {
			t.Fatal(err)
		}
		if st := l.ModelCacheStats(); st.Size > st.Capacity {
			t.Fatalf("model cache size %d exceeds capacity %d", st.Size, st.Capacity)
		}
	}
	stats := l.ModelCacheStats()
	if stats.Capacity != capacity {
		t.Errorf("capacity = %d, want %d", stats.Capacity, capacity)
	}
	if stats.Evictions == 0 {
		t.Error("no evictions after training past capacity")
	}
	// An evicted device still answers (retrained on demand).
	if _, err := l.Locate(devices[0], tq); err != nil {
		t.Fatalf("evicted device no longer answerable: %v", err)
	}
}
