package coarse

import (
	"time"

	"locater/internal/event"
	"locater/internal/ml"
	"locater/internal/space"
)

// populationModel lazily trains a building-wide model on the pooled,
// bootstrap-labeled gaps of every device with history. It serves devices
// with no connectivity history of their own (e.g. a person entering the
// building for the first time), per the paper's footnote 5: label such
// devices "based on aggregated location, e.g., most common label for other
// devices".
//
// Pooling uses only bootstrap labels (no per-device self-training): the
// population model captures building-wide rhythm (night gaps are outside,
// short daytime gaps are inside), not individual habits.
// populationModel is called with a model-shard lock held; popMu is always
// acquired after a shard lock (never the reverse), so the order is acyclic.
func (l *Localizer) populationModel(ref time.Time) *deviceModel {
	l.popMu.Lock()
	defer l.popMu.Unlock()
	if l.population != nil && !l.population.trainedAt.Before(ref) {
		return l.population
	}
	th := l.opts.Thresholds
	regionLabels := l.building.Regions()
	regionIdx := make(map[space.RegionID]int, len(regionLabels))
	for i, r := range regionLabels {
		regionIdx[r] = i
	}

	var labeled, rLabeled []labeledGap
	const maxDevices = 64 // bound population training cost
	devices := samplePopulation(l.store.Devices(), maxDevices)
	for _, dev := range devices {
		hist := l.historyEvents(dev, ref)
		if len(hist) < 2 {
			continue
		}
		tl, err := event.NewTimeline(dev, l.store.Delta(dev), hist)
		if err != nil {
			continue
		}
		gaps := tl.Gaps()
		const maxGapsPerDevice = 50
		if len(gaps) > maxGapsPerDevice {
			gaps = gaps[len(gaps)-maxGapsPerDevice:]
		}
		for _, g := range gaps {
			// Unlike per-device training, midnight-spanning gaps stay in
			// the population pool when they are long: overnight absences
			// are the clearest building-wide "outside" examples.
			if gapSpansDays(g) && g.Duration() < th.TauHigh {
				continue
			}
			f := l.featurizeWithHistory(g, hist)
			switch {
			case g.Duration() <= th.TauLow:
				labeled = append(labeled, labeledGap{features: f, label: classInside})
				gs, okS := l.building.RegionOf(g.PrevEvent.AP)
				ge, okE := l.building.RegionOf(g.NextEvent.AP)
				if okS && okE && gs == ge {
					rLabeled = append(rLabeled, labeledGap{features: f, label: regionIdx[gs]})
				}
			case g.Duration() >= th.TauHigh:
				labeled = append(labeled, labeledGap{features: f, label: classOutside})
			}
		}
	}
	if len(labeled) == 0 {
		return nil
	}

	m := &deviceModel{trainedAt: ref, numGaps: len(labeled), regionLabels: regionLabels}
	clf, maj, err := l.selfTrain(labeled, nil, 2)
	if err != nil {
		return nil
	}
	m.insideModel, m.insideMajority = clf, maj
	rclf, rmaj, err := l.selfTrain(rLabeled, nil, len(regionLabels))
	if err != nil {
		m.regionMajority = &ml.MajorityClassifier{Class: 0}
	} else {
		m.regionModel, m.regionMajority = rclf, rmaj
	}
	l.population = m
	return m
}

// samplePopulation bounds the population-training pool to at most max
// devices with a deterministic, even stride across the full sorted device
// list. Taking a prefix instead (the pre-fix behavior) trained the
// building-wide model on the 64 lexicographically-smallest MAC addresses —
// a biased sample when ID prefixes correlate with vendor, cohort, or
// arrival order. The stride keeps the pool representative of the whole
// population while staying reproducible across rebuilds.
func samplePopulation(devices []event.DeviceID, max int) []event.DeviceID {
	if max <= 0 || len(devices) <= max {
		return devices
	}
	stride := float64(len(devices)) / float64(max)
	out := make([]event.DeviceID, 0, max)
	for i := 0; i < max; i++ {
		// Midpoint sampling: index floor((i+0.5)·stride) — strictly
		// increasing because stride > 1, and spanning the first through
		// the last stride-window of the list.
		out = append(out, devices[int((float64(i)+0.5)*stride)])
	}
	return out
}
