package coarse

import (
	"fmt"
	"testing"
	"time"

	"locater/internal/event"
	"locater/internal/store"
)

// TestPopulationFallbackForNewDevice: a device with zero history (first day
// in the building) must be served by the building-wide population model —
// night gaps classified outside, short daytime gaps inside — rather than a
// blind default.
func TestPopulationFallbackForNewDevice(t *testing.T) {
	b := testBuilding(t)
	st := store.New(0)
	// Six resident devices with regular history feed the population model.
	for i := 0; i < 6; i++ {
		seedHistory(t, st, event.DeviceID("res"+string(rune('a'+i))), 10)
	}
	l := newLocalizer(t, b, st)

	// The newcomer has exactly two events today, 40 minutes apart, with a
	// 20-minute gap between validities (δ=10m): between τl and τh, so the
	// classifier must decide — and it has no personal history.
	day := t0.AddDate(0, 0, 9)
	newDev := event.DeviceID("newcomer")
	st.SetDelta(newDev, 10*time.Minute)
	st.Ingest([]event.Event{
		{Device: newDev, Time: day.Add(10 * time.Hour), AP: "apB"},
		{Device: newDev, Time: day.Add(10*time.Hour + 50*time.Minute), AP: "apB"},
	})

	res, err := l.Locate(newDev, day.Add(10*time.Hour+25*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	// Residents' short daytime gaps are inside; the population model should
	// transfer that pattern.
	if res.Outside {
		t.Errorf("population model classified a short daytime gap outside: %+v", res)
	}
}

func TestPopulationModelCachedAndInvalidated(t *testing.T) {
	b := testBuilding(t)
	st := store.New(0)
	for i := 0; i < 4; i++ {
		seedHistory(t, st, event.DeviceID("res"+string(rune('a'+i))), 6)
	}
	l := newLocalizer(t, b, st)
	_, maxT, _ := st.TimeBounds()

	m1 := l.populationModel(maxT)
	if m1 == nil {
		t.Fatal("population model not built despite resident history")
	}
	m2 := l.populationModel(maxT)
	if m1 != m2 {
		t.Error("population model rebuilt despite cache")
	}
	l.InvalidateAll()
	if l.population != nil {
		t.Error("InvalidateAll kept the population model")
	}
}

// TestSamplePopulationRepresentative is the sampling-bias regression test:
// the bounded population pool must span the whole sorted device list with a
// deterministic stride, not the lexicographically-smallest prefix.
func TestSamplePopulationRepresentative(t *testing.T) {
	devices := make([]event.DeviceID, 256)
	for i := range devices {
		devices[i] = event.DeviceID(fmt.Sprintf("d%04d", i))
	}

	got := samplePopulation(devices, 64)
	if len(got) != 64 {
		t.Fatalf("sample size = %d, want 64", len(got))
	}
	// Deterministic: same input, same sample.
	again := samplePopulation(devices, 64)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("sampling not deterministic at %d: %s vs %s", i, got[i], again[i])
		}
	}
	// Distinct and in order (a stride over a sorted list).
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("sample not strictly increasing at %d: %s, %s", i, got[i-1], got[i])
		}
	}
	// Representative: every quartile of the full list contributes. The
	// pre-fix prefix sample drew all 64 devices from the first quartile.
	quartiles := make([]int, 4)
	for _, d := range got {
		var idx int
		fmt.Sscanf(string(d), "d%d", &idx)
		quartiles[idx*4/len(devices)]++
	}
	for q, n := range quartiles {
		if n < 8 {
			t.Errorf("quartile %d contributed only %d of 64 samples — biased pool %v", q, n, quartiles)
		}
	}

	// Short lists pass through untouched.
	small := devices[:10]
	if got := samplePopulation(small, 64); len(got) != 10 {
		t.Errorf("small list resampled: %d", len(got))
	}
}

func TestPopulationModelEmptyStore(t *testing.T) {
	b := testBuilding(t)
	st := store.New(0)
	l := newLocalizer(t, b, st)
	if m := l.populationModel(t0); m != nil {
		t.Error("population model from empty store should be nil")
	}
}
