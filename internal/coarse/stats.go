// Incremental gap sufficient statistics.
//
// Before this layer existed, every ingested event invalidated the device's
// trained model and all derived gap knowledge was recomputed from scratch on
// the next query. The statistics here are maintained incrementally, O(1)
// per ingested event, as decayed sufficient statistics of the device's gap
// structure: an exponentially-decayed event count, gap count, total gap
// duration, bootstrap inside/outside tallies (the τ_l/τ_h heuristics of
// Algorithm 1 applied as counters), and a log₂-bucketed gap-duration
// histogram. Decay is driven by EVENT time, not wall-clock time, which makes
// the accumulator deterministic: replaying the same events in the same
// order produces bitwise-identical statistics — that is the batch-recompute
// oracle (BatchDeviceStats) the property tests and `locater-bench -incr`
// gate against.
//
// The incremental path is exact only for in-order arrival. Out-of-order
// events, δ changes (SetDelta), and crash recovery mark the device for a
// full rebuild from the store — the rare escape hatch that
// InvalidateDevice/InvalidateAll were demoted to.
package coarse

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"locater/internal/event"
)

// GapHistBuckets is the size of the log₂ gap-duration histogram: bucket i
// counts gaps with duration in [2^(i-1), 2^i) seconds (bucket 0 holds
// sub-second gaps). 40 buckets cover every gap an int64 of nanoseconds can
// represent (~292 years lands in bucket 34).
const GapHistBuckets = 40

// DeviceStats are the decayed sufficient statistics of one device's gap
// structure. All float fields decay exponentially with StatsHalfLife of
// event time; RawEvents is the undecayed observation count.
type DeviceStats struct {
	// Events is the decayed event count.
	Events float64 `json:"events"`
	// Gaps / GapSeconds are the decayed count and total duration (seconds)
	// of gaps — inter-event spans exceeding 2δ, exactly the gaps
	// event.Timeline.Gaps reports.
	Gaps       float64 `json:"gaps"`
	GapSeconds float64 `json:"gap_seconds"`
	// Inside / Outside tally gaps the bootstrap heuristics would label:
	// duration ≤ τ_l inside, ≥ τ_h outside.
	Inside  float64 `json:"inside"`
	Outside float64 `json:"outside"`
	// Hist is the log₂-bucketed gap-duration histogram.
	Hist [GapHistBuckets]float64 `json:"hist"`
	// LastNanos is the newest observed event time (decay reference).
	LastNanos int64 `json:"last_nanos"`
	// RawEvents is the undecayed number of events folded in.
	RawEvents int64 `json:"raw_events"`
}

// observe folds one event (in non-decreasing time order) into the
// statistics. This single function IS the sufficient-statistic definition:
// the incremental path and the batch oracle both call it, so their only
// possible divergence is the order of events — and out-of-order arrival
// routes to a rebuild.
func (s *DeviceStats) observe(tNanos int64, deltaNanos, halfLifeNanos int64, tau Thresholds) {
	if s.RawEvents == 0 {
		s.Events = 1
		s.RawEvents = 1
		s.LastNanos = tNanos
		return
	}
	dt := tNanos - s.LastNanos
	if dt > 0 {
		f := math.Exp(-math.Ln2 * float64(dt) / float64(halfLifeNanos))
		s.Events *= f
		s.Gaps *= f
		s.GapSeconds *= f
		s.Inside *= f
		s.Outside *= f
		for i := range s.Hist {
			s.Hist[i] *= f
		}
	}
	s.Events++
	s.RawEvents++
	if gap := dt - 2*deltaNanos; gap > 0 {
		s.Gaps++
		s.GapSeconds += float64(gap) / float64(time.Second)
		s.Hist[gapBucket(gap)]++
		if gap <= int64(tau.TauLow) {
			s.Inside++
		} else if gap >= int64(tau.TauHigh) {
			s.Outside++
		}
	}
	s.LastNanos = tNanos
}

// gapBucket maps a gap duration (nanos) to its log₂ histogram bucket.
func gapBucket(gapNanos int64) int {
	secs := uint64(gapNanos / int64(time.Second))
	b := bits.Len64(secs)
	if b >= GapHistBuckets {
		b = GapHistBuckets - 1
	}
	return b
}

const numStatStripes = 64

type devStats struct {
	DeviceStats
	needRebuild bool
}

type statStripe struct {
	mu  sync.Mutex
	dev map[event.DeviceID]*devStats
}

// statsTable holds the per-device accumulators, lock-striped like the model
// cache so ingest for unrelated devices never contends.
type statsTable struct {
	stripes [numStatStripes]statStripe
	devices atomic.Int64
}

func newStatsTable() *statsTable {
	t := &statsTable{}
	for i := range t.stripes {
		t.stripes[i].dev = make(map[event.DeviceID]*devStats)
	}
	return t
}

func (t *statsTable) stripeOf(d event.DeviceID) *statStripe {
	h := uint32(2166136261)
	for i := 0; i < len(d); i++ {
		h ^= uint32(d[i])
		h *= 16777619
	}
	return &t.stripes[h%numStatStripes]
}

func (t *statsTable) markRebuild(d event.DeviceID) {
	st := t.stripeOf(d)
	st.mu.Lock()
	if ds := st.dev[d]; ds != nil {
		ds.needRebuild = true
	}
	st.mu.Unlock()
}

func (t *statsTable) clear() {
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		st.dev = make(map[event.DeviceID]*devStats)
		st.mu.Unlock()
	}
	t.devices.Store(0)
}

// MaintenanceStats are the write-path model-maintenance counters
// `locater-bench -incr` differences to measure the cost of keeping models
// current: time spent folding ingested events into the sufficient
// statistics, time spent (re)training per-device classifiers, and how often
// the incremental path had to fall back to a full rebuild.
type MaintenanceStats struct {
	// ObserveNanos is total time spent in ObserveIngest.
	ObserveNanos int64 `json:"observe_nanos"`
	// TrainNanos / Trains time the per-device classifier training that
	// train-on-miss still performs after an invalidation.
	TrainNanos int64 `json:"train_nanos"`
	Trains     int64 `json:"trains"`
	// Rebuilds counts full from-store statistic rebuilds (the escape
	// hatch); OutOfOrder counts the ingested events that triggered one.
	Rebuilds   int64 `json:"rebuilds"`
	OutOfOrder int64 `json:"out_of_order"`
	// StatsDevices is the number of devices with live accumulators.
	StatsDevices int64 `json:"stats_devices"`
}

// ObserveIngest folds a successfully-ingested event batch into the
// per-device sufficient statistics and invalidates the trained models of
// the touched devices (training still depends on full history, so a cached
// classifier cannot survive a write; the statistics can, and do). Call it
// AFTER the store applied the batch: a device seen here for the first time
// rebuilds lazily from the store, which already contains these events.
func (l *Localizer) ObserveIngest(events []event.Event) {
	if len(events) == 0 {
		return
	}
	start := time.Now()
	halfLife := int64(l.opts.StatsHalfLife)
	var touched map[event.DeviceID]struct{}
	prev := event.DeviceID("")
	for _, e := range events {
		if e.Device != prev {
			prev = e.Device
			if touched == nil {
				touched = make(map[event.DeviceID]struct{}, 8)
			}
			if _, seen := touched[e.Device]; !seen {
				touched[e.Device] = struct{}{}
				l.models.Delete(e.Device)
			}
		}
		st := l.stats.stripeOf(e.Device)
		st.mu.Lock()
		ds := st.dev[e.Device]
		switch {
		case ds == nil:
			// First sight: the store already holds this event (and possibly
			// a recovered history we never observed) — rebuild lazily.
			st.dev[e.Device] = &devStats{needRebuild: true}
			l.stats.devices.Add(1)
		case ds.needRebuild:
			// Already pending a rebuild; nothing to fold.
		case ds.RawEvents > 0 && e.Time.UnixNano() < ds.LastNanos:
			ds.needRebuild = true
			l.outOfOrder.Add(1)
		default:
			ds.observe(e.Time.UnixNano(), int64(l.store.Delta(e.Device)), halfLife, l.opts.Thresholds)
		}
		st.mu.Unlock()
	}
	l.observeNanos.Add(time.Since(start).Nanoseconds())
}

// DeviceStatsOf returns the device's current sufficient statistics,
// rebuilding them from the store first when the incremental path gave up
// (out-of-order arrival, δ change, recovery). ok is false for devices the
// store has no events for.
func (l *Localizer) DeviceStatsOf(d event.DeviceID) (DeviceStats, bool) {
	st := l.stats.stripeOf(d)
	st.mu.Lock()
	defer st.mu.Unlock()
	ds := st.dev[d]
	if ds == nil || ds.needRebuild {
		fresh, ok := l.BatchDeviceStats(d)
		if !ok {
			if ds != nil {
				delete(st.dev, d)
				l.stats.devices.Add(-1)
			}
			return DeviceStats{}, false
		}
		if ds == nil {
			ds = &devStats{}
			st.dev[d] = ds
			l.stats.devices.Add(1)
		}
		ds.DeviceStats = fresh
		ds.needRebuild = false
		l.rebuilds.Add(1)
	}
	return ds.DeviceStats, ds.RawEvents > 0
}

// BatchDeviceStats recomputes the device's sufficient statistics from
// scratch by replaying its stored events, in order, through the same
// accumulator the incremental path uses. This is the preserved
// batch-recompute oracle: DeviceStatsOf must match it bitwise for in-order
// histories and within 1e-9 always.
func (l *Localizer) BatchDeviceStats(d event.DeviceID) (DeviceStats, bool) {
	var s DeviceStats
	halfLife := int64(l.opts.StatsHalfLife)
	deltaNanos := int64(l.store.Delta(d))
	found := false
	l.store.ScanEvents(d, time.Time{}, time.Unix(0, math.MaxInt64), func(evs []event.Event, _ time.Duration) {
		found = found || len(evs) > 0
		for _, e := range evs {
			s.observe(e.Time.UnixNano(), deltaNanos, halfLife, l.opts.Thresholds)
		}
	})
	if !found {
		return DeviceStats{}, false
	}
	return s, true
}

// MaintenanceStats snapshots the write-path maintenance counters.
func (l *Localizer) MaintenanceStats() MaintenanceStats {
	return MaintenanceStats{
		ObserveNanos: l.observeNanos.Load(),
		TrainNanos:   l.trainNanos.Load(),
		Trains:       l.trains.Load(),
		Rebuilds:     l.rebuilds.Load(),
		OutOfOrder:   l.outOfOrder.Load(),
		StatsDevices: l.stats.devices.Load(),
	}
}
