package coarse

import (
	"time"

	"locater/internal/event"
	"locater/internal/space"
)

// GapFeatures is the feature vector the paper extracts per gap (Section 3):
// begin/end time of day, duration, begin/end day of week, begin/end region,
// and the connection density ω — the average number of the device's logged
// events during the gap's time-of-day window per day of history.
type GapFeatures struct {
	Gap event.Gap

	StartTime float64 // seconds since midnight at gap start
	EndTime   float64 // seconds since midnight at gap end
	Duration  float64 // seconds
	StartDay  float64 // day of week at start, 0=Sunday
	EndDay    float64 // day of week at end
	// StartRegion / EndRegion are the regions of the bounding events,
	// encoded as indices into the building's region list.
	StartRegion float64
	EndRegion   float64
	// Density is ω.
	Density float64
}

// Vector flattens the features in a fixed order for the classifier.
func (f GapFeatures) Vector() []float64 {
	return []float64{
		f.StartTime, f.EndTime, f.Duration,
		f.StartDay, f.EndDay,
		f.StartRegion, f.EndRegion,
		f.Density,
	}
}

// NumFeatures is the dimensionality of GapFeatures.Vector.
const NumFeatures = 8

// featurize computes the gap's feature vector using the device's history for
// the density term.
func (l *Localizer) featurize(d event.DeviceID, g event.Gap) GapFeatures {
	f := GapFeatures{
		Gap:       g,
		StartTime: float64(secondOfDay(g.Start)),
		EndTime:   float64(secondOfDay(g.End)),
		Duration:  g.Duration().Seconds(),
		StartDay:  float64(g.Start.Weekday()),
		EndDay:    float64(g.End.Weekday()),
	}
	f.StartRegion = l.regionIndexOfAP(g.PrevEvent.AP)
	f.EndRegion = l.regionIndexOfAP(g.NextEvent.AP)
	f.Density = l.connectionDensity(d, g)
	return f
}

// regionIndexOfAP encodes an AP's region as its index in the sorted region
// list; unknown APs map to -1.
func (l *Localizer) regionIndexOfAP(ap space.APID) float64 {
	region, ok := l.building.RegionOf(ap)
	if !ok {
		return -1
	}
	return float64(l.regionIndex(region))
}

func (l *Localizer) regionIndex(g space.RegionID) int {
	for i, r := range l.building.Regions() {
		if r == g {
			return i
		}
	}
	return -1
}

// connectionDensity computes ω: the average number of the device's logged
// connectivity events per history day within the gap's time-of-day window.
// The history is visited zero-copy (counting retains nothing).
func (l *Localizer) connectionDensity(d event.DeviceID, g event.Gap) float64 {
	startSec := secondOfDay(g.Start)
	endSec := secondOfDay(g.End)
	count := 0
	l.scanHistory(d, g.Start, func(evs []event.Event) {
		for _, e := range evs {
			if inDayWindow(secondOfDay(e.Time), startSec, endSec) {
				count++
			}
		}
	})
	if count == 0 {
		return 0
	}
	days := l.opts.HistoryDays
	if days == 0 {
		days = 1
	}
	return float64(count) / float64(days)
}

// windowDensity is a shared helper for training-time featurization where
// the history slice is already materialized.
func windowDensity(hist []event.Event, g event.Gap, historyDays int) float64 {
	if len(hist) == 0 || historyDays <= 0 {
		return 0
	}
	startSec := secondOfDay(g.Start)
	endSec := secondOfDay(g.End)
	count := 0
	for _, e := range hist {
		if inDayWindow(secondOfDay(e.Time), startSec, endSec) {
			count++
		}
	}
	return float64(count) / float64(historyDays)
}

// featurizeWithHistory computes features against a pre-fetched history
// slice (used during training to avoid re-querying the store per gap).
func (l *Localizer) featurizeWithHistory(g event.Gap, hist []event.Event) GapFeatures {
	f := GapFeatures{
		Gap:       g,
		StartTime: float64(secondOfDay(g.Start)),
		EndTime:   float64(secondOfDay(g.End)),
		Duration:  g.Duration().Seconds(),
		StartDay:  float64(g.Start.Weekday()),
		EndDay:    float64(g.End.Weekday()),
	}
	f.StartRegion = l.regionIndexOfAP(g.PrevEvent.AP)
	f.EndRegion = l.regionIndexOfAP(g.NextEvent.AP)
	f.Density = windowDensity(hist, g, l.opts.HistoryDays)
	return f
}

// gapSpansDays reports whether the gap crosses midnight. The paper assumes
// gaps do not span multiple days; spanning gaps are handled by clamping the
// end-time feature but are excluded from training.
func gapSpansDays(g event.Gap) bool {
	ys, ms, ds := g.Start.Date()
	ye, me, de := g.End.Date()
	return ys != ye || ms != me || ds != de
}

var _ = time.Second // keep time imported for doc references
