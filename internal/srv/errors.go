package srv

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// Stable machine-readable error codes for non-admission failures. Admission
// rejections reuse their taxonomy codes (queue_full, shed,
// deadline_infeasible, deadline_queue, deadline_exceeded) as envelope codes,
// so a client switches on one field regardless of which layer rejected the
// request.
const (
	codeBadRequest       = "bad_request"
	codeNotFound         = "not_found"
	codeMethodNotAllowed = "method_not_allowed"
	codeInternal         = "internal"
)

// ErrorEnvelope is the uniform JSON error body every endpoint returns, under
// /v1/ and the legacy aliases alike: a stable machine-readable code, a
// human-readable message, and — on retryable rejections — the retry hint in
// milliseconds (the Retry-After header carries the same hint in whole
// seconds for standard HTTP clients).
type ErrorEnvelope struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// LegacyError mirrors Message under the pre-/v1 "error" key so clients
	// written against the unversioned API keep parsing failures.
	LegacyError      string `json:"error"`
	RetryAfterMillis int64  `json:"retry_after_ms,omitempty"`
}

// codeForStatus maps an HTTP status to its default envelope code; handlers
// that know better (admission, deadline) pass explicit codes instead.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return codeBadRequest
	case http.StatusNotFound:
		return codeNotFound
	case http.StatusMethodNotAllowed:
		return codeMethodNotAllowed
	default:
		return codeInternal
	}
}

// writeError renders the envelope with an explicit code and optional retry
// hint (retryAfter ≤ 0 omits both the header and the field).
func writeError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	env := ErrorEnvelope{Code: code, Message: msg, LegacyError: msg}
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)))
		env.RetryAfterMillis = int64(retryAfter / time.Millisecond)
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(env)
}

// httpError is writeError with the status's default code.
func httpError(w http.ResponseWriter, status int, msg string) {
	writeError(w, status, codeForStatus(status), msg, 0)
}

// writeAdmitError renders a rejection: the taxonomy code rides in the
// envelope (clients and load harnesses classify on it) and retryable
// rejections carry the Retry-After hint.
func writeAdmitError(w http.ResponseWriter, rej *admitError) {
	writeError(w, rej.status, rej.code, rej.msg, rej.retryAfter)
}
