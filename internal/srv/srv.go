// Package srv implements the HTTP JSON API around a LOCATER deployment: the
// online query/ingest surface that applications (occupancy dashboards, HVAC
// controllers, exposure analysis) integrate with. It is deliberately thin:
// all semantics live behind the locater.Locater service interface, so the
// same handlers serve a single-building System or a sharded
// internal/cluster.Cluster. The API is versioned under /v1/ (the unversioned
// paths remain as legacy aliases) and every error is the uniform
// ErrorEnvelope.
package srv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"locater"
	"locater/internal/event"
)

// Server wraps a LOCATER deployment with HTTP handlers. It holds no lock of
// its own: the engine is safe for concurrent use (sharded model cache,
// shared store read locks), so request handlers run fully in parallel on
// Go's per-connection serving goroutines.
type Server struct {
	sys locater.Locater
	mux *http.ServeMux

	// batchSem bounds the number of batch requests executing at once when
	// admission control is disabled (the pre-admission behavior); with
	// admission enabled the batch admitQueue plays that role.
	batchSem chan struct{}

	// admission is the filled configuration; the queues are nil when
	// admission is disabled.
	admission                AdmissionOptions
	locateQ, batchQ, ingestQ *admitQueue

	started time.Time
}

// Options configures optional server behavior.
type Options struct {
	// Admission configures overload degradation (bounded queues,
	// deadline-aware rejection, batch shedding). The zero value enables it
	// with defaults; set Admission.Disabled for the unbounded behavior.
	Admission AdmissionOptions
}

// New builds the HTTP handler around an assembled engine (a *locater.System
// or a sharded cluster.Cluster) with default options (admission control
// enabled).
func New(sys locater.Locater) *Server { return NewWithOptions(sys, Options{}) }

// NewWithOptions builds the HTTP handler with explicit options.
func NewWithOptions(sys locater.Locater, opts Options) *Server {
	s := &Server{
		sys:       sys,
		mux:       http.NewServeMux(),
		batchSem:  make(chan struct{}, 4),
		admission: opts.Admission,
		started:   time.Now(),
	}
	if !opts.Admission.Disabled {
		s.admission = defaultAdmission(opts.Admission)
		s.locateQ = newAdmitQueue(s.admission.Locate)
		s.batchQ = newAdmitQueue(s.admission.Batch)
		s.ingestQ = newAdmitQueue(s.admission.Ingest)
		for _, q := range []*admitQueue{s.locateQ, s.batchQ, s.ingestQ} {
			q.configureAdaptive(s.admission.Static, s.admission.TargetQueueWait)
		}
	}
	// /v1/ is the versioned surface; the bare paths are legacy aliases for
	// clients written before versioning. Both share one handler set.
	for _, prefix := range []string{"", "/v1"} {
		s.mux.HandleFunc(prefix+"/locate", s.handleLocate)
		s.mux.HandleFunc(prefix+"/locate/batch", s.handleLocateBatch)
		s.mux.HandleFunc(prefix+"/ingest", s.handleIngest)
		s.mux.HandleFunc(prefix+"/stats", s.handleStats)
		s.mux.HandleFunc(prefix+"/quarantine", s.handleQuarantine)
		s.mux.HandleFunc(prefix+"/healthz", s.handleHealth)
	}
	s.mux.HandleFunc("/", s.handleNotFound)
	return s
}

// handleNotFound answers every unregistered path with the uniform envelope
// instead of the standard library's plain-text 404.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	httpError(w, http.StatusNotFound, fmt.Sprintf("no such endpoint %s", r.URL.Path))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// EnablePprof mounts Go's runtime profiler under /debug/pprof/ (CPU and
// heap profiles, goroutine/mutex/block dumps, execution traces). Off by
// default — the endpoints expose internals and can be heavy — and gated
// behind locater-serve's -pprof flag. Call during setup, before serving.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// LocateResponse is the JSON shape of a localization answer.
type LocateResponse struct {
	Device   string  `json:"device"`
	Time     string  `json:"time"`
	Outside  bool    `json:"outside"`
	Region   string  `json:"region,omitempty"`
	Room     string  `json:"room,omitempty"`
	RoomProb float64 `json:"room_probability,omitempty"`
	Repaired bool    `json:"repaired"`
}

// BatchQuery is one query of a POST /locate/batch request.
type BatchQuery struct {
	Device string `json:"device"`
	// Time is RFC 3339 or the paper's "2006-01-02 15:04:05" layout;
	// empty means "now".
	Time string `json:"time"`
}

// BatchLocateRequest is the JSON body of POST /locate/batch.
type BatchLocateRequest struct {
	Queries []BatchQuery `json:"queries"`
	// Workers bounds the server-side worker pool; 0 uses GOMAXPROCS and
	// larger values are clamped to GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// DeadlineMillis is the whole-batch deadline in milliseconds; the
	// deadline_ms query parameter, when present, wins. 0 means the
	// server default.
	DeadlineMillis int `json:"deadline_ms,omitempty"`
}

// BatchLocateResult is one answer of a batch response. Error is per-query:
// one failing query does not fail the batch.
type BatchLocateResult struct {
	LocateResponse
	Error string `json:"error,omitempty"`
}

// BatchLocateResponse is the JSON shape of a batch answer, in request order.
type BatchLocateResponse struct {
	Results []BatchLocateResult `json:"results"`
}

// IngestEvent is the JSON shape of one streamed connectivity event.
type IngestEvent struct {
	Device string `json:"device"`
	// Time is RFC 3339 or the paper's "2006-01-02 15:04:05" layout.
	// Required: an event without a timestamp is rejected with 400 rather
	// than silently stamped with the server's clock.
	Time string `json:"time"`
	AP   string `json:"ap"`
}

// CacheTierResponse is the JSON shape of one cache tier's counters.
type CacheTierResponse struct {
	Size          int   `json:"size"`
	Capacity      int   `json:"capacity"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
}

// OccupancyResponse is the JSON shape of the store's temporal
// occupancy-index stats (neighbor discovery).
type OccupancyResponse struct {
	Enabled       bool    `json:"enabled"`
	BucketSeconds float64 `json:"bucket_seconds"`
	Buckets       int     `json:"buckets"`
	Entries       int     `json:"entries"`
	Lookups       int64   `json:"lookups"`
	FallbackScans int64   `json:"fallback_scans"`
}

// SegmentsResponse is the JSON shape of the store's log-structured event
// layout: sealed-segment shape, encoded size, and seal/page-in traffic.
type SegmentsResponse struct {
	Enabled        bool  `json:"enabled"`
	MaxEvents      int   `json:"max_events"`
	BlockEvents    int   `json:"block_events"`
	ColdTier       bool  `json:"cold_tier"`
	Segments       int   `json:"segments"`
	SegmentEvents  int   `json:"segment_events"`
	HeadEvents     int   `json:"head_events"`
	EncodedBytes   int64 `json:"encoded_bytes"`
	Seals          int64 `json:"seals"`
	SealFailures   int64 `json:"seal_failures"`
	PageIns        int64 `json:"page_ins"`
	DecodedBytes   int64 `json:"decoded_bytes"`
	CacheHits      int64 `json:"cache_hits"`
	CacheSize      int   `json:"cache_size"`
	CacheCapacity  int   `json:"cache_capacity"`
	DecodeFailures int64 `json:"decode_failures"`
	// ResidentBytesHeap approximates the decoded-block cache's Go-heap
	// footprint; ResidentBytesMmap is the OS-owned mapped residency of the
	// cold tier's segment files (zero without the mmap backend). Together
	// they split "resident" into the part the GC sees and the part the
	// kernel can evict under pressure.
	ResidentBytesHeap int64 `json:"resident_bytes_heap"`
	ResidentBytesMmap int64 `json:"resident_bytes_mmap"`
	// PointLookups / LookupDecodedBytes gate the block tentpole: their
	// ratio is bytes decoded per point lookup. BlockSkips counts blocks
	// pruned undecoded via the block index; IndexLoads counts trailer
	// parses.
	PointLookups       int64 `json:"point_lookups"`
	LookupDecodedBytes int64 `json:"lookup_decoded_bytes"`
	BlockSkips         int64 `json:"block_skips"`
	IndexLoads         int64 `json:"index_loads"`
	// Compactions / CompactionFailures count checkpoint-time runt-segment
	// merges and the merges abandoned on error.
	Compactions        int64 `json:"compactions"`
	CompactionFailures int64 `json:"compaction_failures"`
	// Cold-tier backend counters: mapped file/byte residency, remaps after
	// file growth, and checkpoint-time dead-record reclamation.
	MappedFiles     int   `json:"mapped_files"`
	Remaps          int64 `json:"remaps"`
	Rewrites        int64 `json:"rewrites"`
	RewriteFailures int64 `json:"rewrite_failures"`
	ReclaimedBytes  int64 `json:"reclaimed_bytes"`
}

// CachesResponse is the JSON shape of the caching layer's stats: the global
// affinity graph, the three bounded tiers, the store's occupancy index, the
// segmented event layout, the ingest-time cleansing stage, and the write
// path's model-maintenance counters.
type CachesResponse struct {
	Enabled      bool                `json:"enabled"`
	GraphEdges   int                 `json:"graph_edges"`
	Affinity     CacheTierResponse   `json:"affinity"`
	CoarseModels CacheTierResponse   `json:"coarse_models"`
	Results      CacheTierResponse   `json:"results"`
	Occupancy    OccupancyResponse   `json:"occupancy"`
	Segments     SegmentsResponse    `json:"segments"`
	Cleanse      CleanseResponse     `json:"cleanse"`
	Maintenance  MaintenanceResponse `json:"maintenance"`
}

// CleanseResponse is the JSON shape of the ingest-time cleansing stage's
// per-rule counters (zero when cleansing is off).
type CleanseResponse struct {
	Ingested              int64 `json:"ingested"`
	Kept                  int64 `json:"kept"`
	Duplicates            int64 `json:"duplicates"`
	Reassociations        int64 `json:"reassociations"`
	Oscillations          int64 `json:"oscillations"`
	ImpossibleTransitions int64 `json:"impossible_transitions"`
	FlaggedDevices        int64 `json:"flagged_devices"`
	Quarantined           int64 `json:"quarantined"`
	QuarantineEvicted     int64 `json:"quarantine_evicted"`
}

// MaintenanceResponse is the JSON shape of the write path's incremental
// model-maintenance counters: the coarse gap sufficient statistics and the
// affinity tier's scoped validation.
type MaintenanceResponse struct {
	Coarse struct {
		ObserveNanos int64 `json:"observe_nanos"`
		TrainNanos   int64 `json:"train_nanos"`
		Trains       int64 `json:"trains"`
		Rebuilds     int64 `json:"rebuilds"`
		OutOfOrder   int64 `json:"out_of_order"`
		StatsDevices int64 `json:"stats_devices"`
	} `json:"coarse"`
	Affinity struct {
		FallbackNanos       int64 `json:"fallback_nanos"`
		ScopedKept          int64 `json:"scoped_kept"`
		ScopedStale         int64 `json:"scoped_stale"`
		TrackedDevices      int64 `json:"tracked_devices"`
		CoOccurPairs        int64 `json:"cooccur_pairs"`
		CoOccurObservations int64 `json:"cooccur_observations"`
		CoOccurDropped      int64 `json:"cooccur_dropped"`
	} `json:"affinity"`
}

func cleanseResponseOf(cl locater.CleanseStats) CleanseResponse {
	return CleanseResponse{
		Ingested:              cl.Ingested,
		Kept:                  cl.Kept,
		Duplicates:            cl.Duplicates,
		Reassociations:        cl.Reassociations,
		Oscillations:          cl.Oscillations,
		ImpossibleTransitions: cl.ImpossibleTransitions,
		FlaggedDevices:        cl.FlaggedDevices,
		Quarantined:           cl.Quarantined,
		QuarantineEvicted:     cl.QuarantineEvicted,
	}
}

func maintenanceResponseOf(ms locater.MaintenanceStats) MaintenanceResponse {
	var out MaintenanceResponse
	out.Coarse.ObserveNanos = ms.Coarse.ObserveNanos
	out.Coarse.TrainNanos = ms.Coarse.TrainNanos
	out.Coarse.Trains = ms.Coarse.Trains
	out.Coarse.Rebuilds = ms.Coarse.Rebuilds
	out.Coarse.OutOfOrder = ms.Coarse.OutOfOrder
	out.Coarse.StatsDevices = ms.Coarse.StatsDevices
	out.Affinity.FallbackNanos = ms.Affinity.FallbackNanos
	out.Affinity.ScopedKept = ms.Affinity.ScopedKept
	out.Affinity.ScopedStale = ms.Affinity.ScopedStale
	out.Affinity.TrackedDevices = ms.Affinity.TrackedDevices
	out.Affinity.CoOccurPairs = ms.Affinity.CoOccurPairs
	out.Affinity.CoOccurObservations = ms.Affinity.CoOccurObservations
	out.Affinity.CoOccurDropped = ms.Affinity.CoOccurDropped
	return out
}

// PersistResponse is the JSON shape of the durable event store's stats,
// present only on servers backed by a WAL directory.
type PersistResponse struct {
	Segments   int    `json:"segments"`
	LastLSN    uint64 `json:"last_lsn"`
	DurableLSN uint64 `json:"durable_lsn"`
}

// LatencyResponse is the JSON shape of one latency population's summary.
// Quantiles are upper estimates from a power-of-two histogram (within 2×);
// mean and max are exact.
type LatencyResponse struct {
	Count      int64   `json:"count"`
	MeanMicros float64 `json:"mean_us"`
	P50Micros  float64 `json:"p50_us"`
	P99Micros  float64 `json:"p99_us"`
	MaxMicros  float64 `json:"max_us"`
}

// QueryStatsResponse is the JSON shape of the query engine's service-level
// stats: cold (computed) vs cached (result-cache hit) latency, plus the
// distribution of neighbors Algorithm 2 processed on cold queries.
type QueryStatsResponse struct {
	Cold               LatencyResponse `json:"cold"`
	Cached             LatencyResponse `json:"cached"`
	NeighborsProcessed struct {
		P50 int `json:"p50"`
		P99 int `json:"p99"`
	} `json:"neighbors_processed"`
	// DeadlineExceeded counts queries that failed with the engine's
	// deadline error (context expired at a pipeline stage boundary).
	DeadlineExceeded int64 `json:"deadline_exceeded"`
}

// ShardResponse is one shard's counters inside the cluster stats block.
// Summing events/devices/queries across shards reproduces the top-level
// figures (the merged counters reconcile exactly with per-shard sums).
type ShardResponse struct {
	Index    int              `json:"index"`
	Building string           `json:"building"`
	Events   int              `json:"events"`
	Devices  int              `json:"devices"`
	Queries  int              `json:"queries"`
	Persist  *PersistResponse `json:"persist,omitempty"`
}

// ClusterResponse is the topology block served when the engine is sharded.
type ClusterResponse struct {
	Shards   int             `json:"shards"`
	ShardBy  string          `json:"shard_by"`
	PerShard []ShardResponse `json:"per_shard"`
}

// StatsResponse reports deployment counters (summed across shards on a
// cluster). The legacy flat cache_edges / cache_hits / cache_misses fields
// mirror the affinity tier (pre-cache-layer clients read them); caches
// carries the full per-tier picture; cluster appears only on sharded
// deployments.
type StatsResponse struct {
	Events       int                `json:"events"`
	Devices      int                `json:"devices"`
	Queries      int                `json:"queries"`
	CacheEdges   int                `json:"cache_edges"`
	CacheHits    int64              `json:"cache_hits"`
	CacheMisses  int64              `json:"cache_misses"`
	Caches       CachesResponse     `json:"caches"`
	QueryStats   QueryStatsResponse `json:"query_stats"`
	Admission    AdmissionResponse  `json:"admission"`
	Persist      *PersistResponse   `json:"persist,omitempty"`
	Cluster      *ClusterResponse   `json:"cluster,omitempty"`
	UptimeSecond int64              `json:"uptime_seconds"`
	Building     string             `json:"building"`
}

// parseDeadline reads the per-request deadline_ms query parameter. Zero
// means "no client deadline" (the admission default, if any, applies).
func parseDeadline(r *http.Request) (time.Duration, error) {
	v := r.URL.Query().Get("deadline_ms")
	if v == "" {
		return 0, nil
	}
	ms, err := strconv.Atoi(v)
	if err != nil || ms <= 0 {
		return 0, fmt.Errorf("bad deadline_ms %q (want a positive integer)", v)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// requestContext derives the request's working context: the client deadline
// (deadline_ms) clamped to MaxDeadline, or the admission DefaultDeadline
// when the client set none. With admission disabled and no client deadline,
// the request runs unbounded (the pre-admission behavior).
func (s *Server) requestContext(r *http.Request, deadline time.Duration) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if s.locateQ != nil {
		if deadline <= 0 {
			deadline = s.admission.DefaultDeadline
		}
		if deadline > s.admission.MaxDeadline {
			deadline = s.admission.MaxDeadline
		}
	}
	if deadline <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, deadline)
}

// admitted runs the admission gate for one request class. It returns a
// finish func to defer (records service time and frees the slot; a no-op
// when admission is off) and reports whether the request may proceed; on
// false the 429 has already been written.
func (s *Server) admitted(w http.ResponseWriter, ctx context.Context, q *admitQueue, shedAbove, peerOccupancy float64) (func(), bool) {
	if q == nil {
		return func() {}, true
	}
	release, rej := q.admit(ctx, shedAbove, peerOccupancy)
	if rej != nil {
		writeAdmitError(w, rej)
		return nil, false
	}
	start := time.Now()
	return func() { release(time.Since(start)) }, true
}

// finishQuery maps a query error to its response: ErrDeadlineExceeded is a
// distinct 504 with code deadline_exceeded (counted on the class's queue),
// anything else is a 500.
func (s *Server) finishQuery(w http.ResponseWriter, q *admitQueue, err error) {
	if errors.Is(err, locater.ErrDeadlineExceeded) {
		if q != nil {
			q.execDeadline.Add(1)
		}
		writeAdmitError(w, &admitError{
			status: http.StatusGatewayTimeout,
			code:   codeDeadlineExceeded,
			msg:    "deadline exceeded during query execution",
		})
		return
	}
	httpError(w, http.StatusInternalServerError, err.Error())
}

func (s *Server) handleLocate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	device := r.URL.Query().Get("device")
	if device == "" {
		httpError(w, http.StatusBadRequest, "missing device parameter")
		return
	}
	tq, err := parseTimeOrNow(r.URL.Query().Get("time"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	deadline, err := parseDeadline(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.requestContext(r, deadline)
	defer cancel()
	finish, ok := s.admitted(w, ctx, s.locateQ, -1, 0)
	if !ok {
		return
	}
	defer finish()
	res, err := s.sys.LocateContext(ctx, locater.DeviceID(device), tq)
	if err != nil {
		s.finishQuery(w, s.locateQ, err)
		return
	}
	writeJSON(w, locateResponseOf(device, tq, res))
}

func locateResponseOf(device string, tq time.Time, res locater.Result) LocateResponse {
	return LocateResponse{
		Device:   device,
		Time:     tq.UTC().Format(time.RFC3339),
		Outside:  res.Outside,
		Region:   string(res.Region),
		Room:     string(res.Room),
		RoomProb: res.RoomProbability,
		Repaired: res.Repaired,
	}
}

// maxBatchBody bounds a /locate/batch request body (8 MiB ≈ several
// hundred thousand queries) so one client cannot exhaust server memory.
const maxBatchBody = 8 << 20

// handleLocateBatch answers many queries in one request via the system's
// bounded worker pool (POST /locate/batch). Results come back in request
// order with per-query errors. The requested worker count is advisory —
// the server clamps it to GOMAXPROCS — and batchSem bounds how many batch
// requests execute at once, so the total goroutine pool stays bounded
// (clamp × semaphore) no matter how many clients connect; excess requests
// queue on the semaphore.
func (s *Server) handleLocateBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBody)
	var in BatchLocateRequest
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad body: %v", err))
		return
	}
	if max := runtime.GOMAXPROCS(0); in.Workers > max {
		in.Workers = max
	}
	if len(in.Queries) == 0 {
		httpError(w, http.StatusBadRequest, "empty queries")
		return
	}
	queries := make([]locater.Query, len(in.Queries))
	for i, q := range in.Queries {
		if q.Device == "" {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("query %d: missing device", i))
			return
		}
		tq, err := parseTimeOrNow(q.Time)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("query %d: %v", i, err))
			return
		}
		queries[i] = locater.Query{Device: locater.DeviceID(q.Device), Time: tq}
	}
	deadline, err := parseDeadline(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if deadline <= 0 && in.DeadlineMillis > 0 {
		deadline = time.Duration(in.DeadlineMillis) * time.Millisecond
	}
	ctx, cancel := s.requestContext(r, deadline)
	defer cancel()
	// Admission (or, with admission off, the legacy semaphore) is taken
	// only around the actual work — after the body is fully read and
	// validated — so a slow or stalling client cannot hold a slot while
	// trickling its request in. Batch requests shed first: they are
	// rejected once either the batch queue or the locate queue crosses
	// ShedBatchAt, so single-query traffic keeps flowing under overload.
	if s.batchQ != nil {
		peer := s.locateQ.occupancy()
		finish, ok := s.admitted(w, ctx, s.batchQ, s.admission.ShedBatchAt, peer)
		if !ok {
			return
		}
		defer finish()
	} else {
		s.batchSem <- struct{}{}
		defer func() { <-s.batchSem }()
	}
	batch := s.sys.LocateBatchContext(ctx, queries, in.Workers)
	resp := BatchLocateResponse{Results: make([]BatchLocateResult, len(batch))}
	deadlined := 0
	for i, br := range batch {
		out := BatchLocateResult{
			LocateResponse: locateResponseOf(string(br.Query.Device), br.Query.Time, br.Result),
		}
		if br.Err != nil {
			out.Error = br.Err.Error()
			if errors.Is(br.Err, locater.ErrDeadlineExceeded) {
				deadlined++
			}
		}
		resp.Results[i] = out
	}
	// A batch whose every query died on the deadline is one whole-request
	// 504; partial completions return 200 with per-query errors as before.
	if deadlined == len(batch) && len(batch) > 0 {
		s.finishQuery(w, s.batchQ, locater.ErrDeadlineExceeded)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var in []IngestEvent
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad body: %v", err))
		return
	}
	events := make([]locater.Event, 0, len(in))
	for i, e := range in {
		t, err := parseTime(e.Time)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("event %d: %v", i, err))
			return
		}
		events = append(events, locater.Event{
			Device: locater.DeviceID(e.Device),
			Time:   t,
			AP:     locater.APID(e.AP),
		})
	}
	deadline, err := parseDeadline(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.requestContext(r, deadline)
	defer cancel()
	finish, ok := s.admitted(w, ctx, s.ingestQ, -1, 0)
	if !ok {
		return
	}
	defer finish()
	if err := s.sys.Ingest(events); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, map[string]int{"ingested": len(events)})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	cs := s.sys.CacheStats()
	resp := StatsResponse{
		Events:      s.sys.NumEvents(),
		Devices:     s.sys.NumDevices(),
		Queries:     s.sys.NumQueries(),
		CacheEdges:  cs.GraphEdges,
		CacheHits:   cs.Affinity.Hits,
		CacheMisses: cs.Affinity.Misses,
		Caches: CachesResponse{
			Enabled:      cs.Enabled,
			GraphEdges:   cs.GraphEdges,
			Affinity:     cacheTierResponseOf(cs.Affinity),
			CoarseModels: cacheTierResponseOf(cs.CoarseModels),
			Results:      cacheTierResponseOf(cs.Results),
			Occupancy: OccupancyResponse{
				Enabled:       cs.Occupancy.Enabled,
				BucketSeconds: cs.Occupancy.Bucket.Seconds(),
				Buckets:       cs.Occupancy.Buckets,
				Entries:       cs.Occupancy.Entries,
				Lookups:       cs.Occupancy.Lookups,
				FallbackScans: cs.Occupancy.FallbackScans,
			},
			Segments: SegmentsResponse{
				Enabled:            cs.Segments.Enabled,
				MaxEvents:          cs.Segments.MaxEvents,
				BlockEvents:        cs.Segments.BlockEvents,
				ColdTier:           cs.Segments.ColdTier,
				Segments:           cs.Segments.Segments,
				SegmentEvents:      cs.Segments.SegmentEvents,
				HeadEvents:         cs.Segments.HeadEvents,
				EncodedBytes:       cs.Segments.EncodedBytes,
				Seals:              cs.Segments.Seals,
				SealFailures:       cs.Segments.SealFailures,
				PageIns:            cs.Segments.PageIns,
				DecodedBytes:       cs.Segments.DecodedBytes,
				CacheHits:          cs.Segments.CacheHits,
				CacheSize:          cs.Segments.CacheSize,
				CacheCapacity:      cs.Segments.CacheCapacity,
				DecodeFailures:     cs.Segments.DecodeFailures,
				ResidentBytesHeap:  cs.Segments.CachedBytes,
				ResidentBytesMmap:  cs.Segments.Backend.MappedBytes,
				PointLookups:       cs.Segments.PointLookups,
				LookupDecodedBytes: cs.Segments.LookupDecodedBytes,
				BlockSkips:         cs.Segments.BlockSkips,
				IndexLoads:         cs.Segments.IndexLoads,
				Compactions:        cs.Segments.Compactions,
				CompactionFailures: cs.Segments.CompactionFailures,
				MappedFiles:        cs.Segments.Backend.MappedFiles,
				Remaps:             cs.Segments.Backend.Remaps,
				Rewrites:           cs.Segments.Backend.Rewrites,
				RewriteFailures:    cs.Segments.Backend.RewriteFailures,
				ReclaimedBytes:     cs.Segments.Backend.ReclaimedBytes,
			},
			Cleanse:     cleanseResponseOf(cs.Cleanse),
			Maintenance: maintenanceResponseOf(cs.Maintenance),
		},
		QueryStats:   queryStatsResponseOf(s.sys.QueryStats()),
		UptimeSecond: int64(time.Since(s.started).Seconds()),
	}
	if b := s.sys.Building(); b != nil {
		resp.Building = b.Name()
	}
	if sh, ok := s.sys.(locater.Sharded); ok {
		cluster := &ClusterResponse{Shards: sh.NumShards(), ShardBy: sh.ShardPolicy()}
		for _, si := range sh.ShardInfos() {
			sr := ShardResponse{
				Index:    si.Index,
				Building: si.Building,
				Events:   si.Events,
				Devices:  si.Devices,
				Queries:  si.Queries,
			}
			if si.Durable {
				sr.Persist = &PersistResponse{Segments: si.Segments, LastLSN: si.LastLSN, DurableLSN: si.DurableLSN}
			}
			cluster.PerShard = append(cluster.PerShard, sr)
		}
		resp.Cluster = cluster
	}
	if s.locateQ != nil {
		resp.Admission = AdmissionResponse{
			Enabled: true,
			Locate:  admissionQueueResponseOf(s.locateQ),
			Batch:   admissionQueueResponseOf(s.batchQ),
			Ingest:  admissionQueueResponseOf(s.ingestQ),
		}
	}
	if segments, lastLSN, durableLSN, ok := s.sys.PersistStats(); ok {
		resp.Persist = &PersistResponse{Segments: segments, LastLSN: lastLSN, DurableLSN: durableLSN}
	}
	writeJSON(w, resp)
}

func latencyResponseOf(l locater.LatencyStats) LatencyResponse {
	return LatencyResponse{
		Count:      l.Count,
		MeanMicros: l.MeanMicros,
		P50Micros:  l.P50Micros,
		P99Micros:  l.P99Micros,
		MaxMicros:  l.MaxMicros,
	}
}

func queryStatsResponseOf(qs locater.QueryStats) QueryStatsResponse {
	out := QueryStatsResponse{
		Cold:   latencyResponseOf(qs.Cold),
		Cached: latencyResponseOf(qs.Cached),
	}
	out.NeighborsProcessed.P50 = qs.NeighborsProcessedP50
	out.NeighborsProcessed.P99 = qs.NeighborsProcessedP99
	out.DeadlineExceeded = qs.DeadlineExceeded
	return out
}

func cacheTierResponseOf(t locater.CacheTierStats) CacheTierResponse {
	return CacheTierResponse{
		Size:          t.Size,
		Capacity:      t.Capacity,
		Hits:          t.Hits,
		Misses:        t.Misses,
		Evictions:     t.Evictions,
		Invalidations: t.Invalidations,
	}
}

// QuarantineEntryResponse is the JSON shape of one cleansing-rejected
// event.
type QuarantineEntryResponse struct {
	Device string `json:"device"`
	Time   string `json:"time"`
	AP     string `json:"ap"`
	Rule   string `json:"rule"`
	Reason string `json:"reason"`
	At     string `json:"at"`
}

// QuarantineResponse is the JSON shape of GET /v1/quarantine: the cleansing
// counters plus the newest quarantined events, newest first.
type QuarantineResponse struct {
	Enabled bool                      `json:"enabled"`
	Stats   CleanseResponse           `json:"stats"`
	Entries []QuarantineEntryResponse `json:"entries"`
}

// handleQuarantine serves the ingest-time cleansing stage's quarantine ring
// (GET /v1/quarantine?limit=N). Engines without a quarantine surface (e.g.
// remote clients) answer 404; engines with cleansing disabled answer an
// empty ring with enabled=false.
func (s *Server) handleQuarantine(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q, ok := s.sys.(locater.Quarantiner)
	if !ok {
		httpError(w, http.StatusNotFound, "engine has no quarantine surface")
		return
	}
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad limit %q (want a positive integer)", v))
			return
		}
		limit = n
	}
	resp := QuarantineResponse{
		Enabled: q.CleansingEnabled(),
		Stats:   cleanseResponseOf(q.CleanseStats()),
		Entries: []QuarantineEntryResponse{},
	}
	for _, e := range q.Quarantine(limit) {
		resp.Entries = append(resp.Entries, QuarantineEntryResponse{
			Device: string(e.Event.Device),
			Time:   e.Event.Time.UTC().Format(time.RFC3339Nano),
			AP:     string(e.Event.AP),
			Rule:   string(e.Rule),
			Reason: e.Reason,
			At:     e.At.UTC().Format(time.RFC3339Nano),
		})
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// parseTime accepts RFC 3339 or the CSV layout. Empty is an error: recorded
// data (ingest events) must carry its real timestamp — silently stamping
// "now" would fabricate history. Query parameters, where "now" is the
// natural default, go through parseTimeOrNow instead.
func parseTime(v string) (time.Time, error) {
	if v == "" {
		return time.Time{}, fmt.Errorf("missing time")
	}
	if t, err := time.Parse(time.RFC3339, v); err == nil {
		return t, nil
	}
	if t, err := time.Parse(event.TimeLayout, v); err == nil {
		return t, nil
	}
	return time.Time{}, fmt.Errorf("unparseable time %q (want RFC3339 or %q)", v, event.TimeLayout)
}

// parseTimeOrNow is parseTime with the query-side default: an empty value
// means "now" (the real-time localization question "where is d?").
func parseTimeOrNow(v string) (time.Time, error) {
	if v == "" {
		return time.Now(), nil
	}
	return parseTime(v)
}

// writeJSON marshals v fully before touching the ResponseWriter, so the
// response is always either one complete JSON body or a clean JSON error —
// never a partially written body with error text appended (the pre-fix
// behavior: http.Error after a failed streaming Encode corrupted the
// already-started body). A write error means the client is gone; it is
// logged, not answered.
func writeJSON(w http.ResponseWriter, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("encoding response: %v", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		log.Printf("srv: writing response: %v", err)
	}
}
