// Package srv implements the HTTP JSON API around a LOCATER system: the
// online query/ingest surface that applications (occupancy dashboards, HVAC
// controllers, exposure analysis) integrate with. It is deliberately thin:
// all semantics live in the locater package.
package srv

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"locater"
	"locater/internal/event"
)

// Server wraps a LOCATER system with HTTP handlers. It serializes ingestion
// (the underlying store is already concurrency-safe; the mutex keeps
// model-invalidation and ingest atomic per request).
type Server struct {
	mu  sync.Mutex
	sys *locater.System
	mux *http.ServeMux

	started time.Time
}

// New builds the HTTP handler around an assembled system.
func New(sys *locater.System) *Server {
	s := &Server{sys: sys, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("/locate", s.handleLocate)
	s.mux.HandleFunc("/ingest", s.handleIngest)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// LocateResponse is the JSON shape of a localization answer.
type LocateResponse struct {
	Device   string  `json:"device"`
	Time     string  `json:"time"`
	Outside  bool    `json:"outside"`
	Region   string  `json:"region,omitempty"`
	Room     string  `json:"room,omitempty"`
	RoomProb float64 `json:"room_probability,omitempty"`
	Repaired bool    `json:"repaired"`
}

// IngestEvent is the JSON shape of one streamed connectivity event.
type IngestEvent struct {
	Device string `json:"device"`
	// Time is RFC 3339 or the paper's "2006-01-02 15:04:05" layout.
	Time string `json:"time"`
	AP   string `json:"ap"`
}

// StatsResponse reports system counters.
type StatsResponse struct {
	Events       int    `json:"events"`
	Devices      int    `json:"devices"`
	Queries      int    `json:"queries"`
	CacheEdges   int    `json:"cache_edges"`
	CacheHits    int    `json:"cache_hits"`
	CacheMisses  int    `json:"cache_misses"`
	UptimeSecond int64  `json:"uptime_seconds"`
	Building     string `json:"building"`
}

func (s *Server) handleLocate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	device := r.URL.Query().Get("device")
	if device == "" {
		httpError(w, http.StatusBadRequest, "missing device parameter")
		return
	}
	tq, err := parseTime(r.URL.Query().Get("time"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	res, err := s.sys.Locate(locater.DeviceID(device), tq)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, LocateResponse{
		Device:   device,
		Time:     tq.UTC().Format(time.RFC3339),
		Outside:  res.Outside,
		Region:   string(res.Region),
		Room:     string(res.Room),
		RoomProb: res.RoomProbability,
		Repaired: res.Repaired,
	})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var in []IngestEvent
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad body: %v", err))
		return
	}
	events := make([]locater.Event, 0, len(in))
	for i, e := range in {
		t, err := parseTime(e.Time)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("event %d: %v", i, err))
			return
		}
		events = append(events, locater.Event{
			Device: locater.DeviceID(e.Device),
			Time:   t,
			AP:     locater.APID(e.AP),
		})
	}
	s.mu.Lock()
	err := s.sys.Ingest(events)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, map[string]int{"ingested": len(events)})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	edges, hits, misses := s.sys.CacheStats()
	resp := StatsResponse{
		Events:       s.sys.NumEvents(),
		Devices:      s.sys.NumDevices(),
		Queries:      s.sys.NumQueries(),
		CacheEdges:   edges,
		CacheHits:    hits,
		CacheMisses:  misses,
		UptimeSecond: int64(time.Since(s.started).Seconds()),
		Building:     s.sys.Building().Name(),
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// parseTime accepts RFC 3339 or the CSV layout; empty means "now".
func parseTime(v string) (time.Time, error) {
	if v == "" {
		return time.Now(), nil
	}
	if t, err := time.Parse(time.RFC3339, v); err == nil {
		return t, nil
	}
	if t, err := time.Parse(event.TimeLayout, v); err == nil {
		return t, nil
	}
	return time.Time{}, fmt.Errorf("unparseable time %q (want RFC3339 or %q)", v, event.TimeLayout)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
