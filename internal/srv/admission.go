package srv

import (
	"context"
	"math"
	"runtime"
	"sync/atomic"
	"time"
)

// Admission control: the server's overload-degradation layer. Each request
// class (/locate, /locate/batch, /ingest) owns one admitQueue — a bounded
// executing-slot semaphore plus a bounded waiting queue — so overload
// degrades into prompt, retryable rejections instead of an unbounded pile of
// goroutines all missing their deadlines together (p99 collapse).
//
// Three rejection rules, checked in order when no slot is free:
//
//  1. Shed: batch requests are rejected once queue occupancy crosses
//     ShedBatchAt — LocateBatch degrades before single Locate, because one
//     batch holds a slot for its whole fan-out while a Locate holds it for
//     one query.
//  2. Queue full: the waiting queue is bounded; requests beyond MaxQueue
//     are rejected immediately (429 + Retry-After) rather than parked.
//  3. Deadline-aware: the expected wait (EWMA service time × queue depth ÷
//     slots) is compared against the request's remaining deadline; a request
//     that cannot plausibly be served in time is rejected up front — the
//     client gets its 429 with a Retry-After hint while its deadline still
//     has value, instead of a 504 after burning a queue slot.
//
// A request that queues waits at most until its context deadline; expiry in
// the queue is a 429 too (the work never started, so a retry is safe).

// QueueConfig bounds one request class.
type QueueConfig struct {
	// MaxConcurrent is the number of requests of this class executing at
	// once; further admitted requests wait in the queue.
	MaxConcurrent int
	// MaxQueue is the number of requests allowed to wait for a slot;
	// arrivals beyond it are rejected with 429 + Retry-After.
	MaxQueue int
}

// AdmissionOptions configures the server's admission-control layer. The
// zero value enables admission with the defaults below; set Disabled to run
// the pre-admission behavior (unbounded concurrency, useful as the
// comparison arm of overload experiments).
type AdmissionOptions struct {
	// Disabled turns admission control off entirely: no queues, no
	// rejections, no default deadline.
	Disabled bool
	// Locate, Batch, Ingest bound the three request classes. Zero fields
	// take the defaults (see defaultAdmission).
	Locate, Batch, Ingest QueueConfig
	// DefaultDeadline is applied to requests that carry no deadline_ms;
	// MaxDeadline clamps client-requested deadlines. Defaults 5s / 30s.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// ShedBatchAt is the queue-occupancy fraction (of either the batch or
	// the locate queue) above which batch requests are shed. Default 0.5.
	ShedBatchAt float64
	// Static pins each class's waiting-queue bound at the configured
	// MaxQueue (the historical GOMAXPROCS-multiple behavior). By default
	// the bound ADAPTS to the observed EWMA service time via Little's law:
	// the queue admits only as many waiters as the class can drain within
	// TargetQueueWait at its current service rate, clamped to
	// [2, MaxQueue]. Fast service → deep queue (absorb bursts); slow
	// service → shallow queue (reject early, before waiters' deadlines rot
	// in line). locater-serve exposes this as -static-admission.
	Static bool
	// TargetQueueWait is the waiting time the adaptive queue bound aims
	// for. Default 2s. Ignored when Static.
	TargetQueueWait time.Duration
}

// defaultAdmission fills zero fields with the defaults: locate gets
// 2×GOMAXPROCS executing slots and a 4× deep queue, batch keeps the
// historical 4-slot bound, ingest is narrow (the store's ingest lock is
// exclusive, extra slots only queue inside it).
func defaultAdmission(o AdmissionOptions) AdmissionOptions {
	cpus := runtime.GOMAXPROCS(0)
	def := func(c *QueueConfig, conc, queue int) {
		if c.MaxConcurrent <= 0 {
			c.MaxConcurrent = conc
		}
		if c.MaxQueue <= 0 {
			c.MaxQueue = queue
		}
	}
	def(&o.Locate, max(4, 2*cpus), max(16, 8*cpus))
	def(&o.Batch, 4, 8)
	def(&o.Ingest, 2, max(8, 2*cpus))
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 5 * time.Second
	}
	if o.MaxDeadline <= 0 {
		o.MaxDeadline = 30 * time.Second
	}
	if o.ShedBatchAt <= 0 || o.ShedBatchAt > 1 {
		o.ShedBatchAt = 0.5
	}
	if o.TargetQueueWait <= 0 {
		o.TargetQueueWait = 2 * time.Second
	}
	return o
}

// admitError is a rejected or failed admission, ready to render as an HTTP
// error. Code is the machine-readable taxonomy entry clients and load
// harnesses classify on.
type admitError struct {
	status     int
	code       string
	msg        string
	retryAfter time.Duration // > 0 adds a Retry-After header
}

// Rejection taxonomy codes (the "code" field of 429/504 bodies).
const (
	codeQueueFull          = "queue_full"          // waiting queue at MaxQueue
	codeShed               = "shed"                // batch shed under load
	codeDeadlineInfeasible = "deadline_infeasible" // expected wait > remaining deadline
	codeDeadlineQueue      = "deadline_queue"      // deadline expired while queued
	codeDeadlineExceeded   = "deadline_exceeded"   // deadline expired during execution (504)
)

// admitQueue is one request class's bounded executing/waiting state.
type admitQueue struct {
	cfg QueueConfig
	// static pins the queue bound at cfg.MaxQueue; targetWaitNs is the
	// adaptive bound's aim (see AdmissionOptions.Static/TargetQueueWait).
	static       bool
	targetWaitNs int64
	// slots holds one token per executing request; acquiring = sending.
	slots chan struct{}
	// queued counts requests waiting for a slot (bounded by MaxQueue).
	queued atomic.Int64
	// ewmaNs smooths observed service times; it feeds the expected-wait
	// estimate. Updated racily (load-modify-store) on purpose: it is a
	// smoothed statistic, and atomic loads/stores keep it tear-free.
	ewmaNs atomic.Int64

	admitted          atomic.Int64
	rejectedQueueFull atomic.Int64
	rejectedDeadline  atomic.Int64
	rejectedShed      atomic.Int64
	timedOutInQueue   atomic.Int64
	execDeadline      atomic.Int64
}

func newAdmitQueue(cfg QueueConfig) *admitQueue {
	return &admitQueue{cfg: cfg, slots: make(chan struct{}, cfg.MaxConcurrent)}
}

// configureAdaptive sets the queue's bound policy (see
// AdmissionOptions.Static / TargetQueueWait).
func (q *admitQueue) configureAdaptive(static bool, targetWait time.Duration) {
	q.static = static
	q.targetWaitNs = int64(targetWait)
}

// effectiveMaxQueue is the waiting-queue bound currently in force. In
// static mode — and before the first service-time observation — it is the
// configured MaxQueue. Otherwise Little's law sizes the queue to the
// longest backlog the class can drain within TargetQueueWait at its
// current EWMA service time (one wave of MaxConcurrent per EWMA), clamped
// to [2, MaxQueue]: a fast class keeps its deep burst buffer, a slow one
// rejects early instead of parking waiters whose deadlines will rot in
// line.
func (q *admitQueue) effectiveMaxQueue() int64 {
	maxQ := int64(q.cfg.MaxQueue)
	if q.static || q.targetWaitNs <= 0 {
		return maxQ
	}
	ewma := q.ewmaNs.Load()
	if ewma <= 0 {
		return maxQ
	}
	bound := q.targetWaitNs * int64(q.cfg.MaxConcurrent) / ewma
	if bound < 2 {
		bound = 2
	}
	if bound > maxQ {
		bound = maxQ
	}
	return bound
}

// occupancy is the waiting queue's fullness in [0, 1] relative to the
// effective (possibly adapted) bound.
func (q *admitQueue) occupancy() float64 {
	return float64(q.queued.Load()) / float64(q.effectiveMaxQueue())
}

// expectedWait estimates how long the (waiting+1)-th request will wait for a
// slot: one EWMA service time per "wave" of MaxConcurrent requests ahead of
// it. Zero until the first service time is observed.
func (q *admitQueue) expectedWait(waiting int64) time.Duration {
	ewma := q.ewmaNs.Load()
	if ewma <= 0 {
		return 0
	}
	waves := (waiting + int64(q.cfg.MaxConcurrent) - 1) / int64(q.cfg.MaxConcurrent)
	return time.Duration(ewma * waves)
}

// retryAfter converts an expected wait into a Retry-After hint (whole
// seconds, at least 1).
func retryAfter(wait time.Duration) time.Duration {
	secs := math.Ceil(wait.Seconds())
	if secs < 1 {
		secs = 1
	}
	return time.Duration(secs) * time.Second
}

// admit gates one request. shedAbove < 0 disables shedding (locate, ingest);
// otherwise the request is shed when either this queue's occupancy or the
// supplied peer occupancy exceeds it (batch sheds on locate pressure too).
// On success the returned release func MUST be called with the observed
// service duration; on rejection release is nil and the admitError is ready
// to render.
func (q *admitQueue) admit(ctx context.Context, shedAbove float64, peerOccupancy float64) (release func(time.Duration), rej *admitError) {
	// Fast path: a free slot admits immediately, bypassing every queue
	// check — an idle server never rejects.
	select {
	case q.slots <- struct{}{}:
		q.admitted.Add(1)
		return q.release, nil
	default:
	}

	// A request whose deadline already expired is rejected before queueing.
	if ctx.Err() != nil {
		q.rejectedDeadline.Add(1)
		return nil, &admitError{
			status: 429, code: codeDeadlineInfeasible,
			msg:        "deadline expired before admission",
			retryAfter: retryAfter(q.expectedWait(q.queued.Load())),
		}
	}

	waiting := q.queued.Add(1)
	maxQueue := q.effectiveMaxQueue()

	// Shed check: batch degrades before single locate. Uses the occupancy
	// including this request, so a single waiter against MaxQueue=1 sheds.
	if shedAbove >= 0 {
		occ := float64(waiting) / float64(maxQueue)
		if occ > shedAbove || peerOccupancy > shedAbove {
			q.queued.Add(-1)
			q.rejectedShed.Add(1)
			return nil, &admitError{
				status: 429, code: codeShed,
				msg:        "shedding batch load",
				retryAfter: retryAfter(q.expectedWait(waiting)),
			}
		}
	}

	// Bounded queue: beyond the effective bound the request is turned away
	// now.
	if waiting > maxQueue {
		q.queued.Add(-1)
		q.rejectedQueueFull.Add(1)
		return nil, &admitError{
			status: 429, code: codeQueueFull,
			msg:        "request queue full",
			retryAfter: retryAfter(q.expectedWait(waiting)),
		}
	}

	// Deadline-aware rejection: if the expected wait alone exceeds the
	// remaining deadline, the request cannot be served in time — reject
	// while the client's deadline still has value.
	if dl, ok := ctx.Deadline(); ok {
		if wait := q.expectedWait(waiting); wait > 0 && wait > time.Until(dl) {
			q.queued.Add(-1)
			q.rejectedDeadline.Add(1)
			return nil, &admitError{
				status: 429, code: codeDeadlineInfeasible,
				msg:        "expected queue wait exceeds request deadline",
				retryAfter: retryAfter(wait),
			}
		}
	}

	// Queue: wait for a slot, but never past the request's deadline.
	select {
	case q.slots <- struct{}{}:
		q.queued.Add(-1)
		q.admitted.Add(1)
		return q.release, nil
	case <-ctx.Done():
		q.queued.Add(-1)
		q.timedOutInQueue.Add(1)
		return nil, &admitError{
			status: 429, code: codeDeadlineQueue,
			msg:        "deadline expired while queued",
			retryAfter: retryAfter(q.expectedWait(q.queued.Load())),
		}
	}
}

// release frees the slot and folds the observed service time into the EWMA
// (α = 1/8).
func (q *admitQueue) release(served time.Duration) {
	old := q.ewmaNs.Load()
	sample := int64(served)
	if sample < 0 {
		sample = 0
	}
	if old == 0 {
		q.ewmaNs.Store(sample)
	} else {
		q.ewmaNs.Store(old + (sample-old)/8)
	}
	<-q.slots
}

// AdmissionQueueResponse is the JSON shape of one request class's admission
// state under GET /stats.
type AdmissionQueueResponse struct {
	MaxConcurrent int `json:"max_concurrent"`
	MaxQueue      int `json:"max_queue"`
	// EffectiveMaxQueue is the waiting-queue bound currently in force:
	// equal to MaxQueue in static mode, adapted to the EWMA service time
	// otherwise (see AdmissionOptions.Static).
	EffectiveMaxQueue int `json:"effective_max_queue"`
	// Adaptive reports whether the bound adapts (i.e. !Static).
	Adaptive bool `json:"adaptive"`
	// InFlight / Queued are instantaneous gauges.
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
	// Counters are cumulative and monotone.
	Admitted          int64 `json:"admitted"`
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedDeadline  int64 `json:"rejected_deadline"`
	RejectedShed      int64 `json:"rejected_shed"`
	TimedOutInQueue   int64 `json:"timed_out_in_queue"`
	// DeadlineExceeded counts requests admitted but failed mid-execution
	// with a 504 (their deadline expired between pipeline stages).
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	// EWMAServiceMicros is the smoothed service time feeding the
	// expected-wait estimate.
	EWMAServiceMicros float64 `json:"ewma_service_us"`
}

// AdmissionResponse is the JSON shape of the /stats admission block.
type AdmissionResponse struct {
	Enabled bool                   `json:"enabled"`
	Locate  AdmissionQueueResponse `json:"locate"`
	Batch   AdmissionQueueResponse `json:"batch"`
	Ingest  AdmissionQueueResponse `json:"ingest"`
}

func admissionQueueResponseOf(q *admitQueue) AdmissionQueueResponse {
	return AdmissionQueueResponse{
		MaxConcurrent:     q.cfg.MaxConcurrent,
		MaxQueue:          q.cfg.MaxQueue,
		EffectiveMaxQueue: int(q.effectiveMaxQueue()),
		Adaptive:          !q.static,
		InFlight:          len(q.slots),
		Queued:            int(q.queued.Load()),
		Admitted:          q.admitted.Load(),
		RejectedQueueFull: q.rejectedQueueFull.Load(),
		RejectedDeadline:  q.rejectedDeadline.Load(),
		RejectedShed:      q.rejectedShed.Load(),
		TimedOutInQueue:   q.timedOutInQueue.Load(),
		DeadlineExceeded:  q.execDeadline.Load(),
		EWMAServiceMicros: float64(q.ewmaNs.Load()) / 1000,
	}
}
