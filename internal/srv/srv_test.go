package srv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"locater"
	"locater/internal/sim"
)

var simStart = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)

func newTestServer(t *testing.T) (*Server, *sim.Dataset) {
	t.Helper()
	sc, err := sim.DBH(2)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := sim.Generate(sc.Config(simStart, 7, 99))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := locater.New(locater.Config{
		Building:           ds.Building,
		EnableCache:        true,
		HistoryDays:        7,
		PromotionsPerRound: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Ingest(ds.Events); err != nil {
		t.Fatal(err)
	}
	sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute)
	return New(sys), ds
}

func TestHealthz(t *testing.T) {
	s, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
}

func TestLocateEndpoint(t *testing.T) {
	s, ds := newTestServer(t)
	dev := ds.People[0].Device
	tq := simStart.AddDate(0, 0, 5).Add(11 * time.Hour)

	url := fmt.Sprintf("/locate?device=%s&time=%s", dev, tq.Format(time.RFC3339))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("locate = %d: %s", rec.Code, rec.Body)
	}
	var resp LocateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Device != string(dev) {
		t.Errorf("device = %s", resp.Device)
	}
	if !resp.Outside && resp.Room == "" {
		t.Error("inside answer without a room")
	}
}

func TestLocateEndpointValidation(t *testing.T) {
	s, _ := newTestServer(t)
	cases := []struct {
		method string
		url    string
		code   int
	}{
		{http.MethodPost, "/locate?device=x", http.StatusMethodNotAllowed},
		{http.MethodGet, "/locate", http.StatusBadRequest},
		{http.MethodGet, "/locate?device=x&time=garbage", http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.url, nil))
		if rec.Code != tc.code {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.url, rec.Code, tc.code)
		}
	}
}

func TestLocateBatchEndpoint(t *testing.T) {
	s, ds := newTestServer(t)
	tq := simStart.AddDate(0, 0, 5).Add(11 * time.Hour).Format(time.RFC3339)
	req := BatchLocateRequest{
		Queries: []BatchQuery{
			{Device: string(ds.People[0].Device), Time: tq},
			{Device: string(ds.People[1].Device), Time: tq},
			{Device: string(ds.People[0].Device), Time: tq},
		},
		Workers: 2,
	}
	body, _ := json.Marshal(req)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/locate/batch", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("locate/batch = %d: %s", rec.Code, rec.Body)
	}
	var resp BatchLocateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(req.Queries) {
		t.Fatalf("got %d results for %d queries", len(resp.Results), len(req.Queries))
	}
	for i, r := range resp.Results {
		if r.Device != req.Queries[i].Device {
			t.Errorf("result %d device = %s, want %s (order not preserved)", i, r.Device, req.Queries[i].Device)
		}
		if r.Error != "" {
			t.Errorf("result %d error: %s", i, r.Error)
		}
		if !r.Outside && r.Room == "" {
			t.Errorf("result %d inside without a room", i)
		}
	}
}

func TestLocateBatchEndpointValidation(t *testing.T) {
	s, _ := newTestServer(t)
	cases := []struct {
		method string
		body   string
		code   int
	}{
		{http.MethodGet, "", http.StatusMethodNotAllowed},
		{http.MethodPost, `not json`, http.StatusBadRequest},
		{http.MethodPost, `{"queries":[]}`, http.StatusBadRequest},
		{http.MethodPost, `{"queries":[{"device":"","time":""}]}`, http.StatusBadRequest},
		{http.MethodPost, `{"queries":[{"device":"d","time":"garbage"}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(tc.method, "/locate/batch", bytes.NewReader([]byte(tc.body))))
		if rec.Code != tc.code {
			t.Errorf("%s body %q = %d, want %d", tc.method, tc.body, rec.Code, tc.code)
		}
	}
}

func TestIngestEndpoint(t *testing.T) {
	s, ds := newTestServer(t)
	ap := ds.Building.AccessPoints()[0]
	body, _ := json.Marshal([]IngestEvent{
		{Device: "new-device", Time: "2026-01-11 09:00:00", AP: string(ap)},
		{Device: "new-device", Time: simStart.AddDate(0, 0, 6).Add(10 * time.Hour).Format(time.RFC3339), AP: string(ap)},
	})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rec.Code, rec.Body)
	}
	var resp map[string]int
	json.Unmarshal(rec.Body.Bytes(), &resp)
	if resp["ingested"] != 2 {
		t.Errorf("ingested = %d", resp["ingested"])
	}

	// Bad payloads rejected.
	for _, bad := range []string{
		`not json`,
		`[{"device":"d","time":"nope","ap":"a"}]`,
		`[{"device":"","time":"2026-01-11 09:00:00","ap":"a"}]`,
	} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader([]byte(bad))))
		if rec.Code == http.StatusOK {
			t.Errorf("payload %q accepted", bad)
		}
	}
	// GET not allowed.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/ingest", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest = %d", rec.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, ds := newTestServer(t)
	// One query so the counter moves.
	url := fmt.Sprintf("/locate?device=%s&time=%s",
		ds.People[0].Device, simStart.AddDate(0, 0, 5).Add(11*time.Hour).Format(time.RFC3339))
	s.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, url, nil))

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Events == 0 || resp.Devices == 0 {
		t.Errorf("stats = %+v", resp)
	}
	if resp.Queries < 1 {
		t.Errorf("queries = %d, want ≥ 1", resp.Queries)
	}
	if resp.Building != ds.Building.Name() {
		t.Errorf("building = %s", resp.Building)
	}
}

func TestParseTime(t *testing.T) {
	if _, err := parseTime("2026-01-11 09:00:00"); err != nil {
		t.Errorf("CSV layout rejected: %v", err)
	}
	if _, err := parseTime("2026-01-11T09:00:00Z"); err != nil {
		t.Errorf("RFC3339 rejected: %v", err)
	}
	if _, err := parseTime("bogus"); err == nil {
		t.Error("garbage accepted")
	}
	// Empty is an error for recorded data (ingest must not fabricate
	// timestamps) …
	if _, err := parseTime(""); err == nil {
		t.Error("parseTime accepted an empty time")
	}
	// … but defaults to "now" for query parameters.
	got, err := parseTimeOrNow("")
	if err != nil || time.Since(got) > time.Minute {
		t.Errorf("parseTimeOrNow(\"\") = %v, %v", got, err)
	}
}

// TestIngestMissingTimeRejected: an ingest event without a timestamp must
// get a 400, not a silently fabricated server-side "now" (the pre-fix
// behavior, which planted phantom history at the ingest instant).
func TestIngestMissingTimeRejected(t *testing.T) {
	s, ds := newTestServer(t)
	before := mustStats(t, s).Events
	ap := ds.Building.AccessPoints()[0]
	body, _ := json.Marshal([]IngestEvent{
		{Device: "new-device", Time: "", AP: string(ap)},
	})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(body)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("ingest with missing time = %d, want 400", rec.Code)
	}
	var errResp map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &errResp); err != nil {
		t.Fatalf("error body is not JSON: %v (%s)", err, rec.Body)
	}
	if errResp["error"] == "" {
		t.Error("error body missing the error field")
	}
	if after := mustStats(t, s).Events; after != before {
		t.Errorf("rejected batch changed event count: %d → %d", before, after)
	}
}

func mustStats(t *testing.T, s *Server) StatsResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestWriteJSONUnencodableValue: an unmarshalable value must yield one clean
// JSON error response — not a partial body with plain-text error appended.
func TestWriteJSONUnencodableValue(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, map[string]float64{"bad": math.NaN()})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("code = %d, want 500", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var errResp map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &errResp); err != nil {
		t.Fatalf("body is not a single valid JSON document: %v (%s)", err, rec.Body)
	}
	if errResp["error"] == "" {
		t.Error("error field empty")
	}
}

// TestWriteJSONBrokenWriter: a failing writer (client gone mid-response)
// must not trigger a second write/WriteHeader attempt.
type brokenWriter struct {
	header http.Header
	wrote  int
	codes  []int
}

func (b *brokenWriter) Header() http.Header {
	if b.header == nil {
		b.header = make(http.Header)
	}
	return b.header
}
func (b *brokenWriter) WriteHeader(code int) { b.codes = append(b.codes, code) }
func (b *brokenWriter) Write(p []byte) (int, error) {
	b.wrote++
	return 0, fmt.Errorf("connection reset")
}

func TestWriteJSONBrokenWriter(t *testing.T) {
	w := &brokenWriter{}
	writeJSON(w, map[string]int{"ok": 1})
	if w.wrote != 1 {
		t.Errorf("writes = %d, want exactly 1 (no error-path second write)", w.wrote)
	}
	if len(w.codes) != 0 {
		t.Errorf("WriteHeader calls = %v, want none (status already implied 200)", w.codes)
	}
}

// TestStatsCacheTiers: /stats must report the per-tier cache figures, and a
// repeated query must show up as a result-cache hit.
func TestStatsCacheTiers(t *testing.T) {
	s, ds := newTestServer(t)
	url := fmt.Sprintf("/locate?device=%s&time=%s",
		ds.People[0].Device, simStart.AddDate(0, 0, 5).Add(11*time.Hour).Format(time.RFC3339))
	s.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, url, nil))
	s.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, url, nil))

	resp := mustStats(t, s)
	if !resp.Caches.Enabled {
		t.Fatal("caches.enabled = false on an EnableCache server")
	}
	c := resp.Caches
	if c.Results.Hits == 0 {
		t.Errorf("repeated query produced no result-cache hit: %+v", c.Results)
	}
	if c.CoarseModels.Capacity == 0 || c.Affinity.Capacity == 0 || c.Results.Capacity == 0 {
		t.Errorf("cache tiers report no capacity: %+v", c)
	}
	if c.Results.Size > c.Results.Capacity || c.Affinity.Size > c.Affinity.Capacity ||
		c.CoarseModels.Size > c.CoarseModels.Capacity {
		t.Errorf("a cache tier exceeds its capacity: %+v", c)
	}
	// Legacy flat fields mirror the affinity tier.
	if resp.CacheHits != c.Affinity.Hits || resp.CacheMisses != c.Affinity.Misses {
		t.Errorf("legacy fields diverge from affinity tier: %+v vs %+v", resp, c.Affinity)
	}
	// No WAL on this server: persist block absent.
	if resp.Persist != nil {
		t.Errorf("persist block present on a memory-only server: %+v", resp.Persist)
	}
	// The occupancy index is on by default and serves neighbor discovery.
	if !c.Occupancy.Enabled || c.Occupancy.BucketSeconds <= 0 {
		t.Errorf("occupancy block missing or disabled: %+v", c.Occupancy)
	}
	if c.Occupancy.Entries == 0 || c.Occupancy.Buckets == 0 {
		t.Errorf("occupancy index empty on an ingested server: %+v", c.Occupancy)
	}
	if c.Occupancy.Lookups == 0 {
		t.Errorf("served queries produced no occupancy lookups: %+v", c.Occupancy)
	}
	if c.Occupancy.FallbackScans != 0 {
		t.Errorf("index-enabled server fell back to full scans: %+v", c.Occupancy)
	}
	// The segmented event layout is on by default; an in-memory server has
	// no cold tier.
	if !c.Segments.Enabled || c.Segments.MaxEvents <= 0 {
		t.Errorf("segments block missing or disabled: %+v", c.Segments)
	}
	if c.Segments.ColdTier {
		t.Errorf("memory-only server reports a cold tier: %+v", c.Segments)
	}
	if c.Segments.SealFailures != 0 || c.Segments.DecodeFailures != 0 {
		t.Errorf("segment failures on a healthy server: %+v", c.Segments)
	}
	if c.Segments.SegmentEvents+c.Segments.HeadEvents != resp.Events {
		t.Errorf("segment shape (%d sealed + %d head) does not account for %d events",
			c.Segments.SegmentEvents, c.Segments.HeadEvents, resp.Events)
	}
}

// TestStatsQueryStats: after a cold query and a repeat (cached) query, the
// query_stats block must report both populations with sane quantiles.
func TestStatsQueryStats(t *testing.T) {
	s, ds := newTestServer(t)
	dev := ds.People[0].Device
	tq := simStart.AddDate(0, 0, 5).Add(11 * time.Hour)
	url := fmt.Sprintf("/locate?device=%s&time=%s", dev, tq.Format(time.RFC3339))
	for i := 0; i < 3; i++ { // 1 cold + 2 result-cache hits
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("locate %d = %d: %s", i, rec.Code, rec.Body)
		}
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	qs := resp.QueryStats
	if qs.Cold.Count != 1 {
		t.Errorf("cold count = %d, want 1", qs.Cold.Count)
	}
	if qs.Cached.Count != 2 {
		t.Errorf("cached count = %d, want 2", qs.Cached.Count)
	}
	if qs.Cold.P99Micros < qs.Cold.P50Micros {
		t.Errorf("cold p99 %v < p50 %v", qs.Cold.P99Micros, qs.Cold.P50Micros)
	}
	if qs.Cold.MaxMicros <= 0 || qs.Cold.MeanMicros <= 0 {
		t.Errorf("cold mean/max not positive: %+v", qs.Cold)
	}
	if qs.NeighborsProcessed.P99 < qs.NeighborsProcessed.P50 {
		t.Errorf("neighbors p99 %d < p50 %d", qs.NeighborsProcessed.P99, qs.NeighborsProcessed.P50)
	}
}

// TestPprofGated: /debug/pprof/ must 404 by default and serve the profiler
// index once EnablePprof is called.
func TestPprofGated(t *testing.T) {
	s, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("pprof without flag = %d, want 404", rec.Code)
	}
	s.EnablePprof()
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof after enable = %d, want 200", rec.Code)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("profile")) {
		t.Error("pprof index body missing profile links")
	}
}
