package srv

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"locater"
	"locater/internal/cluster"
	"locater/internal/sim"
)

// TestV1Aliases checks every endpoint answers identically under /v1 and the
// legacy unversioned path.
func TestV1Aliases(t *testing.T) {
	s, ds := newTestServer(t)
	dev := string(ds.People[0].Device)
	tq := simStart.AddDate(0, 0, 5).Add(11 * time.Hour).Format(time.RFC3339)
	batchBody := `{"queries":[{"device":"` + dev + `","time":"` + tq + `"}]}`

	cases := []struct {
		method, path string
		body         string
	}{
		{http.MethodGet, "/locate?device=" + dev + "&time=" + tq, ""},
		{http.MethodPost, "/locate/batch", batchBody},
		{http.MethodPost, "/ingest", `[]`},
		{http.MethodGet, "/stats", ""},
		{http.MethodGet, "/healthz", ""},
	}
	for _, c := range cases {
		var bodies []string
		for _, path := range []string{c.path, "/v1" + c.path} {
			var rdr *bytes.Reader
			if c.body != "" {
				rdr = bytes.NewReader([]byte(c.body))
			} else {
				rdr = bytes.NewReader(nil)
			}
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(c.method, path, rdr))
			if rec.Code != http.StatusOK {
				t.Fatalf("%s %s = %d: %s", c.method, path, rec.Code, rec.Body)
			}
			bodies = append(bodies, rec.Body.String())
		}
		// Stats carries an uptime counter that can tick between the two
		// requests; everything else must match byte-for-byte.
		if c.path != "/stats" && bodies[0] != bodies[1] {
			t.Errorf("%s: legacy and /v1 responses differ:\n%s\n%s", c.path, bodies[0], bodies[1])
		}
	}
}

// TestErrorEnvelope checks the uniform error body on every failure class
// reachable without overload: 400, 404, and 405 across all five endpoints.
func TestErrorEnvelope(t *testing.T) {
	s, _ := newTestServer(t)
	cases := []struct {
		name         string
		method, path string
		body         string
		status       int
		code         string
	}{
		{"locate missing device", http.MethodGet, "/v1/locate", "", http.StatusBadRequest, "bad_request"},
		{"locate bad time", http.MethodGet, "/v1/locate?device=d&time=nope", "", http.StatusBadRequest, "bad_request"},
		{"locate wrong method", http.MethodPost, "/v1/locate", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"batch bad body", http.MethodPost, "/v1/locate/batch", "{", http.StatusBadRequest, "bad_request"},
		{"batch wrong method", http.MethodGet, "/v1/locate/batch", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"ingest bad body", http.MethodPost, "/v1/ingest", "nope", http.StatusBadRequest, "bad_request"},
		{"ingest wrong method", http.MethodGet, "/v1/ingest", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"stats wrong method", http.MethodPost, "/v1/stats", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"healthz wrong method", http.MethodPost, "/v1/healthz", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"unknown path", http.MethodGet, "/v1/nope", "", http.StatusNotFound, "not_found"},
		{"unknown legacy path", http.MethodGet, "/nope", "", http.StatusNotFound, "not_found"},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(c.method, c.path, bytes.NewReader([]byte(c.body))))
		if rec.Code != c.status {
			t.Errorf("%s: status = %d, want %d", c.name, rec.Code, c.status)
			continue
		}
		var env ErrorEnvelope
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Errorf("%s: body is not an envelope: %v (%s)", c.name, err, rec.Body)
			continue
		}
		if env.Code != c.code {
			t.Errorf("%s: code = %q, want %q", c.name, env.Code, c.code)
		}
		if env.Message == "" {
			t.Errorf("%s: empty message", c.name)
		}
		if env.LegacyError != env.Message {
			t.Errorf("%s: legacy error field %q does not mirror message %q", c.name, env.LegacyError, env.Message)
		}
	}
}

// TestStatsClusterBlock serves a 2-shard cluster and checks /v1/stats
// publishes the topology with per-shard counters that reconcile with the
// merged top-level figures.
func TestStatsClusterBlock(t *testing.T) {
	sc, err := sim.DBH(2)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := sim.Generate(sc.Config(simStart, 7, 99))
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(locater.Config{
		Building:           ds.Building,
		EnableCache:        true,
		HistoryDays:        7,
		PromotionsPerRound: 8,
	}, cluster.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ingest(ds.Events); err != nil {
		t.Fatal(err)
	}
	s := New(c)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d: %s", rec.Code, rec.Body)
	}
	var st StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil {
		t.Fatal("sharded deployment published no cluster block")
	}
	if st.Cluster.Shards != 2 || st.Cluster.ShardBy != cluster.ByDevice {
		t.Errorf("cluster block = %d shards by %q", st.Cluster.Shards, st.Cluster.ShardBy)
	}
	if len(st.Cluster.PerShard) != 2 {
		t.Fatalf("per_shard has %d entries", len(st.Cluster.PerShard))
	}
	var events, devices int
	for _, sh := range st.Cluster.PerShard {
		events += sh.Events
		devices += sh.Devices
	}
	if events != st.Events || events != len(ds.Events) {
		t.Errorf("per-shard events sum %d, top-level %d, ingested %d", events, st.Events, len(ds.Events))
	}
	if devices != st.Devices {
		t.Errorf("per-shard devices sum %d, top-level %d", devices, st.Devices)
	}

	// A bare System must NOT publish the block.
	bare, _ := newTestServer(t)
	rec = httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var bareStats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &bareStats); err != nil {
		t.Fatal(err)
	}
	if bareStats.Cluster != nil {
		t.Error("unsharded deployment published a cluster block")
	}
}

// TestQuarantineEndpoint drives the cleansing stage through the HTTP
// surface: dirty ingest lands rejects in the quarantine, GET /v1/quarantine
// returns them newest-first with per-rule stats, and the limit parameter
// is validated.
func TestQuarantineEndpoint(t *testing.T) {
	sc, err := sim.Office(1)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := sim.Generate(sc.Config(simStart, 2, 7))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := locater.New(locater.Config{
		Building:           ds.Building,
		EnableCache:        true,
		EnableCleansing:    true,
		HistoryDays:        3,
		PromotionsPerRound: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(sys)
	if err := sys.Ingest(ds.Events); err != nil {
		t.Fatal(err)
	}
	// A fresh event followed by its exact duplicate: one reject.
	e := locater.Event{
		Device: ds.People[0].Device,
		Time:   simStart.Add(100 * time.Hour),
		AP:     ds.Events[0].AP,
	}
	if err := sys.Ingest([]locater.Event{e, e}); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/quarantine", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("quarantine: %d (%s)", rec.Code, rec.Body)
	}
	var resp QuarantineResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Enabled {
		t.Error("cleansing-enabled engine reports enabled=false")
	}
	if len(resp.Entries) != 1 {
		t.Fatalf("quarantine has %d entries, want 1: %+v", len(resp.Entries), resp.Entries)
	}
	ent := resp.Entries[0]
	if ent.Device != string(e.Device) || ent.Rule != "duplicate" || ent.Reason == "" {
		t.Errorf("entry = %+v, want the duplicate of %s", ent, e.Device)
	}
	if resp.Stats.Quarantined != 1 || resp.Stats.Duplicates != 1 {
		t.Errorf("stats = %+v, want 1 duplicate quarantined", resp.Stats)
	}

	// The same counters appear in the /v1/stats caches block.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var st StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Caches.Cleanse.Quarantined != 1 {
		t.Errorf("stats cleanse block = %+v, want quarantined 1", st.Caches.Cleanse)
	}

	// Bad limit is a 400; the legacy alias serves too.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/quarantine?limit=zero", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad limit: %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/quarantine", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("legacy alias: %d, want 200", rec.Code)
	}

	// With cleansing off, the endpoint still serves — empty and disabled.
	off, _ := newTestServer(t)
	rec = httptest.NewRecorder()
	off.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/quarantine", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("quarantine (cleansing off): %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Enabled || len(resp.Entries) != 0 {
		t.Errorf("cleansing-off quarantine = %+v, want disabled and empty", resp)
	}
}
