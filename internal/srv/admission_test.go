package srv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"locater"
	"locater/internal/sim"
)

// newTinyServer builds a server over a small office dataset (cheap compared
// to the DBH fixture) with explicit admission bounds, for overload tests.
func newTinyServer(t *testing.T, opts Options) (*Server, *sim.Dataset) {
	t.Helper()
	sc, err := sim.Office(1)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := sim.Generate(sc.Config(simStart, 3, 7))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := locater.New(locater.Config{
		Building:           ds.Building,
		EnableCache:        true,
		HistoryDays:        3,
		PromotionsPerRound: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Ingest(ds.Events); err != nil {
		t.Fatal(err)
	}
	sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute)
	return NewWithOptions(sys, opts), ds
}

func getLocate(s *Server, device string, tq time.Time, extra string) *httptest.ResponseRecorder {
	url := fmt.Sprintf("/locate?device=%s&time=%s%s", device, tq.Format(time.RFC3339), extra)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec
}

func errCode(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var body ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body is not JSON: %v (%s)", err, rec.Body)
	}
	return body.Code
}

// TestAdmitQueueRejections drives the queue through all three rejection
// rules deterministically (slots held by hand, no racing requests).
func TestAdmitQueueRejections(t *testing.T) {
	q := newAdmitQueue(QueueConfig{MaxConcurrent: 1, MaxQueue: 2})
	ctx := context.Background()

	// Free slot: admitted immediately.
	release, rej := q.admit(ctx, -1, 0)
	if rej != nil {
		t.Fatalf("idle queue rejected: %+v", rej)
	}

	// Slot busy: one waiter fits (start it in a goroutine), the queue has
	// room for a second, the third is turned away.
	type admitRes struct {
		release func(time.Duration)
		rej     *admitError
	}
	waiter := make(chan admitRes, 2)
	for i := 0; i < 2; i++ {
		go func() {
			r, e := q.admit(ctx, -1, 0)
			waiter <- admitRes{r, e}
		}()
	}
	deadlineT := time.Now().Add(5 * time.Second)
	for q.queued.Load() < 2 {
		if time.Now().After(deadlineT) {
			t.Fatal("waiters never queued")
		}
		time.Sleep(time.Millisecond)
	}
	_, rej = q.admit(ctx, -1, 0)
	if rej == nil || rej.code != codeQueueFull || rej.status != 429 {
		t.Fatalf("overfull queue: got %+v, want 429 %s", rej, codeQueueFull)
	}
	if rej.retryAfter < time.Second {
		t.Errorf("queue_full Retry-After = %v, want ≥ 1s", rej.retryAfter)
	}

	// Shed: a batch-style admit (shedAbove=0.4) sheds at 1/2 occupancy
	// even though the queue is not full — and also on peer pressure alone.
	release(10 * time.Millisecond) // free the slot; one waiter takes it
	first := <-waiter
	if first.rej != nil {
		t.Fatalf("queued waiter rejected: %+v", first.rej)
	}
	// Queue now holds 1 waiter (occupancy 0.5 of 2).
	_, rej = q.admit(ctx, 0.4, 0)
	if rej == nil || rej.code != codeShed {
		t.Fatalf("shed admit: got %+v, want %s", rej, codeShed)
	}
	// With its own queue empty, peer occupancy alone sheds too.
	q2 := newAdmitQueue(QueueConfig{MaxConcurrent: 1, MaxQueue: 2})
	q2.slots <- struct{}{} // saturate so admit reaches the shed check
	_, rej = q2.admit(ctx, 0.4, 0.9)
	if rej == nil || rej.code != codeShed {
		t.Fatalf("peer-pressure shed: got %+v, want %s", rej, codeShed)
	}
	<-q2.slots

	// Deadline-infeasible: with a primed EWMA, a deadline shorter than the
	// expected wait is rejected before queueing.
	dctx, cancel := context.WithTimeout(ctx, time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond) // expired before admission
	_, rej = q.admit(dctx, -1, 0)
	if rej == nil || rej.code != codeDeadlineInfeasible {
		t.Fatalf("expired-deadline admit: got %+v, want %s", rej, codeDeadlineInfeasible)
	}
	// EWMA is primed from release(10ms): a 1ms-from-now deadline cannot
	// cover the ~10ms expected wait with one request already queued.
	dctx2, cancel2 := context.WithTimeout(ctx, time.Millisecond)
	defer cancel2()
	_, rej = q.admit(dctx2, -1, 0)
	if rej == nil || (rej.code != codeDeadlineInfeasible && rej.code != codeDeadlineQueue) {
		t.Fatalf("infeasible-deadline admit: got %+v", rej)
	}

	// Drain: free the slot, the remaining waiter completes, gauges return
	// to zero.
	first.release(time.Millisecond)
	second := <-waiter
	if second.rej != nil {
		t.Fatalf("second waiter rejected: %+v", second.rej)
	}
	second.release(time.Millisecond)
	if got := q.queued.Load(); got != 0 {
		t.Errorf("queued after drain = %d", got)
	}
	if got := len(q.slots); got != 0 {
		t.Errorf("in-flight after drain = %d", got)
	}
}

// TestOverloadDegradesGracefully saturates a 1-slot server with concurrent
// requests and asserts the admission contract: every response is 200, 429
// (with Retry-After), or 504; at least one request is rejected; queue wait
// is bounded by the deadline; counters in /stats reconcile and stay
// monotone; and the server drains to zero queued/in-flight with no leaked
// goroutines. Run under -race in CI.
func TestOverloadDegradesGracefully(t *testing.T) {
	s, ds := newTinyServer(t, Options{Admission: AdmissionOptions{
		Locate:          QueueConfig{MaxConcurrent: 1, MaxQueue: 2},
		Batch:           QueueConfig{MaxConcurrent: 1, MaxQueue: 2},
		Ingest:          QueueConfig{MaxConcurrent: 1, MaxQueue: 2},
		DefaultDeadline: 2 * time.Second,
	}})
	tq := simStart.AddDate(0, 0, 2).Add(11 * time.Hour)

	// Warm one query so responses have substance, then hold the only
	// executing slot by hand so concurrent requests must queue or reject.
	if rec := getLocate(s, string(ds.People[0].Device), tq, ""); rec.Code != http.StatusOK {
		t.Fatalf("warm query = %d: %s", rec.Code, rec.Body)
	}
	before := runtime.NumGoroutine()

	s.locateQ.slots <- struct{}{}
	const n = 24
	var wg sync.WaitGroup
	codes := make([]int, n)
	retryOK := make([]bool, n)
	maxWait := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			// Distinct devices and times defeat the result cache; a
			// 300ms deadline bounds the queue wait.
			dev := ds.People[i%len(ds.People)].Device
			rec := getLocate(s, string(dev), tq.Add(time.Duration(i)*time.Minute), "&deadline_ms=300")
			codes[i] = rec.Code
			maxWait[i] = time.Since(start)
			retryOK[i] = rec.Code != 429 || rec.Header().Get("Retry-After") != ""
		}(i)
	}
	// Give the burst time to queue up, then sample /stats mid-overload for
	// the monotonicity check, release the slot, and drain.
	time.Sleep(50 * time.Millisecond)
	mid := mustStats(t, s).Admission.Locate
	<-s.locateQ.slots
	wg.Wait()

	saw := map[int]int{}
	for i, c := range codes {
		saw[c]++
		switch c {
		case http.StatusOK, 429, http.StatusGatewayTimeout:
		default:
			t.Fatalf("request %d: unexpected status %d", i, c)
		}
		if !retryOK[i] {
			t.Errorf("request %d: 429 without Retry-After", i)
		}
		// Queue wait is bounded: deadline 300ms plus service/scheduling
		// slack — nothing waits unboundedly.
		if maxWait[i] > 3*time.Second {
			t.Errorf("request %d waited %v, want bounded by deadline", i, maxWait[i])
		}
	}
	if saw[429] == 0 {
		t.Errorf("no 429s under 24-way overload of a 1-slot server: %v", saw)
	}

	after := mustStats(t, s).Admission.Locate
	// Counters are cumulative: the post-drain sample dominates the
	// mid-overload one in every component.
	if after.Admitted < mid.Admitted || after.RejectedQueueFull < mid.RejectedQueueFull ||
		after.RejectedDeadline < mid.RejectedDeadline || after.TimedOutInQueue < mid.TimedOutInQueue {
		t.Errorf("admission counters not monotone: mid %+v, after %+v", mid, after)
	}
	rejected := after.RejectedQueueFull + after.RejectedDeadline + after.RejectedShed + after.TimedOutInQueue
	if int(rejected) != saw[429] {
		t.Errorf("stats rejected = %d, saw %d 429s", rejected, saw[429])
	}
	if after.Queued != 0 || after.InFlight != 0 {
		t.Errorf("gauges after drain: queued=%d in_flight=%d", after.Queued, after.InFlight)
	}

	// No goroutine leak: everything spawned for the burst exits.
	deadlineT := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadlineT) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines after drain = %d, baseline %d", got, before)
	}
}

// TestBatchShedsBeforeLocate: with the batch class under pressure, batch
// requests get 429 code=shed while single locates keep flowing.
func TestBatchShedsBeforeLocate(t *testing.T) {
	s, ds := newTinyServer(t, Options{Admission: AdmissionOptions{
		Batch:       QueueConfig{MaxConcurrent: 1, MaxQueue: 2},
		ShedBatchAt: 0.4,
	}})
	tq := simStart.AddDate(0, 0, 2).Add(11 * time.Hour)

	// Saturate the batch class's only slot; the next batch request lands
	// in the queue at occupancy 1/2 > 0.4 and is shed.
	s.batchQ.slots <- struct{}{}
	body, _ := json.Marshal(BatchLocateRequest{Queries: []BatchQuery{
		{Device: string(ds.People[0].Device), Time: tq.Format(time.RFC3339)},
	}})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/locate/batch", bytes.NewReader(body)))
	if rec.Code != 429 {
		t.Fatalf("batch under pressure = %d: %s", rec.Code, rec.Body)
	}
	if code := errCode(t, rec); code != codeShed {
		t.Errorf("batch rejection code = %q, want %q", code, codeShed)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}

	// Single locate still flows.
	if rec := getLocate(s, string(ds.People[0].Device), tq, ""); rec.Code != http.StatusOK {
		t.Errorf("locate during batch shed = %d: %s", rec.Code, rec.Body)
	}
	<-s.batchQ.slots

	st := mustStats(t, s).Admission
	if st.Batch.RejectedShed != 1 {
		t.Errorf("batch rejected_shed = %d, want 1", st.Batch.RejectedShed)
	}
	if st.Locate.RejectedShed != 0 {
		t.Errorf("locate rejected_shed = %d, want 0", st.Locate.RejectedShed)
	}
}

// TestDeadlineEndToEnd: deadline_ms must propagate into the engine. An
// already-expired request context yields the distinct 504/deadline_exceeded
// (not a 500), on servers with and without admission; an invalid deadline_ms
// is a 400.
func TestDeadlineEndToEnd(t *testing.T) {
	s, ds := newTinyServer(t, Options{Admission: AdmissionOptions{Disabled: true}})
	tq := simStart.AddDate(0, 0, 2).Add(11 * time.Hour)
	dev := string(ds.People[0].Device)

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	url := fmt.Sprintf("/locate?device=%s&time=%s&deadline_ms=5", dev, tq.Format(time.RFC3339))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil).WithContext(expired))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired locate = %d: %s", rec.Code, rec.Body)
	}
	if code := errCode(t, rec); code != codeDeadlineExceeded {
		t.Errorf("expired locate code = %q, want %q", code, codeDeadlineExceeded)
	}

	// Batch: an expired whole-batch deadline is one 504 as well.
	body, _ := json.Marshal(BatchLocateRequest{Queries: []BatchQuery{
		{Device: dev, Time: tq.Format(time.RFC3339)},
	}, DeadlineMillis: 5})
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/locate/batch", bytes.NewReader(body)).WithContext(expired))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired batch = %d: %s", rec.Code, rec.Body)
	}
	if code := errCode(t, rec); code != codeDeadlineExceeded {
		t.Errorf("expired batch code = %q, want %q", code, codeDeadlineExceeded)
	}

	// The engine's deadline counter surfaced in query_stats.
	if got := mustStats(t, s).QueryStats.DeadlineExceeded; got == 0 {
		t.Error("query_stats.deadline_exceeded = 0 after expired queries")
	}

	// Malformed deadline_ms is a 400, not silently ignored.
	for _, bad := range []string{"0", "-5", "abc"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
			"/locate?device=x&deadline_ms="+bad, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("deadline_ms=%s = %d, want 400", bad, rec.Code)
		}
	}

	// A generous deadline on a healthy server stays a 200.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		fmt.Sprintf("/locate?device=%s&time=%s&deadline_ms=%d",
			dev, tq.Format(time.RFC3339), int((10*time.Second).Milliseconds())), nil))
	if rec.Code != http.StatusOK {
		t.Errorf("generous deadline = %d: %s", rec.Code, rec.Body)
	}
}

// TestAdmissionDisabledCompat: Disabled admission preserves the legacy
// surface — no admission block in /stats, no default deadline, batch bounded
// by the legacy semaphore only.
func TestAdmissionDisabledCompat(t *testing.T) {
	s, ds := newTinyServer(t, Options{Admission: AdmissionOptions{Disabled: true}})
	tq := simStart.AddDate(0, 0, 2).Add(11 * time.Hour)
	if rec := getLocate(s, string(ds.People[0].Device), tq, ""); rec.Code != http.StatusOK {
		t.Fatalf("locate = %d: %s", rec.Code, rec.Body)
	}
	st := mustStats(t, s)
	if st.Admission.Enabled {
		t.Error("admission.enabled = true on a disabled server")
	}
	if st.Admission.Locate.Admitted != 0 {
		t.Errorf("disabled server counted admissions: %+v", st.Admission.Locate)
	}
}

// TestRetryAfterRounding pins the Retry-After computation: whole seconds,
// never below 1.
func TestRetryAfterRounding(t *testing.T) {
	cases := []struct {
		wait time.Duration
		want int
	}{
		{0, 1}, {10 * time.Millisecond, 1}, {time.Second, 1},
		{1100 * time.Millisecond, 2}, {5 * time.Second, 5},
	}
	for _, tc := range cases {
		got := retryAfter(tc.wait)
		if int(got/time.Second) != tc.want {
			t.Errorf("retryAfter(%v) = %v, want %ds", tc.wait, got, tc.want)
		}
	}
	// And the header renders as an integer.
	rec := httptest.NewRecorder()
	writeAdmitError(rec, &admitError{status: 429, code: codeQueueFull, msg: "x", retryAfter: 2 * time.Second})
	if h := rec.Header().Get("Retry-After"); h != "2" {
		t.Errorf("Retry-After header = %q, want \"2\"", h)
	}
	if _, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil {
		t.Errorf("Retry-After not an integer: %v", err)
	}
}

// TestAdaptiveQueueBound pins the Little's-law bound: effective queue depth
// = targetWait × MaxConcurrent / EWMA service time, clamped to [2,
// MaxQueue], with the static path and the no-signal (EWMA 0) path falling
// back to the configured bound.
func TestAdaptiveQueueBound(t *testing.T) {
	q := newAdmitQueue(QueueConfig{MaxConcurrent: 4, MaxQueue: 64})
	q.configureAdaptive(false, 2*time.Second)

	// No service-time signal yet: the configured bound applies.
	if got := q.effectiveMaxQueue(); got != 64 {
		t.Fatalf("effectiveMaxQueue with EWMA 0 = %d, want 64", got)
	}
	// Fast service (10ms): the wait target allows far more than MaxQueue,
	// so the configured bound still clamps.
	q.ewmaNs.Store(int64(10 * time.Millisecond))
	if got := q.effectiveMaxQueue(); got != 64 {
		t.Fatalf("effectiveMaxQueue fast = %d, want clamp to 64", got)
	}
	// Slow service (500ms): 2s × 4 / 500ms = 16 waiters keep the worst
	// queue wait at the target.
	q.ewmaNs.Store(int64(500 * time.Millisecond))
	if got := q.effectiveMaxQueue(); got != 16 {
		t.Fatalf("effectiveMaxQueue slow = %d, want 16", got)
	}
	// Pathological service (10s): the floor keeps a minimal queue.
	q.ewmaNs.Store(int64(10 * time.Second))
	if got := q.effectiveMaxQueue(); got != 2 {
		t.Fatalf("effectiveMaxQueue pathological = %d, want floor 2", got)
	}
	// Static mode ignores the signal entirely.
	q.configureAdaptive(true, 2*time.Second)
	if got := q.effectiveMaxQueue(); got != 64 {
		t.Fatalf("static effectiveMaxQueue = %d, want 64", got)
	}
	// A zero wait target also disables adaptation.
	q.configureAdaptive(false, 0)
	if got := q.effectiveMaxQueue(); got != 64 {
		t.Fatalf("zero-target effectiveMaxQueue = %d, want 64", got)
	}
}

// TestAdaptiveQueueRejectsAtBound drives a queue whose EWMA shrinks the
// effective bound below the configured one and checks the queue-full
// rejection fires at the adaptive bound.
func TestAdaptiveQueueRejectsAtBound(t *testing.T) {
	q := newAdmitQueue(QueueConfig{MaxConcurrent: 1, MaxQueue: 32})
	q.configureAdaptive(false, time.Second)
	q.ewmaNs.Store(int64(500 * time.Millisecond)) // bound = 1s×1/500ms = 2
	ctx := context.Background()

	release, rej := q.admit(ctx, -1, 0)
	if rej != nil {
		t.Fatalf("idle queue rejected: %+v", rej)
	}
	defer release(time.Millisecond)
	done := make(chan struct{})
	for i := 0; i < 2; i++ {
		go func() {
			r, e := q.admit(ctx, -1, 0)
			if e == nil {
				defer r(time.Millisecond)
			}
			<-done
		}()
	}
	deadlineT := time.Now().Add(5 * time.Second)
	for q.queued.Load() < 2 {
		if time.Now().After(deadlineT) {
			t.Fatal("waiters never queued")
		}
		time.Sleep(time.Millisecond)
	}
	_, rej = q.admit(ctx, -1, 0)
	close(done)
	if rej == nil || rej.code != codeQueueFull {
		t.Fatalf("admit beyond adaptive bound: got %+v, want %s (static bound is 32)", rej, codeQueueFull)
	}
}

// TestAdmissionStatsReportAdaptiveBound checks /stats surfaces the
// effective bound and the adaptive flag.
func TestAdmissionStatsReportAdaptiveBound(t *testing.T) {
	s, _ := newTinyServer(t, Options{Admission: AdmissionOptions{
		Locate:          QueueConfig{MaxConcurrent: 2, MaxQueue: 16},
		TargetQueueWait: time.Second,
	}})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var body struct {
		Admission struct {
			Locate struct {
				MaxQueue          int  `json:"max_queue"`
				EffectiveMaxQueue int  `json:"effective_max_queue"`
				Adaptive          bool `json:"adaptive"`
			} `json:"locate"`
		} `json:"admission"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	l := body.Admission.Locate
	if !l.Adaptive {
		t.Error("adaptive flag not reported")
	}
	if l.MaxQueue != 16 || l.EffectiveMaxQueue != 16 {
		t.Errorf("bounds = %d/%d, want 16/16 before any service-time signal", l.MaxQueue, l.EffectiveMaxQueue)
	}

	static, _ := newTinyServer(t, Options{Admission: AdmissionOptions{
		Locate: QueueConfig{MaxConcurrent: 2, MaxQueue: 16},
		Static: true,
	}})
	rec = httptest.NewRecorder()
	static.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Admission.Locate.Adaptive {
		t.Error("static server reports adaptive=true")
	}
}
