package space

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	b := fixture(t)
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.Name() != b.Name() {
		t.Errorf("name = %q, want %q", got.Name(), b.Name())
	}
	if got.NumRooms() != b.NumRooms() || got.NumAccessPoints() != b.NumAccessPoints() {
		t.Errorf("dims = %d/%d, want %d/%d",
			got.NumRooms(), got.NumAccessPoints(), b.NumRooms(), b.NumAccessPoints())
	}
	if !reflect.DeepEqual(got.Rooms(), b.Rooms()) {
		t.Errorf("rooms differ: %v vs %v", got.Rooms(), b.Rooms())
	}
	for _, ap := range b.AccessPoints() {
		if !reflect.DeepEqual(got.Coverage(ap), b.Coverage(ap)) {
			t.Errorf("coverage of %s differs", ap)
		}
	}
	// Room kinds preserved.
	if !got.IsPublic("2065") {
		t.Error("public kind lost in round trip")
	}
	if !got.IsPrivate("2061") {
		t.Error("private kind lost in round trip")
	}
	// Preferred rooms preserved.
	if !reflect.DeepEqual(got.PreferredRooms("7fbh"), b.PreferredRooms("7fbh")) {
		t.Errorf("preferred rooms differ: %v vs %v",
			got.PreferredRooms("7fbh"), b.PreferredRooms("7fbh"))
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"not json", "{nope"},
		{"bad kind", `{"rooms":[{"id":"r","kind":"palace"}],"access_points":[{"id":"a","coverage":["r"]}]}`},
		{"invalid building", `{"rooms":[],"access_points":[]}`},
		{"unknown coverage", `{"rooms":[{"id":"r","kind":"public"}],"access_points":[{"id":"a","coverage":["zz"]}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(tc.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReadJSONDefaultsPrivate(t *testing.T) {
	in := `{"rooms":[{"id":"r"}],"access_points":[{"id":"a","coverage":["r"]}]}`
	b, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !b.IsPrivate("r") {
		t.Error("missing kind should default to private")
	}
}
