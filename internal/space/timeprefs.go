package space

import (
	"fmt"
	"sort"
	"time"
)

// TimePreference scopes a preferred-room set to a daily time window.
// The paper notes that "preferred rooms could be time dependent (e.g., user
// is expected to be in the break room during lunch, while being in office
// during other times)" and that such metadata yields more accurate room
// affinities (Section 4.1). Windows are expressed in minutes since midnight
// and may wrap past midnight (Start > End).
type TimePreference struct {
	// StartMinute and EndMinute delimit the daily window [Start, End).
	StartMinute int
	EndMinute   int
	// Rooms are the preferred rooms during the window.
	Rooms []RoomID
}

// contains reports whether the minute-of-day m falls in the window.
func (p TimePreference) contains(m int) bool {
	if p.StartMinute <= p.EndMinute {
		return m >= p.StartMinute && m < p.EndMinute
	}
	return m >= p.StartMinute || m < p.EndMinute
}

// SetTimePreferredRooms registers time-scoped preferred rooms for a device.
// Outside every window the device's static preferred rooms (if any) apply.
// Windows are validated against the building's rooms.
func (b *Building) SetTimePreferredRooms(device string, prefs []TimePreference) error {
	if device == "" {
		return fmt.Errorf("space: empty device ID")
	}
	cleaned := make([]TimePreference, 0, len(prefs))
	for i, p := range prefs {
		if p.StartMinute < 0 || p.StartMinute >= 24*60 || p.EndMinute < 0 || p.EndMinute > 24*60 {
			return fmt.Errorf("space: time preference %d for %q has invalid window [%d, %d)",
				i, device, p.StartMinute, p.EndMinute)
		}
		if len(p.Rooms) == 0 {
			return fmt.Errorf("space: time preference %d for %q has no rooms", i, device)
		}
		var rooms []RoomID
		seen := make(map[RoomID]bool, len(p.Rooms))
		for _, r := range p.Rooms {
			if _, ok := b.rooms[r]; !ok {
				return fmt.Errorf("space: time preference %d for %q names unknown room %q", i, device, r)
			}
			if !seen[r] {
				seen[r] = true
				rooms = append(rooms, r)
			}
		}
		sort.Slice(rooms, func(x, y int) bool { return rooms[x] < rooms[y] })
		cleaned = append(cleaned, TimePreference{StartMinute: p.StartMinute, EndMinute: p.EndMinute, Rooms: rooms})
	}
	b.prefMu.Lock()
	if b.timePreferred == nil {
		b.timePreferred = make(map[string][]TimePreference)
	}
	b.timePreferred[device] = cleaned
	b.prefMu.Unlock()
	return nil
}

// TimePreferredRooms returns the registered time-scoped preferences for a
// device (nil when none). The slice is shared; callers must not modify it.
func (b *Building) TimePreferredRooms(device string) []TimePreference {
	b.prefMu.RLock()
	defer b.prefMu.RUnlock()
	return b.timePreferred[device]
}

// PreferredRoomsAt returns R^pf(device, t): the preferred rooms in effect at
// time t — the rooms of the first matching time window, or the static
// preferred rooms when no window matches.
func (b *Building) PreferredRoomsAt(device string, t time.Time) []RoomID {
	minute := t.Hour()*60 + t.Minute()
	b.prefMu.RLock()
	defer b.prefMu.RUnlock()
	for _, p := range b.timePreferred[device] {
		if p.contains(minute) {
			return p.Rooms
		}
	}
	return b.preferred[device]
}
