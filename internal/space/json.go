package space

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonConfig is the on-disk representation of a building's metadata: the
// inputs a real deployment would supply (Appendix 9.1) — room types, AP
// coverage, and optional per-device preferred rooms.
type jsonConfig struct {
	Name  string     `json:"name"`
	Rooms []jsonRoom `json:"rooms"`
	APs   []jsonAP   `json:"access_points"`
	// Preferred maps device MAC → preferred room IDs.
	Preferred map[string][]string `json:"preferred_rooms,omitempty"`
}

type jsonRoom struct {
	ID string `json:"id"`
	// Kind is "public" or "private".
	Kind  string `json:"kind"`
	Owner string `json:"owner,omitempty"`
}

type jsonAP struct {
	ID       string   `json:"id"`
	Coverage []string `json:"coverage"`
}

// WriteJSON serializes the building's metadata.
func (b *Building) WriteJSON(w io.Writer) error {
	cfg := jsonConfig{Name: b.name, Preferred: map[string][]string{}}
	for _, id := range b.roomIDs {
		r := b.rooms[id]
		cfg.Rooms = append(cfg.Rooms, jsonRoom{ID: string(r.ID), Kind: r.Kind.String(), Owner: r.Owner})
	}
	for _, apID := range b.apIDs {
		ap := b.aps[apID]
		cov := make([]string, len(ap.Coverage))
		for i, r := range ap.Coverage {
			cov[i] = string(r)
		}
		cfg.APs = append(cfg.APs, jsonAP{ID: string(ap.ID), Coverage: cov})
	}
	b.prefMu.RLock()
	for dev, rooms := range b.preferred {
		rs := make([]string, len(rooms))
		for i, r := range rooms {
			rs[i] = string(r)
		}
		cfg.Preferred[dev] = rs
	}
	b.prefMu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cfg)
}

// ReadJSON parses building metadata written by WriteJSON (or authored by
// hand for a real deployment) and validates it via NewBuilding.
func ReadJSON(r io.Reader) (*Building, error) {
	var cfg jsonConfig
	if err := json.NewDecoder(r).Decode(&cfg); err != nil {
		return nil, fmt.Errorf("space: parsing building JSON: %w", err)
	}
	out := Config{Name: cfg.Name, PreferredRooms: map[string][]RoomID{}}
	for _, r := range cfg.Rooms {
		kind := Private
		switch r.Kind {
		case "public":
			kind = Public
		case "private", "":
			kind = Private
		default:
			return nil, fmt.Errorf("space: room %q has unknown kind %q", r.ID, r.Kind)
		}
		out.Rooms = append(out.Rooms, Room{ID: RoomID(r.ID), Kind: kind, Owner: r.Owner})
	}
	for _, ap := range cfg.APs {
		cov := make([]RoomID, len(ap.Coverage))
		for i, r := range ap.Coverage {
			cov[i] = RoomID(r)
		}
		out.AccessPoints = append(out.AccessPoints, AccessPoint{ID: APID(ap.ID), Coverage: cov})
	}
	for dev, rooms := range cfg.Preferred {
		rs := make([]RoomID, len(rooms))
		for i, r := range rooms {
			rs[i] = RoomID(r)
		}
		out.PreferredRooms[dev] = rs
	}
	return NewBuilding(out)
}
